// Database-server scenario: the use case that motivated the EARLIER
// page-table-sharing systems the paper generalizes (Solaris Intimate
// Shared Memory and the early-2000s Linux shared-page-table patches,
// Section 5.2). A postmaster-style server maps a large shared buffer
// pool, forks worker processes, and every worker scans the pool.
//
// Those earlier systems required the shared region to span entire PTPs
// and be sharable or read-only. The paper's design has no such
// restrictions — the pool's PTPs are shared copy-on-write like any
// others — so this workload falls out of the same mechanism that serves
// Android: N workers scanning the pool take the faults once instead of N
// times, and the pool's page tables are paid for once.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/vm"
)

const (
	poolBase  = arch.VirtAddr(0x40000000)
	poolPages = 32768 // 128MB buffer pool
	nWorkers  = 8
	scanPages = 8192 // each worker scans 32MB of the pool
)

func main() {
	t := stats.NewTable(
		fmt.Sprintf("%d workers scanning a %dMB shared buffer pool", nWorkers, poolPages*4/1024),
		"Kernel", "Worker faults (total)", "PTP frames", "PTP memory KB")
	for _, cfg := range []core.Config{core.Stock(), core.SharedPTP()} {
		faults, ptps, err := run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(cfg.Name(), fmt.Sprintf("%d", faults), fmt.Sprintf("%d", ptps),
			fmt.Sprintf("%d", ptps*4))
	}
	fmt.Println(t.String())
	fmt.Println("This is the workload Solaris ISM and the Linux shared-page-table")
	fmt.Println("patches were built for; the paper's copy-on-write PTP sharing")
	fmt.Println("subsumes it without their whole-PTP, sharable-only restrictions.")
}

func run(cfg core.Config) (faults uint64, ptpFrames int, err error) {
	k, err := core.New(1<<17, core.WithConfig(cfg))
	if err != nil {
		return 0, 0, err
	}
	server, err := k.NewProcess("postmaster")
	if err != nil {
		return 0, 0, err
	}
	// The shared buffer pool: a MAP_SHARED file mapping, as PostgreSQL
	// creates with System V shared memory or mmap.
	pool := vm.NewFile(k.Phys, "buffer-pool", poolPages*arch.PageSize)
	if err := k.Mmap(server, &vm.VMA{
		Start: poolBase, End: poolBase + poolPages*arch.PageSize,
		Prot: vm.ProtRead | vm.ProtWrite, Flags: vm.VMAShared, File: pool, Name: "buffer pool",
	}); err != nil {
		return 0, 0, err
	}
	// A small stack per process.
	if err := k.Mmap(server, &vm.VMA{
		Start: 0xBEF00000, End: 0xBF000000,
		Prot: vm.ProtRead | vm.ProtWrite, Flags: vm.VMAPrivate | vm.VMAStack, Name: "stack",
	}); err != nil {
		return 0, 0, err
	}
	// The postmaster warms the pool (reads pages in from disk).
	err = k.Run(server, func() error {
		for pg := 0; pg < scanPages; pg++ {
			if err := k.CPU.Read(poolBase + arch.VirtAddr(pg*arch.PageSize)); err != nil {
				return err
			}
		}
		return k.CPU.Write(0xBEFFF000)
	})
	if err != nil {
		return 0, 0, err
	}

	// Fork the workers; each scans the warmed region of the pool.
	for w := 0; w < nWorkers; w++ {
		worker, err := k.Fork(server, fmt.Sprintf("worker%d", w))
		if err != nil {
			return 0, 0, err
		}
		err = k.Run(worker, func() error {
			for pg := 0; pg < scanPages; pg++ {
				if err := k.CPU.Read(poolBase + arch.VirtAddr(pg*arch.PageSize)); err != nil {
					return err
				}
			}
			return k.CPU.Write(0xBEFFF000) // its own stack
		})
		if err != nil {
			return 0, 0, err
		}
		faults += worker.MM.Counters.PageFaults
	}
	return faults, k.Phys.InUseByKind(mem.FramePageTable), nil
}
