// Quickstart: boot an Android system, fork an application from the
// zygote under the stock kernel and under the shared-PTP kernel, and
// compare what fork had to do — the headline result of the paper
// (Table 4: sharing page-table pages more than halves the cost of a
// zygote fork).
package main

import (
	"fmt"
	"log"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	universe := workload.DefaultUniverse()

	for _, cfg := range []core.Config{core.Stock(), core.SharedPTP()} {
		// Boot: the zygote preloads the 88 shared libraries and the ART
		// boot image, then populates its working set (~5,900 instruction
		// PTEs plus the writable state).
		sys, err := android.Boot(cfg, android.LayoutOriginal, universe)
		if err != nil {
			log.Fatal(err)
		}

		// Android starts every application by forking the zygote without
		// a subsequent exec.
		child, err := sys.ZygoteFork("my-app")
		if err != nil {
			log.Fatal(err)
		}
		fs := child.ForkStats
		fmt.Printf("%-16s fork: %5.2fM cycles, %2d PTPs allocated, %2d PTPs shared, %4d PTEs copied\n",
			cfg.Name()+":", float64(fs.Cycles)/1e6, fs.PTPsAllocated, fs.PTPsShared, fs.PTEsCopied)

		// The child can run immediately: with shared PTPs its fetches of
		// zygote-preloaded code hit PTEs the zygote already populated,
		// so it takes almost no soft page faults on shared code.
		err = sys.Kernel.Run(child, func() error {
			for _, pg := range universe.ZygoteSet()[:512] {
				if err := sys.Kernel.CPU.FetchBlock(sys.CodePageVA(pg), 16); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s child executed 512 shared-code pages with %d page faults\n\n",
			"", child.MM.Counters.PageFaults)
		sys.Kernel.Exit(child)
	}
}
