// Application launch study: launches the HelloWorld example application
// under the six kernel/layout configurations of Figures 7-9 and reports
// launch time, L1 instruction-cache stalls, file-backed page faults, and
// page-table pages allocated during the launch window.
package main

import (
	"fmt"
	"log"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

const runsPerConfig = 20

func main() {
	universe := workload.DefaultUniverse()
	spec := workload.HelloWorldSpec()

	configs := []struct {
		kernel core.Config
		layout android.Layout
	}{
		{core.Stock(), android.LayoutOriginal},
		{core.SharedPTP(), android.LayoutOriginal},
		{core.SharedPTPTLB(), android.LayoutOriginal},
		{core.Stock(), android.Layout2MB},
		{core.SharedPTP(), android.Layout2MB},
		{core.SharedPTPTLB(), android.Layout2MB},
	}

	t := stats.NewTable(fmt.Sprintf("HelloWorld launch, %d runs per configuration", runsPerConfig),
		"Kernel / layout", "Median cycles (x10^6)", "Icache stalls (x10^6)", "File faults", "PTPs")
	for _, c := range configs {
		sys, err := android.Boot(c.kernel, c.layout, universe)
		if err != nil {
			log.Fatal(err)
		}
		prof := workload.BuildProfile(universe, spec)
		var cycles, stalls, faults, ptps []float64
		for run := 0; run < runsPerConfig; run++ {
			app, ls, err := sys.LaunchApp(prof, int64(run))
			if err != nil {
				log.Fatal(err)
			}
			cycles = append(cycles, float64(ls.Cycles))
			stalls = append(stalls, float64(ls.ICacheStalls))
			faults = append(faults, float64(ls.FileFaults))
			ptps = append(ptps, float64(ls.PTPsAllocated))
			sys.Kernel.Exit(app.Proc)
		}
		label := c.kernel.Name()
		if c.layout == android.Layout2MB {
			label += " (2MB)"
		}
		t.AddRow(label,
			stats.F(stats.Summarize(cycles).Median/1e6),
			stats.F(stats.Summarize(stalls).Median/1e6),
			stats.F(stats.Mean(faults)),
			stats.F(stats.Mean(ptps)))
	}
	fmt.Println(t.String())
	fmt.Println("Compare with the paper: 7% launch speedup with the original library")
	fmt.Println("layout and 10% with 2MB-aligned code/data segments; file faults drop")
	fmt.Println("from ~1,900 to ~110 and PTP allocations fall by about two thirds.")
}
