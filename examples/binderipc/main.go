// Binder IPC study: a client process binds to a server's service and
// invokes it in a tight loop on one core, both sides executing the
// zygote-preloaded libbinder intensively (Section 4.2.4 / Figure 13).
// With TLB entry sharing, the libbinder translations live in global TLB
// entries both processes hit, cutting instruction main-TLB stalls.
package main

import (
	"fmt"
	"log"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

const iterations = 20000

func main() {
	universe := workload.DefaultUniverse()
	t := stats.NewTable(fmt.Sprintf("Binder IPC microbenchmark, %d calls", iterations),
		"ASID", "Kernel", "Client ITLB stalls", "Server ITLB stalls")
	for _, useASID := range []bool{false, true} {
		for _, cfg := range []core.Config{core.Stock(), core.SharedPTP(), core.SharedPTPTLB()} {
			sys, err := android.Boot(cfg, android.LayoutOriginal, universe)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.RunBinder(iterations, useASID)
			if err != nil {
				log.Fatal(err)
			}
			mode := "disabled"
			if useASID {
				mode = "enabled"
			}
			t.AddRow(mode, cfg.Name(),
				fmt.Sprintf("%d", res.Client.ITLBStalls),
				fmt.Sprintf("%d", res.Server.ITLBStalls))
		}
	}
	fmt.Println(t.String())
	fmt.Println("The paper reports up to 36% (client) and 19% (server) better")
	fmt.Println("instruction main-TLB performance from sharing TLB entries, and a")
	fmt.Println("34%/86% improvement from ASIDs alone versus flushing on switches.")
}
