// Footprint study: reproduces the motivation analysis of Section 2.3 for
// a pair of applications — the instruction-footprint breakdown by region
// category (Figure 2), the shared-code commonality between the two apps
// (Table 2), and the 64KB large-page sparsity of the zygote-preloaded
// code they execute (Figure 4) — using page-fault traces and smaps, as
// the paper's methodology does.
package main

import (
	"fmt"
	"log"

	"repro/internal/android"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	universe := workload.DefaultUniverse()
	sys, err := android.Boot(core.Stock(), android.LayoutOriginal, universe)
	if err != nil {
		log.Fatal(err)
	}
	ft := &trace.FaultTrace{}
	ft.Attach(sys.Kernel)

	type appData struct {
		name   string
		pages  []arch.VirtAddr
		shared []arch.VirtAddr
		keys   []uint64
		smaps  []vm.Smaps
	}
	var apps []appData
	for _, name := range []string{"Adobe Reader", "Android Browser"} {
		spec, err := workload.SpecByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prof := workload.BuildProfile(universe, spec)
		app, _, err := sys.LaunchApp(prof, 1)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := app.Run(); err != nil {
			log.Fatal(err)
		}
		smaps := app.Proc.MM.SmapsDump()
		pages := ft.ExecPages(app.Proc.PID)
		apps = append(apps, appData{
			name:   name,
			pages:  pages,
			shared: trace.SharedCodePages(smaps, pages, true),
			keys:   trace.SharedCodeKeys(smaps, pages, true),
			smaps:  smaps,
		})
		sys.Kernel.Exit(app.Proc)
	}

	// Figure 2 style: breakdown of the accessed instruction pages.
	t := stats.NewTable("Instruction footprint by category (pages)",
		"App", "private", "zygote dynlib", "zygote java", "app_process", "other dynlib", "total")
	for _, a := range apps {
		b := trace.FootprintBreakdown(a.smaps, a.pages)
		t.AddRow(a.name,
			fmt.Sprintf("%d", b[vm.CatPrivateCode]),
			fmt.Sprintf("%d", b[vm.CatZygoteDynLib]),
			fmt.Sprintf("%d", b[vm.CatZygoteJavaLib]),
			fmt.Sprintf("%d", b[vm.CatZygoteBinary]),
			fmt.Sprintf("%d", b[vm.CatOtherDynLib]),
			fmt.Sprintf("%d", len(a.pages)))
	}
	fmt.Println(t.String())

	// Table 2 style: commonality between the two applications.
	ab := trace.IntersectionPct(apps[0].keys, apps[1].keys, len(apps[0].pages))
	ba := trace.IntersectionPct(apps[1].keys, apps[0].keys, len(apps[1].pages))
	fmt.Printf("zygote-preloaded code common to both apps: %.1f%% of %s's footprint, %.1f%% of %s's\n\n",
		ab, apps[0].name, ba, apps[1].name)

	// Figure 4 style: how sparsely would 64KB pages be used?
	for _, a := range apps {
		sp := trace.Sparsity(a.shared)
		fmt.Printf("%s: %d zygote-preloaded code pages touch %d 64KB chunks;\n",
			a.name, sp.Pages4KB, sp.Chunks64KB)
		fmt.Printf("  P(>9 of 16 4KB pages untouched) = %.0f%%; 64KB pages would use %.2fx the memory\n",
			100*sp.CDF.Tail(10), sp.WasteFactor())
	}
	fmt.Println("\nThe paper finds 92.8% of the footprint is shared code, ~38% pairwise")
	fmt.Println("commonality, and 2.6x memory waste from 64KB pages — large pages are")
	fmt.Println("not a substitute for sharing the translations themselves.")
}
