// Package repro is a from-scratch Go reproduction of "Shared Address
// Translation Revisited" (Dong, Dwarkadas, Cox — EuroSys 2016): a
// simulated Linux/ARM memory-management stack in which fork shares
// second-level page-table pages copy-on-write between the Android zygote
// and its children, and TLB entries for zygote-preloaded shared code are
// shared across processes via the PTE global bit and the 32-bit ARM
// domain protection model.
//
// The library lives under internal/: the ARMv7 architecture model (arch),
// physical memory (mem), two-level page tables (pagetable), TLBs (tlb),
// caches (cache), the cycle-accounting core (cpu), the Linux-like VM
// substrate (vm), the shared-address-translation kernel (core), the
// Android userland (android), the synthetic application suite (workload),
// the measurement methodology (trace), statistics (stats), and one driver
// per table and figure of the paper (experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go regenerate every table and figure.
package repro
