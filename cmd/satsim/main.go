// Command satsim runs one shared-address-translation scenario: it boots
// an Android system under a chosen kernel configuration and library
// layout, launches one application from the suite, runs it to completion,
// and prints the memory-management counters the paper's evaluation reads
// (fork cost, page faults, PTPs, TLB and cache stalls).
//
// Usage:
//
//	satsim [-kernel stock|copied|shared|shared-tlb] [-layout original|2mb]
//	       [-arch armv7|sv39] [-app NAME|all] [-runs N] [-parallel N]
//	       [-json] [-list] [-nocheckpoint] [-imagestore DIR]
//	       [-cpuprofile FILE] [-memprofile FILE]
//	       [-blockprofile FILE] [-mutexprofile FILE]
//
// -arch selects the simulated MMU architecture by registry name (default
// armv7); an unknown name is an error listing the registered
// architectures.
//
// -app all sweeps the whole suite, one freshly booted system per
// application, fanned out over -parallel workers (0 = GOMAXPROCS,
// 1 = serial); the output order and values are identical regardless of
// the worker count. The boot prefix is simulated once, captured as a
// checkpoint (internal/checkpoint), and forked copy-on-write for every
// application; -nocheckpoint boots each from scratch instead, with
// byte-identical output.
//
// -imagestore persists checkpoint images under DIR (default: the
// sat-sim cache directory) so later satsim processes warm-start instead
// of re-simulating the boot; -imagestore "" disables persistence.
// Stored images are fingerprint-verified on load (internal/imagestore),
// so output is byte-identical with a cold store, a warm store, or none.
//
// -json replaces the text report with one structured document (schema
// "satsim/v1"): scenario parameters, per-run counters, the system-wide
// sharing stats, and a full obs.Registry snapshot of every metric source
// in the booted machine (kernel, per-CPU TLBs and L1 caches, shared L2).
// Like the text output it is byte-identical for every -parallel setting.
//
// -cpuprofile, -memprofile, -blockprofile and -mutexprofile write pprof
// captures of the scenario (see README "Profiling").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro/internal/android"
	"repro/internal/arch"
	_ "repro/internal/arch/armv7"
	_ "repro/internal/arch/sv39"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/imagestore"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	kernel := flag.String("kernel", "shared-tlb", "kernel config: stock, copied, shared, shared-tlb")
	layout := flag.String("layout", "original", "library layout: original or 2mb")
	archName := flag.String("arch", "armv7", "MMU architecture to simulate: "+strings.Join(arch.Names(), ", "))
	app := flag.String("app", "Email", "application to run (see -list), or all for the whole suite")
	runs := flag.Int("runs", 1, "number of consecutive executions, >= 1 (warm starts after the first)")
	parallel := flag.Int("parallel", 0, "workers for -app all: 1 = serial, N>1 = N workers, 0 = GOMAXPROCS")
	jsonOut := flag.Bool("json", false, "emit one structured JSON document instead of the text report")
	noCheckpoint := flag.Bool("nocheckpoint", false, "boot every scenario from scratch instead of forking one boot checkpoint (A/B timing; output is byte-identical either way)")
	storeDir := flag.String("imagestore", imagestore.DefaultDir(), "persist checkpoint images in this directory so later runs warm-start; empty disables the store (output is byte-identical either way)")
	list := flag.Bool("list", false, "list the application suite and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the scenario to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile after the scenario to this file")
	blockProfile := flag.String("blockprofile", "", "write a pprof blocking profile of the scenario to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a pprof mutex-contention profile of the scenario to this file")
	flag.Parse()

	if *list {
		for _, s := range workload.Suite() {
			fmt.Printf("%-18s user %.1f%%  cold %d  warm %d PTEs\n",
				s.Name, s.UserPct, s.ColdPTEs, s.WarmPTEs)
		}
		return
	}
	err := runProfiled(os.Stdout, *kernel, *layout, *archName, *app, *runs, *parallel, *jsonOut, *noCheckpoint,
		*storeDir, prof.Options{CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile})
	if err != nil {
		fmt.Fprintln(os.Stderr, "satsim:", err)
		os.Exit(1)
	}
}

// runProfiled wraps run in the pprof capture lifecycle. Validation runs
// first, so a bad flag never leaves behind a truncated profile of
// nothing; once profiling starts, teardown is deferred, so the capture
// is written on every return path — early errors included.
func runProfiled(w io.Writer, kernelName, layoutName, archName, appName string, runs, parallel int, jsonOut, noCheckpoint bool, storeDir string, po prof.Options) (err error) {
	if err := validate(kernelName, layoutName, archName, appName, runs, parallel); err != nil {
		return err
	}
	stopProf, err := prof.Start(po)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	return run(w, kernelName, layoutName, archName, appName, runs, parallel, jsonOut, noCheckpoint, storeDir)
}

// validate rejects bad scenario parameters without side effects; run
// performs the same checks again as it parses, so callers of run alone
// (the tests) lose nothing.
func validate(kernelName, layoutName, archName, appName string, runs, parallel int) error {
	if runs < 1 {
		return fmt.Errorf("-runs must be >= 1 (got %d)", runs)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (got %d)", parallel)
	}
	switch kernelName {
	case "stock", "copied", "shared", "shared-tlb":
	default:
		return fmt.Errorf("unknown kernel %q", kernelName)
	}
	switch layoutName {
	case "original", "2mb":
	default:
		return fmt.Errorf("unknown layout %q", layoutName)
	}
	if _, ok := arch.Lookup(archName); !ok {
		return fmt.Errorf("unknown architecture %q; valid names:\n  %s",
			archName, strings.Join(arch.Names(), "\n  "))
	}
	if appName != "all" {
		if _, err := workload.SpecByName(appName); err != nil {
			return err
		}
	}
	return nil
}

// SchemaID identifies the -json document layout.
const SchemaID = "satsim/v1"

// jsonRun is one execution's counters.
type jsonRun struct {
	Run           int     `json:"run"`
	ForkCycles    uint64  `json:"fork_cycles"`
	PTPsAtFork    int     `json:"ptps_at_fork"`
	SharedAtFork  int     `json:"shared_at_fork"`
	PTEsCopied    uint64  `json:"ptes_copied"`
	FileFaults    uint64  `json:"file_faults"`
	PTPsTotal     uint64  `json:"ptps_total"`
	SharedPTPs    int     `json:"shared_ptps"`
	MillionCycles float64 `json:"million_cycles"`
}

// jsonApp is one application's scenario: the boot state, every run, the
// system-wide sharing stats, and the full metric-source snapshot.
type jsonApp struct {
	App         string                       `json:"app"`
	ZygotePTEs  int                          `json:"zygote_ptes"`
	Runs        []jsonRun                    `json:"runs"`
	TotalPTPs   int                          `json:"total_ptps"`
	SharedPTPs  int                          `json:"shared_ptps"`
	DistinctPTP int                          `json:"distinct_ptp_frames"`
	Sources     map[string]map[string]uint64 `json:"sources"`
}

// jsonDoc is the top-level -json document.
type jsonDoc struct {
	Schema string    `json:"schema"`
	Kernel string    `json:"kernel"`
	Layout string    `json:"layout"`
	Runs   int       `json:"runs"`
	Apps   []jsonApp `json:"apps"`
}

// appReport carries both renderings of one scenario; the sweep computes
// both so text and JSON mode stay byte-identical under any worker count.
type appReport struct {
	text string
	doc  jsonApp
}

func run(w io.Writer, kernelName, layoutName, archName, appName string, runs, parallel int, jsonOut, noCheckpoint bool, storeDir string) error {
	if runs < 1 {
		return fmt.Errorf("-runs must be >= 1 (got %d)", runs)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (got %d)", parallel)
	}
	if _, ok := arch.Lookup(archName); !ok {
		return fmt.Errorf("unknown architecture %q; valid names:\n  %s",
			archName, strings.Join(arch.Names(), "\n  "))
	}
	var cfg core.Config
	switch kernelName {
	case "stock":
		cfg = core.Stock()
	case "copied":
		cfg = core.CopiedPTEs()
	case "shared":
		cfg = core.SharedPTP()
	case "shared-tlb":
		cfg = core.SharedPTPTLB()
	default:
		return fmt.Errorf("unknown kernel %q", kernelName)
	}
	var layout android.Layout
	switch layoutName {
	case "original":
		layout = android.LayoutOriginal
	case "2mb":
		layout = android.Layout2MB
	default:
		return fmt.Errorf("unknown layout %q", layoutName)
	}

	u := workload.DefaultUniverse()
	var specs []workload.AppSpec
	if appName == "all" {
		specs = workload.Suite()
	} else {
		spec, err := workload.SpecByName(appName)
		if err != nil {
			return err
		}
		specs = []workload.AppSpec{spec}
	}

	reports, err := runSuite(cfg, layout, archName, u, specs, runs, parallel, noCheckpoint, storeDir)
	if err != nil {
		return err
	}

	if jsonOut {
		doc := jsonDoc{Schema: SchemaID, Kernel: kernelName, Layout: layoutName, Runs: runs}
		for _, r := range reports {
			doc.Apps = append(doc.Apps, r.doc)
		}
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		_, err = w.Write(append(out, '\n'))
		return err
	}
	for _, r := range reports {
		fmt.Fprint(w, r.text)
	}
	return nil
}

// runSuite runs every selected application, each in its own freshly
// booted system, fanned out over the sweep worker pool. Reports come
// back in suite order whatever the completion order was.
func runSuite(cfg core.Config, layout android.Layout, archName string, u *workload.Universe, specs []workload.AppSpec, runs, parallel int, noCheckpoint bool, storeDir string) ([]appReport, error) {
	// Every scenario shares one boot prefix, so the whole suite forks a
	// single checkpoint image; concurrent workers share the one boot.
	opts := android.Options{Arch: archName}
	ckpt := checkpoint.NewCache()
	if storeDir != "" && !noCheckpoint {
		if store, err := imagestore.Open(storeDir, u); err != nil {
			// The store is an optimization; a directory or platform that
			// cannot host one just means the boot runs cold.
			fmt.Fprintf(os.Stderr, "satsim: image store disabled: %v\n", err)
		} else {
			ckpt.SetStore(store)
		}
	}
	boot := func() (*android.System, error) {
		if noCheckpoint {
			return android.BootOpts(cfg, layout, u, opts)
		}
		img, err := ckpt.Image(checkpoint.Key(cfg, layout, u, opts), func() (*android.System, error) {
			return android.BootOpts(cfg, layout, u, opts)
		})
		if err != nil {
			return nil, err
		}
		return img.Fork(), nil
	}
	scenarios := make([]sweep.Scenario[appReport], len(specs))
	for i, spec := range specs {
		spec := spec
		scenarios[i] = sweep.Scenario[appReport]{
			Name: "satsim/" + spec.Name,
			Run: func(*rand.Rand) (appReport, error) {
				return runApp(boot, cfg, layout, u, spec, runs)
			},
		}
	}
	return sweep.Run(sweep.Workers(parallel), scenarios)
}

// runApp boots a system, runs one application `runs` times, and returns
// the report in both renderings.
func runApp(boot func() (*android.System, error), cfg core.Config, layout android.Layout, u *workload.Universe, spec workload.AppSpec, runs int) (appReport, error) {
	sys, err := boot()
	if err != nil {
		return appReport{}, err
	}
	doc := jsonApp{App: spec.Name, ZygotePTEs: sys.Zygote.MM.PT.PopulatedPTEs()}
	out := fmt.Sprintf("booted %s kernel, %s layout; zygote populated %d PTEs\n",
		cfg.Name(), layout, doc.ZygotePTEs)

	prof := workload.BuildProfile(u, spec)
	t := stats.NewTable(fmt.Sprintf("%s: %d execution(s)", spec.Name, runs),
		"Run", "Fork cycles", "PTPs@fork", "Shared@fork", "PTEs copied",
		"File faults", "PTPs total", "Shared PTPs", "Cycles (x10^6)")
	for r := 0; r < runs; r++ {
		appInst, _, err := sys.LaunchApp(prof, int64(r))
		if err != nil {
			return appReport{}, err
		}
		rs, err := appInst.Run()
		if err != nil {
			return appReport{}, err
		}
		fs := appInst.Proc.ForkStats
		t.AddRow(fmt.Sprintf("%d", r+1),
			fmt.Sprintf("%d", fs.Cycles),
			fmt.Sprintf("%d", fs.PTPsAllocated),
			fmt.Sprintf("%d", fs.PTPsShared),
			fmt.Sprintf("%d", rs.PTEsCopied),
			fmt.Sprintf("%d", rs.FileFaults),
			fmt.Sprintf("%d", rs.PTPsAllocated),
			fmt.Sprintf("%d", rs.PTPsShared),
			stats.F(float64(rs.Cycles)/1e6))
		doc.Runs = append(doc.Runs, jsonRun{
			Run:           r + 1,
			ForkCycles:    fs.Cycles,
			PTPsAtFork:    fs.PTPsAllocated,
			SharedAtFork:  fs.PTPsShared,
			PTEsCopied:    rs.PTEsCopied,
			FileFaults:    rs.FileFaults,
			PTPsTotal:     rs.PTPsAllocated,
			SharedPTPs:    rs.PTPsShared,
			MillionCycles: float64(rs.Cycles) / 1e6,
		})
		sys.Kernel.Exit(appInst.Proc)
	}
	out += t.String()

	ss := sys.Kernel.SharingStats()
	doc.TotalPTPs, doc.SharedPTPs, doc.DistinctPTP = ss.TotalPTPs, ss.SharedPTPs, ss.DistinctPTPs
	out += fmt.Sprintf("system-wide: %d PTP references, %d shared, %d distinct frames\n",
		ss.TotalPTPs, ss.SharedPTPs, ss.DistinctPTPs)
	kc := sys.Kernel.Snapshot()
	out += fmt.Sprintf("kernel counters: %d forks, %d PTEs copied at fork, %d PTPs shared at fork,\n"+
		"  %d unshare ops, %d PTEs copied on unshare, %d PTEs write-protected\n",
		kc["forks"], kc["ptes_copied_at_fork"], kc["ptps_shared_at_fork"],
		kc["unshare_ops"], kc["ptes_copied_on_unshare"], kc["write_protected_ptes"])

	reg := obs.NewRegistry()
	for _, s := range sys.Kernel.Sources() {
		reg.MustRegister(s)
	}
	doc.Sources = reg.Snapshot()
	return appReport{text: out, doc: doc}, nil
}
