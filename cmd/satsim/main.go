// Command satsim runs one shared-address-translation scenario: it boots
// an Android system under a chosen kernel configuration and library
// layout, launches one application from the suite, runs it to completion,
// and prints the memory-management counters the paper's evaluation reads
// (fork cost, page faults, PTPs, TLB and cache stalls).
//
// Usage:
//
//	satsim [-kernel stock|copied|shared|shared-tlb] [-layout original|2mb]
//	       [-app NAME] [-runs N] [-list]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	kernel := flag.String("kernel", "shared-tlb", "kernel config: stock, copied, shared, shared-tlb")
	layout := flag.String("layout", "original", "library layout: original or 2mb")
	app := flag.String("app", "Email", "application to run (see -list)")
	runs := flag.Int("runs", 1, "number of consecutive executions (warm starts after the first)")
	list := flag.Bool("list", false, "list the application suite and exit")
	flag.Parse()

	if *list {
		for _, s := range workload.Suite() {
			fmt.Printf("%-18s user %.1f%%  cold %d  warm %d PTEs\n",
				s.Name, s.UserPct, s.ColdPTEs, s.WarmPTEs)
		}
		return
	}
	if err := run(*kernel, *layout, *app, *runs); err != nil {
		fmt.Fprintln(os.Stderr, "satsim:", err)
		os.Exit(1)
	}
}

func run(kernelName, layoutName, appName string, runs int) error {
	var cfg core.Config
	switch kernelName {
	case "stock":
		cfg = core.Stock()
	case "copied":
		cfg = core.CopiedPTEs()
	case "shared":
		cfg = core.SharedPTP()
	case "shared-tlb":
		cfg = core.SharedPTPTLB()
	default:
		return fmt.Errorf("unknown kernel %q", kernelName)
	}
	var layout android.Layout
	switch layoutName {
	case "original":
		layout = android.LayoutOriginal
	case "2mb":
		layout = android.Layout2MB
	default:
		return fmt.Errorf("unknown layout %q", layoutName)
	}
	spec, err := workload.SpecByName(appName)
	if err != nil {
		return err
	}

	u := workload.DefaultUniverse()
	sys, err := android.Boot(cfg, layout, u)
	if err != nil {
		return err
	}
	fmt.Printf("booted %s kernel, %s layout; zygote populated %d PTEs\n",
		cfg.Name(), layout, sys.Zygote.MM.PT.PopulatedPTEs())

	prof := workload.BuildProfile(u, spec)
	t := stats.NewTable(fmt.Sprintf("%s: %d execution(s)", spec.Name, runs),
		"Run", "Fork cycles", "PTPs@fork", "Shared@fork", "PTEs copied",
		"File faults", "PTPs total", "Shared PTPs", "Cycles (x10^6)")
	for r := 0; r < runs; r++ {
		appInst, _, err := sys.LaunchApp(prof, int64(r))
		if err != nil {
			return err
		}
		rs, err := appInst.Run()
		if err != nil {
			return err
		}
		fs := appInst.Proc.ForkStats
		t.AddRow(fmt.Sprintf("%d", r+1),
			fmt.Sprintf("%d", fs.Cycles),
			fmt.Sprintf("%d", fs.PTPsAllocated),
			fmt.Sprintf("%d", fs.PTPsShared),
			fmt.Sprintf("%d", rs.PTEsCopied),
			fmt.Sprintf("%d", rs.FileFaults),
			fmt.Sprintf("%d", rs.PTPsAllocated),
			fmt.Sprintf("%d", rs.PTPsShared),
			stats.F(float64(rs.Cycles)/1e6))
		sys.Kernel.Exit(appInst.Proc)
	}
	fmt.Println(t.String())

	ss := sys.Kernel.SharingStats()
	fmt.Printf("system-wide: %d PTP references, %d shared, %d distinct frames\n",
		ss.TotalPTPs, ss.SharedPTPs, ss.DistinctPTPs)
	kc := sys.Kernel.Counters
	fmt.Printf("kernel counters: %d forks, %d PTEs copied at fork, %d PTPs shared at fork,\n"+
		"  %d unshare ops, %d PTEs copied on unshare, %d PTEs write-protected\n",
		kc.Forks, kc.PTEsCopiedAtFork, kc.PTPsSharedAtFork,
		kc.UnshareOps, kc.PTEsCopiedOnUnshare, kc.WriteProtectedPTEs)
	return nil
}
