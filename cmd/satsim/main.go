// Command satsim runs one shared-address-translation scenario: it boots
// an Android system under a chosen kernel configuration and library
// layout, launches one application from the suite, runs it to completion,
// and prints the memory-management counters the paper's evaluation reads
// (fork cost, page faults, PTPs, TLB and cache stalls).
//
// Usage:
//
//	satsim [-kernel stock|copied|shared|shared-tlb] [-layout original|2mb]
//	       [-app NAME|all] [-runs N] [-parallel N] [-list]
//
// -app all sweeps the whole suite, one freshly booted system per
// application, fanned out over -parallel workers (0 = GOMAXPROCS,
// 1 = serial); the output order and values are identical regardless of
// the worker count.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	kernel := flag.String("kernel", "shared-tlb", "kernel config: stock, copied, shared, shared-tlb")
	layout := flag.String("layout", "original", "library layout: original or 2mb")
	app := flag.String("app", "Email", "application to run (see -list), or all for the whole suite")
	runs := flag.Int("runs", 1, "number of consecutive executions, >= 1 (warm starts after the first)")
	parallel := flag.Int("parallel", 0, "workers for -app all: 1 = serial, N>1 = N workers, 0 = GOMAXPROCS")
	list := flag.Bool("list", false, "list the application suite and exit")
	flag.Parse()

	if *list {
		for _, s := range workload.Suite() {
			fmt.Printf("%-18s user %.1f%%  cold %d  warm %d PTEs\n",
				s.Name, s.UserPct, s.ColdPTEs, s.WarmPTEs)
		}
		return
	}
	if err := run(*kernel, *layout, *app, *runs, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "satsim:", err)
		os.Exit(1)
	}
}

func run(kernelName, layoutName, appName string, runs, parallel int) error {
	if runs < 1 {
		return fmt.Errorf("-runs must be >= 1 (got %d)", runs)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (got %d)", parallel)
	}
	var cfg core.Config
	switch kernelName {
	case "stock":
		cfg = core.Stock()
	case "copied":
		cfg = core.CopiedPTEs()
	case "shared":
		cfg = core.SharedPTP()
	case "shared-tlb":
		cfg = core.SharedPTPTLB()
	default:
		return fmt.Errorf("unknown kernel %q", kernelName)
	}
	var layout android.Layout
	switch layoutName {
	case "original":
		layout = android.LayoutOriginal
	case "2mb":
		layout = android.Layout2MB
	default:
		return fmt.Errorf("unknown layout %q", layoutName)
	}

	u := workload.DefaultUniverse()
	if appName == "all" {
		return runSuite(cfg, layout, u, runs, parallel)
	}
	spec, err := workload.SpecByName(appName)
	if err != nil {
		return err
	}
	report, err := runApp(cfg, layout, u, spec, runs)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

// runSuite runs every application in the suite, each in its own freshly
// booted system, fanned out over the sweep worker pool. Reports print in
// suite order whatever the completion order was.
func runSuite(cfg core.Config, layout android.Layout, u *workload.Universe, runs, parallel int) error {
	suite := workload.Suite()
	scenarios := make([]sweep.Scenario[string], len(suite))
	for i, spec := range suite {
		spec := spec
		scenarios[i] = sweep.Scenario[string]{
			Name: "satsim/" + spec.Name,
			Run: func(*rand.Rand) (string, error) {
				return runApp(cfg, layout, u, spec, runs)
			},
		}
	}
	reports, err := sweep.Run(sweep.Workers(parallel), scenarios)
	if err != nil {
		return err
	}
	for _, r := range reports {
		fmt.Print(r)
	}
	return nil
}

// runApp boots a system, runs one application `runs` times, and returns
// the rendered report.
func runApp(cfg core.Config, layout android.Layout, u *workload.Universe, spec workload.AppSpec, runs int) (string, error) {
	sys, err := android.Boot(cfg, layout, u)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("booted %s kernel, %s layout; zygote populated %d PTEs\n",
		cfg.Name(), layout, sys.Zygote.MM.PT.PopulatedPTEs())

	prof := workload.BuildProfile(u, spec)
	t := stats.NewTable(fmt.Sprintf("%s: %d execution(s)", spec.Name, runs),
		"Run", "Fork cycles", "PTPs@fork", "Shared@fork", "PTEs copied",
		"File faults", "PTPs total", "Shared PTPs", "Cycles (x10^6)")
	for r := 0; r < runs; r++ {
		appInst, _, err := sys.LaunchApp(prof, int64(r))
		if err != nil {
			return "", err
		}
		rs, err := appInst.Run()
		if err != nil {
			return "", err
		}
		fs := appInst.Proc.ForkStats
		t.AddRow(fmt.Sprintf("%d", r+1),
			fmt.Sprintf("%d", fs.Cycles),
			fmt.Sprintf("%d", fs.PTPsAllocated),
			fmt.Sprintf("%d", fs.PTPsShared),
			fmt.Sprintf("%d", rs.PTEsCopied),
			fmt.Sprintf("%d", rs.FileFaults),
			fmt.Sprintf("%d", rs.PTPsAllocated),
			fmt.Sprintf("%d", rs.PTPsShared),
			stats.F(float64(rs.Cycles)/1e6))
		sys.Kernel.Exit(appInst.Proc)
	}
	out += t.String()

	ss := sys.Kernel.SharingStats()
	out += fmt.Sprintf("system-wide: %d PTP references, %d shared, %d distinct frames\n",
		ss.TotalPTPs, ss.SharedPTPs, ss.DistinctPTPs)
	kc := sys.Kernel.Counters
	out += fmt.Sprintf("kernel counters: %d forks, %d PTEs copied at fork, %d PTPs shared at fork,\n"+
		"  %d unshare ops, %d PTEs copied on unshare, %d PTEs write-protected\n",
		kc.Forks, kc.PTEsCopiedAtFork, kc.PTPsSharedAtFork,
		kc.UnshareOps, kc.PTEsCopiedOnUnshare, kc.WriteProtectedPTEs)
	return out, nil
}
