package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/workload"
)

// TestSuiteParallelByteIdentical checks the text report: the whole-suite
// sweep must print the same bytes serially and with 4 workers.
func TestSuiteParallelByteIdentical(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, "shared-tlb", "original", "armv7", "all", 1, 1, false, false, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "shared-tlb", "original", "armv7", "all", 1, 4, false, false, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serial and 4-worker text reports differ")
	}
	// Fork-vs-fresh differential: -nocheckpoint boots every scenario
	// from scratch and must print the same bytes.
	var c bytes.Buffer
	if err := run(&c, "shared-tlb", "original", "armv7", "all", 1, 1, false, true, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("checkpointed and fresh-boot text reports differ")
	}
}

// TestJSONParallelByteIdenticalAndSchema checks the -json document: byte
// identity across worker counts, the schema id, one entry per suite app,
// and a populated source snapshot including the kernel and per-CPU TLBs.
func TestJSONParallelByteIdenticalAndSchema(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, "stock", "2mb", "armv7", "all", 1, 1, true, false, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "stock", "2mb", "armv7", "all", 1, 4, true, false, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serial and 4-worker JSON documents differ")
	}

	var doc jsonDoc
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Schema != SchemaID {
		t.Fatalf("schema = %q, want %q", doc.Schema, SchemaID)
	}
	if want := len(workload.Suite()); len(doc.Apps) != want {
		t.Fatalf("got %d apps, want %d", len(doc.Apps), want)
	}
	for _, app := range doc.Apps {
		if len(app.Runs) != 1 {
			t.Fatalf("%s: got %d runs, want 1", app.App, len(app.Runs))
		}
		for _, name := range []string{"kernel", "cpu0.mainTLB", "cpu0.L1I", "L2"} {
			if _, ok := app.Sources[name]; !ok {
				t.Errorf("%s: source %q missing from snapshot", app.App, name)
			}
		}
	}
}
