// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables 1-4, Figures 2-4 and 7-13) plus the Section 3.1.3
// design-tradeoff ablations, printing each as plain text alongside the
// paper's reference numbers.
//
// Usage:
//
//	experiments [-quick] [-arch armv7|sv39] [-parallel N] [-launch-runs N]
//	            [-app-runs N] [-binder-iters N] [-only LIST] [-list] [-json]
//	            [-nocheckpoint] [-imagestore DIR] [-cpuprofile FILE]
//	            [-memprofile FILE] [-blockprofile FILE] [-mutexprofile FILE]
//
// -only selects a comma-separated subset, e.g. -only table4,figure7; an
// unknown name is an error. -arch selects the simulated MMU architecture
// by registry name (default armv7); an unknown name is an error listing
// the registered architectures. Explicitly set size flags always override
// -quick. -parallel controls how many workers the sweeps fan out over;
// results are byte-identical regardless of the worker count. -json
// replaces the text tables with one structured document (schema
// "sat-experiments/v1", see internal/experiments/report.go), also
// byte-identical for every -parallel setting. -nocheckpoint disables
// boot-checkpoint reuse (internal/checkpoint) so every scenario boots
// from scratch; results are byte-identical with or without it.
// -imagestore persists checkpoint images under DIR (default: the
// sat-sim cache directory) so later processes warm-start instead of
// re-simulating the boot prefix; -imagestore "" disables persistence.
// Stored images are fingerprint-verified on load, so results are
// byte-identical across cold-store, warm-store and -nocheckpoint runs.
// -cpuprofile, -memprofile, -blockprofile and -mutexprofile write pprof
// captures of the run (see README "Profiling").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/arch"
	_ "repro/internal/arch/armv7"
	_ "repro/internal/arch/sv39"
	"repro/internal/experiments"
	"repro/internal/imagestore"
	"repro/internal/prof"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
}

func run(argv []string, out *os.File) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	quick := fs.Bool("quick", false, "use reduced sweep sizes (overridden by any explicitly set size flag)")
	archName := fs.String("arch", "armv7", "MMU architecture to simulate: "+strings.Join(arch.Names(), ", "))
	launchRuns := fs.Int("launch-runs", 0, "launches per config for Figures 7-9 (>=1; default 100, paper >100; overrides -quick)")
	appRuns := fs.Int("app-runs", 0, "executions per app for Figures 10-12 (>=1; default 10, as the paper; overrides -quick)")
	binderIters := fs.Int("binder-iters", 0, "IPC calls for Figure 13 (>=1; default 100000, as the paper; overrides -quick)")
	parallel := fs.Int("parallel", 0, "sweep workers: 1 = serial, N>1 = N workers, 0 = GOMAXPROCS")
	only := fs.String("only", "", "comma-separated experiments to run (see -list); empty = all")
	list := fs.Bool("list", false, "list the experiment names and exit")
	jsonOut := fs.Bool("json", false, "emit one structured JSON document instead of text tables")
	noCheckpoint := fs.Bool("nocheckpoint", false, "boot every scenario from scratch instead of forking memoized boot checkpoints (A/B timing; output is byte-identical either way)")
	storeDir := fs.String("imagestore", imagestore.DefaultDir(), "persist checkpoint images in this directory so later runs warm-start; empty disables the store (output is byte-identical either way)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile after the run to this file")
	blockProfile := fs.String("blockprofile", "", "write a pprof blocking profile of the run to this file")
	mutexProfile := fs.String("mutexprofile", "", "write a pprof mutex-contention profile of the run to this file")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	if *list {
		for _, name := range experiments.Names() {
			fmt.Fprintln(out, name)
		}
		return nil
	}

	params := experiments.Default()
	if *quick {
		params = experiments.Quick()
	}
	// Explicitly set size flags win over -quick, and must be positive:
	// a zero or negative sweep size would silently produce empty series.
	var flagErr error
	fs.Visit(func(f *flag.Flag) {
		set := func(dst *int, v int) {
			if v < 1 {
				flagErr = fmt.Errorf("-%s must be >= 1 (got %d)", f.Name, v)
				return
			}
			*dst = v
		}
		switch f.Name {
		case "launch-runs":
			set(&params.LaunchRuns, *launchRuns)
		case "app-runs":
			set(&params.AppRuns, *appRuns)
		case "binder-iters":
			set(&params.BinderIters, *binderIters)
		case "parallel":
			if *parallel < 0 {
				flagErr = fmt.Errorf("-parallel must be >= 0 (got %d)", *parallel)
			}
		}
	})
	if flagErr != nil {
		return flagErr
	}

	if _, ok := arch.Lookup(*archName); !ok {
		return fmt.Errorf("unknown architecture %q; valid names:\n  %s",
			*archName, strings.Join(arch.Names(), "\n  "))
	}

	registry := experiments.Registry()
	valid := map[string]bool{}
	for _, e := range registry {
		valid[e.Name] = true
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			name := strings.TrimSpace(strings.ToLower(n))
			if name == "" {
				continue
			}
			if !valid[name] {
				return fmt.Errorf("unknown experiment %q; valid names:\n  %s",
					name, strings.Join(experiments.Names(), "\n  "))
			}
			selected[name] = true
		}
	}

	stopProf, err := prof.Start(prof.Options{CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	s := experiments.New(params)
	s.Parallel = *parallel
	s.NoCheckpoint = *noCheckpoint
	s.Arch = *archName
	if *storeDir != "" && !*noCheckpoint {
		store, serr := imagestore.Open(*storeDir, s.Universe())
		if serr != nil {
			// The store is an optimization; a directory or platform that
			// cannot host one just means every boot runs cold.
			fmt.Fprintf(os.Stderr, "experiments: image store disabled: %v\n", serr)
		} else {
			s.ImageStore = store
		}
	}

	if *jsonOut {
		doc, err := experiments.RunJSON(s, selected)
		if err != nil {
			return err
		}
		_, err = out.Write(doc)
		return err
	}

	fmt.Fprintf(out, "Shared Address Translation Revisited (EuroSys 2016) — experiment harness\n")
	fmt.Fprintf(out, "params: launch-runs=%d app-runs=%d binder-iters=%d parallel=%d\n\n",
		params.LaunchRuns, params.AppRuns, params.BinderIters, *parallel)

	for _, e := range registry {
		if len(selected) > 0 && !selected[e.Name] {
			continue
		}
		start := time.Now() //satlint:ignore nondet progress timing goes to stderr, never into results
		r, err := e.Run(s)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		fmt.Fprintln(out, r.String())
		fmt.Fprintln(out)
		//satlint:ignore nondet progress timing goes to stderr, never into results
		fmt.Fprintf(os.Stderr, "[%s regenerated in %v]\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
