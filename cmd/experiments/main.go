// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables 1-4, Figures 2-4 and 7-13) plus the Section 3.1.3
// design-tradeoff ablations, printing each as plain text alongside the
// paper's reference numbers.
//
// Usage:
//
//	experiments [-quick] [-launch-runs N] [-app-runs N] [-binder-iters N] [-only LIST]
//
// -only selects a comma-separated subset, e.g. -only table4,figure7.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced sweep sizes")
	launchRuns := flag.Int("launch-runs", 0, "launches per config for Figures 7-9 (default 100, paper >100)")
	appRuns := flag.Int("app-runs", 0, "executions per app for Figures 10-12 (default 10, as the paper)")
	binderIters := flag.Int("binder-iters", 0, "IPC calls for Figure 13 (default 100000, as the paper)")
	only := flag.String("only", "", "comma-separated experiments to run (e.g. table4,figure7); empty = all")
	flag.Parse()

	params := experiments.Default()
	if *quick {
		params = experiments.Quick()
	}
	if *launchRuns > 0 {
		params.LaunchRuns = *launchRuns
	}
	if *appRuns > 0 {
		params.AppRuns = *appRuns
	}
	if *binderIters > 0 {
		params.BinderIters = *binderIters
	}

	s := experiments.New(params)
	type exp struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	all := []exp{
		{"table1", func() (fmt.Stringer, error) { return s.Table1() }},
		{"figure2", func() (fmt.Stringer, error) { return s.Figure2() }},
		{"figure3", func() (fmt.Stringer, error) { return s.Figure3() }},
		{"table2", func() (fmt.Stringer, error) { return s.Table2() }},
		{"figure4", func() (fmt.Stringer, error) { return s.Figure4() }},
		{"table3", func() (fmt.Stringer, error) { return s.Table3() }},
		{"table4", func() (fmt.Stringer, error) { return s.Table4() }},
		{"figure7", func() (fmt.Stringer, error) { return s.Figure7() }},
		{"figure8", func() (fmt.Stringer, error) { return s.Figure8() }},
		{"figure9", func() (fmt.Stringer, error) { return s.Figure9() }},
		{"figure10", func() (fmt.Stringer, error) { return s.Figure10() }},
		{"figure11", func() (fmt.Stringer, error) { return s.Figure11() }},
		{"figure12", func() (fmt.Stringer, error) { return s.Figure12() }},
		{"ptecopies", func() (fmt.Stringer, error) { return s.PTECopies() }},
		{"figure13", func() (fmt.Stringer, error) { return s.Figure13() }},
		{"ablation-stack", func() (fmt.Stringer, error) { return s.StackSharingAblation() }},
		{"ablation-refcopy", func() (fmt.Stringer, error) { return s.CopyReferencedAblation() }},
		{"ablation-l1wp", func() (fmt.Stringer, error) { return s.L1WriteProtectAblation() }},
		{"ablation-largepages", func() (fmt.Stringer, error) { return s.LargePageStudy() }},
		{"future-domainmatch", func() (fmt.Stringer, error) { return s.DomainMatchStudy() }},
		{"future-grouping", func() (fmt.Stringer, error) { return s.SchedulerGrouping() }},
		{"scalability", func() (fmt.Stringer, error) { return s.Scalability() }},
		{"cache-pollution", func() (fmt.Stringer, error) { return s.CachePollution() }},
		{"smp", func() (fmt.Stringer, error) { return s.SMP() }},
		{"chrome-family", func() (fmt.Stringer, error) { return s.ChromeFamily() }},
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(strings.ToLower(n))] = true
		}
	}

	fmt.Printf("Shared Address Translation Revisited (EuroSys 2016) — experiment harness\n")
	fmt.Printf("params: launch-runs=%d app-runs=%d binder-iters=%d\n\n",
		params.LaunchRuns, params.AppRuns, params.BinderIters)

	for _, e := range all {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		start := time.Now()
		r, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(r.String())
		fmt.Printf("[%s regenerated in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
}
