// Command tracedump applies the paper's measurement methodology (Section
// 4.1.1) to one application run and dumps the raw material: the
// /proc/pid/smaps-style region map, the page-fault trace summary, the
// instruction footprint breakdown, the Figure 4 sparsity CDF as CSV, and
// the tail of the kernel's event stream (an obs.Ring capture filtered to
// the memory-management events, cache traffic excluded).
//
// Usage:
//
//	tracedump [-app NAME] [-what smaps|faults|footprint|cdf|events|all] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/android"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "Email", "application to trace")
	what := flag.String("what", "all", "smaps, faults, footprint, cdf, events, or all")
	asJSON := flag.Bool("json", false, "emit one JSON document instead of text")
	flag.Parse()
	if err := run(*app, *what, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

// jsonDump is the machine-readable form of the trace.
type jsonDump struct {
	App       string         `json:"app"`
	Regions   []jsonRegion   `json:"regions"`
	Faults    map[string]int `json:"faults"`
	ExecPages int            `json:"exec_pages"`
	Footprint map[string]int `json:"footprint_by_category"`
	Sparsity  jsonSparsity   `json:"sparsity"`
}

type jsonRegion struct {
	Start    uint32 `json:"start"`
	End      uint32 `json:"end"`
	Prot     string `json:"prot"`
	Name     string `json:"name"`
	Category string `json:"category"`
	Resident int    `json:"resident_pages"`
}

type jsonSparsity struct {
	Pages4KB   int       `json:"pages_4kb"`
	Chunks64KB int       `json:"chunks_64kb"`
	Waste      float64   `json:"waste_factor"`
	CDF        []float64 `json:"cdf_untouched_0_to_15"`
}

func run(appName, what string, asJSON bool) error {
	spec, err := workload.SpecByName(appName)
	if err != nil {
		return err
	}
	u := workload.DefaultUniverse()
	sys, err := android.Boot(core.Stock(), android.LayoutOriginal, u)
	if err != nil {
		return err
	}
	ft := &trace.FaultTrace{}
	ft.Attach(sys.Kernel)

	// Keep the tail of the event stream in a bounded ring, filtered to
	// the memory-management events (cache fills/evictions would drown
	// everything else out).
	const ringCap = 16
	ring := obs.NewRing(ringCap)
	ring.SetFilter(func(ev obs.Event) bool {
		return ev.Kind != obs.EvCacheFill && ev.Kind != obs.EvCacheEvict
	})
	sys.Kernel.Subscribe(ring)

	prof := workload.BuildProfile(u, spec)
	a, _, err := sys.LaunchApp(prof, 1)
	if err != nil {
		return err
	}
	if _, err := a.Run(); err != nil {
		return err
	}
	smaps := a.Proc.MM.SmapsDump()
	pages := ft.ExecPages(a.Proc.PID)

	if asJSON {
		return emitJSON(appName, smaps, pages, ft, a.Proc.PID)
	}

	show := func(section string) bool { return what == "all" || what == section }

	if show("smaps") {
		fmt.Printf("# smaps for %s (pid %d): %d regions\n", appName, a.Proc.PID, len(smaps))
		for _, s := range smaps {
			fmt.Printf("%08x-%08x %s %6d/%6d resident  %-40s %s\n",
				s.Start, s.End, s.Prot, s.Resident, int(s.End-s.Start)/arch.PageSize,
				s.Name, s.Category)
		}
		fmt.Println()
	}

	if show("faults") {
		byKind := map[arch.AccessKind]int{}
		for _, e := range ft.Events {
			if e.PID == a.Proc.PID {
				byKind[e.Kind]++
			}
		}
		fmt.Printf("# page faults for %s: %d fetch, %d read, %d write; %d distinct exec pages\n\n",
			appName, byKind[arch.AccessFetch], byKind[arch.AccessRead],
			byKind[arch.AccessWrite], len(pages))
	}

	if show("footprint") {
		b := trace.FootprintBreakdown(smaps, pages)
		fmt.Printf("# instruction footprint of %s by category\n", appName)
		for _, c := range []vm.Category{vm.CatPrivateCode, vm.CatZygoteDynLib,
			vm.CatZygoteJavaLib, vm.CatZygoteBinary, vm.CatOtherDynLib, vm.CatOther} {
			fmt.Printf("%-42s %d\n", c, b[c])
		}
		fmt.Println()
	}

	if show("events") {
		fmt.Printf("# event stream tail for %s: %d events kept of %d seen (ring capacity %d)\n",
			appName, ring.Len(), ring.Seen(), ringCap)
		for _, ev := range ring.Events() {
			fmt.Printf("%-14s src=%-10s pid=%-3d addr=%08x value=%d\n",
				ev.Kind, ev.Source, ev.PID, ev.Addr, ev.Value)
		}
		fmt.Println()
	}

	if show("cdf") {
		zyg := trace.SharedCodePages(smaps, pages, true)
		sp := trace.Sparsity(zyg)
		fmt.Printf("# Figure 4 CDF for %s: untouched 4KB pages per 64KB chunk (CSV)\n", appName)
		fmt.Println("untouched,cumulative_fraction")
		for v := 0; v <= 15; v++ {
			fmt.Printf("%d,%.4f\n", v, sp.CDF.At(v))
		}
		fmt.Printf("# 4KB: %.1f MB, 64KB: %.1f MB, factor %.2fx\n",
			float64(sp.Memory4KB())/(1<<20), float64(sp.Memory64KB())/(1<<20), sp.WasteFactor())
	}
	return nil
}

// emitJSON writes the whole dump as one JSON document.
func emitJSON(appName string, smaps []vm.Smaps, pages []arch.VirtAddr, ft *trace.FaultTrace, pid int) error {
	d := jsonDump{App: appName, Faults: map[string]int{}, Footprint: map[string]int{}}
	for _, s := range smaps {
		d.Regions = append(d.Regions, jsonRegion{
			Start: uint32(s.Start), End: uint32(s.End), Prot: s.Prot.String(),
			Name: s.Name, Category: s.Category.String(), Resident: s.Resident,
		})
	}
	for _, e := range ft.Events {
		if e.PID == pid {
			d.Faults[e.Kind.String()]++
		}
	}
	d.ExecPages = len(pages)
	for c, n := range trace.FootprintBreakdown(smaps, pages) {
		d.Footprint[c.String()] = n
	}
	sp := trace.Sparsity(trace.SharedCodePages(smaps, pages, true))
	d.Sparsity = jsonSparsity{
		Pages4KB: sp.Pages4KB, Chunks64KB: sp.Chunks64KB, Waste: sp.WasteFactor(),
	}
	for v := 0; v <= 15; v++ {
		d.Sparsity.CDF = append(d.Sparsity.CDF, sp.CDF.At(v))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
