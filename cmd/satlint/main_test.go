package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/satlint"
)

// wantAnalyzers is the contract: the suite registers exactly these
// eight, alphabetically.
var wantAnalyzers = []string{
	"captureimmut", "deprecated", "detflow", "maporder", "nondet",
	"obsguard", "snapshotfresh", "unsafecast",
}

func TestSuiteRegistersAllAnalyzers(t *testing.T) {
	got := satlint.Analyzers()
	if len(got) != len(wantAnalyzers) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(wantAnalyzers))
	}
	for i, a := range got {
		if a.Name != wantAnalyzers[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, wantAnalyzers[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}

func TestListFlagPrintsEveryAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"satlint", "-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("satlint -list exited %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, name := range wantAnalyzers {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
	if n := len(strings.Split(strings.TrimSpace(out), "\n")); n != len(wantAnalyzers) {
		t.Errorf("-list printed %d lines, want %d:\n%s", n, len(wantAnalyzers), out)
	}
}

// TestJSONOutput runs the standalone driver over a throwaway module
// with one real finding and one suppressed finding, and checks the -json
// contract: both appear in the array (the suppressed one with
// ignored=true), only the real one drives the exit code, and text mode
// stays silent about the suppressed one.
func TestJSONOutput(t *testing.T) {
	root := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmod\n\ngo 1.22\n")
	write("p/p.go", `package p

import "time"

func Bad() time.Time {
	return time.Now()
}

func Excused() time.Time {
	//satlint:ignore nondet fixture: suppressed on purpose
	return time.Now()
}
`)
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	var stdout, stderr bytes.Buffer
	code := run([]string{"satlint", "-json", "./p"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("-json run exited %d, want 2 (one live finding); stderr: %s", code, stderr.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	var live, suppressed int
	for _, d := range diags {
		if d.Analyzer != "nondet" || d.Line == 0 || d.Col == 0 || !strings.HasSuffix(d.File, "p.go") {
			t.Errorf("malformed diagnostic %+v", d)
		}
		if d.Ignored {
			suppressed++
		} else {
			live++
		}
	}
	if live != 1 || suppressed != 1 {
		t.Errorf("got %d live + %d suppressed diagnostics, want 1 + 1:\n%s",
			live, suppressed, stdout.String())
	}

	// Text mode: the suppressed finding stays out of stdout entirely.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"satlint", "./p"}, &stdout, &stderr); code != 2 {
		t.Fatalf("text run exited %d, want 2", code)
	}
	if n := strings.Count(stdout.String(), "[nondet]"); n != 1 {
		t.Errorf("text mode printed %d nondet findings, want 1:\n%s", n, stdout.String())
	}

	// A clean package emits [], not null.
	write("q/q.go", "package q\n\nfunc Fine() int { return 1 }\n")
	stdout.Reset()
	if code := run([]string{"satlint", "-json", "./q"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean -json run exited %d; stderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json run printed %q, want []", got)
	}
}

func TestVetHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"satlint", "-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	// The go command parses this line to cache vet results: the last
	// space-separated field must be a buildID=<hex> token.
	fields := strings.Fields(strings.TrimSpace(stdout.String()))
	if len(fields) < 3 || !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Errorf("malformed -V=full output: %q", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"satlint", "-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exited %d", code)
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("-flags printed %q, want []", got)
	}
}
