package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis/satlint"
)

// wantAnalyzers is the contract: the suite registers exactly these five.
var wantAnalyzers = []string{
	"deprecated", "maporder", "nondet", "obsguard", "snapshotfresh",
}

func TestSuiteRegistersAllAnalyzers(t *testing.T) {
	got := satlint.Analyzers()
	if len(got) != len(wantAnalyzers) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(wantAnalyzers))
	}
	for i, a := range got {
		if a.Name != wantAnalyzers[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, wantAnalyzers[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}

func TestListFlagPrintsEveryAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"satlint", "-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("satlint -list exited %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, name := range wantAnalyzers {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
	if n := len(strings.Split(strings.TrimSpace(out), "\n")); n != len(wantAnalyzers) {
		t.Errorf("-list printed %d lines, want %d:\n%s", n, len(wantAnalyzers), out)
	}
}

func TestVetHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"satlint", "-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	// The go command parses this line to cache vet results: the last
	// space-separated field must be a buildID=<hex> token.
	fields := strings.Fields(strings.TrimSpace(stdout.String()))
	if len(fields) < 3 || !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Errorf("malformed -V=full output: %q", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"satlint", "-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exited %d", code)
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("-flags printed %q, want []", got)
	}
}
