// Command satlint machine-checks the simulator's determinism,
// observability, and checkpoint-aliasing invariants: the conventions
// that keep counts and JSON output bit-for-bit identical across serial
// and -parallel runs and captured images safe to share between forks,
// which golden tests can only probe and review can only hope to
// remember.
//
// It is a multichecker over eight project-specific analyzers:
//
//	captureimmut   forbid writes to frozen-after-capture checkpoint state
//	deprecated     forbid new uses of module symbols marked "// Deprecated:"
//	detflow        forbid nondeterministic values flowing into observable output
//	maporder       forbid map iteration that feeds ordered output
//	nondet         forbid wall-clock time and globally-seeded randomness
//	obsguard       require Bus.Wants (or a nil-bus check) around event publication
//	snapshotfresh  require Snapshot() to return a freshly allocated map
//	unsafecast     require bounds and alignment checks before unsafe casts
//
// captureimmut and detflow are fact-based: properties proven in one
// package (a type is frozen, a function's result reads the clock) are
// serialized as facts and re-imported when dependent packages are
// analyzed, so violations are reported across package boundaries. In
// vet mode facts ride the unitchecker vetx files; in standalone mode
// dependencies are analyzed first in import order.
//
// Usage:
//
//	satlint [-list] [-json] [package ...]
//	go vet -vettool=$(command -v satlint) ./...
//
// Standalone mode type-checks the module from source and analyzes the
// named packages ("./..." for everything, the default). The tool also
// speaks the go vet -vettool unitchecker protocol, which is how CI runs
// it: the go command supplies compiler export data per package, making
// the sweep incremental and build-cached.
//
// -json replaces the text output with a JSON array of diagnostics
// {file, line, col, analyzer, message, ignored}; suppressed findings
// are included with ignored=true so tooling can audit the directives,
// but only non-ignored findings affect the exit status.
//
// A finding can be silenced, with attribution, by an ignore directive on
// the offending line or the line above:
//
//	//satlint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; a reasonless directive suppresses nothing and
// is itself a finding — as is a directive that suppresses nothing at
// all. Exit status: 0 clean, 1 driver error, 2 findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/satlint"
)

func main() {
	os.Exit(run(os.Args, os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	args := argv[1:]
	// The go vet -vettool handshake probes the tool's identity and flag
	// set before handing it per-package work.
	if len(args) == 1 && args[0] == "-V=full" {
		printVersion(argv[0], stdout)
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]")
		return 0
	}

	fs := flag.NewFlagSet("satlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print analyzer names and docs, then exit")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		printList(stdout)
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return framework.RunVet(rest[0], satlint.Analyzers(), stderr)
	}
	return standalone(rest, *asJSON, stdout, stderr)
}

// printVersion implements -V=full in the form the go command's build
// cache requires: "name version devel ... buildID=<content hash>".
func printVersion(arg0 string, w io.Writer) {
	h := sha256.New()
	if self, err := os.Executable(); err == nil {
		if f, err := os.Open(self); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%x\n",
		filepath.Base(arg0), h.Sum(nil))
}

// printList implements -list: one line per analyzer plus its doc.
func printList(w io.Writer) {
	for _, a := range satlint.Analyzers() {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(w, "%-14s %s\n", a.Name, doc)
	}
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Ignored  bool   `json:"ignored"`
}

// standalone loads the module from source and analyzes the requested
// packages: "./..." (default) for the whole module, or directory paths.
// Dependency facts are computed in import order by the framework
// driver, so cross-package analyzers see the same facts as in vet mode.
func standalone(patterns []string, asJSON bool, stdout, stderr io.Writer) int {
	root, err := framework.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, "satlint:", err)
		return 1
	}
	loader, err := framework.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "satlint:", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var units []*framework.Unit
	for _, pat := range patterns {
		us, err := load(loader, root, pat)
		if err != nil {
			fmt.Fprintln(stderr, "satlint:", err)
			return 1
		}
		units = append(units, us...)
	}
	driver := framework.NewDriver(loader, satlint.Analyzers())
	findings := 0
	var all []jsonDiagnostic
	for _, unit := range units {
		diags, err := driver.Run(unit)
		if err != nil {
			fmt.Fprintln(stderr, "satlint:", err)
			return 1
		}
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			if asJSON {
				all = append(all, jsonDiagnostic{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer, Message: d.Message, Ignored: d.Ignored,
				})
			} else if !d.Ignored {
				fmt.Fprintf(stdout, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
			}
			if !d.Ignored {
				findings++
			}
		}
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []jsonDiagnostic{} // emit [], not null, for empty runs
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "satlint:", err)
			return 1
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "satlint: %d finding(s)\n", findings)
		return 2
	}
	return 0
}

func load(loader *framework.Loader, root, pattern string) ([]*framework.Unit, error) {
	if pattern == "./..." || pattern == "..." {
		return loader.LoadAll()
	}
	dir, err := filepath.Abs(strings.TrimSuffix(pattern, "/..."))
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("package %q is outside the module at %s", pattern, root)
	}
	importPath := loader.ModulePath()
	if rel != "." {
		importPath += "/" + filepath.ToSlash(rel)
	}
	return loader.LoadDir(dir, importPath)
}
