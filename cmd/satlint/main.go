// Command satlint machine-checks the simulator's determinism and
// observability invariants: the conventions that keep counts and JSON
// output bit-for-bit identical across serial and -parallel runs, which
// golden tests can only probe and review can only hope to remember.
//
// It is a multichecker over five project-specific analyzers:
//
//	deprecated     forbid new uses of module symbols marked "// Deprecated:"
//	maporder       forbid map iteration that feeds ordered output
//	nondet         forbid wall-clock time and globally-seeded randomness
//	obsguard       require Bus.Wants (or a nil-bus check) around event publication
//	snapshotfresh  require Snapshot() to return a freshly allocated map
//
// Usage:
//
//	satlint [-list] [package ...]
//	go vet -vettool=$(command -v satlint) ./...
//
// Standalone mode type-checks the module from source and analyzes the
// named packages ("./..." for everything, the default). The tool also
// speaks the go vet -vettool unitchecker protocol, which is how CI runs
// it: the go command supplies compiler export data per package, making
// the sweep incremental and build-cached.
//
// A finding can be silenced, with attribution, by an ignore directive on
// the offending line or the line above:
//
//	//satlint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; a reasonless directive suppresses nothing and
// is itself a finding. Exit status: 0 clean, 1 driver error, 2 findings.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/satlint"
)

func main() {
	os.Exit(run(os.Args, os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	args := argv[1:]
	// The go vet -vettool handshake probes the tool's identity and flag
	// set before handing it per-package work.
	if len(args) == 1 && args[0] == "-V=full" {
		printVersion(argv[0], stdout)
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]")
		return 0
	}

	fs := flag.NewFlagSet("satlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print analyzer names and docs, then exit")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		printList(stdout)
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return framework.RunVet(rest[0], satlint.Analyzers(), stderr)
	}
	return standalone(rest, stdout, stderr)
}

// printVersion implements -V=full in the form the go command's build
// cache requires: "name version devel ... buildID=<content hash>".
func printVersion(arg0 string, w io.Writer) {
	h := sha256.New()
	if self, err := os.Executable(); err == nil {
		if f, err := os.Open(self); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%x\n",
		filepath.Base(arg0), h.Sum(nil))
}

// printList implements -list: one line per analyzer plus its doc.
func printList(w io.Writer) {
	for _, a := range satlint.Analyzers() {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(w, "%-14s %s\n", a.Name, doc)
	}
}

// standalone loads the module from source and analyzes the requested
// packages: "./..." (default) for the whole module, or directory paths.
func standalone(patterns []string, stdout, stderr io.Writer) int {
	root, err := framework.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, "satlint:", err)
		return 1
	}
	loader, err := framework.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "satlint:", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var units []*framework.Unit
	for _, pat := range patterns {
		us, err := load(loader, root, pat)
		if err != nil {
			fmt.Fprintln(stderr, "satlint:", err)
			return 1
		}
		units = append(units, us...)
	}
	findings := 0
	for _, unit := range units {
		diags, err := framework.RunAnalyzers(unit, satlint.Analyzers())
		if err != nil {
			fmt.Fprintln(stderr, "satlint:", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: [%s] %s\n", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "satlint: %d finding(s)\n", findings)
		return 2
	}
	return 0
}

func load(loader *framework.Loader, root, pattern string) ([]*framework.Unit, error) {
	if pattern == "./..." || pattern == "..." {
		return loader.LoadAll()
	}
	dir, err := filepath.Abs(strings.TrimSuffix(pattern, "/..."))
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("package %q is outside the module at %s", pattern, root)
	}
	importPath := loader.ModulePath()
	if rel != "." {
		importPath += "/" + filepath.ToSlash(rel)
	}
	return loader.LoadDir(dir, importPath)
}
