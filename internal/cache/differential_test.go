package cache

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
)

// refCache is the obvious implementation the packed-recency Cache must
// match: per-set linear scan with one last-use timestamp per way, LRU
// victim by smallest stamp, first invalid way preferred. It exists only
// for the differential test below and for the BenchmarkReference*
// benchmarks, which give a same-machine "before" column for
// BENCH_hotpath.json.
type refCache struct {
	cfg        Config
	tags       [][]uint32
	stamps     [][]uint64
	clock      uint64
	setShift   uint
	setMask    uint32
	next       *refCache
	memLatency int
	stats      Stats
}

func newRef(cfg Config, next *refCache, memLatency int) *refCache {
	nSets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	r := &refCache{
		cfg:        cfg,
		tags:       make([][]uint32, nSets),
		stamps:     make([][]uint64, nSets),
		setShift:   uint(log2(cfg.LineSize)),
		setMask:    uint32(nSets - 1),
		next:       next,
		memLatency: memLatency,
	}
	for i := range r.tags {
		r.tags[i] = make([]uint32, cfg.Assoc)
		r.stamps[i] = make([]uint64, cfg.Assoc)
		for w := range r.tags[i] {
			r.tags[i][w] = tagInvalid
		}
	}
	return r
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

func (r *refCache) Access(pa arch.PhysAddr) int {
	r.stats.Accesses++
	r.clock++
	tag := uint32(pa) >> r.setShift
	si := tag & r.setMask
	set := r.tags[si]
	for w, tg := range set {
		if tg == tag {
			r.stats.Hits++
			r.stamps[si][w] = r.clock
			return r.cfg.HitLatency
		}
	}
	// Miss: first invalid way, else smallest stamp.
	victim := -1
	for w, tg := range set {
		if tg == tagInvalid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = 0
		for w := 1; w < len(set); w++ {
			if r.stamps[si][w] < r.stamps[si][victim] {
				victim = w
			}
		}
	}
	r.stats.Misses++
	latency := r.cfg.HitLatency
	if r.next != nil {
		latency += r.next.Access(pa)
	} else {
		latency += r.memLatency
	}
	if set[victim] != tagInvalid {
		r.stats.Evictions++
	}
	set[victim] = tag
	r.stamps[si][victim] = r.clock
	return latency
}

func (r *refCache) Contains(pa arch.PhysAddr) bool {
	tag := uint32(pa) >> r.setShift
	for _, tg := range r.tags[tag&r.setMask] {
		if tg == tag {
			return true
		}
	}
	return false
}

// TestCacheMatchesReference drives the packed-recency Cache and the
// stamped reference through identical randomized access streams and
// demands agreement on every access's latency, every counter, and final
// residency. Victim choice is where the implementations could silently
// diverge (move-to-front order vs explicit stamps), and a wrong victim
// shows up here as a latency or residency mismatch a few accesses later.
func TestCacheMatchesReference(t *testing.T) {
	geometries := []struct {
		name string
		cfg  Config
	}{
		{"L1", Config{Name: "L1D", Size: 4 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}},
		{"L2geom", Config{Name: "L2", Size: 8 << 10, LineSize: 32, Assoc: 8, HitLatency: 10}},
		{"direct", Config{Name: "DM", Size: 1 << 10, LineSize: 32, Assoc: 1, HitLatency: 1}},
	}
	for _, g := range geometries {
		t.Run(g.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			got := New(g.cfg, nil, 50)
			want := newRef(g.cfg, nil, 50)
			// Address pool a few times the cache capacity so sets see
			// hits, misses, evictions, and re-references of evicted lines.
			pool := 4 * g.cfg.Size
			for i := 0; i < 200000; i++ {
				var pa arch.PhysAddr
				if rng.Intn(4) == 0 {
					// Burst: revisit a recent line to exercise MRU paths.
					pa = arch.PhysAddr(rng.Intn(pool/16)) * 32
				} else {
					pa = arch.PhysAddr(rng.Intn(pool))
				}
				gl, wl := got.Access(pa), want.Access(pa)
				if gl != wl {
					t.Fatalf("access %d (pa=%#x): latency %d, reference %d", i, pa, gl, wl)
				}
				if got.stats != want.stats {
					t.Fatalf("access %d (pa=%#x): stats %+v, reference %+v", i, pa, got.stats, want.stats)
				}
			}
			for pa := arch.PhysAddr(0); pa < arch.PhysAddr(pool); pa += 32 {
				if g, w := got.Contains(pa), want.Contains(pa); g != w {
					t.Fatalf("Contains(%#x) = %v, reference %v", pa, g, w)
				}
			}
		})
	}
}

// TestHierarchyMatchesReference runs the same property through a
// two-level hierarchy so recursive fills and L2 evictions are covered.
func TestHierarchyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l2cfg := Config{Name: "L2", Size: 16 << 10, LineSize: 32, Assoc: 8, HitLatency: 10}
	l1cfg := Config{Name: "L1D", Size: 2 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}
	got := New(l1cfg, New(l2cfg, nil, 50), 0)
	want := newRef(l1cfg, newRef(l2cfg, nil, 50), 0)
	for i := 0; i < 200000; i++ {
		pa := arch.PhysAddr(rng.Intn(64 << 10))
		if gl, wl := got.Access(pa), want.Access(pa); gl != wl {
			t.Fatalf("access %d (pa=%#x): latency %d, reference %d", i, pa, gl, wl)
		}
	}
	if got.stats != want.stats {
		t.Fatalf("L1 stats %+v, reference %+v", got.stats, want.stats)
	}
	if got.next.stats != want.next.stats {
		t.Fatalf("L2 stats %+v, reference %+v", got.next.stats, want.next.stats)
	}
}

// TestAccessRunMatchesAccess drives one hierarchy with AccessRun and a
// twin with the equivalent individual Access calls, over randomized runs
// long enough to wrap the L1 set-index space (exercising the fused
// set-local engine and its cross-set reordering), and demands identical
// stall totals and identical complete state — tags, age matrices, MRU
// registers, adaptive skip streaks, and counters at both levels. This is
// the pin for the claim that the fused path is bit-exact against the
// scalar path, including the transparent acceleration state.
func TestAccessRunMatchesAccess(t *testing.T) {
	l2cfg := Config{Name: "L2", Size: 64 << 10, LineSize: 32, Assoc: 8, HitLatency: 10}
	l1cfg := Config{Name: "L1I", Size: 4 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}
	got := New(l1cfg, New(l2cfg, nil, 50), 0)
	want := New(l1cfg, New(l2cfg, nil, 50), 0)
	nSets := int(got.setMask) + 1
	rng := rand.New(rand.NewSource(23))
	check := func(i int) {
		t.Helper()
		if got.stats != want.stats {
			t.Fatalf("op %d: L1 stats %+v, scalar %+v", i, got.stats, want.stats)
		}
		if got.next.stats != want.next.stats {
			t.Fatalf("op %d: L2 stats %+v, scalar %+v", i, got.next.stats, want.next.stats)
		}
		for _, pair := range [][2]*Cache{{got, want}, {got.next, want.next}} {
			g, w := pair[0], pair[1]
			for si := range g.age {
				if g.age[si] != w.age[si] || g.mru[si] != w.mru[si] || g.skip[si] != w.skip[si] {
					t.Fatalf("op %d: %s set %d diverged: age %x/%x mru %+v/%+v skip %d/%d",
						i, g.cfg.Name, si, g.age[si], w.age[si], g.mru[si], w.mru[si], g.skip[si], w.skip[si])
				}
			}
			for j := range g.tags {
				if g.tags[j] != w.tags[j] {
					t.Fatalf("op %d: %s tags[%d] = %#x, scalar %#x", i, g.cfg.Name, j, g.tags[j], w.tags[j])
				}
			}
		}
	}
	for i := 0; i < 4000; i++ {
		pa := arch.PhysAddr(rng.Intn(48<<10)) &^ 31
		switch rng.Intn(3) {
		case 0: // single accesses, including re-references
			gl, wl := got.Access(pa), want.Access(pa)
			if gl != wl {
				t.Fatalf("op %d: Access(%#x) latency %d, scalar %d", i, pa, gl, wl)
			}
		default: // runs: short, set-spanning, and multi-wrap lengths
			n := 1 + rng.Intn(3*nSets)
			stall := got.AccessRun(pa, n)
			ref := 0
			for k := 0; k < n; k++ {
				if lat := want.Access(pa + arch.PhysAddr(k*32)); lat > 1 {
					ref += lat - 1
				}
			}
			if stall != ref {
				t.Fatalf("op %d: AccessRun(%#x, %d) stall %d, scalar %d", i, pa, n, stall, ref)
			}
		}
		check(i)
	}
	if got.AccessRun(0x1000, 0) != 0 || got.AccessRun(0x1000, -3) != 0 {
		t.Fatal("AccessRun with a zero or negative count must be a no-op")
	}
	check(-1)
}

// BenchmarkReferenceAccess mirrors BenchmarkCacheAccess over the stamped
// reference, so the "before" column of BENCH_hotpath.json can be
// re-measured on the same machine as the "after" column.
func BenchmarkReferenceAccess(b *testing.B) {
	cfg := Config{Name: "L1D", Size: 32 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}
	b.Run("HitMRU", func(b *testing.B) {
		c := newRef(cfg, nil, 50)
		c.Access(0x1000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Access(0x1000)
		}
	})
	b.Run("Hit", func(b *testing.B) {
		c := newRef(cfg, nil, 50)
		setStride := arch.PhysAddr(32 * (32 << 10) / (32 * 4))
		for w := 0; w < 4; w++ {
			c.Access(0x1000 + arch.PhysAddr(w)*setStride)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Access(0x1000 + arch.PhysAddr(i&3)*setStride)
		}
	})
	b.Run("MissEvict", func(b *testing.B) {
		c := newRef(cfg, nil, 50)
		setStride := arch.PhysAddr(32 * (32 << 10) / (32 * 4))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Access(0x1000 + arch.PhysAddr(i&7)*setStride)
		}
	})
}
