package cache

import (
	"testing"
)

// BenchmarkAccessRun measures the run engine on the shapes the simulator
// actually issues: the 512-line resident kernel-text run that dominates
// soft-fault handling, and the one-to-two-line tail runs of straight-line
// blocks.
func BenchmarkAccessRun(b *testing.B) {
	newL1 := func() *Cache {
		l2 := New(Config{Name: "L2", Size: 1 << 20, LineSize: 32, Assoc: 8, HitLatency: 10}, nil, 50)
		return New(Config{Name: "L1I", Size: 32 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}, l2, 0)
	}
	b.Run("KernelText512", func(b *testing.B) {
		c := newL1()
		const lines = 512
		c.AccessRun(0x10000, lines) // warm: all resident afterwards
		c.AccessRun(0x10000, lines) // settle registers into steady state
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AccessRun(0x10000, lines)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lines), "ns/line")
	})
	b.Run("Tail2", func(b *testing.B) {
		c := newL1()
		c.AccessRun(0x10000, 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AccessRun(0x10000, 2)
		}
	})
}

// BenchmarkAccessRunEngines pits the two run engines against each other
// on the resident 512-line kernel-text shape.
func BenchmarkAccessRunEngines(b *testing.B) {
	newL1 := func() *Cache {
		l2 := New(Config{Name: "L2", Size: 1 << 20, LineSize: 32, Assoc: 8, HitLatency: 10}, nil, 50)
		return New(Config{Name: "L1I", Size: 32 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}, l2, 0)
	}
	const lines = 512
	b.Run("Fused", func(b *testing.B) {
		c := newL1()
		c.accessRunFused(0x10000, lines)
		c.accessRunFused(0x10000, lines)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.accessRunFused(0x10000, lines)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lines), "ns/line")
	})
	b.Run("Scalar", func(b *testing.B) {
		c := newL1()
		c.accessRunScalar(0x10000, lines)
		c.accessRunScalar(0x10000, lines)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.accessRunScalar(0x10000, lines)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lines), "ns/line")
	})
}
