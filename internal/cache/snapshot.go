// Persistent-image support: serializable snapshots (internal/imagestore).
// A cache's state is its tag array, its per-set MRU registers, its age
// matrices, and its counters; everything else is derived from the Config
// at construction. The MRU registers must be stored, not rebuilt: a
// first-slot register hit deliberately skips the age-matrix touch, so a
// restored machine with cleared registers would diverge from the
// captured one on its first access.

package cache

import "fmt"

// MRUSnapshot is the serializable form of one set's MRU register.
//
//satlint:frozen stored MRU arrays are cast in place over the mapped image file
type MRUSnapshot struct {
	Tag, Tag2 uint32
	Way, Way2 int32
}

// Snapshot is the serializable state of one cache level.
type Snapshot struct {
	Config     Config
	MemLatency int
	Stats      Stats
	Tags       []uint32
	MRU        []MRUSnapshot
	Age        []uint64
}

// SnapshotState captures the level's state. The returned Tags and Age
// slices are copies; the snapshot is independent of the live cache.
func (c *Cache) SnapshotState() Snapshot {
	s := Snapshot{
		Config:     c.cfg,
		MemLatency: c.memLatency,
		Stats:      c.stats,
		Tags:       append([]uint32(nil), c.tags...),
		MRU:        make([]MRUSnapshot, len(c.mru)),
		Age:        append([]uint64(nil), c.age...),
	}
	for i, m := range c.mru {
		s.MRU[i] = MRUSnapshot{Tag: m.tag, Tag2: m.tag2, Way: m.way, Way2: m.way2}
	}
	return s
}

// Restore rebuilds a cache level over the given lower level. The Tags
// and Age slices are adopted without copying — they may point into a
// memory-mapped image, because a restored image is only ever forked
// (Clone copies the arrays) or read, never accessed directly.
func Restore(s Snapshot, next *Cache) (*Cache, error) {
	c := New(s.Config, next, s.MemLatency)
	if len(s.Tags) != len(c.tags) {
		return nil, fmt.Errorf("cache %s: snapshot has %d tags, geometry wants %d", s.Config.Name, len(s.Tags), len(c.tags))
	}
	if len(s.MRU) != len(c.mru) {
		return nil, fmt.Errorf("cache %s: snapshot has %d MRU registers, geometry wants %d", s.Config.Name, len(s.MRU), len(c.mru))
	}
	if len(s.Age) != len(c.age) {
		return nil, fmt.Errorf("cache %s: snapshot has %d age words, geometry wants %d", s.Config.Name, len(s.Age), len(c.age))
	}
	c.tags = s.Tags
	c.age = s.Age
	for i, m := range s.MRU {
		c.mru[i] = mruReg{tag: m.Tag, tag2: m.Tag2, way: m.Way, way2: m.Way2}
	}
	c.stats = s.Stats
	return c, nil
}
