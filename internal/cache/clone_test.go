// Clone must copy the whole line state in a fixed handful of
// allocations — one flat line-array copy, never per set or per line.

package cache

import (
	"testing"

	"repro/internal/arch"
)

func TestCloneCopiesStateAndDetaches(t *testing.T) {
	a := New(Config{Name: "L1I", Size: 32 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}, nil, 50)
	for i := 0; i < 200; i++ {
		a.Access(arch.PhysAddr(i * 64))
	}
	b := a.Clone(nil, nil, nil)
	if got, want := b.Occupancy(), a.Occupancy(); got != want {
		t.Fatalf("clone occupancy = %d, want %d", got, want)
	}
	b.FlushAll()
	if a.Occupancy() == 0 {
		t.Error("flushing the clone emptied the original")
	}
	if b.Occupancy() != 0 {
		t.Error("clone not flushed")
	}
}

func TestCloneAllocationBounded(t *testing.T) {
	a := DefaultL2() // 1MB, 32768 lines: a per-line or per-set copy would explode
	for i := 0; i < 4096; i++ {
		a.Access(arch.PhysAddr(i * 64))
	}
	var sink *Cache
	allocs := testing.AllocsPerRun(50, func() {
		sink = a.Clone(nil, nil, nil)
	})
	_ = sink
	// Header, tags, mru, age, skip, dirty: six flat allocations regardless
	// of line count.
	if max := 6.0; allocs > max {
		t.Errorf("Clone() = %.0f allocs for a 32768-line cache, want <= %.0f", allocs, max)
	}
}
