// Package cache models the processor cache hierarchy of the evaluation
// platform: per-core 32KB L1 instruction and data caches backed by a
// shared 1MB L2, all physically tagged.
//
// The hierarchy matters to shared address translation because hardware
// page-table walks triggered by TLB misses load page-table entries through
// the caches (into the L2, and on ARMv7 also the L1 data cache). With a
// private page table per process, multiple copies of a PTE mapping the
// same physical page occupy distinct cache lines, displacing other data;
// with shared page-table pages all processes walk the same physical PTE
// words and the duplicates disappear. The simulator exposes physical
// addresses for PTE words precisely so this effect is reproduced.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/alloc"
	"repro/internal/arch"
	"repro/internal/obs"
)

// Config describes one cache level.
type Config struct {
	// Name identifies the cache in diagnostics ("L1I", "L1D", "L2").
	Name string
	// Size is the capacity in bytes.
	Size int
	// LineSize is the line size in bytes (a power of two).
	LineSize int
	// Assoc is the set associativity.
	Assoc int
	// HitLatency is the access latency in cycles when the line is
	// present at this level.
	HitLatency int
}

// Stats counts cache events at one level.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// tagInvalid marks an empty way. Real tags are physical addresses
// shifted right by at least the line-size bits, so they never reach it.
const tagInvalid = ^uint32(0)

// colOnes has bit 0 of every byte set: shifted left by w it selects
// column w of an age matrix, and it is the per-byte borrow seed for the
// zero-byte search in the victim pick.
const colOnes = uint64(0x0101010101010101)

// mruReg is one set's two-entry MRU register: the last two tags that hit
// or filled, with the ways they reside in. 16 bytes, so both slots load
// together on the hit path.
type mruReg struct {
	tag  uint32
	tag2 uint32
	way  int32
	way2 int32
}

// Adaptive MRU promotion. A cycle over three or more tags in one set
// defeats both register slots, and every access then pays a pointless
// 16-byte rotate on top of the scan; after mruSkipThreshold consecutive
// register misses the register is invalidated and probe hits stop
// rotating into it. Deadness must not be permanent, though: a set whose
// reference pattern turns register-friendly again (the two-tag
// alternation of resident kernel text, most importantly) would otherwise
// scan forever, since only a fill — which resident lines never cause —
// also revives the register. So a dead register retries promotion every
// mruRetryPeriod probe hits; one retried rotate re-enters the steady
// register-hit path within a couple of visits when the pattern fits,
// and costs one rotate per period when it does not. Register hits and
// fills reset the streak. The register and the streak counter are pure
// acceleration state — recency, victims, and counters never depend on
// them — so none of this changes any observable behaviour.
const (
	mruSkipThreshold = 8
	mruRetryPeriod   = 8
)

// Cache is one level of a physically indexed, physically tagged cache
// with LRU replacement within each set.
//
// Three hot-path refinements over the obvious probe (behaviour-identical,
// since a tag is resident in at most one way of its set): the last two
// tags that hit in each set (mru) are compared first — one independent
// 16-byte load — catching both consecutive same-line references and the
// two-tags-per-set alternation of sequential kernel-text fetch; a
// first-slot MRU hit skips the recency update, because that way already
// holds its set's maximum stamp and re-stamping the maximum cannot
// change any within-set order; and the probe loop compares tags only —
// four or eight contiguous words — deferring victim selection (first
// invalid way, else the LRU way) to a miss.
//
// Within-set recency is the hardware age-matrix LRU scheme: one 64-bit
// word per set holds an 8x8 bit matrix where bit j of byte i means "way
// i used more recently than way j". Recording a use is two masked
// bit-ops on one word — set row w, clear column w — with no search, no
// clock, and no stamp array; the LRU victim is the unique valid way
// whose row is all zero, found branch-free with the zero-byte trick.
// The matrix induces exactly the order unique last-use timestamps
// would (bit[i][j] records every pairwise "later than"), so victim
// choice is identical to the stamped reference implementation — the
// differential test pins this — at one word per set instead of a word
// per way, which keeps the recency state resident in the host cache
// (a per-way stamp array for the simulated L2 alone is 256KB and
// measurably thrashes it).
type Cache struct {
	cfg Config
	// tags is the flat backing store: set si occupies
	// [si*assoc : (si+1)*assoc]. Flat indexing saves the dependent
	// slice-header load a [][]way layout pays on every access, and
	// cloning is one flat copy.
	tags  []uint32
	assoc int
	// mru holds each set's two most-recent tags and the ways they live
	// in. Sequential kernel-text fetch alternates exactly two tags per
	// set (text twice the L1I's per-way capacity), so a single MRU
	// register misses every time; the two-entry register catches that
	// pattern without scanning the set. Unlike a first-slot hit, a
	// second-slot hit must refresh its way's stamp — hence the way
	// indices. Invariant: a valid tag in either slot is resident in its
	// set at the recorded way, so a match is a hit with no probe; the
	// first slot's way additionally holds the set's maximum stamp, which
	// is what lets a first-slot hit skip the stamp store entirely.
	mru []mruReg
	// age holds each set's LRU age matrix: bit j of byte i set means way
	// i was used more recently than way j. Rows and columns beyond assoc
	// stay zero. First-slot MRU hits deliberately skip the update — the
	// MRU way's row is already full — so the word is only touched when
	// recency actually changes.
	age []uint64
	// skip counts each set's consecutive MRU-register misses, saturating
	// at mruSkipThreshold, where the register goes dead (see the const).
	// Not serialized: like the register contents it is transparent
	// acceleration state, and a restored machine starting from a zero
	// streak is behaviour-identical to the captured one.
	skip []uint8
	// dirty is the fused-run memo bitmap: while runN != 0, a clear bit si
	// asserts that set si is at the fixed point of the run described by
	// (runTag0, runN) — re-running its lines would mutate nothing (see
	// accessRunFused). Every mutation of per-set state funnels through
	// probe or hit2 (a first-slot register hit touches nothing), each of
	// which sets the bit; the fused engine re-verifies dirty sets and
	// clears the bits that check out. Like skip, this is transparent
	// acceleration state and is not serialized.
	dirty   []uint64
	runTag0 uint32
	runN    uint32
	// colsAll masks the valid columns (low assoc bits) of every byte of
	// an age word, so the victim search compares ways only against the
	// ways that exist.
	colsAll uint64
	// hitLat duplicates cfg.HitLatency as a flat field so the hit paths
	// never load through the wide Config struct.
	hitLat     int
	setShift   uint
	setMask    uint32
	next       *Cache
	memLatency int
	stats      Stats
	bus        *obs.Bus
}

// Compile-time check: every Cache is an obs.Source.
var _ obs.Source = (*Cache)(nil)

// New creates a cache level. next is the lower level; when next is nil a
// miss at this level costs memLatency additional cycles (main memory).
func New(cfg Config, next *Cache, memLatency int) *Cache {
	if cfg.Size <= 0 || cfg.LineSize <= 0 || cfg.Assoc <= 0 {
		panic(fmt.Sprintf("cache %s: invalid config %+v", cfg.Name, cfg))
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	nSets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a positive power of two", cfg.Name, nSets))
	}
	tags := make([]uint32, nSets*cfg.Assoc)
	for i := range tags {
		tags[i] = tagInvalid
	}
	mru := make([]mruReg, nSets)
	for i := range mru {
		mru[i].tag = tagInvalid
		mru[i].tag2 = tagInvalid
	}
	if cfg.Assoc > 8 {
		panic(fmt.Sprintf("cache %s: associativity %d exceeds the 8 ways one age-matrix word holds", cfg.Name, cfg.Assoc))
	}
	return &Cache{
		cfg:        cfg,
		tags:       tags,
		assoc:      cfg.Assoc,
		mru:        mru,
		age:        make([]uint64, nSets),
		skip:       make([]uint8, nSets),
		dirty:      make([]uint64, (nSets+63)/64),
		colsAll:    (uint64(1)<<uint(cfg.Assoc) - 1) * colOnes,
		hitLat:     cfg.HitLatency,
		setShift:   uint(bits.TrailingZeros(uint(cfg.LineSize))),
		setMask:    uint32(nSets - 1),
		next:       next,
		memLatency: memLatency,
	}
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Stats returns a snapshot of this level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without invalidating any lines.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// AttachBus makes the cache publish fill/evict events to b. A nil bus
// detaches. The bus applies to this level only; attach each level of a
// hierarchy separately (or use Hierarchy.AttachBus).
func (c *Cache) AttachBus(b *obs.Bus) { c.bus = b }

// Snapshot implements obs.Source.
func (c *Cache) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"accesses":  c.stats.Accesses,
		"hits":      c.stats.Hits,
		"misses":    c.stats.Misses,
		"evictions": c.stats.Evictions,
	}
}

// Reset implements obs.Source.
func (c *Cache) Reset() { c.ResetStats() }

// Access references the line containing pa, filling it on a miss, and
// returns the total latency in cycles including any lower-level accesses.
//
// Both register-hit paths live in this frame, so the hits that dominate
// real streams cost exactly one call from the fetch loops; the way scan
// and the miss path live in probe and fill.
func (c *Cache) Access(pa arch.PhysAddr) int {
	c.stats.Accesses++
	tag := uint32(pa) >> c.setShift
	si := tag & c.setMask
	m := &c.mru[si]
	if m.tag == tag {
		c.stats.Hits++
		return c.hitLat
	}
	if m.tag2 == tag {
		return c.hit2(tag, si, m)
	}
	return c.probe(pa, tag, si, m)
}

// probe scans the ways of set si after both register slots have missed:
// a hit touches the way's age row and — while the set's register-miss
// streak is below mruSkipThreshold — rotates the register, a miss falls
// through to fill. Callers have already counted the access.
func (c *Cache) probe(pa arch.PhysAddr, tag, si uint32, m *mruReg) int {
	// Invalidate the fused-run memo for this set. While runN == 0 no memo
	// exists to protect — the first AccessRun rebuilds the bitmap all-dirty
	// — so pure-scalar paths skip the bookkeeping entirely.
	if c.runN != 0 {
		c.dirty[si>>6] |= 1 << (si & 63)
	}
	base := int(si) * c.assoc
	set := c.tags[base : base+c.assoc]
	for i, tg := range set {
		if tg == tag {
			c.touch(si, uint(i))
			c.stats.Hits++
			c.promote(si, tag, int32(i), m)
			return c.hitLat
		}
	}
	return c.fill(pa, tag, si, base, set, m)
}

// promote applies the adaptive MRU-promotion policy to a probe hit:
// rotate the hit into the register while the set's consecutive
// register-miss streak is short, invalidate the register when the streak
// reaches mruSkipThreshold (an access cycle wider than two tags is
// defeating both slots), skip the rotate while dead, and retry promotion
// every mruRetryPeriod hits so a pattern that turns register-friendly
// again recovers the fast paths.
func (c *Cache) promote(si, tag uint32, way int32, m *mruReg) {
	s := &c.skip[si]
	switch {
	case *s < mruSkipThreshold-1: // live: rotate, lengthen the streak
		*s++
		*m = mruReg{tag: tag, way: way, tag2: m.tag, way2: m.way}
	case *s == mruSkipThreshold-1: // streak reached the threshold: go dead
		*s++
		m.tag, m.tag2 = tagInvalid, tagInvalid
	case *s < mruSkipThreshold+mruRetryPeriod-1: // dead: skip the rotate
		*s++
	default: // retry promotion with this hit
		*s = 0
		*m = mruReg{tag: tag, way: way, tag2: m.tag, way2: m.way}
	}
}

// touch records a use of way w in set si's age matrix: way w becomes
// more recent than every other way (set row w), and no way remains more
// recent than w (clear column w). Setting the row also sets bit [w][w];
// clearing the column clears it again, keeping the diagonal zero.
func (c *Cache) touch(si uint32, w uint) {
	w &= 7 // proves both shifts < 64, so no oversized-shift guards
	a := &c.age[si]
	*a = (*a | 0xFF<<(8*w)) &^ (colOnes << w)
}

// hit2 completes a second-slot MRU hit: the resident way is known, so
// this is a probe hit minus the scan. It is small enough to inline into
// AccessRun's per-line loop, which matters because two-tag alternation
// is the dominant pattern of sequential fetch over loops of code.
func (c *Cache) hit2(tag, si uint32, m *mruReg) int {
	if c.runN != 0 { // see probe: no memo to protect before the first run
		c.dirty[si>>6] |= 1 << (si & 63)
	}
	c.touch(si, uint(m.way2))
	c.stats.Hits++
	*m = mruReg{tag: tag, way: m.way2, tag2: m.tag, way2: m.way}
	if c.skip[si] != 0 {
		c.skip[si] = 0
	}
	return c.hitLat
}

// fill handles a miss: pick the victim, fetch the line from the next
// level, and install it.
func (c *Cache) fill(pa arch.PhysAddr, tag, si uint32, base int, set []uint32, m *mruReg) int {
	// The first invalid way wins — the tags the probe just scanned are
	// still hot — otherwise the set is full and the victim is the way at
	// the back of the recency order.
	victim := -1
	for i, tg := range set {
		if tg == tagInvalid {
			victim = i
			break
		}
	}
	if victim < 0 {
		// Full set: the LRU way is the unique valid way whose age-matrix
		// row is all zero. The zero-byte trick marks the high bit of the
		// lowest zero byte of y; any parked all-zero rows above assoc sit
		// in higher bytes, so TrailingZeros lands on the real victim.
		y := c.age[si] & c.colsAll
		victim = bits.TrailingZeros64((y-colOnes)&^y&0x8080808080808080) >> 3
	}
	c.stats.Misses++
	latency := c.hitLat
	if c.next != nil {
		latency += c.next.Access(pa)
	} else {
		latency += c.memLatency
	}
	evicted := set[victim]
	if evicted != tagInvalid {
		c.stats.Evictions++
		if c.bus.Wants(obs.EvCacheEvict) {
			c.bus.Publish(obs.Event{Kind: obs.EvCacheEvict, Source: c.cfg.Name, Addr: uint64(pa)})
		}
	}
	set[victim] = tag
	c.touch(si, uint(victim))
	// A fill always revives the register — the just-installed line is the
	// best possible first slot — and resets the adaptive miss streak.
	c.skip[si] = 0
	*m = mruReg{tag: tag, way: int32(victim), tag2: m.tag, way2: m.way}
	// The eviction may have displaced the tag now sitting in the second
	// MRU slot (the old MRU itself when assoc is 1); drop it so the
	// register never claims residency for an evicted line.
	if evicted != tagInvalid && m.tag2 == evicted {
		m.tag2 = tagInvalid
	}
	if c.bus.Wants(obs.EvCacheFill) {
		c.bus.Publish(obs.Event{Kind: obs.EvCacheFill, Source: c.cfg.Name, Addr: uint64(pa)})
	}
	return latency
}

// AccessRun references n consecutive lines starting with the one holding
// pa — exactly equivalent to n Access calls at pa, pa+LineSize,
// pa+2*LineSize, ... — and returns the accumulated stall cycles beyond
// one pipelined cycle per access, Σ max(latency-1, 0). It exists for the
// simulator's sequential-fetch loops (straight-line blocks, kernel fault
// paths), where it keeps the per-line work inside one frame instead of
// re-entering Access per line.
//
// Long wrapping runs go through accessRunFused, which proves whole sets
// are already in their post-run state and skips them without a single
// store (see its comment); the in-order row loop handles short runs and
// remains the reference — and the fallback — whenever the fused engine's
// set-by-set order could be observed (accessRunReorderSafe).
func (c *Cache) AccessRun(pa arch.PhysAddr, n int) int {
	if n <= 0 {
		return 0
	}
	// The fused engine's per-set fast path needs sets to see two lines of
	// the run — it only pays off when the run wraps the set index space.
	// Short runs — the overwhelmingly common straight-line block of a few
	// lines — run the plain row loop.
	if n > int(c.setMask)+1 && c.accessRunReorderSafe(n) {
		return c.accessRunFused(pa, n)
	}
	return c.accessRunScalar(pa, n)
}

// accessRunScalar is the in-order reference loop: one register probe per
// line, counters on the shared struct, events in stream order.
func (c *Cache) accessRunScalar(pa arch.PhysAddr, n int) int {
	tag := uint32(pa) >> c.setShift
	lineSize := arch.PhysAddr(1) << c.setShift
	stall := 0
	for i := 0; i < n; i++ {
		si := tag & c.setMask
		var lat int
		if m := &c.mru[si]; m.tag == tag {
			c.stats.Accesses++
			c.stats.Hits++
			lat = c.hitLat
		} else if m.tag2 == tag {
			c.stats.Accesses++
			lat = c.hit2(tag, si, m)
		} else {
			c.stats.Accesses++
			lat = c.probe(pa, tag, si, m)
		}
		if lat > 1 {
			stall += lat - 1
		}
		tag++
		pa += lineSize
	}
	return stall
}

// accessRunReorderSafe reports whether a run of n consecutive lines may
// be processed set-by-set instead of in stream order. Within one set the
// fused loop preserves stream order, so the only reordering is across
// sets, and that is unobservable exactly when (a) no subscriber wants
// fill or evict events at this or the next level (event order is the one
// externally visible sequence), and (b) the n lines land in n distinct
// sets of the next level, so no cross-set pair ever meets in a
// lower-level set (consecutive lines guarantee this while n does not
// exceed the next level's set count and line sizes match). Misses past
// the next level are a flat memory latency with no state at all.
func (c *Cache) accessRunReorderSafe(n int) bool {
	if c.bus.Wants(obs.EvCacheFill) || c.bus.Wants(obs.EvCacheEvict) {
		return false
	}
	nx := c.next
	if nx == nil {
		return true
	}
	if nx.setShift != c.setShift || nx.next != nil || n > int(nx.setMask)+1 {
		return false
	}
	return !nx.bus.Wants(obs.EvCacheFill) && !nx.bus.Wants(obs.EvCacheEvict)
}

// accessRunFused executes a wrapping run set-by-set with a zero-store
// fast path for sets that are already in their post-run state.
//
// The engine exploits a fixed-point property of the run's effect on one
// set. A set receiving lines A then B (k = 2) that both hit through the
// MRU register ends with register {B, A}, its adaptive streak at zero,
// and its age word equal to touch(touch(age, wayA), wayB). The touch
// sequence is idempotent — a second application passes the untouched
// rows through unchanged and rewrites rows/columns A and B to the same
// values — so if the set is ALREADY in exactly that end state, re-running
// its lines changes nothing: A hits the second register slot, B hits the
// second slot again, both reset an already-zero streak, the age word
// maps to itself, and the register returns to {B, A}. The register
// residency invariant (a valid register tag is resident at its recorded
// way) guarantees both lines still hit, so the set's whole contribution
// reduces to counters: k accesses, k hits, k*(hitLat-1) stall cycles.
//
// The fixed-point check is cheap — the expected register tags are
// derived from (pa, n), the streak must read zero, and the age fixed
// point is recomputed in a handful of ALU ops — but the dominant caller
// replays one identical run hundreds of thousands of times, and even
// the check is too much work to repeat per set per run. The dirty
// bitmap amortizes it: after a full pass has verified (or repaired,
// via the scalar per-line path) every set, a clear bit si vouches that
// set si is still at the run's fixed point, because every mutation of
// per-set state — probe hits, second-slot hits, fills, whether from
// scalar accesses or other runs — sets the bit. A repeat of the
// memoized run therefore touches only the sets dirtied since the last
// one, skipping clean sets 64 at a time at the bitmap word level, and
// re-verifies each dirty set after repairing it, clearing bits that
// check out. Changing the run shape (a different tag0 or n) discards
// the memo and forces a full verification pass, since a fixed point of
// one run says nothing about another.
//
// A set receiving one line (k = 1) is at its fixed point when the line
// holds the first register slot — a first-slot hit mutates nothing. A
// set receiving three or more lines is never at a fixed point: its
// first line cannot sit in the two-slot register at the end of a run,
// so its bit stays set and it runs scalar every time.
func (c *Cache) accessRunFused(pa arch.PhysAddr, n int) int {
	tag0 := uint32(pa) >> c.setShift
	un := uint32(n)
	nSets := uint32(c.setMask) + 1
	if c.runTag0 != tag0 || c.runN != un {
		// New run shape: every set must be verified once before the
		// bitmap can vouch for it. Mark only real sets — for a cache
		// smaller than one bitmap word, stray high bits would alias
		// valid sets through the index mask.
		c.runTag0, c.runN = tag0, un
		for i := range c.dirty {
			c.dirty[i] = ^uint64(0)
		}
		if nSets < 64 {
			c.dirty[0] = 1<<nSets - 1
		}
	}
	lineSize := arch.PhysAddr(1) << c.setShift
	// Lines per set: sets at run offset j < rem see full+1 lines. The
	// AccessRun gate guarantees n > nSets, so every set sees at least one.
	full := un / nSets
	rem := un % nSets
	hitLat := c.hitLat
	stall := 0
	var dirtyLines uint64
	setStride := arch.PhysAddr(nSets) * lineSize
	for w := range c.dirty {
		word := c.dirty[w]
		if word == 0 {
			continue
		}
		for word != 0 {
			b := uint32(bits.TrailingZeros64(word))
			word &^= 1 << b
			si := uint32(w)<<6 + b
			j := (si - tag0) & c.setMask
			k := full
			if j < rem {
				k++
			}
			dirtyLines += uint64(k)
			tagA := tag0 + j
			m := &c.mru[si]
			lpa := pa + arch.PhysAddr(j)*lineSize
			for tag := tagA; tag-tag0 < un; tag += nSets {
				var lat int
				if m.tag == tag {
					c.stats.Accesses++
					c.stats.Hits++
					lat = hitLat
				} else if m.tag2 == tag {
					c.stats.Accesses++
					lat = c.hit2(tag, si, m)
				} else {
					c.stats.Accesses++
					lat = c.probe(lpa, tag, si, m)
				}
				if lat > 1 {
					stall += lat - 1
				}
				lpa += setStride
			}
			// Re-verify: is the set now at this run's fixed point? The
			// per-line path above re-marked it dirty; clear the bit when
			// the end state checks out so the next identical run skips it.
			clean := false
			if k == 2 {
				if m.tag == tagA+nSets && m.tag2 == tagA && c.skip[si] == 0 {
					wA := uint(m.way2) & 7
					wB := uint(m.way) & 7
					la := c.age[si]
					t := (la | 0xFF<<(8*wA)) &^ (colOnes << wA)
					t = (t | 0xFF<<(8*wB)) &^ (colOnes << wB)
					clean = t == la
				}
			} else if k == 1 {
				clean = m.tag == tagA
			}
			if clean {
				c.dirty[w] &^= 1 << b
			}
		}
	}
	// Clean sets contribute only counters: every line hits.
	cleanLines := uint64(n) - dirtyLines
	c.stats.Accesses += cleanLines
	c.stats.Hits += cleanLines
	if hitLat > 1 {
		stall += int(cleanLines) * (hitLat - 1)
	}
	return stall
}

// Contains reports whether the line holding pa is resident at this level,
// without touching LRU state or counters.
func (c *Cache) Contains(pa arch.PhysAddr) bool {
	tag := uint32(pa) >> c.setShift
	si := tag & c.setMask
	base := int(si) * c.assoc
	set := c.tags[base : base+c.assoc]
	for _, tg := range set {
		if tg == tag {
			return true
		}
	}
	return false
}

// FlushAll invalidates every line at this level only.
func (c *Cache) FlushAll() {
	for i := range c.tags {
		c.tags[i] = tagInvalid
	}
	for i := range c.mru {
		c.mru[i].tag = tagInvalid
		c.mru[i].tag2 = tagInvalid
	}
	for i := range c.age {
		c.age[i] = 0
	}
	for i := range c.skip {
		c.skip[i] = 0
	}
	c.runN = 0 // every fused-run fixed point is gone with the lines
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, tg := range c.tags {
		if tg != tagInvalid {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of this level for a checkpoint fork, wired
// to the given lower level and event bus. The line array is one flat
// copy; nothing is allocated per line or per set. The header struct
// comes from a when one is supplied (the per-machine clone arena); nil
// allocates it directly.
func (c *Cache) Clone(next *Cache, bus *obs.Bus, a *alloc.Arena[Cache]) *Cache {
	var d *Cache
	if a != nil {
		d = a.New()
	} else {
		d = new(Cache)
	}
	*d = *c
	d.tags = append([]uint32(nil), c.tags...)
	d.mru = append([]mruReg(nil), c.mru...)
	d.age = append([]uint64(nil), c.age...)
	d.skip = append([]uint8(nil), c.skip...)
	d.dirty = append([]uint64(nil), c.dirty...)
	d.next = next
	d.bus = bus
	return d
}

// Hierarchy bundles the three-level cache system of one simulated core
// complex: private L1I/L1D in front of a shared L2.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
}

// DefaultHierarchy builds the Nexus 7 (Tegra 3 / Cortex-A9) cache system:
// 32KB 4-way L1I and L1D with 32-byte lines, and a 1MB 8-way shared L2.
func DefaultHierarchy() *Hierarchy {
	return HierarchyWithL2(DefaultL2())
}

// DefaultL2 builds the shared 1MB 8-way L2.
func DefaultL2() *Cache {
	return New(Config{Name: "L2", Size: 1 << 20, LineSize: 32, Assoc: 8, HitLatency: 10}, nil, 50)
}

// HierarchyWithL2 builds one core's private L1I/L1D in front of an
// existing L2 — the Tegra 3 arrangement, where all four cores share the
// 1MB L2. Several hierarchies built over the same L2 model an SMP.
func HierarchyWithL2(l2 *Cache) *Hierarchy {
	l1i := New(Config{Name: "L1I", Size: 32 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}, l2, 0)
	l1d := New(Config{Name: "L1D", Size: 32 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}, l2, 0)
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2}
}

// CloneWithL2 clones one core's private L1 levels over an already-cloned
// shared L2, for checkpoint forks of SMP machines: clone the L2 once,
// then each core's hierarchy over it.
func (h *Hierarchy) CloneWithL2(l2 *Cache, bus *obs.Bus, a *alloc.Arena[Cache]) *Hierarchy {
	return &Hierarchy{L1I: h.L1I.Clone(l2, bus, a), L1D: h.L1D.Clone(l2, bus, a), L2: l2}
}

// Fetch accesses pa through the instruction side and returns the latency.
func (h *Hierarchy) Fetch(pa arch.PhysAddr) int { return h.L1I.Access(pa) }

// FetchRun accesses n consecutive lines through the instruction side —
// equivalent to n Fetch calls one line apart — and returns the
// accumulated stall cycles beyond one pipelined cycle per line.
func (h *Hierarchy) FetchRun(pa arch.PhysAddr, n int) int { return h.L1I.AccessRun(pa, n) }

// Data accesses pa through the data side and returns the latency.
func (h *Hierarchy) Data(pa arch.PhysAddr) int { return h.L1D.Access(pa) }

// Walk models one page-table-walk memory reference: the hardware walker
// loads the PTE word through the L2 cache and, as on ARMv7 Cortex-A9,
// allocates it into the L1 data cache as well.
func (h *Hierarchy) Walk(pa arch.PhysAddr) int { return h.L1D.Access(pa) }

// FlushAll empties all three levels.
func (h *Hierarchy) FlushAll() {
	h.L1I.FlushAll()
	h.L1D.FlushAll()
	h.L2.FlushAll()
}

// ResetStats zeroes all three levels' counters.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
}

// AttachBus attaches all three levels to b.
func (h *Hierarchy) AttachBus(b *obs.Bus) {
	h.L1I.AttachBus(b)
	h.L1D.AttachBus(b)
	h.L2.AttachBus(b)
}
