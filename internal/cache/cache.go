// Package cache models the processor cache hierarchy of the evaluation
// platform: per-core 32KB L1 instruction and data caches backed by a
// shared 1MB L2, all physically tagged.
//
// The hierarchy matters to shared address translation because hardware
// page-table walks triggered by TLB misses load page-table entries through
// the caches (into the L2, and on ARMv7 also the L1 data cache). With a
// private page table per process, multiple copies of a PTE mapping the
// same physical page occupy distinct cache lines, displacing other data;
// with shared page-table pages all processes walk the same physical PTE
// words and the duplicates disappear. The simulator exposes physical
// addresses for PTE words precisely so this effect is reproduced.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/arch"
	"repro/internal/obs"
)

// Config describes one cache level.
type Config struct {
	// Name identifies the cache in diagnostics ("L1I", "L1D", "L2").
	Name string
	// Size is the capacity in bytes.
	Size int
	// LineSize is the line size in bytes (a power of two).
	LineSize int
	// Assoc is the set associativity.
	Assoc int
	// HitLatency is the access latency in cycles when the line is
	// present at this level.
	HitLatency int
}

// Stats counts cache events at one level.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// tagInvalid marks an empty way. Real tags are physical addresses
// shifted right by at least the line-size bits, so they never reach it.
const tagInvalid = ^uint32(0)

// Cache is one level of a physically indexed, physically tagged cache
// with LRU replacement within each set.
//
// Three hot-path refinements over the obvious probe (behaviour-identical,
// since a tag is resident in at most one way of its set): the tag that
// hit last in each set (mruTag) is compared first — one independent load —
// catching the consecutive same-line references that dominate instruction
// fetch; an MRU hit skips the recency-stamp store, because the MRU way
// already holds its set's maximum lastUse and no other way of the set can
// be touched while it stays MRU, so the within-set order that victim
// selection compares is unaffected; and the probe loop compares tags
// only — four or eight contiguous words — deferring victim selection
// (first invalid way, else the LRU way) to a miss, so hits never load
// the recency stamps of the other ways.
type Cache struct {
	cfg Config
	// tags and lastUse are the flat backing store, split
	// structure-of-arrays: set si occupies [si*assoc : (si+1)*assoc] of
	// each. Flat indexing saves the dependent slice-header load a
	// [][]way layout pays on every access; splitting the tags from the
	// recency stamps keeps a whole probe within a few host cache lines
	// (the stamps are only touched on a hit or for victim choice), and
	// cloning the arrays is two flat copies.
	tags       []uint32
	lastUse    []uint64
	assoc      int
	mruTag     []uint32 // per-set tag of the last hit or fill
	setShift   uint
	setMask    uint32
	clock      uint64
	next       *Cache
	memLatency int
	stats      Stats
	bus        *obs.Bus
}

// Compile-time check: every Cache is an obs.Source.
var _ obs.Source = (*Cache)(nil)

// New creates a cache level. next is the lower level; when next is nil a
// miss at this level costs memLatency additional cycles (main memory).
func New(cfg Config, next *Cache, memLatency int) *Cache {
	if cfg.Size <= 0 || cfg.LineSize <= 0 || cfg.Assoc <= 0 {
		panic(fmt.Sprintf("cache %s: invalid config %+v", cfg.Name, cfg))
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	nSets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a positive power of two", cfg.Name, nSets))
	}
	tags := make([]uint32, nSets*cfg.Assoc)
	for i := range tags {
		tags[i] = tagInvalid
	}
	mruTag := make([]uint32, nSets)
	for i := range mruTag {
		mruTag[i] = tagInvalid
	}
	return &Cache{
		cfg:        cfg,
		tags:       tags,
		lastUse:    make([]uint64, nSets*cfg.Assoc),
		assoc:      cfg.Assoc,
		mruTag:     mruTag,
		setShift:   uint(bits.TrailingZeros(uint(cfg.LineSize))),
		setMask:    uint32(nSets - 1),
		next:       next,
		memLatency: memLatency,
	}
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Stats returns a snapshot of this level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without invalidating any lines.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// AttachBus makes the cache publish fill/evict events to b. A nil bus
// detaches. The bus applies to this level only; attach each level of a
// hierarchy separately (or use Hierarchy.AttachBus).
func (c *Cache) AttachBus(b *obs.Bus) { c.bus = b }

// Snapshot implements obs.Source.
func (c *Cache) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"accesses":  c.stats.Accesses,
		"hits":      c.stats.Hits,
		"misses":    c.stats.Misses,
		"evictions": c.stats.Evictions,
	}
}

// Reset implements obs.Source.
func (c *Cache) Reset() { c.ResetStats() }

// Access references the line containing pa, filling it on a miss, and
// returns the total latency in cycles including any lower-level accesses.
func (c *Cache) Access(pa arch.PhysAddr) int {
	c.clock++
	c.stats.Accesses++
	tag := uint32(pa) >> c.setShift
	si := tag & c.setMask
	if c.mruTag[si] == tag {
		c.stats.Hits++
		return c.cfg.HitLatency
	}
	base := int(si) * c.assoc
	set := c.tags[base : base+c.assoc]
	for i, tg := range set {
		if tg == tag {
			c.lastUse[base+i] = c.clock
			c.stats.Hits++
			c.mruTag[si] = tag
			return c.cfg.HitLatency
		}
	}
	// Miss: pick the victim — the first invalid way, else the least
	// recently used (lastUse values are unique, so "first lowest" is
	// unambiguous) — over tags the probe above just made hot.
	victim := -1
	for i, tg := range set {
		if tg == tagInvalid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		oldest := ^uint64(0)
		for i := range set {
			if lu := c.lastUse[base+i]; lu < oldest {
				victim = i
				oldest = lu
			}
		}
	}
	c.stats.Misses++
	latency := c.cfg.HitLatency
	if c.next != nil {
		latency += c.next.Access(pa)
	} else {
		latency += c.memLatency
	}
	if set[victim] != tagInvalid {
		c.stats.Evictions++
		if c.bus.Wants(obs.EvCacheEvict) {
			c.bus.Publish(obs.Event{Kind: obs.EvCacheEvict, Source: c.cfg.Name, Addr: uint64(pa)})
		}
	}
	set[victim] = tag
	c.lastUse[base+victim] = c.clock
	c.mruTag[si] = tag
	if c.bus.Wants(obs.EvCacheFill) {
		c.bus.Publish(obs.Event{Kind: obs.EvCacheFill, Source: c.cfg.Name, Addr: uint64(pa)})
	}
	return latency
}

// Contains reports whether the line holding pa is resident at this level,
// without touching LRU state or counters.
func (c *Cache) Contains(pa arch.PhysAddr) bool {
	tag := uint32(pa) >> c.setShift
	si := tag & c.setMask
	base := int(si) * c.assoc
	set := c.tags[base : base+c.assoc]
	for _, tg := range set {
		if tg == tag {
			return true
		}
	}
	return false
}

// FlushAll invalidates every line at this level only.
func (c *Cache) FlushAll() {
	for i := range c.tags {
		c.tags[i] = tagInvalid
	}
	for i := range c.mruTag {
		c.mruTag[i] = tagInvalid
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, tg := range c.tags {
		if tg != tagInvalid {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of this level for a checkpoint fork, wired
// to the given lower level and event bus. The line array is one flat
// copy; nothing is allocated per line or per set.
func (c *Cache) Clone(next *Cache, bus *obs.Bus) *Cache {
	d := *c
	d.tags = append([]uint32(nil), c.tags...)
	d.lastUse = append([]uint64(nil), c.lastUse...)
	d.mruTag = append([]uint32(nil), c.mruTag...)
	d.next = next
	d.bus = bus
	return &d
}

// Hierarchy bundles the three-level cache system of one simulated core
// complex: private L1I/L1D in front of a shared L2.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
}

// DefaultHierarchy builds the Nexus 7 (Tegra 3 / Cortex-A9) cache system:
// 32KB 4-way L1I and L1D with 32-byte lines, and a 1MB 8-way shared L2.
func DefaultHierarchy() *Hierarchy {
	return HierarchyWithL2(DefaultL2())
}

// DefaultL2 builds the shared 1MB 8-way L2.
func DefaultL2() *Cache {
	return New(Config{Name: "L2", Size: 1 << 20, LineSize: 32, Assoc: 8, HitLatency: 10}, nil, 50)
}

// HierarchyWithL2 builds one core's private L1I/L1D in front of an
// existing L2 — the Tegra 3 arrangement, where all four cores share the
// 1MB L2. Several hierarchies built over the same L2 model an SMP.
func HierarchyWithL2(l2 *Cache) *Hierarchy {
	l1i := New(Config{Name: "L1I", Size: 32 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}, l2, 0)
	l1d := New(Config{Name: "L1D", Size: 32 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}, l2, 0)
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2}
}

// CloneWithL2 clones one core's private L1 levels over an already-cloned
// shared L2, for checkpoint forks of SMP machines: clone the L2 once,
// then each core's hierarchy over it.
func (h *Hierarchy) CloneWithL2(l2 *Cache, bus *obs.Bus) *Hierarchy {
	return &Hierarchy{L1I: h.L1I.Clone(l2, bus), L1D: h.L1D.Clone(l2, bus), L2: l2}
}

// Fetch accesses pa through the instruction side and returns the latency.
func (h *Hierarchy) Fetch(pa arch.PhysAddr) int { return h.L1I.Access(pa) }

// Data accesses pa through the data side and returns the latency.
func (h *Hierarchy) Data(pa arch.PhysAddr) int { return h.L1D.Access(pa) }

// Walk models one page-table-walk memory reference: the hardware walker
// loads the PTE word through the L2 cache and, as on ARMv7 Cortex-A9,
// allocates it into the L1 data cache as well.
func (h *Hierarchy) Walk(pa arch.PhysAddr) int { return h.L1D.Access(pa) }

// FlushAll empties all three levels.
func (h *Hierarchy) FlushAll() {
	h.L1I.FlushAll()
	h.L1D.FlushAll()
	h.L2.FlushAll()
}

// ResetStats zeroes all three levels' counters.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
}

// AttachBus attaches all three levels to b.
func (h *Hierarchy) AttachBus(b *obs.Bus) {
	h.L1I.AttachBus(b)
	h.L1D.AttachBus(b)
	h.L2.AttachBus(b)
}
