// Package cache models the processor cache hierarchy of the evaluation
// platform: per-core 32KB L1 instruction and data caches backed by a
// shared 1MB L2, all physically tagged.
//
// The hierarchy matters to shared address translation because hardware
// page-table walks triggered by TLB misses load page-table entries through
// the caches (into the L2, and on ARMv7 also the L1 data cache). With a
// private page table per process, multiple copies of a PTE mapping the
// same physical page occupy distinct cache lines, displacing other data;
// with shared page-table pages all processes walk the same physical PTE
// words and the duplicates disappear. The simulator exposes physical
// addresses for PTE words precisely so this effect is reproduced.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/arch"
	"repro/internal/obs"
)

// Config describes one cache level.
type Config struct {
	// Name identifies the cache in diagnostics ("L1I", "L1D", "L2").
	Name string
	// Size is the capacity in bytes.
	Size int
	// LineSize is the line size in bytes (a power of two).
	LineSize int
	// Assoc is the set associativity.
	Assoc int
	// HitLatency is the access latency in cycles when the line is
	// present at this level.
	HitLatency int
}

// Stats counts cache events at one level.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

type line struct {
	valid   bool
	tag     uint32
	lastUse uint64
}

// Cache is one level of a physically indexed, physically tagged cache
// with LRU replacement within each set.
//
// Two hot-path refinements over the obvious probe (behaviour-identical,
// since a tag is resident in at most one way of its set): the way that
// hit last in each set (mru) is probed first, catching the consecutive
// same-line references that dominate instruction fetch; and a miss costs
// a single pass over the set, because the victim (first invalid way, else
// the LRU way) is tracked during the tag probe instead of by a second
// scan.
type Cache struct {
	cfg        Config
	sets       [][]line
	mru        []int32 // per-set way index of the last hit or fill
	setShift   uint
	setMask    uint32
	clock      uint64
	next       *Cache
	memLatency int
	stats      Stats
	bus        *obs.Bus
}

// Compile-time check: every Cache is an obs.Source.
var _ obs.Source = (*Cache)(nil)

// New creates a cache level. next is the lower level; when next is nil a
// miss at this level costs memLatency additional cycles (main memory).
func New(cfg Config, next *Cache, memLatency int) *Cache {
	if cfg.Size <= 0 || cfg.LineSize <= 0 || cfg.Assoc <= 0 {
		panic(fmt.Sprintf("cache %s: invalid config %+v", cfg.Name, cfg))
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	nSets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a positive power of two", cfg.Name, nSets))
	}
	sets := make([][]line, nSets)
	backing := make([]line, nSets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	return &Cache{
		cfg:        cfg,
		sets:       sets,
		mru:        make([]int32, nSets),
		setShift:   uint(bits.TrailingZeros(uint(cfg.LineSize))),
		setMask:    uint32(nSets - 1),
		next:       next,
		memLatency: memLatency,
	}
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Stats returns a snapshot of this level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without invalidating any lines.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// AttachBus makes the cache publish fill/evict events to b. A nil bus
// detaches. The bus applies to this level only; attach each level of a
// hierarchy separately (or use Hierarchy.AttachBus).
func (c *Cache) AttachBus(b *obs.Bus) { c.bus = b }

// Snapshot implements obs.Source.
func (c *Cache) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"accesses":  c.stats.Accesses,
		"hits":      c.stats.Hits,
		"misses":    c.stats.Misses,
		"evictions": c.stats.Evictions,
	}
}

// Reset implements obs.Source.
func (c *Cache) Reset() { c.ResetStats() }

// Access references the line containing pa, filling it on a miss, and
// returns the total latency in cycles including any lower-level accesses.
func (c *Cache) Access(pa arch.PhysAddr) int {
	c.clock++
	c.stats.Accesses++
	tag := uint32(pa) >> c.setShift
	si := tag & c.setMask
	set := c.sets[si]
	if l := &set[c.mru[si]]; l.valid && l.tag == tag {
		l.lastUse = c.clock
		c.stats.Hits++
		return c.cfg.HitLatency
	}
	// One pass: probe every way for the tag while tracking the would-be
	// victim — the first invalid way, else the least recently used
	// (lastUse values are unique, so "first lowest" is unambiguous).
	victim, invalid := 0, -1
	var oldest uint64 = ^uint64(0)
	for i := range set {
		l := &set[i]
		if !l.valid {
			if invalid < 0 {
				invalid = i
			}
			continue
		}
		if l.tag == tag {
			l.lastUse = c.clock
			c.stats.Hits++
			c.mru[si] = int32(i)
			return c.cfg.HitLatency
		}
		if invalid < 0 && l.lastUse < oldest {
			victim = i
			oldest = l.lastUse
		}
	}
	if invalid >= 0 {
		victim = invalid
	}
	c.stats.Misses++
	latency := c.cfg.HitLatency
	if c.next != nil {
		latency += c.next.Access(pa)
	} else {
		latency += c.memLatency
	}
	if set[victim].valid {
		c.stats.Evictions++
		if c.bus.Wants(obs.EvCacheEvict) {
			c.bus.Publish(obs.Event{Kind: obs.EvCacheEvict, Source: c.cfg.Name, Addr: uint64(pa)})
		}
	}
	set[victim] = line{valid: true, tag: tag, lastUse: c.clock}
	c.mru[si] = int32(victim)
	if c.bus.Wants(obs.EvCacheFill) {
		c.bus.Publish(obs.Event{Kind: obs.EvCacheFill, Source: c.cfg.Name, Addr: uint64(pa)})
	}
	return latency
}

// Contains reports whether the line holding pa is resident at this level,
// without touching LRU state or counters.
func (c *Cache) Contains(pa arch.PhysAddr) bool {
	tag := uint32(pa) >> c.setShift
	si := tag & c.setMask
	set := c.sets[si]
	if l := &set[c.mru[si]]; l.valid && l.tag == tag {
		return true
	}
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// FlushAll invalidates every line at this level only.
func (c *Cache) FlushAll() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// Hierarchy bundles the three-level cache system of one simulated core
// complex: private L1I/L1D in front of a shared L2.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
}

// DefaultHierarchy builds the Nexus 7 (Tegra 3 / Cortex-A9) cache system:
// 32KB 4-way L1I and L1D with 32-byte lines, and a 1MB 8-way shared L2.
func DefaultHierarchy() *Hierarchy {
	return HierarchyWithL2(DefaultL2())
}

// DefaultL2 builds the shared 1MB 8-way L2.
func DefaultL2() *Cache {
	return New(Config{Name: "L2", Size: 1 << 20, LineSize: 32, Assoc: 8, HitLatency: 10}, nil, 50)
}

// HierarchyWithL2 builds one core's private L1I/L1D in front of an
// existing L2 — the Tegra 3 arrangement, where all four cores share the
// 1MB L2. Several hierarchies built over the same L2 model an SMP.
func HierarchyWithL2(l2 *Cache) *Hierarchy {
	l1i := New(Config{Name: "L1I", Size: 32 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}, l2, 0)
	l1d := New(Config{Name: "L1D", Size: 32 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}, l2, 0)
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2}
}

// Fetch accesses pa through the instruction side and returns the latency.
func (h *Hierarchy) Fetch(pa arch.PhysAddr) int { return h.L1I.Access(pa) }

// Data accesses pa through the data side and returns the latency.
func (h *Hierarchy) Data(pa arch.PhysAddr) int { return h.L1D.Access(pa) }

// Walk models one page-table-walk memory reference: the hardware walker
// loads the PTE word through the L2 cache and, as on ARMv7 Cortex-A9,
// allocates it into the L1 data cache as well.
func (h *Hierarchy) Walk(pa arch.PhysAddr) int { return h.L1D.Access(pa) }

// FlushAll empties all three levels.
func (h *Hierarchy) FlushAll() {
	h.L1I.FlushAll()
	h.L1D.FlushAll()
	h.L2.FlushAll()
}

// ResetStats zeroes all three levels' counters.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
}

// AttachBus attaches all three levels to b.
func (h *Hierarchy) AttachBus(b *obs.Bus) {
	h.L1I.AttachBus(b)
	h.L1D.AttachBus(b)
	h.L2.AttachBus(b)
}
