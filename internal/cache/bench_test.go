package cache

import (
	"testing"

	"repro/internal/arch"
)

// BenchmarkCacheAccess measures Cache.Access on the L1 geometry across
// the probe outcomes that dominate simulation time.
func BenchmarkCacheAccess(b *testing.B) {
	b.Run("HitMRU", func(b *testing.B) {
		c := New(Config{Name: "L1D", Size: 32 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}, nil, 50)
		c.Access(0x1000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Access(0x1000)
		}
	})
	b.Run("Hit", func(b *testing.B) {
		c := New(Config{Name: "L1D", Size: 32 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}, nil, 50)
		// Four resident lines in one set, cycled so the MRU way never hits.
		setStride := arch.PhysAddr(32 * (32 << 10) / (32 * 4)) // one full set wrap
		for w := 0; w < 4; w++ {
			c.Access(0x1000 + arch.PhysAddr(w)*setStride)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Access(0x1000 + arch.PhysAddr(i&3)*setStride)
		}
	})
	b.Run("MissEvict", func(b *testing.B) {
		c := New(Config{Name: "L1D", Size: 32 << 10, LineSize: 32, Assoc: 4, HitLatency: 1}, nil, 50)
		setStride := arch.PhysAddr(32 * (32 << 10) / (32 * 4))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Eight tags cycling through a 4-way set: every access misses
			// and displaces the LRU way.
			c.Access(0x1000 + arch.PhysAddr(i&7)*setStride)
		}
	})
}

// BenchmarkHierarchyWalk measures the page-walk reference path (L1D with
// L2 backing) that every main-TLB miss pays twice.
func BenchmarkHierarchyWalk(b *testing.B) {
	h := DefaultHierarchy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Walk(arch.PhysAddr(0x100000 + (i&255)*32))
	}
}
