package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func small(next *Cache, memLat int) *Cache {
	// 4 sets x 2 ways x 32B lines = 256B.
	return New(Config{Name: "t", Size: 256, LineSize: 32, Assoc: 2, HitLatency: 1}, next, memLat)
}

func TestMissThenHit(t *testing.T) {
	c := small(nil, 50)
	if lat := c.Access(0x1000); lat != 51 {
		t.Errorf("cold access latency = %d, want 51", lat)
	}
	if lat := c.Access(0x1000); lat != 1 {
		t.Errorf("warm access latency = %d, want 1", lat)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSameLineDifferentWordsHit(t *testing.T) {
	c := small(nil, 50)
	c.Access(0x1000)
	if lat := c.Access(0x101F); lat != 1 {
		t.Errorf("same-line access latency = %d, want 1", lat)
	}
	if lat := c.Access(0x1020); lat == 1 {
		t.Errorf("next line should miss")
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := small(nil, 50)
	// Three lines mapping to the same set (set stride = 4 sets * 32B = 128B).
	a, b, x := arch.PhysAddr(0x0000), arch.PhysAddr(0x0080), arch.PhysAddr(0x0100)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a most recent
	c.Access(x) // evicts b
	if !c.Contains(a) {
		t.Error("a should be resident")
	}
	if c.Contains(b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !c.Contains(x) {
		t.Error("x should be resident")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestTwoLevel(t *testing.T) {
	l2 := small(nil, 50)
	l1 := New(Config{Name: "l1", Size: 64, LineSize: 32, Assoc: 1, HitLatency: 1}, l2, 0)
	// Cold: L1 miss + L2 miss + memory.
	if lat := l1.Access(0x1000); lat != 1+1+50 {
		t.Errorf("cold two-level latency = %d, want 52", lat)
	}
	// Evict from tiny L1 but keep in L2: conflicting address for 2-set L1.
	l1.Access(0x1040) // same L1 set (2 sets * 32B = 64B stride), different L2 set
	if c := l1.Contains(0x1000); c {
		t.Fatal("0x1000 should have been evicted from direct-mapped L1")
	}
	if !l2.Contains(0x1000) {
		t.Fatal("0x1000 should still be in L2")
	}
	if lat := l1.Access(0x1000); lat != 1+1 {
		t.Errorf("L2-hit latency = %d, want 2", lat)
	}
}

func TestFlushAllAndOccupancy(t *testing.T) {
	c := small(nil, 50)
	c.Access(0x0)
	c.Access(0x20)
	if got := c.Occupancy(); got != 2 {
		t.Errorf("occupancy = %d, want 2", got)
	}
	c.FlushAll()
	if got := c.Occupancy(); got != 0 {
		t.Errorf("occupancy after flush = %d, want 0", got)
	}
}

func TestResetStats(t *testing.T) {
	c := small(nil, 50)
	c.Access(0x0)
	c.ResetStats()
	if s := c.Stats(); s.Accesses != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	if !c.Contains(0x0) {
		t.Error("lines must survive ResetStats")
	}
}

func TestDefaultHierarchy(t *testing.T) {
	h := DefaultHierarchy()
	if h.L1I.cfg.Size != 32<<10 || h.L1D.cfg.Size != 32<<10 || h.L2.cfg.Size != 1<<20 {
		t.Errorf("unexpected hierarchy geometry")
	}
	// A fetch miss fills L1I and L2 but not L1D.
	h.Fetch(0x4000)
	if !h.L1I.Contains(0x4000) || !h.L2.Contains(0x4000) {
		t.Error("fetch should fill L1I and L2")
	}
	if h.L1D.Contains(0x4000) {
		t.Error("fetch must not fill L1D")
	}
	// A page walk fills L1D and L2 (ARMv7 walker allocates into L1D).
	h.Walk(0x8000)
	if !h.L1D.Contains(0x8000) || !h.L2.Contains(0x8000) {
		t.Error("walk should fill L1D and L2")
	}
}

func TestSharedPTEDedup(t *testing.T) {
	// Two processes walking the same physical PTE word (shared PTP) touch
	// one L2 line; private page tables touch two. This is the pollution
	// reduction the paper reports.
	h := DefaultHierarchy()
	sharedPTE := arch.PhysAddr(0x100000)
	h.Walk(sharedPTE)
	h.Walk(sharedPTE) // second process, same word
	if h.L2.Stats().Misses != 1 {
		t.Errorf("shared PTP walks should miss L2 once, got %d", h.L2.Stats().Misses)
	}
	h.ResetStats()
	h.FlushAll()
	h.Walk(0x200000)
	h.Walk(0x300000) // second process, private copy
	if h.L2.Stats().Misses != 2 {
		t.Errorf("private PTP walks should miss L2 twice, got %d", h.L2.Stats().Misses)
	}
}

func TestHitAfterAccessProperty(t *testing.T) {
	// For any address, an access immediately followed by another access
	// to the same address hits at L1 latency.
	h := DefaultHierarchy()
	prop := func(raw uint32) bool {
		pa := arch.PhysAddr(raw)
		h.Fetch(pa)
		return h.Fetch(pa) == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "bad", Size: 0, LineSize: 32, Assoc: 1},
		{Name: "bad", Size: 256, LineSize: 33, Assoc: 1},
		{Name: "bad", Size: 100, LineSize: 32, Assoc: 1}, // non-power-of-two sets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg, nil, 50)
		}()
	}
}

// TestLRUProperty: after any access sequence confined to one set, the
// most recently accessed min(assoc, distinct) lines are resident.
func TestLRUProperty(t *testing.T) {
	prop := func(seq []uint8) bool {
		c := small(nil, 50) // 4 sets x 2 ways
		// Confine to set 0: stride = 128B.
		var order []arch.PhysAddr
		for _, s := range seq {
			pa := arch.PhysAddr(s%8) * 128
			c.Access(pa)
			// Track recency.
			for i, o := range order {
				if o == pa {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
			order = append(order, pa)
		}
		n := 2 // associativity
		if len(order) < n {
			n = len(order)
		}
		for _, pa := range order[len(order)-n:] {
			if !c.Contains(pa) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSharedL2AcrossHierarchies(t *testing.T) {
	// Two cores' hierarchies over one L2: a line fetched by core 0 is an
	// L2 hit for core 1 (the cross-core PTE reuse the SMP study counts).
	l2 := DefaultL2()
	c0 := HierarchyWithL2(l2)
	c1 := HierarchyWithL2(l2)
	c0.Fetch(0x4000)
	misses := l2.Stats().Misses
	lat := c1.Fetch(0x4000)
	if l2.Stats().Misses != misses {
		t.Error("core 1 should hit the line core 0 loaded into the shared L2")
	}
	if lat != 1+10 {
		t.Errorf("cross-core latency = %d, want L1 miss + L2 hit = 11", lat)
	}
	if c1.L1I.Stats().Hits != 0 {
		t.Error("core 1's private L1 must not have the line yet")
	}
}
