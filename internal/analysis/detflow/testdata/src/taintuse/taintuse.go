// Package taintuse feeds values from taintsrc into observable output
// without any local clock or rand use: every finding below exists only
// because the tainted facts crossed the package boundary.
package taintuse

import (
	"fmt"
	"os"

	"taintsrc"

	"repro/internal/obs"
)

// publishStamp is the seeded regression: a transitive wall-clock value
// lands in an obs event published from another package.
func publishStamp(bus *obs.Bus) {
	if bus.Wants(obs.EvPageFault) {
		bus.Publish(obs.Event{
			Kind:  obs.EvPageFault,
			Value: uint64(taintsrc.Elapsed(0)), // want `value derived from time\.Now flows into obs\.Event field`
		})
	}
}

// publishVar routes the taint through a local variable first.
func publishVar(bus *obs.Bus) {
	stamp := taintsrc.StampMillis()
	ev := obs.Event{Value: uint64(stamp)} // want `value derived from time\.Now flows into obs\.Event field`
	if bus.Wants(obs.EvPageFault) {
		bus.Publish(ev)
	}
}

// publishFieldStore builds the event field by field.
func publishFieldStore(bus *obs.Bus) {
	var ev obs.Event
	ev.Kind = obs.EvPageFault
	ev.Value = uint64(taintsrc.StampMillis()) // want `value derived from time\.Now flows into obs\.Event field`
	if bus.Wants(obs.EvPageFault) {
		bus.Publish(ev)
	}
}

// printStamp leaks a clock-derived value into stdout, where goldens
// live.
func printStamp() {
	fmt.Printf("elapsed=%d\n", taintsrc.Elapsed(7)) // want `value derived from time\.Now flows into stdout output`
}

// stderrStamp is the sanctioned direction: stderr carries no goldens.
func stderrStamp() {
	fmt.Fprintf(os.Stderr, "elapsed=%d\n", taintsrc.Elapsed(7))
}

// Snapshot mixes a deterministic counter with a rand-derived one: only
// the tainted store is reported.
func Snapshot() map[string]uint64 {
	m := map[string]uint64{}
	m["forks"] = uint64(taintsrc.Fixed())
	m["jitter"] = uint64(taintsrc.Jitter()) // want `value derived from rand\.Intn flows into metrics snapshot entry`
	return m
}

// methodTaint proves taint flows through method facts too.
func methodTaint() {
	var c taintsrc.Clock
	fmt.Println(c.Read()) // want `value derived from time\.Now flows into stdout output`
}

// cleanPublish shows deterministic values pass untouched.
func cleanPublish(bus *obs.Bus) {
	if bus.Wants(obs.EvPageFault) {
		bus.Publish(obs.Event{Kind: obs.EvPageFault, Value: uint64(taintsrc.Fixed())})
	}
}
