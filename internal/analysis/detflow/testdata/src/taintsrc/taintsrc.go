// Package taintsrc launders nondeterminism behind helpers, standing in
// for a utility package that legitimately reads the clock for
// stderr-side progress reporting. The helpers are fine in themselves;
// what matters is the tainted facts they export.
package taintsrc

import (
	"math/rand"
	"time"
)

// StampMillis reads the wall clock; the ignore directive placates
// nondet for the stderr-timing use case, but the tainted fact still
// propagates to every caller.
func StampMillis() int64 { // want fact:`StampMillis: .*time\.Now`
	//satlint:ignore nondet stderr progress timing only, never in results
	return time.Now().UnixMilli()
}

// Elapsed is tainted transitively: it never touches time itself.
func Elapsed(since int64) int64 { // want fact:`Elapsed: .*time\.Now`
	return StampMillis() - since
}

// Jitter draws from the global generator.
func Jitter() int { // want fact:`Jitter: .*rand\.Intn`
	//satlint:ignore nondet demo helper for the detflow fixture
	return rand.Intn(16)
}

// Fixed is deterministic: no fact, and callers stay clean.
func Fixed() int64 { return 42 }

// Clock carries taint through a method, exercising the Type.Method
// object key.
type Clock struct{}

// Read is tainted through StampMillis.
func (Clock) Read() int64 { // want fact:`Clock\.Read: .*time\.Now`
	return StampMillis()
}
