// Package detflow defines a satlint analyzer that upgrades nondet's
// local pattern-match into fact-based taint tracking. nondet bans
// calling time.Now or the global math/rand generator at all; what it
// cannot see is a *laundered* source — a helper in one package that
// reads the wall clock (perhaps behind a justified ignore directive,
// for stderr-only timing) whose return value a *different* package then
// feeds into an obs event, a metrics snapshot, or golden-bearing
// output. One such flow makes serial and -parallel runs diverge, which
// is the invariant the whole sweep architecture stands on.
//
// The analysis has tainted polarity: a function whose result derives
// from a wall-clock or global-rand read exports a TaintedFact; absence
// of a fact means deterministic. Taint is computed to a fixpoint within
// each package (helpers calling helpers) and propagates across package
// boundaries through the fact store, so the report lands at the sink —
// the event literal or output call — naming the original source, however
// many packages away it was read.
package detflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/nondet"
)

// TaintedFact marks a function whose return value derives from a
// nondeterministic source.
type TaintedFact struct {
	Root string // the originating source, e.g. "time.Now"
}

// AFact marks TaintedFact as a framework fact.
func (*TaintedFact) AFact() {}

// obsPath is the package whose events and snapshots are the guarded
// sinks.
const obsPath = "repro/internal/obs"

// Analyzer reports nondeterministic values flowing into observable
// output, across package boundaries.
var Analyzer = &framework.Analyzer{
	Name: "detflow",
	Doc: `forbid wall-clock and global-rand values flowing into observable output

Functions whose results derive from time.Now (and friends) or the
process-global math/rand generator are marked with a tainted fact —
transitively, across package boundaries. A tainted value reaching an
obs.Event field, a Bus.Publish argument, a Snapshot map store, or
stdout (fmt.Print*/Fprint* to os.Stdout) is reported at the sink,
naming the original source. This catches what nondet's local ban
cannot: a clock read legitimately ignored in one package (stderr
timing) whose value later leaks into golden-bearing output from
another.`,
	Run:       run,
	FactTypes: []framework.Fact{new(TaintedFact)},
}

func run(pass *framework.Pass) error {
	tainted := computeTaint(pass)
	checkSinks(pass, tainted)
	return nil
}

// computeTaint finds this package's tainted functions to a fixpoint,
// exports their facts, and returns them keyed by object.
func computeTaint(pass *framework.Pass) map[types.Object]string {
	tainted := map[types.Object]string{}
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil || tainted[obj] != "" {
				continue
			}
			if root := bodyTaintRoot(pass, fd.Body, tainted); root != "" {
				tainted[obj] = root
				changed = true
			}
		}
	}
	for obj, root := range tainted {
		if fn, ok := obj.(*types.Func); ok && keyable(fn) && !pass.IsTestFile(fn.Pos()) {
			pass.ExportObjectFact(fn, &TaintedFact{Root: root})
		}
	}
	return tainted
}

// keyable reports whether fn can carry an exported fact (package-level
// function or method of a named type).
func keyable(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return fn.Pkg() != nil && fn.Parent() == fn.Pkg().Scope()
	}
	return framework.NamedOf(sig.Recv().Type()) != nil
}

// bodyTaintRoot reports the source name if body contains a direct
// nondeterministic read or a call to a tainted function, else "".
func bodyTaintRoot(pass *framework.Pass, body *ast.BlockStmt, tainted map[types.Object]string) string {
	root := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if root != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		root = callTaintRoot(pass, call, tainted)
		return root == ""
	})
	return root
}

// callTaintRoot classifies one call: a direct source, a locally-known
// tainted function, or a dependency function with an imported
// TaintedFact.
func callTaintRoot(pass *framework.Pass, call *ast.CallExpr, tainted map[types.Object]string) string {
	fn := framework.CalledFunc(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	if framework.IsPkgFunc(fn, "time", nondet.WallClockFuncs()...) {
		return "time." + fn.Name()
	}
	if framework.IsPkgFunc(fn, "math/rand", nondet.GlobalRandFuncs()...) ||
		framework.IsPkgFunc(fn, "math/rand/v2", nondet.GlobalRandFuncs()...) {
		return "rand." + fn.Name()
	}
	if root := tainted[fn]; root != "" {
		return root
	}
	var f TaintedFact
	if pass.ImportObjectFact(fn, &f) {
		return f.Root
	}
	return ""
}

// checkSinks walks every function reporting tainted expressions that
// reach an observable sink. Within a function, identifiers assigned
// from tainted expressions are tainted too (one forward pass in source
// order, which covers straight-line flows like t := pkg.Stamp(); ev.V =
// t).
func checkSinks(pass *framework.Pass, tainted map[types.Object]string) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
				continue
			}
			vars := taintedVars(pass, fd.Body, tainted)
			inspectSinks(pass, fd, tainted, vars)
		}
	}
}

// taintedVars collects local variables assigned from tainted
// expressions.
func taintedVars(pass *framework.Pass, body *ast.BlockStmt, tainted map[types.Object]string) map[types.Object]string {
	vars := map[types.Object]string{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(assign.Rhs) {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil || vars[obj] != "" {
					continue
				}
				if root := exprTaintRoot(pass, assign.Rhs[i], tainted, vars); root != "" {
					vars[obj] = root
					changed = true
				}
			}
			return true
		})
	}
	return vars
}

// exprTaintRoot reports the source name if e contains a tainted call or
// a tainted identifier, else "".
func exprTaintRoot(pass *framework.Pass, e ast.Expr, tainted map[types.Object]string, vars map[types.Object]string) string {
	root := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if root != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			root = callTaintRoot(pass, n, tainted)
		case *ast.Ident:
			if obj := pass.TypesInfo.ObjectOf(n); obj != nil {
				root = vars[obj]
			}
		}
		return root == ""
	})
	return root
}

// inspectSinks reports tainted values reaching the sinks inside fd.
func inspectSinks(pass *framework.Pass, fd *ast.FuncDecl, tainted, vars map[types.Object]string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if framework.IsNamedType(pass.TypesInfo.TypeOf(n), obsPath, "Event") {
				for _, elt := range n.Elts {
					val := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						val = kv.Value
					}
					reportIfTainted(pass, val, tainted, vars, "obs.Event field")
				}
			}
		case *ast.CallExpr:
			checkCallSink(pass, n, tainted, vars)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if fd.Name.Name == "Snapshot" {
					if _, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						reportIfTainted(pass, n.Rhs[i], tainted, vars, "metrics snapshot entry")
					}
				}
				// A field store into an Event value is a construction
				// sink, same as a composite-literal field.
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok &&
					framework.IsNamedType(pass.TypesInfo.TypeOf(sel.X), obsPath, "Event") {
					reportIfTainted(pass, n.Rhs[i], tainted, vars, "obs.Event field")
				}
			}
		}
		return true
	})
}

// checkCallSink reports tainted arguments of Publish calls and
// stdout-bound fmt calls.
func checkCallSink(pass *framework.Pass, call *ast.CallExpr, tainted, vars map[types.Object]string) {
	fn := framework.CalledFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case framework.IsMethodOf(fn, obsPath, "Bus", "Publish"):
		for _, arg := range call.Args {
			// An Event-typed argument was already reported where it was
			// constructed (composite-literal or field-store sink);
			// re-reporting it at every publish site would double-count.
			if framework.IsNamedType(pass.TypesInfo.TypeOf(arg), obsPath, "Event") {
				continue
			}
			reportIfTainted(pass, arg, tainted, vars, "Bus.Publish argument")
		}
	case framework.IsPkgFunc(fn, "fmt", "Print", "Printf", "Println"):
		for _, arg := range call.Args {
			reportIfTainted(pass, arg, tainted, vars, "stdout output")
		}
	case framework.IsPkgFunc(fn, "fmt", "Fprint", "Fprintf", "Fprintln"):
		if len(call.Args) > 0 && isStdout(pass, call.Args[0]) {
			for _, arg := range call.Args[1:] {
				reportIfTainted(pass, arg, tainted, vars, "stdout output")
			}
		}
	}
}

// isStdout reports whether e is os.Stdout.
func isStdout(pass *framework.Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stdout" {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// reportIfTainted reports e when its value derives from a
// nondeterministic source.
func reportIfTainted(pass *framework.Pass, e ast.Expr, tainted, vars map[types.Object]string, sink string) {
	if root := exprTaintRoot(pass, e, tainted, vars); root != "" {
		pass.Reportf(e.Pos(),
			"value derived from %s flows into %s; simulator output must be deterministic — plumb scenario identity (sweep.Seed) instead",
			root, sink)
	}
}
