package detflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detflow"
)

// TestDetflow runs the laundering package first, then the consumer
// whose findings all depend on imported tainted facts.
func TestDetflow(t *testing.T) {
	analysistest.Run(t, detflow.Analyzer, "taintsrc", "taintuse")
}
