// Package analysistest runs a satlint analyzer over fixture packages
// under testdata/src and checks its diagnostics against `// want`
// comments, mirroring the x/tools package of the same name.
//
// A fixture line carrying expectations looks like
//
//	_ = time.Now() // want `time\.Now reads the wall clock`
//
// with one Go-quoted regexp (backquoted or double-quoted) per expected
// diagnostic on that line. Diagnostics suppressed by //satlint:ignore
// directives are filtered before matching, so fixtures can also assert
// the suppression contract itself.
//
// Every directory under testdata/src is registered as an importable
// package (its path relative to src), and module-internal imports like
// repro/internal/obs resolve to the real packages, so fixtures exercise
// analyzers against the actual simulator API.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// Run loads each fixture package (a path under testdata/src) and checks
// the analyzer's diagnostics against the fixture's want comments.
func Run(t *testing.T, a *framework.Analyzer, fixturePkgs ...string) {
	t.Helper()
	root, err := framework.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := framework.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if err := registerFixtures(loader, src); err != nil {
		t.Fatal(err)
	}
	for _, pkg := range fixturePkgs {
		units, err := loader.LoadDir(filepath.Join(src, filepath.FromSlash(pkg)), pkg)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", pkg, err)
		}
		for _, unit := range units {
			diags, err := framework.RunAnalyzers(unit, []*framework.Analyzer{a})
			if err != nil {
				t.Fatalf("running %s over %q: %v", a.Name, unit.ImportPath, err)
			}
			match(t, unit, diags)
		}
	}
}

// registerFixtures makes every directory under src importable by its
// relative path.
func registerFixtures(loader *framework.Loader, src string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		hasGo := false
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				hasGo = true
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		loader.AddPath(filepath.ToSlash(rel), path)
		return nil
	})
}

// expectation is one want regexp awaiting a diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

func match(t *testing.T, unit *framework.Unit, diags []framework.Diagnostic) {
	t.Helper()
	wants := collectWants(t, unit)
	for _, d := range diags {
		pos := unit.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// collectWants parses `// want` comments from every fixture file.
func collectWants(t *testing.T, unit *framework.Unit) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWant(t, unit.Fset, c)...)
			}
		}
	}
	return wants
}

func parseWant(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
	if !ok {
		return nil
	}
	pos := fset.Position(c.Pos())
	var out []*expectation
	for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
		lit, remainder, err := cutStringLit(rest)
		if err != nil {
			t.Fatalf("%s: bad want comment: %v", pos, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp: %v", pos, err)
		}
		out = append(out, &expectation{
			file: pos.Filename, line: pos.Line, re: re, raw: lit,
		})
		rest = remainder
	}
	return out
}

// cutStringLit splits one leading Go string literal (quoted or
// backquoted) off s.
func cutStringLit(s string) (lit, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty expectation")
	}
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated backquoted expectation")
		}
		return s[1 : 1+end], s[2+end:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '"' && s[i-1] != '\\' {
				unq, err := strconv.Unquote(s[:i+1])
				return unq, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated quoted expectation")
	default:
		return "", "", fmt.Errorf("expectation must be a quoted or backquoted regexp")
	}
}
