// Package analysistest runs a satlint analyzer over fixture packages
// under testdata/src and checks its diagnostics against `// want`
// comments, mirroring the x/tools package of the same name.
//
// A fixture line carrying expectations looks like
//
//	_ = time.Now() // want `time\.Now reads the wall clock`
//
// with one Go-quoted regexp (backquoted or double-quoted) per expected
// diagnostic on that line. Diagnostics suppressed by //satlint:ignore
// directives are filtered before matching, so fixtures can also assert
// the suppression contract itself.
//
// Fact expectations use the `fact:` prefix:
//
//	type Image struct{ N int } // want fact:`Image: .*frozen`
//
// and assert that, once every fixture package has been analyzed, the
// fact store holds a fact on an object declared on that line whose
// rendered form `<ObjectKey>: <fact struct>` matches the regexp. Facts
// are matched globally after all packages run, so a fact exported by
// one fixture package and asserted in another proves cross-package
// propagation (packages are analyzed with the framework Driver, which
// also round-trips every fact through the JSON codec at each package
// boundary).
//
// Every directory under testdata/src is registered as an importable
// package (its path relative to src), and module-internal imports like
// repro/internal/obs resolve to the real packages, so fixtures exercise
// analyzers against the actual simulator API.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// Run loads each fixture package (a path under testdata/src) in the
// given order and checks the analyzer's diagnostics and fact exports
// against the fixtures' want comments. List dependency fixtures before
// their dependents.
func Run(t *testing.T, a *framework.Analyzer, fixturePkgs ...string) {
	t.Helper()
	root, err := framework.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := framework.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if err := registerFixtures(loader, src); err != nil {
		t.Fatal(err)
	}
	driver := framework.NewDriver(loader, []*framework.Analyzer{a})
	var analyzed []*framework.Unit
	for _, pkg := range fixturePkgs {
		units, err := loader.LoadDir(filepath.Join(src, filepath.FromSlash(pkg)), pkg)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", pkg, err)
		}
		for _, unit := range units {
			diags, err := driver.Run(unit)
			if err != nil {
				t.Fatalf("running %s over %q: %v", a.Name, unit.ImportPath, err)
			}
			match(t, unit, diags)
			analyzed = append(analyzed, unit)
		}
	}
	matchFacts(t, driver, analyzed)
}

// registerFixtures makes every directory under src importable by its
// relative path.
func registerFixtures(loader *framework.Loader, src string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		hasGo := false
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				hasGo = true
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		loader.AddPath(filepath.ToSlash(rel), path)
		return nil
	})
}

// expectation is one want regexp awaiting a diagnostic (fact=false) or
// a fact export (fact=true).
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	fact bool
	met  bool
}

func match(t *testing.T, unit *framework.Unit, diags []framework.Diagnostic) {
	t.Helper()
	wants := collectWants(t, unit)
	for _, d := range diags {
		if d.Ignored {
			continue
		}
		pos := unit.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.fact && !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.fact && !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// matchFacts checks every fact: expectation across all analyzed units
// against the driver's final store. A store entry is located by
// resolving its object key in the unit whose import path owns it and
// rendering `<ObjectKey>: <fact>` ("<package>: <fact>" for package
// facts, anchored to the package clause line).
func matchFacts(t *testing.T, driver *framework.Driver, units []*framework.Unit) {
	t.Helper()
	var wants []*expectation
	for _, unit := range units {
		for _, w := range collectWants(t, unit) {
			if w.fact {
				wants = append(wants, w)
			}
		}
	}
	for _, e := range driver.Facts().Entries() {
		file, line, rendered, ok := renderFact(units, e)
		if !ok {
			continue // fact on an object outside the fixture units
		}
		for _, w := range wants {
			if !w.met && w.file == file && w.line == line && w.re.MatchString(rendered) {
				w.met = true
				break
			}
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected fact matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// renderFact locates entry's object in the analyzed units and renders
// the matchable form.
func renderFact(units []*framework.Unit, e framework.FactEntry) (file string, line int, rendered string, ok bool) {
	val := reflect.ValueOf(e.Fact)
	for val.Kind() == reflect.Pointer {
		val = val.Elem()
	}
	for _, unit := range units {
		if unit.ImportPath != e.Pkg {
			continue
		}
		if e.Object == "" {
			pos := unit.Fset.Position(unit.Files[0].Package)
			return pos.Filename, pos.Line, fmt.Sprintf("%s: %+v", e.Pkg, val.Interface()), true
		}
		obj := framework.LookupObjectKey(unit.Pkg, e.Object)
		if obj == nil {
			continue
		}
		pos := unit.Fset.Position(obj.Pos())
		return pos.Filename, pos.Line, fmt.Sprintf("%s: %+v", e.Object, val.Interface()), true
	}
	return "", 0, "", false
}

// collectWants parses `// want` comments from every fixture file.
func collectWants(t *testing.T, unit *framework.Unit) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWant(t, unit.Fset, c)...)
			}
		}
	}
	return wants
}

func parseWant(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
	if !ok {
		return nil
	}
	pos := fset.Position(c.Pos())
	var out []*expectation
	for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
		isFact := false
		if r, ok := strings.CutPrefix(rest, "fact:"); ok {
			isFact = true
			rest = r
		}
		lit, remainder, err := cutStringLit(rest)
		if err != nil {
			t.Fatalf("%s: bad want comment: %v", pos, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp: %v", pos, err)
		}
		out = append(out, &expectation{
			file: pos.Filename, line: pos.Line, re: re, raw: lit, fact: isFact,
		})
		rest = remainder
	}
	return out
}

// cutStringLit splits one leading Go string literal (quoted or
// backquoted) off s.
func cutStringLit(s string) (lit, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty expectation")
	}
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated backquoted expectation")
		}
		return s[1 : 1+end], s[2+end:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '"' && s[i-1] != '\\' {
				unq, err := strconv.Unquote(s[:i+1])
				return unq, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated quoted expectation")
	default:
		return "", "", fmt.Errorf("expectation must be a quoted or backquoted regexp")
	}
}
