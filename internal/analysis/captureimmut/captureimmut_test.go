package captureimmut_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/captureimmut"
)

// TestCaptureimmut runs the declaring package first, then the dependent
// package whose every finding requires the frozen facts to have crossed
// the package boundary.
func TestCaptureimmut(t *testing.T) {
	analysistest.Run(t, captureimmut.Analyzer, "frozensrc", "frozenuse")
}
