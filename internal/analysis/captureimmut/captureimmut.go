// Package captureimmut defines a satlint analyzer that machine-checks
// the checkpoint layer's core aliasing invariant: once captured, an
// image — and every piece of state a capture embeds by value — is
// immutable. Forks may copy it, loads may alias it (imagestore maps
// files read-only in spirit), but nothing may write through it, or every
// fork sharing the state silently diverges.
//
// The invariant is declared at the root: a type marked
//
//	//satlint:frozen <reason>
//
// is frozen-after-capture, and so is every named struct type reachable
// from it by value — struct fields, embedded structs, and slice/array
// elements. Reachability stops at pointers, maps, channels, functions,
// and interfaces: a pointer field is a deliberate boundary into live,
// mutable state. Frozen-ness is exported as a fact on each reachable
// type, so a write in a package that never saw the directive — the
// cross-package case reviews historically miss — is still reported.
//
// Writes on the capture path itself are declared with
//
//	//satlint:mutates <reason>
//
// on the constructing function, or happen through a fresh local (a
// variable this function allocated via composite literal, make, new, or
// zero-value declaration), which the analyzer recognizes without
// annotation.
package captureimmut

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// FrozenFact marks a named type as frozen after capture. It is exported
// for the type carrying the //satlint:frozen directive and for every
// named struct type reachable from it by value.
type FrozenFact struct {
	Reason string // the directive's reason, or "reachable from <root>"
}

// AFact marks FrozenFact as a framework fact.
func (*FrozenFact) AFact() {}

// Analyzer reports writes to frozen-after-capture state.
var Analyzer = &framework.Analyzer{
	Name: "captureimmut",
	Doc: `forbid writes to frozen-after-capture checkpoint state

Types marked //satlint:frozen <reason> (checkpoint images and the
snapshot types they embed by value) must not be written after
construction: captured state is shared by every fork and by the mmap'd
image store, so one write corrupts every sharer. This analyzer exports a
frozen fact for each marked type and everything value-reachable from it,
then reports field stores, element stores, and in-place appends into
frozen values — across package boundaries — unless the write goes
through a local this function freshly allocated or the function is
marked //satlint:mutates <reason>.`,
	Run:       run,
	FactTypes: []framework.Fact{new(FrozenFact)},
}

func run(pass *framework.Pass) error {
	exportFrozen(pass)
	checkWrites(pass)
	return nil
}

// exportFrozen finds //satlint:frozen directives on type declarations
// and exports FrozenFact for each marked type and its value-reachable
// named struct types.
func exportFrozen(pass *framework.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				reason := frozenReason(gd.Doc, ts.Doc, ts.Comment)
				if reason == "" {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				pass.ExportObjectFact(obj, &FrozenFact{Reason: reason})
				spreadFrozen(pass, obj.Type(), obj.Name(), map[*types.TypeName]bool{obj: true})
			}
		}
	}
}

// frozenReason extracts the reason of the first //satlint:frozen
// directive among the candidate comment groups, or "".
func frozenReason(groups ...*ast.CommentGroup) string {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "satlint:frozen")
			if !ok {
				continue
			}
			if reason := strings.TrimSpace(rest); reason != "" {
				return reason
			}
		}
	}
	return ""
}

// spreadFrozen exports FrozenFact for every named struct type reachable
// from t by value: struct fields (including embedded) and slice/array
// elements, through named types, stopping at pointers, maps, channels,
// functions, and interfaces.
func spreadFrozen(pass *framework.Pass, t types.Type, root string, seen map[*types.TypeName]bool) {
	switch t := t.(type) {
	case *types.Named:
		tn := t.Obj()
		if tn.Pkg() == nil {
			return
		}
		if !seen[tn] {
			seen[tn] = true
			pass.ExportObjectFact(tn, &FrozenFact{Reason: "reachable by value from frozen " + root})
		}
		spreadFrozen(pass, t.Underlying(), root, seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			spreadFrozen(pass, t.Field(i).Type(), root, seen)
		}
	case *types.Slice:
		spreadFrozen(pass, t.Elem(), root, seen)
	case *types.Array:
		spreadFrozen(pass, t.Elem(), root, seen)
	}
	// Pointers, maps, channels, funcs, interfaces, basics: boundary.
}

// isFrozen reports whether t (behind pointers) is a named type carrying
// a FrozenFact, returning the reason.
func isFrozen(pass *framework.Pass, t types.Type) (string, bool) {
	named := framework.NamedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return "", false
	}
	var f FrozenFact
	if pass.ImportObjectFact(named.Obj(), &f) {
		return f.Reason, true
	}
	return "", false
}

// checkWrites reports assignments and in/decrements that store into
// frozen state outside an allowance.
func checkWrites(pass *framework.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
				continue
			}
			if reason := mutatesReason(fd.Doc); reason != "" {
				continue // declared capture-path writer
			}
			fresh := freshLocals(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkStore(pass, lhs, fresh)
					}
				case *ast.IncDecStmt:
					checkStore(pass, n.X, fresh)
				}
				return true
			})
		}
	}
}

// mutatesReason extracts the reason of a //satlint:mutates directive in
// the function's doc comment, or "".
func mutatesReason(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "satlint:mutates")
		if !ok {
			continue
		}
		if reason := strings.TrimSpace(rest); reason != "" {
			return reason
		}
	}
	return ""
}

// freshLocals collects the objects of variables this function body
// visibly allocates itself: assigned or declared from a composite
// literal, &composite-literal, make, or new, or declared without a
// value (zero value). Writes through these cannot reach captured state.
func freshLocals(pass *framework.Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) || !isFreshExpr(pass, n.Rhs[i]) {
					continue
				}
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					fresh[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if len(n.Values) > i && !isFreshExpr(pass, n.Values[i]) {
					continue
				}
				if obj := pass.TypesInfo.ObjectOf(name); obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

// isFreshExpr reports whether e is a freshly allocating expression.
func isFreshExpr(pass *framework.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return id.Name == "make" || id.Name == "new"
			}
		}
	}
	return false
}

// deepValue reports whether t has value semantics all the way down —
// no slice, map, pointer, channel, function, or interface component —
// so that assigning it always produces an independent copy.
func deepValue(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return true
	}
	seen[t] = true
	switch t := t.Underlying().(type) {
	case *types.Basic:
		return t.Kind() != types.UnsafePointer
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if !deepValue(t.Field(i).Type(), seen) {
				return false
			}
		}
		return true
	case *types.Array:
		return deepValue(t.Elem(), seen)
	}
	return false
}

// checkStore reports lhs when it stores into frozen state: the store
// target is a selector or index expression some step of which has a
// frozen named type, and the chain is not rooted at a fresh local.
func checkStore(pass *framework.Pass, lhs ast.Expr, fresh map[types.Object]bool) {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return // a bare identifier store replaces a copy, not shared state
	}
	if root := framework.RootIdent(lhs); root != nil {
		if obj := pass.TypesInfo.ObjectOf(root); obj != nil {
			if fresh[obj] {
				return
			}
			// A local (parameter, receiver, or variable) whose type has
			// deep value semantics is always a private copy; writes to
			// it cannot reach captured state.
			if v, ok := obj.(*types.Var); ok &&
				obj.Parent() != pass.Pkg.Scope() &&
				deepValue(v.Type(), map[types.Type]bool{}) {
				return
			}
		}
	}
	// Walk the access chain outside-in; report the outermost frozen step.
	for e := lhs; ; {
		e = ast.Unparen(e)
		if reason, ok := isFrozen(pass, pass.TypesInfo.TypeOf(e)); ok {
			named := framework.NamedOf(pass.TypesInfo.TypeOf(e))
			pass.Reportf(lhs.Pos(),
				"write into frozen type %s (%s); captured state is shared by every fork — copy it first, or mark the constructor //satlint:mutates",
				named.Obj().Name(), reason)
			return
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return
		}
	}
}
