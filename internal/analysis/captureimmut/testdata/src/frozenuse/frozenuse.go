// Package frozenuse writes to frozensrc state without ever seeing the
// //satlint:frozen directive: the frozen facts arrive through the
// import, so every reported line below proves cross-package
// propagation.
package frozenuse

import "frozensrc"

// Corrupt is the seeded regression from the checkpoint PRs: a
// deliberate write into a captured image from another package.
func Corrupt(img *frozensrc.Image) {
	img.Epoch = 99 // want `write into frozen type Image`
}

// CorruptSlot writes an element of the image's slot array in place —
// the exact aliasing hazard the imagestore mmap sharing forbids.
func CorruptSlot(img *frozensrc.Image) {
	img.Slots[0].Table = -1 // want `write into frozen type Slot`
}

// GrowInPlace appends through the frozen image's slice header.
func GrowInPlace(img *frozensrc.Image) {
	img.Slots = append(img.Slots, frozensrc.Slot{}) // want `write into frozen type Image`
}

// CopyThenWrite takes a full deep-value copy of one slot: legitimate.
func CopyThenWrite(img *frozensrc.Image) frozensrc.Slot {
	s := img.Slots[0]
	s.Domain = 7
	return s
}

// FreshImage builds its own image and may write it freely before
// handing it over to capture.
func FreshImage() *frozensrc.Image {
	img := frozensrc.Image{Slots: make([]frozensrc.Slot, 4)}
	img.Slots[2] = frozensrc.Slot{Table: 2}
	img.Epoch = 1
	return &img
}

// MutateLive writes the pointer-reachable live side through a bare
// *Live: Live is beyond the value-reachability boundary, so this is
// allowed.
func MutateLive(l *frozensrc.Live) {
	l.Hits++
}

// Blessed declares itself part of the capture path.
//
//satlint:mutates restores a just-loaded image before it is published
func Blessed(img *frozensrc.Image) {
	img.Epoch = 4
}
