// Package frozensrc declares a capture-frozen image type, standing in
// for internal/checkpoint: the package that owns the frozen directive
// and the legitimate capture path.
package frozensrc

// Live is only reachable through a pointer: the frozen closure stops at
// the indirection, so Live stays mutable.
type Live struct {
	Hits int
}

// Slot is embedded by value in Image's slice, so freezing Image freezes
// Slot too.
type Slot struct { // want fact:`Slot: .*reachable by value from frozen Image`
	Table  int32
	Domain uint8
}

// Image is a captured checkpoint: shared by every fork, never written.
//
//satlint:frozen captured images are shared by every fork
type Image struct { // want fact:`Image: .*captured images are shared by every fork`
	Epoch int64
	Slots []Slot
	Live  *Live
}

// Capture builds an image through a fresh local: the construction
// writes are recognized without any annotation.
func Capture(n int) *Image {
	img := Image{Slots: make([]Slot, n)}
	for i := range img.Slots {
		img.Slots[i] = Slot{Table: int32(i)}
	}
	img.Epoch = 1
	return &img
}

// Rewrite writes a captured image in its own package: reported even
// here, where the directive is in plain sight.
func Rewrite(img *Image) {
	img.Epoch = 2 // want `write into frozen type Image`
}

// Patch is a declared capture-path writer: the directive shifts the
// burden to review of its stated reason.
//
//satlint:mutates re-stamps the epoch before first publication
func Patch(img *Image) {
	img.Epoch = 3
}

// Touch mutates the pointer-reachable side: Live is not frozen, but the
// access path runs through the frozen Image, which is exactly how a
// fork-visible write looks.
func Touch(img *Image) {
	img.Live.Hits++ // want `write into frozen type Image`
}

// Scratch mutates a private deep-value copy: a Slot assignment copies
// the whole struct, so the write cannot reach captured state.
func Scratch(img *Image) Slot {
	s := img.Slots[0]
	s.Table = 9
	return s
}
