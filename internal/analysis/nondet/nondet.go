// Package nondet defines a satlint analyzer that flags sources of
// run-to-run nondeterminism: wall-clock reads and globally-seeded
// randomness. The simulator's contract (see internal/sweep and
// internal/obs) is that serial and parallel runs are byte-identical, so
// no counter or output may ever derive from time.Now or from math/rand's
// shared global source, and every rand.Rand must be seeded from scenario
// identity (sweep.Seed, a plumbed seed value, or a constant).
package nondet

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer flags wall-clock calls, globally-seeded math/rand use, and
// rand.NewSource seeds that do not flow from scenario identity.
var Analyzer = &framework.Analyzer{
	Name: "nondet",
	Doc: `forbid wall-clock time and globally-seeded randomness

The simulator promises byte-identical output across serial and -parallel
runs. This analyzer flags every use of time.Now/Since/Until and friends,
every call through math/rand's process-global generator (rand.Intn,
rand.Float64, rand.Seed, ...), and — outside _test.go files — every
rand.NewSource whose seed expression neither is a constant, nor calls a
Seed helper (sweep.Seed), nor mentions a plumbed seed identifier.`,
	Run: run,
}

// wallClock lists package time functions that read the wall clock or
// schedule against it.
var wallClock = []string{
	"Now", "Since", "Until", "Tick", "NewTicker", "NewTimer", "After", "AfterFunc",
}

// globalRand lists package-level math/rand functions backed by the
// process-global, scheduling-dependent source.
var globalRand = []string{
	"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n", "Uint32", "Uint64",
	"Float32", "Float64", "ExpFloat64", "NormFloat64", "Perm", "Shuffle",
	"Read", "Seed",
}

// WallClockFuncs returns the package time functions this analyzer bans.
// The detflow analyzer seeds its taint analysis from the same list, so
// the two stay in lockstep by construction.
func WallClockFuncs() []string { return append([]string(nil), wallClock...) }

// GlobalRandFuncs returns the banned package-level math/rand functions,
// shared with detflow for the same reason as WallClockFuncs.
func GlobalRandFuncs() []string { return append([]string(nil), globalRand...) }

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkIdent(pass, n)
			case *ast.CallExpr:
				checkNewSource(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkIdent flags any use (call or value) of a banned function.
func checkIdent(pass *framework.Pass, id *ast.Ident) {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if framework.IsPkgFunc(fn, "time", wallClock...) {
		pass.Reportf(id.Pos(),
			"time.%s reads the wall clock; simulator output must be deterministic (emit timings on stderr behind an ignore directive if they are for humans)",
			fn.Name())
	}
	if framework.IsPkgFunc(fn, "math/rand", globalRand...) ||
		framework.IsPkgFunc(fn, "math/rand/v2", globalRand...) {
		pass.Reportf(id.Pos(),
			"rand.%s draws from the process-global generator; use a rand.Rand seeded from scenario identity (sweep.Seed) instead",
			fn.Name())
	}
}

// checkNewSource enforces, outside test files, that rand.NewSource seeds
// flow from scenario identity: a constant, a call to a Seed helper, or
// an expression mentioning a seed-named identifier.
func checkNewSource(pass *framework.Pass, call *ast.CallExpr) {
	fn := framework.CalledFunc(pass.TypesInfo, call)
	if !framework.IsPkgFunc(fn, "math/rand", "NewSource") || len(call.Args) != 1 {
		return
	}
	if pass.IsTestFile(call.Pos()) {
		return // tests may derive seeds from local case structure
	}
	if seedFlows(pass, call.Args[0]) {
		return
	}
	pass.Reportf(call.Pos(),
		"rand.NewSource seed does not flow from scenario identity; derive it from sweep.Seed, a plumbed seed value, or a constant")
}

// seedFlows reports whether the seed expression is constant, calls a
// Seed helper, or mentions an identifier or field named like a seed.
func seedFlows(pass *framework.Pass, seed ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[seed]; ok && tv.Value != nil {
		return true
	}
	flows := false
	ast.Inspect(seed, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := framework.CalledFunc(pass.TypesInfo, n); fn != nil && fn.Name() == "Seed" {
				flows = true
			}
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "seed") {
				flows = true
			}
		}
		return !flows
	})
	return flows
}
