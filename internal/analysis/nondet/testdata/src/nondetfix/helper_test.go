package nondetfix

import "math/rand"

// Test files may derive seeds from local case structure: the NewSource
// provenance rule is suspended here, so no diagnostic is expected.
func testOnlySource(caseIndex int64) *rand.Rand {
	return rand.New(rand.NewSource(caseIndex))
}
