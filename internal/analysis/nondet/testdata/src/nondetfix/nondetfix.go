// Package nondetfix exercises the nondet analyzer: wall-clock reads,
// global math/rand use, and rand.NewSource seed provenance.
package nondetfix

import (
	"math/rand"
	"time"
)

// Seed mimics sweep.Seed: scenario identity hashed to an int64.
func Seed(parts ...string) int64 { return int64(len(parts)) }

// clockValue stands in for any value with no scenario provenance.
func clockValue() int64 { return 0 }

func wallClock() {
	_ = time.Now()              // want `time\.Now reads the wall clock`
	_ = time.Since(time.Time{}) // want `time\.Since reads the wall clock`
	t := time.NewTimer(0)       // want `time\.NewTimer reads the wall clock`
	_ = t
}

func globalRand() {
	_ = rand.Intn(10)                  // want `rand\.Intn draws from the process-global generator`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global generator`
}

func unseededSource() *rand.Rand {
	return rand.New(rand.NewSource(clockValue())) // want `rand\.NewSource seed does not flow from scenario identity`
}

func goodSources(name string, cfgSeed int64) {
	_ = rand.New(rand.NewSource(Seed(name)))  // Seed helper: accepted
	_ = rand.New(rand.NewSource(42))          // constant: accepted
	_ = rand.New(rand.NewSource(cfgSeed + 1)) // plumbed seed identifier: accepted
}

func ignored() {
	_ = time.Now() //satlint:ignore nondet progress timing for humans, never in results
	//satlint:ignore nondet own-line placement covers the line below
	_ = time.Now()
	//satlint:ignore maporder directive names a different analyzer, so nondet still fires
	_ = time.Now() // want `time\.Now reads the wall clock`
}
