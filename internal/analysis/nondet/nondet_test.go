package nondet_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nondet"
)

func TestNondet(t *testing.T) {
	analysistest.Run(t, nondet.Analyzer, "nondetfix")
}
