// Package deprecated defines a satlint analyzer that flags new uses of
// module-internal symbols carrying a "// Deprecated:" doc comment — the
// standard Go convention — as core.Kernel.OnPageFault was before
// Kernel.Subscribe from the observability rework retired it. The
// declaring package itself is exempt: it must keep honoring the symbol
// for compatibility.
//
// The analyzer resolves each used object to its declaration site and
// reads the deprecation notice from the source file, so it works both in
// the standalone driver (everything type-checked from source) and under
// `go vet -vettool` (declarations found through export-data positions).
package deprecated

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// ModulePaths lists the import-path prefixes whose symbols are subject
// to deprecation checking. Only this module's own API is policed;
// standard-library deprecations are the stock go vet's business.
// analysistest overrides this to point at fixture packages.
var ModulePaths = []string{"repro"}

// Analyzer flags uses of deprecated module symbols.
var Analyzer = &framework.Analyzer{
	Name: "deprecated",
	Doc: `forbid new uses of module symbols marked "// Deprecated:"

A symbol whose doc comment contains a "Deprecated:" paragraph (func,
method, type, const, var, or struct field such as Kernel.OnPageFault)
must not gain new references outside its declaring package; use the
replacement the notice names. The declaring package may keep honoring
the symbol without annotation.`,
	Run: run,
}

func run(pass *framework.Pass) error {
	cache := newDeclCache()
	passPath := strings.TrimSuffix(framework.BasePath(pass.Pkg.Path()), "_test")
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if obj.Pkg().Path() == passPath {
				return true // declaring package keeps honoring its own symbols
			}
			if !inModule(obj.Pkg().Path()) {
				return true
			}
			pos := pass.Fset.Position(obj.Pos())
			if pos.Filename == "" {
				return true
			}
			if why, ok := cache.notice(pos.Filename, pos.Line, obj.Name()); ok {
				pass.Reportf(id.Pos(), "use of deprecated symbol %s.%s: %s",
					obj.Pkg().Name(), qualifiedName(obj), why)
			}
			return true
		})
	}
	return nil
}

func inModule(path string) bool {
	for _, m := range ModulePaths {
		if path == m || strings.HasPrefix(path, m+"/") {
			return true
		}
	}
	return false
}

// qualifiedName renders methods and fields as Type.Name when the
// receiver/parent type is recoverable, else just the name.
func qualifiedName(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named := framework.NamedOf(sig.Recv().Type()); named != nil {
				return named.Obj().Name() + "." + obj.Name()
			}
		}
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		// The declaring struct is not recorded on the object; the name
		// alone plus the notice text is enough to act on.
		return obj.Name()
	}
	return obj.Name()
}

// declCache lazily parses declaring files and indexes deprecation
// notices by (line, name) of the declared identifier.
type declCache struct {
	files map[string]map[lineName]string
}

type lineName struct {
	line int
	name string
}

func newDeclCache() *declCache {
	return &declCache{files: map[string]map[lineName]string{}}
}

// notice returns the deprecation text for the symbol declared at
// file:line with the given name, if any.
func (c *declCache) notice(file string, line int, name string) (string, bool) {
	idx, ok := c.files[file]
	if !ok {
		idx = indexFile(file)
		c.files[file] = idx
	}
	why, ok := idx[lineName{line, name}]
	return why, ok
}

// indexFile parses one source file and records every declared identifier
// whose doc comment deprecates it. Parse failures yield an empty index:
// a symbol we cannot resolve is simply not reported.
func indexFile(filename string) map[lineName]string {
	idx := map[lineName]string{}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, nil, parser.ParseComments)
	if err != nil {
		return idx
	}
	record := func(id *ast.Ident, docs ...*ast.CommentGroup) {
		for _, doc := range docs {
			if why, ok := deprecationNotice(doc); ok {
				idx[lineName{fset.Position(id.Pos()).Line, id.Name}] = why
				return
			}
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			record(d.Name, d.Doc)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				var groupDoc *ast.CommentGroup
				if len(d.Specs) == 1 {
					groupDoc = d.Doc
				}
				switch s := spec.(type) {
				case *ast.TypeSpec:
					record(s.Name, s.Doc, groupDoc)
				case *ast.ValueSpec:
					for _, name := range s.Names {
						record(name, s.Doc, groupDoc)
					}
				}
			}
		}
	}
	// Struct fields and interface methods, at any nesting depth.
	ast.Inspect(f, func(n ast.Node) bool {
		field, ok := n.(*ast.Field)
		if !ok {
			return true
		}
		for _, name := range field.Names {
			record(name, field.Doc)
		}
		return true
	})
	return idx
}

// deprecationNotice extracts the text after "Deprecated:" from a doc
// comment, per the standard Go convention.
func deprecationNotice(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "Deprecated:"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}
