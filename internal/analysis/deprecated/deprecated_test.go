package deprecated_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/deprecated"
)

func TestDeprecated(t *testing.T) {
	old := deprecated.ModulePaths
	deprecated.ModulePaths = []string{"deprapi", "deprfix"}
	defer func() { deprecated.ModulePaths = old }()

	// deprapi first: the declaring package may keep honoring its own
	// deprecated symbols, so it must produce no findings at all.
	analysistest.Run(t, deprecated.Analyzer, "deprapi", "deprfix")
}
