// Package deprapi declares the symbols the deprecated-analyzer fixture
// consumes: a mix of current API and symbols carrying the standard
// "Deprecated:" doc convention, mirroring core.Kernel.OnPageFault.
package deprapi

// OldLaunch runs a launch the pre-sweep way.
//
// Deprecated: use Launch instead.
func OldLaunch() {}

// Launch runs a launch.
func Launch() {}

// Kernel mimics core.Kernel's callback-to-bus migration.
type Kernel struct {
	// OnPageFault is called on every page fault.
	//
	// Deprecated: subscribe on the event bus instead.
	OnPageFault func(pid int)

	// Subscribe is the replacement registration point.
	Subscribe func(pid int)
}

// MaxProcs is the legacy process cap.
//
// Deprecated: the cap is per-scenario now.
const MaxProcs = 64

// boot shows the declaring-package exemption: deprapi may keep honoring
// its own deprecated symbols without annotation.
func boot(k *Kernel) {
	OldLaunch()
	if k.OnPageFault != nil {
		k.OnPageFault(MaxProcs)
	}
}
