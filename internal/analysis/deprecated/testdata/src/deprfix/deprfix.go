// Package deprfix exercises the deprecated analyzer: cross-package uses
// of "Deprecated:" symbols are findings; current API and annotated
// stragglers are not.
package deprfix

import "deprapi"

func use() {
	deprapi.OldLaunch() // want `use of deprecated symbol deprapi\.OldLaunch: use Launch instead`
	deprapi.Launch()

	var k deprapi.Kernel
	k.OnPageFault = nil // want `use of deprecated symbol deprapi\.OnPageFault: subscribe on the event bus instead`
	k.Subscribe = nil

	_ = deprapi.MaxProcs // want `use of deprecated symbol deprapi\.MaxProcs: the cap is per-scenario now`
}

func migrating() {
	//satlint:ignore deprecated migration scheduled for the next sweep rework
	deprapi.OldLaunch()
}
