// Package snapshotfresh defines a satlint analyzer enforcing the
// obs.Source contract: Snapshot() must return a freshly allocated map on
// every call, so callers may retain or mutate the result without
// aliasing component state or later snapshots. Returning a map held in
// the receiver — directly, through a field chain, or via a local alias —
// hands callers a live window into the component's counters; the
// serial-vs-parallel byte-identity tests only catch that once someone
// mutates it, long after the fact.
package snapshotfresh

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer flags Snapshot methods returning receiver-held maps.
var Analyzer = &framework.Analyzer{
	Name: "snapshotfresh",
	Doc: `require Snapshot() to return a freshly allocated map

obs.Source.Snapshot promises a fresh map per call. This analyzer flags
any method named Snapshot with a map result whose return value is the
receiver itself, a field reached from the receiver, a package-level map,
or a local variable aliasing one of those. Returning a composite
literal, a map built with make, or another call's result is accepted.`,
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Snapshot" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if !returnsMap(pass, fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func returnsMap(pass *framework.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Type.Results.List[0].Type)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

func checkBody(pass *framework.Pass, fd *ast.FuncDecl) {
	recv := receiverObj(pass, fd)
	aliases := localAliases(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested function returns are not Snapshot's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		if stale, why := staleExpr(pass, ret.Results[0], recv, aliases, 0); stale {
			pass.Reportf(ret.Pos(),
				"Snapshot returns %s; the obs.Source contract requires a freshly allocated map per call", why)
		}
		return true
	})
}

// receiverObj resolves the receiver variable, or nil for unnamed ones.
func receiverObj(pass *framework.Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// localAliases maps each short-declared local variable to its single
// initializer expression, so `m := c.counters; return m` resolves to the
// field access.
func localAliases(pass *framework.Pass, fd *ast.FuncDecl) map[types.Object]ast.Expr {
	out := map[types.Object]ast.Expr{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = as.Rhs[i]
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				// Reassignment: the alias no longer reliably points at
				// its initializer; drop it to stay conservative.
				delete(out, obj)
			}
		}
		return true
	})
	return out
}

// staleExpr reports whether e evaluates to a map owned by the receiver
// or by package state, with a description of what was returned.
func staleExpr(pass *framework.Pass, e ast.Expr, recv types.Object, aliases map[types.Object]ast.Expr, depth int) (bool, string) {
	if depth > 8 {
		return false, ""
	}
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj == nil {
			return false, ""
		}
		if obj == recv {
			return true, "the receiver itself"
		}
		if init, ok := aliases[obj]; ok {
			return staleExpr(pass, init, recv, aliases, depth+1)
		}
		if isPkgLevelVar(obj) {
			return true, "package-level map " + obj.Name()
		}
	case *ast.SelectorExpr:
		root := framework.RootIdent(x)
		if root == nil {
			return false, ""
		}
		obj := pass.TypesInfo.Uses[root]
		if obj == nil {
			return false, ""
		}
		if obj == recv {
			return true, "receiver field " + types.ExprString(x)
		}
		if init, ok := aliases[obj]; ok {
			// A field of an aliased struct copy still shares map values.
			if stale, _ := staleExpr(pass, init, recv, aliases, depth+1); stale {
				return true, "receiver state via local alias " + root.Name
			}
		}
		if isPkgLevelVar(obj) {
			return true, "package-level state " + types.ExprString(x)
		}
	}
	return false, ""
}

func isPkgLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
