// Package snapfix exercises the snapshotfresh analyzer: Snapshot
// methods must return freshly allocated maps, never receiver state.
package snapfix

type stale struct {
	counts map[string]uint64
}

func (s *stale) Snapshot() map[string]uint64 {
	return s.counts // want `Snapshot returns receiver field s\.counts; the obs\.Source contract requires a freshly allocated map`
}

type aliased struct {
	counts map[string]uint64
}

func (a *aliased) Snapshot() map[string]uint64 {
	m := a.counts
	return m // want `Snapshot returns receiver field a\.counts`
}

var processCounts = map[string]uint64{}

type global struct{}

func (global) Snapshot() map[string]uint64 {
	return processCounts // want `Snapshot returns package-level map processCounts`
}

type fresh struct {
	counts map[string]uint64
}

// Snapshot copies into a new map: the contract, accepted.
func (f *fresh) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

type literal struct {
	faults uint64
}

// Snapshot returning a composite literal is accepted.
func (l *literal) Snapshot() map[string]uint64 {
	return map[string]uint64{"faults": l.faults}
}

// notASource has a Snapshot free function (no receiver): out of scope.
func Snapshot() map[string]uint64 {
	return processCounts
}

// The checkpoint-image shape: an immutable image wraps a prototype
// machine shared copy-on-write with its forks. A Snapshot handing out a
// live map reached through the prototype gives callers a window into
// state every fork aliases — exactly the leak the image abstraction
// exists to prevent.
type protoMachine struct {
	counters map[string]uint64
}

type image struct {
	proto *protoMachine
}

func (img *image) Snapshot() map[string]uint64 {
	return img.proto.counters // want `Snapshot returns receiver field img\.proto\.counters`
}

type imageAliased struct {
	proto *protoMachine
}

func (img *imageAliased) Snapshot() map[string]uint64 {
	p := img.proto
	return p.counters // want `Snapshot returns receiver state via local alias p`
}

type imageFresh struct {
	proto *protoMachine
}

// Copying the prototype's counters into a new map is the contract.
func (img *imageFresh) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(img.proto.counters))
	for k, v := range img.proto.counters {
		out[k] = v
	}
	return out
}
