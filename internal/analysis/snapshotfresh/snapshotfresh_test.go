package snapshotfresh_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/snapshotfresh"
)

func TestSnapshotfresh(t *testing.T) {
	analysistest.Run(t, snapshotfresh.Analyzer, "snapfix")
}
