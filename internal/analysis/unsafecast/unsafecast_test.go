package unsafecast_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/unsafecast"
)

func TestUnsafecast(t *testing.T) {
	analysistest.Run(t, unsafecast.Analyzer, "unsafecastfix")
}
