// Package unsafecastfix exercises the unsafecast analyzer: pointer
// reinterpretation casts with and without bounds/alignment guards,
// unsafe.Slice length provenance, and slice escapes.
package unsafecastfix

import "unsafe"

// endian puns a local scalar: &x of a plain identifier is exempt from
// both guard requirements.
func endian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// unguarded casts indexed memory with no checks at all: both guards
// are reported.
func unguarded(b []byte) uint32 {
	return *(*uint32)(unsafe.Pointer(&b[0])) // want `without a preceding bounds check` `without a preceding alignment check`
}

// boundsOnly asserts the length but never the alignment.
func boundsOnly(b []byte) uint32 {
	_ = b[3]
	return *(*uint32)(unsafe.Pointer(&b[0])) // want `without a preceding alignment check`
}

// alignOnly checks alignment but never the bound.
func alignOnly(b []byte) uint32 {
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(uint32(0)) != 0 {
		return 0
	}
	return *(*uint32)(unsafe.Pointer(&b[0])) // want `without a preceding bounds check`
}

// guarded does both checks first: clean.
func guarded(b []byte) uint32 {
	if len(b) < 4 {
		return 0
	}
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(uint32(0)) != 0 {
		return 0
	}
	return *(*uint32)(unsafe.Pointer(&b[0]))
}

// assertGuarded uses the compile-to-one-check bounds assertion form.
func assertGuarded(b []byte) uint32 {
	_ = b[3]
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(uint32(0)) != 0 {
		return 0
	}
	return *(*uint32)(unsafe.Pointer(&b[0]))
}

// byteCast targets a single byte: any address is aligned for it, so
// only the bound is required.
func byteCast(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	return *(*byte)(unsafe.Pointer(&b[0]))
}

// sliceFromSizes derives the unsafe.Slice length from len and Sizeof:
// clean. The source pointer indexes nothing, so no bounds guard is
// demanded for the element cast either.
func sliceFromSizes(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), uintptr(len(s))*unsafe.Sizeof(uint64(0)))
}

// sliceTrusted takes the element count straight from a parameter — on
// the real format that is the untrusted section directory.
func sliceTrusted(p *uint64, n int) []uint64 {
	return unsafe.Slice(p, n) // want `unsafe\.Slice length is not derived from len/unsafe\.Sizeof`
}

// sliceChecked validates the count against the backing length first.
func sliceChecked(b []byte, n int) []uint64 {
	if n < 0 || uintptr(n) > uintptr(len(b))/unsafe.Sizeof(uint64(0)) {
		return nil
	}
	if uintptr(unsafe.Pointer(unsafe.SliceData(b)))%unsafe.Alignof(uint64(0)) != 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(b))), n)
}

// leaked holds a cast slice beyond any mapping's lifetime.
var leaked []byte

func escape(p *uint64) {
	leaked = unsafe.Slice((*byte)(unsafe.Pointer(p)), int(unsafe.Sizeof(uint64(0)))) // want `stored in package-level leaked outlives the mapping`
}

// scoped keeps the cast slice local: no escape.
func scoped(arr *[4]uint64) uint64 {
	s := unsafe.Slice(&arr[0], len(arr))
	return s[0]
}

// ignored shows the directive contract applies here too.
func ignoredCast(b []byte) uint32 {
	//satlint:ignore unsafecast caller guarantees a 4-byte aligned prefix
	return *(*uint32)(unsafe.Pointer(&b[0]))
}
