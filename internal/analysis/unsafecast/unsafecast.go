// Package unsafecast defines a satlint analyzer for the unsafe
// reinterpretation casts the imagestore mmap format depends on. Every
// in-place cast over mapped bytes is a latent fault or silent-corruption
// site unless the code first proves two things about the memory it is
// about to reinterpret: the region is long enough (a bounds check) and
// the base address satisfies the target type's alignment (an alignment
// check). The on-disk directory is untrusted input, so neither property
// may be assumed. The analyzer also flags unsafe-cast slices escaping
// into package-level storage, where they can outlive the mapping that
// backs them.
package unsafecast

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer flags unguarded unsafe.Pointer/unsafe.Slice reinterpretation.
var Analyzer = &framework.Analyzer{
	Name: "unsafecast",
	Doc: `require bounds and alignment checks before unsafe reinterpretation casts

A pointer-type conversion of an unsafe.Pointer — the in-place cast
pattern the imagestore format uses over mmap'd bytes — must be preceded,
in the same function, by (a) a bounds check (an if condition using len()
or %, or a "_ = b[k]" bounds assertion) whenever the pointed-at address
is derived from indexing, and (b) an alignment check (an if condition
using unsafe.Alignof) unless the target element is a single byte. An
unsafe.Slice length must mention len, unsafe.Sizeof, or unsafe.Offsetof,
or follow a bounds check. Taking the address of a plain local
("&x") is exempt: the compiler guarantees its size and alignment.
Assigning an unsafe.Slice result to a package-level variable is flagged
unconditionally — a package-level slice outlives the mapping backing it.`,
	Run: run,
}

// guards records, per function body, the source positions of the bounds
// and alignment checks seen so far; a cast site is satisfied by any
// guard positioned before it in the same function.
type guards struct {
	bounds []token.Pos
	align  []token.Pos
}

func (g *guards) boundsBefore(pos token.Pos) bool { return anyBefore(g.bounds, pos) }
func (g *guards) alignBefore(pos token.Pos) bool  { return anyBefore(g.align, pos) }

func anyBefore(ps []token.Pos, pos token.Pos) bool {
	for _, p := range ps {
		if p < pos {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	checkEscapes(pass)
	return nil
}

// checkFunc collects the function's guard positions, then audits its
// cast sites against them.
func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	g := collectGuards(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isUnsafeSliceCall(pass, call) {
			checkSliceLen(pass, g, call)
			return true
		}
		checkPointerCast(pass, g, call)
		return true
	})
}

// collectGuards walks body recording every bounds check (if-condition
// mentioning len() or the % operator, or a `_ = b[k]` assertion
// statement) and every alignment check (if-condition mentioning
// unsafe.Alignof).
func collectGuards(pass *framework.Pass, body *ast.BlockStmt) *guards {
	g := &guards{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if mentionsBound(pass, n.Cond) {
				g.bounds = append(g.bounds, n.Pos())
			}
			if mentionsAlignof(pass, n.Cond) {
				g.align = append(g.align, n.Pos())
			}
		case *ast.AssignStmt:
			// The idiomatic compile-to-one-check bounds assertion:
			//	_ = b[3]
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					if _, ok := ast.Unparen(n.Rhs[0]).(*ast.IndexExpr); ok {
						g.bounds = append(g.bounds, n.Pos())
					}
				}
			}
		}
		return true
	})
	return g
}

// mentionsBound reports whether cond contains a len(...) call or a %
// remainder — the two shapes every length/divisibility check here
// takes. A remainder whose subtree mentions unsafe.Alignof is an
// alignment check, not a bounds check, and does not count.
func mentionsBound(pass *framework.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(pass, n.Fun, "len") {
				found = true
			}
		case *ast.BinaryExpr:
			if n.Op == token.REM && !mentionsAlignof(pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentionsAlignof reports whether cond contains an unsafe.Alignof call.
func mentionsAlignof(pass *framework.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isUnsafeFunc(pass, call.Fun, "Alignof") {
			found = true
		}
		return !found
	})
	return found
}

// checkPointerCast audits `(*T)(p)` where p has type unsafe.Pointer.
func checkPointerCast(pass *framework.Pass, g *guards, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	ptr, ok := tv.Type.Underlying().(*types.Pointer)
	if !ok {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if !isUnsafePointerExpr(pass, arg) {
		return
	}
	if addrOfPlainLocal(arg) {
		return // &x of a plain identifier: size and alignment are the compiler's problem
	}
	if exprIndexes(arg) && !g.boundsBefore(call.Pos()) {
		pass.Reportf(call.Pos(),
			"unsafe cast to %s from indexed memory without a preceding bounds check (guard with len() or a `_ = b[k]` assertion first)",
			types.TypeString(ptr, types.RelativeTo(pass.Pkg)))
	}
	if !byteSized(ptr.Elem()) && !g.alignBefore(call.Pos()) {
		pass.Reportf(call.Pos(),
			"unsafe cast to %s without a preceding alignment check (guard the base address with unsafe.Alignof first)",
			types.TypeString(ptr, types.RelativeTo(pass.Pkg)))
	}
}

// checkSliceLen audits the length argument of unsafe.Slice(ptr, n).
func checkSliceLen(pass *framework.Pass, g *guards, call *ast.CallExpr) {
	if len(call.Args) != 2 {
		return
	}
	if lenFromSize(pass, call.Args[1]) || g.boundsBefore(call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(),
		"unsafe.Slice length is not derived from len/unsafe.Sizeof and no bounds check precedes it (an oversized length turns every element access into a fault)")
}

// lenFromSize reports whether the length expression mentions len(),
// unsafe.Sizeof, or unsafe.Offsetof — lengths computed from real
// measured sizes rather than trusted input.
func lenFromSize(pass *framework.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltin(pass, call.Fun, "len") ||
			isUnsafeFunc(pass, call.Fun, "Sizeof") ||
			isUnsafeFunc(pass, call.Fun, "Offsetof") {
			found = true
		}
		return !found
	})
	return found
}

// checkEscapes flags unsafe.Slice results assigned to package-level
// variables in non-test files.
func checkEscapes(pass *framework.Pass) {
	framework.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		if pass.IsTestFile(n.Pos()) {
			return true
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && isUnsafeSliceExpr(pass, rhs) {
					reportEscape(pass, n.Pos(), n.Lhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				if i < len(n.Names) && isUnsafeSliceExpr(pass, rhs) {
					reportEscape(pass, n.Pos(), n.Names[i])
				}
			}
		}
		return true
	})
}

// isUnsafeSliceExpr reports whether e is an unsafe.Slice call.
func isUnsafeSliceExpr(pass *framework.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && isUnsafeSliceCall(pass, call)
}

// reportEscape flags lhs when it names a package-level variable.
func reportEscape(pass *framework.Pass, pos token.Pos, lhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj != nil && obj.Parent() == pass.Pkg.Scope() {
		pass.Reportf(pos,
			"unsafe.Slice result stored in package-level %s outlives the mapping that backs it; keep cast slices scoped to the mapped image's lifetime",
			id.Name)
	}
}

// --- expression classification helpers ---

// isUnsafePointerExpr reports whether e's static type is unsafe.Pointer.
func isUnsafePointerExpr(pass *framework.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UnsafePointer
}

// addrOfPlainLocal reports whether e is (possibly an unsafe.Pointer
// conversion of) `&x` with x a plain identifier.
func addrOfPlainLocal(e ast.Expr) bool {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && len(call.Args) == 1 {
		e = ast.Unparen(call.Args[0])
	}
	un, ok := e.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	_, ok = ast.Unparen(un.X).(*ast.Ident)
	return ok
}

// exprIndexes reports whether e contains an index or slice expression —
// the address being cast was derived from positioned memory, so its
// validity depends on a bound.
func exprIndexes(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.IndexExpr, *ast.SliceExpr:
			found = true
		}
		return !found
	})
	return found
}

// byteSized reports whether the cast target element occupies one byte,
// making any address trivially aligned for it.
func byteSized(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Bool, types.Int8, types.Uint8:
		return true
	}
	return false
}

// isBuiltin reports whether fun names the given builtin.
func isBuiltin(pass *framework.Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// isUnsafeFunc reports whether fun is unsafe.<name>, resolving the
// package through the import (alias-proof).
func isUnsafeFunc(pass *framework.Pass, fun ast.Expr, name string) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "unsafe"
}

// isUnsafeSliceCall reports whether call is unsafe.Slice(...).
func isUnsafeSliceCall(pass *framework.Pass, call *ast.CallExpr) bool {
	return isUnsafeFunc(pass, call.Fun, "Slice")
}
