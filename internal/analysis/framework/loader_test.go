package framework

import (
	"path/filepath"
	"runtime"
	"testing"
)

// TestLoaderAppliesBuildConstraints is the regression for the loader
// parsing every .go file in a directory regardless of build constraints:
// paired files like mmap_linux.go / mmap_other.go declare the same
// symbols for different platforms, and parsing both produced
// redeclaration type errors that broke `satlint ./...` on any package
// with platform splits. The loader must select files exactly like the go
// tool — honoring //go:build lines and GOOS filename suffixes.
func TestLoaderAppliesBuildConstraints(t *testing.T) {
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	root := writeTree(t, map[string]string{
		"go.mod": "module tmod\n",
		// A //go:build pair: exactly one side matches on every host.
		"p/imp_native.go": "//go:build " + runtime.GOOS + "\n\npackage p\n\nconst Impl = \"native\"\n",
		"p/imp_other.go":  "//go:build !" + runtime.GOOS + "\n\npackage p\n\nconst Impl = \"other\"\n",
		// A GOOS filename suffix for a foreign platform: must be skipped
		// even without any //go:build line.
		"p/imp_" + otherOS + ".go": "package p\n\nconst Impl = \"foreign\"\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := loader.PureUnit("tmod/p")
	if err != nil {
		t.Fatalf("constrained package failed to load (redeclaration?): %v", err)
	}
	if len(unit.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (the matching side of the pair)", len(unit.Files))
	}
	name := filepath.Base(loader.Fset.Position(unit.Files[0].Pos()).Filename)
	if name != "imp_native.go" {
		t.Errorf("loader kept %s, want imp_native.go", name)
	}

	// LoadDir walks the same filter.
	units, err := loader.LoadDir(filepath.Join(root, "p"), "tmod/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 || len(units[0].Files) != 1 {
		t.Errorf("LoadDir loaded %d units, want 1 unit with 1 file", len(units))
	}
}
