// Package framework is the stdlib-only analysis driver underneath
// cmd/satlint: a deliberately small mirror of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// built on go/ast and go/types alone, because this module vendors no
// third-party code and the build environment is hermetic. The shapes
// match x/tools closely enough that migrating the analyzers onto the
// real framework is mechanical should the dependency ever be added.
//
// The package also provides the two ways analyses are driven:
//
//   - Loader type-checks module packages straight from source (used by
//     the standalone `satlint ./...` mode and by analysistest), and
//   - RunVet speaks the `go vet -vettool` unitchecker protocol, reading
//     the vet config and compiler export data the go command hands it.
//
// Both drivers funnel through RunAnalyzers, which applies the
// `//satlint:ignore <analyzers> <reason>` suppression contract before
// diagnostics are reported.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Name must be a valid
// identifier (it is what ignore directives and -list print); Doc's first
// line is the one-line summary.
//
// FactTypes declares the Fact types the analyzer exports or imports —
// each element a pointer to the zero value, e.g. `[]Fact{new(FooFact)}`.
// An analyzer with a non-empty FactTypes runs even in fact-only passes
// (unitchecker VetxOnly) so its facts reach dependent packages.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) error
	FactTypes []Fact
}

// A Diagnostic is one finding at a source position. Ignored marks a
// finding suppressed by a //satlint:ignore directive: drivers keep it
// out of text output and exit codes, but -json reports it so tooling
// can audit what the directives are hiding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	Ignored  bool
}

// A Pass presents one package (one analysis unit: a package together
// with its in-package test files, or an external test package) to an
// Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	facts *FactStore
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// BasePath strips the " [pkg.test]" variant suffix the go command
// appends to test-augmented package paths, so analyzers can compare
// import paths structurally.
func BasePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// RunAnalyzers runs every analyzer over the unit, applies the unit's
// //satlint:ignore directives (suppressed findings are returned with
// Ignored set, not dropped), appends diagnostics for malformed and
// unused directives, and returns the result sorted by position.
//
// facts is the store analyzers export to and import from; it must
// already hold the facts of the unit's dependencies (drivers arrange
// this). Pass nil when no analyzer in the run uses facts.
func RunAnalyzers(unit *Unit, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFactStore()
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      unit.Fset,
			Files:     unit.Files,
			Pkg:       unit.Pkg,
			TypesInfo: unit.Info,
			diags:     &diags,
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, unit.Pkg.Path(), err)
		}
	}
	ign := ParseIgnores(unit.Fset, unit.Files)
	for i := range diags {
		if ign.Suppressed(unit.Fset, diags[i]) {
			diags[i].Ignored = true
		}
	}
	diags = append(diags, ign.Malformed...)
	active := map[string]bool{}
	for _, a := range analyzers {
		active[a.Name] = true
	}
	diags = append(diags, ign.Unused(active)...)
	sortDiagnostics(unit.Fset, diags)
	return diags, nil
}

// sortDiagnostics orders by file, line, column, then analyzer name, so
// output is stable whatever order analyzers visited the AST in.
func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}

// CalledFunc resolves the *types.Func a call expression invokes
// (package-level function or method), or nil when the callee is not a
// statically known function (builtins, function-typed variables,
// conversions).
func CalledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is one of the named package-level
// functions of the package with the given import path.
func IsPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsMethodOf reports whether fn is the named method on the named type
// (pointer or value receiver) of the package with the given import path.
func IsMethodOf(fn *types.Func, pkgPath, typeName, method string) bool {
	if fn == nil || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := NamedOf(sig.Recv().Type())
	return named != nil &&
		named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == pkgPath &&
		named.Obj().Name() == typeName
}

// NamedOf unwraps pointers and returns the named type underneath t, or
// nil.
func NamedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsNamedType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	named := NamedOf(t)
	return named != nil &&
		named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == pkgPath &&
		named.Obj().Name() == name
}

// RootIdent walks to the base identifier of a selector/index/paren chain
// (`a.b.c[i]` yields `a`), or nil when the base is not an identifier.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// WalkStack traverses every file calling fn with each node and the stack
// of its ancestors (outermost first, not including the node itself).
// Returning false prunes the subtree.
func WalkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				// Pruned: Inspect sends no closing nil, so don't push.
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}
