package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A Fact is a serializable claim an analyzer attaches to an object or a
// package so that properties proven while analyzing one package flow to
// the packages that import it — the same contract as
// golang.org/x/tools/go/analysis facts, restricted to what JSON can
// carry. A fact type must be a pointer to a struct with exported fields;
// AFact is the marker that keeps arbitrary values out of the store.
//
// Facts are private to the analyzer that declares them (in
// Analyzer.FactTypes): two analyzers never observe each other's facts,
// so fact vocabularies evolve independently.
type Fact interface {
	AFact()
}

// factTypeName names a fact's concrete type for (de)serialization.
func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// factKey locates one fact: the object's package, the owning analyzer,
// the object key within the package ("" for a package-level fact), and
// the fact's concrete type.
type factKey struct {
	pkg, analyzer, object, typ string
}

// FactStore holds every fact visible to one analysis run: the facts of
// the unit being analyzed plus everything imported from (or destined
// for) dependency fact files. One object carries at most one fact per
// (analyzer, fact type); a re-export overwrites.
type FactStore struct {
	m map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey]Fact{}}
}

func (s *FactStore) put(pkg, analyzer, object string, f Fact) {
	s.m[factKey{pkg: pkg, analyzer: analyzer, object: object, typ: factTypeName(f)}] = f
}

// get copies the stored fact into f (which must be a pointer of the
// stored concrete type) and reports whether one was present.
func (s *FactStore) get(pkg, analyzer, object string, f Fact) bool {
	got, ok := s.m[factKey{pkg: pkg, analyzer: analyzer, object: object, typ: factTypeName(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// A FactEntry is one store element in exported form, for tests and for
// analysistest's `// want fact:` assertions.
type FactEntry struct {
	Pkg      string // import path of the package owning the object
	Analyzer string
	Object   string // object key; "" for a package-level fact
	Fact     Fact
}

// Entries returns the store's contents in stable order.
func (s *FactStore) Entries() []FactEntry {
	out := make([]FactEntry, 0, len(s.m))
	for k, f := range s.m {
		out = append(out, FactEntry{Pkg: k.pkg, Analyzer: k.analyzer, Object: k.object, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return factTypeName(out[i].Fact) < factTypeName(out[j].Fact)
	})
	return out
}

// Len returns the number of facts held.
func (s *FactStore) Len() int { return len(s.m) }

// factBlob is the serialized form of one fact: the wire format written
// to unitchecker vetx files and round-tripped by the standalone driver.
// The file is a JSON array of blobs; an empty file means no facts (the
// format older satlint versions wrote).
type factBlob struct {
	Pkg      string          `json:"pkg"`
	Analyzer string          `json:"analyzer"`
	Object   string          `json:"object,omitempty"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// Encode serializes the store: a deterministic JSON array sorted by
// (pkg, analyzer, object, type).
func (s *FactStore) Encode() ([]byte, error) {
	entries := s.Entries()
	blobs := make([]factBlob, 0, len(entries))
	for _, e := range entries {
		data, err := json.Marshal(e.Fact)
		if err != nil {
			return nil, fmt.Errorf("encoding %s fact %T on %s.%s: %v", e.Analyzer, e.Fact, e.Pkg, e.Object, err)
		}
		blobs = append(blobs, factBlob{
			Pkg: e.Pkg, Analyzer: e.Analyzer, Object: e.Object,
			Type: factTypeName(e.Fact), Data: data,
		})
	}
	return json.Marshal(blobs)
}

// DecodeFacts merges a serialized fact file into the store. Fact types
// are resolved against the FactTypes the given analyzers declare; blobs
// from unknown analyzers or undeclared types are skipped, so readers
// tolerate files written by a satlint with a different analyzer set.
func DecodeFacts(data []byte, analyzers []*Analyzer, into *FactStore) error {
	if len(bytes.TrimSpace(data)) == 0 {
		return nil // the pre-facts format: an empty file
	}
	reg := map[string]map[string]reflect.Type{}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			for t.Kind() == reflect.Pointer {
				t = t.Elem()
			}
			if reg[a.Name] == nil {
				reg[a.Name] = map[string]reflect.Type{}
			}
			reg[a.Name][t.Name()] = t
		}
	}
	var blobs []factBlob
	if err := json.Unmarshal(data, &blobs); err != nil {
		return fmt.Errorf("parsing fact file: %v", err)
	}
	for _, b := range blobs {
		typ, ok := reg[b.Analyzer][b.Type]
		if !ok {
			continue
		}
		f, ok := reflect.New(typ).Interface().(Fact)
		if !ok {
			continue
		}
		if err := json.Unmarshal(b.Data, f); err != nil {
			return fmt.Errorf("decoding %s fact %s on %s.%s: %v", b.Analyzer, b.Type, b.Pkg, b.Object, err)
		}
		into.put(b.Pkg, b.Analyzer, b.Object, f)
	}
	return nil
}

// objectKey names obj within its package, or reports that the object is
// not keyable. Facts attach only to objects an importer can find again
// through export data:
//
//	"Name"        a package-level func, type, var, or const
//	"Type.Method" a method (value or pointer receiver) of a named type
//
// Locals, struct fields, and interface methods are not keyable; analyses
// needing per-field claims should attach the fact to the enclosing named
// type and reconstruct field detail structurally.
func objectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			named := NamedOf(sig.Recv().Type())
			if named == nil {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name(), true
	}
	return "", false
}

// LookupObjectKey resolves a key produced by objectKey against pkg
// (source-checked or loaded from export data), or nil.
func LookupObjectKey(pkg *types.Package, key string) types.Object {
	typeName, method, isMethod := strings.Cut(key, ".")
	if !isMethod {
		return pkg.Scope().Lookup(key)
	}
	tn, ok := pkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			return m
		}
	}
	return nil
}

// checkFactType panics unless the analyzer declared fact's type in
// FactTypes — an undeclared type would export fine but silently fail to
// decode on the importing side, which is a far worse failure mode.
func (p *Pass) checkFactType(fact Fact) {
	want := factTypeName(fact)
	for _, f := range p.Analyzer.FactTypes {
		if factTypeName(f) == want {
			return
		}
	}
	panic(fmt.Sprintf("analyzer %q used fact type %s without declaring it in FactTypes", p.Analyzer.Name, want))
}

// ExportObjectFact attaches fact to obj for importing packages to see.
// The object must be keyable (see objectKey); it may belong to this
// package or to a dependency — exporting onto a dependency's object is
// how reachability-style analyses extend a property across a package
// boundary (the fact is then visible to packages that import *this*
// package, which is also where the claim was proven).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.checkFactType(fact)
	key, ok := objectKey(obj)
	if !ok {
		panic(fmt.Sprintf("analyzer %q: ExportObjectFact on unkeyable object %v", p.Analyzer.Name, obj))
	}
	p.facts.put(obj.Pkg().Path(), p.Analyzer.Name, key, fact)
}

// ImportObjectFact copies the fact of fact's type attached to obj into
// fact and reports whether one exists. Unkeyable objects have no facts.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	p.checkFactType(fact)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := objectKey(obj)
	if !ok {
		return false
	}
	return p.facts.get(obj.Pkg().Path(), p.Analyzer.Name, key, fact)
}

// ExportPackageFact attaches fact to the package being analyzed.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.checkFactType(fact)
	p.facts.put(p.Pkg.Path(), p.Analyzer.Name, "", fact)
}

// ImportPackageFact copies pkg's package-level fact of fact's type into
// fact and reports whether one exists.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	p.checkFactType(fact)
	return p.facts.get(pkg.Path(), p.Analyzer.Name, "", fact)
}
