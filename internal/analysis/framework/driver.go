package framework

import (
	"fmt"
	"go/types"
)

// Driver runs analyzers over units in standalone (non-vet) mode with
// cross-package fact propagation: before a unit is analyzed, the
// fact-exporting analyzers are run over every module-local dependency
// (in dependency order, each package once), so imported facts are
// present exactly as they would be under the unitchecker protocol.
//
// After each dependency's facts are computed the whole store is
// round-tripped through the JSON codec — the standalone mode thereby
// continuously proves that every exported fact survives serialization,
// instead of only exercising that path under `go vet`.
type Driver struct {
	Loader    *Loader
	Analyzers []*Analyzer

	facts *FactStore
	done  map[string]bool // package path -> facts computed
}

// NewDriver creates a driver running analyzers with loader.
func NewDriver(loader *Loader, analyzers []*Analyzer) *Driver {
	return &Driver{
		Loader:    loader,
		Analyzers: analyzers,
		facts:     NewFactStore(),
		done:      map[string]bool{},
	}
}

// factAnalyzers is the subset of the run set that declares fact types —
// the only analyzers worth running over dependencies.
func (d *Driver) factAnalyzers() []*Analyzer {
	var out []*Analyzer
	for _, a := range d.Analyzers {
		if len(a.FactTypes) > 0 {
			out = append(out, a)
		}
	}
	return out
}

// ensureFacts computes (once) the facts of the module-local package pkg
// and, transitively first, of its module-local dependencies.
func (d *Driver) ensureFacts(pkg *types.Package) error {
	path := pkg.Path()
	if d.done[path] || !d.Loader.Local(path) {
		return nil
	}
	d.done[path] = true // set first: import graphs are acyclic, but be safe
	for _, imp := range pkg.Imports() {
		if err := d.ensureFacts(imp); err != nil {
			return err
		}
	}
	fas := d.factAnalyzers()
	if len(fas) == 0 {
		return nil
	}
	unit, err := d.Loader.PureUnit(path)
	if err != nil {
		return fmt.Errorf("loading %q for facts: %v", path, err)
	}
	if unit == nil {
		return nil
	}
	// Diagnostics of dependency passes are discarded; each package's
	// findings are reported when it is analyzed as a unit in its own
	// right.
	if _, err := RunAnalyzers(unit, fas, d.facts); err != nil {
		return err
	}
	return d.roundTrip()
}

// roundTrip replaces the store with the result of encoding and decoding
// it, so any non-serializable fact fails loudly at the package boundary
// where it was exported.
func (d *Driver) roundTrip() error {
	data, err := d.facts.Encode()
	if err != nil {
		return err
	}
	fresh := NewFactStore()
	if err := DecodeFacts(data, d.Analyzers, fresh); err != nil {
		return err
	}
	if fresh.Len() != d.facts.Len() {
		return fmt.Errorf("fact store round-trip lost facts: %d -> %d", d.facts.Len(), fresh.Len())
	}
	d.facts = fresh
	return nil
}

// Run analyzes one unit: dependency facts are computed first, then
// every analyzer runs with the accumulated store. The returned
// diagnostics include Ignored-marked suppressed findings (see
// RunAnalyzers).
func (d *Driver) Run(unit *Unit) ([]Diagnostic, error) {
	for _, imp := range unit.Pkg.Imports() {
		if err := d.ensureFacts(imp); err != nil {
			return nil, err
		}
	}
	return RunAnalyzers(unit, d.Analyzers, d.facts)
}

// Facts exposes the accumulated store, for analysistest's fact
// assertions.
func (d *Driver) Facts() *FactStore { return d.facts }
