package framework

import (
	"bytes"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// markFact is the test fact vocabulary: one exported string field, so it
// round-trips through JSON losslessly.
type markFact struct{ Note string }

func (*markFact) AFact() {}

// markAnalyzer exports a fact on every package-level function whose name
// starts with "Marked" and reports every call to a dependency function
// carrying the fact — the minimal shape of a cross-package analysis.
var markAnalyzer = &Analyzer{
	Name:      "marktest",
	Doc:       "test analyzer exercising fact export and import",
	FactTypes: []Fact{new(markFact)},
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Marked") {
					continue
				}
				if fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					p.ExportObjectFact(fn, &markFact{Note: "marked " + fn.Name()})
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := CalledFunc(p.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg() == p.Pkg {
					return true
				}
				var mf markFact
				if p.ImportObjectFact(fn, &mf) {
					p.Reportf(call.Pos(), "call to marked dependency function %s (%s)", fn.Name(), mf.Note)
				}
				return true
			})
		}
		return nil
	},
}

func TestFactStoreCodecRoundTrip(t *testing.T) {
	s := NewFactStore()
	s.put("m/a", "marktest", "F", &markFact{Note: "object fact"})
	s.put("m/a", "marktest", "", &markFact{Note: "package fact"})
	s.put("m/b", "marktest", "T.M", &markFact{Note: "method fact"})

	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("Encode is not deterministic across calls on the same store")
	}

	fresh := NewFactStore()
	if err := DecodeFacts(data, []*Analyzer{markAnalyzer}, fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != s.Len() {
		t.Fatalf("round trip kept %d of %d facts", fresh.Len(), s.Len())
	}
	want := s.Entries()
	got := fresh.Entries()
	for i := range want {
		w, g := want[i], got[i]
		if w.Pkg != g.Pkg || w.Analyzer != g.Analyzer || w.Object != g.Object {
			t.Errorf("entry %d: got (%s, %s, %q), want (%s, %s, %q)",
				i, g.Pkg, g.Analyzer, g.Object, w.Pkg, w.Analyzer, w.Object)
		}
		wf, gf := w.Fact.(*markFact), g.Fact.(*markFact)
		if wf.Note != gf.Note {
			t.Errorf("entry %d: note %q, want %q", i, gf.Note, wf.Note)
		}
	}
}

func TestDecodeFactsTolerance(t *testing.T) {
	// The pre-facts format: an empty (or whitespace-only) file.
	for _, data := range [][]byte{nil, []byte(""), []byte("\n")} {
		s := NewFactStore()
		if err := DecodeFacts(data, []*Analyzer{markAnalyzer}, s); err != nil {
			t.Errorf("empty fact file: %v", err)
		}
		if s.Len() != 0 {
			t.Errorf("empty fact file decoded %d facts", s.Len())
		}
	}

	// Blobs from analyzers not in the run set, or with fact types the
	// analyzer no longer declares, are skipped — not errors — so fact
	// files written by a different satlint build stay readable.
	foreign := []byte(`[
		{"pkg":"m/a","analyzer":"elsewhere","object":"F","type":"markFact","data":{"Note":"x"}},
		{"pkg":"m/a","analyzer":"marktest","object":"F","type":"retiredFact","data":{"Gone":1}},
		{"pkg":"m/a","analyzer":"marktest","object":"G","type":"markFact","data":{"Note":"kept"}}
	]`)
	s := NewFactStore()
	if err := DecodeFacts(foreign, []*Analyzer{markAnalyzer}, s); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("decoded %d facts, want 1 (unknown analyzer and type skipped)", s.Len())
	}
	var mf markFact
	if !s.get("m/a", "marktest", "G", &mf) || mf.Note != "kept" {
		t.Errorf("surviving fact = %+v, want Note=kept on m/a.G", mf)
	}

	// Actual corruption is an error, not a silent empty store.
	if err := DecodeFacts([]byte("{not json"), []*Analyzer{markAnalyzer}, NewFactStore()); err == nil {
		t.Error("malformed fact file decoded without error")
	}
}

// writeTree materializes a file tree under a temp dir and returns its
// root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestObjectKeysAcrossExportedPackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module tmod\n",
		"a/a.go": `package a

type Counter struct{ n int }

func (c *Counter) Add() { c.n++ }
func (c Counter) Get() int { return c.n }

func Top() int { return 0 }
`,
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := loader.PureUnit("tmod/a")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Top", "Counter", "Counter.Add", "Counter.Get"} {
		obj := LookupObjectKey(unit.Pkg, want)
		if obj == nil {
			t.Errorf("LookupObjectKey(%q) = nil", want)
			continue
		}
		key, ok := objectKey(obj)
		if !ok || key != want {
			t.Errorf("objectKey round trip of %q = %q, %v", want, key, ok)
		}
	}
	if obj := LookupObjectKey(unit.Pkg, "Counter.Missing"); obj != nil {
		t.Errorf("LookupObjectKey on a missing method = %v, want nil", obj)
	}
	// A struct field is not keyable: importers can't address it.
	field := unit.Pkg.Scope().Lookup("Counter").Type().Underlying().(*types.Struct).Field(0)
	if key, ok := objectKey(field); ok {
		t.Errorf("struct field got object key %q, want unkeyable", key)
	}
}

// TestDriverCrossPackageFacts is the framework-level seeded regression:
// a fact proven in package a must reach the analysis of package b, which
// imports it — and the whole store must survive the JSON round trip the
// driver forces after every dependency.
func TestDriverCrossPackageFacts(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module tmod\n",
		"a/a.go": `package a

func MarkedSource() int { return 1 }

func Plain() int { return 2 }
`,
		"b/b.go": `package b

import "tmod/a"

func Use() int {
	//satlint:ignore marktest fixture: stale directive, suppresses nothing
	clean := a.Plain()
	return a.MarkedSource() + clean
}
`,
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadDir(filepath.Join(root, "b"), "tmod/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("got %d units for tmod/b, want 1", len(units))
	}
	driver := NewDriver(loader, []*Analyzer{markAnalyzer})
	diags, err := driver.Run(units[0])
	if err != nil {
		t.Fatal(err)
	}

	var cross, unused int
	for _, d := range diags {
		switch {
		case d.Analyzer == "marktest":
			if !strings.Contains(d.Message, "MarkedSource") {
				t.Errorf("unexpected marktest finding: %s", d.Message)
			}
			if d.Ignored {
				t.Error("cross-package finding wrongly suppressed by the stale directive")
			}
			cross++
		case strings.Contains(d.Message, "unused //satlint:ignore"):
			unused++
		default:
			t.Errorf("unexpected diagnostic [%s] %s", d.Analyzer, d.Message)
		}
	}
	if cross != 1 {
		t.Errorf("got %d cross-package findings, want exactly 1 (the MarkedSource call)", cross)
	}
	if unused != 1 {
		t.Errorf("got %d unused-directive findings, want 1 (the stale directive in b)", unused)
	}

	// The fact store must hold a's export, proven serializable by the
	// driver's round trip.
	var found bool
	for _, e := range driver.Facts().Entries() {
		if e.Pkg == "tmod/a" && e.Object == "MarkedSource" {
			found = true
			if mf := e.Fact.(*markFact); mf.Note != "marked MarkedSource" {
				t.Errorf("fact note = %q after round trip", mf.Note)
			}
		}
	}
	if !found {
		t.Error("fact exported in tmod/a missing from the driver store")
	}
}

func TestExportUndeclaredFactTypePanics(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module tmod\n",
		"a/a.go": "package a\n\nfunc F() {}\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := loader.PureUnit("tmod/a")
	if err != nil {
		t.Fatal(err)
	}
	bad := &Analyzer{
		Name: "badfact",
		Doc:  "exports a fact type it never declared",
		Run: func(p *Pass) error {
			defer func() {
				if recover() == nil {
					t.Error("ExportObjectFact with an undeclared fact type did not panic")
				}
			}()
			fn := unit.Pkg.Scope().Lookup("F").(*types.Func)
			p.ExportObjectFact(fn, &markFact{Note: "x"})
			return nil
		},
	}
	if _, err := RunAnalyzers(unit, []*Analyzer{bad}, nil); err != nil {
		t.Fatal(err)
	}
}
