package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Unit is one analysis unit: a package's syntax trees together with
// its type-checked form. A directory yields up to two units — the
// package including its in-package _test.go files, and the external
// X_test package when one exists.
type Unit struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Loader type-checks packages of this module straight from source,
// resolving module-internal imports to their directories and everything
// else through the standard library's source importer. It exists so the
// standalone `satlint ./...` mode and analysistest need no compiler
// export data and no dependencies outside the standard library.
type Loader struct {
	Fset    *token.FileSet
	root    string // module root directory (holds go.mod)
	modpath string
	extra   map[string]string // additional importPath -> dir (test fixtures)
	pure    map[string]*Unit  // test-free units, cached by Import
	loading map[string]bool
	std     types.Importer
}

// NewLoader creates a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	modpath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    root,
		modpath: modpath,
		extra:   map[string]string{},
		pure:    map[string]*Unit{},
		loading: map[string]bool{},
		std:     importer.ForCompiler(fset, "source", nil),
	}, nil
}

// ModulePath returns the module's import path (the go.mod module line).
func (l *Loader) ModulePath() string { return l.modpath }

// AddPath registers an extra import path resolving to dir, used by
// analysistest to make fixture packages importable from one another.
func (l *Loader) AddPath(importPath, dir string) { l.extra[importPath] = dir }

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", gomod)
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// dirFor resolves an import path to a source directory, or reports that
// the path is outside the loader's scope.
func (l *Loader) dirFor(path string) (string, bool) {
	if d, ok := l.extra[path]; ok {
		return d, true
	}
	if path == l.modpath {
		return l.root, true
	}
	if rest, ok := strings.CutPrefix(path, l.modpath+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer: module-internal packages are
// type-checked from source (without test files), everything else comes
// from the standard library source importer. The checked unit — syntax
// and type info included — is cached so the standalone Driver can run
// fact-exporting analyzers over dependencies without re-checking them.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if !l.Local(path) {
		return l.std.Import(path)
	}
	u, err := l.PureUnit(path)
	if err != nil {
		return nil, err
	}
	return u.Pkg, nil
}

// Local reports whether path resolves inside this loader's module (or
// its registered extra fixture paths) rather than to the standard
// library.
func (l *Loader) Local(path string) bool {
	_, ok := l.dirFor(path)
	return ok
}

// PureUnit loads and caches the test-free unit for a module-local
// import path. It returns (nil, nil) for "unsafe" and for paths outside
// the module: callers that need such packages go through Import, which
// delegates them to the standard library importer.
func (l *Loader) PureUnit(path string) (*Unit, error) {
	if path == "unsafe" {
		return nil, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, nil
	}
	if u, ok := l.pure[path]; ok {
		return u, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir, func(name string) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s for %q", dir, path)
	}
	info := newInfo()
	pkg, err := l.check(path, files, info)
	if err != nil {
		return nil, err
	}
	u := &Unit{ImportPath: path, Dir: dir, Fset: l.Fset, Files: files, Pkg: pkg, Info: info}
	l.pure[path] = u
	return u, nil
}

// parseDir parses the .go files of dir selected by keep, in name order,
// with comments. Files excluded by build constraints — //go:build lines
// or GOOS/GOARCH filename suffixes — are skipped for the host platform,
// exactly as the go tool would skip them, so paired files like
// mmap_linux.go / mmap_other.go don't collide.
func (l *Loader) parseDir(dir string, keep func(name string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || !keep(e.Name()) {
			continue
		}
		match, err := build.Default.MatchFile(dir, e.Name())
		if err != nil {
			return nil, fmt.Errorf("reading build constraints of %s: %v", filepath.Join(dir, e.Name()), err)
		}
		if match {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// check type-checks files as package path, collecting (and bounding) the
// checker's errors rather than stopping at the first.
func (l *Loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		if len(errs) > 3 {
			errs = errs[:3]
		}
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("type errors in %q:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return pkg, nil
}

// LoadDir builds the analysis units of one directory: the package with
// its in-package test files, plus the external _test package if present.
func (l *Loader) LoadDir(dir, importPath string) ([]*Unit, error) {
	all, err := l.parseDir(dir, func(string) bool { return true })
	if err != nil {
		return nil, err
	}
	var pkgFiles, extFiles []*ast.File
	for _, f := range all {
		if strings.HasSuffix(f.Name.Name, "_test") {
			extFiles = append(extFiles, f)
		} else {
			pkgFiles = append(pkgFiles, f)
		}
	}
	var units []*Unit
	if len(pkgFiles) > 0 {
		info := newInfo()
		pkg, err := l.check(importPath, pkgFiles, info)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			ImportPath: importPath, Dir: dir, Fset: l.Fset,
			Files: pkgFiles, Pkg: pkg, Info: info,
		})
	}
	if len(extFiles) > 0 {
		info := newInfo()
		pkg, err := l.check(importPath+"_test", extFiles, info)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			ImportPath: importPath + "_test", Dir: dir, Fset: l.Fset,
			Files: extFiles, Pkg: pkg, Info: info,
		})
	}
	return units, nil
}

// LoadAll walks the module tree and loads every package directory,
// skipping testdata, hidden, and underscore directories — the same
// pruning the go tool applies to "./...".
func (l *Loader) LoadAll() ([]*Unit, error) {
	var units []*Unit
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root &&
			(name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGoFiles(path)
		if err != nil {
			return err
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		importPath := l.modpath
		if rel != "." {
			importPath = l.modpath + "/" + filepath.ToSlash(rel)
		}
		us, err := l.LoadDir(path, importPath)
		if err != nil {
			return err
		}
		units = append(units, us...)
		return nil
	})
	return units, err
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}
