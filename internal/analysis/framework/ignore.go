package framework

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignoreDirective is one parsed //satlint:ignore comment.
type ignoreDirective struct {
	pos       token.Pos
	file      string
	line      int
	analyzers map[string]bool
	used      bool
}

// IgnoreSet is every //satlint:ignore directive of one analysis unit.
//
// The directive grammar is
//
//	//satlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// and a directive suppresses the named analyzers' diagnostics on the
// directive's own line (trailing-comment placement) and on the line
// immediately after it (own-line placement above the flagged code). The
// reason is mandatory: a directive without one suppresses nothing and is
// itself reported, so every silenced finding carries its justification
// in the source.
type IgnoreSet struct {
	directives []ignoreDirective
	// Malformed holds one diagnostic (analyzer "satlint") per directive
	// that names no analyzer or gives no reason.
	Malformed []Diagnostic
}

// ParseIgnores extracts the ignore directives from every comment in the
// files.
func ParseIgnores(fset *token.FileSet, files []*ast.File) *IgnoreSet {
	s := &IgnoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.parse(fset, c)
			}
		}
	}
	return s
}

func (s *IgnoreSet) parse(fset *token.FileSet, c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok {
		return // block comments cannot carry directives
	}
	text, ok = strings.CutPrefix(strings.TrimSpace(text), "satlint:ignore")
	if !ok {
		return
	}
	names, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
	if names == "" || strings.TrimSpace(reason) == "" {
		s.Malformed = append(s.Malformed, Diagnostic{
			Pos:      c.Pos(),
			Analyzer: "satlint",
			Message:  "malformed //satlint:ignore directive: need analyzer name(s) and a reason",
		})
		return
	}
	d := ignoreDirective{
		pos:       c.Pos(),
		file:      fset.Position(c.Pos()).Filename,
		line:      fset.Position(c.Pos()).Line,
		analyzers: map[string]bool{},
	}
	for _, n := range strings.Split(names, ",") {
		d.analyzers[strings.TrimSpace(n)] = true
	}
	s.directives = append(s.directives, d)
}

// Suppressed reports whether diagnostic d is covered by a directive,
// marking every covering directive as used.
func (s *IgnoreSet) Suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	hit := false
	for i := range s.directives {
		dir := &s.directives[i]
		if dir.file == pos.Filename &&
			(dir.line == pos.Line || dir.line == pos.Line-1) &&
			dir.analyzers[d.Analyzer] {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// Unused returns one diagnostic (analyzer "satlint") per directive that
// suppressed nothing. A directive is only reported when every analyzer
// it names is in the active run set: a single-analyzer run (tests,
// filtered passes) cannot tell whether the other analyzers it names
// would have matched, so it stays silent about such directives.
func (s *IgnoreSet) Unused(active map[string]bool) []Diagnostic {
	var out []Diagnostic
	for i := range s.directives {
		dir := &s.directives[i]
		if dir.used {
			continue
		}
		allActive := true
		names := make([]string, 0, len(dir.analyzers))
		for n := range dir.analyzers {
			names = append(names, n)
			if !active[n] {
				allActive = false
			}
		}
		if !allActive {
			continue
		}
		sort.Strings(names)
		out = append(out, Diagnostic{
			Pos:      dir.pos,
			Analyzer: "satlint",
			Message:  "unused //satlint:ignore directive: no " + strings.Join(names, ", ") + " finding here to suppress",
		})
	}
	return out
}
