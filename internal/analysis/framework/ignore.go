package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //satlint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool
}

// IgnoreSet is every //satlint:ignore directive of one analysis unit.
//
// The directive grammar is
//
//	//satlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// and a directive suppresses the named analyzers' diagnostics on the
// directive's own line (trailing-comment placement) and on the line
// immediately after it (own-line placement above the flagged code). The
// reason is mandatory: a directive without one suppresses nothing and is
// itself reported, so every silenced finding carries its justification
// in the source.
type IgnoreSet struct {
	directives []ignoreDirective
	// Malformed holds one diagnostic (analyzer "satlint") per directive
	// that names no analyzer or gives no reason.
	Malformed []Diagnostic
}

// ParseIgnores extracts the ignore directives from every comment in the
// files.
func ParseIgnores(fset *token.FileSet, files []*ast.File) *IgnoreSet {
	s := &IgnoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.parse(fset, c)
			}
		}
	}
	return s
}

func (s *IgnoreSet) parse(fset *token.FileSet, c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok {
		return // block comments cannot carry directives
	}
	text, ok = strings.CutPrefix(strings.TrimSpace(text), "satlint:ignore")
	if !ok {
		return
	}
	names, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
	if names == "" || strings.TrimSpace(reason) == "" {
		s.Malformed = append(s.Malformed, Diagnostic{
			Pos:      c.Pos(),
			Analyzer: "satlint",
			Message:  "malformed //satlint:ignore directive: need analyzer name(s) and a reason",
		})
		return
	}
	d := ignoreDirective{
		file:      fset.Position(c.Pos()).Filename,
		line:      fset.Position(c.Pos()).Line,
		analyzers: map[string]bool{},
	}
	for _, n := range strings.Split(names, ",") {
		d.analyzers[strings.TrimSpace(n)] = true
	}
	s.directives = append(s.directives, d)
}

// Suppressed reports whether diagnostic d is covered by a directive.
func (s *IgnoreSet) Suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, dir := range s.directives {
		if dir.file == pos.Filename &&
			(dir.line == pos.Line || dir.line == pos.Line-1) &&
			dir.analyzers[d.Analyzer] {
			return true
		}
	}
	return false
}
