package framework

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
)

// vetConfig mirrors the JSON configuration file the go command hands a
// -vettool for each package it vets (the unitchecker protocol). Only the
// fields this driver consumes are declared; unknown fields are ignored
// by the decoder.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVet executes one `go vet -vettool` unit: it reads the vet config at
// cfgPath, type-checks the unit's files against the compiler export data
// the go command prepared, runs the analyzers, and prints diagnostics to
// w in file:line:col form. The returned code is the process exit status
// the protocol expects: 0 clean, 1 driver failure, 2 findings.
//
// Cross-package facts ride the same protocol the go command built for
// them: the fact files of every dependency (cfg.PackageVetx) are decoded
// into the run's store before analysis, and the store — dependency facts
// plus this unit's exports — is serialized to cfg.VetxOutput afterwards,
// so facts accumulate transitively exactly like export data. A VetxOnly
// unit (a dependency the go command only needs facts from) runs just the
// fact-declaring analyzers and reports nothing.
func RunVet(cfgPath string, analyzers []*Analyzer, w io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "satlint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "satlint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file to exist even when a unit
	// fails, so write an empty one before doing anything that can error
	// out; it is rewritten with the real store on success.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(w, "satlint: writing facts: %v\n", err)
			return 1
		}
	}

	run := analyzers
	if cfg.VetxOnly {
		run = nil
		for _, a := range analyzers {
			if len(a.FactTypes) > 0 {
				run = append(run, a)
			}
		}
		if len(run) == 0 {
			return 0
		}
	}

	facts := NewFactStore()
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for _, vetx := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, vetx)
	}
	sort.Strings(vetxPaths)
	for _, vetx := range vetxPaths {
		data, err := os.ReadFile(vetx)
		if err != nil {
			// A dependency outside the analyzed pattern may have no fact
			// file; treat absence as no facts.
			if os.IsNotExist(err) {
				continue
			}
			fmt.Fprintf(w, "satlint: reading dependency facts %s: %v\n", vetx, err)
			return 1
		}
		if err := DecodeFacts(data, analyzers, facts); err != nil {
			fmt.Fprintf(w, "satlint: %s: %v\n", vetx, err)
			return 1
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(w, "satlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		fh, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		return struct {
			io.Reader
			io.Closer
		}{bufio.NewReader(fh), fh}, nil
	})
	info := newInfo()
	var tcErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
	}
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(tcErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "satlint: typechecking %s: %v\n", cfg.ImportPath, tcErrs[0])
		return 1
	}

	unit := &Unit{
		ImportPath: cfg.ImportPath, Dir: cfg.Dir, Fset: fset,
		Files: files, Pkg: pkg, Info: info,
	}
	diags, err := RunAnalyzers(unit, run, facts)
	if err != nil {
		fmt.Fprintf(w, "satlint: %v\n", err)
		return 1
	}

	if cfg.VetxOutput != "" {
		blob, err := facts.Encode()
		if err != nil {
			fmt.Fprintf(w, "satlint: encoding facts: %v\n", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, blob, 0o666); err != nil {
			fmt.Fprintf(w, "satlint: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	bad := 0
	for _, d := range diags {
		if d.Ignored {
			continue
		}
		fmt.Fprintf(w, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		bad++
	}
	if bad > 0 {
		return 2
	}
	return 0
}
