package framework

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// vetConfig mirrors the JSON configuration file the go command hands a
// -vettool for each package it vets (the unitchecker protocol). Only the
// fields this driver consumes are declared; unknown fields are ignored
// by the decoder.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVet executes one `go vet -vettool` unit: it reads the vet config at
// cfgPath, type-checks the unit's files against the compiler export data
// the go command prepared, runs the analyzers, and prints diagnostics to
// w in file:line:col form. The returned code is the process exit status
// the protocol expects: 0 clean, 1 driver failure, 2 findings.
//
// satlint keeps no cross-package facts, so the mandatory "vetx" facts
// output is always an empty file and dependency facts are never read.
func RunVet(cfgPath string, analyzers []*Analyzer, w io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "satlint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "satlint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file to exist even when a unit
	// fails, so write it before doing anything that can error out.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(w, "satlint: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(w, "satlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		fh, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		return struct {
			io.Reader
			io.Closer
		}{bufio.NewReader(fh), fh}, nil
	})
	info := newInfo()
	var tcErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
	}
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(tcErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "satlint: typechecking %s: %v\n", cfg.ImportPath, tcErrs[0])
		return 1
	}

	unit := &Unit{
		ImportPath: cfg.ImportPath, Dir: cfg.Dir, Fset: fset,
		Files: files, Pkg: pkg, Info: info,
	}
	diags, err := RunAnalyzers(unit, analyzers)
	if err != nil {
		fmt.Fprintf(w, "satlint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
