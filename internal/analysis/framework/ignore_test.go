package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestIgnoreSuppressesOwnAndNextLine(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	//satlint:ignore nondet timing is for humans
	_ = 1
	_ = 2
}
`)
	ign := ParseIgnores(fset, files)
	if len(ign.Malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", ign.Malformed)
	}
	file := fset.File(files[0].Pos())
	diagAt := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: file.LineStart(line), Analyzer: analyzer, Message: "x"}
	}
	if !ign.Suppressed(fset, diagAt(4, "nondet")) {
		t.Error("directive must suppress on its own line")
	}
	if !ign.Suppressed(fset, diagAt(5, "nondet")) {
		t.Error("directive must suppress on the next line")
	}
	if ign.Suppressed(fset, diagAt(6, "nondet")) {
		t.Error("directive must not reach two lines down")
	}
	if ign.Suppressed(fset, diagAt(5, "maporder")) {
		t.Error("directive must only suppress the named analyzer")
	}
}

func TestIgnoreMultipleAnalyzers(t *testing.T) {
	fset, files := parseOne(t, `package p

//satlint:ignore nondet,maporder fixture exercises both
func f() {}
`)
	ign := ParseIgnores(fset, files)
	file := fset.File(files[0].Pos())
	for _, a := range []string{"nondet", "maporder"} {
		if !ign.Suppressed(fset, Diagnostic{Pos: file.LineStart(4), Analyzer: a}) {
			t.Errorf("comma list must cover %s", a)
		}
	}
	if ign.Suppressed(fset, Diagnostic{Pos: file.LineStart(4), Analyzer: "obsguard"}) {
		t.Error("unlisted analyzer must not be suppressed")
	}
}

func TestReasonlessIgnoreIsMalformedAndInert(t *testing.T) {
	fset, files := parseOne(t, `package p

//satlint:ignore nondet
func f() {}

//satlint:ignore
func g() {}
`)
	ign := ParseIgnores(fset, files)
	if len(ign.Malformed) != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2", len(ign.Malformed))
	}
	for _, d := range ign.Malformed {
		if d.Analyzer != "satlint" {
			t.Errorf("malformed diagnostic attributed to %q, want satlint", d.Analyzer)
		}
		if !strings.Contains(d.Message, "need analyzer name(s) and a reason") {
			t.Errorf("unexpected malformed message %q", d.Message)
		}
	}
	// A reasonless directive suppresses nothing.
	file := fset.File(files[0].Pos())
	if ign.Suppressed(fset, Diagnostic{Pos: file.LineStart(4), Analyzer: "nondet"}) {
		t.Error("reasonless directive must not suppress")
	}
}

func TestUnusedDirectivesReported(t *testing.T) {
	fset, files := parseOne(t, `package p

//satlint:ignore nondet this one earns its keep
func used() {}

//satlint:ignore nondet nothing here to suppress
func stale() {}

//satlint:ignore maporder run set below never includes maporder
func foreign() {}
`)
	ign := ParseIgnores(fset, files)
	file := fset.File(files[0].Pos())
	// Line 4's finding marks the first directive used.
	if !ign.Suppressed(fset, Diagnostic{Pos: file.LineStart(4), Analyzer: "nondet"}) {
		t.Fatal("setup: the first directive should suppress a nondet finding on line 4")
	}

	active := map[string]bool{"nondet": true}
	unused := ign.Unused(active)
	if len(unused) != 1 {
		t.Fatalf("got %d unused-directive findings, want 1:\n%+v", len(unused), unused)
	}
	d := unused[0]
	if got := fset.Position(d.Pos).Line; got != 6 {
		t.Errorf("unused finding at line %d, want 6 (the stale nondet directive)", got)
	}
	if d.Analyzer != "satlint" {
		t.Errorf("unused finding attributed to %q, want satlint", d.Analyzer)
	}
	if !strings.Contains(d.Message, "unused //satlint:ignore") || !strings.Contains(d.Message, "nondet") {
		t.Errorf("unexpected unused message %q", d.Message)
	}
	// With maporder also active the third directive becomes reportable.
	active["maporder"] = true
	if got := len(ign.Unused(active)); got != 2 {
		t.Errorf("with maporder active, got %d unused findings, want 2", got)
	}
}
