// Package maporderfix exercises the maporder analyzer: map ranges that
// feed ordered output, and the order-insensitive idioms it must accept.
package maporderfix

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

func prints(m map[string]int) {
	for k, v := range m { // want `map iteration order is randomized but the loop body prints with fmt\.Println`
		fmt.Println(k, v)
	}
}

func appendsUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to a slice declared outside the loop`
		out = append(out, k)
	}
	return out
}

func concatenates(m map[string]int) string {
	s := ""
	for k := range m { // want `concatenates onto a string declared outside the loop`
		s += k
	}
	return s
}

func writes(m map[string]int, sb *strings.Builder) {
	for k := range m { // want `calls WriteString on a value from outside the loop`
		sb.WriteString(k)
	}
}

func buildsEvents(m map[int]uint64, emit func(obs.Event)) {
	for pid := range m { // want `constructs an obs\.Event \(events form an ordered stream\)`
		emit(obs.Event{Kind: obs.EvPageFault, PID: pid})
	}
}

// collectThenSort is the canonical deterministic idiom: append inside the
// range, sort the same slice after the loop. Not a finding.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectThenSortSlice accepts the sort.Slice spelling too.
func collectThenSortSlice(m map[int]uint64) []int {
	pids := make([]int, 0, len(m))
	for pid := range m {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}

// commutativeFold accumulates with +=, which is order-insensitive.
func commutativeFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// mapToMap fills another map, which has no observable order.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sortedKeysRange prints over a sorted key slice: the fix the analyzer
// recommends, trivially accepted (the range is over a slice).
func sortedKeysRange(m map[string]int) {
	for _, k := range collectThenSort(m) {
		fmt.Println(k, m[k])
	}
}
