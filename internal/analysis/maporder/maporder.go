// Package maporder defines a satlint analyzer that flags iteration over
// a map when the loop body emits ordered output. Go randomizes map
// iteration order, so a map range that prints, appends to an
// outer-scope slice, concatenates onto an outer string, writes to an
// encoder or table, or publishes obs events produces different bytes on
// every run — exactly the corruption the repo's golden-JSON tests exist
// to catch, except on paths those tests don't pin.
//
// Writing map entries into another map, or folding them with commutative
// arithmetic (+=, counters), is order-insensitive and not flagged; nor
// is the canonical fix, ranging over a sorted slice of keys.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer flags map iteration feeding ordered output.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc: `forbid map iteration that feeds ordered output

Ranging over a map visits keys in randomized order. When the loop body
prints, appends to a slice declared outside the loop, concatenates onto
an outer string, calls Write/Encode/AddRow/Publish on an outer value, or
constructs an obs.Event, the output order changes run to run. Iterate a
sorted slice of the keys instead; accumulating into a map or with
commutative arithmetic is fine.`,
	Run: run,
}

// fmtPrinters write formatted output in argument order.
var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// orderedMethods are method names whose calls emit into an ordered
// stream (writers, encoders, the stats table, the obs bus).
var orderedMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "AddRow": true, "Publish": true,
}

func run(pass *framework.Pass) error {
	framework.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		sorted := sortedAfter(pass, rng, stack)
		if sink, what := findSink(pass, rng, sorted); sink != token.NoPos {
			pass.Reportf(rng.Pos(),
				"map iteration order is randomized but the loop body %s; range over a sorted slice of the keys instead", what)
		}
		return true
	})
	return nil
}

// sortFuncs are the sort entry points that canonicalize a collected
// slice, making the collect-append-then-sort idiom order-insensitive.
var sortFuncs = map[string]bool{
	"sort.Ints": true, "sort.Strings": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// sortedAfter collects the (textual) expressions that are sorted by a
// statement following the range loop in its enclosing statement list:
// appending map entries to such a slice is the canonical deterministic
// idiom, not a finding.
func sortedAfter(pass *framework.Pass, rng *ast.RangeStmt, stack []ast.Node) map[string]bool {
	out := map[string]bool{}
	if len(stack) == 0 {
		return out
	}
	var stmts []ast.Stmt
	switch parent := stack[len(stack)-1].(type) {
	case *ast.BlockStmt:
		stmts = parent.List
	case *ast.CaseClause:
		stmts = parent.Body
	case *ast.CommClause:
		stmts = parent.Body
	default:
		return out
	}
	past := false
	for _, s := range stmts {
		if s == ast.Stmt(rng) {
			past = true
			continue
		}
		if !past {
			continue
		}
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalledFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
				return true
			}
			if sortFuncs[fn.Pkg().Name()+"."+fn.Name()] &&
				(fn.Pkg().Path() == "sort" || fn.Pkg().Path() == "slices") {
				out[types.ExprString(call.Args[0])] = true
			}
			return true
		})
	}
	return out
}

// findSink scans the body of a map-range for an order-sensitive sink and
// returns its position and a description, or token.NoPos. sorted holds
// expressions canonicalized by a sort after the loop; appends to those
// are the accepted collect-then-sort idiom.
func findSink(pass *framework.Pass, rng *ast.RangeStmt, sorted map[string]bool) (token.Pos, string) {
	var pos token.Pos
	var what string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if p, w := callSink(pass, rng, n, sorted); p != token.NoPos {
				pos, what = p, w
			}
		case *ast.AssignStmt:
			if p, w := concatSink(pass, rng, n); p != token.NoPos {
				pos, what = p, w
			}
		case *ast.CompositeLit:
			if framework.IsNamedType(pass.TypesInfo.TypeOf(n), "repro/internal/obs", "Event") {
				pos, what = n.Pos(), "constructs an obs.Event (events form an ordered stream)"
			}
		}
		return pos == token.NoPos
	})
	return pos, what
}

func callSink(pass *framework.Pass, rng *ast.RangeStmt, call *ast.CallExpr, sorted map[string]bool) (token.Pos, string) {
	// append to a slice declared outside the loop — unless that slice is
	// sorted after the loop, the canonical deterministic idiom.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if declaredOutside(pass, rng, call.Args[0]) && !sorted[types.ExprString(call.Args[0])] {
				return call.Pos(), "appends to a slice declared outside the loop"
			}
		}
		return token.NoPos, ""
	}
	fn := framework.CalledFunc(pass.TypesInfo, call)
	if fn == nil {
		return token.NoPos, ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtPrinters[fn.Name()] {
		return call.Pos(), "prints with fmt." + fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && orderedMethods[fn.Name()] {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && declaredOutside(pass, rng, sel.X) {
			return call.Pos(), "calls " + fn.Name() + " on a value from outside the loop"
		}
	}
	return token.NoPos, ""
}

// concatSink flags `s += ...` string concatenation onto an outer
// variable: unlike numeric +=, concatenation order is visible.
func concatSink(pass *framework.Pass, rng *ast.RangeStmt, as *ast.AssignStmt) (token.Pos, string) {
	if as.Tok != token.ADD_ASSIGN || len(as.Lhs) != 1 {
		return token.NoPos, ""
	}
	t := pass.TypesInfo.TypeOf(as.Lhs[0])
	if t == nil {
		return token.NoPos, ""
	}
	if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return token.NoPos, ""
	}
	if declaredOutside(pass, rng, as.Lhs[0]) {
		return as.Pos(), "concatenates onto a string declared outside the loop"
	}
	return token.NoPos, ""
}

// declaredOutside reports whether the root identifier of e refers to an
// object declared outside the range statement — i.e. state that
// outlives one iteration.
func declaredOutside(pass *framework.Pass, rng *ast.RangeStmt, e ast.Expr) bool {
	root := framework.RootIdent(e)
	if root == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = pass.TypesInfo.Defs[root]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}
