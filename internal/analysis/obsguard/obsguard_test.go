package obsguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/obsguard"
)

func TestObsguard(t *testing.T) {
	analysistest.Run(t, obsguard.Analyzer, "obsguardfix")
}
