// Package obsguard defines a satlint analyzer enforcing the hot-path
// observability invariant from the PR 2 event-bus work: components must
// not construct or publish obs events unless someone is listening.
// Every obs.Bus.Publish call and every obs.Event composite literal must
// be dominated by a Bus.Wants(kind) test (or an explicit nil-bus check)
// on the same bus, so an unobserved simulation pays one branch, not an
// allocation plus dynamic dispatch, per event site.
package obsguard

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// obsPath is the bus package whose publish sites are checked.
const obsPath = "repro/internal/obs"

// Analyzer flags unguarded event publication and construction.
var Analyzer = &framework.Analyzer{
	Name: "obsguard",
	Doc: `require Bus.Wants (or a nil-bus check) around event publication

Publishing to the obs bus from simulator hot paths must be guarded:

    if b.bus.Wants(obs.EvTLBInsert) {
        b.bus.Publish(obs.Event{...})
    }

so that building the Event struct and dispatching it cost nothing when
nobody subscribed. This analyzer flags obs.Bus.Publish calls and
obs.Event literals that no enclosing if statement guards with a Wants
call on the same bus expression or a bus nil-check. The obs package
itself and _test.go files (which exercise the bus directly) are exempt.`,
	Run: run,
}

func run(pass *framework.Pass) error {
	if framework.BasePath(pass.Pkg.Path()) == obsPath {
		return nil // the bus implementation tests itself unguarded
	}
	framework.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkPublish(pass, n, stack)
		case *ast.CompositeLit:
			checkEventLit(pass, n, stack)
		}
		return true
	})
	return nil
}

// checkPublish flags b.Publish(...) not enclosed in a Wants/nil guard on
// the same bus expression b.
func checkPublish(pass *framework.Pass, call *ast.CallExpr, stack []ast.Node) {
	fn := framework.CalledFunc(pass.TypesInfo, call)
	if !framework.IsMethodOf(fn, obsPath, "Bus", "Publish") {
		return
	}
	if pass.IsTestFile(call.Pos()) {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return // method value; out of scope
	}
	recv := types.ExprString(sel.X)
	if !guarded(pass, stack, recv) {
		pass.Reportf(call.Pos(),
			"%s.Publish is not dominated by a %s.Wants(kind) or nil-bus guard (hot-path invariant: unobserved runs must not build or dispatch events)",
			recv, recv)
	}
}

// checkEventLit flags obs.Event{...} construction outside any guard.
// A literal that is itself the argument of a Publish call is skipped:
// the Publish check reports that site once.
func checkEventLit(pass *framework.Pass, lit *ast.CompositeLit, stack []ast.Node) {
	if !framework.IsNamedType(pass.TypesInfo.TypeOf(lit), obsPath, "Event") {
		return
	}
	if pass.IsTestFile(lit.Pos()) {
		return
	}
	if len(stack) > 0 {
		if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok {
			if framework.IsMethodOf(framework.CalledFunc(pass.TypesInfo, call), obsPath, "Bus", "Publish") {
				return
			}
		}
	}
	if !guarded(pass, stack, "") {
		pass.Reportf(lit.Pos(),
			"obs.Event constructed outside a Bus.Wants guard (hot-path invariant: build events only when observed)")
	}
}

// guarded reports whether some enclosing if statement's condition
// contains a Bus.Wants call — on the given receiver expression when
// recv is non-empty — or a nil comparison of a *obs.Bus value.
func guarded(pass *framework.Pass, stack []ast.Node, recv string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		// Only a guard if we are inside the body (not the condition or
		// the else branch of the very statement being tested).
		if i+1 < len(stack) && stack[i+1] != ifStmt.Body {
			continue
		}
		if condGuards(pass, ifStmt.Cond, recv) {
			return true
		}
	}
	return false
}

func condGuards(pass *framework.Pass, cond ast.Expr, recv string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := framework.CalledFunc(pass.TypesInfo, n)
			if framework.IsMethodOf(fn, obsPath, "Bus", "Wants") {
				if recv == "" {
					found = true
				} else if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
					types.ExprString(sel.X) == recv {
					found = true
				}
			}
		case *ast.BinaryExpr:
			// A `bus != nil` (or inverted) comparison also counts.
			for _, side := range []ast.Expr{n.X, n.Y} {
				if framework.IsNamedType(pass.TypesInfo.TypeOf(side), obsPath, "Bus") &&
					(recv == "" || types.ExprString(side) == recv) {
					other := n.X
					if side == n.X {
						other = n.Y
					}
					if id, ok := ast.Unparen(other).(*ast.Ident); ok && id.Name == "nil" {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
