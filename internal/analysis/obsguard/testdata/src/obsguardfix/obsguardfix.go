// Package obsguardfix exercises the obsguard analyzer against the real
// obs.Bus API: unguarded publication and construction are findings;
// Wants guards, nil-bus guards, and ignore directives silence them.
package obsguardfix

import "repro/internal/obs"

type comp struct {
	bus *obs.Bus
}

func (c *comp) unguardedPublish(pid int) {
	c.bus.Publish(obs.Event{Kind: obs.EvPageFault, PID: pid}) // want `c\.bus\.Publish is not dominated by a c\.bus\.Wants\(kind\) or nil-bus guard`
}

func (c *comp) unguardedLiteral(pid int) obs.Event {
	return obs.Event{Kind: obs.EvPageFault, PID: pid} // want `obs\.Event constructed outside a Bus\.Wants guard`
}

// wrongBus shows that a Wants guard on a different bus does not cover
// this one.
func (c *comp) wrongBus(other *obs.Bus, pid int) {
	if other.Wants(obs.EvPageFault) {
		c.bus.Publish(obs.Event{Kind: obs.EvPageFault, PID: pid}) // want `c\.bus\.Publish is not dominated`
	}
}

func (c *comp) guardedByWants(pid int) {
	if c.bus.Wants(obs.EvPageFault) {
		c.bus.Publish(obs.Event{Kind: obs.EvPageFault, PID: pid})
	}
}

func (c *comp) guardedByNilCheck(pid int) {
	if c.bus != nil {
		c.bus.Publish(obs.Event{Kind: obs.EvPageFault, PID: pid})
	}
}

// guardedConstruction: a literal bound to a variable inside the guard is
// accepted, and publishing it through the same guard too.
func (c *comp) guardedConstruction(pid int) {
	if c.bus.Wants(obs.EvPageFault) {
		ev := obs.Event{Kind: obs.EvPageFault, PID: pid}
		c.bus.Publish(ev)
	}
}

// ignored shows the escape hatch for deliberate unguarded publication.
func (c *comp) ignored(pid int) {
	//satlint:ignore obsguard cold path, runs once per scenario
	c.bus.Publish(obs.Event{Kind: obs.EvPageFault, PID: pid})
}
