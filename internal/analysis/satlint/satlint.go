// Package satlint assembles the project's analyzer suite: the eight
// invariant checks cmd/satlint runs as a multichecker. The set is
// defined here, away from the command, so tests can assert registration
// and future analyzers have one place to plug in.
package satlint

import (
	"repro/internal/analysis/captureimmut"
	"repro/internal/analysis/deprecated"
	"repro/internal/analysis/detflow"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nondet"
	"repro/internal/analysis/obsguard"
	"repro/internal/analysis/snapshotfresh"
	"repro/internal/analysis/unsafecast"
)

// Analyzers returns the full suite in stable (alphabetical) order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		captureimmut.Analyzer,
		deprecated.Analyzer,
		detflow.Analyzer,
		maporder.Analyzer,
		nondet.Analyzer,
		obsguard.Analyzer,
		snapshotfresh.Analyzer,
		unsafecast.Analyzer,
	}
}
