package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start(\"\", \"\") error: %v", err)
	}
	if stop == nil {
		t.Fatal("Start returned nil stop")
	}
	if err := stop(); err != nil {
		t.Fatalf("stop error: %v", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start error: %v", err)
	}
	// Burn a little CPU and allocate so both profiles have something
	// to sample; the assertion is only that valid files appear.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1<<12))
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatalf("stop error: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("Start with uncreatable path: want error, got nil")
	}
}
