package prof

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start(Options{})
	if err != nil {
		t.Fatalf("Start(Options{}) error: %v", err)
	}
	if stop == nil {
		t.Fatal("Start returned nil stop")
	}
	if err := stop(); err != nil {
		t.Fatalf("stop error: %v", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	o := Options{
		CPU:   filepath.Join(dir, "cpu.pprof"),
		Mem:   filepath.Join(dir, "mem.pprof"),
		Block: filepath.Join(dir, "block.pprof"),
		Mutex: filepath.Join(dir, "mutex.pprof"),
	}
	stop, err := Start(o)
	if err != nil {
		t.Fatalf("Start error: %v", err)
	}
	// Burn a little CPU, allocate, and contend a mutex across goroutines
	// so every profile has something to sample; the assertion is only
	// that valid files appear.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1<<12))
	}
	_ = sink
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				mu.Lock()
				runtime.Gosched()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := stop(); err != nil {
		t.Fatalf("stop error: %v", err)
	}
	for _, p := range []string{o.CPU, o.Mem, o.Block, o.Mutex} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartRestoresRates(t *testing.T) {
	dir := t.TempDir()
	stop, err := Start(Options{
		Block: filepath.Join(dir, "block.pprof"),
		Mutex: filepath.Join(dir, "mutex.pprof"),
	})
	if err != nil {
		t.Fatalf("Start error: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop error: %v", err)
	}
	// stop must switch mutex sampling back off; a leaked fraction would
	// tax every later lock operation of the process.
	if got := runtime.SetMutexProfileFraction(0); got != 0 {
		t.Errorf("mutex profile fraction after stop = %d, want 0", got)
	}
}

func TestStartBadPath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")
	if _, err := Start(Options{CPU: bad}); err == nil {
		t.Fatal("Start with uncreatable path: want error, got nil")
	}
}
