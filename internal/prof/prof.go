// Package prof drives the optional pprof captures behind the
// -cpuprofile and -memprofile flags of the command-line tools. Both
// commands share this one lifecycle so the profiles are written the
// same way: the CPU profile covers exactly the workload (not flag
// parsing), and the heap profile samples the live set after a forced
// GC so transient sweep buffers do not drown the structural allocations
// the profile is meant to expose.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the captures selected by the two file paths; an empty
// path disables that capture. The returned stop function ends the CPU
// profile and writes the heap profile; it must run exactly once, after
// the workload. Start never returns a nil stop alongside a nil error.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
			runtime.GC() // settle the live set before sampling
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
