// Package prof drives the optional pprof captures behind the
// -cpuprofile, -memprofile, -blockprofile and -mutexprofile flags of the
// command-line tools. Both commands share this one lifecycle so the
// profiles are written the same way: the CPU, block and mutex profiles
// cover exactly the workload (not flag parsing), and the heap profile
// samples the live set after a forced GC so transient sweep buffers do
// not drown the structural allocations the profile is meant to expose.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Options selects the captures by output path; an empty path disables
// that capture.
type Options struct {
	// CPU is the CPU profile path, sampled over the whole workload.
	CPU string
	// Mem is the heap profile path, the live set written at stop.
	Mem string
	// Block is the blocking profile path. While enabled every blocking
	// event is recorded (rate 1), which is the right fidelity for the
	// parallel sweep's channel waits and costs nothing when idle.
	Block string
	// Mutex is the mutex-contention profile path, recording every
	// contended acquisition (fraction 1) while enabled.
	Mutex string
}

// Start begins the selected captures. The returned stop function ends
// the CPU capture, restores the block and mutex sampling rates to off,
// and writes the end-of-run profiles; it must run exactly once, after
// the workload — including on early exits, or the process would keep
// paying the block/mutex bookkeeping and the files would never appear.
// Start never returns a nil stop alongside a nil error; on error it has
// already undone any captures it began.
func Start(o Options) (stop func() error, err error) {
	var cpuFile *os.File
	if o.CPU != "" {
		cpuFile, err = os.Create(o.CPU)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	if o.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	if o.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		// Stop the event accounting before writing, so the written
		// profiles end exactly with the workload.
		if o.Block != "" {
			runtime.SetBlockProfileRate(0)
		}
		if o.Mutex != "" {
			runtime.SetMutexProfileFraction(0)
		}
		if err := writeLookup("block", o.Block); err != nil {
			return err
		}
		if err := writeLookup("mutex", o.Mutex); err != nil {
			return err
		}
		if o.Mem != "" {
			f, err := os.Create(o.Mem)
			if err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
			runtime.GC() // settle the live set before sampling
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
		}
		return nil
	}, nil
}

// writeLookup writes the named runtime profile to path; an empty path is
// a no-op.
func writeLookup(name, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("%s profile: %w", name, err)
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("%s profile: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%s profile: %w", name, err)
	}
	return nil
}
