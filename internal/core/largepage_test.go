package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/arch/armv7"
	"repro/internal/vm"
)

func largeRegion(t *testing.T, k *Kernel, p *Process) *vm.VMA {
	t.Helper()
	// 128KB of code, 64KB aligned.
	f := vm.NewFile(k.Phys, "boot.oat", 2*armv7.LargePageSize)
	v := &vm.VMA{
		Start: 0x30000000, End: 0x30000000 + 2*armv7.LargePageSize,
		Prot: vm.ProtRead | vm.ProtExec, Flags: vm.VMAPrivate, File: f,
		Name: "boot.oat code", Category: vm.CatZygoteJavaLib,
	}
	if err := k.MapLargePages(p, v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestMapLargePages(t *testing.T) {
	k := boot(t, SharedPTP())
	p, err := k.NewProcess("zygote")
	if err != nil {
		t.Fatal(err)
	}
	k.SetZygote(p)
	v := largeRegion(t, k, p)

	// All 32 subpage PTEs exist, replicated with the block base frame.
	first := p.MM.PT.PTEAt(v.Start)
	if first == nil || !first.Valid() || first.Flags&arch.PTELarge == 0 {
		t.Fatalf("first PTE = %+v", first)
	}
	if first.Frame%armv7.PagesPerLargePage != 0 {
		t.Errorf("base frame %d not 64KB aligned", first.Frame)
	}
	for i := 0; i < armv7.PagesPerLargePage; i++ {
		pte := p.MM.PT.PTEAt(v.Start + arch.VirtAddr(i*arch.PageSize))
		if pte == nil || pte.Frame != first.Frame {
			t.Fatalf("replica %d = %+v, want base %d", i, pte, first.Frame)
		}
	}
	second := p.MM.PT.PTEAt(v.Start + armv7.LargePageSize)
	if second.Frame == first.Frame {
		t.Error("second chunk must have its own block")
	}
	// The page cache is fully resident: 32 pages.
	if got := v.File.ResidentPages(); got != 32 {
		t.Errorf("resident pages = %d, want 32 (eager large mapping)", got)
	}
}

func TestLargePageExecution(t *testing.T) {
	k := boot(t, SharedPTP())
	p, err := k.NewProcess("zygote")
	if err != nil {
		t.Fatal(err)
	}
	k.SetZygote(p)
	v := largeRegion(t, k, p)

	err = k.Run(p, func() error {
		// Fetch across the whole 64KB page: no faults (eager mapping).
		for off := arch.VirtAddr(0); off < armv7.LargePageSize; off += arch.PageSize {
			if err := k.CPU.Fetch(v.Start + off); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.MM.Counters.PageFaults != 0 {
		t.Errorf("large-page fetches took %d faults, want 0", p.MM.Counters.PageFaults)
	}
	// One TLB entry covers all 16 subpages: exactly one main-TLB miss.
	if got := p.Ctx.Stats.ITLBMainMisses; got != 1 {
		t.Errorf("ITLB misses = %d, want 1 (one 64KB entry covers the page)", got)
	}
}

func TestLargePagePhysicalContiguity(t *testing.T) {
	// Physical addresses within the 64KB page are contiguous from the
	// block base: the paper's complementarity requires real large-page
	// semantics, not 16 unrelated frames.
	k := boot(t, SharedPTP())
	p, _ := k.NewProcess("zygote")
	k.SetZygote(p)
	v := largeRegion(t, k, p)
	pte := p.MM.PT.PTEAt(v.Start + 5*arch.PageSize)
	base := arch.FrameAddr(pte.Frame)
	// Subpage 5 should land at base + 5*4KB.
	wantPA := base + 5*arch.PageSize
	gotFrame := pte.Frame // replicas carry the base
	if arch.FrameAddr(gotFrame)+5*arch.PageSize != wantPA {
		t.Errorf("physical layout broken")
	}
}

func TestLargePagePTPSharing(t *testing.T) {
	// The PTPs holding large-page PTEs share at fork like any others,
	// and the child executes through them without faults.
	k := boot(t, SharedPTP())
	p, _ := k.NewProcess("zygote")
	k.SetZygote(p)
	v := largeRegion(t, k, p)

	child, err := k.Fork(p, "app")
	if err != nil {
		t.Fatal(err)
	}
	idx := k.Geometry().Slot(v.Start)
	if !child.MM.PT.Slot(idx).NeedCopy {
		t.Error("large-page PTP should be shared at fork")
	}
	if err := k.Run(child, func() error { return k.CPU.Fetch(v.Start + 0x7000) }); err != nil {
		t.Fatal(err)
	}
	if child.MM.Counters.PageFaults != 0 {
		t.Error("child should inherit the large-page translations")
	}
}

func TestMapLargePagesValidation(t *testing.T) {
	k := boot(t, SharedPTP())
	p, _ := k.NewProcess("p")
	f := vm.NewFile(k.Phys, "f", 4*armv7.LargePageSize)
	cases := []*vm.VMA{
		// No file.
		{Start: 0x30000000, End: 0x30010000, Prot: vm.ProtRead, Flags: vm.VMAPrivate, Name: "anon"},
		// Writable.
		{Start: 0x30000000, End: 0x30010000, Prot: vm.ProtRead | vm.ProtWrite,
			Flags: vm.VMAPrivate, File: f, Name: "rw"},
		// Misaligned.
		{Start: 0x30001000, End: 0x30011000, Prot: vm.ProtRead,
			Flags: vm.VMAPrivate, File: f, Name: "misaligned"},
	}
	for _, v := range cases {
		if err := k.MapLargePages(p, v); err == nil {
			t.Errorf("MapLargePages(%s) should fail", v.Name)
		}
	}
}

func TestLargeFrameConflictsWith4KB(t *testing.T) {
	k := boot(t, Stock())
	f := vm.NewFile(k.Phys, "f", 2*armv7.LargePageSize)
	if _, err := f.PageFrame(3); err != nil { // 4KB page inside chunk 0
		t.Fatal(err)
	}
	if _, err := f.LargeFrame(0, armv7.PagesPerLargePage); err == nil {
		t.Error("partially cached chunk must not be mappable large")
	}
	if _, err := f.LargeFrame(1, armv7.PagesPerLargePage); err != nil {
		t.Errorf("untouched chunk should map large: %v", err)
	}
	// Idempotent.
	a, _ := f.LargeFrame(1, armv7.PagesPerLargePage)
	b, err := f.LargeFrame(1, armv7.PagesPerLargePage)
	if err != nil || a != b {
		t.Errorf("LargeFrame not stable: %d vs %d (%v)", a, b, err)
	}
	if _, err := f.LargeFrame(99, armv7.PagesPerLargePage); err == nil {
		t.Error("chunk beyond EOF should fail")
	}
}
