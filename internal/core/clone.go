package core

import (
	"sort"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/vm"
)

// ProcessByPID returns the live process with the given PID, or nil.
func (k *Kernel) ProcessByPID(pid int) *Process { return k.procs[pid] }

// Clone duplicates the whole machine for a checkpoint fork: physical
// memory is forked copy-on-write, every process's address space is
// cloned with PTE arrays and page-cache contents shared with the source,
// and TLBs, caches and CPU contexts are copied so the clone resumes from
// exactly the captured cycle. The returned CloneCtx lets callers holding
// direct pointers into the source machine (files, for instance) remap
// them into the clone.
//
// The clone gets a fresh, empty event bus: checkpoints are captured
// before any subscriber attaches, so an empty bus is indistinguishable
// from the source's. Observers registered on the source after the clone
// do not fire for the clone and vice versa.
func (k *Kernel) Clone() (*Kernel, *vm.CloneCtx) {
	phys := k.Phys.Fork()
	cc := vm.NewCloneCtx(phys)
	k2 := &Kernel{
		Phys:         phys,
		Config:       k.Config,
		ForkCosts:    k.ForkCosts,
		Counters:     k.Counters,
		IPICost:      k.IPICost,
		mmu:          k.mmu,
		geo:          k.geo,
		tag:          k.tag,
		prot:         k.prot,
		asidMax:      k.asidMax,
		bus:          obs.NewBus(),
		procs:        make(map[int]*Process, len(k.procs)),
		nextPID:      k.nextPID,
		nextASID:     k.nextASID,
		kernelTextPA: k.kernelTextPA,
	}
	// One arena bundle for all cores' small clone objects; it lives and
	// dies with the cloned machine.
	arenas := &cpu.CloneArenas{}
	k2.l2 = k.l2.Clone(nil, k2.bus, &arenas.Caches)

	// Clone processes in PID order so any allocation the clone performs
	// (none today, but the invariant is cheap) is deterministic.
	pids := make([]int, 0, len(k.procs))
	for pid := range k.procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	ctxs := make(map[*cpu.Context]*cpu.Context, len(pids))
	for _, pid := range pids {
		p := k.procs[pid]
		p2 := &Process{
			PID:           p.PID,
			Name:          p.Name,
			MM:            p.MM.CloneShared(cc),
			IsZygote:      p.IsZygote,
			IsZygoteChild: p.IsZygoteChild,
			ForkStats:     p.ForkStats,
			PTEsCopied:    p.PTEsCopied,
			kernel:        k2,
			alive:         p.alive,
		}
		ctx := *p.Ctx
		ctx.PT = p2.MM.PT
		p2.Ctx = &ctx
		ctxs[p.Ctx] = p2.Ctx
		k2.procs[pid] = p2
	}

	// A core can be left holding the context of an exited process: Exit
	// releases the address space but, like Linux's lazy mm, does not force
	// a context switch, and the next ContextSwitch/charge still compares
	// and bills against that context. Such a context is unreachable from
	// the process table, so remap it to a private copy here — identity
	// semantics survive, but the page-table pointer is dropped: it
	// references storage the exit already released, and it must never
	// alias from the clone into the source machine.
	for _, c := range k.cpus {
		cur := c.Current()
		if cur == nil {
			continue
		}
		if _, ok := ctxs[cur]; ok {
			continue
		}
		orphan := *cur
		orphan.PT = nil
		ctxs[cur] = &orphan
	}

	for _, c := range k.cpus {
		c2 := c.Clone(k2, k2.l2, k2.bus, ctxs, arenas)
		k2.cpus = append(k2.cpus, c2)
		if c == k.CPU {
			k2.CPU = c2
		}
		if c == k.curCPU {
			k2.curCPU = c2
		}
	}
	return k2, cc
}
