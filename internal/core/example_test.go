package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/vm"
)

// Example demonstrates the paper's central mechanism end to end: fork
// shares the parent's page-table pages copy-on-write, a read fault
// populates the shared PTP for every sharer, and a write fault unshares.
func Example() {
	k, err := core.New(4096, core.WithConfig(core.SharedPTP()))
	if err != nil {
		log.Fatal(err)
	}
	parent, err := k.NewProcess("parent")
	if err != nil {
		log.Fatal(err)
	}

	// One file-backed code region and one anonymous heap.
	lib := vm.NewFile(k.Phys, "libc.so", 0x100000)
	if err := k.Mmap(parent, &vm.VMA{
		Start: 0x00100000, End: 0x00200000,
		Prot: vm.ProtRead | vm.ProtExec, Flags: vm.VMAPrivate, File: lib, Name: "libc.so",
	}); err != nil {
		log.Fatal(err)
	}
	if err := k.Mmap(parent, &vm.VMA{
		Start: 0x00200000, End: 0x00300000,
		Prot: vm.ProtRead | vm.ProtWrite, Flags: vm.VMAPrivate, Name: "heap",
	}); err != nil {
		log.Fatal(err)
	}
	// Touch a code page so the parent has a populated PTP to share.
	if err := k.Run(parent, func() error { return k.CPU.Fetch(0x00100000) }); err != nil {
		log.Fatal(err)
	}

	child, err := k.Fork(parent, "child")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fork shared %d PTPs, copied %d PTEs\n",
		child.ForkStats.PTPsShared, child.ForkStats.PTEsCopied)

	// The child reads a page nobody touched: the PTE lands in the shared
	// PTP and is immediately visible to the parent too.
	if err := k.Run(child, func() error { return k.CPU.Fetch(0x00110000) }); err != nil {
		log.Fatal(err)
	}
	pte := parent.MM.PT.PTEAt(0x00110000)
	fmt.Printf("parent sees the child's PTE: %v\n", pte.Valid())

	// The child writes its heap (untouched before the fork, so its PTP
	// is allocated privately on demand); the code PTP stays shared.
	if err := k.Run(child, func() error { return k.CPU.Write(0x00200000) }); err != nil {
		log.Fatal(err)
	}
	geo := k.Geometry()
	fmt.Printf("heap slot shared: %v, code slot shared: %v\n",
		child.MM.PT.Slot(geo.Slot(0x00200000)).NeedCopy,
		child.MM.PT.Slot(geo.Slot(0x00100000)).NeedCopy)

	// Output:
	// fork shared 1 PTPs, copied 0 PTEs
	// parent sees the child's PTE: true
	// heap slot shared: false, code slot shared: true
}
