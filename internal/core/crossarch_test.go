package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/arch/armv7"
	"repro/internal/arch/sv39"
	"repro/internal/mem"
)

// TestCrossArchConservation runs the same fork/touch/exit workload under
// every registered MMU architecture and checks the count-conservation
// invariants that the paper's results rest on, independent of page-table
// geometry:
//
//  1. every PTP frame's sharer count equals the number of live address
//     spaces referencing it;
//  2. the per-slot populated counts sum to the page table's total;
//  3. forking N children from the zygote shares PTPs on every
//     architecture (the core claim: sharing does not need ARM domains);
//  4. after all exits no page-table frame leaks.
func TestCrossArchConservation(t *testing.T) {
	for _, m := range []arch.MMU{armv7.MMU(), sv39.MMU()} {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			k, err := New(testFrames, WithConfig(SharedPTPTLB()), WithArch(m))
			if err != nil {
				t.Fatal(err)
			}
			if got := k.Arch().Name(); got != m.Name() {
				t.Fatalf("kernel arch = %q, want %q", got, m.Name())
			}
			parent := buildParent(t, k)
			procs := []*Process{parent}
			for i := 0; i < 3; i++ {
				child, err := k.Fork(parent, "worker")
				if err != nil {
					t.Fatal(err)
				}
				procs = append(procs, child)
				// Touch code (shared read-only) and heap (COW) in each child.
				err = k.Run(child, func() error {
					for va := arch.VirtAddr(0x00100000); va < 0x00104000; va += arch.PageSize {
						if err := k.CPU.Fetch(va); err != nil {
							return err
						}
					}
					return k.CPU.Write(0x00200000 + arch.VirtAddr(i)*arch.PageSize)
				})
				if err != nil {
					t.Fatal(err)
				}
			}

			// Invariant 1+2: sharer counts and populated sums.
			refs := make(map[arch.FrameNum]int)
			sharedSlots := 0
			for _, p := range procs {
				pop := 0
				for idx := 0; idx < k.Geometry().NumSlots(); idx++ {
					l1 := p.MM.PT.Slot(idx)
					if !l1.Valid() {
						continue
					}
					refs[l1.Table.Frame]++
					pop += l1.Table.Populated()
					if l1.NeedCopy {
						sharedSlots++
					}
				}
				if got := p.MM.PT.PopulatedPTEs(); got != pop {
					t.Errorf("%s pid %d: PopulatedPTEs() = %d, slot sum = %d",
						m.Name(), p.PID, got, pop)
				}
			}
			for frame, want := range refs {
				if got := k.Phys.MapCount(frame); got != want {
					t.Errorf("%s: PTP frame %d sharer count %d, want %d",
						m.Name(), frame, got, want)
				}
			}

			// Invariant 3: PTP sharing happened without domain registers.
			if sharedSlots == 0 {
				t.Errorf("%s: no shared PTP slots after 3 zygote forks", m.Name())
			}
			ss := k.SharingStats()
			if ss.SharedPTPs == 0 || ss.DistinctPTPs >= ss.TotalPTPs {
				t.Errorf("%s: sharing stats show no sharing: %+v", m.Name(), ss)
			}

			// Invariant 4: all page-table frames reclaimed.
			for _, p := range procs {
				k.Exit(p)
			}
			if got := k.Phys.InUseByKind(mem.FramePageTable); got != 0 {
				t.Errorf("%s: leaked %d page-table frames after all exits", m.Name(), got)
			}
		})
	}
}
