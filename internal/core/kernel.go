// Package core implements the paper's primary contribution: a kernel
// whose fork shares second-level page-table pages (PTPs) between parent
// and child copy-on-write, and whose TLB entries for zygote-preloaded
// shared code are shared across all zygote-like processes through the PTE
// global bit and the 32-bit ARM domain protection model.
//
// The kernel layers over the vm substrate exactly as the paper's patch
// layers over stock Linux. Its behavior is selected by Config:
//
//   - the stock Android kernel (no sharing),
//   - the "Copied PTEs" comparison kernel of Table 4, which copies the
//     PTEs of zygote-preloaded shared code at fork time,
//   - the Shared PTP kernel (Section 3.1), and
//   - the Shared PTP & TLB kernel (Sections 3.1 + 3.2).
//
// PTP sharing works at fork: for each level-1 slot of the parent whose
// memory regions are all sharable, the child's level-1 entry is pointed at
// the parent's PTP, the PTP's writable PTEs are write-protected (first
// share only), the NEED_COPY bit is set in both processes' level-1
// entries, and the PTP's sharer count — the mapcount of its page frame —
// is incremented. Unlike earlier systems, a shared PTP may contain several
// memory regions, including private and writable ones: page-table copying
// is postponed from fork time to the first modification, and avoided
// entirely when the writable regions are never written.
//
// Unsharing (Figure 6) triggers on: (1) a write fault in the range of a
// shared PTP, (2) memory-region modification via mmap/munmap/mprotect,
// (3) allocation of a new region in the range of a shared PTP, (4)
// freeing of a region in that range, and (5) process termination, where
// the PTP is detached without copying.
package core

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/arch/armv7"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pagetable"
	"repro/internal/vm"
)

// Config selects the simulated kernel variant.
type Config struct {
	// SharePTP enables page-table-page sharing at fork (Section 3.1).
	SharePTP bool
	// ShareTLB enables global-bit + zygote-domain TLB entry sharing for
	// zygote-preloaded shared code (Section 3.2). Meaningful with or
	// without SharePTP; the paper evaluates it on top of SharePTP.
	ShareTLB bool
	// CopyPTEsAtFork makes fork copy the PTEs of zygote-preloaded
	// shared code from parent to child (the "Copied PTEs" kernel of
	// Table 4). Mutually exclusive with SharePTP.
	CopyPTEsAtFork bool
	// ShareStackPTPs also shares the stack's PTP at fork. The paper
	// deliberately does not: the stack is modified immediately after
	// the child is scheduled, so sharing it only buys an unshare.
	// Exposed as an ablation knob.
	ShareStackPTPs bool
	// CopyOnlyReferenced makes unshare copy only the PTEs whose
	// reference bit is set or that stock fork would have copied,
	// instead of every valid PTE (design alternative of Section 3.1.3).
	CopyOnlyReferenced bool
}

// Stock returns the stock Android kernel configuration.
func Stock() Config { return Config{} }

// CopiedPTEs returns the Table 4 comparison kernel that copies
// zygote-preloaded shared-code PTEs at fork.
func CopiedPTEs() Config { return Config{CopyPTEsAtFork: true} }

// SharedPTP returns the Shared PTP kernel.
func SharedPTP() Config { return Config{SharePTP: true} }

// SharedPTPTLB returns the Shared PTP & TLB kernel.
func SharedPTPTLB() Config { return Config{SharePTP: true, ShareTLB: true} }

// Name returns a short label for the configuration, matching the paper's
// figure legends.
func (c Config) Name() string {
	switch {
	case c.SharePTP && c.ShareTLB:
		return "Shared PTP & TLB"
	case c.SharePTP:
		return "Shared PTP"
	case c.CopyPTEsAtFork:
		return "Copied PTEs"
	default:
		return "Stock Android"
	}
}

// ForkCosts is the cycle cost model of the fork path, calibrated so that
// the stock zygote fork and its two variants land in the ratios of
// Table 4.
type ForkCosts struct {
	// Base covers duplicating the task structure, file table, signal
	// state and scheduler bookkeeping.
	Base int
	// PerVMA covers examining and duplicating one memory region.
	PerVMA int
	// PerPTECopy covers copying one PTE, including the write-protect
	// of the parent side and reference-count maintenance.
	PerPTECopy int
	// PerPTPAlloc covers allocating and zeroing one 4KB PTP.
	PerPTPAlloc int
	// PerPTPShare covers sharing one PTP: setting NEED_COPY, bumping
	// the sharer count and writing the child's level-1 entry.
	PerPTPShare int
	// PerPTEProtect covers write-protecting one PTE when a PTP is
	// first shared.
	PerPTEProtect int
}

// DefaultForkCosts returns the calibrated fork cost model.
func DefaultForkCosts() ForkCosts {
	return ForkCosts{
		Base:          1_150_000,
		PerVMA:        1_500,
		PerPTECopy:    330,
		PerPTPAlloc:   3_000,
		PerPTPShare:   400,
		PerPTEProtect: 25,
	}
}

// ForkStats records what one fork did, mirroring the rows of Table 4.
type ForkStats struct {
	// Cycles is the modeled execution time of the fork.
	Cycles uint64
	// PTPsAllocated counts new PTPs allocated for the child.
	PTPsAllocated int
	// PTPsShared counts parent PTPs the child attached to.
	PTPsShared int
	// PTEsCopied counts PTEs copied into the child.
	PTEsCopied int
	// PTEsWriteProtected counts PTEs write-protected to prepare PTPs
	// for their first share.
	PTEsWriteProtected int
}

// Counters are the kernel-global software counters the paper adds.
type Counters struct {
	Forks               uint64
	PTEsCopiedAtFork    uint64
	PTPsSharedAtFork    uint64
	UnshareOps          uint64
	PTEsCopiedOnUnshare uint64
	WriteProtectedPTEs  uint64
	DomainFaults        uint64
	// TLBShootdowns counts remote-core TLB invalidations (IPIs) the
	// kernel issued when changing translations on an SMP.
	TLBShootdowns uint64
}

// Process is one simulated process.
type Process struct {
	// PID is the process identifier.
	PID int
	// Name is the command name.
	Name string
	// MM is the address space.
	MM *vm.MM
	// Ctx is the hardware context (page table base, ASID, DACR).
	Ctx *cpu.Context
	// IsZygote marks the zygote itself (set by exec when the zygote is
	// started; here by the android package).
	IsZygote bool
	// IsZygoteChild marks processes forked from the zygote.
	IsZygoteChild bool
	// ForkStats describes the fork that created this process.
	ForkStats ForkStats
	// PTEsCopied accumulates all PTE copies performed on behalf of the
	// process: its fork-time copies plus every unshare copy.
	PTEsCopied uint64

	kernel *Kernel
	alive  bool
}

// ZygoteLike reports whether the process is the zygote or one of its
// children — the set of processes allowed to use shared TLB entries.
func (p *Process) ZygoteLike() bool { return p.IsZygote || p.IsZygoteChild }

// Alive reports whether the process has not exited.
func (p *Process) Alive() bool { return p.alive }

// Kernel is the simulated operating system kernel: it owns physical
// memory, the process table, and the single simulated core.
type Kernel struct {
	// Phys is physical memory.
	Phys *mem.PhysMem
	// CPU is the simulated core; the kernel installs itself as its
	// page-fault handler.
	CPU *cpu.CPU
	// Config selects the kernel variant.
	Config Config
	// ForkCosts is the fork cost model.
	ForkCosts ForkCosts
	// Counters accumulates kernel-global statistics.
	Counters Counters

	// IPICost is the cycle cost of one inter-processor interrupt used
	// for a TLB shootdown, charged to the initiating core per remote.
	IPICost int

	mmu          arch.MMU
	geo          arch.Geometry
	tag          arch.Tagging
	prot         arch.Protection
	asidMax      arch.ASID
	bus          *obs.Bus
	l2           *cache.Cache
	cpus         []*cpu.CPU
	curCPU       *cpu.CPU
	procs        map[int]*Process
	nextPID      int
	nextASID     arch.ASID
	kernelTextPA arch.PhysAddr
}

// Arch returns the MMU architecture the kernel was booted for.
func (k *Kernel) Arch() arch.MMU { return k.mmu }

// Geometry returns the page-table geometry of the kernel's architecture.
func (k *Kernel) Geometry() arch.Geometry { return k.geo }

// Option configures a kernel built by New.
type Option func(*options)

type options struct {
	cfg   Config
	ncpus int
	mmu   arch.MMU
}

// WithConfig selects the kernel variant (default: Stock).
func WithConfig(cfg Config) Option {
	return func(o *options) { o.cfg = cfg }
}

// WithArch selects the MMU architecture the kernel manages (default:
// armv7). The architecture fixes the page-table geometry, the TLB
// large-page granularity, the ASID width, and the protection model the
// TLB-sharing kernel leans on: with ARM domains, shared global entries
// are access-controlled per process via the DACR; without them (Sv39),
// the kernel must flush global entries when switching to a process
// outside the sharing set.
func WithArch(m arch.MMU) Option {
	return func(o *options) { o.mmu = m }
}

// WithCPUs sets the number of simulated cores (default: 1). Each core
// gets private TLBs and L1 caches over one shared L2, as on the Tegra 3;
// with more than one core, translation changes (unsharing, munmap,
// mprotect, COW write-protection at fork) invalidate remote TLBs via
// shootdown IPIs.
func WithCPUs(n int) Option {
	return func(o *options) { o.ncpus = n }
}

// New boots a kernel over the given amount of physical memory. With no
// options it is a single-core stock kernel; see WithConfig and WithCPUs.
func New(frames int, opts ...Option) (*Kernel, error) {
	o := options{cfg: Stock(), ncpus: 1, mmu: armv7.MMU()}
	for _, opt := range opts {
		opt(&o)
	}
	cfg := o.cfg
	if o.mmu == nil {
		return nil, fmt.Errorf("core: WithArch(nil)")
	}
	if cfg.SharePTP && cfg.CopyPTEsAtFork {
		return nil, fmt.Errorf("core: SharePTP and CopyPTEsAtFork are mutually exclusive")
	}
	if o.ncpus < 1 {
		return nil, fmt.Errorf("core: need at least one CPU, got %d", o.ncpus)
	}
	phys := mem.New(frames)
	k := &Kernel{
		Phys:      phys,
		Config:    cfg,
		ForkCosts: DefaultForkCosts(),
		IPICost:   2000,
		mmu:       o.mmu,
		geo:       o.mmu.Geometry(),
		tag:       o.mmu.Tagging(),
		prot:      o.mmu.Protection(),
		bus:       obs.NewBus(),
		procs:     make(map[int]*Process),
		nextPID:   1,
		nextASID:  1,
	}
	k.asidMax = k.tag.MaxASID()
	// Reserve a kernel-text window whose fetches all processes share.
	f, err := phys.Alloc(mem.FrameKernel)
	if err != nil {
		return nil, err
	}
	k.kernelTextPA = arch.FrameAddr(f)
	for i := 0; i < 63; i++ { // 256KB of kernel text
		if _, err := phys.Alloc(mem.FrameKernel); err != nil {
			return nil, err
		}
	}
	k.l2 = cache.DefaultL2()
	k.l2.AttachBus(k.bus)
	for i := 0; i < o.ncpus; i++ {
		c := cpu.NewWithCaches(k, cache.HierarchyWithL2(k.l2), k.geo)
		c.KeepGlobalOnFlush = cfg.ShareTLB
		c.AttachBus(k.bus)
		k.cpus = append(k.cpus, c)
	}
	k.CPU = k.cpus[0]
	k.curCPU = k.cpus[0]
	return k, nil
}

// NumCPUs returns the number of simulated cores.
func (k *Kernel) NumCPUs() int { return len(k.cpus) }

// CPUAt returns core i.
func (k *Kernel) CPUAt(i int) *cpu.CPU { return k.cpus[i] }

// shootdown accounts one remote-core TLB invalidation IPI targeting core i.
func (k *Kernel) shootdown(i int) {
	k.Counters.TLBShootdowns++
	k.curCPU.ChargeKernel(k.IPICost)
	if k.bus.Wants(obs.EvTLBShootdown) {
		k.bus.Publish(obs.Event{Kind: obs.EvTLBShootdown, Source: "kernel", Value: uint64(i)})
	}
}

// flushASIDAll removes asid's translations from every core: the local
// flush plus one shootdown IPI per remote core.
func (k *Kernel) flushASIDAll(asid arch.ASID) {
	for i, c := range k.cpus {
		c.Main.FlushASID(asid)
		c.MicroI.FlushAll()
		c.MicroD.FlushAll()
		if c != k.curCPU {
			k.shootdown(i)
		}
	}
}

// flushRangeAll removes a range's translations from every core.
func (k *Kernel) flushRangeAll(start, end arch.VirtAddr, asid arch.ASID) {
	for i, c := range k.cpus {
		c.Main.FlushRange(start, end, asid)
		c.MicroI.FlushRange(start, end, asid)
		c.MicroD.FlushRange(start, end, asid)
		if c != k.curCPU {
			k.shootdown(i)
		}
	}
}

// Processes returns the live process table, ordered by PID so callers
// observe the same sequence on every run.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		if p.alive {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

func (k *Kernel) allocASID() arch.ASID {
	a := k.nextASID
	if k.nextASID == k.asidMax { // wrap: flush everything everywhere, restart at 1
		k.nextASID = 1
		for _, c := range k.cpus {
			c.Main.FlushAll()
		}
	} else {
		k.nextASID++
	}
	return a
}

// domainFor returns the protection domain recorded in the page-table
// slots of a process's user mappings. Under TLB sharing on an
// architecture with domain registers, zygote-like processes place their
// user space in the shared domain so that leaf PTEs (and hence TLB
// entries) inherit it; everyone else stays in the user domain. Without
// domains every process uses the architecture's single domain.
func (k *Kernel) domainFor(p *Process) uint8 {
	if k.prot.HasDomains && k.Config.ShareTLB && p.ZygoteLike() {
		return k.prot.SharedDomain
	}
	return k.prot.UserDomain
}

func (k *Kernel) dacrFor(p *Process) arch.DACR {
	if k.prot.HasDomains && k.Config.ShareTLB && p.ZygoteLike() {
		return k.prot.ZygoteDACR
	}
	return k.prot.StockDACR
}

// refreshProtection recomputes the protection state the context loads on
// switch-in: the DACR, and — on architectures without domain registers —
// whether switching this process in must flush shared global TLB
// entries. Domains let an outsider keep the zygote set's global entries
// resident (the DACR denies it access); without them the kernel flushes
// globals when an outsider is switched in.
func (k *Kernel) refreshProtection(p *Process) {
	p.Ctx.DACR = k.dacrFor(p)
	p.Ctx.FlushGlobals = !k.prot.HasDomains && k.Config.ShareTLB && !p.ZygoteLike()
}

// NewProcess creates a root process (init-like) with an empty address
// space. Most processes should instead be created with Fork.
func (k *Kernel) NewProcess(name string) (*Process, error) {
	asid := k.allocASID()
	mm, err := vm.NewMM(k.Phys, asid, k.geo)
	if err != nil {
		return nil, fmt.Errorf("core: creating %q: %w", name, err)
	}
	p := &Process{
		PID:    k.nextPID,
		Name:   name,
		MM:     mm,
		kernel: k,
		alive:  true,
	}
	k.nextPID++
	p.Ctx = &cpu.Context{
		ID:           p.PID,
		Name:         name,
		PT:           mm.PT,
		ASID:         asid,
		KernelTextPA: k.kernelTextPA,
	}
	k.refreshProtection(p)
	k.procs[p.PID] = p
	return p, nil
}

// SetZygote marks p as the zygote (the exec-time zygote flag of Section
// 3.2.2) and refreshes its domain access rights.
func (k *Kernel) SetZygote(p *Process) {
	p.IsZygote = true
	k.refreshProtection(p)
}

// Run switches core 0 to p and executes fn as user code of p.
func (k *Kernel) Run(p *Process, fn func() error) error {
	return k.RunOn(0, p, fn)
}

// RunOn switches core i to p and executes fn as user code of p.
func (k *Kernel) RunOn(i int, p *Process, fn func() error) error {
	if !p.alive {
		return fmt.Errorf("core: running dead process %d %q", p.PID, p.Name)
	}
	prev := k.curCPU
	k.curCPU = k.cpus[i]
	defer func() { k.curCPU = prev }()
	k.curCPU.ContextSwitch(p.Ctx)
	return fn()
}

// Mmap creates a memory region in p's address space. Creating a region
// within the range of a shared PTP is unshare trigger (3): the new PTEs
// must not become visible to the other sharers.
func (k *Kernel) Mmap(p *Process, v *vm.VMA) error {
	if k.Config.SharePTP {
		if err := k.unshareRange(p, v.Start, v.End); err != nil {
			return err
		}
	}
	// The zygote flag check of Section 3.2.2: code segments of shared
	// libraries mapped by the zygote are marked global, and the mark is
	// inherited by all zygote children through fork.
	if p.IsZygote && v.File != nil && v.Prot&vm.ProtExec != 0 {
		v.Flags |= vm.VMAGlobal
	}
	if err := p.MM.Insert(v); err != nil {
		return fmt.Errorf("core: mmap in %q: %w", p.Name, err)
	}
	return nil
}

// MapLargePages creates a read-only or read-exec file-backed region and
// eagerly establishes large-page mappings over it, in the manner of
// hugetlbfs (Linux does not demand-page large pages). The region bounds
// must be aligned to the architecture's large-page size — 64KB on ARMv7,
// 2MB on Sv39. Section 2.3.3 shows this trades physical memory (every
// 4KB subpage of a touched chunk becomes resident) for translation
// reach; and because large-page mappings are ordinary leaf entries, the
// resulting PTPs are shared at fork exactly like 4KB ones — the
// complementarity the paper points out.
func (k *Kernel) MapLargePages(p *Process, v *vm.VMA) error {
	large := k.geo.LargePageSize()
	if v.File == nil {
		return fmt.Errorf("core: large-page mapping of %q needs a backing file", v.Name)
	}
	if v.Prot&vm.ProtWrite != 0 {
		return fmt.Errorf("core: large-page region %q must be read-only (no COW for large pages)", v.Name)
	}
	if v.Start&(large-1) != 0 || v.End&(large-1) != 0 ||
		arch.VirtAddr(v.FileOff)&(large-1) != 0 {
		return fmt.Errorf("core: large-page region %q not %dKB aligned", v.Name, large/1024)
	}
	if err := k.Mmap(p, v); err != nil {
		return err
	}
	flags := vm.ProtFlags(v.Prot)
	if k.Config.ShareTLB && p.ZygoteLike() && v.Flags&vm.VMAGlobal != 0 {
		flags |= arch.PTEGlobal
	}
	for va := v.Start; va < v.End; va += large {
		chunk := (v.FileOff + int(va-v.Start)) / int(large)
		base, err := v.File.LargeFrame(chunk, k.geo.PagesPerLarge())
		if err != nil {
			return fmt.Errorf("core: mapping %q large: %w", v.Name, err)
		}
		if _, err := p.MM.PT.EnsureLeafForVA(va, k.domainFor(p)); err != nil {
			return err
		}
		p.MM.PT.SetLarge(va, base, flags, arch.SoftFile|arch.SoftAccessed)
	}
	return nil
}

// Munmap removes [start, end) from p's address space: unshare trigger
// (4). Affected shared PTPs are first unshared in p, then the PTEs of the
// removed range are cleared and the TLB range flushed.
func (k *Kernel) Munmap(p *Process, start, end arch.VirtAddr) error {
	if k.Config.SharePTP {
		if err := k.unshareRange(p, start, end); err != nil {
			return err
		}
	}
	removed := p.MM.RemoveRange(start, end)
	for _, r := range removed {
		for va := r.Start; va < r.End; va += arch.PageSize {
			p.MM.PT.Clear(va)
		}
	}
	k.flushRangeAll(start, end, p.Ctx.ASID)
	return nil
}

// Mprotect changes the protection of [start, end): unshare trigger (2).
func (k *Kernel) Mprotect(p *Process, start, end arch.VirtAddr, prot vm.Prot) error {
	if k.Config.SharePTP {
		if err := k.unshareRange(p, start, end); err != nil {
			return err
		}
	}
	affected := p.MM.VMAsInRange(start, end)
	if len(affected) == 0 {
		return fmt.Errorf("core: mprotect %#x-%#x in %q: no regions", start, end, p.Name)
	}
	// Split regions at the boundaries, then re-insert with the new
	// protection.
	removed := p.MM.RemoveRange(start, end)
	for _, r := range removed {
		nv := *r
		nv.Prot = prot
		if err := p.MM.Insert(&nv); err != nil {
			return err
		}
		for va := nv.Start; va < nv.End; va += arch.PageSize {
			pte := p.MM.PT.PTEAt(va)
			if pte == nil || !pte.Valid() {
				continue
			}
			flags := vm.ProtFlags(prot)
			// Revoking write is always safe; granting it must respect
			// pending COW.
			if pte.Soft&arch.SoftCOW != 0 {
				flags &^= arch.PTEWrite
			}
			// In-place flag edit: privatize the table first so a
			// checkpoint image sharing the PTE array stays intact.
			pte = p.MM.PT.PTEForWrite(va)
			pte.Flags = flags | (pte.Flags & arch.PTEGlobal)
		}
	}
	k.flushRangeAll(start, end, p.Ctx.ASID)
	return nil
}

// slotSharable reports whether the PTP at slot idx of parent may be
// shared with a child: every memory region overlapping the slot's span
// (1MB on ARMv7, 2MB on Sv39) must be sharable. Following the paper's
// aggressive design choice, private and writable regions are sharable;
// only the stack is excluded (unless the ablation knob says otherwise).
func (k *Kernel) slotSharable(parent *Process, idx int) bool {
	lo := k.geo.SlotBase(idx)
	hi := lo + k.geo.SlotSpan() - 1
	vmas := parent.MM.VMAsInRange(lo, hi)
	if len(vmas) == 0 {
		return false
	}
	for _, v := range vmas {
		if v.Flags&vm.VMAStack != 0 && !k.Config.ShareStackPTPs {
			return false
		}
	}
	return true
}

// Fork creates a child of parent. Under SharePTP, sharable PTPs are
// attached to the child copy-on-write; everything else follows the stock
// policy (copy anonymous PTEs, skip file-backed ones). The modeled cycle
// cost and the Table 4 statistics are recorded in the child's ForkStats.
func (k *Kernel) Fork(parent *Process, name string) (*Process, error) {
	child, err := k.NewProcess(name)
	if err != nil {
		return nil, err
	}
	if parent.IsZygote || parent.IsZygoteChild {
		child.IsZygoteChild = true
		k.refreshProtection(child)
	}
	k.Counters.Forks++

	cycles := uint64(k.ForkCosts.Base)
	var fs ForkStats
	childDomain := k.domainFor(child)

	// Duplicate the region list.
	for _, v := range parent.MM.VMAs() {
		nv := *v
		if err := child.MM.Insert(&nv); err != nil {
			return nil, fmt.Errorf("core: fork %q: %w", name, err)
		}
		cycles += uint64(k.ForkCosts.PerVMA)
	}

	ptpsBefore := child.MM.PT.Stats().PTPsAllocated

	if k.Config.SharePTP {
		numSlots := k.geo.NumSlots()
		for idx := 0; idx < numSlots; idx++ {
			pl1 := parent.MM.PT.Slot(idx)
			if !pl1.Valid() {
				continue
			}
			if k.slotSharable(parent, idx) {
				if !pl1.NeedCopy {
					// First share: write-protect every writable PTE so
					// the PTP can be managed copy-on-write, then mark it.
					n := parent.MM.PT.WriteProtectTable(idx)
					pl1.NeedCopy = true
					fs.PTEsWriteProtected += n
					k.Counters.WriteProtectedPTEs += uint64(n)
					cycles += uint64(n * k.ForkCosts.PerPTEProtect)
				}
				child.MM.PT.AttachShared(idx, pl1.Table, pl1.Domain)
				fs.PTPsShared++
				k.Counters.PTPsSharedAtFork++
				cycles += uint64(k.ForkCosts.PerPTPShare)
				if k.bus.Wants(obs.EvPTPShare) {
					k.bus.Publish(obs.Event{
						Kind:   obs.EvPTPShare,
						Source: "kernel",
						PID:    child.PID,
						Addr:   uint64(k.geo.SlotBase(idx)),
					})
				}
				continue
			}
			// Not sharable (stack): stock copy of the slot's regions.
			lo := k.geo.SlotBase(idx)
			var hi arch.VirtAddr
			if idx == numSlots-1 {
				hi = ^arch.VirtAddr(0)
			} else {
				hi = lo + k.geo.SlotSpan()
			}
			for _, v := range parent.MM.VMAsInRange(lo, hi) {
				n, err := vm.CopyPTERange(parent.MM, child.MM, v, lo, hi, vm.CopyStock, childDomain)
				if err != nil {
					return nil, fmt.Errorf("core: fork %q: %w", name, err)
				}
				fs.PTEsCopied += n
				cycles += uint64(n * k.ForkCosts.PerPTECopy)
			}
		}
	} else {
		for _, v := range parent.MM.VMAs() {
			// Stock policy: copy what faults cannot reconstruct (anonymous
			// and dirty pages); the Copied PTEs kernel additionally copies
			// every populated PTE of zygote-preloaded shared code.
			mode := vm.CopyStock
			if k.Config.CopyPTEsAtFork && v.Category.IsZygotePreloaded() {
				mode = vm.CopyAll
			}
			n, err := vm.CopyPTERange(parent.MM, child.MM, v, v.Start, v.End, mode, childDomain)
			if err != nil {
				return nil, fmt.Errorf("core: fork %q: %w", name, err)
			}
			fs.PTEsCopied += n
			cycles += uint64(n * k.ForkCosts.PerPTECopy)
		}
	}

	fs.PTPsAllocated = int(child.MM.PT.Stats().PTPsAllocated - ptpsBefore)
	cycles += uint64(fs.PTPsAllocated * k.ForkCosts.PerPTPAlloc)
	fs.Cycles = cycles
	child.ForkStats = fs
	child.PTEsCopied += uint64(fs.PTEsCopied)
	k.Counters.PTEsCopiedAtFork += uint64(fs.PTEsCopied)

	// The parent's writable translations were write-protected (COW), so
	// its stale TLB entries must go — on every core.
	k.flushASIDAll(parent.Ctx.ASID)

	// Charge the fork to whoever is running (the parent, typically).
	if k.curCPU.Current() != nil {
		k.curCPU.ChargeKernel(int(cycles))
	}
	if k.bus.Wants(obs.EvFork) {
		k.bus.Publish(obs.Event{Kind: obs.EvFork, Source: "kernel", PID: child.PID, Value: cycles})
	}
	return child, nil
}

// unshareSlot performs the Figure 6 procedure on one slot of p and
// updates counters and TLB state.
func (k *Kernel) unshareSlot(p *Process, idx int) error {
	l1 := p.MM.PT.Slot(idx)
	if !l1.Valid() || !l1.NeedCopy {
		return nil
	}
	var keep func(pagetable.PTE) bool
	if k.Config.CopyOnlyReferenced {
		// Copy only what stock fork would have copied: anything page
		// faults cannot reconstruct. Clean file-backed PTEs are dropped
		// and simply soft-fault again on the next access. (The paper's
		// variant also keeps PTEs with the reference bit set; the
		// simulator marks every populated PTE referenced, so the
		// reconstructibility test is the meaningful half here.)
		keep = func(pte pagetable.PTE) bool {
			return pte.Soft&arch.SoftFile == 0 || pte.Soft&arch.SoftDirty != 0
		}
	}
	replaced := p.MM.PT.SharerCount(idx) > 1
	copied, err := p.MM.PT.UnsharePTPFunc(idx, keep)
	if err != nil {
		return fmt.Errorf("core: unshare slot %d in %q: %w", idx, p.Name, err)
	}
	k.Counters.UnshareOps++
	k.Counters.PTEsCopiedOnUnshare += uint64(copied)
	p.PTEsCopied += uint64(copied)
	slotBase := uint64(k.geo.SlotBase(idx))
	if k.bus.Wants(obs.EvUnshare) {
		k.bus.Publish(obs.Event{
			Kind:   obs.EvUnshare,
			Source: "kernel",
			PID:    p.PID,
			Addr:   slotBase,
			Value:  uint64(copied),
		})
	}
	if replaced {
		if k.bus.Wants(obs.EvPTPCopy) {
			k.bus.Publish(obs.Event{
				Kind:   obs.EvPTPCopy,
				Source: "kernel",
				PID:    p.PID,
				Addr:   slotBase,
				Value:  uint64(copied),
			})
		}
		// Figure 6: clear the level-1 entry and flush the TLB entries
		// occupied by the current process — on every core it may have
		// run on — before installing the copy.
		k.flushASIDAll(p.Ctx.ASID)
		if k.curCPU.Current() == p.Ctx {
			k.curCPU.ChargeKernel(k.ForkCosts.PerPTPAlloc + copied*k.ForkCosts.PerPTECopy)
		}
	}
	return nil
}

// unshareRange unshares every shared PTP overlapping [start, end); a
// range spanning multiple PTPs may require several unshare operations.
func (k *Kernel) unshareRange(p *Process, start, end arch.VirtAddr) error {
	for idx := k.geo.Slot(start); idx <= k.geo.Slot(end-1); idx++ {
		if err := k.unshareSlot(p, idx); err != nil {
			return err
		}
	}
	return nil
}

// HandlePageFault implements cpu.FaultHandler: the kernel's page-fault
// path. A write fault in the range of a shared PTP is unshare trigger
// (1); a read fault whose translation lands in a shared PTP populates the
// shared PTP itself, making the PTE visible to all sharers.
func (k *Kernel) HandlePageFault(ctx *cpu.Context, va arch.VirtAddr, kind arch.AccessKind) error {
	p, ok := k.procs[ctx.ID]
	if !ok || !p.alive {
		return fmt.Errorf("core: fault in unknown process %d", ctx.ID)
	}
	vma := p.MM.FindVMA(va)
	if vma == nil {
		return fmt.Errorf("core: segmentation fault at %#x in %q", va, p.Name)
	}
	if k.bus.Wants(obs.EvPageFault) {
		k.bus.Publish(obs.Event{
			Kind:   obs.EvPageFault,
			Source: "kernel",
			PID:    p.PID,
			Addr:   uint64(va),
			Access: uint8(kind),
		})
	}

	idx := k.geo.Slot(va)
	l1 := p.MM.PT.Slot(idx)
	shared := l1.Valid() && l1.NeedCopy

	var existing pagetable.PTE
	if pte := p.MM.PT.PTEAt(va); pte != nil {
		existing = *pte
	}
	newPTE, err := p.MM.ResolvePTE(vma, va, kind, existing)
	if err != nil {
		return err
	}
	k.decoratePTE(p, vma, &newPTE)

	if shared {
		if kind != arch.AccessWrite && !newPTE.Writable() && !existing.Valid() {
			// Populate the shared PTP: the new PTE is immediately
			// visible to all sharers, eliminating their soft faults.
			p.MM.PT.SetShared(va, newPTE)
			return nil
		}
		// Write access (or a writable translation): unshare first, then
		// install privately, as in the stock kernel.
		if err := k.unshareSlot(p, idx); err != nil {
			return err
		}
	}
	if _, err := p.MM.PT.EnsureLeaf(idx, k.domainFor(p)); err != nil {
		return err
	}
	p.MM.PT.Set(va, newPTE)
	return nil
}

// decoratePTE applies the TLB-sharing policy to a freshly computed PTE:
// pages of global regions faulted by zygote-like processes get the global
// bit, so the TLB entry loaded by the next walk is shared by all
// zygote-like processes.
func (k *Kernel) decoratePTE(p *Process, vma *vm.VMA, pte *pagetable.PTE) {
	if k.Config.ShareTLB && p.ZygoteLike() && vma.Flags&vm.VMAGlobal != 0 && !pte.Writable() {
		pte.Flags |= arch.PTEGlobal
	}
}

// Exit terminates p, releasing its address space. Shared PTPs are
// detached without copying — unshare case (5): the level-1 entry is
// cleared and the sharer count decremented, and only a sole owner frees
// the PTP.
func (k *Kernel) Exit(p *Process) {
	if !p.alive {
		return
	}
	p.alive = false
	p.MM.PT.ReleaseAll()
	k.flushASIDAll(p.Ctx.ASID)
	delete(k.procs, p.PID)
}

// SharedPTPStats summarizes PTP sharing across all live processes for
// Figure 12: how many PTPs exist, and how many of them are shared.
type SharedPTPStats struct {
	// TotalPTPs is the number of live page-table slots across processes
	// (each referencing one PTP; a PTP shared by n processes counts n
	// times, matching the per-process accounting of the paper).
	TotalPTPs int
	// SharedPTPs is how many of those references are to NEED_COPY
	// (shared) PTPs.
	SharedPTPs int
	// DistinctPTPs is the number of distinct PTP frames.
	DistinctPTPs int
}

// SharingStats scans the live process table.
func (k *Kernel) SharingStats() SharedPTPStats {
	var s SharedPTPStats
	seen := make(map[arch.FrameNum]bool)
	for _, p := range k.procs {
		if !p.alive {
			continue
		}
		for idx := 0; idx < k.geo.NumSlots(); idx++ {
			l1 := p.MM.PT.Slot(idx)
			if !l1.Valid() {
				continue
			}
			s.TotalPTPs++
			if l1.NeedCopy {
				s.SharedPTPs++
			}
			if !seen[l1.Table.Frame] {
				seen[l1.Table.Frame] = true
				s.DistinctPTPs++
			}
		}
	}
	return s
}
