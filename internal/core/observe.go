package core

import (
	"fmt"

	"repro/internal/obs"
)

// Compile-time check: the kernel is an obs.Source.
var _ obs.Source = (*Kernel)(nil)

// Bus returns the kernel's event bus: every component of the simulated
// system (the kernel itself, each core's TLBs, the caches) publishes its
// events here. Most callers should use Subscribe instead.
func (k *Kernel) Bus() *obs.Bus { return k.bus }

// Subscribe registers o for the given event kinds (all kinds when none
// are given) and returns a cancel function. Any number of observers may
// subscribe, and they are dispatched in subscription order.
func (k *Kernel) Subscribe(o obs.Observer, kinds ...obs.Kind) (cancel func()) {
	return k.bus.Subscribe(o, kinds...)
}

// Name implements obs.Source.
func (k *Kernel) Name() string { return "kernel" }

// Snapshot implements obs.Source.
func (k *Kernel) Snapshot() map[string]uint64 {
	c := k.Counters
	return map[string]uint64{
		"forks":                  c.Forks,
		"ptes_copied_at_fork":    c.PTEsCopiedAtFork,
		"ptps_shared_at_fork":    c.PTPsSharedAtFork,
		"unshare_ops":            c.UnshareOps,
		"ptes_copied_on_unshare": c.PTEsCopiedOnUnshare,
		"write_protected_ptes":   c.WriteProtectedPTEs,
		"domain_faults":          c.DomainFaults,
		"tlb_shootdowns":         c.TLBShootdowns,
	}
}

// Reset implements obs.Source.
func (k *Kernel) Reset() { k.Counters = Counters{} }

// Sources returns every metric source of the simulated machine in a
// stable order: the kernel's own counters, then each core's TLBs and
// private L1 caches under a "cpuN." prefix, then the shared L2 once.
// Register them all in an obs.Registry to snapshot the whole system.
func (k *Kernel) Sources() []obs.Source {
	out := []obs.Source{k}
	for i, c := range k.cpus {
		prefix := fmt.Sprintf("cpu%d.", i)
		for _, s := range c.Sources() {
			out = append(out, obs.Prefix(prefix, s))
		}
	}
	out = append(out, k.l2)
	return out
}
