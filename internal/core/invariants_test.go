package core

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/vm"
)

// TestRandomWalkInvariants drives the shared-PTP kernel through a long
// random sequence of forks, reads, writes, mmaps, munmaps, mprotects and
// exits, checking global invariants after every step:
//
//  1. a NEED_COPY level-1 entry always references a PTP whose sharer
//     count is at least one;
//  2. no valid PTE inside a NEED_COPY PTP is writable (the COW guarantee);
//  3. the sharer count of every PTP equals the number of live address
//     spaces referencing its frame;
//  4. every process's view of an address it has read matches the frame
//     the backing object (page cache / COW chain) assigned to it.
func TestRandomWalkInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	k := boot(t, SharedPTP())

	parent := buildParent(t, k)
	procs := []*Process{parent}

	checkInvariants := func(step int) {
		t.Helper()
		// Count references to every PTP frame across live processes.
		refs := make(map[arch.FrameNum]int)
		for _, p := range procs {
			if !p.Alive() {
				continue
			}
			for idx := 0; idx < k.Geometry().NumSlots(); idx++ {
				l1 := p.MM.PT.Slot(idx)
				if !l1.Valid() {
					continue
				}
				refs[l1.Table.Frame]++
				if l1.NeedCopy {
					if got := k.Phys.MapCount(l1.Table.Frame); got < 1 {
						t.Fatalf("step %d: NEED_COPY PTP frame %d has sharer count %d",
							step, l1.Table.Frame, got)
					}
					for i := 0; i < l1.Table.Len(); i++ {
						pte := l1.Table.PTE(i)
						if pte.Valid() && pte.Writable() {
							t.Fatalf("step %d: writable PTE %d in shared PTP (slot %d of %q)",
								step, i, idx, p.Name)
						}
					}
				}
			}
		}
		for frame, want := range refs {
			if got := k.Phys.MapCount(frame); got != want {
				t.Fatalf("step %d: PTP frame %d sharer count %d, want %d",
					step, frame, got, want)
			}
		}
	}

	alive := func() []*Process {
		var out []*Process
		for _, p := range procs {
			if p.Alive() {
				out = append(out, p)
			}
		}
		return out
	}

	randomVA := func(r *rand.Rand) arch.VirtAddr {
		// Pick within the regions buildParent created.
		switch r.Intn(4) {
		case 0:
			return 0x00100000 + arch.VirtAddr(r.Intn(0x40))*arch.PageSize // code
		case 1:
			return 0x00140000 + arch.VirtAddr(r.Intn(0x40))*arch.PageSize // data
		case 2:
			return 0x00200000 + arch.VirtAddr(r.Intn(0x80))*arch.PageSize // heap
		default:
			return 0x7FF00000 + arch.VirtAddr(r.Intn(0x40))*arch.PageSize // stack
		}
	}

	const steps = 600
	for step := 0; step < steps; step++ {
		live := alive()
		if len(live) == 0 {
			t.Fatal("no live processes")
		}
		p := live[rng.Intn(len(live))]
		switch op := rng.Intn(10); {
		case op < 2 && len(live) < 12: // fork
			child, err := k.Fork(p, "walker")
			if err != nil {
				t.Fatalf("step %d fork: %v", step, err)
			}
			procs = append(procs, child)
		case op < 5: // read or fetch
			va := randomVA(rng)
			vma := p.MM.FindVMA(va)
			if vma == nil {
				break
			}
			kind := arch.AccessRead
			if vma.Prot&vm.ProtExec != 0 {
				kind = arch.AccessFetch
			}
			err := k.Run(p, func() error {
				if kind == arch.AccessFetch {
					return k.CPU.Fetch(va)
				}
				return k.CPU.Read(va)
			})
			if err != nil {
				t.Fatalf("step %d %s at %#x in %q: %v", step, kind, va, p.Name, err)
			}
		case op < 7: // write (only where permitted)
			va := randomVA(rng)
			vma := p.MM.FindVMA(va)
			if vma == nil || vma.Prot&vm.ProtWrite == 0 {
				break
			}
			if err := k.Run(p, func() error { return k.CPU.Write(va) }); err != nil {
				t.Fatalf("step %d write at %#x in %q: %v", step, va, p.Name, err)
			}
		case op < 8: // mmap a small anonymous region in a private area
			base := arch.VirtAddr(0x50000000) + arch.VirtAddr(step)*0x10000
			nv := &vm.VMA{Start: base, End: base + 4*arch.PageSize,
				Prot: vm.ProtRead | vm.ProtWrite, Flags: vm.VMAPrivate, Name: "walk-map"}
			if err := k.Mmap(p, nv); err != nil {
				t.Fatalf("step %d mmap: %v", step, err)
			}
			if err := k.Run(p, func() error { return k.CPU.Write(base) }); err != nil {
				t.Fatalf("step %d write new map: %v", step, err)
			}
		case op < 9:
			if rng.Intn(2) == 0 {
				// mprotect part of the lib data region.
				if p.MM.FindVMA(0x00150000) == nil {
					break
				}
				prot := vm.ProtRead
				if rng.Intn(2) == 0 {
					prot |= vm.ProtWrite
				}
				if err := k.Mprotect(p, 0x00150000, 0x00154000, prot); err != nil {
					t.Fatalf("step %d mprotect: %v", step, err)
				}
				break
			}
			// munmap one of the walk-maps, if the process has any.
			for _, v := range p.MM.VMAs() {
				if v.Name == "walk-map" {
					if err := k.Munmap(p, v.Start, v.End); err != nil {
						t.Fatalf("step %d munmap: %v", step, err)
					}
					break
				}
			}
		default: // exit (keep the original parent alive)
			if p != parent && len(live) > 1 {
				k.Exit(p)
			}
		}
		checkInvariants(step)
	}

	// Drain: exit everything; all PTP frames must be reclaimed.
	for _, p := range procs {
		if p.Alive() {
			k.Exit(p)
		}
	}
	// Only the kernel-text frames and data frames remain; no page-table
	// frames may leak.
	if got := k.Phys.InUseByKind(mem.FramePageTable); got != 0 {
		t.Errorf("leaked %d page-table frames after all exits", got)
	}
}
