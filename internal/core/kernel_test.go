package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/vm"
)

const testFrames = 4096

func boot(t *testing.T, cfg Config) *Kernel {
	t.Helper()
	k, err := New(testFrames, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// buildParent creates a zygote-like parent with a file-backed code region,
// a file-backed private data region, an anonymous heap, and a stack, then
// touches some pages of each.
func buildParent(t *testing.T, k *Kernel) *Process {
	t.Helper()
	p, err := k.NewProcess("zygote")
	if err != nil {
		t.Fatal(err)
	}
	k.SetZygote(p)
	lib := vm.NewFile(k.Phys, "libc.so", 0x80000)
	regions := []*vm.VMA{
		{Start: 0x00100000, End: 0x00140000, Prot: vm.ProtRead | vm.ProtExec,
			Flags: vm.VMAPrivate, File: lib, Name: "libc.so code", Category: vm.CatZygoteDynLib},
		{Start: 0x00140000, End: 0x00180000, Prot: vm.ProtRead | vm.ProtWrite,
			Flags: vm.VMAPrivate, File: lib, FileOff: 0x40000, Name: "libc.so data"},
		{Start: 0x00200000, End: 0x00280000, Prot: vm.ProtRead | vm.ProtWrite,
			Flags: vm.VMAPrivate, Name: "heap"},
		{Start: 0x7FF00000, End: 0x7FF40000, Prot: vm.ProtRead | vm.ProtWrite,
			Flags: vm.VMAPrivate | vm.VMAStack, Name: "stack"},
	}
	for _, v := range regions {
		if err := k.Mmap(p, v); err != nil {
			t.Fatal(err)
		}
	}
	err = k.Run(p, func() error {
		for va := arch.VirtAddr(0x00100000); va < 0x00110000; va += arch.PageSize {
			if err := k.CPU.Fetch(va); err != nil {
				return err
			}
		}
		for va := arch.VirtAddr(0x00200000); va < 0x00208000; va += arch.PageSize {
			if err := k.CPU.Write(va); err != nil {
				return err
			}
		}
		for va := arch.VirtAddr(0x7FF3C000); va < 0x7FF40000; va += arch.PageSize {
			if err := k.CPU.Write(va); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigNames(t *testing.T) {
	cases := map[string]Config{
		"Stock Android":    Stock(),
		"Copied PTEs":      CopiedPTEs(),
		"Shared PTP":       SharedPTP(),
		"Shared PTP & TLB": SharedPTPTLB(),
	}
	for want, cfg := range cases {
		if got := cfg.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := New(testFrames, WithConfig(Config{SharePTP: true, CopyPTEsAtFork: true})); err == nil {
		t.Fatal("SharePTP+CopyPTEsAtFork should be rejected")
	}
}

func TestStockForkCopiesAnonSkipsFile(t *testing.T) {
	k := boot(t, Stock())
	parent := buildParent(t, k)
	child, err := k.Fork(parent, "app")
	if err != nil {
		t.Fatal(err)
	}
	fs := child.ForkStats
	// Anonymous heap (8 pages) + stack (4 pages) copied; clean file pages skipped.
	if fs.PTEsCopied != 12 {
		t.Errorf("PTEsCopied = %d, want 12", fs.PTEsCopied)
	}
	if fs.PTPsShared != 0 {
		t.Errorf("PTPsShared = %d, want 0 under stock", fs.PTPsShared)
	}
	if fs.PTPsAllocated == 0 {
		t.Error("stock fork should allocate child PTPs for the copies")
	}
	// File-backed code pages are not in the child: soft faults refill them.
	if p := child.MM.PT.PTEAt(0x00100000); p != nil && p.Valid() {
		t.Error("clean file PTE should not be copied at stock fork")
	}
	// Anon pages are present, COW-protected, sharing frames with parent.
	cp := child.MM.PT.PTEAt(0x00200000)
	pp := parent.MM.PT.PTEAt(0x00200000)
	if cp == nil || !cp.Valid() || cp.Writable() {
		t.Fatalf("child anon PTE = %+v", cp)
	}
	if pp.Writable() {
		t.Error("parent anon PTE must be write-protected after fork")
	}
	if cp.Frame != pp.Frame {
		t.Error("COW pages must share frames")
	}
}

func TestCopiedPTEsForkCopiesSharedCode(t *testing.T) {
	k := boot(t, CopiedPTEs())
	parent := buildParent(t, k)
	child, err := k.Fork(parent, "app")
	if err != nil {
		t.Fatal(err)
	}
	// 16 code pages were populated in the parent and must now be copied
	// too: 12 (stock) + 16 = 28.
	if child.ForkStats.PTEsCopied != 28 {
		t.Errorf("PTEsCopied = %d, want 28", child.ForkStats.PTEsCopied)
	}
	if p := child.MM.PT.PTEAt(0x00100000); p == nil || !p.Valid() {
		t.Error("shared-code PTE should be copied by the Copied PTEs kernel")
	}
}

func TestSharedPTPFork(t *testing.T) {
	k := boot(t, SharedPTP())
	parent := buildParent(t, k)
	child, err := k.Fork(parent, "app")
	if err != nil {
		t.Fatal(err)
	}
	fs := child.ForkStats
	// Slots 0x001 (libc), 0x002 (heap) shared; stack slot 0x7FF copied.
	if fs.PTPsShared != 2 {
		t.Errorf("PTPsShared = %d, want 2", fs.PTPsShared)
	}
	if fs.PTEsCopied != 4 {
		t.Errorf("PTEsCopied = %d, want 4 (the stack pages)", fs.PTEsCopied)
	}
	if fs.PTPsAllocated != 1 {
		t.Errorf("PTPsAllocated = %d, want 1 (the stack PTP)", fs.PTPsAllocated)
	}
	if fs.PTEsWriteProtected == 0 {
		t.Error("first share must write-protect the writable PTEs")
	}
	// The child's shared slots carry NEED_COPY, and so do the parent's.
	if !child.MM.PT.Slot(1).NeedCopy || !parent.MM.PT.Slot(1).NeedCopy {
		t.Error("both sides must be NEED_COPY")
	}
	if got := child.MM.PT.SharerCount(1); got != 2 {
		t.Errorf("sharer count = %d, want 2", got)
	}
	// Shared fork must be much cheaper than stock fork of the same space.
	k2 := boot(t, Stock())
	p2 := buildParent(t, k2)
	c2, err := k2.Fork(p2, "app")
	if err != nil {
		t.Fatal(err)
	}
	if fs.Cycles >= c2.ForkStats.Cycles {
		t.Errorf("shared fork (%d cycles) should beat stock fork (%d cycles)",
			fs.Cycles, c2.ForkStats.Cycles)
	}
}

func TestSecondForkIsCheaper(t *testing.T) {
	k := boot(t, SharedPTP())
	parent := buildParent(t, k)
	c1, err := k.Fork(parent, "app1")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := k.Fork(parent, "app2")
	if err != nil {
		t.Fatal(err)
	}
	// The second fork finds NEED_COPY already set: no write-protect pass.
	if c2.ForkStats.PTEsWriteProtected != 0 {
		t.Errorf("second fork write-protected %d PTEs, want 0", c2.ForkStats.PTEsWriteProtected)
	}
	if c2.ForkStats.Cycles >= c1.ForkStats.Cycles {
		t.Errorf("second fork (%d) should be no more expensive than first (%d)",
			c2.ForkStats.Cycles, c1.ForkStats.Cycles)
	}
	if got := parent.MM.PT.SharerCount(1); got != 3 {
		t.Errorf("sharer count = %d, want 3", got)
	}
}

func TestSharedPTPReadFaultPopulatesForAllSharers(t *testing.T) {
	k := boot(t, SharedPTP())
	parent := buildParent(t, k)
	child1, _ := k.Fork(parent, "app1")
	child2, _ := k.Fork(parent, "app2")

	// child1 faults on a code page nobody has touched.
	va := arch.VirtAddr(0x00120000)
	if err := k.Run(child1, func() error { return k.CPU.Fetch(va) }); err != nil {
		t.Fatal(err)
	}
	if child1.MM.Counters.FileFaults != 1 {
		t.Errorf("child1 FileFaults = %d, want 1", child1.MM.Counters.FileFaults)
	}
	// child2 and the parent see the PTE without faulting.
	if err := k.Run(child2, func() error { return k.CPU.Fetch(va) }); err != nil {
		t.Fatal(err)
	}
	if child2.MM.Counters.FileFaults != 0 {
		t.Errorf("child2 FileFaults = %d, want 0 (PTE visible via shared PTP)", child2.MM.Counters.FileFaults)
	}
	if p := parent.MM.PT.PTEAt(va); p == nil || !p.Valid() {
		t.Error("parent must see the PTE populated by child1")
	}
}

func TestWriteFaultUnshares(t *testing.T) {
	k := boot(t, SharedPTP())
	parent := buildParent(t, k)
	child, _ := k.Fork(parent, "app")

	// Child writes its heap: write fault in a shared PTP triggers
	// unsharing, then normal COW handling.
	va := arch.VirtAddr(0x00200000)
	if err := k.Run(child, func() error { return k.CPU.Write(va) }); err != nil {
		t.Fatal(err)
	}
	if k.Counters.UnshareOps == 0 {
		t.Error("write fault in shared PTP must unshare")
	}
	if child.MM.PT.Slot(2).NeedCopy {
		t.Error("child's heap slot must be private after unshare")
	}
	if !parent.MM.PT.Slot(2).NeedCopy {
		t.Error("parent keeps its NEED_COPY marking until it writes")
	}
	// Child's write is private.
	cp := child.MM.PT.PTEAt(va)
	pp := parent.MM.PT.PTEAt(va)
	if cp.Frame == pp.Frame {
		t.Error("after COW the child must have its own frame")
	}
	if !cp.Writable() {
		t.Error("child PTE must be writable after COW")
	}
	// The code slot is still shared.
	if !child.MM.PT.Slot(1).NeedCopy {
		t.Error("untouched slots must remain shared")
	}
	if child.PTEsCopied == 0 {
		t.Error("unshare copies must be accounted to the process")
	}
}

func TestMmapUnshares(t *testing.T) {
	k := boot(t, SharedPTP())
	parent := buildParent(t, k)
	child, _ := k.Fork(parent, "app")
	// New region inside the heap slot's range (trigger 3): without
	// unsharing, its PTEs would leak to the other sharers.
	nv := &vm.VMA{Start: 0x00280000, End: 0x00290000, Prot: vm.ProtRead | vm.ProtWrite,
		Flags: vm.VMAPrivate, Name: "anon-map"}
	if err := k.Mmap(child, nv); err != nil {
		t.Fatal(err)
	}
	if child.MM.PT.Slot(2).NeedCopy {
		t.Error("mmap into a shared PTP's range must unshare it")
	}
	if err := k.Run(child, func() error { return k.CPU.Write(0x00280000) }); err != nil {
		t.Fatal(err)
	}
	// Parent must not see the new PTE.
	if p := parent.MM.PT.PTEAt(0x00280000); p != nil && p.Valid() {
		t.Error("new region's PTEs leaked to the parent")
	}
}

func TestMunmapUnshares(t *testing.T) {
	k := boot(t, SharedPTP())
	parent := buildParent(t, k)
	child, _ := k.Fork(parent, "app")
	if err := k.Munmap(child, 0x00100000, 0x00140000); err != nil {
		t.Fatal(err)
	}
	// Child's code slot is private and cleared; parent still sees its PTEs.
	if child.MM.PT.Slot(1).NeedCopy {
		t.Error("munmap must unshare the slot first")
	}
	if p := child.MM.PT.PTEAt(0x00100000); p != nil && p.Valid() {
		t.Error("unmapped PTE must be cleared")
	}
	if p := parent.MM.PT.PTEAt(0x00100000); p == nil || !p.Valid() {
		t.Error("parent's PTE must survive the child's munmap")
	}
	if child.MM.FindVMA(0x00100000) != nil {
		t.Error("region must be gone from the child")
	}
}

func TestMprotectUnshares(t *testing.T) {
	k := boot(t, SharedPTP())
	parent := buildParent(t, k)
	child, _ := k.Fork(parent, "app")
	if err := k.Mprotect(child, 0x00100000, 0x00140000, vm.ProtRead); err != nil {
		t.Fatal(err)
	}
	if child.MM.PT.Slot(1).NeedCopy {
		t.Error("mprotect must unshare the slot")
	}
	v := child.MM.FindVMA(0x00100000)
	if v == nil || v.Prot != vm.ProtRead {
		t.Errorf("child VMA prot = %v", v)
	}
	pv := parent.MM.FindVMA(0x00100000)
	if pv.Prot != vm.ProtRead|vm.ProtExec {
		t.Error("parent's protection must be untouched")
	}
	// Fetching the now non-exec page must fail in the child.
	if err := k.Run(child, func() error { return k.CPU.Fetch(0x00100000) }); err == nil {
		t.Error("fetch from PROT_READ region should fail")
	}
}

func TestExitDetachesWithoutCopy(t *testing.T) {
	k := boot(t, SharedPTP())
	parent := buildParent(t, k)
	child, _ := k.Fork(parent, "app")
	copiesBefore := k.Counters.PTEsCopiedOnUnshare
	ptpFramesBefore := k.Phys.InUseByKind(mem.FramePageTable)
	k.Exit(child)
	if k.Counters.PTEsCopiedOnUnshare != copiesBefore {
		t.Error("exit must not copy PTEs")
	}
	if child.Alive() {
		t.Error("child should be dead")
	}
	// The child's stack PTP and root table are freed; shared PTPs survive
	// with the parent.
	if got := k.Phys.InUseByKind(mem.FramePageTable); got >= ptpFramesBefore {
		t.Errorf("exit should free page-table frames: %d -> %d", ptpFramesBefore, got)
	}
	if got := parent.MM.PT.SharerCount(1); got != 1 {
		t.Errorf("parent sharer count = %d, want 1", got)
	}
	// Parent can still unshare trivially (sole sharer: clear NEED_COPY).
	if err := k.Run(parent, func() error { return k.CPU.Write(0x00150000) }); err != nil {
		t.Fatal(err)
	}
}

func TestTLBSharingGlobalBit(t *testing.T) {
	k := boot(t, SharedPTPTLB())
	parent := buildParent(t, k)
	// Parent's fetches created global PTEs (zygote + exec file mapping).
	pte := parent.MM.PT.PTEAt(0x00100000)
	if pte == nil || !pte.Global() {
		t.Fatalf("zygote code PTE should be global, got %+v", pte)
	}
	child, _ := k.Fork(parent, "app")
	// Child fetches the same page: the TLB entry loaded by the parent is
	// global, so no main-TLB miss and no fault.
	if err := k.Run(child, func() error { return k.CPU.Fetch(0x00100000) }); err != nil {
		t.Fatal(err)
	}
	if child.Ctx.Stats.ITLBMainMisses != 0 {
		t.Errorf("child should hit the parent's global TLB entry, got %d misses",
			child.Ctx.Stats.ITLBMainMisses)
	}
	if child.MM.Counters.PageFaults != 0 {
		t.Error("child should not fault on globally mapped code")
	}
}

func TestTLBSharingDeniedToNonZygote(t *testing.T) {
	k := boot(t, SharedPTPTLB())
	parent := buildParent(t, k)
	_ = parent
	daemon, err := k.NewProcess("daemon") // not forked from the zygote
	if err != nil {
		t.Fatal(err)
	}
	// Give the daemon its own mapping at the same address.
	f := vm.NewFile(k.Phys, "daemon-bin", 0x40000)
	if err := k.Mmap(daemon, &vm.VMA{Start: 0x00100000, End: 0x00140000,
		Prot: vm.ProtRead | vm.ProtExec, Flags: vm.VMAPrivate, File: f, Name: "bin"}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(daemon, func() error { return k.CPU.Fetch(0x00100000) }); err != nil {
		t.Fatal(err)
	}
	if daemon.Ctx.Stats.DomainFaults != 1 {
		t.Errorf("daemon DomainFaults = %d, want 1", daemon.Ctx.Stats.DomainFaults)
	}
	// The daemon ends with its own private, non-global translation.
	p := daemon.MM.PT.PTEAt(0x00100000)
	if p == nil || !p.Valid() || p.Global() {
		t.Errorf("daemon PTE = %+v, want valid non-global", p)
	}
	// And its page maps the daemon's file, not libc.
	zp := parent.MM.PT.PTEAt(0x00100000)
	if p.Frame == zp.Frame {
		t.Error("daemon must not inherit the zygote's translation")
	}
}

func TestStockHasNoGlobalBit(t *testing.T) {
	k := boot(t, SharedPTP()) // PTP sharing without TLB sharing
	parent := buildParent(t, k)
	if pte := parent.MM.PT.PTEAt(0x00100000); pte.Global() {
		t.Error("global bit must not be set without ShareTLB")
	}
}

func TestSharingStats(t *testing.T) {
	k := boot(t, SharedPTP())
	parent := buildParent(t, k)
	_, _ = k.Fork(parent, "app1")
	_, _ = k.Fork(parent, "app2")
	s := k.SharingStats()
	// Parent: 3 shared slots? No: slots 1 (libc), 2 (heap) shared; stack not.
	// Each of the 3 processes references the 2 shared PTPs -> 6 shared refs;
	// plus 3 stack references (parent's original + 2 copies).
	if s.SharedPTPs != 6 {
		t.Errorf("SharedPTPs = %d, want 6", s.SharedPTPs)
	}
	if s.TotalPTPs != 9 {
		t.Errorf("TotalPTPs = %d, want 9", s.TotalPTPs)
	}
	if s.DistinctPTPs != 5 {
		t.Errorf("DistinctPTPs = %d, want 5 (2 shared + 3 stacks)", s.DistinctPTPs)
	}
}

func TestCopyOnlyReferencedAblation(t *testing.T) {
	cfg := SharedPTP()
	cfg.CopyOnlyReferenced = true
	k := boot(t, cfg)
	parent := buildParent(t, k)
	child, _ := k.Fork(parent, "app")
	// Write to the lib data segment: unshare of the libc slot. With the
	// referenced-only policy, clean file-backed PTEs (the parent's 16
	// fetched code pages) are skipped: page faults can reconstruct them.
	if err := k.Run(child, func() error { return k.CPU.Write(0x00150000) }); err != nil {
		t.Fatal(err)
	}
	if got := k.Counters.PTEsCopiedOnUnshare; got != 0 {
		t.Errorf("PTEsCopiedOnUnshare = %d, want 0 (clean file PTEs dropped)", got)
	}
	// The dropped translations simply soft-fault again.
	faults := child.MM.Counters.FileFaults
	if err := k.Run(child, func() error { return k.CPU.Fetch(0x00100000) }); err != nil {
		t.Fatal(err)
	}
	if child.MM.Counters.FileFaults != faults+1 {
		t.Error("dropped PTE should refault on next access")
	}
	// Under the default full-copy policy the same write copies the code
	// PTEs along.
	k2 := boot(t, SharedPTP())
	parent2 := buildParent(t, k2)
	child2, _ := k2.Fork(parent2, "app")
	if err := k2.Run(child2, func() error { return k2.CPU.Write(0x00150000) }); err != nil {
		t.Fatal(err)
	}
	if got := k2.Counters.PTEsCopiedOnUnshare; got != 16 {
		t.Errorf("full-copy PTEsCopiedOnUnshare = %d, want 16", got)
	}
}

func TestForkCyclesScaleTable4(t *testing.T) {
	// The relationship of Table 4 must hold: shared < stock < copied.
	var cycles []uint64
	for _, cfg := range []Config{SharedPTP(), Stock(), CopiedPTEs()} {
		k := boot(t, cfg)
		parent := buildParent(t, k)
		child, err := k.Fork(parent, "app")
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, child.ForkStats.Cycles)
	}
	if !(cycles[0] < cycles[1] && cycles[1] < cycles[2]) {
		t.Errorf("fork cycles = shared %d, stock %d, copied %d; want strictly increasing",
			cycles[0], cycles[1], cycles[2])
	}
}

func TestRunDeadProcessFails(t *testing.T) {
	k := boot(t, Stock())
	p, _ := k.NewProcess("p")
	k.Exit(p)
	if err := k.Run(p, func() error { return nil }); err == nil {
		t.Error("running a dead process should fail")
	}
}

func TestShareStackAblation(t *testing.T) {
	cfg := SharedPTP()
	cfg.ShareStackPTPs = true
	k := boot(t, cfg)
	parent := buildParent(t, k)
	child, _ := k.Fork(parent, "app")
	if child.ForkStats.PTPsShared != 3 {
		t.Errorf("PTPsShared = %d, want 3 (stack shared too)", child.ForkStats.PTPsShared)
	}
	if child.ForkStats.PTPsAllocated != 0 {
		t.Errorf("PTPsAllocated = %d, want 0", child.ForkStats.PTPsAllocated)
	}
	// First stack write unshares immediately — sharing bought nothing.
	if err := k.Run(child, func() error { return k.CPU.Write(0x7FF3C000) }); err != nil {
		t.Fatal(err)
	}
	if child.MM.PT.Slot(0x7FF).NeedCopy {
		t.Error("stack slot should have been unshared on first write")
	}
}

func TestSMPShootdowns(t *testing.T) {
	k, err := New(testFrames, WithConfig(SharedPTP()), WithCPUs(4))
	if err != nil {
		t.Fatal(err)
	}
	if k.NumCPUs() != 4 {
		t.Fatalf("NumCPUs = %d", k.NumCPUs())
	}
	// The cores share one L2: a line fetched by core 0 hits for core 1.
	if k.CPUAt(0).Caches.L2 != k.CPUAt(1).Caches.L2 {
		t.Fatal("cores must share the L2")
	}
	if k.CPUAt(0).Caches.L1I == k.CPUAt(1).Caches.L1I {
		t.Fatal("cores must have private L1s")
	}

	parent := buildParentOn(t, k)
	child, err := k.Fork(parent, "app")
	if err != nil {
		t.Fatal(err)
	}
	// Fork write-protected the parent: its ASID is flushed on all four
	// cores, costing three shootdown IPIs.
	if k.Counters.TLBShootdowns != 3 {
		t.Errorf("fork shootdowns = %d, want 3", k.Counters.TLBShootdowns)
	}
	// Child runs on core 2; the parent's entries on core 0 are stale
	// after the child's unshare, which must broadcast.
	before := k.Counters.TLBShootdowns
	err = k.RunOn(2, child, func() error { return k.CPUAt(2).Write(0x00200000) })
	if err != nil {
		t.Fatal(err)
	}
	if k.Counters.TLBShootdowns != before+3 {
		t.Errorf("unshare shootdowns = %d, want %d", k.Counters.TLBShootdowns, before+3)
	}
}

// buildParentOn is buildParent for an existing kernel.
func buildParentOn(t *testing.T, k *Kernel) *Process {
	t.Helper()
	p, err := k.NewProcess("zygote")
	if err != nil {
		t.Fatal(err)
	}
	k.SetZygote(p)
	lib := vm.NewFile(k.Phys, "libc.so", 0x80000)
	regions := []*vm.VMA{
		{Start: 0x00100000, End: 0x00140000, Prot: vm.ProtRead | vm.ProtExec,
			Flags: vm.VMAPrivate, File: lib, Name: "libc.so code", Category: vm.CatZygoteDynLib},
		{Start: 0x00200000, End: 0x00280000, Prot: vm.ProtRead | vm.ProtWrite,
			Flags: vm.VMAPrivate, Name: "heap"},
		{Start: 0x7FF00000, End: 0x7FF40000, Prot: vm.ProtRead | vm.ProtWrite,
			Flags: vm.VMAPrivate | vm.VMAStack, Name: "stack"},
	}
	for _, v := range regions {
		if err := k.Mmap(p, v); err != nil {
			t.Fatal(err)
		}
	}
	err = k.Run(p, func() error {
		for va := arch.VirtAddr(0x00100000); va < 0x00108000; va += arch.PageSize {
			if err := k.CPU.Fetch(va); err != nil {
				return err
			}
		}
		return k.CPU.Write(0x00200000)
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSMPCrossCoreSharedPTE(t *testing.T) {
	// A PTE populated by a fault on core 0 serves the sibling on core 3
	// without a fault — the shared PTP is one structure, not per-core.
	k, err := New(testFrames, WithConfig(SharedPTP()), WithCPUs(4))
	if err != nil {
		t.Fatal(err)
	}
	parent := buildParentOn(t, k)
	c1, _ := k.Fork(parent, "app1")
	c2, _ := k.Fork(parent, "app2")
	if err := k.RunOn(0, c1, func() error { return k.CPUAt(0).Fetch(0x00120000) }); err != nil {
		t.Fatal(err)
	}
	if err := k.RunOn(3, c2, func() error { return k.CPUAt(3).Fetch(0x00120000) }); err != nil {
		t.Fatal(err)
	}
	if c2.MM.Counters.PageFaults != 0 {
		t.Errorf("core-3 sibling took %d faults, want 0", c2.MM.Counters.PageFaults)
	}
	// And its walk hit the L2 line core 0's walk loaded.
	if k.CPUAt(3).Caches.L2.Stats().Hits == 0 {
		t.Error("cross-core walk should hit the shared L2")
	}
}

func TestASIDWrapFlushes(t *testing.T) {
	// ASIDs are 8 bits; allocating past 255 wraps and must flush every
	// core's main TLB so recycled ASIDs cannot alias stale entries.
	k := boot(t, Stock())
	p, err := k.NewProcess("first")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Mmap(p, &vm.VMA{Start: 0x10000, End: 0x20000,
		Prot: vm.ProtRead | vm.ProtWrite, Flags: vm.VMAPrivate, Name: "heap"}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(p, func() error { return k.CPU.Write(0x10000) }); err != nil {
		t.Fatal(err)
	}
	if v, _ := k.CPU.Main.Occupancy(); v == 0 {
		t.Fatal("expected a resident TLB entry")
	}
	// Exhaust the ASID space.
	for i := 0; i < 256; i++ {
		q, err := k.NewProcess("filler")
		if err != nil {
			t.Fatal(err)
		}
		k.Exit(q)
	}
	if v, _ := k.CPU.Main.Occupancy(); v != 0 {
		t.Errorf("ASID wrap must flush the main TLB, %d entries survive", v)
	}
}

func TestMunmapSpanningMultiplePTPs(t *testing.T) {
	// Unsharing triggered by a system call "may be necessary to unshare
	// more than one PTP if the virtual address range spans multiple PTPs"
	// (Section 3.1.2).
	k := boot(t, SharedPTP())
	parent := buildParent(t, k)
	// Give the parent a second populated slot adjacent to libc's.
	f2 := vm.NewFile(k.Phys, "lib2.so", 0x100000)
	if err := k.Mmap(parent, &vm.VMA{Start: 0x00300000, End: 0x00400000,
		Prot: vm.ProtRead | vm.ProtExec, Flags: vm.VMAPrivate, File: f2,
		Name: "lib2.so code", Category: vm.CatZygoteDynLib}); err != nil {
		t.Fatal(err)
	}
	err := k.Run(parent, func() error {
		if err := k.CPU.Fetch(0x00300000); err != nil {
			return err
		}
		return k.CPU.Fetch(0x003F0000)
	})
	if err != nil {
		t.Fatal(err)
	}
	child, err := k.Fork(parent, "app")
	if err != nil {
		t.Fatal(err)
	}
	if !child.MM.PT.Slot(1).NeedCopy || !child.MM.PT.Slot(3).NeedCopy {
		t.Fatal("both slots should be shared")
	}
	unshares := k.Counters.UnshareOps
	// One munmap spanning slots 1 (libc data part) through 3 (lib2).
	if err := k.Munmap(child, 0x00140000, 0x00400000); err != nil {
		t.Fatal(err)
	}
	if got := k.Counters.UnshareOps - unshares; got < 2 {
		t.Errorf("spanning munmap performed %d unshares, want >= 2", got)
	}
	if child.MM.PT.Slot(1).NeedCopy || child.MM.PT.Slot(3).NeedCopy {
		t.Error("all spanned slots must be unshared")
	}
	// The parent's view of the unmapped range is intact.
	if p := parent.MM.PT.PTEAt(0x00300000); p == nil || !p.Valid() {
		t.Error("parent's lib2 PTE must survive")
	}
	// The child's libc code below the unmapped range still works.
	if err := k.Run(child, func() error { return k.CPU.Fetch(0x00100000) }); err != nil {
		t.Fatal(err)
	}
}

func TestSharedMappingWriteKeepsFrame(t *testing.T) {
	// A MAP_SHARED region inside a shared PTP: the write fault unshares
	// the PTP (trigger 1) but the data page is the file's frame — both
	// processes keep writing to the same physical page.
	k := boot(t, SharedPTP())
	parent := buildParent(t, k)
	shm := vm.NewFile(k.Phys, "shm", 0x40000)
	if err := k.Mmap(parent, &vm.VMA{Start: 0x00400000, End: 0x00440000,
		Prot: vm.ProtRead | vm.ProtWrite, Flags: vm.VMAShared, File: shm, Name: "shm"}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(parent, func() error { return k.CPU.Write(0x00400000) }); err != nil {
		t.Fatal(err)
	}
	child, err := k.Fork(parent, "worker")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(child, func() error { return k.CPU.Write(0x00400000) }); err != nil {
		t.Fatal(err)
	}
	pp := parent.MM.PT.PTEAt(0x00400000)
	cp := child.MM.PT.PTEAt(0x00400000)
	if pp.Frame != cp.Frame {
		t.Errorf("shared mapping must keep one frame: %d vs %d", pp.Frame, cp.Frame)
	}
	if child.MM.Counters.COWBreaks != 0 {
		t.Error("no COW break for shared mappings")
	}
}
