// Persistent-image support: serializable snapshots of the whole machine
// (internal/imagestore). SnapshotState and RestoreKernel mirror Clone:
// the same state Clone copies eagerly is serialized by value, and the
// state Clone shares copy-on-write — PTE arrays, frame metadata,
// page-cache contents — is referenced by machine-wide index into lists
// the caller owns, so sharing (two slots naming one PTP) survives the
// round trip. A restored kernel gets a fresh event bus, exactly like a
// clone: checkpoints are captured before any subscriber attaches.

package core

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pagetable"
	"repro/internal/vm"
)

// ContextSnapshot is the serializable state of one hardware context. A
// process context's page-table pointer is implicitly its process's; an
// orphan context (left on a core by the exit of its process, see Clone)
// has none.
type ContextSnapshot struct {
	ID           int
	Name         string
	ASID         arch.ASID
	DACR         arch.DACR
	KernelTextPA arch.PhysAddr
	FlushGlobals bool
	Stats        cpu.Stats
}

// ProcessSnapshot is the serializable state of one process.
type ProcessSnapshot struct {
	PID           int
	Name          string
	IsZygote      bool
	IsZygoteChild bool
	ForkStats     ForkStats
	PTEsCopied    uint64
	MM            vm.MMSnapshot
	Ctx           ContextSnapshot
}

// KernelSnapshot is the serializable state of one machine. Processes are
// ordered by PID; the context index space referenced by CPUs is the
// processes in that order followed by Orphans.
type KernelSnapshot struct {
	Arch         string
	Config       Config
	ForkCosts    ForkCosts
	Counters     Counters
	IPICost      int
	NextPID      int
	NextASID     arch.ASID
	KernelTextPA arch.PhysAddr
	Phys         mem.Snapshot
	L2           cache.Snapshot
	Procs        []ProcessSnapshot
	Orphans      []ContextSnapshot
	CPUs         []cpu.Snapshot
	// CPUIndex and CurCPU locate k.CPU and the scheduling cursor within
	// the CPUs list.
	CPUIndex int
	CurCPU   int
}

func contextSnapshot(c *cpu.Context) ContextSnapshot {
	return ContextSnapshot{
		ID:           c.ID,
		Name:         c.Name,
		ASID:         c.ASID,
		DACR:         c.DACR,
		KernelTextPA: c.KernelTextPA,
		FlushGlobals: c.FlushGlobals,
		Stats:        c.Stats,
	}
}

// SnapshotState captures the machine. fileIndex and tableIndex resolve
// machine-wide identities for page-cache files and leaf page-table
// pages, registering each object on first sight; the caller (the image
// encoder) keeps the registration lists and serializes their contents
// separately.
func (k *Kernel) SnapshotState(fileIndex func(*vm.File) int32, tableIndex func(*pagetable.LeafTable) int32) KernelSnapshot {
	s := KernelSnapshot{
		Arch:         k.mmu.Name(),
		Config:       k.Config,
		ForkCosts:    k.ForkCosts,
		Counters:     k.Counters,
		IPICost:      k.IPICost,
		NextPID:      k.nextPID,
		NextASID:     k.nextASID,
		KernelTextPA: k.kernelTextPA,
		Phys:         k.Phys.SnapshotState(),
		L2:           k.l2.SnapshotState(),
	}

	pids := make([]int, 0, len(k.procs))
	for pid := range k.procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	ctxIdx := make(map[*cpu.Context]int32, len(pids))
	for _, pid := range pids {
		p := k.procs[pid]
		ctxIdx[p.Ctx] = int32(len(s.Procs))
		s.Procs = append(s.Procs, ProcessSnapshot{
			PID:           p.PID,
			Name:          p.Name,
			IsZygote:      p.IsZygote,
			IsZygoteChild: p.IsZygoteChild,
			ForkStats:     p.ForkStats,
			PTEsCopied:    p.PTEsCopied,
			MM:            p.MM.SnapshotState(fileIndex, tableIndex),
			Ctx:           contextSnapshot(p.Ctx),
		})
	}

	// Orphan contexts (cores still billing an exited process) come after
	// the process contexts, discovered in core order.
	ctxIndex := func(c *cpu.Context) int32 {
		if i, ok := ctxIdx[c]; ok {
			return i
		}
		i := int32(len(s.Procs) + len(s.Orphans))
		ctxIdx[c] = i
		s.Orphans = append(s.Orphans, contextSnapshot(c))
		return i
	}
	for i, c := range k.cpus {
		s.CPUs = append(s.CPUs, c.SnapshotState(ctxIndex))
		if c == k.CPU {
			s.CPUIndex = i
		}
		if c == k.curCPU {
			s.CurCPU = i
		}
	}
	return s
}

// RestoreKernel rebuilds a machine. phys is the restored physical
// memory (mem.Restore over the snapshot's Phys — the caller builds it
// first because the files and tables need it too); files and tables are
// the machine-wide lists the snapshot's indices refer to, already
// restored by the caller (vm.RestoreFile, pagetable.RestoreLeafTable) —
// typically aliasing a memory-mapped image.
func RestoreKernel(s KernelSnapshot, phys *mem.PhysMem, files []*vm.File, tables []*pagetable.LeafTable) (*Kernel, error) {
	m, ok := arch.Lookup(s.Arch)
	if !ok {
		return nil, fmt.Errorf("core: snapshot names unknown architecture %q", s.Arch)
	}
	if s.Config.SharePTP && s.Config.CopyPTEsAtFork {
		return nil, fmt.Errorf("core: snapshot config is contradictory: %+v", s.Config)
	}
	if phys == nil {
		var err error
		if phys, err = mem.Restore(s.Phys); err != nil {
			return nil, err
		}
	}
	k := &Kernel{
		Phys:         phys,
		Config:       s.Config,
		ForkCosts:    s.ForkCosts,
		Counters:     s.Counters,
		IPICost:      s.IPICost,
		mmu:          m,
		geo:          m.Geometry(),
		tag:          m.Tagging(),
		prot:         m.Protection(),
		bus:          obs.NewBus(),
		procs:        make(map[int]*Process, len(s.Procs)),
		nextPID:      s.NextPID,
		nextASID:     s.NextASID,
		kernelTextPA: s.KernelTextPA,
	}
	k.asidMax = k.tag.MaxASID()
	l2, err := cache.Restore(s.L2, nil)
	if err != nil {
		return nil, err
	}
	k.l2 = l2
	k.l2.AttachBus(k.bus)

	contexts := make([]*cpu.Context, 0, len(s.Procs)+len(s.Orphans))
	for i := range s.Procs {
		ps := &s.Procs[i]
		pt, err := pagetable.Restore(phys, k.geo, ps.MM.PT, tables)
		if err != nil {
			return nil, fmt.Errorf("core: process %d %q: %w", ps.PID, ps.Name, err)
		}
		mm, err := vm.RestoreMM(phys, pt, ps.MM, files)
		if err != nil {
			return nil, fmt.Errorf("core: process %d %q: %w", ps.PID, ps.Name, err)
		}
		p := &Process{
			PID:           ps.PID,
			Name:          ps.Name,
			MM:            mm,
			IsZygote:      ps.IsZygote,
			IsZygoteChild: ps.IsZygoteChild,
			ForkStats:     ps.ForkStats,
			PTEsCopied:    ps.PTEsCopied,
			kernel:        k,
			alive:         true,
		}
		p.Ctx = &cpu.Context{
			ID:           ps.Ctx.ID,
			Name:         ps.Ctx.Name,
			PT:           mm.PT,
			ASID:         ps.Ctx.ASID,
			DACR:         ps.Ctx.DACR,
			KernelTextPA: ps.Ctx.KernelTextPA,
			FlushGlobals: ps.Ctx.FlushGlobals,
			Stats:        ps.Ctx.Stats,
		}
		if _, dup := k.procs[p.PID]; dup {
			return nil, fmt.Errorf("core: snapshot has two processes with PID %d", p.PID)
		}
		k.procs[p.PID] = p
		contexts = append(contexts, p.Ctx)
	}
	for i := range s.Orphans {
		os := &s.Orphans[i]
		contexts = append(contexts, &cpu.Context{
			ID:           os.ID,
			Name:         os.Name,
			ASID:         os.ASID,
			DACR:         os.DACR,
			KernelTextPA: os.KernelTextPA,
			FlushGlobals: os.FlushGlobals,
			Stats:        os.Stats,
		})
	}

	if len(s.CPUs) == 0 {
		return nil, fmt.Errorf("core: snapshot has no CPUs")
	}
	for i := range s.CPUs {
		cs := &s.CPUs[i]
		var cur *cpu.Context
		if cs.Context >= 0 {
			if int(cs.Context) >= len(contexts) {
				return nil, fmt.Errorf("core: cpu%d names context %d of %d", i, cs.Context, len(contexts))
			}
			cur = contexts[cs.Context]
		}
		c, err := cpu.Restore(*cs, k, k.l2, k.geo, cur)
		if err != nil {
			return nil, fmt.Errorf("core: cpu%d: %w", i, err)
		}
		c.AttachBus(k.bus)
		k.cpus = append(k.cpus, c)
	}
	if s.CPUIndex < 0 || s.CPUIndex >= len(k.cpus) || s.CurCPU < 0 || s.CurCPU >= len(k.cpus) {
		return nil, fmt.Errorf("core: snapshot CPU cursors %d/%d out of range", s.CPUIndex, s.CurCPU)
	}
	k.CPU = k.cpus[s.CPUIndex]
	k.curCPU = k.cpus[s.CurCPU]
	return k, nil
}
