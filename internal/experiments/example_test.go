package experiments_test

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

// Example regenerates Table 4 with reduced sweep sizes and prints the
// headline comparison.
func Example() {
	s := experiments.New(experiments.Quick())
	r, err := s.Table4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared fork allocates %d PTP and copies %d PTEs; stock copies %d\n",
		r.Rows[0].PTPsAllocated, r.Rows[0].PTEsCopied, r.Rows[1].PTEsCopied)
	fmt.Printf("fork speedup > 1.8x: %v\n", r.Speedup > 1.8)
	// Output:
	// shared fork allocates 1 PTP and copies 7 PTEs; stock copies 3934
	// fork speedup > 1.8x: true
}
