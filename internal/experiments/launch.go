// The application-launch experiments of Section 4.2.2: execution time
// (Figure 7), L1 instruction cache stall cycles (Figure 8), and the PTPs
// allocated and file-backed-mapping page faults during launch (Figure 9),
// across six kernel/layout configurations.

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// LaunchConfig is one bar group of Figures 7-9.
type LaunchConfig struct {
	Kernel core.Config
	Layout android.Layout
}

// Label renders the configuration as in the paper's figure legends.
func (c LaunchConfig) Label() string {
	if c.Layout == android.Layout2MB {
		return c.Kernel.Name() + "-2MB"
	}
	return c.Kernel.Name()
}

// LaunchConfigs returns the six configurations of Figures 7-9.
func LaunchConfigs() []LaunchConfig {
	return []LaunchConfig{
		{core.Stock(), android.LayoutOriginal},
		{core.SharedPTP(), android.LayoutOriginal},
		{core.SharedPTPTLB(), android.LayoutOriginal},
		{core.Stock(), android.Layout2MB},
		{core.SharedPTP(), android.Layout2MB},
		{core.SharedPTPTLB(), android.Layout2MB},
	}
}

// launchSeries holds one configuration's sweep measurements.
type launchSeries struct {
	config       LaunchConfig
	cycles       []float64
	icacheStalls []float64
	fileFaults   []float64
	ptps         []float64
}

type launchSweep struct {
	series []launchSeries
}

// launchData runs (once per session) the HelloWorld launch sweep: for
// each configuration, boot a system and launch the app Params.LaunchRuns
// times, exiting each instance, exactly as repeated launches on a running
// device.
func (s *Session) launchData() (*launchSweep, error) {
	s.launchOnce.Do(func() {
		s.launch, s.launchErr = s.runLaunchSweep()
		s.launchErr = sweepErr("launch sweep (Figures 7-9)", s.launchErr)
	})
	return s.launch, s.launchErr
}

// runLaunchSweep fans the six configurations out over the worker pool:
// each configuration is one scenario with its own booted system, and the
// runs within a configuration stay sequential because later launches
// warm-start from the state earlier ones left in the zygote.
func (s *Session) runLaunchSweep() (*launchSweep, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, err
	}
	spec := workload.HelloWorldSpec()
	u := s.Universe()
	cfgs := LaunchConfigs()
	scenarios := make([]sweep.Scenario[launchSeries], len(cfgs))
	for i, cfg := range cfgs {
		cfg := cfg
		scenarios[i] = sweep.Scenario[launchSeries]{
			Name: "launch/" + cfg.Label(),
			Run: func(*rand.Rand) (launchSeries, error) {
				return s.runLaunchSeries(cfg, spec, u)
			},
		}
	}
	series, err := sweep.Run(s.workers(), scenarios)
	if err != nil {
		return nil, err
	}
	return &launchSweep{series: series}, nil
}

// runLaunchSeries measures one configuration's launch distribution. Each
// launch seeds its own PRNG from (app seed, run index) inside LaunchApp,
// so the series is a pure function of the configuration.
func (s *Session) runLaunchSeries(cfg LaunchConfig, spec workload.AppSpec, u *workload.Universe) (launchSeries, error) {
	sys, err := s.Boot(cfg.Kernel, cfg.Layout)
	if err != nil {
		return launchSeries{}, err
	}
	prof := workload.BuildProfile(u, spec)
	series := launchSeries{config: cfg}
	for run := 0; run < s.Params.LaunchRuns; run++ {
		app, ls, err := sys.LaunchApp(prof, int64(run))
		if err != nil {
			return launchSeries{}, fmt.Errorf("experiments: launch sweep %s run %d: %w", cfg.Label(), run, err)
		}
		series.cycles = append(series.cycles, float64(ls.Cycles))
		series.icacheStalls = append(series.icacheStalls, float64(ls.ICacheStalls))
		series.fileFaults = append(series.fileFaults, float64(ls.FileFaults))
		series.ptps = append(series.ptps, float64(ls.PTPsAllocated))
		sys.Kernel.Exit(app.Proc)
	}
	return series, nil
}

// Figure7Result is the launch execution-time box plot.
type Figure7Result struct {
	Rows []DistributionRow
	// SpeedupPct is the median improvement of Shared PTP & TLB over
	// stock, original layout (paper: 7%) and 2MB layout (paper: 10%).
	SpeedupPctOriginal float64
	SpeedupPct2MB      float64
}

// DistributionRow is one configuration's five-number summary.
type DistributionRow struct {
	Config  string
	Summary stats.FiveNum
}

// Figure7 measures launch execution time across the six configurations.
func (s *Session) Figure7() (*Figure7Result, error) {
	sweep, err := s.launchData()
	if err != nil {
		return nil, err
	}
	r := &Figure7Result{}
	medians := map[string]float64{}
	for _, ser := range sweep.series {
		sum := stats.Summarize(ser.cycles)
		r.Rows = append(r.Rows, DistributionRow{Config: ser.config.Label(), Summary: sum})
		medians[ser.config.Label()] = sum.Median
	}
	r.SpeedupPctOriginal = 100 * (1 - medians["Shared PTP & TLB"]/medians["Stock Android"])
	r.SpeedupPct2MB = 100 * (1 - medians["Shared PTP & TLB-2MB"]/medians["Stock Android-2MB"])
	return r, nil
}

// String renders the box plots.
func (r *Figure7Result) String() string {
	t := stats.NewTable("Figure 7: application launch execution time (cycles x10^6)",
		"Config", "Min", "Q1", "Median", "Q3", "Max")
	for _, row := range r.Rows {
		f := row.Summary
		t.AddRow(row.Config, stats.F(f.Min/1e6), stats.F(f.Q1/1e6),
			stats.F(f.Median/1e6), stats.F(f.Q3/1e6), stats.F(f.Max/1e6))
	}
	return t.String() + fmt.Sprintf("median launch speedup: %.1f%% original (paper: 7%%), %.1f%% 2MB (paper: 10%%)\n",
		r.SpeedupPctOriginal, r.SpeedupPct2MB)
}

// Figure8Result is the launch L1 I-cache stall box plot.
type Figure8Result struct {
	Rows []DistributionRow
	// ReductionPctOriginal / 2MB are the median stall reductions of
	// Shared PTP & TLB vs stock (paper: 15% and 24%).
	ReductionPctOriginal float64
	ReductionPct2MB      float64
}

// Figure8 measures launch L1 instruction cache stall cycles.
func (s *Session) Figure8() (*Figure8Result, error) {
	sweep, err := s.launchData()
	if err != nil {
		return nil, err
	}
	r := &Figure8Result{}
	medians := map[string]float64{}
	for _, ser := range sweep.series {
		sum := stats.Summarize(ser.icacheStalls)
		r.Rows = append(r.Rows, DistributionRow{Config: ser.config.Label(), Summary: sum})
		medians[ser.config.Label()] = sum.Median
	}
	r.ReductionPctOriginal = 100 * (1 - medians["Shared PTP & TLB"]/medians["Stock Android"])
	r.ReductionPct2MB = 100 * (1 - medians["Shared PTP & TLB-2MB"]/medians["Stock Android-2MB"])
	return r, nil
}

// String renders the box plots.
func (r *Figure8Result) String() string {
	t := stats.NewTable("Figure 8: application launch L1 instruction cache stall cycles (x10^6)",
		"Config", "Min", "Q1", "Median", "Q3", "Max")
	for _, row := range r.Rows {
		f := row.Summary
		t.AddRow(row.Config, stats.F(f.Min/1e6), stats.F(f.Q1/1e6),
			stats.F(f.Median/1e6), stats.F(f.Q3/1e6), stats.F(f.Max/1e6))
	}
	return t.String() + fmt.Sprintf("median I-cache stall reduction: %.1f%% original (paper: 15%%), %.1f%% 2MB (paper: 24%%)\n",
		r.ReductionPctOriginal, r.ReductionPct2MB)
}

// Figure9Result is the launch PTP-allocation and file-fault comparison.
type Figure9Result struct {
	Rows []Figure9Row
}

// Figure9Row is one configuration's launch counters, as means over the
// sweep, with values normalized to the stock kernel / original layout.
type Figure9Row struct {
	Config        string
	PTPs          float64
	FileFaults    float64
	PTPsNormPct   float64
	FaultsNormPct float64
}

// Figure9 reports the PTPs allocated and page faults for file-backed
// mappings during launch.
func (s *Session) Figure9() (*Figure9Result, error) {
	sweep, err := s.launchData()
	if err != nil {
		return nil, err
	}
	r := &Figure9Result{}
	basePTPs := stats.Mean(sweep.series[0].ptps)
	baseFaults := stats.Mean(sweep.series[0].fileFaults)
	for _, ser := range sweep.series {
		p := stats.Mean(ser.ptps)
		f := stats.Mean(ser.fileFaults)
		r.Rows = append(r.Rows, Figure9Row{
			Config:        ser.config.Label(),
			PTPs:          p,
			FileFaults:    f,
			PTPsNormPct:   stats.Normalize(basePTPs, p),
			FaultsNormPct: stats.Normalize(baseFaults, f),
		})
	}
	return r, nil
}

// String renders the figure.
func (r *Figure9Result) String() string {
	t := stats.NewTable("Figure 9: PTPs allocated and file-backed-mapping page faults during launch",
		"Config", "PTPs", "PTPs (% of stock)", "File faults", "Faults (% of stock)")
	for _, row := range r.Rows {
		t.AddRow(row.Config, stats.F(row.PTPs), stats.Pct(row.PTPsNormPct),
			stats.F(row.FileFaults), stats.Pct(row.FaultsNormPct))
	}
	return t.String()
}
