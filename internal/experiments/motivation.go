// The motivation-section experiments (Section 2.3): Table 1, Figures 2
// and 3, Table 2, and Figure 4. All five are derived from one sweep that
// runs every application of the suite on the stock kernel while
// collecting page-fault traces and perf-style PC samples, exactly as the
// paper's methodology does.

package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/android"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

// appMotivation is the per-application raw material of the motivation
// analyses.
type appMotivation struct {
	spec      workload.AppSpec
	userPct   float64
	footprint map[vm.Category]int
	fetches   map[vm.Category]uint64
	// sharedZygote and sharedAll are the executed pages restricted to
	// zygote-preloaded and to all shared code (virtual addresses, for
	// the sparsity analysis).
	sharedZygote []arch.VirtAddr
	sharedAll    []arch.VirtAddr
	// zygoteKeys and allKeys are the same sets identified by backing
	// file and offset (for the cross-application intersections).
	zygoteKeys []uint64
	allKeys    []uint64
	totalPages int
}

type motivationData struct {
	apps []appMotivation
}

const sampleEvery = 509 // instructions per PC sample

func (s *Session) motivation() (*motivationData, error) {
	s.motOnce.Do(func() {
		s.mot, s.motErr = s.runMotivation()
		s.motErr = sweepErr("motivation sweep (Tables 1-2, Figures 2-4)", s.motErr)
	})
	return s.mot, s.motErr
}

// runMotivation fans one scenario per application out over the worker
// pool. Each scenario boots its own stock-kernel system with its own
// fault trace and PC sampler, so the per-app measurements are pure
// functions of the app's profile and the order apps run in is
// irrelevant (with the stock kernel's private page tables, one app's
// execution never changed another's counters anyway).
func (s *Session) runMotivation() (*motivationData, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, err
	}
	u := s.Universe()
	suite := workload.Suite()
	scenarios := make([]sweep.Scenario[appMotivation], len(suite))
	for i, spec := range suite {
		spec := spec
		scenarios[i] = sweep.Scenario[appMotivation]{
			Name: "motivation/" + spec.Name,
			Run: func(*rand.Rand) (appMotivation, error) {
				return s.runMotivationApp(spec, u)
			},
		}
	}
	apps, err := sweep.Run(s.workers(), scenarios)
	if err != nil {
		return nil, err
	}
	return &motivationData{apps: apps}, nil
}

// runMotivationApp runs one application on a freshly booted stock system
// while collecting its page-fault trace and PC samples.
func (s *Session) runMotivationApp(spec workload.AppSpec, u *workload.Universe) (appMotivation, error) {
	sys, err := s.Boot(core.Stock(), android.LayoutOriginal)
	if err != nil {
		return appMotivation{}, err
	}
	ft := &trace.FaultTrace{}
	ft.Attach(sys.Kernel)
	defer ft.Detach(sys.Kernel)

	prof := workload.BuildProfile(u, spec)
	sampler := trace.NewPCSampler()
	sys.Kernel.CPU.SampleEvery = sampleEvery
	sys.Kernel.CPU.Sampler = sampler
	app, _, err := sys.LaunchApp(prof, 1)
	if err != nil {
		return appMotivation{}, fmt.Errorf("experiments: motivation %s: %w", spec.Name, err)
	}
	if _, err := app.Run(); err != nil {
		return appMotivation{}, fmt.Errorf("experiments: motivation %s: %w", spec.Name, err)
	}
	sys.Kernel.CPU.Sampler = nil

	smaps := app.Proc.MM.SmapsDump()
	pages := ft.ExecPages(app.Proc.PID)
	am := appMotivation{
		spec:         spec,
		userPct:      sampler.UserPct(),
		footprint:    trace.FootprintBreakdown(smaps, pages),
		fetches:      trace.FetchBreakdown(smaps, sampler),
		sharedZygote: trace.SharedCodePages(smaps, pages, true),
		sharedAll:    trace.SharedCodePages(smaps, pages, false),
		zygoteKeys:   trace.SharedCodeKeys(smaps, pages, true),
		allKeys:      trace.SharedCodeKeys(smaps, pages, false),
		totalPages:   len(pages),
	}
	sys.Kernel.Exit(app.Proc)
	return am, nil
}

// Table1Result is the user/kernel instruction split per application.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one application's split.
type Table1Row struct {
	App       string
	UserPct   float64
	KernelPct float64
	PaperUser float64
}

// Table1 measures the percentage of instructions fetched in user versus
// kernel space via rate-based PC sampling.
func (s *Session) Table1() (*Table1Result, error) {
	mot, err := s.motivation()
	if err != nil {
		return nil, err
	}
	r := &Table1Result{}
	for _, am := range mot.apps {
		r.Rows = append(r.Rows, Table1Row{
			App:       am.spec.Name,
			UserPct:   am.userPct,
			KernelPct: 100 - am.userPct,
			PaperUser: am.spec.UserPct,
		})
	}
	return r, nil
}

// String renders the table.
func (r *Table1Result) String() string {
	t := stats.NewTable("Table 1: % of instructions fetched (user vs kernel space)",
		"Benchmark", "User (%)", "Kernel (%)", "Paper user (%)")
	for _, row := range r.Rows {
		t.AddRow(row.App, stats.F(row.UserPct), stats.F(row.KernelPct), stats.F(row.PaperUser))
	}
	return t.String()
}

// Figure2Result is the breakdown of accessed instruction pages.
type Figure2Result struct {
	Rows []Figure2Row
	// AvgSharedPct is the mean share of the footprint that is shared
	// code (paper: 92.8%).
	AvgSharedPct float64
}

// Figure2Row is one application's page breakdown.
type Figure2Row struct {
	App   string
	Pages map[vm.Category]int
	Total int
}

// Figure2 derives the instruction-page footprint breakdown from page
// fault traces and smaps.
func (s *Session) Figure2() (*Figure2Result, error) {
	mot, err := s.motivation()
	if err != nil {
		return nil, err
	}
	r := &Figure2Result{}
	var sharedSum float64
	for _, am := range mot.apps {
		shared := 0
		for c, n := range am.footprint {
			if c.IsSharedCode() {
				shared += n
			}
		}
		r.Rows = append(r.Rows, Figure2Row{App: am.spec.Name, Pages: am.footprint, Total: am.totalPages})
		sharedSum += 100 * float64(shared) / float64(am.totalPages)
	}
	r.AvgSharedPct = sharedSum / float64(len(mot.apps))
	return r, nil
}

var figureCategories = []vm.Category{
	vm.CatPrivateCode, vm.CatZygoteDynLib, vm.CatZygoteJavaLib,
	vm.CatZygoteBinary, vm.CatOtherDynLib, vm.CatOther,
}

// String renders the figure as a table of page counts.
func (r *Figure2Result) String() string {
	t := stats.NewTable("Figure 2: breakdown of instruction pages accessed",
		"Benchmark", "private", "zyg dynlib", "zyg java", "app_process", "other dynlib", "other", "total")
	for _, row := range r.Rows {
		cells := []string{row.App}
		for _, c := range figureCategories {
			cells = append(cells, fmt.Sprintf("%d", row.Pages[c]))
		}
		cells = append(cells, fmt.Sprintf("%d", row.Total))
		t.AddRow(cells...)
	}
	return t.String() + fmt.Sprintf("average shared-code share of footprint: %.1f%% (paper: 92.8%%)\n", r.AvgSharedPct)
}

// Figure3Result is the dynamic fetch breakdown.
type Figure3Result struct {
	Rows []Figure3Row
	// AvgSharedPct is the mean share of fetches going to shared code
	// (paper: 98%).
	AvgSharedPct float64
}

// Figure3Row is one application's fetch shares in percent.
type Figure3Row struct {
	App    string
	Shares map[vm.Category]float64
}

// Figure3 derives the dynamic instruction-fetch breakdown from the PC
// samples.
func (s *Session) Figure3() (*Figure3Result, error) {
	mot, err := s.motivation()
	if err != nil {
		return nil, err
	}
	r := &Figure3Result{}
	var sharedSum float64
	for _, am := range mot.apps {
		var total uint64
		for _, n := range am.fetches {
			total += n
		}
		shares := make(map[vm.Category]float64)
		for c, n := range am.fetches {
			shares[c] = 100 * float64(n) / float64(total)
		}
		// Sum the shared categories in fixed numeric order: float
		// addition is not associative, so letting map-iteration order
		// pick the order would make the last digits run-dependent.
		cats := make([]vm.Category, 0, len(shares))
		for c := range shares {
			cats = append(cats, c)
		}
		sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
		var shared float64
		for _, c := range cats {
			if c.IsSharedCode() {
				shared += shares[c]
			}
		}
		r.Rows = append(r.Rows, Figure3Row{App: am.spec.Name, Shares: shares})
		sharedSum += shared
	}
	r.AvgSharedPct = sharedSum / float64(len(mot.apps))
	return r, nil
}

// String renders the figure.
func (r *Figure3Result) String() string {
	t := stats.NewTable("Figure 3: breakdown of % of instructions fetched (user space)",
		"Benchmark", "private", "zyg dynlib", "zyg java", "app_process", "other dynlib", "other")
	for _, row := range r.Rows {
		cells := []string{row.App}
		for _, c := range figureCategories {
			cells = append(cells, stats.Pct(row.Shares[c]))
		}
		t.AddRow(cells...)
	}
	return t.String() + fmt.Sprintf("average shared-code share of fetches: %.1f%% (paper: 98%%)\n", r.AvgSharedPct)
}

// Table2Result is the shared-code commonality matrix.
type Table2Result struct {
	// Apps are the row/column applications of the displayed matrix
	// (the paper shows four of the eleven).
	Apps []string
	// ZygotePct[i][j] is the % of app i's footprint covered by the
	// intersection of i's and j's zygote-preloaded shared code;
	// AllPct additionally includes other shared code.
	ZygotePct [][]float64
	AllPct    [][]float64
	// AvgZygote and AvgAll are the all-pairs averages over the whole
	// suite (paper: 37.9% and 45.7%).
	AvgZygote float64
	AvgAll    float64
}

// table2Apps are the four applications displayed in the paper's Table 2.
var table2Apps = []string{"Adobe Reader", "Android Browser", "MX Player", "Laya Music Player"}

// Table2 computes the pairwise intersections of shared-code footprints.
func (s *Session) Table2() (*Table2Result, error) {
	mot, err := s.motivation()
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*appMotivation)
	for i := range mot.apps {
		byName[mot.apps[i].spec.Name] = &mot.apps[i]
	}
	r := &Table2Result{Apps: table2Apps}
	for _, an := range table2Apps {
		a := byName[an]
		var zrow, arow []float64
		for _, bn := range table2Apps {
			b := byName[bn]
			if an == bn {
				zrow = append(zrow, -1)
				arow = append(arow, -1)
				continue
			}
			zrow = append(zrow, trace.IntersectionPct(a.zygoteKeys, b.zygoteKeys, a.totalPages))
			arow = append(arow, trace.IntersectionPct(a.allKeys, b.allKeys, a.totalPages))
		}
		r.ZygotePct = append(r.ZygotePct, zrow)
		r.AllPct = append(r.AllPct, arow)
	}
	// All-pairs averages over the full suite.
	var zsum, asum float64
	var n int
	for i := range mot.apps {
		for j := range mot.apps {
			if i == j {
				continue
			}
			a, b := &mot.apps[i], &mot.apps[j]
			zsum += trace.IntersectionPct(a.zygoteKeys, b.zygoteKeys, a.totalPages)
			asum += trace.IntersectionPct(a.allKeys, b.allKeys, a.totalPages)
			n++
		}
	}
	r.AvgZygote = zsum / float64(n)
	r.AvgAll = asum / float64(n)
	return r, nil
}

// String renders the matrix.
func (r *Table2Result) String() string {
	t := stats.NewTable("Table 2: % of row app's instruction footprint intersecting column app's: zygote-preloaded (all shared code)",
		append([]string{"App"}, r.Apps...)...)
	for i, an := range r.Apps {
		cells := []string{an}
		for j := range r.Apps {
			if i == j {
				cells = append(cells, "-")
			} else {
				cells = append(cells, fmt.Sprintf("%.1f (%.1f)", r.ZygotePct[i][j], r.AllPct[i][j]))
			}
		}
		t.AddRow(cells...)
	}
	return t.String() + fmt.Sprintf("all-pairs average: %.1f%% zygote-preloaded, %.1f%% all shared (paper: 37.9%% / 45.7%%)\n",
		r.AvgZygote, r.AvgAll)
}

// Figure4Result is the large-page sparsity study.
type Figure4Result struct {
	Rows []Figure4Row
	// Union is the analysis of the union of all apps' zygote-preloaded
	// accessed code.
	Union Figure4Row
	// AvgWasteFactor is the mean 64KB/4KB memory ratio (paper: 2.6x).
	AvgWasteFactor float64
}

// Figure4Row is the sparsity of one accessed-page set.
type Figure4Row struct {
	App string
	// TailAt9 is the fraction of 64KB chunks with more than 9 of their
	// 16 4KB pages untouched (the paper: ~60% of cases).
	TailAt9 float64
	// Mem4KB and Mem64KB are the physical bytes needed under each page
	// size.
	Mem4KB  int
	Mem64KB int
	// Waste is Mem64KB / Mem4KB.
	Waste float64
	// CDF holds the full distribution for plotting.
	CDF *stats.CDF
}

// Figure4 maps each application's zygote-preloaded accessed code onto
// 64KB chunks and reports how sparsely the chunks are used.
func (s *Session) Figure4() (*Figure4Result, error) {
	mot, err := s.motivation()
	if err != nil {
		return nil, err
	}
	r := &Figure4Result{}
	var sets [][]arch.VirtAddr
	var wasteSum float64
	for _, am := range mot.apps {
		sp := trace.Sparsity(am.sharedZygote)
		r.Rows = append(r.Rows, figure4Row(am.spec.Name, sp))
		sets = append(sets, am.sharedZygote)
		wasteSum += sp.WasteFactor()
	}
	union := trace.Sparsity(trace.UnionPages(sets...))
	r.Union = figure4Row("Union", union)
	r.AvgWasteFactor = wasteSum / float64(len(mot.apps))
	return r, nil
}

func figure4Row(name string, sp trace.SparsityResult) Figure4Row {
	return Figure4Row{
		App:     name,
		TailAt9: sp.CDF.Tail(10),
		Mem4KB:  sp.Memory4KB(),
		Mem64KB: sp.Memory64KB(),
		Waste:   sp.WasteFactor(),
		CDF:     sp.CDF,
	}
}

// String renders the figure.
func (r *Figure4Result) String() string {
	t := stats.NewTable("Figure 4: sparsity of 64KB pages for zygote-preloaded shared code",
		"App", ">9 of 16 pages untouched", "4KB mem (MB)", "64KB mem (MB)", "64KB/4KB")
	rows := append(append([]Figure4Row(nil), r.Rows...), r.Union)
	for _, row := range rows {
		t.AddRow(row.App,
			stats.Pct(100*row.TailAt9),
			stats.F(float64(row.Mem4KB)/(1<<20)),
			stats.F(float64(row.Mem64KB)/(1<<20)),
			fmt.Sprintf("%.2fx", row.Waste))
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "average 64KB/4KB memory factor: %.2fx (paper: 2.6x)\n", r.AvgWasteFactor)
	return b.String()
}
