// Structured output for cmd/experiments -json.
//
// Schema ("sat-experiments/v1"):
//
//	{
//	  "schema": "sat-experiments/v1",
//	  "params": {"launch_runs": N, "app_runs": N, "binder_iters": N},
//	  "experiments": [
//	    {"name": "<registry name>", "metrics": {"<key>": <float64>, ...}},
//	    ...
//	  ]
//	}
//
// Experiments appear in registry (presentation) order; metric keys are
// sorted by encoding/json's map ordering. The document is deterministic:
// the same parameters produce byte-identical output regardless of the
// sweep worker count, inheriting the sweep engine's guarantee. Metric key
// conventions are documented in metrics.go; additions of new keys or new
// experiments are backward-compatible, renames or removals bump the
// schema version.

package experiments

import (
	"encoding/json"
	"fmt"
)

// SchemaID identifies the JSON document layout emitted by RunJSON.
const SchemaID = "sat-experiments/v1"

// JSONParams echoes the sweep parameters into the report.
type JSONParams struct {
	LaunchRuns  int `json:"launch_runs"`
	AppRuns     int `json:"app_runs"`
	BinderIters int `json:"binder_iters"`
}

// JSONExperiment is one experiment's flattened result.
type JSONExperiment struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// JSONReport is the top-level -json document.
type JSONReport struct {
	Schema      string           `json:"schema"`
	Params      JSONParams       `json:"params"`
	Experiments []JSONExperiment `json:"experiments"`
}

// RunJSON runs the selected experiments (all when selected is empty) on
// the session and renders the structured report, newline-terminated.
func RunJSON(s *Session, selected map[string]bool) ([]byte, error) {
	rep := JSONReport{
		Schema: SchemaID,
		Params: JSONParams{
			LaunchRuns:  s.Params.LaunchRuns,
			AppRuns:     s.Params.AppRuns,
			BinderIters: s.Params.BinderIters,
		},
	}
	for _, e := range Registry() {
		if len(selected) > 0 && !selected[e.Name] {
			continue
		}
		r, err := e.Run(s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		m, ok := r.(Metricser)
		if !ok {
			return nil, fmt.Errorf("%s: result %T does not implement Metrics()", e.Name, r)
		}
		rep.Experiments = append(rep.Experiments, JSONExperiment{Name: e.Name, Metrics: m.Metrics()})
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
