// Metrics adapters: every experiment result exposes its numbers as a
// flat map[string]float64, the raw material of cmd/experiments -json.
//
// Key conventions, which the golden schema test pins:
//
//   - keys are snake_case metric names;
//   - per-label values append the label after a dot, e.g.
//     "median_cycles.Stock Android" or "norm_pct.Shared PTP.Email";
//   - percentages carry a _pct suffix (or a pct_ prefix inherited from
//     the figure), raw counts and cycles are unsuffixed.
//
// Non-finite values (NaN, Inf) are omitted: they cannot be represented
// in JSON, and an absent key is more honest than a sentinel.

package experiments

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/vm"
)

// Metricser is implemented by every experiment result: a flat,
// render-independent view of the numbers the String() table shows.
type Metricser interface {
	Metrics() map[string]float64
}

// Compile-time checks: every registered experiment's result implements
// Metricser (RunJSON relies on this at runtime via a type assertion).
var (
	_ Metricser = (*Table1Result)(nil)
	_ Metricser = (*Figure2Result)(nil)
	_ Metricser = (*Figure3Result)(nil)
	_ Metricser = (*Table2Result)(nil)
	_ Metricser = (*Figure4Result)(nil)
	_ Metricser = (*Table3Result)(nil)
	_ Metricser = (*Table4Result)(nil)
	_ Metricser = (*Figure7Result)(nil)
	_ Metricser = (*Figure8Result)(nil)
	_ Metricser = (*Figure9Result)(nil)
	_ Metricser = (*Figure10Result)(nil)
	_ Metricser = (*Figure11Result)(nil)
	_ Metricser = (*Figure12Result)(nil)
	_ Metricser = (*PTECopyResult)(nil)
	_ Metricser = (*Figure13Result)(nil)
	_ Metricser = (*AblationResult)(nil)
	_ Metricser = (*SchedulerGroupingResult)(nil)
	_ Metricser = (*ScalabilityResult)(nil)
	_ Metricser = (*CachePollutionResult)(nil)
	_ Metricser = (*SMPResult)(nil)
	_ Metricser = (*ChromeFamilyResult)(nil)
)

// put inserts v under key, skipping non-finite values.
func put(m map[string]float64, key string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	m[key] = v
}

// putFiveNum flattens a five-number summary under prefix.<label>.
func putFiveNum(m map[string]float64, prefix, label string, f stats.FiveNum) {
	put(m, "min_"+prefix+"."+label, f.Min)
	put(m, "q1_"+prefix+"."+label, f.Q1)
	put(m, "median_"+prefix+"."+label, f.Median)
	put(m, "q3_"+prefix+"."+label, f.Q3)
	put(m, "max_"+prefix+"."+label, f.Max)
}

// categorySlug gives the short, stable metric-key names of the footprint
// categories (the table headers of Figures 2 and 3).
func categorySlug(c vm.Category) string {
	switch c {
	case vm.CatPrivateCode:
		return "private"
	case vm.CatZygoteDynLib:
		return "zyg_dynlib"
	case vm.CatZygoteJavaLib:
		return "zyg_java"
	case vm.CatZygoteBinary:
		return "app_process"
	case vm.CatOtherDynLib:
		return "other_dynlib"
	default:
		return "other"
	}
}

// Metrics implements Metricser.
func (r *Table1Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	for _, row := range r.Rows {
		put(m, "user_pct."+row.App, row.UserPct)
		put(m, "kernel_pct."+row.App, row.KernelPct)
	}
	return m
}

// Metrics implements Metricser.
func (r *Figure2Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "avg_shared_pct", r.AvgSharedPct)
	for _, row := range r.Rows {
		put(m, "total_pages."+row.App, float64(row.Total))
		for _, c := range figureCategories {
			put(m, "pages."+categorySlug(c)+"."+row.App, float64(row.Pages[c]))
		}
	}
	return m
}

// Metrics implements Metricser.
func (r *Figure3Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "avg_shared_pct", r.AvgSharedPct)
	for _, row := range r.Rows {
		for _, c := range figureCategories {
			put(m, "fetch_pct."+categorySlug(c)+"."+row.App, row.Shares[c])
		}
	}
	return m
}

// Metrics implements Metricser.
func (r *Table2Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "avg_zygote_pct", r.AvgZygote)
	put(m, "avg_all_pct", r.AvgAll)
	for i, a := range r.Apps {
		for j, b := range r.Apps {
			if i == j {
				continue
			}
			put(m, "zygote_pct."+a+"|"+b, r.ZygotePct[i][j])
			put(m, "all_pct."+a+"|"+b, r.AllPct[i][j])
		}
	}
	return m
}

// Metrics implements Metricser.
func (r *Figure4Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "avg_waste_factor", r.AvgWasteFactor)
	rows := append(append([]Figure4Row(nil), r.Rows...), r.Union)
	for _, row := range rows {
		put(m, "tail_at_9."+row.App, row.TailAt9)
		put(m, "mem_4kb_bytes."+row.App, float64(row.Mem4KB))
		put(m, "mem_64kb_bytes."+row.App, float64(row.Mem64KB))
		put(m, "waste_factor."+row.App, row.Waste)
	}
	return m
}

// Metrics implements Metricser.
func (r *Table3Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	for _, row := range r.Rows {
		put(m, "cold_ptes."+row.App, float64(row.Cold))
		put(m, "warm_ptes."+row.App, float64(row.Warm))
	}
	return m
}

// Metrics implements Metricser.
func (r *Table4Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "fork_speedup", r.Speedup)
	put(m, "copied_slowdown_pct", r.CopiedSlowdownPct)
	for _, row := range r.Rows {
		put(m, "fork_cycles."+row.Kernel, float64(row.Cycles))
		put(m, "ptps_allocated."+row.Kernel, float64(row.PTPsAllocated))
		put(m, "shared_ptps."+row.Kernel, float64(row.SharedPTPs))
		put(m, "ptes_copied."+row.Kernel, float64(row.PTEsCopied))
	}
	return m
}

// Metrics implements Metricser.
func (r *Figure7Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "speedup_pct_original", r.SpeedupPctOriginal)
	put(m, "speedup_pct_2mb", r.SpeedupPct2MB)
	for _, row := range r.Rows {
		putFiveNum(m, "cycles", row.Config, row.Summary)
	}
	return m
}

// Metrics implements Metricser.
func (r *Figure8Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "reduction_pct_original", r.ReductionPctOriginal)
	put(m, "reduction_pct_2mb", r.ReductionPct2MB)
	for _, row := range r.Rows {
		putFiveNum(m, "icache_stalls", row.Config, row.Summary)
	}
	return m
}

// Metrics implements Metricser.
func (r *Figure9Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	for _, row := range r.Rows {
		put(m, "ptps."+row.Config, row.PTPs)
		put(m, "file_faults."+row.Config, row.FileFaults)
		put(m, "ptps_norm_pct."+row.Config, row.PTPsNormPct)
		put(m, "faults_norm_pct."+row.Config, row.FaultsNormPct)
	}
	return m
}

// Metrics implements Metricser.
func (r *Figure10Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "avg_reduction_pct", r.AvgReductionPct)
	for _, row := range r.Rows {
		put(m, "stock_faults."+row.App, row.StockFaults)
		put(m, "shared_faults."+row.App, row.SharedFaults)
		put(m, "reduction_pct."+row.App, row.ReductionPct)
		put(m, "eliminated_per_run."+row.App, row.Eliminated)
	}
	return m
}

// Metrics implements Metricser.
func (r *Figure11Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "avg_reduction_pct_original", r.AvgReductionOriginal)
	put(m, "avg_reduction_pct_2mb", r.AvgReduction2MB)
	for label, perApp := range r.NormPct {
		for app, v := range perApp {
			put(m, "ptps_norm_pct."+label+"."+app, v)
		}
	}
	return m
}

// Metrics implements Metricser.
func (r *Figure12Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "avg_shared_pct_original", r.AvgOriginal)
	put(m, "avg_shared_pct_2mb", r.Avg2MB)
	for layout, perApp := range r.SharedPct {
		for app, v := range perApp {
			put(m, "shared_pct."+layout.String()+"."+app, v)
		}
	}
	return m
}

// Metrics implements Metricser.
func (r *PTECopyResult) Metrics() map[string]float64 {
	m := make(map[string]float64)
	for label, perApp := range r.Copies {
		for app, v := range perApp {
			put(m, "ptes_copied."+label+"."+app, v)
		}
	}
	return m
}

// Metrics implements Metricser.
func (r *Figure13Result) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "client_improvement_pct", r.ClientImprovementPct)
	put(m, "server_improvement_pct", r.ServerImprovementPct)
	for _, row := range r.Rows {
		mode := "asid_off"
		if row.ASID {
			mode = "asid_on"
		}
		put(m, "client_stalls."+mode+"."+row.Kernel, float64(row.ClientStalls))
		put(m, "server_stalls."+mode+"."+row.Kernel, float64(row.ServerStalls))
		put(m, "client_norm_pct."+mode+"."+row.Kernel, row.ClientNormPct)
		put(m, "server_norm_pct."+mode+"."+row.Kernel, row.ServerNormPct)
	}
	return m
}

// Metrics implements Metricser.
func (r *AblationResult) Metrics() map[string]float64 {
	m := make(map[string]float64)
	for _, row := range r.Rows {
		put(m, "baseline."+row.Metric, row.Baseline)
		put(m, "variant."+row.Metric, row.Variant)
	}
	return m
}

// Metrics implements Metricser.
func (r *SchedulerGroupingResult) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "itlb_stalls.interleaved", float64(r.Interleaved))
	put(m, "itlb_stalls.grouped", float64(r.Grouped))
	put(m, "full_flushes.interleaved", float64(r.FlushesInterleaved))
	put(m, "full_flushes.grouped", float64(r.FlushesGrouped))
	return m
}

// Metrics implements Metricser.
func (r *ScalabilityResult) Metrics() map[string]float64 {
	m := make(map[string]float64)
	for _, row := range r.Rows {
		n := fmt.Sprintf("%d", row.Processes)
		put(m, "stock_ptp_kb."+n, float64(row.StockPTPKB))
		put(m, "shared_ptp_kb."+n, float64(row.SharedPTPKB))
	}
	return m
}

// Metrics implements Metricser.
func (r *CachePollutionResult) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "processes", float64(r.Processes))
	put(m, "stock_pte_lines", float64(r.StockPTELines))
	put(m, "shared_pte_lines", float64(r.SharedPTELines))
	return m
}

// Metrics implements Metricser.
func (r *SMPResult) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "stock_shootdowns", float64(r.StockShootdowns))
	put(m, "shared_shootdowns", float64(r.SharedShootdowns))
	put(m, "stock_faults", float64(r.StockFaults))
	put(m, "shared_faults", float64(r.SharedFaults))
	return m
}

// Metrics implements Metricser.
func (r *ChromeFamilyResult) Metrics() map[string]float64 {
	m := make(map[string]float64)
	put(m, "inherited_lib_pages", float64(r.Pages))
	put(m, "stock_faults", float64(r.StockFaults))
	put(m, "shared_faults", float64(r.SharedFaults))
	return m
}
