// The fork experiments: Table 3 (instruction PTEs inherited from the
// zygote on cold and warm starts) and Table 4 (zygote fork cost under the
// three kernels).

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Table3Result reports, per application, how many of its instruction
// PTEs are already populated in the shared PTPs it inherits at fork.
type Table3Result struct {
	Rows []Table3Row
}

// Table3Row is one application's inherited-PTE counts.
type Table3Row struct {
	App string
	// Cold is the count when the application is the first to run after
	// boot; Warm is the count when it is reinvoked after its first
	// instantiation.
	Cold, Warm int
	// PaperCold and PaperWarm are Table 3's values.
	PaperCold, PaperWarm int
}

// Table3 measures inherited instruction PTEs by forking a probe child
// and counting the valid PTEs among the pages the application executes —
// before (cold) and after (warm) the application's first full run.
func (s *Session) Table3() (*Table3Result, error) {
	u := s.Universe()
	suite := workload.Suite()
	scenarios := make([]sweep.Scenario[Table3Row], len(suite))
	for i, spec := range suite {
		spec := spec
		scenarios[i] = sweep.Scenario[Table3Row]{
			Name: "table3/" + spec.Name,
			Run: func(*rand.Rand) (Table3Row, error) {
				sys, err := s.Boot(core.SharedPTP(), android.LayoutOriginal)
				if err != nil {
					return Table3Row{}, err
				}
				prof := workload.BuildProfile(u, spec)
				cold, err := countInherited(sys, prof)
				if err != nil {
					return Table3Row{}, fmt.Errorf("experiments: table 3 %s: %w", spec.Name, err)
				}
				// First instantiation: launch, run, exit.
				app, _, err := sys.LaunchApp(prof, 1)
				if err != nil {
					return Table3Row{}, err
				}
				if _, err := app.Run(); err != nil {
					return Table3Row{}, err
				}
				sys.Kernel.Exit(app.Proc)
				warm, err := countInherited(sys, prof)
				if err != nil {
					return Table3Row{}, err
				}
				return Table3Row{
					App: spec.Name, Cold: cold, Warm: warm,
					PaperCold: spec.ColdPTEs, PaperWarm: spec.WarmPTEs,
				}, nil
			},
		}
	}
	rows, err := sweep.Run(s.workers(), scenarios)
	if err != nil {
		return nil, err
	}
	return &Table3Result{Rows: rows}, nil
}

// countInherited forks a probe child and counts how many of the pages in
// the application's preloaded-code footprint already have valid PTEs in
// the child's inherited page table.
func countInherited(sys *android.System, prof *workload.Profile) (int, error) {
	probe, err := sys.ZygoteFork("probe")
	if err != nil {
		return 0, err
	}
	defer sys.Kernel.Exit(probe)
	n := 0
	for _, pg := range prof.ZygotePreloaded {
		va := sys.CodePageVA(pg)
		if pte := probe.MM.PT.PTEAt(va); pte != nil && pte.Valid() {
			n++
		}
	}
	return n, nil
}

// String renders the table, in the paper's x100 units.
func (r *Table3Result) String() string {
	t := stats.NewTable("Table 3: # instruction PTEs inherited from the zygote (x100)",
		"Benchmark", "Cold", "Warm", "Paper cold", "Paper warm")
	for _, row := range r.Rows {
		t.AddRow(row.App,
			stats.F(float64(row.Cold)/100),
			stats.F(float64(row.Warm)/100),
			stats.F(float64(row.PaperCold)/100),
			stats.F(float64(row.PaperWarm)/100))
	}
	return t.String()
}

// Table4Result is the zygote fork comparison.
type Table4Result struct {
	Rows []Table4Row
	// Speedup is stock cycles / shared cycles (paper: 2.1x).
	Speedup float64
	// CopiedSlowdownPct is the Copied PTEs kernel's fork-time increase
	// over stock (paper: +58.6%).
	CopiedSlowdownPct float64
}

// Table4Row is one kernel's fork statistics (minimum-cycle round of the
// sweep, as the paper reports the minimum over 40 rounds).
type Table4Row struct {
	Kernel        string
	Cycles        uint64
	PTPsAllocated int
	SharedPTPs    int
	PTEsCopied    int
}

// Table4 measures the cost of a zygote fork under the stock kernel, the
// Copied PTEs kernel, and the Shared PTPs kernel: 40 rounds each, with
// the minimum-cycles round reported.
func (s *Session) Table4() (*Table4Result, error) {
	const rounds = 40
	kernels := []core.Config{core.SharedPTP(), core.Stock(), core.CopiedPTEs()}
	scenarios := make([]sweep.Scenario[Table4Row], len(kernels))
	for i, cfg := range kernels {
		cfg := cfg
		scenarios[i] = sweep.Scenario[Table4Row]{
			Name: "table4/" + cfg.Name(),
			Run: func(*rand.Rand) (Table4Row, error) {
				sys, err := s.Boot(cfg, android.LayoutOriginal)
				if err != nil {
					return Table4Row{}, err
				}
				var best *core.ForkStats
				for round := 0; round < rounds; round++ {
					child, err := sys.ZygoteFork("app")
					if err != nil {
						return Table4Row{}, fmt.Errorf("experiments: table 4 %s round %d: %w", cfg.Name(), round, err)
					}
					fs := child.ForkStats
					sys.Kernel.Exit(child)
					if best == nil || fs.Cycles < best.Cycles {
						best = &fs
					}
				}
				return Table4Row{
					Kernel:        cfg.Name(),
					Cycles:        best.Cycles,
					PTPsAllocated: best.PTPsAllocated,
					SharedPTPs:    best.PTPsShared,
					PTEsCopied:    best.PTEsCopied,
				}, nil
			},
		}
	}
	rows, err := sweep.Run(s.workers(), scenarios)
	if err != nil {
		return nil, err
	}
	r := &Table4Result{Rows: rows}
	shared, stock, copied := r.Rows[0], r.Rows[1], r.Rows[2]
	r.Speedup = float64(stock.Cycles) / float64(shared.Cycles)
	r.CopiedSlowdownPct = 100 * (float64(copied.Cycles)/float64(stock.Cycles) - 1)
	return r, nil
}

// String renders the table.
func (r *Table4Result) String() string {
	t := stats.NewTable("Table 4: zygote fork performance (min over 40 rounds)",
		"Kernel", "Cycles (x10^6)", "PTPs allocated", "Shared PTPs", "PTEs copied")
	for _, row := range r.Rows {
		t.AddRow(row.Kernel,
			stats.F(float64(row.Cycles)/1e6),
			fmt.Sprintf("%d", row.PTPsAllocated),
			fmt.Sprintf("%d", row.SharedPTPs),
			fmt.Sprintf("%d", row.PTEsCopied))
	}
	return t.String() + fmt.Sprintf("shared-PTP fork speedup over stock: %.2fx (paper: 2.1x); Copied PTEs: +%.1f%% over stock (paper: +58.6%%)\n",
		r.Speedup, r.CopiedSlowdownPct)
}
