// The experiment registry: every table, figure, ablation, and study the
// harness can regenerate, keyed by the names cmd/experiments accepts for
// -only. Keeping the list here lets the command and the tests share one
// source of truth for name validation and all-experiments sweeps.

package experiments

import "fmt"

// Experiment is one runnable table or figure.
type Experiment struct {
	// Name is the identifier accepted by cmd/experiments -only.
	Name string
	// Run regenerates the result on the given session.
	Run func(*Session) (fmt.Stringer, error)
}

// Registry lists every experiment in presentation order (the order the
// paper's evaluation presents them, followed by the ablations and
// future-direction studies).
func Registry() []Experiment {
	return []Experiment{
		{"table1", func(s *Session) (fmt.Stringer, error) { return s.Table1() }},
		{"figure2", func(s *Session) (fmt.Stringer, error) { return s.Figure2() }},
		{"figure3", func(s *Session) (fmt.Stringer, error) { return s.Figure3() }},
		{"table2", func(s *Session) (fmt.Stringer, error) { return s.Table2() }},
		{"figure4", func(s *Session) (fmt.Stringer, error) { return s.Figure4() }},
		{"table3", func(s *Session) (fmt.Stringer, error) { return s.Table3() }},
		{"table4", func(s *Session) (fmt.Stringer, error) { return s.Table4() }},
		{"figure7", func(s *Session) (fmt.Stringer, error) { return s.Figure7() }},
		{"figure8", func(s *Session) (fmt.Stringer, error) { return s.Figure8() }},
		{"figure9", func(s *Session) (fmt.Stringer, error) { return s.Figure9() }},
		{"figure10", func(s *Session) (fmt.Stringer, error) { return s.Figure10() }},
		{"figure11", func(s *Session) (fmt.Stringer, error) { return s.Figure11() }},
		{"figure12", func(s *Session) (fmt.Stringer, error) { return s.Figure12() }},
		{"ptecopies", func(s *Session) (fmt.Stringer, error) { return s.PTECopies() }},
		{"figure13", func(s *Session) (fmt.Stringer, error) { return s.Figure13() }},
		{"ablation-stack", func(s *Session) (fmt.Stringer, error) { return s.StackSharingAblation() }},
		{"ablation-refcopy", func(s *Session) (fmt.Stringer, error) { return s.CopyReferencedAblation() }},
		{"ablation-l1wp", func(s *Session) (fmt.Stringer, error) { return s.L1WriteProtectAblation() }},
		{"ablation-largepages", func(s *Session) (fmt.Stringer, error) { return s.LargePageStudy() }},
		{"future-domainmatch", func(s *Session) (fmt.Stringer, error) { return s.DomainMatchStudy() }},
		{"future-grouping", func(s *Session) (fmt.Stringer, error) { return s.SchedulerGrouping() }},
		{"scalability", func(s *Session) (fmt.Stringer, error) { return s.Scalability() }},
		{"cache-pollution", func(s *Session) (fmt.Stringer, error) { return s.CachePollution() }},
		{"smp", func(s *Session) (fmt.Stringer, error) { return s.SMP() }},
		{"chrome-family", func(s *Session) (fmt.Stringer, error) { return s.ChromeFamily() }},
	}
}

// Names returns the registered experiment names in presentation order.
func Names() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, e := range reg {
		names[i] = e.Name
	}
	return names
}
