// Studies of the paper's future directions (Sections 3.2.3 and 6):
// hardware that requires a domain match for a TLB hit, which removes the
// domain-fault overhead non-zygote processes pay when they trip over
// global entries; and scheduler grouping, the software fallback for
// architectures without a domain protection model.

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/android"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/vm"
)

// DomainMatchStudy runs a zygote application and a non-zygote daemon that
// alternate on one core and overlap in virtual addresses, under the
// shared-TLB kernel. Without hardware domain matching, every daemon access
// that matches a global zygote-domain entry raises a domain-fault
// exception whose handler flushes the matching entries; with it, the
// denied entry simply does not hit and the walk proceeds directly.
func (s *Session) DomainMatchStudy() (*AblationResult, error) {
	measure := func(hwMatch bool) (domainFaults, daemonCycles float64, err error) {
		sys, err := s.Boot(core.SharedPTPTLB(), android.LayoutOriginal)
		if err != nil {
			return 0, 0, err
		}
		k := sys.Kernel
		k.CPU.Main.DomainMatchInHW = hwMatch
		k.CPU.MicroI.DomainMatchInHW = hwMatch
		k.CPU.MicroD.DomainMatchInHW = hwMatch

		app, err := sys.ZygoteFork("app")
		if err != nil {
			return 0, 0, err
		}
		daemon, err := k.NewProcess("daemon")
		if err != nil {
			return 0, 0, err
		}
		// The daemon's binary overlaps the zygote's library area: the
		// pages most likely to be resident as global TLB entries.
		lib0 := sys.CodePageVA(s.Universe().AppProcessPages) // first library page
		f := vm.NewFile(k.Phys, "daemon-bin", 256*arch.PageSize)
		if err := k.Mmap(daemon, &vm.VMA{
			Start: arch.PageBase(lib0), End: arch.PageBase(lib0) + 256*arch.PageSize,
			Prot: vm.ProtRead | vm.ProtExec, Flags: vm.VMAPrivate, File: f, Name: "daemon-bin",
		}); err != nil {
			return 0, 0, err
		}

		rng := rand.New(rand.NewSource(5))
		zygotePages := s.Universe().ZygoteSet()[:256]
		for round := 0; round < 400; round++ {
			// App touches hot shared code, loading global entries.
			err = k.Run(app, func() error {
				for i := 0; i < 8; i++ {
					pg := zygotePages[rng.Intn(len(zygotePages))]
					if err := k.CPU.FetchBlock(sys.CodePageVA(pg), 16); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return 0, 0, err
			}
			// Daemon runs over its own (overlapping) addresses.
			err = k.Run(daemon, func() error {
				for i := 0; i < 8; i++ {
					va := arch.PageBase(lib0) + arch.VirtAddr(rng.Intn(256)*arch.PageSize)
					if err := k.CPU.FetchBlock(va, 16); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return 0, 0, err
			}
		}
		return float64(daemon.Ctx.Stats.DomainFaults), float64(daemon.Ctx.Stats.Cycles), nil
	}
	b, v, err := sweep.Pair(s.workers(), "future-domainmatch", func(variant bool) (pairMeasure, error) {
		faults, cycles, err := measure(variant)
		return pairMeasure{a: faults, b: cycles}, err
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name: "Hardware domain match for TLB hits (Sections 3.2.3/6)",
		Rows: []AblationRow{
			{Metric: "daemon domain faults", Baseline: b.a, Variant: v.a},
			{Metric: "daemon cycles", Baseline: b.b, Variant: v.b},
		},
		Footnote: "requiring a domain match in hardware removes the exception-and-flush overhead entirely",
	}, nil
}

// SchedulerGroupingResult compares context-switch orderings for the
// software fallback of Section 3.2.3.
type SchedulerGroupingResult struct {
	// Interleaved and Grouped are the total app-side instruction
	// main-TLB stall cycles under each schedule.
	Interleaved uint64
	Grouped     uint64
	// FlushesInterleaved / FlushesGrouped count the protective full
	// flushes each schedule forced.
	FlushesInterleaved int
	FlushesGrouped     int
}

// SchedulerGrouping models TLB sharing on an architecture WITHOUT a
// domain protection model: safety then demands flushing the whole TLB on
// every switch from a zygote-like process to a non-zygote process. The
// paper suggests separating the two kinds of processes into groups and
// prioritizing switches within a group. The study schedules three zygote
// applications and three daemons for the same total quanta, interleaved
// versus grouped, and measures the applications' TLB stalls and the
// number of protective flushes.
func (s *Session) SchedulerGrouping() (*SchedulerGroupingResult, error) {
	// Both schedules start from the same six processes, so the setup is a
	// warmup phase in the checkpoint fork tree: simulated once, forked for
	// each variant. The schedule below re-derives the process handles by
	// name because a fork mints fresh Process objects.
	setup := func(sys *android.System) error {
		k := sys.Kernel
		for i := 0; i < 3; i++ {
			if _, err := sys.ZygoteFork(fmt.Sprintf("app%d", i)); err != nil {
				return err
			}
		}
		for i := 0; i < 3; i++ {
			p, err := k.NewProcess(fmt.Sprintf("daemon%d", i))
			if err != nil {
				return err
			}
			base := arch.VirtAddr(0x10000000 + i*0x100000)
			f := vm.NewFile(k.Phys, fmt.Sprintf("daemon%d-bin", i), 64*arch.PageSize)
			if err := k.Mmap(p, &vm.VMA{Start: base, End: base + 64*arch.PageSize,
				Prot: vm.ProtRead | vm.ProtExec, Flags: vm.VMAPrivate, File: f, Name: "bin"}); err != nil {
				return err
			}
		}
		return nil
	}

	run := func(grouped bool) (uint64, int, error) {
		sys, err := s.BootWarm(core.SharedPTPTLB(), android.LayoutOriginal, android.Options{},
			"grouping-setup", setup)
		if err != nil {
			return 0, 0, err
		}
		k := sys.Kernel

		var apps, daemons []*core.Process
		for i := 0; i < 3; i++ {
			app, err := procByName(k, fmt.Sprintf("app%d", i))
			if err != nil {
				return 0, 0, err
			}
			apps = append(apps, app)
			daemon, err := procByName(k, fmt.Sprintf("daemon%d", i))
			if err != nil {
				return 0, 0, err
			}
			daemons = append(daemons, daemon)
		}

		// Build the schedule: the same multiset of quanta either strictly
		// alternating app/daemon or grouped apps-then-daemons per epoch.
		var schedule []*core.Process
		const epochs = 60
		for e := 0; e < epochs; e++ {
			if grouped {
				schedule = append(schedule, apps...)
				schedule = append(schedule, daemons...)
			} else {
				for i := 0; i < 3; i++ {
					schedule = append(schedule, apps[i], daemons[i])
				}
			}
		}

		hot := s.Universe().ZygoteSet()[:192]
		flushes := 0
		var prev *core.Process
		for _, p := range schedule {
			// Without domains, a zygote-like -> non-zygote switch must
			// flush the whole TLB to keep the daemon off the global
			// entries.
			if prev != nil && prev.ZygoteLike() && !p.ZygoteLike() {
				k.CPU.Main.FlushAll()
				flushes++
			}
			prev = p
			quantum := func() error {
				if p.IsZygoteChild {
					for i := 0; i < 16; i++ {
						if err := k.CPU.FetchBlock(sys.CodePageVA(hot[(i*13)%len(hot)]), 16); err != nil {
							return err
						}
					}
					return nil
				}
				base := p.MM.VMAs()[0].Start
				return k.CPU.AccessBatch([]arch.RefRun{{
					VA: base, Stride: arch.VirtAddr(arch.PageSize), Count: 16,
					Kind: arch.AccessFetch, Block: 16,
				}})
			}
			if err := k.Run(p, quantum); err != nil {
				return 0, 0, err
			}
		}
		var stalls uint64
		for _, p := range apps {
			stalls += p.Ctx.Stats.ITLBStallCycles
		}
		return stalls, flushes, nil
	}

	type groupingMeasure struct {
		stalls  uint64
		flushes int
	}
	b, v, err := sweep.Pair(s.workers(), "future-grouping", func(variant bool) (groupingMeasure, error) {
		stalls, flushes, err := run(variant)
		return groupingMeasure{stalls: stalls, flushes: flushes}, err
	})
	if err != nil {
		return nil, err
	}
	return &SchedulerGroupingResult{
		Interleaved:        b.stalls,
		Grouped:            v.stalls,
		FlushesInterleaved: b.flushes,
		FlushesGrouped:     v.flushes,
	}, nil
}

// procByName finds a live process by name — the handle-recovery step
// after forking a warmed image, whose processes were created inside the
// warm phase.
func procByName(k *core.Kernel, name string) (*core.Process, error) {
	for _, p := range k.Processes() {
		if p.Name == name && p.Alive() {
			return p, nil
		}
	}
	return nil, fmt.Errorf("experiments: no live process %q in forked machine", name)
}

// String renders the study.
func (r *SchedulerGroupingResult) String() string {
	t := stats.NewTable("Scheduler grouping without a domain model (Section 3.2.3)",
		"Schedule", "App ITLB stall cycles", "Protective full flushes")
	t.AddRow("interleaved", fmt.Sprintf("%d", r.Interleaved), fmt.Sprintf("%d", r.FlushesInterleaved))
	t.AddRow("grouped", fmt.Sprintf("%d", r.Grouped), fmt.Sprintf("%d", r.FlushesGrouped))
	return t.String() + "grouping zygote-like processes cuts the flushes a domain-less architecture needs\n"
}
