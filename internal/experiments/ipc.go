// The Android IPC experiment of Section 4.2.4 (Figure 13): instruction
// main-TLB stall cycles of the Binder client and server under three
// kernels, with ASIDs disabled (full TLB flush on context switch) and
// enabled.

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// Figure13Result is the IPC TLB study.
type Figure13Result struct {
	Rows []Figure13Row
	// ClientImprovementPct / ServerImprovementPct are the reductions of
	// Shared PTP & TLB versus stock with ASIDs enabled (paper: up to
	// 36% and 19%).
	ClientImprovementPct float64
	ServerImprovementPct float64
}

// Figure13Row is one configuration's stalls, normalized to the stock
// kernel in the same ASID mode.
type Figure13Row struct {
	ASID   bool
	Kernel string
	// ClientStalls / ServerStalls are raw instruction main-TLB stall
	// cycle counts.
	ClientStalls uint64
	ServerStalls uint64
	// ClientNormPct / ServerNormPct are normalized to the stock kernel
	// of the same ASID mode (the paper normalizes to stock overall).
	ClientNormPct float64
	ServerNormPct float64
}

// Figure13 runs the Binder microbenchmark under {ASID off, on} x {stock,
// Shared PTP, Shared PTP & TLB}: six independent scenarios, each booting
// its own system, fanned out over the worker pool. Normalization to the
// stock kernel of each ASID mode happens after the merge, on the
// canonically ordered rows.
func (s *Session) Figure13() (*Figure13Result, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, fmt.Errorf("figure 13: %w", err)
	}
	kernels := []core.Config{core.Stock(), core.SharedPTP(), core.SharedPTPTLB()}
	var scenarios []sweep.Scenario[android.BinderResult]
	for _, useASID := range []bool{false, true} {
		for _, cfg := range kernels {
			useASID, cfg := useASID, cfg
			scenarios = append(scenarios, sweep.Scenario[android.BinderResult]{
				Name: fmt.Sprintf("figure13/%s/asid=%v", cfg.Name(), useASID),
				Run: func(*rand.Rand) (android.BinderResult, error) {
					sys, err := s.Boot(cfg, android.LayoutOriginal)
					if err != nil {
						return android.BinderResult{}, err
					}
					res, err := sys.RunBinder(s.Params.BinderIters, useASID)
					if err != nil {
						return android.BinderResult{}, fmt.Errorf("experiments: figure 13 %s asid=%v: %w",
							cfg.Name(), useASID, err)
					}
					return res, nil
				},
			})
		}
	}
	results, err := sweep.Run(s.workers(), scenarios)
	if err != nil {
		return nil, err
	}
	r := &Figure13Result{}
	for ai, useASID := range []bool{false, true} {
		base := results[ai*len(kernels)] // stock kernel of this ASID mode
		for ki, cfg := range kernels {
			res := results[ai*len(kernels)+ki]
			r.Rows = append(r.Rows, Figure13Row{
				ASID:          useASID,
				Kernel:        cfg.Name(),
				ClientStalls:  res.Client.ITLBStalls,
				ServerStalls:  res.Server.ITLBStalls,
				ClientNormPct: stats.Normalize(float64(base.Client.ITLBStalls), float64(res.Client.ITLBStalls)),
				ServerNormPct: stats.Normalize(float64(base.Server.ITLBStalls), float64(res.Server.ITLBStalls)),
			})
		}
	}
	for _, row := range r.Rows {
		if row.ASID && row.Kernel == "Shared PTP & TLB" {
			r.ClientImprovementPct = 100 - row.ClientNormPct
			r.ServerImprovementPct = 100 - row.ServerNormPct
		}
	}
	return r, nil
}

// String renders the figure.
func (r *Figure13Result) String() string {
	t := stats.NewTable("Figure 13: Binder IPC instruction main-TLB stall cycles",
		"ASID", "Kernel", "Client stalls", "Server stalls", "Client (% of stock)", "Server (% of stock)")
	for _, row := range r.Rows {
		mode := "disabled"
		if row.ASID {
			mode = "enabled"
		}
		t.AddRow(mode, row.Kernel,
			fmt.Sprintf("%d", row.ClientStalls), fmt.Sprintf("%d", row.ServerStalls),
			stats.Pct(row.ClientNormPct), stats.Pct(row.ServerNormPct))
	}
	return t.String() + fmt.Sprintf("TLB sharing improvement with ASIDs: client %.1f%%, server %.1f%% (paper: up to 36%% / 19%%)\n",
		r.ClientImprovementPct, r.ServerImprovementPct)
}
