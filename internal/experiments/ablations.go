// Ablations for the design tradeoffs discussed in Section 3.1.3: sharing
// the stack's PTPs, copying only referenced PTEs on unsharing, and the
// hypothetical x86-style level-1 write protection that would remove the
// per-PTE write-protect pass from fork.

package experiments

import (
	"fmt"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// pairMeasure is the common two-quantity result of the ablation
// measurements, run as a baseline/variant scenario pair.
type pairMeasure struct{ a, b float64 }

// AblationResult compares a design variant against the baseline shared-
// PTP kernel.
type AblationResult struct {
	Name     string
	Rows     []AblationRow
	Footnote string
}

// AblationRow is one measured quantity.
type AblationRow struct {
	Metric   string
	Baseline float64
	Variant  float64
}

// StackSharingAblation measures what sharing the stack's PTP at fork buys
// (nothing: the stack is written immediately, so the share is followed by
// an unshare).
func (s *Session) StackSharingAblation() (*AblationResult, error) {
	measure := func(cfg core.Config) (forkCycles, faultsToFirstWrite float64, err error) {
		sys, err := s.Boot(cfg, android.LayoutOriginal)
		if err != nil {
			return 0, 0, err
		}
		child, err := sys.ZygoteFork("app")
		if err != nil {
			return 0, 0, err
		}
		cyc0 := child.Ctx.Stats.Cycles
		err = sys.Kernel.Run(child, func() error {
			return sys.Kernel.CPU.Write(sys.StackTouchVA(0))
		})
		if err != nil {
			return 0, 0, err
		}
		return float64(child.ForkStats.Cycles), float64(child.Ctx.Stats.Cycles - cyc0), nil
	}
	b, v, err := sweep.Pair(s.workers(), "ablation-stack", func(variant bool) (pairMeasure, error) {
		cfg := core.SharedPTP()
		cfg.ShareStackPTPs = variant
		fork, write, err := measure(cfg)
		return pairMeasure{a: fork, b: write}, err
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name: "Stack PTP sharing (design choice: do not share the stack)",
		Rows: []AblationRow{
			{Metric: "fork cycles", Baseline: b.a, Variant: v.a},
			{Metric: "first stack write cycles", Baseline: b.b, Variant: v.b},
		},
		Footnote: "sharing the stack trades a cheaper fork for an immediate unshare on the first write",
	}, nil
}

// CopyReferencedAblation measures the unsharing cost with the full-copy
// policy versus copying only referenced (or fork-copied) PTEs.
func (s *Session) CopyReferencedAblation() (*AblationResult, error) {
	measure := func(cfg core.Config) (ptesCopied, extraFaults float64, err error) {
		sys, err := s.Boot(cfg, android.LayoutOriginal)
		if err != nil {
			return 0, 0, err
		}
		prof := workload.BuildProfile(s.Universe(), mustSpecP(s, "Adobe Reader"))
		app, _, err := sys.LaunchApp(prof, 1)
		if err != nil {
			return 0, 0, err
		}
		rs, err := app.Run()
		if err != nil {
			return 0, 0, err
		}
		defer sys.Kernel.Exit(app.Proc)
		return float64(rs.PTEsCopied), float64(rs.FileFaults), nil
	}
	b, v, err := sweep.Pair(s.workers(), "ablation-refcopy", func(variant bool) (pairMeasure, error) {
		cfg := core.SharedPTP()
		cfg.CopyOnlyReferenced = variant
		copied, faults, err := measure(cfg)
		return pairMeasure{a: copied, b: faults}, err
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name: "Unshare copy policy: all valid PTEs vs referenced-only (Section 3.1.3)",
		Rows: []AblationRow{
			{Metric: "PTEs copied per run", Baseline: b.a, Variant: v.a},
			{Metric: "file faults per run", Baseline: b.b, Variant: v.b},
		},
		Footnote: "referenced-only copying shrinks unshare cost; skipped PTEs simply soft-fault again",
	}, nil
}

// L1WriteProtectAblation models the hardware support discussion: on x86,
// write protection in the level-1 entry covers the whole PTP, so fork
// would not need to write-protect every level-2 PTE. The variant zeroes
// the per-PTE protect cost.
func (s *Session) L1WriteProtectAblation() (*AblationResult, error) {
	measure := func(perPTEProtect int) (float64, error) {
		sys, err := s.Boot(core.SharedPTP(), android.LayoutOriginal)
		if err != nil {
			return 0, err
		}
		sys.Kernel.ForkCosts.PerPTEProtect = perPTEProtect
		child, err := sys.ZygoteFork("app") // first fork pays the protect pass
		if err != nil {
			return 0, err
		}
		defer sys.Kernel.Exit(child)
		return float64(child.ForkStats.Cycles), nil
	}
	base, variant, err := sweep.Pair(s.workers(), "ablation-l1wp", func(variant bool) (float64, error) {
		if variant {
			return measure(0)
		}
		return measure(core.DefaultForkCosts().PerPTEProtect)
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name: "First-share fork cost with x86-style level-1 write protection",
		Rows: []AblationRow{
			{Metric: "first zygote fork cycles", Baseline: base, Variant: variant},
		},
		Footnote: "with PDE-level write protection the per-PTE write-protect pass at first share disappears",
	}, nil
}

func mustSpecP(s *Session, name string) workload.AppSpec {
	spec, err := workload.SpecByName(name)
	if err != nil {
		panic(err)
	}
	return spec
}

// String renders the ablation.
func (r *AblationResult) String() string {
	t := stats.NewTable("Ablation: "+r.Name, "Metric", "Baseline", "Variant", "Delta")
	for _, row := range r.Rows {
		delta := "n/a"
		if row.Baseline != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(row.Variant-row.Baseline)/row.Baseline)
		}
		t.AddRow(row.Metric, stats.F(row.Baseline), stats.F(row.Variant), delta)
	}
	return t.String() + r.Footnote + "\n"
}

// LargePageStudy quantifies Section 2.3.3's tradeoff on the live system:
// mapping the ART boot image with 64KB large pages cuts instruction
// main-TLB misses (one entry covers sixteen 4KB pages) but makes the
// whole image resident, wasting physical memory on the sparsely accessed
// chunks. Because ARM large-page mappings are ordinary level-2 entries,
// the PTPs holding them are shared at fork like any others — large pages
// and shared address translation compose.
func (s *Session) LargePageStudy() (*AblationResult, error) {
	measure := func(large bool) (residentMB, itlbMisses, sharedPTPs float64, err error) {
		sys, err := s.BootOpts(core.SharedPTP(), android.LayoutOriginal,
			android.Options{JavaLargePages: large})
		if err != nil {
			return 0, 0, 0, err
		}
		prof := workload.BuildProfile(s.Universe(), mustSpecP(s, "Google Calendar"))
		app, _, err := sys.LaunchApp(prof, 1)
		if err != nil {
			return 0, 0, 0, err
		}
		rs, err := app.Run()
		if err != nil {
			return 0, 0, 0, err
		}
		defer sys.Kernel.Exit(app.Proc)
		resident := float64(sys.JavaImageResidentPages()) * 4096 / (1 << 20)
		return resident, float64(app.Proc.Ctx.Stats.ITLBMainMisses), float64(rs.PTPsShared), nil
	}
	type lpMeasure struct{ resident, misses, shared float64 }
	b, v, err := sweep.Pair(s.workers(), "ablation-largepages", func(variant bool) (lpMeasure, error) {
		resident, misses, shared, err := measure(variant)
		return lpMeasure{resident: resident, misses: misses, shared: shared}, err
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name: "64KB large pages for the ART boot image (Section 2.3.3)",
		Rows: []AblationRow{
			{Metric: "boot image resident MB", Baseline: b.resident, Variant: v.resident},
			{Metric: "app instruction main-TLB misses", Baseline: b.misses, Variant: v.misses},
			{Metric: "shared PTPs at end of run", Baseline: b.shared, Variant: v.shared},
		},
		Footnote: "large pages trade physical memory for TLB reach; their PTPs still share at fork",
	}, nil
}
