// Scalability studies for the claims of Section 1: with private page
// tables, the memory spent on translation structures for shared regions
// "grows linearly with the number of processes", and the shared cache
// fills with duplicated PTE lines. Shared PTPs make both costs constant
// in the number of sharers.

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/android"
	"repro/internal/arch"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// ScalabilityResult reports page-table memory as the process count grows.
type ScalabilityResult struct {
	Rows []ScalabilityRow
}

// ScalabilityRow is one process-count measurement.
type ScalabilityRow struct {
	// Processes is the number of concurrently live applications.
	Processes int
	// StockPTPKB and SharedPTPKB are the physical KB of page-table
	// pages in use under each kernel (excluding the 16KB root tables,
	// which are inherently per-process).
	StockPTPKB  int
	SharedPTPKB int
}

// Scalability boots both kernels and keeps 1..32 forked applications
// alive simultaneously, measuring the physical memory consumed by
// page-table pages. Under the stock kernel every child gets private
// copies of the PTPs covering its (identical) inherited address space;
// under shared PTPs the translation structures for shared code are paid
// once, so the curve flattens.
func (s *Session) Scalability() (*ScalabilityResult, error) {
	counts := []int{1, 2, 4, 8, 16, 32}

	measure := func(cfg core.Config, n int) (int, error) {
		sys, err := s.helloSystem(cfg, n)
		if err != nil {
			return 0, err
		}
		frames := sys.Kernel.Phys.InUseByKind(mem.FramePageTable)
		// Remove the per-process root tables (4 frames each, plus the
		// zygote's) to isolate the level-2 PTPs the paper counts.
		frames -= 4 * (n + 1)
		return frames * arch.PageSize / 1024, nil
	}

	// One scenario per (kernel, process count): 12 independent boots.
	var scenarios []sweep.Scenario[int]
	for _, n := range counts {
		for _, cfg := range []core.Config{core.Stock(), core.SharedPTP()} {
			n, cfg := n, cfg
			scenarios = append(scenarios, sweep.Scenario[int]{
				Name: fmt.Sprintf("scalability/%s/%d", cfg.Name(), n),
				Run:  func(*rand.Rand) (int, error) { return measure(cfg, n) },
			})
		}
	}
	kb, err := sweep.Run(s.workers(), scenarios)
	if err != nil {
		return nil, err
	}
	r := &ScalabilityResult{}
	for i, n := range counts {
		r.Rows = append(r.Rows, ScalabilityRow{Processes: n, StockPTPKB: kb[2*i], SharedPTPKB: kb[2*i+1]})
	}
	return r, nil
}

// helloSystem returns a machine with n hello-world applications launched
// and still alive — the scalability measurement state. With checkpoints
// it is a fork of the depth-n node of the launch chain (see helloImage);
// the whole 1..32 curve then costs 32 launches instead of 63, and the
// fork-vs-fresh invariant applied link by link makes the result
// byte-identical to the NoCheckpoint path, which boots fresh and runs
// all n launches inline.
func (s *Session) helloSystem(cfg core.Config, n int) (*android.System, error) {
	prof := workload.BuildProfile(s.Universe(), workload.HelloWorldSpec())
	if s.NoCheckpoint {
		sys, err := s.Boot(cfg, android.LayoutOriginal)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			// Keep the process alive: the point is concurrent sharers.
			if _, _, err := sys.LaunchApp(prof, int64(i)); err != nil {
				return nil, err
			}
		}
		return sys, nil
	}
	img, err := s.helloImage(cfg, prof, n)
	if err != nil {
		return nil, err
	}
	return img.Fork(), nil
}

// helloImage resolves the depth-n node of the hello-world launch chain:
// node 0 is the plain boot image and node i+1 derives from node i by
// launching one more app. Each link is keyed "hello-launch/i", so
// different process counts share every common prefix of the chain — a
// fork-of-a-fork tree 32 deep at the largest count — and every interior
// node is an immutable image that no measurement ever runs.
func (s *Session) helloImage(cfg core.Config, prof *workload.Profile, n int) (*checkpoint.Image, error) {
	ckpt := s.ckptCache()
	u := s.Universe()
	// baseKey is deliberately a separate, never-reassigned variable: the
	// root thunk closes over it, and closing over the mutated chain key
	// would make the root resolve to its own caller's entry and deadlock.
	bootOpts := s.bootOptions(android.Options{})
	baseKey := checkpoint.Key(cfg, android.LayoutOriginal, u, bootOpts)
	node := func() (*checkpoint.Image, error) {
		return ckpt.Image(baseKey, func() (*android.System, error) {
			return android.BootOpts(cfg, android.LayoutOriginal, u, bootOpts)
		})
	}
	key := baseKey
	for i := 0; i < n; i++ {
		i, parentKey, parent := i, key, node
		warmKey := fmt.Sprintf("hello-launch/%d", i)
		key = checkpoint.DerivedKey(parentKey, warmKey)
		node = func() (*checkpoint.Image, error) {
			return ckpt.Derived(parentKey, warmKey, parent, func(sys *android.System) error {
				_, _, err := sys.LaunchApp(prof, int64(i))
				return err
			})
		}
	}
	return node()
}

// String renders the study.
func (r *ScalabilityResult) String() string {
	t := stats.NewTable("Scalability: page-table memory vs concurrent applications (Section 1)",
		"Processes", "Stock PTP KB", "Shared PTP KB", "Saving")
	for _, row := range r.Rows {
		saving := 100 * (1 - float64(row.SharedPTPKB)/float64(row.StockPTPKB))
		t.AddRow(fmt.Sprintf("%d", row.Processes),
			fmt.Sprintf("%d", row.StockPTPKB),
			fmt.Sprintf("%d", row.SharedPTPKB),
			stats.Pct(saving))
	}
	return t.String() + "private page tables grow linearly with sharers; shared PTPs flatten the curve\n"
}

// CachePollutionResult reports the Figure 1 effect: duplicated PTE cache
// lines in the shared L2.
type CachePollutionResult struct {
	// Processes is the number of applications walked.
	Processes int
	// StockPTELines and SharedPTELines are the distinct L2 cache lines
	// holding leaf PTEs after every process has translated the same
	// shared-code working set.
	StockPTELines  int
	SharedPTELines int
}

// CachePollution measures how many distinct L2 lines the hardware page
// walker touches when eight processes each walk the same 512 pages of
// zygote-preloaded code. With private page tables every process's walks
// load its own PTE copies into the shared L2, displacing other data;
// with shared PTPs all processes walk the same physical words.
func (s *Session) CachePollution() (*CachePollutionResult, error) {
	const nProcs = 8
	const nPages = 512

	measure := func(cfg core.Config) (int, error) {
		sys, err := s.Boot(cfg, android.LayoutOriginal)
		if err != nil {
			return 0, err
		}
		k := sys.Kernel
		pages := s.Universe().ZygoteSet()[:nPages]

		var apps []*core.Process
		for i := 0; i < nProcs; i++ {
			p, err := sys.ZygoteFork(fmt.Sprintf("app%d", i))
			if err != nil {
				return 0, err
			}
			apps = append(apps, p)
		}
		// Record the distinct physical lines holding the leaf PTEs each
		// process's walker reads (line size 32B).
		lines := make(map[arch.PhysAddr]bool)
		for _, p := range apps {
			err := k.Run(p, func() error {
				for _, pg := range pages {
					va := sys.CodePageVA(pg)
					if err := k.CPU.Fetch(va); err != nil {
						return err
					}
					geo := p.MM.PT.Geometry()
					l1 := p.MM.PT.Slot(geo.Slot(va))
					pa := l1.Table.PTEPhysAddr(geo.LeafIndex(va))
					lines[pa&^31] = true
				}
				return nil
			})
			if err != nil {
				return 0, err
			}
		}
		return len(lines), nil
	}

	stock, shared, err := sweep.Pair(s.workers(), "cache-pollution", func(variant bool) (int, error) {
		if variant {
			return measure(core.SharedPTP())
		}
		return measure(core.Stock())
	})
	if err != nil {
		return nil, err
	}
	return &CachePollutionResult{Processes: nProcs, StockPTELines: stock, SharedPTELines: shared}, nil
}

// String renders the study.
func (r *CachePollutionResult) String() string {
	t := stats.NewTable("Shared-cache pollution by duplicated PTEs (Figure 1 / Section 1)",
		"Kernel", "Distinct L2 PTE lines")
	t.AddRow("Stock Android (private tables)", fmt.Sprintf("%d", r.StockPTELines))
	t.AddRow("Shared PTP", fmt.Sprintf("%d", r.SharedPTELines))
	return t.String() + fmt.Sprintf("%d processes walking the same shared code: private tables occupy %.1fx the L2 lines\n",
		r.Processes, float64(r.StockPTELines)/float64(r.SharedPTELines))
}

// SMPResult reports the four-core study.
type SMPResult struct {
	// Shootdowns counts TLB shootdown IPIs per kernel.
	StockShootdowns  uint64
	SharedShootdowns uint64
	// StockFaults and SharedFaults are the page faults all four apps
	// took; sharing removes the cross-core duplicates.
	StockFaults  uint64
	SharedFaults uint64
}

// SMP runs four applications pinned to the four cores of the evaluation
// platform, interleaving their quanta, under the stock and shared-PTP
// kernels. It reports the TLB shootdown IPIs each kernel issued (sharing
// adds shootdowns when PTPs unshare, stock pays them for fork-time COW)
// and the page faults taken (sharing eliminates the cross-core soft
// faults: a PTE populated by the app on core 0 serves the app on core 3).
func (s *Session) SMP() (*SMPResult, error) {
	measure := func(cfg core.Config) (uint64, uint64, error) {
		sys, err := s.BootOpts(cfg, android.LayoutOriginal, android.Options{CPUs: 4})
		if err != nil {
			return 0, 0, err
		}
		k := sys.Kernel
		var apps []*core.Process
		for i := 0; i < 4; i++ {
			p, err := sys.ZygoteFork(fmt.Sprintf("app%d", i))
			if err != nil {
				return 0, 0, err
			}
			apps = append(apps, p)
		}
		pages := s.Universe().ZygoteSet()[:1024]
		// Interleaved quanta: each app covers a slice of the shared code
		// on its own core, with occasional heap writes (unshare triggers).
		for round := 0; round < 16; round++ {
			for ci, p := range apps {
				c := k.CPUAt(ci)
				lo := (round*4 + ci) * len(pages) / 64
				hi := (round*4 + ci + 1) * len(pages) / 64
				err := k.RunOn(ci, p, func() error {
					for _, pg := range pages[lo:hi] {
						if err := c.Fetch(sys.CodePageVA(pg)); err != nil {
							return err
						}
					}
					return c.Write(heapWriteVA(round))
				})
				if err != nil {
					return 0, 0, err
				}
			}
		}
		// Read the counters through the uniform obs.Source surface: the
		// kernel and each address space expose snapshots rather than
		// having the campaign poke component-private fields.
		var faults uint64
		for _, p := range apps {
			faults += p.MM.Snapshot()["page_faults"]
		}
		return k.Snapshot()["tlb_shootdowns"], faults, nil
	}
	type smpMeasure struct{ shootdowns, faults uint64 }
	stock, shared, err := sweep.Pair(s.workers(), "smp", func(variant bool) (smpMeasure, error) {
		cfg := core.Stock()
		if variant {
			cfg = core.SharedPTP()
		}
		sd, f, err := measure(cfg)
		return smpMeasure{shootdowns: sd, faults: f}, err
	})
	if err != nil {
		return nil, err
	}
	return &SMPResult{
		StockShootdowns: stock.shootdowns, SharedShootdowns: shared.shootdowns,
		StockFaults: stock.faults, SharedFaults: shared.faults,
	}, nil
}

// heapWriteVA spreads the quantum's heap write across the zygote heap.
func heapWriteVA(round int) arch.VirtAddr {
	return 0x20000000 + arch.VirtAddr(round)*arch.PageSize
}

// String renders the study.
func (r *SMPResult) String() string {
	t := stats.NewTable("SMP: four cores, four applications (TLB shootdowns and faults)",
		"Kernel", "TLB shootdown IPIs", "Page faults")
	t.AddRow("Stock Android", fmt.Sprintf("%d", r.StockShootdowns), fmt.Sprintf("%d", r.StockFaults))
	t.AddRow("Shared PTP", fmt.Sprintf("%d", r.SharedShootdowns), fmt.Sprintf("%d", r.SharedFaults))
	return t.String() + "sharing pays shootdowns for unshares but removes the cross-core soft faults\n"
}

// ChromeFamilyResult reports intra-application-family sharing.
type ChromeFamilyResult struct {
	// Pages is the browser's app-specific library footprint the helper
	// executes.
	Pages int
	// StockFaults / SharedFaults are the helper process's page faults
	// over that footprint under each kernel.
	StockFaults  uint64
	SharedFaults uint64
}

// ChromeFamily models what the suite's three independent Chrome profiles
// leave out: the real browser forks its sandbox and privilege helpers
// from the browser process itself, so the helpers inherit the browser's
// application-specific libraries exactly as applications inherit the
// zygote's. Under shared PTPs the helper's fetches of the browser's
// already-executed library pages take no faults; under the stock kernel
// it refaults every page.
func (s *Session) ChromeFamily() (*ChromeFamilyResult, error) {
	measure := func(cfg core.Config) (int, uint64, error) {
		sys, err := s.Boot(cfg, android.LayoutOriginal)
		if err != nil {
			return 0, 0, err
		}
		k := sys.Kernel
		spec, err := workload.SpecByName("Chrome")
		if err != nil {
			return 0, 0, err
		}
		prof := workload.BuildProfile(s.Universe(), spec)
		browser, _, err := sys.LaunchApp(prof, 1)
		if err != nil {
			return 0, 0, err
		}
		if _, err := browser.Run(); err != nil {
			return 0, 0, err
		}
		// The browser forks its sandbox helper, which executes the
		// browser's own (inherited) library mappings.
		pages := browser.OtherLibPages()
		helper, err := k.Fork(browser.Proc, "chrome-sandbox-helper")
		if err != nil {
			return 0, 0, err
		}
		err = k.Run(helper, func() error {
			// The inherited library pages are contiguous within each
			// mapping; the stream encoder folds them into a few runs.
			var rs arch.RefStream
			for _, va := range pages {
				rs.Add(va, arch.AccessFetch, 16)
			}
			return k.CPU.AccessBatch(rs.Runs())
		})
		if err != nil {
			return 0, 0, err
		}
		return len(pages), helper.MM.Snapshot()["file_faults"], nil
	}
	type familyMeasure struct {
		pages  int
		faults uint64
	}
	stock, shared, err := sweep.Pair(s.workers(), "chrome-family", func(variant bool) (familyMeasure, error) {
		cfg := core.Stock()
		if variant {
			cfg = core.SharedPTP()
		}
		n, f, err := measure(cfg)
		return familyMeasure{pages: n, faults: f}, err
	})
	if err != nil {
		return nil, err
	}
	return &ChromeFamilyResult{Pages: stock.pages, StockFaults: stock.faults, SharedFaults: shared.faults}, nil
}

// String renders the study.
func (r *ChromeFamilyResult) String() string {
	t := stats.NewTable("Chrome family: helper forked from the browser process",
		"Kernel", "Helper faults over browser's libs")
	t.AddRow("Stock Android", fmt.Sprintf("%d", r.StockFaults))
	t.AddRow("Shared PTP", fmt.Sprintf("%d", r.SharedFaults))
	return t.String() + fmt.Sprintf("the helper executes %d inherited library pages; sharing hands it the browser's translations\n", r.Pages)
}
