package experiments

import (
	"strings"
	"testing"

	"repro/internal/android"
)

// One session for the whole test binary: the sweeps are cached, so every
// figure test reuses them (as the paper derives several figures from one
// measurement campaign).
var session = New(Quick())

func TestTable1(t *testing.T) {
	r, err := session.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.UserPct < 0 || row.UserPct > 100 {
			t.Errorf("%s: UserPct = %v", row.App, row.UserPct)
		}
		// The measured split should track the paper's within a few points.
		if d := row.UserPct - row.PaperUser; d < -10 || d > 10 {
			t.Errorf("%s: measured %v vs paper %v", row.App, row.UserPct, row.PaperUser)
		}
	}
	if !strings.Contains(r.String(), "Table 1") {
		t.Error("rendering")
	}
}

func TestFigure2(t *testing.T) {
	r, err := session.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 11 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Shared code dominates the instruction footprint (paper: 92.8%).
	if r.AvgSharedPct < 80 || r.AvgSharedPct > 100 {
		t.Errorf("AvgSharedPct = %.1f, want ~92.8", r.AvgSharedPct)
	}
	t.Logf("shared-code footprint share: %.1f%% (paper: 92.8%%)", r.AvgSharedPct)
}

func TestFigure3(t *testing.T) {
	r, err := session.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgSharedPct < 85 || r.AvgSharedPct > 100 {
		t.Errorf("AvgSharedPct = %.1f, want ~98", r.AvgSharedPct)
	}
	t.Logf("shared-code fetch share: %.1f%% (paper: 98%%)", r.AvgSharedPct)
}

func TestTable2(t *testing.T) {
	r, err := session.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 4 {
		t.Fatalf("apps = %d", len(r.Apps))
	}
	// All-shared intersections include the zygote-preloaded ones.
	if r.AvgAll < r.AvgZygote {
		t.Errorf("AvgAll %.1f < AvgZygote %.1f", r.AvgAll, r.AvgZygote)
	}
	if r.AvgZygote < 15 || r.AvgZygote > 60 {
		t.Errorf("AvgZygote = %.1f, want the paper's regime (~37.9)", r.AvgZygote)
	}
	t.Logf("all-pairs averages: %.1f%% zygote (paper 37.9%%), %.1f%% all (paper 45.7%%)", r.AvgZygote, r.AvgAll)
}

func TestFigure4(t *testing.T) {
	r, err := session.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 11 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// 64KB pages waste memory for this footprint (paper: 2.6x).
	if r.AvgWasteFactor < 1.5 {
		t.Errorf("AvgWasteFactor = %.2f, want > 1.5", r.AvgWasteFactor)
	}
	// The union is denser than individual apps, but still sparse.
	if r.Union.Waste <= 1 {
		t.Errorf("union waste = %.2f, want > 1", r.Union.Waste)
	}
	t.Logf("average 64KB/4KB waste: %.2fx (paper 2.6x); union %.2fx", r.AvgWasteFactor, r.Union.Waste)
}

func TestTable3(t *testing.T) {
	r, err := session.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 11 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Cold != row.PaperCold {
			t.Errorf("%s: cold = %d, want %d (cold start inherits exactly the zygote-populated subset)",
				row.App, row.Cold, row.PaperCold)
		}
		if row.Warm < row.Cold {
			t.Errorf("%s: warm %d < cold %d", row.App, row.Warm, row.Cold)
		}
		// Warm approaches the full footprint: the first run populated the
		// rest, minus the pages that landed in PTPs the app had already
		// unshared (its private copies die with it).
		if row.Warm < row.PaperWarm*9/10 {
			t.Errorf("%s: warm = %d, want >= %d", row.App, row.Warm, row.PaperWarm*9/10)
		}
		if row.Warm > row.PaperWarm+700 {
			t.Errorf("%s: warm = %d suspiciously above footprint %d", row.App, row.Warm, row.PaperWarm)
		}
	}
}

func TestTable4(t *testing.T) {
	r, err := session.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Speedup < 1.7 {
		t.Errorf("fork speedup = %.2f, want ~2.1 (paper)", r.Speedup)
	}
	if r.CopiedSlowdownPct < 30 {
		t.Errorf("copied slowdown = %.1f%%, want ~58.6%%", r.CopiedSlowdownPct)
	}
	shared := r.Rows[0]
	if shared.PTPsAllocated != 1 || shared.PTEsCopied > 20 {
		t.Errorf("shared fork row = %+v", shared)
	}
	t.Logf("fork: speedup %.2fx (paper 2.1x), copied +%.1f%% (paper +58.6%%)", r.Speedup, r.CopiedSlowdownPct)
}

func TestFigures789(t *testing.T) {
	f7, err := session.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Rows) != 6 {
		t.Fatalf("figure 7 rows = %d", len(f7.Rows))
	}
	if f7.SpeedupPctOriginal <= 0 || f7.SpeedupPct2MB <= 0 {
		t.Errorf("launch speedups = %.1f%% / %.1f%%, want positive (paper 7%%/10%%)",
			f7.SpeedupPctOriginal, f7.SpeedupPct2MB)
	}
	t.Logf("launch speedup: %.1f%% original (paper 7%%), %.1f%% 2MB (paper 10%%)",
		f7.SpeedupPctOriginal, f7.SpeedupPct2MB)

	f8, err := session.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if f8.ReductionPctOriginal <= 0 {
		t.Errorf("icache stall reduction = %.1f%%, want positive (paper 15%%)", f8.ReductionPctOriginal)
	}
	t.Logf("icache stall reduction: %.1f%% original (paper 15%%), %.1f%% 2MB (paper 24%%)",
		f8.ReductionPctOriginal, f8.ReductionPct2MB)

	f9, err := session.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Figure9Row{}
	for _, row := range f9.Rows {
		byLabel[row.Config] = row
	}
	stock := byLabel["Stock Android"]
	sharedTLB := byLabel["Shared PTP & TLB"]
	if stock.FileFaults < 1500 || stock.FileFaults > 2400 {
		t.Errorf("stock launch faults = %.0f, want ~1,900", stock.FileFaults)
	}
	if sharedTLB.FaultsNormPct > 15 {
		t.Errorf("shared launch faults = %.1f%% of stock, want ~6%%", sharedTLB.FaultsNormPct)
	}
	if sharedTLB.PTPsNormPct >= 100 {
		t.Errorf("shared launch PTPs = %.1f%% of stock, want < 100%%", sharedTLB.PTPsNormPct)
	}
	t.Logf("launch: faults %.0f -> %.0f (paper 1,900 -> 110); PTPs %.1f -> %.1f (paper 72 -> 23)",
		stock.FileFaults, sharedTLB.FileFaults, stock.PTPs, sharedTLB.PTPs)
}

func TestFigures101112(t *testing.T) {
	f10, err := session.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Rows) != 11 {
		t.Fatalf("figure 10 rows = %d", len(f10.Rows))
	}
	if f10.AvgReductionPct < 20 || f10.AvgReductionPct > 80 {
		t.Errorf("avg fault reduction = %.1f%%, want the paper's regime (38%%)", f10.AvgReductionPct)
	}
	for _, row := range f10.Rows {
		if row.ReductionPct <= 0 {
			t.Errorf("%s: reduction %.1f%%, want positive", row.App, row.ReductionPct)
		}
	}
	t.Logf("avg file-fault reduction: %.1f%% (paper 38%%)", f10.AvgReductionPct)

	f11, err := session.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if f11.AvgReductionOriginal <= 0 {
		t.Errorf("PTP reduction (orig) = %.1f%%, want positive (paper 35%%)", f11.AvgReductionOriginal)
	}
	t.Logf("avg PTP reduction: %.1f%% original (paper 35%%), %.1f%% 2MB (paper 26%%)",
		f11.AvgReductionOriginal, f11.AvgReduction2MB)

	f12, err := session.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if f12.Avg2MB <= f12.AvgOriginal {
		t.Errorf("2MB layout should share more PTPs: %.1f%% vs %.1f%%", f12.Avg2MB, f12.AvgOriginal)
	}
	t.Logf("shared PTPs: %.1f%% original (paper 39%%), %.1f%% 2MB (paper 60%%)",
		f12.AvgOriginal, f12.Avg2MB)

	pc, err := session.PTECopies()
	if err != nil {
		t.Fatal(err)
	}
	// With the 2MB layout, sharing reduces PTE copying for every app.
	for _, app := range pc.Apps {
		if pc.Copies["Shared PTP-2MB"][app] >= pc.Copies["Stock Android-2MB"][app] {
			t.Errorf("%s: 2MB sharing should cut PTE copies (%.0f vs %.0f)",
				app, pc.Copies["Shared PTP-2MB"][app], pc.Copies["Stock Android-2MB"][app])
		}
	}
}

func TestFigure13(t *testing.T) {
	r, err := session.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.ClientImprovementPct <= 0 || r.ServerImprovementPct <= 0 {
		t.Errorf("TLB sharing improvements = %.1f%%/%.1f%%, want positive (paper 36%%/19%%)",
			r.ClientImprovementPct, r.ServerImprovementPct)
	}
	t.Logf("IPC ITLB improvement: client %.1f%% (paper up to 36%%), server %.1f%% (paper up to 19%%)",
		r.ClientImprovementPct, r.ServerImprovementPct)
}

func TestAblations(t *testing.T) {
	stack, err := session.StackSharingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(stack.Rows) != 2 {
		t.Fatalf("stack ablation rows = %d", len(stack.Rows))
	}
	// Sharing the stack makes fork cheaper...
	if stack.Rows[0].Variant >= stack.Rows[0].Baseline {
		t.Errorf("stack sharing should cheapen fork: %v vs %v",
			stack.Rows[0].Variant, stack.Rows[0].Baseline)
	}
	// ...but the first stack write gets more expensive (the unshare).
	if stack.Rows[1].Variant <= stack.Rows[1].Baseline {
		t.Errorf("stack sharing should make the first write dearer: %v vs %v",
			stack.Rows[1].Variant, stack.Rows[1].Baseline)
	}

	ref, err := session.CopyReferencedAblation()
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rows[0].Variant > ref.Rows[0].Baseline {
		t.Errorf("referenced-only should copy no more PTEs: %v vs %v",
			ref.Rows[0].Variant, ref.Rows[0].Baseline)
	}

	wp, err := session.L1WriteProtectAblation()
	if err != nil {
		t.Fatal(err)
	}
	if wp.Rows[0].Variant >= wp.Rows[0].Baseline {
		t.Errorf("L1 write protection should cheapen the first fork: %v vs %v",
			wp.Rows[0].Variant, wp.Rows[0].Baseline)
	}
}

func TestLargePageStudy(t *testing.T) {
	r, err := session.LargePageStudy()
	if err != nil {
		t.Fatal(err)
	}
	// Large pages make the whole image resident (more memory) but cut
	// instruction main-TLB misses; PTPs remain shared.
	if r.Rows[0].Variant <= r.Rows[0].Baseline {
		t.Errorf("large pages should cost memory: %.1fMB vs %.1fMB",
			r.Rows[0].Variant, r.Rows[0].Baseline)
	}
	if r.Rows[1].Variant >= r.Rows[1].Baseline {
		t.Errorf("large pages should cut ITLB misses: %.0f vs %.0f",
			r.Rows[1].Variant, r.Rows[1].Baseline)
	}
	if r.Rows[2].Variant <= 0 {
		t.Error("large-page PTPs should still be shared")
	}
	t.Logf("large pages: %.1fMB -> %.1fMB resident, ITLB misses %.0f -> %.0f",
		r.Rows[0].Baseline, r.Rows[0].Variant, r.Rows[1].Baseline, r.Rows[1].Variant)
}

func TestDomainMatchStudy(t *testing.T) {
	r, err := session.DomainMatchStudy()
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0].Baseline == 0 {
		t.Error("the baseline workload should take domain faults")
	}
	if r.Rows[0].Variant != 0 {
		t.Errorf("hardware domain matching should eliminate domain faults, got %.0f",
			r.Rows[0].Variant)
	}
	if r.Rows[1].Variant >= r.Rows[1].Baseline {
		t.Error("removing the exception path should save cycles")
	}
}

func TestSchedulerGrouping(t *testing.T) {
	r, err := session.SchedulerGrouping()
	if err != nil {
		t.Fatal(err)
	}
	if r.FlushesGrouped >= r.FlushesInterleaved {
		t.Errorf("grouping should reduce protective flushes: %d vs %d",
			r.FlushesGrouped, r.FlushesInterleaved)
	}
	if r.Grouped >= r.Interleaved {
		t.Errorf("grouping should reduce app ITLB stalls: %d vs %d",
			r.Grouped, r.Interleaved)
	}
	t.Logf("grouping: stalls %d -> %d, flushes %d -> %d",
		r.Interleaved, r.Grouped, r.FlushesInterleaved, r.FlushesGrouped)
}

func TestScalability(t *testing.T) {
	r, err := session.Scalability()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Stock grows roughly linearly; shared flattens: the saving must grow
	// monotonically with the process count.
	prev := 0.0
	for _, row := range r.Rows {
		saving := 1 - float64(row.SharedPTPKB)/float64(row.StockPTPKB)
		if saving <= prev {
			t.Errorf("saving at %d processes (%.2f) should exceed %.2f", row.Processes, saving, prev)
		}
		prev = saving
	}
	last := r.Rows[len(r.Rows)-1]
	if ratio := float64(last.StockPTPKB) / float64(last.SharedPTPKB); ratio < 2.5 {
		t.Errorf("at 32 processes the stock/shared PTP memory ratio = %.1f, want >= 2.5", ratio)
	}
	t.Logf("PTP memory at 32 processes: %dKB stock vs %dKB shared", last.StockPTPKB, last.SharedPTPKB)
}

func TestCachePollution(t *testing.T) {
	r, err := session.CachePollution()
	if err != nil {
		t.Fatal(err)
	}
	// With private tables, each of the N processes loads its own PTE
	// lines: N copies; shared PTPs collapse them to one.
	ratio := float64(r.StockPTELines) / float64(r.SharedPTELines)
	if ratio < float64(r.Processes)-1 || ratio > float64(r.Processes)+1 {
		t.Errorf("PTE line ratio = %.1f, want ~%d (one private copy per process)", ratio, r.Processes)
	}
	t.Logf("distinct L2 PTE lines: %d stock vs %d shared (%.1fx)",
		r.StockPTELines, r.SharedPTELines, ratio)
}

func TestSMP(t *testing.T) {
	r, err := session.SMP()
	if err != nil {
		t.Fatal(err)
	}
	// Sharing removes the cross-core duplicate soft faults...
	if r.SharedFaults*4 > r.StockFaults {
		t.Errorf("shared faults = %d, want well below stock %d", r.SharedFaults, r.StockFaults)
	}
	// ...at the price of shootdown IPIs for the unshares.
	if r.SharedShootdowns <= r.StockShootdowns {
		t.Errorf("shared kernel should issue more shootdowns (%d vs %d): every unshare broadcasts",
			r.SharedShootdowns, r.StockShootdowns)
	}
	t.Logf("faults %d -> %d; shootdowns %d -> %d",
		r.StockFaults, r.SharedFaults, r.StockShootdowns, r.SharedShootdowns)
}

func TestChromeFamily(t *testing.T) {
	r, err := session.ChromeFamily()
	if err != nil {
		t.Fatal(err)
	}
	if r.StockFaults == 0 {
		t.Fatal("the stock helper must refault the browser's libraries")
	}
	if r.SharedFaults != 0 {
		t.Errorf("shared helper faults = %d, want 0 (translations inherited)", r.SharedFaults)
	}
	t.Logf("helper faults over %d inherited pages: %d stock -> %d shared",
		r.Pages, r.StockFaults, r.SharedFaults)
}

func TestRenderings(t *testing.T) {
	// Every driver renders without panicking and mentions its subject.
	checks := []struct {
		name string
		fn   func() (interface{ String() string }, error)
	}{
		{"Table 1", func() (interface{ String() string }, error) { return session.Table1() }},
		{"Figure 2", func() (interface{ String() string }, error) { return session.Figure2() }},
		{"Figure 3", func() (interface{ String() string }, error) { return session.Figure3() }},
		{"Table 2", func() (interface{ String() string }, error) { return session.Table2() }},
		{"Figure 4", func() (interface{ String() string }, error) { return session.Figure4() }},
		{"Table 3", func() (interface{ String() string }, error) { return session.Table3() }},
		{"Table 4", func() (interface{ String() string }, error) { return session.Table4() }},
		{"Figure 7", func() (interface{ String() string }, error) { return session.Figure7() }},
		{"Figure 8", func() (interface{ String() string }, error) { return session.Figure8() }},
		{"Figure 9", func() (interface{ String() string }, error) { return session.Figure9() }},
		{"Figure 10", func() (interface{ String() string }, error) { return session.Figure10() }},
		{"Figure 11", func() (interface{ String() string }, error) { return session.Figure11() }},
		{"Figure 12", func() (interface{ String() string }, error) { return session.Figure12() }},
		{"Figure 13", func() (interface{ String() string }, error) { return session.Figure13() }},
	}
	for _, c := range checks {
		r, err := c.fn()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !strings.Contains(r.String(), c.name) {
			t.Errorf("%s rendering does not mention itself:\n%s", c.name, r.String())
		}
	}
}

func TestLaunchConfigLabels(t *testing.T) {
	cfgs := LaunchConfigs()
	if len(cfgs) != 6 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	if cfgs[3].Label() != "Stock Android-2MB" {
		t.Errorf("label = %q", cfgs[3].Label())
	}
	if cfgs[0].Layout != android.LayoutOriginal {
		t.Error("first config should be original layout")
	}
}
