// The fork-vs-fresh differential contract at the report level: a session
// forking memoized boot checkpoints must emit the same bytes as one that
// boots every scenario from scratch, and turning checkpoints on must not
// disturb the serial-vs-parallel byte identity.

package experiments

import (
	"bytes"
	"testing"
)

// diffParams keeps the differential sessions cheap: the selected
// experiments still cross kernel configs, zygote forks, full app
// launches and the Binder IPC path.
var diffParams = Params{LaunchRuns: 2, AppRuns: 1, BinderIters: 100}

var diffSelection = map[string]bool{"table4": true, "figure13": true, "smp": true}

func runDoc(t *testing.T, parallel int, noCheckpoint bool) []byte {
	t.Helper()
	s := New(diffParams)
	s.Parallel = parallel
	s.NoCheckpoint = noCheckpoint
	doc, err := RunJSON(s, diffSelection)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestForkVsFreshByteIdentical(t *testing.T) {
	forked := runDoc(t, 1, false)
	fresh := runDoc(t, 1, true)
	if !bytes.Equal(forked, fresh) {
		t.Fatalf("checkpointed and fresh-boot reports diverge:\nforked:\n%s\nfresh:\n%s", forked, fresh)
	}
	// Checkpoints on, 4 workers racing for the shared images: still the
	// same bytes.
	par := runDoc(t, 4, false)
	if !bytes.Equal(forked, par) {
		t.Fatalf("serial and parallel checkpointed reports diverge:\nserial:\n%s\nparallel:\n%s", forked, par)
	}
}
