// Package experiments contains one driver per table and figure of the
// paper's evaluation (Tables 1-4, Figures 2-4 and 7-13). Each driver runs
// the corresponding workload on the simulated system, measures the same
// counters the paper reads, and renders a plain-text version of the
// table or figure. The cmd/experiments binary prints them all; the
// bench_test.go harness exposes each as a testing.B benchmark.
package experiments

import (
	"sync"

	"repro/internal/workload"
)

// Params sizes the experiment sweeps.
type Params struct {
	// LaunchRuns is the number of application launches per kernel
	// configuration for the box plots of Figures 7 and 8 (the paper
	// uses over 100).
	LaunchRuns int
	// AppRuns is the number of executions per application for the
	// steady-state sweeps of Figures 10-12 (the paper averages 10).
	AppRuns int
	// BinderIters is the number of IPC calls in the Figure 13
	// microbenchmark (the paper uses 100,000).
	BinderIters int
}

// Default returns the paper-scale parameters.
func Default() Params {
	return Params{LaunchRuns: 100, AppRuns: 10, BinderIters: 100000}
}

// Quick returns reduced parameters for tests and benchmarks.
func Quick() Params {
	return Params{LaunchRuns: 8, AppRuns: 3, BinderIters: 4000}
}

// Session runs experiments, caching the expensive shared sweeps so that
// regenerating several figures from the same data (as the paper does)
// costs one sweep.
type Session struct {
	// Params sizes the sweeps.
	Params Params

	universe     *workload.Universe
	universeOnce sync.Once

	motOnce sync.Once
	mot     *motivationData
	motErr  error

	launchOnce sync.Once
	launch     *launchSweep
	launchErr  error

	steadyOnce sync.Once
	steady     *steadySweep
	steadyErr  error
}

// New creates a session with the given parameters.
func New(p Params) *Session {
	return &Session{Params: p}
}

// Universe returns the session's preloaded-code landscape.
func (s *Session) Universe() *workload.Universe {
	s.universeOnce.Do(func() {
		s.universe = workload.DefaultUniverse()
	})
	return s.universe
}
