// Package experiments contains one driver per table and figure of the
// paper's evaluation (Tables 1-4, Figures 2-4 and 7-13). Each driver runs
// the corresponding workload on the simulated system, measures the same
// counters the paper reads, and renders a plain-text version of the
// table or figure. The cmd/experiments binary prints them all; the
// bench_test.go harness exposes each as a testing.B benchmark.
//
// The expensive sweeps enumerate independent scenarios (kernel config x
// layout x application x run), each booting its own simulator, and run
// them through the internal/sweep worker pool: Session.Parallel selects
// the worker count, and output is byte-identical for every setting
// because scenarios are seeded from their identity and merged back in
// canonical order.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/android"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Params sizes the experiment sweeps.
type Params struct {
	// LaunchRuns is the number of application launches per kernel
	// configuration for the box plots of Figures 7 and 8 (the paper
	// uses over 100).
	LaunchRuns int
	// AppRuns is the number of executions per application for the
	// steady-state sweeps of Figures 10-12 (the paper averages 10).
	AppRuns int
	// BinderIters is the number of IPC calls in the Figure 13
	// microbenchmark (the paper uses 100,000).
	BinderIters int
}

// Default returns the paper-scale parameters.
func Default() Params {
	return Params{LaunchRuns: 100, AppRuns: 10, BinderIters: 100000}
}

// Quick returns reduced parameters for tests and benchmarks.
func Quick() Params {
	return Params{LaunchRuns: 8, AppRuns: 3, BinderIters: 4000}
}

// Validate rejects parameters that cannot size a sweep. Every sweep
// checks its parameters up front so a bad value fails loudly instead of
// producing empty series and NaN statistics.
func (p Params) Validate() error {
	if p.LaunchRuns < 1 {
		return fmt.Errorf("experiments: LaunchRuns = %d, must be >= 1", p.LaunchRuns)
	}
	if p.AppRuns < 1 {
		return fmt.Errorf("experiments: AppRuns = %d, must be >= 1", p.AppRuns)
	}
	if p.BinderIters < 1 {
		return fmt.Errorf("experiments: BinderIters = %d, must be >= 1", p.BinderIters)
	}
	return nil
}

// Session runs experiments, caching the expensive shared sweeps so that
// regenerating several figures from the same data (as the paper does)
// costs one sweep.
type Session struct {
	// Params sizes the sweeps.
	Params Params
	// Parallel is the worker count for the scenario sweeps: 1 runs them
	// serially, N >= 2 uses N goroutines, and 0 (or negative) selects
	// GOMAXPROCS. Output is identical for every setting.
	Parallel int
	// NoCheckpoint disables boot-prefix checkpoint reuse: every scenario
	// boots its machine from scratch, as before internal/checkpoint
	// existed. Escape hatch for A/B timing and the fork-vs-fresh
	// differential tests; results are byte-identical either way.
	NoCheckpoint bool
	// Arch names the MMU architecture every boot simulates, by arch
	// registry name ("armv7", "sv39"; empty means armv7). Scenario
	// options that set their own Arch override it.
	Arch string
	// ImageStore, when non-nil, is a persistent second level under the
	// in-memory checkpoint cache (internal/imagestore): boot-prefix and
	// warmup images missing from memory are loaded from the store, and
	// cold boots are written back, so later processes warm-start.
	// Ignored under NoCheckpoint, which bypasses the cache entirely.
	// Set before the first sweep; results are byte-identical with or
	// without a store (stored images are fingerprint-verified copies of
	// the machines they replace).
	ImageStore checkpoint.ImageStore

	universe     *workload.Universe
	universeOnce sync.Once

	ckptOnce sync.Once
	ckpt     *checkpoint.Cache

	motOnce sync.Once
	mot     *motivationData
	motErr  error

	launchOnce sync.Once
	launch     *launchSweep
	launchErr  error

	steadyOnce sync.Once
	steady     *steadySweep
	steadyErr  error
}

// New creates a session with the given parameters. The session uses
// GOMAXPROCS sweep workers; set Parallel to override.
func New(p Params) *Session {
	return &Session{Params: p}
}

// workers resolves the session's sweep worker count.
func (s *Session) workers() int {
	return sweep.Workers(s.Parallel)
}

// Universe returns the session's preloaded-code landscape. The universe
// is immutable after construction, so every sweep worker reads the one
// shared instance.
func (s *Session) Universe() *workload.Universe {
	s.universeOnce.Do(func() {
		s.universe = workload.DefaultUniverse()
	})
	return s.universe
}

// bootOptions fills the session-wide architecture into options that do
// not choose their own, so every boot of a campaign simulates the same
// MMU unless a scenario explicitly diverges.
func (s *Session) bootOptions(o android.Options) android.Options {
	if o.Arch == "" {
		o.Arch = s.Arch
	}
	return o
}

// Boot brings up a machine for the given kernel configuration and
// library layout — the common prefix every scenario of every campaign
// simulates before diverging. Unless NoCheckpoint is set, the prefix is
// simulated once per distinct parameter set, captured as an immutable
// checkpoint image, and forked copy-on-write for each caller; forks are
// byte-identical to fresh boots (pinned by the differential tests).
func (s *Session) Boot(cfg core.Config, layout android.Layout) (*android.System, error) {
	return s.BootOpts(cfg, layout, android.Options{})
}

// BootOpts is Boot with explicit android.Options.
func (s *Session) BootOpts(cfg core.Config, layout android.Layout, opts android.Options) (*android.System, error) {
	opts = s.bootOptions(opts)
	u := s.Universe()
	if s.NoCheckpoint {
		return android.BootOpts(cfg, layout, u, opts)
	}
	img, err := s.ckptCache().Image(checkpoint.Key(cfg, layout, u, opts), func() (*android.System, error) {
		return android.BootOpts(cfg, layout, u, opts)
	})
	if err != nil {
		return nil, err
	}
	return img.Fork(), nil
}

// BootWarm is BootOpts followed by a named warmup phase, memoized as a
// node in the checkpoint fork tree. Scenarios that share a post-boot
// setup (the scalability launch chain, the scheduler-grouping process
// setup) name the warmup once and fork its result instead of re-running
// it: the first caller simulates boot + warm, later callers — and deeper
// tree nodes chained on top — fork the cached image copy-on-write.
//
// warmKey must uniquely name warm's effect: equal (boot params, warmKey)
// pairs must mean identical warmups. Under NoCheckpoint the warmup runs
// inline on a fresh boot, byte-identical by the tree invariant.
func (s *Session) BootWarm(cfg core.Config, layout android.Layout, opts android.Options, warmKey string, warm checkpoint.Warm) (*android.System, error) {
	opts = s.bootOptions(opts)
	img, err := s.warmImage(cfg, layout, opts, warmKey, warm)
	if err != nil {
		return nil, err
	}
	if img == nil { // NoCheckpoint: boot fresh, warm inline.
		sys, err := android.BootOpts(cfg, layout, s.Universe(), opts)
		if err != nil {
			return nil, err
		}
		if err := warm(sys); err != nil {
			return nil, err
		}
		return sys, nil
	}
	return img.Fork(), nil
}

// warmImage resolves the fork-tree node for boot + warm, or nil under
// NoCheckpoint. Split from BootWarm so chain builders (scalability) can
// stack Derived calls without forking the interior nodes.
func (s *Session) warmImage(cfg core.Config, layout android.Layout, opts android.Options, warmKey string, warm checkpoint.Warm) (*checkpoint.Image, error) {
	opts = s.bootOptions(opts)
	if s.NoCheckpoint {
		return nil, nil
	}
	ckpt := s.ckptCache()
	u := s.Universe()
	parentKey := checkpoint.Key(cfg, layout, u, opts)
	return ckpt.Derived(parentKey, warmKey, func() (*checkpoint.Image, error) {
		return ckpt.Image(parentKey, func() (*android.System, error) {
			return android.BootOpts(cfg, layout, u, opts)
		})
	}, warm)
}

// ckptCache returns the session's image cache, constructing it on first
// use.
func (s *Session) ckptCache() *checkpoint.Cache {
	s.ckptOnce.Do(func() {
		s.ckpt = checkpoint.NewCache()
		if s.ImageStore != nil {
			s.ckpt.SetStore(s.ImageStore)
		}
	})
	return s.ckpt
}

// sweepErr tags a cached sweep error with the sweep that failed. The
// sync.Once caching means one failed sweep reports the same error to
// every figure derived from it; naming the sweep keeps that consistent
// replay diagnosable rather than a mystery error surfacing from, say,
// Figure 9 long after Figure 7 ran.
func sweepErr(sweepName string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%s failed: %w", sweepName, err)
}
