// The steady-state experiments of Section 4.2.3: page-fault reduction for
// file-backed mappings (Figure 10), PTP allocation (Figure 11), and the
// share of PTPs that are shared (Figure 12), for both the original and
// the 2MB-aligned library layouts.

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// steadyKey identifies one kernel/layout cell of the sweep.
type steadyKey struct {
	shared bool
	layout android.Layout
}

// steadyCell is the per-application average over Params.AppRuns
// executions under one configuration.
type steadyCell struct {
	fileFaults float64
	ptps       float64
	ptesCopied float64
	sharedPct  float64
}

type steadySweep struct {
	apps  []string
	cells map[steadyKey]map[string]steadyCell
}

// steadyData runs each application Params.AppRuns times under the four
// configurations {stock, shared} x {original, 2MB}, with the zygote
// persisting across executions so that later runs inherit the PTEs
// earlier runs populated in the shared PTPs — the warm-start effect the
// paper's 10-execution averages include.
func (s *Session) steadyData() (*steadySweep, error) {
	s.steadyOnce.Do(func() {
		s.steady, s.steadyErr = s.runSteadySweep()
		s.steadyErr = sweepErr("steady-state sweep (Figures 10-12)", s.steadyErr)
	})
	return s.steady, s.steadyErr
}

// runSteadySweep fans one scenario per (layout, kernel, application)
// cell — 2 x 2 x 11 = 44 independent boots — out over the worker pool
// and merges the cells back in the canonical layout/kernel/app order.
// The runs within a cell stay sequential: the zygote persists across an
// app's repeated executions, so later runs warm-start from earlier ones.
func (s *Session) runSteadySweep() (*steadySweep, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, err
	}
	sw := &steadySweep{cells: make(map[steadyKey]map[string]steadyCell)}
	for _, spec := range workload.Suite() {
		sw.apps = append(sw.apps, spec.Name)
	}
	u := s.Universe()
	type scenarioID struct {
		key  steadyKey
		spec workload.AppSpec
	}
	var ids []scenarioID
	for _, layout := range []android.Layout{android.LayoutOriginal, android.Layout2MB} {
		for _, shared := range []bool{false, true} {
			for _, spec := range workload.Suite() {
				ids = append(ids, scenarioID{key: steadyKey{shared: shared, layout: layout}, spec: spec})
			}
		}
	}
	scenarios := make([]sweep.Scenario[steadyCell], len(ids))
	for i, id := range ids {
		id := id
		cfg := core.Stock()
		if id.key.shared {
			cfg = core.SharedPTP()
		}
		scenarios[i] = sweep.Scenario[steadyCell]{
			Name: fmt.Sprintf("steady/%s/%s/%s", cfg.Name(), id.key.layout, id.spec.Name),
			Run: func(*rand.Rand) (steadyCell, error) {
				return s.runSteadyCell(cfg, id.key.layout, id.spec, u)
			},
		}
	}
	cells, err := sweep.Run(s.workers(), scenarios)
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		if sw.cells[id.key] == nil {
			sw.cells[id.key] = make(map[string]steadyCell)
		}
		sw.cells[id.key][id.spec.Name] = cells[i]
	}
	return sw, nil
}

// runSteadyCell measures one application's per-run averages under one
// kernel/layout configuration. A fresh system per application isolates
// its counters; the zygote persists across the app's repeated runs.
func (s *Session) runSteadyCell(cfg core.Config, layout android.Layout, spec workload.AppSpec, u *workload.Universe) (steadyCell, error) {
	sys, err := s.Boot(cfg, layout)
	if err != nil {
		return steadyCell{}, err
	}
	prof := workload.BuildProfile(u, spec)
	var cell steadyCell
	for run := 0; run < s.Params.AppRuns; run++ {
		app, _, err := sys.LaunchApp(prof, int64(run))
		if err != nil {
			return steadyCell{}, fmt.Errorf("experiments: steady %s %s run %d: %w",
				cfg.Name(), spec.Name, run, err)
		}
		rs, err := app.Run()
		if err != nil {
			return steadyCell{}, fmt.Errorf("experiments: steady %s %s run %d: %w",
				cfg.Name(), spec.Name, run, err)
		}
		cell.fileFaults += float64(rs.FileFaults)
		cell.ptps += float64(rs.PTPsAllocated)
		cell.ptesCopied += float64(rs.PTEsCopied)
		if rs.PTPsLive > 0 {
			cell.sharedPct += 100 * float64(rs.PTPsShared) / float64(rs.PTPsLive)
		}
		sys.Kernel.Exit(app.Proc)
	}
	n := float64(s.Params.AppRuns)
	cell.fileFaults /= n
	cell.ptps /= n
	cell.ptesCopied /= n
	cell.sharedPct /= n
	return cell, nil
}

// Figure10Result is the per-application page-fault reduction.
type Figure10Result struct {
	Rows []Figure10Row
	// AvgReductionPct is the suite average (paper: 38%).
	AvgReductionPct float64
}

// Figure10Row is one application's fault reduction.
type Figure10Row struct {
	App string
	// StockFaults and SharedFaults are per-run averages of page faults
	// for file-backed mappings.
	StockFaults  float64
	SharedFaults float64
	// ReductionPct is the relative reduction; Eliminated the absolute
	// per-run fault count removed (paper: 3,200 to 14,000).
	ReductionPct float64
	Eliminated   float64
}

// Figure10 measures the reduction in page faults for file-based mappings
// over the full course of execution (original layout).
func (s *Session) Figure10() (*Figure10Result, error) {
	sweep, err := s.steadyData()
	if err != nil {
		return nil, err
	}
	stock := sweep.cells[steadyKey{shared: false, layout: android.LayoutOriginal}]
	shared := sweep.cells[steadyKey{shared: true, layout: android.LayoutOriginal}]
	r := &Figure10Result{}
	var sum float64
	for _, app := range sweep.apps {
		st, sh := stock[app], shared[app]
		red := 100 * (1 - sh.fileFaults/st.fileFaults)
		r.Rows = append(r.Rows, Figure10Row{
			App:          app,
			StockFaults:  st.fileFaults,
			SharedFaults: sh.fileFaults,
			ReductionPct: red,
			Eliminated:   st.fileFaults - sh.fileFaults,
		})
		sum += red
	}
	r.AvgReductionPct = sum / float64(len(sweep.apps))
	return r, nil
}

// String renders the figure.
func (r *Figure10Result) String() string {
	t := stats.NewTable("Figure 10: % reduction in page faults for file-backed mappings (vs stock)",
		"Benchmark", "Stock faults", "Shared faults", "Reduction", "Eliminated/run")
	for _, row := range r.Rows {
		t.AddRow(row.App, stats.F(row.StockFaults), stats.F(row.SharedFaults),
			stats.Pct(row.ReductionPct), stats.F(row.Eliminated))
	}
	return t.String() + fmt.Sprintf("suite average reduction: %.1f%% (paper: 38%%)\n", r.AvgReductionPct)
}

// Figure11Result is PTP allocation per application under four
// configurations, normalized to stock/original.
type Figure11Result struct {
	Apps []string
	// NormPct[config label][app] is the normalized PTP allocation.
	NormPct map[string]map[string]float64
	// AvgReductionOriginal / Avg2MB are the suite-average reductions of
	// shared vs stock under each layout (paper: 35% and 26%).
	AvgReductionOriginal float64
	AvgReduction2MB      float64
}

// figure11Configs orders the four bars as in the paper.
var figure11Configs = []struct {
	label  string
	shared bool
	layout android.Layout
}{
	{"Stock Android", false, android.LayoutOriginal},
	{"Shared PTP", true, android.LayoutOriginal},
	{"Stock Android-2MB", false, android.Layout2MB},
	{"Shared PTP-2MB", true, android.Layout2MB},
}

// Figure11 measures PTPs allocated per application.
func (s *Session) Figure11() (*Figure11Result, error) {
	sweep, err := s.steadyData()
	if err != nil {
		return nil, err
	}
	r := &Figure11Result{Apps: sweep.apps, NormPct: make(map[string]map[string]float64)}
	base := sweep.cells[steadyKey{shared: false, layout: android.LayoutOriginal}]
	var redOrig, red2MB float64
	for _, cfg := range figure11Configs {
		cells := sweep.cells[steadyKey{shared: cfg.shared, layout: cfg.layout}]
		m := make(map[string]float64)
		for _, app := range sweep.apps {
			m[app] = stats.Normalize(base[app].ptps, cells[app].ptps)
		}
		r.NormPct[cfg.label] = m
	}
	// The paper normalizes both reductions to the stock kernel with the
	// ORIGINAL alignment (35% for shared/original, 26% for shared/2MB,
	// the latter smaller because the 2MB gaps consume virtual space).
	for _, app := range sweep.apps {
		redOrig += 100 - r.NormPct["Shared PTP"][app]
		red2MB += 100 - r.NormPct["Shared PTP-2MB"][app]
	}
	r.AvgReductionOriginal = redOrig / float64(len(sweep.apps))
	r.AvgReduction2MB = red2MB / float64(len(sweep.apps))
	return r, nil
}

// String renders the figure.
func (r *Figure11Result) String() string {
	t := stats.NewTable("Figure 11: PTPs allocated, normalized to stock Android / original layout",
		"Benchmark", "Stock", "Shared PTP", "Stock-2MB", "Shared PTP-2MB")
	for _, app := range r.Apps {
		t.AddRow(app,
			stats.Pct(r.NormPct["Stock Android"][app]),
			stats.Pct(r.NormPct["Shared PTP"][app]),
			stats.Pct(r.NormPct["Stock Android-2MB"][app]),
			stats.Pct(r.NormPct["Shared PTP-2MB"][app]))
	}
	return t.String() + fmt.Sprintf("suite-average reduction: %.1f%% original (paper: 35%%), %.1f%% vs stock-2MB (paper: 26%%)\n",
		r.AvgReductionOriginal, r.AvgReduction2MB)
}

// Figure12Result is the percent of PTPs shared per application.
type Figure12Result struct {
	Apps []string
	// SharedPct[layout][app] is the share of the app's PTPs that are
	// shared at the end of a run.
	SharedPct map[android.Layout]map[string]float64
	// AvgOriginal and Avg2MB are the suite averages (paper: 39%/60%).
	AvgOriginal float64
	Avg2MB      float64
}

// Figure12 measures the fraction of each application's PTPs that are
// shared, under both layouts (shared-PTP kernel).
func (s *Session) Figure12() (*Figure12Result, error) {
	sweep, err := s.steadyData()
	if err != nil {
		return nil, err
	}
	r := &Figure12Result{Apps: sweep.apps, SharedPct: make(map[android.Layout]map[string]float64)}
	for _, layout := range []android.Layout{android.LayoutOriginal, android.Layout2MB} {
		cells := sweep.cells[steadyKey{shared: true, layout: layout}]
		m := make(map[string]float64)
		var sum float64
		for _, app := range sweep.apps {
			m[app] = cells[app].sharedPct
			sum += cells[app].sharedPct
		}
		r.SharedPct[layout] = m
		avg := sum / float64(len(sweep.apps))
		if layout == android.LayoutOriginal {
			r.AvgOriginal = avg
		} else {
			r.Avg2MB = avg
		}
	}
	return r, nil
}

// String renders the figure.
func (r *Figure12Result) String() string {
	t := stats.NewTable("Figure 12: % of total PTPs that are shared",
		"Benchmark", "Shared PTP", "Shared PTP-2MB")
	for _, app := range r.Apps {
		t.AddRow(app,
			stats.Pct(r.SharedPct[android.LayoutOriginal][app]),
			stats.Pct(r.SharedPct[android.Layout2MB][app]))
	}
	return t.String() + fmt.Sprintf("suite average: %.1f%% original (paper: 39%%), %.1f%% 2MB (paper: 60%%)\n",
		r.AvgOriginal, r.Avg2MB)
}

// PTECopyResult supplements Figures 10-12 with the PTE-copy accounting
// discussed in Section 4.2.3: copies at fork plus copies due to
// unsharing, per application and layout.
type PTECopyResult struct {
	Apps []string
	// Copies[label][app] is the per-run average PTE copies.
	Copies map[string]map[string]float64
}

// PTECopies reports the cost of unsharing.
func (s *Session) PTECopies() (*PTECopyResult, error) {
	sweep, err := s.steadyData()
	if err != nil {
		return nil, err
	}
	r := &PTECopyResult{Apps: sweep.apps, Copies: make(map[string]map[string]float64)}
	for _, cfg := range figure11Configs {
		cells := sweep.cells[steadyKey{shared: cfg.shared, layout: cfg.layout}]
		m := make(map[string]float64)
		for _, app := range sweep.apps {
			m[app] = cells[app].ptesCopied
		}
		r.Copies[cfg.label] = m
	}
	return r, nil
}

// String renders the accounting.
func (r *PTECopyResult) String() string {
	t := stats.NewTable("PTEs copied per execution (fork + unsharing)",
		"Benchmark", "Stock", "Shared PTP", "Stock-2MB", "Shared PTP-2MB")
	for _, app := range r.Apps {
		t.AddRow(app,
			stats.F(r.Copies["Stock Android"][app]),
			stats.F(r.Copies["Shared PTP"][app]),
			stats.F(r.Copies["Stock Android-2MB"][app]),
			stats.F(r.Copies["Shared PTP-2MB"][app]))
	}
	return t.String()
}
