// Tests for the parallel sweep engine's two contracts at the experiment
// level: worker count must not change any rendered byte, and a cached
// sweep failure must surface identically in every figure derived from it.

package experiments

import (
	"strings"
	"testing"
)

// renderAll regenerates every registered experiment on s and returns the
// concatenated rendering.
func renderAll(t *testing.T, s *Session) string {
	t.Helper()
	var b strings.Builder
	for _, e := range Registry() {
		r, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		b.WriteString(e.Name)
		b.WriteString("\n")
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestSerialParallelByteIdentical is the determinism contract: a serial
// session and a 4-worker session must render every experiment to the
// same bytes.
func TestSerialParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Quick sessions; skipped in -short mode")
	}
	serial := New(Quick())
	serial.Parallel = 1
	par := New(Quick())
	par.Parallel = 4

	a := renderAll(t, serial)
	b := renderAll(t, par)
	if a != b {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 200
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("serial and parallel renderings diverge at byte %d:\nserial: ...%q\nparallel: ...%q",
			i, a[lo:min(i+200, len(a))], b[lo:min(i+200, len(b))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSweepErrorConsistency checks that a failing cached sweep reports
// the same, named error from every figure that depends on it — the
// sync.Once must cache an error that says which sweep failed, not just
// the bare cause.
func TestSweepErrorConsistency(t *testing.T) {
	s := New(Params{}) // all sizes zero: every sweep fails validation

	expectSame := func(name, wantSubstr string, runs ...func() error) {
		t.Helper()
		var msgs []string
		for _, run := range runs {
			err := run()
			if err == nil {
				t.Fatalf("%s: expected an error from the invalid session", name)
			}
			if !strings.Contains(err.Error(), wantSubstr) {
				t.Errorf("%s: error %q does not name the failing sweep (%q)", name, err, wantSubstr)
			}
			msgs = append(msgs, err.Error())
		}
		for _, m := range msgs[1:] {
			if m != msgs[0] {
				t.Errorf("%s: dependent figures report different errors:\n  %q\n  %q", name, msgs[0], m)
			}
		}
	}

	expectSame("launch sweep", "launch sweep (Figures 7-9)",
		func() error { _, err := s.Figure7(); return err },
		func() error { _, err := s.Figure8(); return err },
		func() error { _, err := s.Figure9(); return err },
	)
	expectSame("steady-state sweep", "steady-state sweep (Figures 10-12)",
		func() error { _, err := s.Figure10(); return err },
		func() error { _, err := s.Figure11(); return err },
		func() error { _, err := s.Figure12(); return err },
	)
	expectSame("motivation sweep", "motivation sweep (Tables 1-2, Figures 2-4)",
		func() error { _, err := s.Table1(); return err },
		func() error { _, err := s.Figure2(); return err },
		func() error { _, err := s.Table2(); return err },
	)
	if _, err := s.Figure13(); err == nil || !strings.Contains(err.Error(), "figure 13") {
		t.Errorf("Figure13 error = %v, want a figure 13 validation error", err)
	}
}

// TestParamsValidate pins the validation rules the commands rely on.
func TestParamsValidate(t *testing.T) {
	if err := Quick().Validate(); err != nil {
		t.Errorf("Quick params should validate: %v", err)
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("Default params should validate: %v", err)
	}
	bad := []Params{
		{LaunchRuns: 0, AppRuns: 1, BinderIters: 1},
		{LaunchRuns: 1, AppRuns: 0, BinderIters: 1},
		{LaunchRuns: 1, AppRuns: 1, BinderIters: 0},
		{LaunchRuns: -3, AppRuns: 1, BinderIters: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
}
