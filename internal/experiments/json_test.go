// Tests for the -json report: worker count must not change any byte of
// the document, and the schema skeleton (experiment names and metric
// keys) is pinned by a golden file so accidental renames fail loudly.
// Regenerate the golden with: go test ./internal/experiments -run JSON -update-golden

package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/schema.golden from the current output")

// schemaSkeleton reduces a report document to its shape: the schema id,
// the param keys, and each experiment's sorted metric-key list.
func schemaSkeleton(t *testing.T, doc []byte) string {
	t.Helper()
	var rep JSONReport
	if err := json.Unmarshal(doc, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "schema: %s\n", rep.Schema)
	for _, e := range rep.Experiments {
		fmt.Fprintf(&b, "%s:\n", e.Name)
		keys := make([]string, 0, len(e.Metrics))
		for k := range e.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s\n", k)
		}
	}
	return b.String()
}

// TestJSONSubsetDeterministic is the cheap always-on check: a four-
// experiment subset must produce byte-identical documents serially and
// with 4 workers, and the document must carry the schema id.
func TestJSONSubsetDeterministic(t *testing.T) {
	sel := map[string]bool{"scalability": true, "cache-pollution": true, "smp": true, "chrome-family": true}
	serial := New(Quick())
	serial.Parallel = 1
	par := New(Quick())
	par.Parallel = 4

	a, err := RunJSON(serial, sel)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunJSON(par, sel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("serial and parallel JSON diverge:\nserial:\n%s\nparallel:\n%s", a, b)
	}
	var rep JSONReport
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != SchemaID {
		t.Fatalf("schema = %q, want %q", rep.Schema, SchemaID)
	}
	if len(rep.Experiments) != len(sel) {
		t.Fatalf("got %d experiments, want %d", len(rep.Experiments), len(sel))
	}
	for _, e := range rep.Experiments {
		if len(e.Metrics) == 0 {
			t.Errorf("%s: empty metrics", e.Name)
		}
	}
}

// TestJSONFullByteIdenticalAndGoldenSchema runs the whole registry at
// Quick scale, serially and with 4 workers, requires byte-identical
// documents, and pins the schema skeleton against testdata/schema.golden.
func TestJSONFullByteIdenticalAndGoldenSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Quick sessions; skipped in -short mode")
	}
	serial := New(Quick())
	serial.Parallel = 1
	par := New(Quick())
	par.Parallel = 4

	a, err := RunJSON(serial, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunJSON(par, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 200
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("serial and parallel JSON diverge at byte %d:\nserial: ...%q\nparallel: ...%q",
			i, a[lo:min(i+200, len(a))], b[lo:min(i+200, len(b))])
	}

	got := schemaSkeleton(t, a)
	golden := filepath.Join("testdata", "schema.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("schema skeleton differs from %s; if the change is intentional, "+
			"bump the schema or regenerate with -update-golden.\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}
