package sweep

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestRunPreservesInputOrder(t *testing.T) {
	const n = 64
	scenarios := make([]Scenario[int], n)
	for i := 0; i < n; i++ {
		i := i
		scenarios[i] = Scenario[int]{
			Name: fmt.Sprintf("s%d", i),
			Run:  func(*rand.Rand) (int, error) { return i * i, nil },
		}
	}
	for _, workers := range []int{1, 2, 4, 16, 100} {
		got, err := Run(workers, scenarios)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunSerialParallelIdentical(t *testing.T) {
	// The per-scenario PRNG streams must not depend on scheduling: the
	// same sweep run serially and with 4 workers yields identical draws.
	mk := func() []Scenario[[]int] {
		scenarios := make([]Scenario[[]int], 12)
		for i := range scenarios {
			scenarios[i] = Scenario[[]int]{
				Name: fmt.Sprintf("draw/%d", i),
				Run: func(rng *rand.Rand) ([]int, error) {
					out := make([]int, 8)
					for j := range out {
						out[j] = rng.Intn(1 << 20)
					}
					return out, nil
				},
			}
		}
		return scenarios
	}
	serial, err := Run(1, mk())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(4, mk())
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		for j := range serial[i] {
			if serial[i][j] != parallel[i][j] {
				t.Fatalf("scenario %d draw %d: serial %d vs parallel %d",
					i, j, serial[i][j], parallel[i][j])
			}
		}
	}
}

func TestRunReportsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	scenarios := []Scenario[int]{
		{Name: "a", Run: func(*rand.Rand) (int, error) { return 0, nil }},
		{Name: "b", Run: func(*rand.Rand) (int, error) { return 0, errLow }},
		{Name: "c", Run: func(*rand.Rand) (int, error) { return 0, nil }},
		{Name: "d", Run: func(*rand.Rand) (int, error) { return 0, errHigh }},
	}
	for _, workers := range []int{1, 4} {
		_, err := Run(workers, scenarios)
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
}

func TestRunAllScenariosExecute(t *testing.T) {
	// Even with an early failure, every scenario runs (so error identity
	// never depends on scheduling).
	var mu sync.Mutex
	ran := map[string]bool{}
	scenarios := make([]Scenario[int], 8)
	for i := range scenarios {
		name := fmt.Sprintf("s%d", i)
		fail := i == 0
		scenarios[i] = Scenario[int]{Name: name, Run: func(*rand.Rand) (int, error) {
			mu.Lock()
			ran[name] = true
			mu.Unlock()
			if fail {
				return 0, errors.New("boom")
			}
			return 0, nil
		}}
	}
	if _, err := Run(4, scenarios); err == nil {
		t.Fatal("want error")
	}
	if len(ran) != len(scenarios) {
		t.Fatalf("ran %d of %d scenarios", len(ran), len(scenarios))
	}
}

func TestSeedStableAndDistinct(t *testing.T) {
	if Seed("a", "b") != Seed("a", "b") {
		t.Error("Seed not stable")
	}
	if Seed("a", "b") == Seed("ab") || Seed("a", "b") == Seed("b", "a") {
		t.Error("Seed ignores part boundaries or order")
	}
	if Seed("x") < 0 {
		t.Error("Seed must be non-negative for rand.NewSource")
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Error("default worker count must be at least 1")
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run[int](4, nil)
	if err != nil || got != nil {
		t.Fatalf("Run(nil) = %v, %v", got, err)
	}
}
