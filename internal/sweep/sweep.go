// Package sweep runs experiment scenario sweeps in parallel,
// deterministically. Every experiment driver in internal/experiments
// enumerates independent scenarios (kernel config x layout x application
// x run), each of which boots its own simulator instance; sweep fans them
// out over a worker pool and merges the results back in canonical input
// order, so a parallel sweep's output is byte-identical to a serial one.
//
// Determinism rules the engine enforces:
//
//   - Results are collected into a slice indexed by scenario position,
//     never by completion order.
//   - Each scenario receives its own PRNG seeded from its name (via
//     Seed), never a share of some global rand.Rand, so no scenario's
//     random stream depends on scheduling.
//   - On failure, every scenario still runs and the lowest-index error is
//     reported, so the error a caller sees does not depend on which
//     worker lost the race.
package sweep

import (
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Scenario is one independent unit of a sweep: it must not share mutable
// state with any other scenario (each boots its own simulator).
type Scenario[T any] struct {
	// Name identifies the scenario. It must be unique and stable across
	// runs: it seeds the scenario's private PRNG.
	Name string
	// Run executes the scenario. rng is private to this scenario and
	// seeded from Name; drivers that need randomness must use it (or
	// derive their own seeds from scenario identity) rather than any
	// shared source.
	Run func(rng *rand.Rand) (T, error)
}

// Seed derives a deterministic PRNG seed from scenario identity parts.
func Seed(parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return int64(h.Sum64() &^ (1 << 63))
}

// Workers resolves a worker-count request: n >= 1 is used as given, and
// anything else selects GOMAXPROCS.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the scenarios on min(workers, len(scenarios)) goroutines
// and returns their results in input order regardless of completion
// order. All scenarios run even if one fails (scenario counts are small
// and failures exceptional); the returned error is the failing scenario's
// with the lowest index, independent of scheduling.
func Run[T any](workers int, scenarios []Scenario[T]) ([]T, error) {
	n := len(scenarios)
	if n == 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		for i, sc := range scenarios {
			results[i], errs[i] = sc.Run(rand.New(rand.NewSource(Seed(sc.Name))))
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					sc := scenarios[i]
					results[i], errs[i] = sc.Run(rand.New(rand.NewSource(Seed(sc.Name))))
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Pair runs a baseline/variant measurement pair as a two-scenario sweep:
// the common shape of the ablation and comparison studies.
func Pair[T any](workers int, name string, f func(variant bool) (T, error)) (base, variant T, err error) {
	res, err := Run(workers, []Scenario[T]{
		{Name: name + "/baseline", Run: func(*rand.Rand) (T, error) { return f(false) }},
		{Name: name + "/variant", Run: func(*rand.Rand) (T, error) { return f(true) }},
	})
	if err != nil {
		var zero T
		return zero, zero, err
	}
	return res[0], res[1], nil
}
