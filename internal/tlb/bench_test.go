package tlb

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/arch/armv7"
)

// benchFill populates tb with n distinct small pages under ASID 1.
func benchFill(tb *TLB, n int) {
	for i := 0; i < n; i++ {
		tb.Insert(arch.VirtAddr(i)<<arch.PageShift, 1, arch.FrameNum(i),
			arch.PTEValid|arch.PTEUser|arch.PTEExec, armv7.DomainUser)
	}
}

// BenchmarkTLBLookupHit measures the resident-entry probe path of a full
// 128-entry main TLB, cycling through the whole working set so the
// one-entry MRU register never short-circuits the index.
func BenchmarkTLBLookupHit(b *testing.B) {
	tb := New("bench", 128, armv7.PagesPerLargePage)
	benchFill(tb, 128)
	dacr := armv7.StockDACR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, r := tb.Lookup(arch.VirtAddr(i&127)<<arch.PageShift, 1, dacr, arch.AccessFetch); r != Hit {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkTLBLookupHitMRU measures the repeated-page probe path: the
// same translation is looked up back to back, as happens for every
// instruction of a straight-line basic block.
func BenchmarkTLBLookupHitMRU(b *testing.B) {
	tb := New("bench", 128, armv7.PagesPerLargePage)
	benchFill(tb, 128)
	dacr := armv7.StockDACR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, r := tb.Lookup(0x1000, 1, dacr, arch.AccessFetch); r != Hit {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkTLBLookupMiss measures the miss-detection path of a full main
// TLB: the probe that precedes every hardware page walk.
func BenchmarkTLBLookupMiss(b *testing.B) {
	tb := New("bench", 128, armv7.PagesPerLargePage)
	benchFill(tb, 128)
	dacr := armv7.StockDACR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := arch.VirtAddr(1024+(i&1023)) << arch.PageShift
		if _, r := tb.Lookup(va, 1, dacr, arch.AccessFetch); r != Miss {
			b.Fatal("unexpected hit")
		}
	}
}

// BenchmarkTLBInsertEvict measures Insert into a full TLB, where every
// load must also choose and displace the LRU victim.
func BenchmarkTLBInsertEvict(b *testing.B) {
	tb := New("bench", 128, armv7.PagesPerLargePage)
	benchFill(tb, 128)
	flags := arch.PTEValid | arch.PTEUser | arch.PTEExec
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := arch.VirtAddr(128+(i&0xFFFFF)) << arch.PageShift
		tb.Insert(va, 1, arch.FrameNum(i), flags, armv7.DomainUser)
	}
}

// BenchmarkTLBLookupLargePage measures the probe path when the working
// set is mapped with 64KB large pages, exercising the masked-VPN index.
func BenchmarkTLBLookupLargePage(b *testing.B) {
	tb := New("bench", 128, armv7.PagesPerLargePage)
	flags := arch.PTEValid | arch.PTEUser | arch.PTEExec | arch.PTELarge
	for i := 0; i < 64; i++ {
		va := arch.VirtAddr(i) << armv7.LargePageShift
		tb.Insert(va, 1, arch.FrameNum(i*armv7.PagesPerLargePage), flags, armv7.DomainUser)
	}
	dacr := armv7.StockDACR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Probe every 4KB page of the 64KB blocks in turn.
		va := arch.VirtAddr(i&1023) << arch.PageShift
		if _, r := tb.Lookup(va, 1, dacr, arch.AccessFetch); r != Hit {
			b.Fatal("unexpected miss")
		}
	}
}

// The BenchmarkReference* group mirrors the benchmarks above over the
// linear reference implementation, so BENCH_hotpath.json's before/after
// columns can be re-measured on one machine in one run.

func refBenchFill(tb *linearTLB, n int) {
	for i := 0; i < n; i++ {
		tb.Insert(arch.VirtAddr(i)<<arch.PageShift, 1, arch.FrameNum(i),
			arch.PTEValid|arch.PTEUser|arch.PTEExec, armv7.DomainUser)
	}
}

func BenchmarkReferenceTLBLookupHit(b *testing.B) {
	tb := newLinear(128, armv7.PagesPerLargePage)
	refBenchFill(tb, 128)
	dacr := armv7.StockDACR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, r := tb.Lookup(arch.VirtAddr(i&127)<<arch.PageShift, 1, dacr, arch.AccessFetch); r != Hit {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkReferenceTLBLookupHitMRU(b *testing.B) {
	tb := newLinear(128, armv7.PagesPerLargePage)
	refBenchFill(tb, 128)
	dacr := armv7.StockDACR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, r := tb.Lookup(0x1000, 1, dacr, arch.AccessFetch); r != Hit {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkReferenceTLBLookupMiss(b *testing.B) {
	tb := newLinear(128, armv7.PagesPerLargePage)
	refBenchFill(tb, 128)
	dacr := armv7.StockDACR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := arch.VirtAddr(1024+(i&1023)) << arch.PageShift
		if _, r := tb.Lookup(va, 1, dacr, arch.AccessFetch); r != Miss {
			b.Fatal("unexpected hit")
		}
	}
}

func BenchmarkReferenceTLBInsertEvict(b *testing.B) {
	tb := newLinear(128, armv7.PagesPerLargePage)
	refBenchFill(tb, 128)
	flags := arch.PTEValid | arch.PTEUser | arch.PTEExec
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := arch.VirtAddr(128+(i&0xFFFFF)) << arch.PageShift
		tb.Insert(va, 1, arch.FrameNum(i), flags, armv7.DomainUser)
	}
}

func BenchmarkReferenceTLBLookupLargePage(b *testing.B) {
	tb := newLinear(128, armv7.PagesPerLargePage)
	flags := arch.PTEValid | arch.PTEUser | arch.PTEExec | arch.PTELarge
	for i := 0; i < 64; i++ {
		va := arch.VirtAddr(i) << armv7.LargePageShift
		tb.Insert(va, 1, arch.FrameNum(i*armv7.PagesPerLargePage), flags, armv7.DomainUser)
	}
	dacr := armv7.StockDACR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := arch.VirtAddr(i&1023) << arch.PageShift
		if _, r := tb.Lookup(va, 1, dacr, arch.AccessFetch); r != Hit {
			b.Fatal("unexpected miss")
		}
	}
}
