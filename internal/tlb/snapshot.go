// Persistent-image support: serializable snapshots (internal/imagestore).
// Only the architectural state — the entry array, the clock, and the
// counters — is stored; the derived index structures (idx, validBits,
// LRU list, MRU register) are rebuilt at restore, in the same way New
// plus a replay of inserts would build them. The MRU register restores
// cleared, which is behaviour-neutral: it is a pure cache of the last
// hit and every miss path falls back to the index.

package tlb

import (
	"fmt"
	"sort"

	"repro/internal/arch"
)

// EntrySnapshot is the serializable form of one TLB entry. VPN is the
// stored (pre-masked, for large pages) page number, exactly as Insert
// keeps it.
type EntrySnapshot struct {
	Valid   bool
	VPN     uint32
	ASID    arch.ASID
	Global  bool
	Large   bool
	Domain  uint8
	Frame   arch.FrameNum
	Flags   arch.PTEFlags
	LastUse uint64
}

// Snapshot is the serializable state of one TLB.
type Snapshot struct {
	Name            string
	DomainMatchInHW bool
	Clock           uint64
	Stats           Stats
	Entries         []EntrySnapshot
}

// SnapshotState captures the TLB's architectural state. Entries has one
// element per slot, invalid slots included, so slot numbers survive the
// round trip.
func (t *TLB) SnapshotState() Snapshot {
	s := Snapshot{
		Name:            t.name,
		DomainMatchInHW: t.DomainMatchInHW,
		Clock:           t.clock,
		Stats:           t.stats,
		Entries:         make([]EntrySnapshot, len(t.entries)),
	}
	for i, e := range t.entries {
		s.Entries[i] = EntrySnapshot{
			Valid: e.valid, VPN: e.vpn, ASID: e.asid, Global: e.global,
			Large: e.large, Domain: e.domain, Frame: e.frame,
			Flags: e.flags, LastUse: e.lastUse,
		}
	}
	return s
}

// Restore rebuilds a TLB from its snapshot. pagesPerLarge is the owning
// architecture's large-page factor, exactly as passed to New. The LRU
// list is reconstructed by pushing the valid slots in ascending lastUse
// order — exact, because lastUse values are unique (every Lookup and
// Insert ticks the clock).
func Restore(s Snapshot, pagesPerLarge int) (*TLB, error) {
	if len(s.Entries) == 0 {
		return nil, fmt.Errorf("tlb: snapshot %q has no entry slots", s.Name)
	}
	t := New(s.Name, len(s.Entries), pagesPerLarge)
	t.DomainMatchInHW = s.DomainMatchInHW
	t.clock = s.Clock
	t.stats = s.Stats
	var valid []int32
	for i, es := range s.Entries {
		if !es.Valid {
			continue
		}
		if es.LastUse > s.Clock {
			return nil, fmt.Errorf("tlb: snapshot %q slot %d used at %d, after clock %d", s.Name, i, es.LastUse, s.Clock)
		}
		if es.Large && es.VPN&t.largeMask != 0 {
			return nil, fmt.Errorf("tlb: snapshot %q slot %d has unmasked large-page VPN %#x", s.Name, i, es.VPN)
		}
		t.entries[i] = Entry{
			valid: true, vpn: es.VPN, asid: es.ASID, global: es.Global,
			large: es.Large, domain: es.Domain, frame: es.Frame,
			flags: es.Flags, lastUse: es.LastUse,
		}
		slot := int32(i)
		t.idxAdd(slot)
		t.setValid(slot)
		valid = append(valid, slot)
	}
	sort.Slice(valid, func(a, b int) bool {
		return t.entries[valid[a]].lastUse < t.entries[valid[b]].lastUse
	})
	for _, slot := range valid {
		t.lruPushBack(slot)
	}
	return t, nil
}
