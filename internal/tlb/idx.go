// idxTable is the TLB's key-to-slot index: a small open-addressed hash
// table with linear probing and backward-shift deletion, replacing a Go
// map on the hottest simulator path (every lookup, insert and targeted
// flush probes it). Capacity is four times the entry count rounded up to
// a power of two: at load factor ≤ 1/4 probe chains are nearly always a
// single cell, which keeps both get and the backward-shift in del short,
// and even the main TLB's table is only a few kilobytes. Purely an
// internal layout change: the differential tests against the reference
// linear TLB pin that behaviour is unchanged.

package tlb

// idxEmpty marks a free index cell. Real keys are entryKey values — a
// 20-bit VPN shifted left once — so they can never collide with it.
const idxEmpty = ^uint32(0)

type idxTable struct {
	keys  []uint32
	slots []int32
	mask  uint32
}

func newIdxTable(entries int) idxTable {
	capacity := 1
	for capacity < 4*entries {
		capacity <<= 1
	}
	it := idxTable{
		keys:  make([]uint32, capacity),
		slots: make([]int32, capacity),
		mask:  uint32(capacity - 1),
	}
	for i := range it.keys {
		it.keys[i] = idxEmpty
	}
	return it
}

// hash spreads the key with a Fibonacci multiplier; the xor-fold keeps
// the high bits relevant under the small mask.
func (it *idxTable) hash(k uint32) uint32 {
	h := k * 2654435769
	return (h ^ h>>16) & it.mask
}

func (it *idxTable) get(k uint32) (int32, bool) {
	i := it.hash(k)
	for {
		kk := it.keys[i]
		if kk == k {
			return it.slots[i], true
		}
		if kk == idxEmpty {
			return 0, false
		}
		i = (i + 1) & it.mask
	}
}

// set inserts k or overwrites its value. The caller keeps at most one
// live key per TLB entry, so the half-empty table always has room.
func (it *idxTable) set(k uint32, v int32) {
	i := it.hash(k)
	for {
		kk := it.keys[i]
		if kk == k || kk == idxEmpty {
			it.keys[i] = k
			it.slots[i] = v
			return
		}
		i = (i + 1) & it.mask
	}
}

// del removes k, if present, with backward-shift deletion: later entries
// of the probe chain slide back so lookups never need tombstones.
func (it *idxTable) del(k uint32) {
	i := it.hash(k)
	for {
		kk := it.keys[i]
		if kk == idxEmpty {
			return
		}
		if kk == k {
			break
		}
		i = (i + 1) & it.mask
	}
	j := i
	for {
		it.keys[i] = idxEmpty
		var kk uint32
		for {
			j = (j + 1) & it.mask
			kk = it.keys[j]
			if kk == idxEmpty {
				return
			}
			// An entry whose home position lies cyclically in (i, j]
			// is still reachable from its home; leave it. Anything
			// else must slide back into the hole at i.
			h := it.hash(kk)
			if i <= j {
				if i < h && h <= j {
					continue
				}
			} else if h > i || h <= j {
				continue
			}
			break
		}
		it.keys[i] = kk
		it.slots[i] = it.slots[j]
		i = j
	}
}

func (it *idxTable) clear() {
	for i := range it.keys {
		it.keys[i] = idxEmpty
	}
}

// clone returns an independent copy, for checkpoint forks.
func (it *idxTable) clone() idxTable {
	return idxTable{
		keys:  append([]uint32(nil), it.keys...),
		slots: append([]int32(nil), it.slots...),
		mask:  it.mask,
	}
}
