package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/arch/armv7"
)

const (
	asid1 = arch.ASID(1)
	asid2 = arch.ASID(2)
)

func userFlags(extra arch.PTEFlags) arch.PTEFlags {
	return arch.PTEValid | arch.PTEUser | arch.PTEExec | extra
}

func TestMissThenHit(t *testing.T) {
	tb := New("main", 8, armv7.PagesPerLargePage)
	dacr := armv7.StockDACR()
	if _, r := tb.Lookup(0x1000, asid1, dacr, arch.AccessFetch); r != Miss {
		t.Fatalf("lookup = %v, want miss", r)
	}
	tb.Insert(0x1000, asid1, 42, userFlags(0), armv7.DomainUser)
	e, r := tb.Lookup(0x1000, asid1, dacr, arch.AccessFetch)
	if r != Hit {
		t.Fatalf("lookup = %v, want hit", r)
	}
	if e.Frame() != 42 {
		t.Errorf("frame = %d, want 42", e.Frame())
	}
	s := tb.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Insertions != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestASIDIsolation(t *testing.T) {
	tb := New("main", 8, armv7.PagesPerLargePage)
	dacr := armv7.StockDACR()
	tb.Insert(0x1000, asid1, 42, userFlags(0), armv7.DomainUser)
	if _, r := tb.Lookup(0x1000, asid2, dacr, arch.AccessFetch); r != Miss {
		t.Errorf("non-global entry must not match another ASID: got %v", r)
	}
}

func TestGlobalMatchesAnyASID(t *testing.T) {
	tb := New("main", 8, armv7.PagesPerLargePage)
	dacr := armv7.ZygoteDACR()
	tb.Insert(0x1000, asid1, 42, userFlags(arch.PTEGlobal), armv7.DomainZygote)
	e, r := tb.Lookup(0x1000, asid2, dacr, arch.AccessFetch)
	if r != Hit {
		t.Fatalf("global entry should hit under any ASID: got %v", r)
	}
	if !e.Global() || e.Domain() != armv7.DomainZygote {
		t.Errorf("entry = %+v", e)
	}
}

func TestDomainFault(t *testing.T) {
	tb := New("main", 8, armv7.PagesPerLargePage)
	// Entry loaded by a zygote-like process in the zygote domain...
	tb.Insert(0x1000, asid1, 42, userFlags(arch.PTEGlobal), armv7.DomainZygote)
	// ...is globally matched by a non-zygote process, whose DACR denies
	// the zygote domain: domain fault, not a hit and not a miss.
	_, r := tb.Lookup(0x1000, asid2, armv7.StockDACR(), arch.AccessFetch)
	if r != DomainFault {
		t.Fatalf("lookup = %v, want domain fault", r)
	}
	if tb.Stats().DomainFaults != 1 {
		t.Errorf("DomainFaults = %d, want 1", tb.Stats().DomainFaults)
	}
}

func TestPermissionChecks(t *testing.T) {
	tb := New("main", 8, armv7.PagesPerLargePage)
	dacr := armv7.StockDACR()
	// Read-only, non-executable data page.
	tb.Insert(0x1000, asid1, 1, arch.PTEValid|arch.PTEUser, armv7.DomainUser)
	if _, r := tb.Lookup(0x1000, asid1, dacr, arch.AccessRead); r != Hit {
		t.Errorf("read = %v, want hit", r)
	}
	if _, r := tb.Lookup(0x1000, asid1, dacr, arch.AccessWrite); r != PermFault {
		t.Errorf("write = %v, want permission fault", r)
	}
	if _, r := tb.Lookup(0x1000, asid1, dacr, arch.AccessFetch); r != PermFault {
		t.Errorf("fetch = %v, want permission fault", r)
	}
	// Kernel-only page: no user bit.
	tb.Insert(0x2000, asid1, 2, arch.PTEValid|arch.PTEWrite, armv7.DomainUser)
	if _, r := tb.Lookup(0x2000, asid1, dacr, arch.AccessRead); r != PermFault {
		t.Errorf("user access to kernel page = %v, want permission fault", r)
	}
}

func TestManagerOverridesPermissions(t *testing.T) {
	tb := New("main", 8, armv7.PagesPerLargePage)
	dacr := armv7.StockDACR().WithAccess(armv7.DomainUser, arch.DomainManager)
	tb.Insert(0x1000, asid1, 1, arch.PTEValid|arch.PTEUser, armv7.DomainUser)
	if _, r := tb.Lookup(0x1000, asid1, dacr, arch.AccessWrite); r != Hit {
		t.Errorf("manager-domain write = %v, want hit", r)
	}
}

func TestLRUEviction(t *testing.T) {
	tb := New("main", 2, armv7.PagesPerLargePage)
	dacr := armv7.StockDACR()
	tb.Insert(0x1000, asid1, 1, userFlags(0), armv7.DomainUser)
	tb.Insert(0x2000, asid1, 2, userFlags(0), armv7.DomainUser)
	// Touch 0x1000 so 0x2000 becomes LRU.
	if _, r := tb.Lookup(0x1000, asid1, dacr, arch.AccessFetch); r != Hit {
		t.Fatal("expected hit")
	}
	tb.Insert(0x3000, asid1, 3, userFlags(0), armv7.DomainUser)
	if _, r := tb.Lookup(0x1000, asid1, dacr, arch.AccessFetch); r != Hit {
		t.Errorf("recently used entry was evicted")
	}
	if _, r := tb.Lookup(0x2000, asid1, dacr, arch.AccessFetch); r != Miss {
		t.Errorf("LRU entry should have been evicted")
	}
	if tb.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", tb.Stats().Evictions)
	}
}

func TestInsertOverwritesMatching(t *testing.T) {
	tb := New("main", 4, armv7.PagesPerLargePage)
	dacr := armv7.StockDACR()
	tb.Insert(0x1000, asid1, 1, userFlags(0), armv7.DomainUser)
	tb.Insert(0x1000, asid1, 9, userFlags(0), armv7.DomainUser)
	e, r := tb.Lookup(0x1000, asid1, dacr, arch.AccessFetch)
	if r != Hit || e.Frame() != 9 {
		t.Errorf("lookup = (%v, frame %d), want hit frame 9", r, e.Frame())
	}
	if v, _ := tb.Occupancy(); v != 1 {
		t.Errorf("occupancy = %d, want 1 (in-place overwrite)", v)
	}
	if tb.Stats().Evictions != 0 {
		t.Errorf("in-place overwrite must not count as eviction")
	}
}

func TestFlushAll(t *testing.T) {
	tb := New("main", 4, armv7.PagesPerLargePage)
	tb.Insert(0x1000, asid1, 1, userFlags(0), armv7.DomainUser)
	tb.Insert(0x2000, asid1, 2, userFlags(arch.PTEGlobal), armv7.DomainZygote)
	tb.FlushAll()
	if v, _ := tb.Occupancy(); v != 0 {
		t.Errorf("occupancy after FlushAll = %d", v)
	}
	if tb.Stats().FlushedEntries != 2 {
		t.Errorf("FlushedEntries = %d, want 2", tb.Stats().FlushedEntries)
	}
}

func TestFlushASIDSparesGlobal(t *testing.T) {
	tb := New("main", 4, armv7.PagesPerLargePage)
	dacr := armv7.ZygoteDACR()
	tb.Insert(0x1000, asid1, 1, userFlags(0), armv7.DomainUser)
	tb.Insert(0x2000, asid1, 2, userFlags(arch.PTEGlobal), armv7.DomainZygote)
	tb.Insert(0x3000, asid2, 3, userFlags(0), armv7.DomainUser)
	tb.FlushASID(asid1)
	if _, r := tb.Lookup(0x1000, asid1, dacr, arch.AccessFetch); r != Miss {
		t.Errorf("asid1 private entry should be flushed")
	}
	if _, r := tb.Lookup(0x2000, asid2, dacr, arch.AccessFetch); r != Hit {
		t.Errorf("global entry must survive FlushASID")
	}
	if _, r := tb.Lookup(0x3000, asid2, dacr, arch.AccessFetch); r != Hit {
		t.Errorf("other ASID's entry must survive")
	}
}

func TestFlushNonGlobal(t *testing.T) {
	tb := New("main", 4, armv7.PagesPerLargePage)
	dacr := armv7.ZygoteDACR()
	tb.Insert(0x1000, asid1, 1, userFlags(0), armv7.DomainUser)
	tb.Insert(0x2000, asid1, 2, userFlags(arch.PTEGlobal), armv7.DomainZygote)
	tb.Insert(0x3000, asid2, 3, userFlags(0), armv7.DomainUser)
	if n := tb.FlushNonGlobal(); n != 2 {
		t.Errorf("FlushNonGlobal flushed %d, want 2", n)
	}
	if _, r := tb.Lookup(0x2000, asid1, dacr, arch.AccessFetch); r != Hit {
		t.Error("global entry must survive FlushNonGlobal")
	}
	if _, r := tb.Lookup(0x1000, asid1, dacr, arch.AccessFetch); r != Miss {
		t.Error("private entries must be flushed")
	}
}

func TestFlushVA(t *testing.T) {
	tb := New("main", 4, armv7.PagesPerLargePage)
	dacr := armv7.ZygoteDACR()
	tb.Insert(0x1000, asid1, 1, userFlags(0), armv7.DomainUser)
	tb.Insert(0x1000, asid2, 2, userFlags(0), armv7.DomainUser)
	tb.Insert(0x2000, asid1, 3, userFlags(0), armv7.DomainUser)
	if n := tb.FlushVA(0x1234); n != 2 {
		t.Errorf("FlushVA flushed %d entries, want 2 (both ASIDs' mappings of the page)", n)
	}
	if _, r := tb.Lookup(0x2000, asid1, dacr, arch.AccessFetch); r != Hit {
		t.Errorf("unrelated entry must survive FlushVA")
	}
}

func TestFlushRange(t *testing.T) {
	tb := New("main", 8, armv7.PagesPerLargePage)
	dacr := armv7.StockDACR()
	tb.Insert(0x1000, asid1, 1, userFlags(0), armv7.DomainUser)
	tb.Insert(0x2000, asid1, 2, userFlags(0), armv7.DomainUser)
	tb.Insert(0x5000, asid1, 3, userFlags(0), armv7.DomainUser)
	tb.Insert(0x2000, asid2, 4, userFlags(0), armv7.DomainUser)
	if n := tb.FlushRange(0x1000, 0x3000, asid1); n != 2 {
		t.Errorf("FlushRange flushed %d, want 2", n)
	}
	if _, r := tb.Lookup(0x5000, asid1, dacr, arch.AccessFetch); r != Hit {
		t.Errorf("entry past range should survive")
	}
	if _, r := tb.Lookup(0x2000, asid2, dacr, arch.AccessFetch); r != Hit {
		t.Errorf("other ASID should survive a non-global range flush")
	}
}

func TestDomainFaultThenFlushVAThenWalk(t *testing.T) {
	// The full hardware/software dance of Section 3.2.3: a non-zygote
	// process trips a domain fault on a global entry; the handler flushes
	// entries matching the faulting address; the retry misses and the
	// process loads its own private translation.
	tb := New("main", 8, armv7.PagesPerLargePage)
	tb.Insert(0x1000, asid1, 42, userFlags(arch.PTEGlobal), armv7.DomainZygote)
	nonZygote := armv7.StockDACR()
	if _, r := tb.Lookup(0x1000, asid2, nonZygote, arch.AccessFetch); r != DomainFault {
		t.Fatalf("want domain fault, got %v", r)
	}
	tb.FlushVA(0x1000)
	if _, r := tb.Lookup(0x1000, asid2, nonZygote, arch.AccessFetch); r != Miss {
		t.Fatalf("after flush want miss, got %v", r)
	}
	tb.Insert(0x1000, asid2, 77, userFlags(0), armv7.DomainUser)
	e, r := tb.Lookup(0x1000, asid2, nonZygote, arch.AccessFetch)
	if r != Hit || e.Frame() != 77 {
		t.Fatalf("retry = (%v, frame %d), want hit frame 77", r, e.Frame())
	}
}

func TestOccupancy(t *testing.T) {
	tb := New("main", 8, armv7.PagesPerLargePage)
	tb.Insert(0x1000, asid1, 1, userFlags(0), armv7.DomainUser)
	tb.Insert(0x2000, asid1, 2, userFlags(arch.PTEGlobal), armv7.DomainZygote)
	v, g := tb.Occupancy()
	if v != 2 || g != 1 {
		t.Errorf("occupancy = (%d, %d), want (2, 1)", v, g)
	}
}

func TestResetStats(t *testing.T) {
	tb := New("main", 8, armv7.PagesPerLargePage)
	tb.Insert(0x1000, asid1, 1, userFlags(0), armv7.DomainUser)
	tb.Lookup(0x1000, asid1, armv7.StockDACR(), arch.AccessFetch)
	tb.ResetStats()
	if s := tb.Stats(); s.Hits != 0 || s.Insertions != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	// Entries survive a stats reset.
	if _, r := tb.Lookup(0x1000, asid1, armv7.StockDACR(), arch.AccessFetch); r != Hit {
		t.Errorf("entries should survive ResetStats")
	}
}

// TestInsertLookupProperty: anything inserted is immediately visible under
// its own ASID with client access, for any page-aligned address.
func TestInsertLookupProperty(t *testing.T) {
	prop := func(raw uint32, asidRaw uint8, frame uint32) bool {
		tb := New("main", 16, armv7.PagesPerLargePage)
		va := arch.VirtAddr(raw)
		asid := arch.ASID(asidRaw)
		tb.Insert(va, asid, arch.FrameNum(frame), userFlags(0), armv7.DomainUser)
		e, r := tb.Lookup(va, asid, armv7.StockDACR(), arch.AccessFetch)
		if r != Hit || e.Frame() != arch.FrameNum(frame) {
			return false
		}
		// Any other address in the same page also hits.
		e2, r2 := tb.Lookup(arch.PageBase(va)+123, asid, armv7.StockDACR(), arch.AccessRead)
		return r2 == Hit && e2.Frame() == e.Frame()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestCapacityProperty: with N entries, inserting N distinct pages under
// one ASID keeps them all resident.
func TestCapacityProperty(t *testing.T) {
	tb := New("main", 32, armv7.PagesPerLargePage)
	for i := 0; i < 32; i++ {
		tb.Insert(arch.VirtAddr(i)<<arch.PageShift, asid1, arch.FrameNum(i), userFlags(0), armv7.DomainUser)
	}
	for i := 0; i < 32; i++ {
		if _, r := tb.Lookup(arch.VirtAddr(i)<<arch.PageShift, asid1, armv7.StockDACR(), arch.AccessFetch); r != Hit {
			t.Fatalf("entry %d not resident", i)
		}
	}
	if tb.Stats().Evictions != 0 {
		t.Errorf("filling to capacity must not evict, got %d", tb.Stats().Evictions)
	}
}

func TestResultString(t *testing.T) {
	for r := Miss; r <= PermFault+1; r++ {
		if r.String() == "" {
			t.Errorf("empty string for result %d", r)
		}
	}
}
