// Clone must copy every entry and stay allocation-bounded: a handful of
// slice copies sized by the TLB's capacity, never one allocation per
// entry.

package tlb

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/arch/armv7"
)

func TestCloneCopiesStateAndDetaches(t *testing.T) {
	a := New("main", 64, armv7.PagesPerLargePage)
	for i := 0; i < 40; i++ {
		a.Insert(arch.VirtAddr(i*arch.PageSize), 1, arch.FrameNum(i), arch.PTEValid, 1)
	}
	b := a.Clone(nil, nil)
	av, ag := a.Occupancy()
	bv, bg := b.Occupancy()
	if av != bv || ag != bg {
		t.Fatalf("clone occupancy %d/%d, want %d/%d", bv, bg, av, ag)
	}
	// Mutating the clone must not touch the original.
	b.FlushAll()
	if v, _ := a.Occupancy(); v != av {
		t.Errorf("flushing the clone changed the original: %d -> %d valid", av, v)
	}
	if v, _ := b.Occupancy(); v != 0 {
		t.Errorf("clone not flushed: %d valid", v)
	}
}

func TestCloneAllocationBounded(t *testing.T) {
	a := New("main", 64, armv7.PagesPerLargePage)
	for i := 0; i < 64; i++ {
		a.Insert(arch.VirtAddr(i*arch.PageSize), 1, arch.FrameNum(i), arch.PTEValid, 1)
	}
	var sink *TLB
	allocs := testing.AllocsPerRun(100, func() {
		sink = a.Clone(nil, nil)
	})
	_ = sink
	if max := 10.0; allocs > max {
		t.Errorf("Clone() = %.0f allocs for a full 64-entry TLB, want <= %.0f", allocs, max)
	}
}
