package tlb

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/arch"
	"repro/internal/arch/armv7"
	"repro/internal/arch/sv39"
)

// The differential property test: the indexed TLB and the reference
// linear implementation are driven through identical randomized
// Lookup/Insert/Flush sequences and must agree on every operation's
// result, every counter, and the entire entry array after every step.
// This is the proof obligation for the hot-path index (see the package
// comment): the paper's results are event counts, so the optimization
// must be count-preserving, and entry-state equality is stronger still.

// diffDACRs is the register mix the ops draw from: stock, zygote,
// manager-override, deny-user (domain faults on user entries), and
// all-manager.
func diffDACRs() []arch.DACR {
	deny := arch.DACR(0).WithAccess(armv7.DomainKernel, arch.DomainClient)
	var manager arch.DACR
	for d := uint8(0); d < 4; d++ {
		manager = manager.WithAccess(d, arch.DomainManager)
	}
	return []arch.DACR{
		armv7.StockDACR(),
		armv7.ZygoteDACR(),
		armv7.StockDACR().WithAccess(armv7.DomainUser, arch.DomainManager),
		deny,
		manager,
	}
}

// diffOp applies one random operation to both implementations and fails
// the test on any divergence in the operation's outcome.
func diffOp(t *testing.T, rng *rand.Rand, indexed *TLB, ref *linearTLB, dacrs []arch.DACR) {
	t.Helper()
	// Address pool: 48 small pages, aliasing the first three 64KB blocks,
	// plus offsets within pages so VPN extraction is exercised.
	va := arch.VirtAddr(rng.Intn(48))<<arch.PageShift | arch.VirtAddr(rng.Intn(arch.PageSize))
	asid := arch.ASID(1 + rng.Intn(3))
	kind := arch.AccessKind(rng.Intn(3))
	dacr := dacrs[rng.Intn(len(dacrs))]

	switch r := rng.Intn(100); {
	case r < 55: // Lookup
		ge, gr := indexed.Lookup(va, asid, dacr, kind)
		we, wr := ref.Lookup(va, asid, dacr, kind)
		if ge != we || gr != wr {
			t.Fatalf("Lookup(%#x, asid %d, dacr %#x, %v) diverged:\n  indexed (%+v, %v)\n  reference (%+v, %v)",
				va, asid, dacr, kind, ge, gr, we, wr)
		}
	case r < 85: // Insert
		flags := arch.PTEValid
		if rng.Intn(100) < 80 {
			flags |= arch.PTEUser
		}
		if rng.Intn(2) == 0 {
			flags |= arch.PTEExec
		}
		if rng.Intn(2) == 0 {
			flags |= arch.PTEWrite
		}
		if rng.Intn(100) < 25 {
			flags |= arch.PTEGlobal
		}
		if rng.Intn(100) < 20 {
			flags |= arch.PTELarge
		}
		frame := arch.FrameNum(rng.Intn(1 << 16))
		domain := uint8(rng.Intn(4))
		indexed.Insert(va, asid, frame, flags, domain)
		ref.Insert(va, asid, frame, flags, domain)
	case r < 90: // FlushVA (the domain-fault handler / shootdown path)
		if gn, wn := indexed.FlushVA(va), ref.FlushVA(va); gn != wn {
			t.Fatalf("FlushVA(%#x) diverged: indexed %d, reference %d", va, gn, wn)
		}
	case r < 93: // FlushASID
		indexed.FlushASID(asid)
		ref.FlushASID(asid)
	case r < 96: // FlushRange
		end := va + arch.VirtAddr(rng.Intn(8))<<arch.PageShift + 1
		if gn, wn := indexed.FlushRange(va, end, asid), ref.FlushRange(va, end, asid); gn != wn {
			t.Fatalf("FlushRange(%#x, %#x, asid %d) diverged: indexed %d, reference %d", va, end, asid, gn, wn)
		}
	case r < 97: // FlushNonGlobal (no-ASID context switch)
		if gn, wn := indexed.FlushNonGlobal(), ref.FlushNonGlobal(); gn != wn {
			t.Fatalf("FlushNonGlobal diverged: indexed %d, reference %d", gn, wn)
		}
	case r < 99: // FlushGlobal (no-domain shared-mapping shootdown)
		if gn, wn := indexed.FlushGlobal(), ref.FlushGlobal(); gn != wn {
			t.Fatalf("FlushGlobal diverged: indexed %d, reference %d", gn, wn)
		}
	default: // FlushAll
		indexed.FlushAll()
		ref.FlushAll()
	}
}

// diffCompareState fails the test unless both implementations hold
// identical entries, counters, and occupancy.
func diffCompareState(t *testing.T, step int, indexed *TLB, ref *linearTLB) {
	t.Helper()
	if !slices.Equal(indexed.entries, ref.entries) {
		for i := range indexed.entries {
			if indexed.entries[i] != ref.entries[i] {
				t.Fatalf("step %d: entry %d diverged:\n  indexed %+v\n  reference %+v",
					step, i, indexed.entries[i], ref.entries[i])
			}
		}
	}
	if indexed.stats != ref.stats {
		t.Fatalf("step %d: stats diverged:\n  indexed %+v\n  reference %+v", step, indexed.stats, ref.stats)
	}
	gv, gg := indexed.Occupancy()
	wv, wg := ref.Occupancy()
	if gv != wv || gg != wg {
		t.Fatalf("step %d: occupancy diverged: indexed (%d, %d), reference (%d, %d)", step, gv, gg, wv, wg)
	}
	if indexed.numValid != wv {
		t.Fatalf("step %d: numValid %d inconsistent with occupancy %d", step, indexed.numValid, wv)
	}
}

func TestDifferentialIndexedVsLinear(t *testing.T) {
	dacrs := diffDACRs()
	const opsPerConfig = 12000
	for _, size := range []int{1, 2, 3, 8, 32, 128} {
		for _, hw := range []bool{false, true} {
			// Both large-page granularities: ARMv7's 16-page 64KB pages
			// and Sv39's 512-page 2MB megapages.
			for _, ppl := range []int{armv7.PagesPerLargePage, sv39.PagesPerMegaPage} {
				size, hw, ppl := size, hw, ppl
				name := fmt.Sprintf("size=%d/hw=%v/ppl=%d", size, hw, ppl)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(size)*2 + int64(boolToInt(hw)) + int64(ppl)))
					indexed := New("diff", size, ppl)
					ref := newLinear(size, ppl)
					indexed.DomainMatchInHW = hw
					ref.DomainMatchInHW = hw
					for step := 0; step < opsPerConfig; step++ {
						diffOp(t, rng, indexed, ref, dacrs)
						diffCompareState(t, step, indexed, ref)
					}
				})
			}
		}
	}
}

// TestDifferentialHWToggle flips DomainMatchInHW mid-sequence (as the
// DomainMatchStudy boots different configs, a single TLB never toggles —
// but the MRU register must not carry stale assumptions across a toggle).
func TestDifferentialHWToggle(t *testing.T) {
	dacrs := diffDACRs()
	rng := rand.New(rand.NewSource(99))
	indexed := New("diff", 16, armv7.PagesPerLargePage)
	ref := newLinear(16, armv7.PagesPerLargePage)
	for step := 0; step < 20000; step++ {
		if rng.Intn(200) == 0 {
			hw := rng.Intn(2) == 0
			indexed.DomainMatchInHW = hw
			ref.DomainMatchInHW = hw
		}
		diffOp(t, rng, indexed, ref, dacrs)
		diffCompareState(t, step, indexed, ref)
	}
}

// TestDifferentialLargePageHeavy skews toward large pages and aliased
// small pages so the masked-VPN key and the spill fallback are exercised
// hard.
func TestDifferentialLargePageHeavy(t *testing.T) {
	dacrs := diffDACRs()
	rng := rand.New(rand.NewSource(7))
	indexed := New("diff", 8, armv7.PagesPerLargePage)
	ref := newLinear(8, armv7.PagesPerLargePage)
	for step := 0; step < 15000; step++ {
		// Only two 64KB blocks: constant aliasing between the one large
		// mapping and its sixteen small pages, across three ASIDs and
		// mixed global bits — the worst case for the index.
		va := arch.VirtAddr(rng.Intn(32)) << arch.PageShift
		asid := arch.ASID(1 + rng.Intn(3))
		dacr := dacrs[rng.Intn(len(dacrs))]
		switch r := rng.Intn(10); {
		case r < 5:
			ge, gr := indexed.Lookup(va, asid, dacr, arch.AccessFetch)
			we, wr := ref.Lookup(va, asid, dacr, arch.AccessFetch)
			if ge != we || gr != wr {
				t.Fatalf("Lookup(%#x, asid %d) diverged: indexed (%+v, %v), reference (%+v, %v)",
					va, asid, ge, gr, we, wr)
			}
		case r < 9:
			flags := arch.PTEValid | arch.PTEUser | arch.PTEExec
			if rng.Intn(2) == 0 {
				flags |= arch.PTELarge
			}
			if rng.Intn(2) == 0 {
				flags |= arch.PTEGlobal
			}
			indexed.Insert(va, asid, arch.FrameNum(step), flags, armv7.DomainUser)
			ref.Insert(va, asid, arch.FrameNum(step), flags, armv7.DomainUser)
		default:
			if gn, wn := indexed.FlushVA(va), ref.FlushVA(va); gn != wn {
				t.Fatalf("FlushVA(%#x) diverged: indexed %d, reference %d", va, gn, wn)
			}
		}
		diffCompareState(t, step, indexed, ref)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
