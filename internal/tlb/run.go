// Run-oriented lookup primitives for the batched execution engine
// (cpu.AccessBatch): resolve a reference once, then commit whole spans of
// consecutive TLB-hit iterations with one bookkeeping update.
//
// The contract with the scalar path is exact equivalence of all observable
// state. k consecutive scalar Lookups that hit the same entry perform:
// clock += k, entry.lastUse = final clock, Hits += k, k lruMoveBack calls
// (all but the first no-ops), and leave the MRU register describing the
// last query. CommitRunHits produces exactly that end state in O(1).
// Peek performs the index probe of Lookup without any of its mutations,
// so a run that peeks Miss/DomainFault/PermFault can fall back to the
// scalar path, which then counts the miss or fault exactly once.

package tlb

import "repro/internal/arch"

// Peek resolves va under (asid, dacr, kind) without mutating any TLB
// state: no clock advance, no counters, no LRU movement, no MRU update.
// On a Hit it returns the matching entry and its slot; the slot is the
// handle CommitRunHits and ResolvesVPN take. Peek returns exactly the
// Result a Lookup at this moment would return: it replays the index
// probe, and the MRU-register fast path Lookup would use is guaranteed
// to resolve at the same slot as the probe (see mruReg).
func (t *TLB) Peek(va arch.VirtAddr, asid arch.ASID, dacr arch.DACR, kind arch.AccessKind) (Entry, int32, Result) {
	vpn := arch.VPN(va)

	// MRU register, mirroring Lookup's fast path without its bookkeeping:
	// a repeat of the last hitting probe resolves at the same slot, and
	// skipping the hashed index probe here is what keeps Peek cheaper than
	// a Lookup for the batch engine's dominant repeat-page case. On a
	// NoAccess domain Lookup falls through to the index probe; so do we.
	if t.mru.ok && t.mru.vpn == vpn && t.mru.asid == asid && t.mru.dacr == dacr &&
		t.mru.hw == t.DomainMatchInHW {
		slot := t.mru.slot
		e := &t.entries[slot]
		if acc := dacr.Access(e.domain); acc != arch.DomainNoAccess {
			if acc == arch.DomainManager || e.permit(kind) {
				return *e, slot, Hit
			}
			return *e, slot, PermFault
		}
	}

	s0, ok0 := t.idx.get(entryKey(vpn, false))
	if t.numLarge == 0 {
		if s0 == idxMany {
			return t.peekScan(vpn, asid, dacr, kind)
		}
		if ok0 {
			if r, done := t.peekProbe(s0, vpn, asid, dacr, kind); done {
				return t.entries[s0], s0, r
			}
		}
		return Entry{}, -1, Miss
	}
	s1, ok1 := t.idx.get(entryKey(vpn&^t.largeMask, true))
	if s0 == idxMany || s1 == idxMany {
		return t.peekScan(vpn, asid, dacr, kind)
	}
	a, b := s0, s1
	if !ok0 {
		a, ok0 = s1, ok1
		ok1 = false
	} else if ok1 && s1 < s0 {
		a, b = s1, s0
	}
	if ok0 {
		if r, done := t.peekProbe(a, vpn, asid, dacr, kind); done {
			return t.entries[a], a, r
		}
	}
	if ok1 {
		if r, done := t.peekProbe(b, vpn, asid, dacr, kind); done {
			return t.entries[b], b, r
		}
	}
	return Entry{}, -1, Miss
}

// peekProbe is probe without the Hit/fault bookkeeping: the same match,
// domain, and permission decisions, mutating nothing.
func (t *TLB) peekProbe(slot int32, vpn uint32, asid arch.ASID, dacr arch.DACR, kind arch.AccessKind) (r Result, done bool) {
	ent := &t.entries[slot]
	if !ent.match(vpn, asid, t.largeMask) {
		return Miss, false
	}
	switch dacr.Access(ent.domain) {
	case arch.DomainNoAccess:
		if t.DomainMatchInHW {
			return Miss, false
		}
		return DomainFault, true
	case arch.DomainManager:
		return Hit, true
	default:
		if !ent.permit(kind) {
			return PermFault, true
		}
		return Hit, true
	}
}

// peekScan is lookupScan without mutations, for spilled index keys.
func (t *TLB) peekScan(vpn uint32, asid arch.ASID, dacr arch.DACR, kind arch.AccessKind) (Entry, int32, Result) {
	for i := range t.entries {
		if r, done := t.peekProbe(int32(i), vpn, asid, dacr, kind); done {
			return t.entries[i], int32(i), r
		}
	}
	return Entry{}, -1, Miss
}

// CommitRunHits applies the bookkeeping of n consecutive scalar Lookup
// hits on the entry at slot, the last of which queried va under
// (asid, dacr). The caller must have established — via Peek, and
// ResolvesVPN for every page crossed — that each of the n lookups would
// have hit this entry, and must not have mutated the TLB in between.
func (t *TLB) CommitRunHits(slot int32, n uint64, va arch.VirtAddr, asid arch.ASID, dacr arch.DACR) {
	t.clock += n
	e := &t.entries[slot]
	e.lastUse = t.clock
	t.lruMoveBack(slot)
	t.stats.Hits += n
	t.mru = mruReg{ok: true, hw: t.DomainMatchInHW, slot: slot, vpn: arch.VPN(va), asid: asid, dacr: dacr}
}

// ResolvesVPN reports whether a Lookup of vpn would hit the entry at
// slot with the same outcome the entry already produced for an earlier
// page, letting a run advance across page boundaries inside a
// large-page entry without re-probing. For a 4KB entry this is simply
// "same page". For a large entry the probe order consults the 4KB key
// first, so the advance is only safe while no 4KB entry (and no spilled
// 4KB key) exists for the new page — when one does, the caller must
// re-Peek, which decides the new page exactly. Domain and permission
// outcomes carry over because they depend only on the entry, the DACR,
// and the access kind, all fixed across a run.
func (t *TLB) ResolvesVPN(slot int32, vpn uint32, asid arch.ASID) bool {
	e := &t.entries[slot]
	if !e.match(vpn, asid, t.largeMask) {
		return false
	}
	if !e.large {
		return true
	}
	if _, ok := t.idx.get(entryKey(vpn, false)); ok {
		return false
	}
	return true
}

// LookupRun resolves up to max references at va, va+stride, ... and
// reports how many stayed resolved by the single entry the first
// reference hit: n consecutive hit iterations are committed with one
// CommitRunHits (large pages amortize thousands of iterations per
// probe), and the entry is returned for address computation. n = 0
// means the first reference does not hit — nothing was committed, and
// the scalar path must take over at va to count the miss or deliver
// the fault exactly as before.
func (t *TLB) LookupRun(va, stride arch.VirtAddr, max int, asid arch.ASID, dacr arch.DACR, kind arch.AccessKind) (int, Entry) {
	if max <= 0 {
		return 0, Entry{}
	}
	e, slot, r := t.Peek(va, asid, dacr, kind)
	if r != Hit {
		return 0, Entry{}
	}
	n := 1
	vpn := arch.VPN(va)
	last := va
	for n < max {
		nva := last + stride
		if nvpn := arch.VPN(nva); nvpn != vpn {
			if !t.ResolvesVPN(slot, nvpn, asid) {
				break
			}
			vpn = nvpn
		}
		last = nva
		n++
	}
	t.CommitRunHits(slot, uint64(n), last, asid, dacr)
	return n, e
}
