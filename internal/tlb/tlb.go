// Package tlb models the translation lookaside buffers of a Cortex-A9
// class ARMv7 core: small micro-TLBs that are flushed on every context
// switch, backed by a unified main TLB whose entries carry an address
// space identifier (ASID), a global bit, and a domain field.
//
// The global bit asserts that a mapping is identical in all virtual
// address spaces: a global entry matches regardless of the current ASID.
// On every access the MMU checks the matching entry's domain field against
// the domain access control register (DACR); with no access the MMU raises
// a domain fault, with client access the entry's permission bits are
// checked, and with manager access permissions are overridden. The
// shared-TLB design of the paper places zygote-preloaded shared code in a
// dedicated zygote domain so that global entries loaded by zygote-like
// processes cannot be used by non-zygote processes.
//
// # Hot path
//
// Lookup and Insert are the innermost loop of the whole simulator: every
// simulated instruction probes a micro-TLB and, on a miss, the main TLB.
// Instead of scanning all entries per probe (the fully associative
// hardware does that in parallel; software cannot), the TLB keeps an
// index from the virtual page number to the one slot that can match:
//
//   - idx maps key(vpn, large) to a slot, with a spill sentinel (idxMany)
//     when several entries share a key; the sentinel falls back to the
//     reference linear scan, so aliasing cases stay exact.
//   - a one-entry MRU register short-circuits repeated probes of the same
//     page under the same ASID and DACR, the common case for straight-line
//     code. Any mutation of the entry array invalidates it.
//   - a free-slot bitmap and a doubly-linked LRU list (exact, since
//     lastUse values are unique) make Insert's victim choice O(1).
//
// The indexed paths are behaviourally identical to the reference linear
// implementation (reference.go) — same results, same entry states, same
// counters — which the differential property test in
// differential_test.go enforces over randomized operation sequences.
package tlb

import (
	"fmt"
	"math/bits"

	"repro/internal/arch"
	"repro/internal/obs"
)

// Entry is one TLB entry. For a large-page entry, vpn holds the
// effective (large-page-masked) page number, precomputed at insert time
// so match never recomputes the mask on the entry side.
type Entry struct {
	valid   bool
	vpn     uint32
	asid    arch.ASID
	global  bool
	large   bool
	domain  uint8
	frame   arch.FrameNum
	flags   arch.PTEFlags
	lastUse uint64
}

// Frame returns the physical frame the entry translates to.
func (e Entry) Frame() arch.FrameNum { return e.frame }

// Global reports whether the entry's global bit is set.
func (e Entry) Global() bool { return e.global }

// Domain returns the entry's domain field.
func (e Entry) Domain() uint8 { return e.domain }

// Flags returns the entry's permission and attribute bits.
func (e Entry) Flags() arch.PTEFlags { return e.flags }

// Large reports whether the entry maps a large page.
func (e Entry) Large() bool { return e.large }

// Result is the outcome of a TLB lookup.
type Result uint8

const (
	// Miss: no entry matches; a page table walk is required.
	Miss Result = iota
	// Hit: a matching entry passed the domain and permission checks.
	Hit
	// DomainFault: a matching entry's domain is denied by the DACR.
	// The faulting address is reported via FSR/FAR to the exception
	// handler (a prefetch abort for fetches, a data abort otherwise).
	DomainFault
	// PermFault: a matching entry in a client-access domain failed the
	// PTE permission check.
	PermFault
)

// String names the lookup result.
func (r Result) String() string {
	switch r {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case DomainFault:
		return "domain fault"
	case PermFault:
		return "permission fault"
	default:
		return "unknown"
	}
}

// Stats counts TLB events.
type Stats struct {
	Hits           uint64
	Misses         uint64
	DomainFaults   uint64
	PermFaults     uint64
	Insertions     uint64
	Evictions      uint64
	Flushes        uint64
	FlushedEntries uint64
}

// idxMany is the index spill sentinel: more than one entry currently
// carries the key, so probes for it take the reference linear scan.
const idxMany int32 = -1

// mruReg is the one-entry most-recently-used register: the slot of the
// last Hit, valid only for a probe with the identical (vpn, asid, dacr)
// and DomainMatchInHW setting, and only while the entry array is
// unmutated (every Insert and flush clears ok). Under those conditions
// the probe is guaranteed to resolve at the same slot, because the scan
// prefix that was skipped could only contain entries that do not match or
// are domain-denied under the same DACR.
type mruReg struct {
	ok   bool
	hw   bool
	slot int32
	vpn  uint32
	asid arch.ASID
	dacr arch.DACR
}

// TLB is one translation buffer, fully associative with LRU replacement.
type TLB struct {
	// DomainMatchInHW models the hardware support the paper asks future
	// processors for (Sections 3.2.3 and 6): when set, an entry whose
	// domain the current DACR denies simply does not match — the lookup
	// misses and the walker loads the process's own translation —
	// instead of raising a domain-fault exception that software must
	// handle by flushing the matching entries.
	DomainMatchInHW bool

	name    string
	entries []Entry
	clock   uint64
	stats   Stats
	bus     *obs.Bus

	// largeMask masks a VPN down to its large-page base: pagesPerLarge-1
	// for the owning architecture (15 on ARMv7's 64KB pages, 511 on
	// Sv39's 2MB megapages).
	largeMask uint32

	// Indexed fast path; see the package comment. validBits marks valid
	// slots (phantom bits past len(entries) are permanently set so the
	// first-free scan never reports them). lruPrev/lruNext thread the
	// valid slots in recency order: lruHead is the least and lruTail the
	// most recently used.
	idx       idxTable
	validBits []uint64
	numValid  int
	// numLarge counts the valid 64KB entries. Most workload phases hold
	// none, so lookups skip the second (large-key) index probe entirely
	// when it is zero.
	numLarge int
	lruPrev  []int32
	lruNext  []int32
	lruHead  int32
	lruTail  int32
	mru      mruReg
}

// Compile-time check: every TLB is an obs.Source.
var _ obs.Source = (*TLB)(nil)

// New creates a TLB with the given number of entries. pagesPerLarge is
// the number of 4KB pages per large-page mapping on the owning
// architecture (arch.Geometry.PagesPerLarge), which determines how
// large-page entries mask the VPN on match.
func New(name string, entries, pagesPerLarge int) *TLB {
	if entries <= 0 {
		panic(fmt.Sprintf("tlb: non-positive size %d", entries))
	}
	if pagesPerLarge <= 0 {
		panic(fmt.Sprintf("tlb: non-positive pagesPerLarge %d", pagesPerLarge))
	}
	t := &TLB{
		name:      name,
		largeMask: uint32(pagesPerLarge - 1),
		entries:   make([]Entry, entries),
		idx:       newIdxTable(entries),
		validBits: make([]uint64, (entries+63)/64),
		lruPrev:   make([]int32, entries),
		lruNext:   make([]int32, entries),
		lruHead:   -1,
		lruTail:   -1,
	}
	for i := entries; i < len(t.validBits)*64; i++ {
		t.validBits[i>>6] |= 1 << (i & 63)
	}
	for i := range t.lruPrev {
		t.lruPrev[i], t.lruNext[i] = -1, -1
	}
	return t
}

// Name returns the TLB's name (for diagnostics).
func (t *TLB) Name() string { return t.name }

// Size returns the number of entries.
func (t *TLB) Size() int { return len(t.entries) }

// Stats returns a snapshot of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the counters without touching the entries.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// AttachBus makes the TLB publish insert/evict/flush events to b. A nil
// bus detaches.
func (t *TLB) AttachBus(b *obs.Bus) { t.bus = b }

// Snapshot implements obs.Source.
func (t *TLB) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"hits":            t.stats.Hits,
		"misses":          t.stats.Misses,
		"domain_faults":   t.stats.DomainFaults,
		"perm_faults":     t.stats.PermFaults,
		"insertions":      t.stats.Insertions,
		"evictions":       t.stats.Evictions,
		"flushes":         t.stats.Flushes,
		"flushed_entries": t.stats.FlushedEntries,
	}
}

// Reset implements obs.Source.
func (t *TLB) Reset() { t.ResetStats() }

// flushed records one flush operation that invalidated n entries.
func (t *TLB) flushed(n int) {
	t.stats.Flushes++
	t.stats.FlushedEntries += uint64(n)
	if t.bus.Wants(obs.EvTLBFlush) {
		t.bus.Publish(obs.Event{Kind: obs.EvTLBFlush, Source: t.name, Value: uint64(n)})
	}
}

// entryKey packs an entry's index key: the stored (pre-masked) VPN and
// the large-page bit, so 4KB and 64KB entries never collide on a key.
func entryKey(vpn uint32, large bool) uint32 {
	k := vpn << 1
	if large {
		k |= 1
	}
	return k
}

// match reports whether entry e translates va under asid. A global entry
// ignores the ASID, per the architectural meaning of the global bit; a
// large-page entry matches on the large-page-aligned page number. Only
// the query VPN needs masking: e.vpn is pre-masked at insert time.
// largeMask is the owning TLB's large-page VPN mask.
func (e *Entry) match(vpn uint32, asid arch.ASID, largeMask uint32) bool {
	if !e.valid {
		return false
	}
	if e.large {
		vpn &^= largeMask
	}
	return e.vpn == vpn && (e.global || e.asid == asid)
}

// permit checks the entry's permission bits against the access kind.
func (e *Entry) permit(kind arch.AccessKind) bool {
	if e.flags&arch.PTEUser == 0 {
		return false
	}
	switch kind {
	case arch.AccessFetch:
		return e.flags&arch.PTEExec != 0
	case arch.AccessWrite:
		return e.flags&arch.PTEWrite != 0
	default:
		return true
	}
}

// --- index, bitmap, and LRU-list maintenance --------------------------------

// idxAdd registers the (valid) entry at slot under its key.
func (t *TLB) idxAdd(slot int32) {
	if t.entries[slot].large {
		t.numLarge++
	}
	k := entryKey(t.entries[slot].vpn, t.entries[slot].large)
	if _, dup := t.idx.get(k); dup {
		t.idx.set(k, idxMany)
	} else {
		t.idx.set(k, slot)
	}
}

// idxRemove unregisters the (still valid) entry at slot. When the key had
// spilled, the surviving holders are recounted by a scan — rare, and the
// scan is the reference behaviour anyway.
func (t *TLB) idxRemove(slot int32) {
	if t.entries[slot].large {
		t.numLarge--
	}
	k := entryKey(t.entries[slot].vpn, t.entries[slot].large)
	if v, _ := t.idx.get(k); v != idxMany {
		t.idx.del(k)
		return
	}
	survivor, n := int32(0), 0
	for i := range t.entries {
		e := &t.entries[i]
		if int32(i) != slot && e.valid && entryKey(e.vpn, e.large) == k {
			survivor = int32(i)
			n++
		}
	}
	switch n {
	case 0:
		t.idx.del(k)
	case 1:
		t.idx.set(k, survivor)
	}
}

func (t *TLB) setValid(slot int32) {
	t.validBits[slot>>6] |= 1 << (slot & 63)
	t.numValid++
}

func (t *TLB) clearValid(slot int32) {
	t.validBits[slot>>6] &^= 1 << (slot & 63)
	t.numValid--
}

// lastFree returns the highest invalid slot — the reference scan lets
// every free slot it passes overwrite its victim choice, so the last one
// wins. The caller guarantees one exists (numValid < len(entries)); the
// phantom bits past len(entries) are permanently set and never reported.
func (t *TLB) lastFree() int32 {
	for w := len(t.validBits) - 1; w >= 0; w-- {
		if word := t.validBits[w]; word != ^uint64(0) {
			return int32(w<<6 + 63 - bits.LeadingZeros64(^word))
		}
	}
	panic("tlb: lastFree on full TLB")
}

func (t *TLB) lruPushBack(s int32) {
	t.lruPrev[s], t.lruNext[s] = t.lruTail, -1
	if t.lruTail >= 0 {
		t.lruNext[t.lruTail] = s
	} else {
		t.lruHead = s
	}
	t.lruTail = s
}

func (t *TLB) lruRemove(s int32) {
	p, n := t.lruPrev[s], t.lruNext[s]
	if p >= 0 {
		t.lruNext[p] = n
	} else {
		t.lruHead = n
	}
	if n >= 0 {
		t.lruPrev[n] = p
	} else {
		t.lruTail = p
	}
	t.lruPrev[s], t.lruNext[s] = -1, -1
}

func (t *TLB) lruMoveBack(s int32) {
	if t.lruTail == s {
		return
	}
	t.lruRemove(s)
	t.lruPushBack(s)
}

// removeEntry invalidates the entry at slot, maintaining every auxiliary
// structure. The MRU register must be cleared by the caller (all callers
// are mutations).
func (t *TLB) removeEntry(slot int32) {
	t.idxRemove(slot)
	t.lruRemove(slot)
	t.clearValid(slot)
	t.entries[slot] = Entry{}
}

// hitAt applies the Hit bookkeeping for the entry at slot and records it
// in the MRU register.
func (t *TLB) hitAt(slot int32, vpn uint32, asid arch.ASID, dacr arch.DACR) Entry {
	e := &t.entries[slot]
	e.lastUse = t.clock
	t.lruMoveBack(slot)
	t.stats.Hits++
	t.mru = mruReg{ok: true, hw: t.DomainMatchInHW, slot: slot, vpn: vpn, asid: asid, dacr: dacr}
	return *e
}

// probe applies the lookup logic of one scan step to the entry at slot.
// done=false means the scan continues (no match, or domain-denied under
// hardware domain matching).
func (t *TLB) probe(slot int32, vpn uint32, asid arch.ASID, dacr arch.DACR, kind arch.AccessKind) (e Entry, r Result, done bool) {
	ent := &t.entries[slot]
	if !ent.match(vpn, asid, t.largeMask) {
		return Entry{}, Miss, false
	}
	switch dacr.Access(ent.domain) {
	case arch.DomainNoAccess:
		if t.DomainMatchInHW {
			return Entry{}, Miss, false // hardware requires a domain match for a hit
		}
		t.stats.DomainFaults++
		return *ent, DomainFault, true
	case arch.DomainManager:
		return t.hitAt(slot, vpn, asid, dacr), Hit, true
	default: // client: check PTE permission bits
		if !ent.permit(kind) {
			t.stats.PermFaults++
			return *ent, PermFault, true
		}
		return t.hitAt(slot, vpn, asid, dacr), Hit, true
	}
}

// lookupScan is the reference linear probe order: every slot, ascending.
// It is the exact fallback for index spills, and what the fast paths must
// be equivalent to.
func (t *TLB) lookupScan(vpn uint32, asid arch.ASID, dacr arch.DACR, kind arch.AccessKind) (Entry, Result) {
	for i := range t.entries {
		if e, r, done := t.probe(int32(i), vpn, asid, dacr, kind); done {
			return e, r
		}
	}
	t.stats.Misses++
	return Entry{}, Miss
}

// Lookup searches for a translation of va under the current ASID and DACR.
// On a Hit the matching entry is returned and its LRU state refreshed. A
// DomainFault or PermFault also returns the matching entry, so the
// exception handler can inspect it.
func (t *TLB) Lookup(va arch.VirtAddr, asid arch.ASID, dacr arch.DACR, kind arch.AccessKind) (Entry, Result) {
	t.clock++
	vpn := arch.VPN(va)

	// MRU register: a repeat of the last hitting probe resolves at the
	// same slot. The prior Hit under the same DACR rules out NoAccess; the
	// access kind may differ, so permissions are still checked.
	if t.mru.ok && t.mru.vpn == vpn && t.mru.asid == asid && t.mru.dacr == dacr &&
		t.mru.hw == t.DomainMatchInHW {
		slot := t.mru.slot
		e := &t.entries[slot]
		if acc := dacr.Access(e.domain); acc != arch.DomainNoAccess {
			if acc == arch.DomainManager || e.permit(kind) {
				return t.hitAt(slot, vpn, asid, dacr), Hit
			}
			t.stats.PermFaults++
			return *e, PermFault
		}
	}

	// Index probe: at most one 4KB and one 64KB entry can match; check
	// them in slot order. A spilled key falls back to the linear scan.
	// With no large entries resident — most workload phases — the single
	// 4KB key decides the lookup with no slot ordering to reconcile.
	s0, ok0 := t.idx.get(entryKey(vpn, false))
	if t.numLarge == 0 {
		if s0 == idxMany {
			return t.lookupScan(vpn, asid, dacr, kind)
		}
		if ok0 {
			if e, r, done := t.probe(s0, vpn, asid, dacr, kind); done {
				return e, r
			}
		}
		t.stats.Misses++
		return Entry{}, Miss
	}
	s1, ok1 := t.idx.get(entryKey(vpn&^t.largeMask, true))
	if s0 == idxMany || s1 == idxMany {
		return t.lookupScan(vpn, asid, dacr, kind)
	}
	a, b := s0, s1
	if !ok0 {
		a, ok0 = s1, ok1
		ok1 = false
	} else if ok1 && s1 < s0 {
		a, b = s1, s0
	}
	if ok0 {
		if e, r, done := t.probe(a, vpn, asid, dacr, kind); done {
			return e, r
		}
	}
	if ok1 {
		if e, r, done := t.probe(b, vpn, asid, dacr, kind); done {
			return e, r
		}
	}
	t.stats.Misses++
	return Entry{}, Miss
}

// findMatch returns the first slot (in slot order) whose entry matches
// (vpn, asid) and — under hardware domain matching — has the same global
// kind, or -1. This is Insert's overwrite target.
func (t *TLB) findMatch(vpn uint32, asid arch.ASID, newGlobal bool) int32 {
	s0, ok0 := t.idx.get(entryKey(vpn, false))
	var s1 int32
	var ok1 bool
	if t.numLarge != 0 {
		s1, ok1 = t.idx.get(entryKey(vpn&^t.largeMask, true))
	}
	if s0 == idxMany || s1 == idxMany {
		for i := range t.entries {
			e := &t.entries[i]
			if e.match(vpn, asid, t.largeMask) && !(t.DomainMatchInHW && e.global != newGlobal) {
				return int32(i)
			}
		}
		return -1
	}
	a, b := s0, s1
	if !ok0 {
		a, ok0 = s1, ok1
		ok1 = false
	} else if ok1 && s1 < s0 {
		a, b = s1, s0
	}
	if ok0 {
		if e := &t.entries[a]; e.match(vpn, asid, t.largeMask) && !(t.DomainMatchInHW && e.global != newGlobal) {
			return a
		}
	}
	if ok1 {
		if e := &t.entries[b]; e.match(vpn, asid, t.largeMask) && !(t.DomainMatchInHW && e.global != newGlobal) {
			return b
		}
	}
	return -1
}

// Insert loads a translation, evicting the LRU entry when full. If an
// entry already translates (vpn, asid/global) it is overwritten in place.
func (t *TLB) Insert(va arch.VirtAddr, asid arch.ASID, frame arch.FrameNum, flags arch.PTEFlags, domain uint8) {
	t.clock++
	t.mru.ok = false
	vpn := arch.VPN(va)
	newGlobal := flags&arch.PTEGlobal != 0

	// Victim precedence, as in the reference scan: a matching entry,
	// else the highest free slot, else the LRU entry — skipping, under
	// hardware domain matching, matching entries of the other global
	// kind (they coexist rather than being replaced). When every entry
	// is skipped the reference scan leaves its initial victim, slot 0.
	victim := t.findMatch(vpn, asid, newGlobal)
	if victim < 0 {
		if t.numValid < len(t.entries) {
			victim = t.lastFree()
		} else {
			victim = t.lruHead
			if t.DomainMatchInHW {
				for victim >= 0 && t.entries[victim].match(vpn, asid, t.largeMask) && t.entries[victim].global != newGlobal {
					victim = t.lruNext[victim]
				}
				if victim < 0 {
					victim = 0
				}
			}
		}
	}

	if t.entries[victim].valid && !t.entries[victim].match(vpn, asid, t.largeMask) {
		t.stats.Evictions++
		if t.bus.Wants(obs.EvTLBEvict) {
			v := &t.entries[victim]
			t.bus.Publish(obs.Event{
				Kind:   obs.EvTLBEvict,
				Source: t.name,
				Addr:   uint64(v.vpn) << arch.PageShift,
				Value:  uint64(v.asid),
			})
		}
	}
	if t.entries[victim].valid {
		t.removeEntry(victim)
	}
	large := flags&arch.PTELarge != 0
	if large {
		vpn &^= t.largeMask
	}
	t.entries[victim] = Entry{
		valid:   true,
		vpn:     vpn,
		asid:    asid,
		global:  flags&arch.PTEGlobal != 0,
		large:   large,
		domain:  domain,
		frame:   frame,
		flags:   flags,
		lastUse: t.clock,
	}
	t.idxAdd(victim)
	t.setValid(victim)
	t.lruPushBack(victim)
	t.stats.Insertions++
	if t.bus.Wants(obs.EvTLBInsert) {
		t.bus.Publish(obs.Event{
			Kind:   obs.EvTLBInsert,
			Source: t.name,
			Addr:   uint64(va),
			Value:  uint64(asid),
		})
	}
}

// FlushAll invalidates every entry.
func (t *TLB) FlushAll() {
	t.mru.ok = false
	n := t.numValid
	for i := range t.entries {
		t.entries[i] = Entry{}
	}
	t.idx.clear()
	t.numLarge = 0
	size := len(t.entries)
	for i := range t.validBits {
		t.validBits[i] = 0
	}
	for i := size; i < len(t.validBits)*64; i++ {
		t.validBits[i>>6] |= 1 << (i & 63)
	}
	t.numValid = 0
	for i := range t.lruPrev {
		t.lruPrev[i], t.lruNext[i] = -1, -1
	}
	t.lruHead, t.lruTail = -1, -1
	t.flushed(n)
}

// FlushASID invalidates the non-global entries of one address space.
// Global entries survive: that is precisely what lets zygote-like
// processes retain each other's shared-code translations.
func (t *TLB) FlushASID(asid arch.ASID) {
	t.mru.ok = false
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && !e.global && e.asid == asid {
			t.removeEntry(int32(i))
			n++
		}
	}
	t.flushed(n)
}

// FlushNonGlobal invalidates every non-global entry, regardless of ASID.
// The shared-TLB kernel uses this on context switches between zygote-like
// processes when ASIDs are disabled: the global entries for
// zygote-preloaded shared code are identical in every zygote-like address
// space (and domain protection locks other processes out), so only the
// private translations must go.
func (t *TLB) FlushNonGlobal() int {
	t.mru.ok = false
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && !e.global {
			t.removeEntry(int32(i))
			n++
		}
	}
	t.flushed(n)
	return n
}

// FlushGlobal invalidates every global entry, regardless of ASID — the
// inverse of FlushNonGlobal. On architectures without domain protection
// (Sv39), the shared-TLB kernel has no DACR to lock non-sharing
// processes out of the sharing set's global entries, so a switch to such
// a process must evict them; this models the software cost that replaces
// the ARM domain trick.
func (t *TLB) FlushGlobal() int {
	t.mru.ok = false
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.global {
			t.removeEntry(int32(i))
			n++
		}
	}
	t.flushed(n)
	return n
}

// FlushVA invalidates every entry matching the given virtual address,
// regardless of ASID or global bit. The domain-fault handler uses this to
// evict the global entries a non-zygote process tripped over. The index
// resolves the (at most two, bar spills) slots directly: an entry is
// affected exactly when its stored VPN equals VPN(va).
func (t *TLB) FlushVA(va arch.VirtAddr) int {
	t.mru.ok = false
	vpn := arch.VPN(va)
	s0, ok0 := t.idx.get(entryKey(vpn, false))
	var s1 int32
	var ok1 bool
	if t.numLarge != 0 {
		s1, ok1 = t.idx.get(entryKey(vpn, true))
	}
	n := 0
	if s0 == idxMany || s1 == idxMany {
		for i := range t.entries {
			e := &t.entries[i]
			if e.valid && e.vpn == vpn {
				t.removeEntry(int32(i))
				n++
			}
		}
	} else {
		if ok0 {
			t.removeEntry(s0)
			n++
		}
		if ok1 {
			t.removeEntry(s1)
			n++
		}
	}
	t.flushed(n)
	return n
}

// FlushRange invalidates entries translating any page in [start, end).
func (t *TLB) FlushRange(start, end arch.VirtAddr, asid arch.ASID) int {
	t.mru.ok = false
	lo, hi := arch.VPN(start), arch.VPN(end-1)
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn >= lo && e.vpn <= hi && (e.global || e.asid == asid) {
			t.removeEntry(int32(i))
			n++
		}
	}
	t.flushed(n)
	return n
}

// Occupancy returns the number of valid entries and how many of them are
// global, a measure of capacity pressure.
func (t *TLB) Occupancy() (valid, global int) {
	for i := range t.entries {
		if t.entries[i].valid {
			valid++
			if t.entries[i].global {
				global++
			}
		}
	}
	return valid, global
}
