// Package tlb models the translation lookaside buffers of a Cortex-A9
// class ARMv7 core: small micro-TLBs that are flushed on every context
// switch, backed by a unified main TLB whose entries carry an address
// space identifier (ASID), a global bit, and a domain field.
//
// The global bit asserts that a mapping is identical in all virtual
// address spaces: a global entry matches regardless of the current ASID.
// On every access the MMU checks the matching entry's domain field against
// the domain access control register (DACR); with no access the MMU raises
// a domain fault, with client access the entry's permission bits are
// checked, and with manager access permissions are overridden. The
// shared-TLB design of the paper places zygote-preloaded shared code in a
// dedicated zygote domain so that global entries loaded by zygote-like
// processes cannot be used by non-zygote processes.
package tlb

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/obs"
)

// Entry is one TLB entry.
type Entry struct {
	valid   bool
	vpn     uint32
	asid    arch.ASID
	global  bool
	large   bool
	domain  uint8
	frame   arch.FrameNum
	flags   arch.PTEFlags
	lastUse uint64
}

// Frame returns the physical frame the entry translates to.
func (e Entry) Frame() arch.FrameNum { return e.frame }

// Global reports whether the entry's global bit is set.
func (e Entry) Global() bool { return e.global }

// Domain returns the entry's domain field.
func (e Entry) Domain() uint8 { return e.domain }

// Flags returns the entry's permission and attribute bits.
func (e Entry) Flags() arch.PTEFlags { return e.flags }

// Large reports whether the entry maps a 64KB large page.
func (e Entry) Large() bool { return e.large }

// Result is the outcome of a TLB lookup.
type Result uint8

const (
	// Miss: no entry matches; a page table walk is required.
	Miss Result = iota
	// Hit: a matching entry passed the domain and permission checks.
	Hit
	// DomainFault: a matching entry's domain is denied by the DACR.
	// The faulting address is reported via FSR/FAR to the exception
	// handler (a prefetch abort for fetches, a data abort otherwise).
	DomainFault
	// PermFault: a matching entry in a client-access domain failed the
	// PTE permission check.
	PermFault
)

// String names the lookup result.
func (r Result) String() string {
	switch r {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case DomainFault:
		return "domain fault"
	case PermFault:
		return "permission fault"
	default:
		return "unknown"
	}
}

// Stats counts TLB events.
type Stats struct {
	Hits           uint64
	Misses         uint64
	DomainFaults   uint64
	PermFaults     uint64
	Insertions     uint64
	Evictions      uint64
	Flushes        uint64
	FlushedEntries uint64
}

// TLB is one translation buffer, fully associative with LRU replacement.
type TLB struct {
	// DomainMatchInHW models the hardware support the paper asks future
	// processors for (Sections 3.2.3 and 6): when set, an entry whose
	// domain the current DACR denies simply does not match — the lookup
	// misses and the walker loads the process's own translation —
	// instead of raising a domain-fault exception that software must
	// handle by flushing the matching entries.
	DomainMatchInHW bool

	name    string
	entries []Entry
	clock   uint64
	stats   Stats
	bus     *obs.Bus
}

// Compile-time check: every TLB is an obs.Source.
var _ obs.Source = (*TLB)(nil)

// New creates a TLB with the given number of entries.
func New(name string, entries int) *TLB {
	if entries <= 0 {
		panic(fmt.Sprintf("tlb: non-positive size %d", entries))
	}
	return &TLB{name: name, entries: make([]Entry, entries)}
}

// Name returns the TLB's name (for diagnostics).
func (t *TLB) Name() string { return t.name }

// Size returns the number of entries.
func (t *TLB) Size() int { return len(t.entries) }

// Stats returns a snapshot of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the counters without touching the entries.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// AttachBus makes the TLB publish insert/evict/flush events to b. A nil
// bus detaches.
func (t *TLB) AttachBus(b *obs.Bus) { t.bus = b }

// Snapshot implements obs.Source.
func (t *TLB) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"hits":            t.stats.Hits,
		"misses":          t.stats.Misses,
		"domain_faults":   t.stats.DomainFaults,
		"perm_faults":     t.stats.PermFaults,
		"insertions":      t.stats.Insertions,
		"evictions":       t.stats.Evictions,
		"flushes":         t.stats.Flushes,
		"flushed_entries": t.stats.FlushedEntries,
	}
}

// Reset implements obs.Source.
func (t *TLB) Reset() { t.ResetStats() }

// flushed records one flush operation that invalidated n entries.
func (t *TLB) flushed(n int) {
	t.stats.Flushes++
	t.stats.FlushedEntries += uint64(n)
	if t.bus.Wants(obs.EvTLBFlush) {
		t.bus.Publish(obs.Event{Kind: obs.EvTLBFlush, Source: t.name, Value: uint64(n)})
	}
}

// match reports whether entry e translates va under asid. A global entry
// ignores the ASID, per the architectural meaning of the global bit; a
// 64KB large-page entry matches on the 64KB-aligned page number.
func (e *Entry) match(vpn uint32, asid arch.ASID) bool {
	if !e.valid {
		return false
	}
	evpn, qvpn := e.vpn, vpn
	if e.large {
		evpn &^= arch.PagesPerLargePage - 1
		qvpn &^= arch.PagesPerLargePage - 1
	}
	return evpn == qvpn && (e.global || e.asid == asid)
}

// permit checks the entry's permission bits against the access kind.
func (e *Entry) permit(kind arch.AccessKind) bool {
	if e.flags&arch.PTEUser == 0 {
		return false
	}
	switch kind {
	case arch.AccessFetch:
		return e.flags&arch.PTEExec != 0
	case arch.AccessWrite:
		return e.flags&arch.PTEWrite != 0
	default:
		return true
	}
}

// Lookup searches for a translation of va under the current ASID and DACR.
// On a Hit the matching entry is returned and its LRU state refreshed. A
// DomainFault or PermFault also returns the matching entry, so the
// exception handler can inspect it.
func (t *TLB) Lookup(va arch.VirtAddr, asid arch.ASID, dacr arch.DACR, kind arch.AccessKind) (Entry, Result) {
	t.clock++
	vpn := arch.VPN(va)
	for i := range t.entries {
		e := &t.entries[i]
		if !e.match(vpn, asid) {
			continue
		}
		switch dacr.Access(e.domain) {
		case arch.DomainNoAccess:
			if t.DomainMatchInHW {
				continue // hardware requires a domain match for a hit
			}
			t.stats.DomainFaults++
			return *e, DomainFault
		case arch.DomainManager:
			e.lastUse = t.clock
			t.stats.Hits++
			return *e, Hit
		default: // client: check PTE permission bits
			if !e.permit(kind) {
				t.stats.PermFaults++
				return *e, PermFault
			}
			e.lastUse = t.clock
			t.stats.Hits++
			return *e, Hit
		}
	}
	t.stats.Misses++
	return Entry{}, Miss
}

// Insert loads a translation, evicting the LRU entry when full. If an
// entry already translates (vpn, asid/global) it is overwritten in place.
func (t *TLB) Insert(va arch.VirtAddr, asid arch.ASID, frame arch.FrameNum, flags arch.PTEFlags, domain uint8) {
	t.clock++
	vpn := arch.VPN(va)
	newGlobal := flags&arch.PTEGlobal != 0
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range t.entries {
		e := &t.entries[i]
		if e.match(vpn, asid) {
			// With hardware domain matching, a global and a non-global
			// entry for the same page coexist (the domain check picks
			// the right one); only a same-kind entry is overwritten.
			if t.DomainMatchInHW && e.global != newGlobal {
				continue
			}
			victim = i
			oldest = 0
			break
		}
		if !e.valid {
			victim = i
			oldest = 0
			// Keep scanning: a matching entry must win over a free slot.
			continue
		}
		if oldest != 0 && e.lastUse < oldest {
			victim = i
			oldest = e.lastUse
		}
	}
	if t.entries[victim].valid && !t.entries[victim].match(vpn, asid) {
		t.stats.Evictions++
		if t.bus.Wants(obs.EvTLBEvict) {
			v := &t.entries[victim]
			t.bus.Publish(obs.Event{
				Kind:   obs.EvTLBEvict,
				Source: t.name,
				Addr:   uint64(v.vpn) << arch.PageShift,
				Value:  uint64(v.asid),
			})
		}
	}
	large := flags&arch.PTELarge != 0
	if large {
		vpn &^= arch.PagesPerLargePage - 1
	}
	t.entries[victim] = Entry{
		valid:   true,
		vpn:     vpn,
		asid:    asid,
		global:  flags&arch.PTEGlobal != 0,
		large:   large,
		domain:  domain,
		frame:   frame,
		flags:   flags,
		lastUse: t.clock,
	}
	t.stats.Insertions++
	if t.bus.Wants(obs.EvTLBInsert) {
		t.bus.Publish(obs.Event{
			Kind:   obs.EvTLBInsert,
			Source: t.name,
			Addr:   uint64(va),
			Value:  uint64(asid),
		})
	}
}

// FlushAll invalidates every entry.
func (t *TLB) FlushAll() {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
		t.entries[i] = Entry{}
	}
	t.flushed(n)
}

// FlushASID invalidates the non-global entries of one address space.
// Global entries survive: that is precisely what lets zygote-like
// processes retain each other's shared-code translations.
func (t *TLB) FlushASID(asid arch.ASID) {
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && !e.global && e.asid == asid {
			*e = Entry{}
			n++
		}
	}
	t.flushed(n)
}

// FlushNonGlobal invalidates every non-global entry, regardless of ASID.
// The shared-TLB kernel uses this on context switches between zygote-like
// processes when ASIDs are disabled: the global entries for
// zygote-preloaded shared code are identical in every zygote-like address
// space (and domain protection locks other processes out), so only the
// private translations must go.
func (t *TLB) FlushNonGlobal() int {
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && !e.global {
			*e = Entry{}
			n++
		}
	}
	t.flushed(n)
	return n
}

// FlushVA invalidates every entry matching the given virtual address,
// regardless of ASID or global bit. The domain-fault handler uses this to
// evict the global entries a non-zygote process tripped over.
func (t *TLB) FlushVA(va arch.VirtAddr) int {
	vpn := arch.VPN(va)
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			*e = Entry{}
			n++
		}
	}
	t.flushed(n)
	return n
}

// FlushRange invalidates entries translating any page in [start, end).
func (t *TLB) FlushRange(start, end arch.VirtAddr, asid arch.ASID) int {
	lo, hi := arch.VPN(start), arch.VPN(end-1)
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn >= lo && e.vpn <= hi && (e.global || e.asid == asid) {
			*e = Entry{}
			n++
		}
	}
	t.flushed(n)
	return n
}

// Occupancy returns the number of valid entries and how many of them are
// global, a measure of capacity pressure.
func (t *TLB) Occupancy() (valid, global int) {
	for i := range t.entries {
		if t.entries[i].valid {
			valid++
			if t.entries[i].global {
				global++
			}
		}
	}
	return valid, global
}
