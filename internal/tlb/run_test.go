package tlb

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/arch"
)

// TestLookupRunMatchesScalarLookups drives one TLB with LookupRun and a
// twin with the equivalent individual Lookups through a randomized
// stream of strided runs, inserts, and flushes, for both domain-matching
// modes, and demands identical counters and identical complete snapshots
// (entries, lastUse stamps, clock) after every operation. This pins the
// CommitRunHits equivalence claim: n committed hit iterations are
// bit-identical to n scalar Lookups.
func TestLookupRunMatchesScalarLookups(t *testing.T) {
	for _, hw := range []bool{false, true} {
		name := "sw-domains"
		if hw {
			name = "hw-domains"
		}
		t.Run(name, func(t *testing.T) {
			const pagesPerLarge = 16
			rng := rand.New(rand.NewSource(31))
			run := New("run", 24, pagesPerLarge)
			ref := New("ref", 24, pagesPerLarge)
			run.DomainMatchInHW = hw
			ref.DomainMatchInHW = hw
			dacr := arch.DACR(0)
			dacr = dacr.WithAccess(0, arch.DomainClient)
			dacr = dacr.WithAccess(1, arch.DomainManager)
			dacr = dacr.WithAccess(2, arch.DomainNoAccess)

			randVA := func() arch.VirtAddr {
				return arch.VirtAddr(rng.Intn(256)) << arch.PageShift
			}
			insert := func() {
				va := randVA()
				asid := arch.ASID(rng.Intn(3))
				frame := arch.FrameNum(rng.Intn(1 << 12))
				flags := arch.PTEValid | arch.PTEUser
				if rng.Intn(2) == 0 {
					flags |= arch.PTEExec
				}
				if rng.Intn(2) == 0 {
					flags |= arch.PTEWrite
				}
				if rng.Intn(4) == 0 {
					flags |= arch.PTEGlobal
				}
				if rng.Intn(4) == 0 {
					flags |= arch.PTELarge
				}
				domain := uint8(rng.Intn(3))
				run.Insert(va, asid, frame, flags, domain)
				ref.Insert(va, asid, frame, flags, domain)
			}
			for i := 0; i < 16; i++ {
				insert()
			}

			check := func(op int) {
				t.Helper()
				if run.stats != ref.stats {
					t.Fatalf("op %d: stats %+v, scalar %+v", op, run.stats, ref.stats)
				}
				if run.clock != ref.clock {
					t.Fatalf("op %d: clock %d, scalar %d", op, run.clock, ref.clock)
				}
				gs, ws := run.SnapshotState(), ref.SnapshotState()
				gs.Name, ws.Name = "", ""
				if !reflect.DeepEqual(gs, ws) {
					t.Fatalf("op %d: snapshots diverged:\n%+v\n%+v", op, gs, ws)
				}
			}

			kinds := []arch.AccessKind{arch.AccessFetch, arch.AccessRead, arch.AccessWrite}
			negPage := ^arch.VirtAddr(arch.PageSize - 1) // -PageSize in two's complement
			strides := []arch.VirtAddr{0, 4, 64, arch.PageSize, 3 * arch.PageSize,
				arch.PageSize * pagesPerLarge, negPage}
			for op := 0; op < 20000; op++ {
				switch rng.Intn(10) {
				case 0:
					insert()
				case 1:
					va := randVA()
					run.FlushVA(va)
					ref.FlushVA(va)
				case 2:
					asid := arch.ASID(rng.Intn(3))
					run.FlushASID(asid)
					ref.FlushASID(asid)
				default:
					va := randVA() + arch.VirtAddr(rng.Intn(arch.PageSize))
					stride := strides[rng.Intn(len(strides))]
					kind := kinds[rng.Intn(len(kinds))]
					asid := arch.ASID(rng.Intn(3))
					max := 1 + rng.Intn(64)
					n, e := run.LookupRun(va, stride, max, asid, dacr, kind)
					if n == 0 {
						// First reference does not hit: the scalar path takes
						// over on both TLBs, counting the miss or fault once.
						re, rr := ref.Lookup(va, asid, dacr, kind)
						ge, gr := run.Lookup(va, asid, dacr, kind)
						if gr != rr || ge != re {
							t.Fatalf("op %d: fallback Lookup(%#x) = (%+v, %v), scalar (%+v, %v)", op, va, ge, gr, re, rr)
						}
					} else {
						for k := 0; k < n; k++ {
							re, rr := ref.Lookup(va+arch.VirtAddr(k)*stride, asid, dacr, kind)
							if rr != Hit {
								t.Fatalf("op %d: committed iteration %d/%d of run at %#x stride %#x is %v in the scalar TLB", op, k, n, va, stride, rr)
							}
							if re.Frame() != e.Frame() || re.Flags() != e.Flags() {
								t.Fatalf("op %d: entry mismatch at iteration %d: %+v vs %+v", op, k, re, e)
							}
						}
					}
					check(op)
				}
			}
			check(-1)
		})
	}
}
