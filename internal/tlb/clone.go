package tlb

import (
	"repro/internal/alloc"
	"repro/internal/obs"
)

// Clone returns a deep copy of the TLB for a checkpoint fork, attached
// to the clone machine's event bus. TLB state is small (tens of entries
// per buffer) and mutates on nearly every simulated memory access, so it
// is copied eagerly rather than shared copy-on-write; the copy is a
// handful of allocations bounded by the entry count, never per-entry.
// The header struct comes from a when one is supplied (the per-machine
// clone arena); nil allocates it directly.
func (t *TLB) Clone(bus *obs.Bus, a *alloc.Arena[TLB]) *TLB {
	var c *TLB
	if a != nil {
		c = a.New()
	} else {
		c = new(TLB)
	}
	*c = *t
	c.bus = bus
	c.entries = append([]Entry(nil), t.entries...)
	c.validBits = append([]uint64(nil), t.validBits...)
	c.lruPrev = append([]int32(nil), t.lruPrev...)
	c.lruNext = append([]int32(nil), t.lruNext...)
	c.idx = t.idx.clone()
	return c
}
