package tlb

import "repro/internal/arch"

// linearTLB is the reference implementation: the original fully linear
// scan code, kept verbatim (minus the event bus) as the behavioural
// ground truth for the indexed fast paths in TLB. The differential
// property test (differential_test.go) drives both implementations
// through identical operation sequences and requires identical results,
// entry states, and counters.
//
// Do not optimize this type: its entire value is that it is the obvious,
// slow, order-defining implementation.
type linearTLB struct {
	DomainMatchInHW bool

	largeMask uint32
	entries   []Entry
	clock     uint64
	stats     Stats
}

func newLinear(entries, pagesPerLarge int) *linearTLB {
	return &linearTLB{largeMask: uint32(pagesPerLarge - 1), entries: make([]Entry, entries)}
}

// refMatch is the original Entry.match: it recomputes the large-page mask
// on both sides of the comparison. Entries store a pre-masked VPN, so
// masking the entry side again is redundant — which is exactly what the
// optimized Entry.match exploits; this copy proves the equivalence.
func refMatch(e *Entry, vpn uint32, asid arch.ASID, largeMask uint32) bool {
	if !e.valid {
		return false
	}
	evpn, qvpn := e.vpn, vpn
	if e.large {
		evpn &^= largeMask
		qvpn &^= largeMask
	}
	return evpn == qvpn && (e.global || e.asid == asid)
}

func (t *linearTLB) Lookup(va arch.VirtAddr, asid arch.ASID, dacr arch.DACR, kind arch.AccessKind) (Entry, Result) {
	t.clock++
	vpn := arch.VPN(va)
	for i := range t.entries {
		e := &t.entries[i]
		if !refMatch(e, vpn, asid, t.largeMask) {
			continue
		}
		switch dacr.Access(e.domain) {
		case arch.DomainNoAccess:
			if t.DomainMatchInHW {
				continue // hardware requires a domain match for a hit
			}
			t.stats.DomainFaults++
			return *e, DomainFault
		case arch.DomainManager:
			e.lastUse = t.clock
			t.stats.Hits++
			return *e, Hit
		default: // client: check PTE permission bits
			if !e.permit(kind) {
				t.stats.PermFaults++
				return *e, PermFault
			}
			e.lastUse = t.clock
			t.stats.Hits++
			return *e, Hit
		}
	}
	t.stats.Misses++
	return Entry{}, Miss
}

func (t *linearTLB) Insert(va arch.VirtAddr, asid arch.ASID, frame arch.FrameNum, flags arch.PTEFlags, domain uint8) {
	t.clock++
	vpn := arch.VPN(va)
	newGlobal := flags&arch.PTEGlobal != 0
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range t.entries {
		e := &t.entries[i]
		if refMatch(e, vpn, asid, t.largeMask) {
			// With hardware domain matching, a global and a non-global
			// entry for the same page coexist (the domain check picks
			// the right one); only a same-kind entry is overwritten.
			if t.DomainMatchInHW && e.global != newGlobal {
				continue
			}
			victim = i
			oldest = 0
			break
		}
		if !e.valid {
			victim = i
			oldest = 0
			// Keep scanning: a matching entry must win over a free slot.
			continue
		}
		if oldest != 0 && e.lastUse < oldest {
			victim = i
			oldest = e.lastUse
		}
	}
	if t.entries[victim].valid && !refMatch(&t.entries[victim], vpn, asid, t.largeMask) {
		t.stats.Evictions++
	}
	large := flags&arch.PTELarge != 0
	if large {
		vpn &^= t.largeMask
	}
	t.entries[victim] = Entry{
		valid:   true,
		vpn:     vpn,
		asid:    asid,
		global:  flags&arch.PTEGlobal != 0,
		large:   large,
		domain:  domain,
		frame:   frame,
		flags:   flags,
		lastUse: t.clock,
	}
	t.stats.Insertions++
}

func (t *linearTLB) flushed(n int) {
	t.stats.Flushes++
	t.stats.FlushedEntries += uint64(n)
}

func (t *linearTLB) FlushAll() {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
		t.entries[i] = Entry{}
	}
	t.flushed(n)
}

func (t *linearTLB) FlushASID(asid arch.ASID) {
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && !e.global && e.asid == asid {
			*e = Entry{}
			n++
		}
	}
	t.flushed(n)
}

func (t *linearTLB) FlushNonGlobal() int {
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && !e.global {
			*e = Entry{}
			n++
		}
	}
	t.flushed(n)
	return n
}

func (t *linearTLB) FlushGlobal() int {
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.global {
			*e = Entry{}
			n++
		}
	}
	t.flushed(n)
	return n
}

func (t *linearTLB) FlushVA(va arch.VirtAddr) int {
	vpn := arch.VPN(va)
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			*e = Entry{}
			n++
		}
	}
	t.flushed(n)
	return n
}

func (t *linearTLB) FlushRange(start, end arch.VirtAddr, asid arch.ASID) int {
	lo, hi := arch.VPN(start), arch.VPN(end-1)
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn >= lo && e.vpn <= hi && (e.global || e.asid == asid) {
			*e = Entry{}
			n++
		}
	}
	t.flushed(n)
	return n
}

func (t *linearTLB) Occupancy() (valid, global int) {
	for i := range t.entries {
		if t.entries[i].valid {
			valid++
			if t.entries[i].global {
				global++
			}
		}
	}
	return valid, global
}
