package tlb_test

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/arch/armv7"
	"repro/internal/tlb"
)

// Example walks the Section 3.2 TLB-sharing protocol at the hardware
// level: a zygote-like process loads a global entry in the zygote domain;
// a sibling with a different ASID hits it; a non-zygote process takes a
// domain fault, flushes, and loads its own private entry.
func Example() {
	main := tlb.New("main", 128, armv7.PagesPerLargePage)
	flags := arch.PTEValid | arch.PTEUser | arch.PTEExec | arch.PTEGlobal

	// The zygote (ASID 1) faults in a shared-library page: the kernel
	// created the PTE with the global bit in the zygote domain, and the
	// walk loads it into the TLB.
	main.Insert(0x40000000, 1, 100, flags, armv7.DomainZygote)

	// An application forked from the zygote (ASID 2) fetches the same
	// page: the global bit makes the entry match despite the ASID.
	_, r := main.Lookup(0x40000000, 2, armv7.ZygoteDACR(), arch.AccessFetch)
	fmt.Println("zygote child:", r)

	// A system daemon (ASID 3, no zygote-domain access) trips over it.
	_, r = main.Lookup(0x40000000, 3, armv7.StockDACR(), arch.AccessFetch)
	fmt.Println("daemon:", r)

	// The exception handler flushes the matching entries; the retry
	// misses and the daemon's own walk loads a private entry.
	main.FlushVA(0x40000000)
	_, r = main.Lookup(0x40000000, 3, armv7.StockDACR(), arch.AccessFetch)
	fmt.Println("daemon after flush:", r)
	main.Insert(0x40000000, 3, 200, flags&^arch.PTEGlobal, armv7.DomainUser)
	e, r := main.Lookup(0x40000000, 3, armv7.StockDACR(), arch.AccessFetch)
	fmt.Printf("daemon retry: %v (frame %d)\n", r, e.Frame())

	// Output:
	// zygote child: hit
	// daemon: domain fault
	// daemon after flush: miss
	// daemon retry: hit (frame 200)
}
