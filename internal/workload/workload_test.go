package workload

import (
	"sync"
	"testing"
)

func TestUniverseDeterministic(t *testing.T) {
	a := DefaultUniverse()
	b := DefaultUniverse()
	if a.TotalCodePages() != b.TotalCodePages() {
		t.Fatal("universe must be deterministic")
	}
	for i := range a.Libs {
		if a.Libs[i] != b.Libs[i] {
			t.Fatalf("lib %d differs: %+v vs %+v", i, a.Libs[i], b.Libs[i])
		}
	}
	for i := range a.hotOrder {
		if a.hotOrder[i] != b.hotOrder[i] {
			t.Fatal("hot order must be deterministic")
		}
	}
}

// TestUniverseSeedIsFixed pins the deliberate split between the
// universe's fixed seed and the per-application AppSpec.Seed (see the
// DefaultUniverse comment): the seed-42 landscape is frozen by checksum,
// and application randomness demonstrably flows through spec.Seed alone —
// same spec, same profile, from any universe instance; different seeds,
// different profiles, same landscape.
func TestUniverseSeedIsFixed(t *testing.T) {
	u := DefaultUniverse()
	var h uint64
	for i, l := range u.Libs {
		h = h*1000003 + uint64(i+1)*uint64(l.CodePages)*31 + uint64(l.DataPages)
	}
	for _, pg := range u.ZygoteSet() {
		h = h*1000003 + uint64(pg)
	}
	// Frozen fingerprint of the seed-42 landscape. If this changed, every
	// golden file in internal/experiments/testdata changed with it: treat
	// that as a deliberate, goldens-regenerating change, never a drive-by.
	const want = uint64(0x6a1ab243328a19d5)
	if h != want {
		t.Fatalf("DefaultUniverse landscape hash = %#x, want %#x; the fixed universe seed (or the landscape construction) changed", h, want)
	}

	// Per-app randomness comes from spec.Seed, not the universe: the same
	// spec materializes identically against independent universe builds...
	spec := Suite()[0]
	pa := BuildProfile(u, spec)
	pb := BuildProfile(DefaultUniverse(), spec)
	if len(pa.ZygotePreloaded) != len(pb.ZygotePreloaded) {
		t.Fatalf("profile differs across universe instances: %d vs %d pages",
			len(pa.ZygotePreloaded), len(pb.ZygotePreloaded))
	}
	for i := range pa.ZygotePreloaded {
		if pa.ZygotePreloaded[i] != pb.ZygotePreloaded[i] {
			t.Fatalf("profile page %d differs across universe instances", i)
		}
	}
	// ...and reseeding the spec moves the sample within the landscape.
	reseeded := spec
	reseeded.Seed += 1000
	pc := BuildProfile(u, reseeded)
	same := len(pa.ZygotePreloaded) == len(pc.ZygotePreloaded)
	if same {
		for i := range pa.ZygotePreloaded {
			if pa.ZygotePreloaded[i] != pc.ZygotePreloaded[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("reseeding the AppSpec did not change the sampled profile; spec.Seed is not plumbed through")
	}
}

func TestUniverseShape(t *testing.T) {
	u := DefaultUniverse()
	if len(u.Libs) != 88 {
		t.Errorf("libs = %d, want 88 (paper: 88 preloaded libraries)", len(u.Libs))
	}
	dyn := u.DynLibCodePages()
	if dyn < 8500 || dyn > 11500 {
		t.Errorf("dynamic lib code pages = %d, want ~10000 (~40MB)", dyn)
	}
	if u.TotalCodePages() != u.AppProcessPages+dyn+u.JavaCodePages {
		t.Error("TotalCodePages inconsistent")
	}
	// Library sizes span the paper's range: from one page to megabytes.
	minSize, maxSize := 1<<30, 0
	for _, l := range u.Libs {
		if l.CodePages < minSize {
			minSize = l.CodePages
		}
		if l.CodePages > maxSize {
			maxSize = l.CodePages
		}
		if l.DataPages < 1 {
			t.Errorf("lib %s has no data segment", l.Name)
		}
	}
	if minSize > 8 {
		t.Errorf("smallest lib = %d pages; expected small libraries", minSize)
	}
	if maxSize < 200 {
		t.Errorf("largest lib = %d pages; expected MB-sized libraries", maxSize)
	}
}

func TestZygoteSet(t *testing.T) {
	u := DefaultUniverse()
	z := u.ZygoteSet()
	if len(z) != ZygoteTouchedPTEs {
		t.Errorf("zygote set = %d pages, want %d", len(z), ZygoteTouchedPTEs)
	}
	seen := make(map[int]bool)
	for _, p := range z {
		if p < 0 || p >= u.TotalCodePages() {
			t.Fatalf("page %d out of range", p)
		}
		if seen[p] {
			t.Fatalf("duplicate page %d in zygote set", p)
		}
		seen[p] = true
	}
}

func TestHotOrderIsPermutation(t *testing.T) {
	u := DefaultUniverse()
	if len(u.hotOrder) != u.TotalCodePages() {
		t.Fatalf("hotOrder len = %d, want %d", len(u.hotOrder), u.TotalCodePages())
	}
	seen := make([]bool, u.TotalCodePages())
	for _, p := range u.hotOrder {
		if seen[p] {
			t.Fatalf("page %d appears twice", p)
		}
		seen[p] = true
	}
}

func TestPageSegment(t *testing.T) {
	u := DefaultUniverse()
	if s := u.PageSegment(0); s.Kind != "app_process" {
		t.Errorf("page 0 = %+v, want app_process", s)
	}
	if s := u.PageSegment(u.AppProcessPages); s.Kind != "dynlib" || s.LibIndex != 0 || s.Offset != 0 {
		t.Errorf("first lib page = %+v", s)
	}
	last := u.TotalCodePages() - 1
	if s := u.PageSegment(last); s.Kind != "java" {
		t.Errorf("last page = %+v, want java", s)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range page should panic")
		}
	}()
	u.PageSegment(u.TotalCodePages())
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 11 {
		t.Fatalf("suite has %d entries, want 11", len(suite))
	}
	names := make(map[string]bool)
	for _, s := range suite {
		if names[s.Name] {
			t.Errorf("duplicate app %q", s.Name)
		}
		names[s.Name] = true
		if s.ColdPTEs <= 0 || s.WarmPTEs < s.ColdPTEs {
			t.Errorf("%s: cold=%d warm=%d", s.Name, s.ColdPTEs, s.WarmPTEs)
		}
		if s.UserPct <= 0 || s.UserPct > 100 {
			t.Errorf("%s: UserPct=%v", s.Name, s.UserPct)
		}
		sum := 0.0
		for _, w := range s.FetchShares {
			sum += w
		}
		if sum < 0.95 || sum > 1.05 {
			t.Errorf("%s: fetch shares sum to %v", s.Name, sum)
		}
	}
	// Table 1 and Table 3 spot checks against the paper.
	ab, err := SpecByName("Angrybirds")
	if err != nil {
		t.Fatal(err)
	}
	if ab.UserPct != 92.2 || ab.ColdPTEs != 1370 || ab.WarmPTEs != 2500 {
		t.Errorf("Angrybirds = %+v", ab)
	}
	browser, _ := SpecByName("Android Browser")
	if browser.ColdPTEs != 1770 || browser.WarmPTEs != 5900 {
		t.Errorf("Android Browser = %+v", browser)
	}
	if _, err := SpecByName("Nope"); err == nil {
		t.Error("unknown app should error")
	}
}

func TestProfileMatchesSpec(t *testing.T) {
	u := DefaultUniverse()
	for _, spec := range Suite() {
		p := BuildProfile(u, spec)
		if got := len(p.InheritedCold); got != spec.ColdPTEs {
			t.Errorf("%s: cold = %d, want %d", spec.Name, got, spec.ColdPTEs)
		}
		if got := len(p.ZygotePreloaded); got != spec.WarmPTEs {
			t.Errorf("%s: warm = %d, want %d", spec.Name, got, spec.WarmPTEs)
		}
		// Cold pages are genuinely inside the zygote's boot set.
		z := make(map[int]bool)
		for _, pg := range u.ZygoteSet() {
			z[pg] = true
		}
		for _, pg := range p.InheritedCold {
			if !z[pg] {
				t.Errorf("%s: cold page %d not in zygote set", spec.Name, pg)
				break
			}
		}
		if got := Overlap(p.ZygotePreloaded, u.sortedZygoteSet()); got != spec.ColdPTEs {
			t.Errorf("%s: overlap with zygote set = %d, want %d", spec.Name, got, spec.ColdPTEs)
		}
		if len(p.UsedLibs) == 0 || len(p.UsedLibs) > 88 {
			t.Errorf("%s: used libs = %d", spec.Name, len(p.UsedLibs))
		}
		if len(p.DataWriteLibs) > len(p.UsedLibs) {
			t.Errorf("%s: more writer libs than used libs", spec.Name)
		}
	}
}

// sortedZygoteSet is a test helper on Universe.
func (u *Universe) sortedZygoteSet() []int {
	z := u.ZygoteSet()
	out := append([]int(nil), z...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestProfileDeterministic(t *testing.T) {
	u := DefaultUniverse()
	spec, _ := SpecByName("Email")
	a := BuildProfile(u, spec)
	b := BuildProfile(u, spec)
	if len(a.ZygotePreloaded) != len(b.ZygotePreloaded) {
		t.Fatal("profiles must be deterministic")
	}
	for i := range a.ZygotePreloaded {
		if a.ZygotePreloaded[i] != b.ZygotePreloaded[i] {
			t.Fatal("page sets differ between builds")
		}
	}
}

func TestCrossAppOverlapCalibration(t *testing.T) {
	// Table 2: the pairwise intersection of zygote-preloaded shared code
	// averages 37.9% of each app's instruction footprint. The generative
	// model should land in the right regime (25-60%).
	u := DefaultUniverse()
	var profiles []*Profile
	for _, spec := range Suite() {
		profiles = append(profiles, BuildProfile(u, spec))
	}
	var sum float64
	var n int
	for i, a := range profiles {
		total := len(a.ZygotePreloaded) + a.Spec.OtherLibPages + a.Spec.PrivateCodePages
		for j, b := range profiles {
			if i == j {
				continue
			}
			ov := Overlap(a.ZygotePreloaded, b.ZygotePreloaded)
			sum += float64(ov) / float64(total)
			n++
		}
	}
	avg := 100 * sum / float64(n)
	if avg < 20 || avg > 60 {
		t.Errorf("average pairwise overlap = %.1f%% of footprint, want 20-60%% (paper: 37.9%%)", avg)
	}
	t.Logf("average pairwise zygote-preloaded overlap: %.1f%% (paper: 37.9%%)", avg)
}

func TestSparsityCalibration(t *testing.T) {
	// Figure 4: for ~60% of the 64KB chunks touched, more than 9 of the
	// 16 4KB pages are untouched. Check the sampling scatters enough.
	u := DefaultUniverse()
	spec, _ := SpecByName("Adobe Reader")
	p := BuildProfile(u, spec)
	touched := make(map[int]int) // 64KB chunk -> touched 4KB pages
	for _, pg := range p.ZygotePreloaded {
		touched[pg/16]++
	}
	sparse := 0
	for _, n := range touched {
		if 16-n > 9 {
			sparse++
		}
	}
	frac := float64(sparse) / float64(len(touched))
	if frac < 0.35 {
		t.Errorf("only %.0f%% of 64KB chunks have >9 untouched pages; want the sparse regime (paper: 60%%)", frac*100)
	}
	t.Logf("chunks with >9 of 16 pages untouched: %.0f%% (paper: ~60%%)", frac*100)
}

func TestOverlap(t *testing.T) {
	if got := Overlap([]int{1, 2, 3}, []int{2, 3, 4}); got != 2 {
		t.Errorf("Overlap = %d, want 2", got)
	}
	if got := Overlap(nil, []int{1}); got != 0 {
		t.Errorf("Overlap = %d, want 0", got)
	}
	if got := Overlap([]int{5}, []int{5}); got != 1 {
		t.Errorf("Overlap = %d, want 1", got)
	}
}

func TestSampleBiasedProperties(t *testing.T) {
	u := DefaultUniverse()
	spec, _ := SpecByName("MX Player") // largest warm set
	p := BuildProfile(u, spec)
	seen := make(map[int]bool)
	for _, pg := range p.ZygotePreloaded {
		if seen[pg] {
			t.Fatalf("duplicate page %d in profile", pg)
		}
		seen[pg] = true
	}
}

// TestUniverseConcurrentUse pins the sharing contract the parallel sweep
// engine relies on: one Universe is read concurrently by every worker,
// so BuildProfile, ZygoteSet, and the accessors must be safe for
// simultaneous readers (run under -race) and must not let one caller's
// mutations leak into another's view.
func TestUniverseConcurrentUse(t *testing.T) {
	u := DefaultUniverse()
	suite := Suite()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := suite[w%len(suite)]
			ref := BuildProfile(u, spec)
			for i := 0; i < 10; i++ {
				p := BuildProfile(u, spec)
				if len(p.ZygotePreloaded) != len(ref.ZygotePreloaded) {
					t.Errorf("profile changed across concurrent builds: %d vs %d pages",
						len(p.ZygotePreloaded), len(ref.ZygotePreloaded))
					return
				}
				zs := u.ZygoteSet()
				if len(zs) == 0 {
					t.Error("empty zygote set")
					return
				}
				zs[0] = -1 // returned slice must be a copy
				_ = u.TotalCodePages()
				_ = u.PageSegment(0)
			}
		}()
	}
	wg.Wait()
	if u.ZygoteSet()[0] == -1 {
		t.Error("ZygoteSet returned a live reference to internal state")
	}
}
