package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// hashOnce caches the content hash: the universe is immutable after
// construction, so the first computation is good forever and concurrent
// sweep workers may race to ask for it.
var hashMu sync.Mutex
var hashCache = map[*Universe]string{}

// ContentHash returns a stable digest of the universe's complete
// preloaded-code landscape: every library size, the Java boot image, the
// hotness ranking and the zygote footprint. Two universes with equal
// hashes sample identically, so the hash can stand in for the universe
// in persistent cache keys — unlike pointer identity, it survives
// process boundaries (internal/imagestore keys images with it).
func (u *Universe) ContentHash() string {
	hashMu.Lock()
	if h, ok := hashCache[u]; ok {
		hashMu.Unlock()
		return h
	}
	hashMu.Unlock()

	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(u.AppProcessPages)
	writeInt(u.JavaCodePages)
	writeInt(u.JavaDataPages)
	writeInt(len(u.Libs))
	for _, l := range u.Libs {
		fmt.Fprintf(h, "%s\x00", l.Name)
		writeInt(l.CodePages)
		writeInt(l.DataPages)
	}
	writeInt(u.zygoteTouched)
	writeInt(len(u.hotOrder))
	for _, p := range u.hotOrder {
		writeInt(p)
	}
	sum := fmt.Sprintf("%x", h.Sum(nil))

	hashMu.Lock()
	hashCache[u] = sum
	hashMu.Unlock()
	return sum
}
