// Package workload defines the synthetic application suite that stands in
// for the paper's eleven benchmark programs (Angrybirds, Adobe Reader, the
// Android and Chrome browsers with Chrome's three processes, Email, Google
// Calendar, MX Player, Laya Music Player, and WPS).
//
// We do not have the Google Play binaries, the authors' page-fault and
// perf traces, or a tablet to run them on, so each application is modeled
// by a profile whose first-order statistics are calibrated to what the
// paper publishes:
//
//   - Table 1's user/kernel instruction split,
//   - Table 3's count of instruction PTEs inherited from the zygote on
//     cold and warm starts,
//   - Figure 2/3's breakdown of the instruction footprint by category
//     (zygote-preloaded dynamic libraries, zygote-preloaded Java code,
//     app_process, other dynamic libraries, private code),
//   - Table 2's cross-application overlap of shared code, and
//   - Figure 4's sparsity of 64KB chunks.
//
// The profiles are *generative*: page sets are sampled deterministically
// (per-app seeds) from a shared universe of zygote-preloaded code pages,
// with a hotness bias that produces the cross-application overlap and a
// scatter that produces the large-page sparsity. The experiments then
// *measure* faults, PTP counts, and TLB behavior by actually running the
// profiles on the simulated kernel — none of the paper's result numbers
// are fed in directly.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Lib describes one zygote-preloaded dynamic shared library.
type Lib struct {
	// Name is the library's file name.
	Name string
	// CodePages is the size of the code (r-x) segment in 4KB pages.
	CodePages int
	// DataPages is the size of the data (rw-) segment in 4KB pages.
	DataPages int
}

// Universe is the shared code landscape every application samples from:
// the zygote's program binary, the preloaded dynamic libraries, and the
// AOT-compiled Java boot image.
type Universe struct {
	// AppProcessPages is the code size of the zygote's C++ program
	// binary, app_process.
	AppProcessPages int
	// Libs are the preloaded dynamic shared libraries, including the
	// dynamic loader (sizes range from one page to several MB, as the
	// paper reports 4KB to ~35MB for preloaded shared code).
	Libs []Lib
	// JavaCodePages is the code size of the ART boot image (the
	// zygote-preloaded Java shared libraries compiled to native code).
	JavaCodePages int
	// JavaDataPages is the boot image's data size.
	JavaDataPages int

	// hotOrder ranks all preloaded code pages from hottest to coldest;
	// the zygote's boot-time footprint is its prefix, and applications
	// sample with a bias toward the front, which is what produces the
	// cross-application overlap of Table 2.
	hotOrder []int
	// zygoteTouched is the number of leading hotOrder pages the zygote
	// itself populates at boot (5,900 instruction PTEs in the paper).
	zygoteTouched int
}

// ZygoteTouchedPTEs is the number of preloaded-code instruction PTEs the
// zygote populates before any application is forked (Section 4.2.1).
const ZygoteTouchedPTEs = 5900

// DefaultUniverse deterministically builds the preloaded-code landscape:
// 88 dynamic libraries totalling ~40MB of code, a ~20MB Java boot image,
// and a small app_process binary.
//
// The fixed seed below is deliberate and distinct from the per-app
// AppSpec.Seed that BuildProfile plumbs through: the universe is the one
// shared landscape every experiment runs against — the paper measures
// many applications on ONE device image — so it must be identical across
// all sessions, sweeps and workers (checkpoint keys embed its content
// hash). Per-application randomness enters later, in BuildProfile,
// seeded from each AppSpec. Changing this constant changes every golden
// file; TestUniverseSeedIsFixed pins the separation.
func DefaultUniverse() *Universe {
	rng := rand.New(rand.NewSource(42))
	u := &Universe{
		AppProcessPages: 30,
		JavaCodePages:   5000,
		JavaDataPages:   600,
	}
	// Library size distribution: a heavy tail of small libraries and a
	// few large ones (libwebviewchromium, libskia, ...), drawn from a
	// log-uniform distribution over [1, 1024] pages (4KB..4MB), with the
	// dynamic loader first.
	u.Libs = append(u.Libs, Lib{Name: "linker", CodePages: 24, DataPages: 4})
	total := 24
	for i := 1; i < 88; i++ {
		size := int(math.Exp(rng.Float64() * math.Log(1024))) // 1..1024
		if size < 1 {
			size = 1
		}
		data := size / 6
		if data < 1 {
			data = 1
		}
		u.Libs = append(u.Libs, Lib{
			Name:      fmt.Sprintf("lib%02d.so", i),
			CodePages: size,
			DataPages: data,
		})
		total += size
	}
	// Scale the generated sizes so the dynamic-library code totals about
	// 10,000 pages (~40MB), keeping the paper's overall footprint scale.
	const wantDynPages = 10000
	scale := float64(wantDynPages) / float64(total)
	for i := range u.Libs {
		c := int(float64(u.Libs[i].CodePages) * scale)
		if c < 1 {
			c = 1
		}
		d := c / 6
		if d < 1 {
			d = 1
		}
		u.Libs[i].CodePages = c
		u.Libs[i].DataPages = d
	}
	u.buildHotOrder(rng)
	return u
}

// buildHotOrder ranks pages: entry regions of every library are hot (the
// paper finds up to 62 of the 88 preloaded libraries invoked per app, with
// sparse access within each), followed by progressively colder pages.
func (u *Universe) buildHotOrder(rng *rand.Rand) {
	n := u.TotalCodePages()
	type ranked struct {
		page int
		key  float64
	}
	rs := make([]ranked, 0, n)
	// app_process first: it is always executed (it is every app's main
	// program), so its pages are among the hottest.
	for p := 0; p < u.AppProcessPages; p++ {
		rs = append(rs, ranked{page: p, key: rng.Float64() * 0.05})
	}
	off := u.AppProcessPages
	for _, lib := range u.Libs {
		for i := 0; i < lib.CodePages; i++ {
			// Pages near the front of a library (its exported entry
			// points and hot paths) rank hotter; deep pages are cold.
			depth := float64(i) / float64(lib.CodePages)
			rs = append(rs, ranked{page: off + i, key: depth + rng.Float64()*0.7})
		}
		off += lib.CodePages
	}
	for i := 0; i < u.JavaCodePages; i++ {
		depth := float64(i) / float64(u.JavaCodePages)
		rs = append(rs, ranked{page: off + i, key: depth + rng.Float64()*0.7})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].key < rs[j].key })
	u.hotOrder = make([]int, n)
	for i, r := range rs {
		u.hotOrder[i] = r.page
	}
	u.zygoteTouched = ZygoteTouchedPTEs
	if u.zygoteTouched > n {
		u.zygoteTouched = n
	}
}

// TotalCodePages returns the number of preloaded code pages in the
// universe (app_process + dynamic libraries + Java boot image).
func (u *Universe) TotalCodePages() int {
	n := u.AppProcessPages
	for _, l := range u.Libs {
		n += l.CodePages
	}
	return n + u.JavaCodePages
}

// DynLibCodePages returns the number of dynamic-library code pages.
func (u *Universe) DynLibCodePages() int {
	n := 0
	for _, l := range u.Libs {
		n += l.CodePages
	}
	return n
}

// ZygoteSet returns the page indexes the zygote populates at boot, in
// hotness order.
func (u *Universe) ZygoteSet() []int {
	return append([]int(nil), u.hotOrder[:u.zygoteTouched]...)
}

// Segment identifies which preloaded object a code page belongs to.
type Segment struct {
	// Kind is the owner: "app_process", "dynlib", or "java".
	Kind string
	// LibIndex is the index into Libs when Kind is "dynlib".
	LibIndex int
	// Offset is the page offset within the owner's code segment.
	Offset int
}

// PageSegment locates global code page idx.
func (u *Universe) PageSegment(idx int) Segment {
	if idx < u.AppProcessPages {
		return Segment{Kind: "app_process", Offset: idx}
	}
	idx -= u.AppProcessPages
	for i, l := range u.Libs {
		if idx < l.CodePages {
			return Segment{Kind: "dynlib", LibIndex: i, Offset: idx}
		}
		idx -= l.CodePages
	}
	if idx < u.JavaCodePages {
		return Segment{Kind: "java", Offset: idx}
	}
	panic(fmt.Sprintf("workload: page index %d out of range", idx))
}

// AppSpec parameterizes one application of the suite.
type AppSpec struct {
	// Name is the benchmark name as in the paper's tables.
	Name string
	// Seed drives the app's deterministic sampling.
	Seed int64
	// UserPct is the percentage of instructions fetched from user space
	// (Table 1); the rest execute in the kernel (I/O-heavy apps like
	// Chrome Privilege, MX Player and WPS run mostly in the kernel).
	UserPct float64
	// ColdPTEs is the number of preloaded-code instruction PTEs the app
	// would inherit from the zygote on a cold start (Table 3).
	ColdPTEs int
	// WarmPTEs is the inherited count after the app's first
	// instantiation has populated its own shared-code pages (Table 3).
	WarmPTEs int
	// OtherLibPages is the instruction footprint of application- and
	// platform-specific dynamic libraries not preloaded by the zygote.
	OtherLibPages int
	// PrivateCodePages is the app's private code footprint.
	PrivateCodePages int
	// AppFilePages is the app-specific file-backed data footprint
	// (assets, media, databases) whose faults PTP sharing cannot
	// eliminate; media players and document editors dominate here.
	AppFilePages int
	// AnonPages is the anonymous working set (heap, ART arenas).
	AnonPages int
	// DataWriteLibFrac is the fraction of used preloaded libraries
	// whose data segment the app writes (global-variable updates) —
	// the writes that cost code-PTP sharing under the original layout.
	DataWriteLibFrac float64
	// FetchShares is the dynamic instruction-fetch distribution over
	// {private, zygote dynlib, zygote java, other dynlib, app_process},
	// normalized to 1 (Figure 3).
	FetchShares [5]float64
}

// Fetch-share component indexes.
const (
	FetchPrivate = iota
	FetchZygoteDyn
	FetchZygoteJava
	FetchOtherDyn
	FetchAppProcess
)

// Suite returns the eleven benchmark profiles. ColdPTEs and WarmPTEs are
// Table 3 verbatim (×10²); UserPct is Table 1 verbatim; the footprint
// and fetch-share parameters are calibrated to Figures 2, 3 and 10.
func Suite() []AppSpec {
	def := [5]float64{0.02, 0.61, 0.11, 0.26, 0.002}
	return []AppSpec{
		{Name: "Angrybirds", Seed: 101, UserPct: 92.2, ColdPTEs: 1370, WarmPTEs: 2500,
			OtherLibPages: 900, PrivateCodePages: 120, AppFilePages: 260, AnonPages: 900,
			DataWriteLibFrac: 0.30, FetchShares: def},
		{Name: "Adobe Reader", Seed: 102, UserPct: 93.3, ColdPTEs: 1820, WarmPTEs: 5500,
			OtherLibPages: 1400, PrivateCodePages: 200, AppFilePages: 5200, AnonPages: 1200,
			DataWriteLibFrac: 0.35, FetchShares: def},
		{Name: "Android Browser", Seed: 103, UserPct: 85.8, ColdPTEs: 1770, WarmPTEs: 5900,
			OtherLibPages: 700, PrivateCodePages: 80, AppFilePages: 8200, AnonPages: 1600,
			DataWriteLibFrac: 0.40, FetchShares: [5]float64{0.01, 0.66, 0.13, 0.20, 0.002}},
		{Name: "Chrome", Seed: 104, UserPct: 85.3, ColdPTEs: 1480, WarmPTEs: 2500,
			OtherLibPages: 2600, PrivateCodePages: 300, AppFilePages: 2600, AnonPages: 1800,
			DataWriteLibFrac: 0.40, FetchShares: [5]float64{0.02, 0.38, 0.08, 0.52, 0.002}},
		{Name: "Chrome Sandbox", Seed: 105, UserPct: 88.8, ColdPTEs: 780, WarmPTEs: 1000,
			OtherLibPages: 1300, PrivateCodePages: 150, AppFilePages: 450, AnonPages: 700,
			DataWriteLibFrac: 0.25, FetchShares: [5]float64{0.02, 0.35, 0.05, 0.58, 0.002}},
		{Name: "Chrome Privilege", Seed: 106, UserPct: 27.9, ColdPTEs: 840, WarmPTEs: 1100,
			OtherLibPages: 850, PrivateCodePages: 100, AppFilePages: 500, AnonPages: 500,
			DataWriteLibFrac: 0.25, FetchShares: [5]float64{0.02, 0.40, 0.06, 0.52, 0.002}},
		{Name: "Email", Seed: 107, UserPct: 87.1, ColdPTEs: 640, WarmPTEs: 1300,
			OtherLibPages: 500, PrivateCodePages: 60, AppFilePages: 700, AnonPages: 600,
			DataWriteLibFrac: 0.25, FetchShares: [5]float64{0.01, 0.70, 0.14, 0.15, 0.002}},
		{Name: "Google Calendar", Seed: 108, UserPct: 96.2, ColdPTEs: 1520, WarmPTEs: 2500,
			OtherLibPages: 600, PrivateCodePages: 60, AppFilePages: 180, AnonPages: 700,
			DataWriteLibFrac: 0.20, FetchShares: [5]float64{0.01, 0.72, 0.14, 0.13, 0.002}},
		{Name: "MX Player", Seed: 109, UserPct: 59.3, ColdPTEs: 2300, WarmPTEs: 5800,
			OtherLibPages: 1700, PrivateCodePages: 250, AppFilePages: 16000, AnonPages: 1400,
			DataWriteLibFrac: 0.35, FetchShares: def},
		{Name: "Laya Music Player", Seed: 110, UserPct: 82.6, ColdPTEs: 1740, WarmPTEs: 3400,
			OtherLibPages: 1200, PrivateCodePages: 140, AppFilePages: 3300, AnonPages: 800,
			DataWriteLibFrac: 0.30, FetchShares: def},
		{Name: "WPS", Seed: 111, UserPct: 47.1, ColdPTEs: 1500, WarmPTEs: 2400,
			OtherLibPages: 2100, PrivateCodePages: 450, AppFilePages: 7800, AnonPages: 1500,
			DataWriteLibFrac: 0.35, FetchShares: [5]float64{0.04, 0.52, 0.09, 0.35, 0.002}},
	}
}

// HelloWorldSpec is the example HelloWorld application from the Android
// open source project, used by the paper for the application-launch
// experiments of Section 4.2.2: its launch window (which ends right
// before application-specific Java classes load) is identical to every
// other app's, and its own footprint is tiny.
func HelloWorldSpec() AppSpec {
	return AppSpec{
		Name: "HelloWorld", Seed: 999, UserPct: 90.0,
		ColdPTEs: 1500, WarmPTEs: 1600,
		OtherLibPages: 50, PrivateCodePages: 10, AppFilePages: 20, AnonPages: 120,
		DataWriteLibFrac: 0.2,
		FetchShares:      [5]float64{0.01, 0.70, 0.14, 0.15, 0.002},
	}
}

// SpecByName returns the suite entry with the given name.
func SpecByName(name string) (AppSpec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return AppSpec{}, fmt.Errorf("workload: unknown application %q", name)
}

// Profile is the materialized access pattern of one application: the
// concrete page sets its run touches.
type Profile struct {
	// Spec is the source parameters.
	Spec AppSpec
	// ZygotePreloaded is the set of preloaded code pages (global
	// indexes into the universe) the app executes, sorted. Its
	// intersection with the zygote's boot-time set has size
	// ~Spec.ColdPTEs and its total size is ~Spec.WarmPTEs.
	ZygotePreloaded []int
	// InheritedCold is the subset of ZygotePreloaded inside the
	// zygote's boot-time footprint.
	InheritedCold []int
	// UsedLibs is the set of preloaded dynamic libraries the app
	// invokes (paper: up to 62 of 88).
	UsedLibs []int
	// DataWriteLibs is the subset of UsedLibs whose data segment the
	// app writes during execution.
	DataWriteLibs []int
}

// BuildProfile samples the application's page sets from the universe.
func BuildProfile(u *Universe, spec AppSpec) *Profile {
	rng := rand.New(rand.NewSource(spec.Seed))
	p := &Profile{Spec: spec}

	nCold := spec.ColdPTEs
	if nCold > u.zygoteTouched {
		nCold = u.zygoteTouched
	}
	nNew := spec.WarmPTEs - spec.ColdPTEs
	if rest := u.TotalCodePages() - u.zygoteTouched; nNew > rest {
		nNew = rest
	}

	// Cold pages: biased sample from the zygote's boot-time footprint.
	// The quadratic rank bias concentrates every app on the same hot
	// prefix, producing the ~38% pairwise overlap of Table 2.
	cold := sampleBiased(rng, u.hotOrder[:u.zygoteTouched], nCold, 3.5)
	// New pages: mildly biased sample from the colder remainder; the
	// scatter across the large remainder produces the 64KB sparsity of
	// Figure 4.
	fresh := sampleBiased(rng, u.hotOrder[u.zygoteTouched:], nNew, 4.0)

	p.InheritedCold = append([]int(nil), cold...)
	p.ZygotePreloaded = append(append([]int(nil), cold...), fresh...)
	sort.Ints(p.InheritedCold)
	sort.Ints(p.ZygotePreloaded)

	// Used libraries: every library with at least one executed page.
	used := make(map[int]bool)
	for _, pg := range p.ZygotePreloaded {
		seg := u.PageSegment(pg)
		if seg.Kind == "dynlib" {
			used[seg.LibIndex] = true
		}
	}
	for li := range used {
		p.UsedLibs = append(p.UsedLibs, li)
	}
	sort.Ints(p.UsedLibs)

	// Data-writing libraries: a deterministic subset of the used ones.
	nw := int(float64(len(p.UsedLibs)) * spec.DataWriteLibFrac)
	perm := rng.Perm(len(p.UsedLibs))
	for _, i := range perm[:nw] {
		p.DataWriteLibs = append(p.DataWriteLibs, p.UsedLibs[i])
	}
	sort.Ints(p.DataWriteLibs)
	return p
}

// sampleBiased draws n distinct elements from order (hotness-ranked) with
// probability density proportional to rank^-something: index floor(m*u^b)
// for uniform u favors the front for b > 1.
func sampleBiased(rng *rand.Rand, order []int, n int, bias float64) []int {
	if n >= len(order) {
		return append([]int(nil), order...)
	}
	chosen := make([]bool, len(order))
	out := make([]int, 0, n)
	for len(out) < n {
		idx := int(float64(len(order)) * math.Pow(rng.Float64(), bias))
		if idx >= len(order) {
			idx = len(order) - 1
		}
		// Linear-probe to the next unchosen rank to keep this O(n).
		for chosen[idx] {
			idx++
			if idx == len(order) {
				idx = 0
			}
		}
		chosen[idx] = true
		out = append(out, order[idx])
	}
	return out
}

// Overlap returns |a ∩ b| for two sorted page sets.
func Overlap(a, b []int) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
