package vm

import (
	"repro/internal/obs"
)

// Compile-time check: every MM is an obs.Source.
var _ obs.Source = (*MM)(nil)

// Name implements obs.Source. Per-process address spaces are usually
// wrapped in obs.Prefix with a process identity when registered.
func (mm *MM) Name() string { return "vm" }

// Snapshot implements obs.Source.
func (mm *MM) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"page_faults": mm.Counters.PageFaults,
		"file_faults": mm.Counters.FileFaults,
		"anon_faults": mm.Counters.AnonFaults,
		"cow_breaks":  mm.Counters.COWBreaks,
	}
}

// Reset implements obs.Source.
func (mm *MM) Reset() { mm.Counters = Counters{} }
