package vm

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/arch/armv7"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

func newMM(t *testing.T, phys *mem.PhysMem, asid arch.ASID) *MM {
	t.Helper()
	mm, err := NewMM(phys, asid, geoARM)
	if err != nil {
		t.Fatal(err)
	}
	return mm
}

func TestProtString(t *testing.T) {
	if got := (ProtRead | ProtExec).String(); got != "r-x" {
		t.Errorf("Prot = %q, want r-x", got)
	}
	if got := (ProtRead | ProtWrite).String(); got != "rw-" {
		t.Errorf("Prot = %q, want rw-", got)
	}
	if got := Prot(0).String(); got != "---" {
		t.Errorf("Prot = %q, want ---", got)
	}
}

func TestCategoryClassification(t *testing.T) {
	if !CatZygoteDynLib.IsSharedCode() || !CatZygoteDynLib.IsZygotePreloaded() {
		t.Error("zygote dyn lib should be shared + preloaded")
	}
	if !CatOtherDynLib.IsSharedCode() || CatOtherDynLib.IsZygotePreloaded() {
		t.Error("other dyn lib should be shared but not preloaded")
	}
	if CatPrivateCode.IsSharedCode() {
		t.Error("private code is not shared code")
	}
	for c := CatOther; c <= CatOtherDynLib+1; c++ {
		if c.String() == "" {
			t.Errorf("empty name for category %d", c)
		}
	}
}

func TestFilePageCacheStable(t *testing.T) {
	phys := mem.New(64)
	f := NewFile(phys, "libc.so", 5*arch.PageSize)
	a, err := f.PageFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.PageFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("page cache must return a stable frame per page")
	}
	c, _ := f.PageFrame(4)
	if c == a {
		t.Error("different pages must get different frames")
	}
	if f.ResidentPages() != 2 {
		t.Errorf("ResidentPages = %d, want 2", f.ResidentPages())
	}
	if _, err := f.PageFrame(5); err == nil {
		t.Error("page beyond EOF should fail")
	}
	if _, err := f.PageFrame(-1); err == nil {
		t.Error("negative page should fail")
	}
}

func mkVMA(start, end arch.VirtAddr, prot Prot, name string) *VMA {
	return &VMA{Start: start, End: end, Prot: prot, Flags: VMAPrivate, Name: name}
}

func TestInsertFind(t *testing.T) {
	phys := mem.New(64)
	mm := newMM(t, phys, 1)
	if err := mm.Insert(mkVMA(0x10000, 0x20000, ProtRead, "a")); err != nil {
		t.Fatal(err)
	}
	if err := mm.Insert(mkVMA(0x40000, 0x50000, ProtRead, "b")); err != nil {
		t.Fatal(err)
	}
	if v := mm.FindVMA(0x10000); v == nil || v.Name != "a" {
		t.Errorf("FindVMA(start) = %v", v)
	}
	if v := mm.FindVMA(0x1FFFF); v == nil || v.Name != "a" {
		t.Errorf("FindVMA(end-1) = %v", v)
	}
	if v := mm.FindVMA(0x20000); v != nil {
		t.Errorf("FindVMA(end) = %v, want nil (exclusive)", v)
	}
	if v := mm.FindVMA(0x30000); v != nil {
		t.Errorf("FindVMA(gap) = %v, want nil", v)
	}
}

func TestInsertRejectsOverlapAndMisalignment(t *testing.T) {
	phys := mem.New(64)
	mm := newMM(t, phys, 1)
	if err := mm.Insert(mkVMA(0x10000, 0x20000, ProtRead, "a")); err != nil {
		t.Fatal(err)
	}
	if err := mm.Insert(mkVMA(0x18000, 0x28000, ProtRead, "overlap")); err == nil {
		t.Error("overlap should be rejected")
	}
	if err := mm.Insert(mkVMA(0x30001, 0x40000, ProtRead, "misaligned")); err == nil {
		t.Error("misaligned start should be rejected")
	}
	if err := mm.Insert(mkVMA(0x40000, 0x40000, ProtRead, "empty")); err == nil {
		t.Error("empty region should be rejected")
	}
}

func TestVMAsSorted(t *testing.T) {
	phys := mem.New(64)
	mm := newMM(t, phys, 1)
	_ = mm.Insert(mkVMA(0x40000, 0x50000, ProtRead, "b"))
	_ = mm.Insert(mkVMA(0x10000, 0x20000, ProtRead, "a"))
	_ = mm.Insert(mkVMA(0x60000, 0x70000, ProtRead, "c"))
	vmas := mm.VMAs()
	for i := 1; i < len(vmas); i++ {
		if vmas[i-1].Start >= vmas[i].Start {
			t.Fatal("VMAs not sorted")
		}
	}
}

func TestRemoveRangeWhole(t *testing.T) {
	phys := mem.New(64)
	mm := newMM(t, phys, 1)
	_ = mm.Insert(mkVMA(0x10000, 0x20000, ProtRead, "a"))
	removed := mm.RemoveRange(0x10000, 0x20000)
	if len(removed) != 1 || removed[0].Name != "a" {
		t.Fatalf("removed = %v", removed)
	}
	if len(mm.VMAs()) != 0 {
		t.Error("region should be gone")
	}
}

func TestRemoveRangeSplits(t *testing.T) {
	phys := mem.New(64)
	mm := newMM(t, phys, 1)
	f := NewFile(phys, "f", 0x40000)
	_ = mm.Insert(&VMA{Start: 0x10000, End: 0x40000, Prot: ProtRead, Flags: VMAPrivate, File: f, FileOff: 0x4000, Name: "a"})
	removed := mm.RemoveRange(0x20000, 0x30000)
	if len(removed) != 1 {
		t.Fatalf("removed %d regions, want 1", len(removed))
	}
	if removed[0].Start != 0x20000 || removed[0].End != 0x30000 {
		t.Errorf("removed piece = %#x-%#x", removed[0].Start, removed[0].End)
	}
	if removed[0].FileOff != 0x4000+0x10000 {
		t.Errorf("removed FileOff = %#x", removed[0].FileOff)
	}
	vmas := mm.VMAs()
	if len(vmas) != 2 {
		t.Fatalf("kept %d regions, want 2", len(vmas))
	}
	if vmas[0].Start != 0x10000 || vmas[0].End != 0x20000 {
		t.Errorf("left piece = %#x-%#x", vmas[0].Start, vmas[0].End)
	}
	if vmas[1].Start != 0x30000 || vmas[1].End != 0x40000 {
		t.Errorf("right piece = %#x-%#x", vmas[1].Start, vmas[1].End)
	}
	if vmas[1].FileOff != 0x4000+0x20000 {
		t.Errorf("right FileOff = %#x", vmas[1].FileOff)
	}
}

func TestRemoveRangePreservesTotalPages(t *testing.T) {
	prop := func(s1, e1, s2, e2 uint8) bool {
		phys := mem.New(64)
		mm, _ := NewMM(phys, 1, geoARM)
		start := arch.VirtAddr(0x100000)
		lo1, hi1 := arch.VirtAddr(s1), arch.VirtAddr(e1)
		if lo1 > hi1 {
			lo1, hi1 = hi1, lo1
		}
		if lo1 == hi1 {
			hi1++
		}
		v := mkVMA(start+lo1*arch.PageSize, start+hi1*arch.PageSize, ProtRead, "r")
		if mm.Insert(v) != nil {
			return true
		}
		total := v.Pages()
		lo2, hi2 := arch.VirtAddr(s2), arch.VirtAddr(e2)
		if lo2 > hi2 {
			lo2, hi2 = hi2, lo2
		}
		if lo2 == hi2 {
			return true
		}
		removed := mm.RemoveRange(start+lo2*arch.PageSize, start+hi2*arch.PageSize)
		n := 0
		for _, r := range removed {
			n += r.Pages()
		}
		for _, r := range mm.VMAs() {
			n += r.Pages()
		}
		return n == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func resolveAndSet(t *testing.T, mm *MM, vma *VMA, va arch.VirtAddr, kind arch.AccessKind) pagetable.PTE {
	t.Helper()
	var existing pagetable.PTE
	if p := mm.PT.PTEAt(va); p != nil {
		existing = *p
	}
	pte, err := mm.ResolvePTE(vma, va, kind, existing)
	if err != nil {
		t.Fatalf("ResolvePTE(%#x, %v): %v", va, kind, err)
	}
	if _, err := mm.PT.EnsureLeafForVA(va, armv7.DomainUser); err != nil {
		t.Fatal(err)
	}
	mm.PT.Set(va, pte)
	return pte
}

func TestResolveAnon(t *testing.T) {
	phys := mem.New(64)
	mm := newMM(t, phys, 1)
	v := mkVMA(0x10000, 0x20000, ProtRead|ProtWrite, "heap")
	_ = mm.Insert(v)
	pte := resolveAndSet(t, mm, v, 0x10000, arch.AccessWrite)
	if !pte.Writable() || pte.Soft&arch.SoftDirty == 0 {
		t.Errorf("anon write fault pte = %+v", pte)
	}
	if mm.Counters.AnonFaults != 1 || mm.Counters.FileFaults != 0 {
		t.Errorf("counters = %+v", mm.Counters)
	}
}

func TestResolveFilePrivateReadThenCOW(t *testing.T) {
	phys := mem.New(64)
	mm := newMM(t, phys, 1)
	f := NewFile(phys, "lib.so", 0x10000)
	v := &VMA{Start: 0x10000, End: 0x20000, Prot: ProtRead | ProtWrite, Flags: VMAPrivate, File: f, Name: "data"}
	_ = mm.Insert(v)

	pte := resolveAndSet(t, mm, v, 0x10000, arch.AccessRead)
	if pte.Writable() {
		t.Error("private writable file page must be mapped read-only first")
	}
	if pte.Soft&arch.SoftCOW == 0 || pte.Soft&arch.SoftFile == 0 {
		t.Errorf("soft flags = %v, want COW|File", pte.Soft)
	}
	fileFrame := pte.Frame

	// Write: COW break to a fresh anonymous frame.
	pte2 := resolveAndSet(t, mm, v, 0x10000, arch.AccessWrite)
	if !pte2.Writable() || pte2.Soft&arch.SoftDirty == 0 {
		t.Errorf("post-COW pte = %+v", pte2)
	}
	if pte2.Frame == fileFrame {
		t.Error("COW must allocate a new frame")
	}
	if mm.Counters.COWBreaks != 1 {
		t.Errorf("COWBreaks = %d, want 1", mm.Counters.COWBreaks)
	}
	if mm.Counters.FileFaults != 1 {
		t.Errorf("FileFaults = %d, want 1 (COW break is a perm fault, not a file fault)", mm.Counters.FileFaults)
	}
}

func TestResolveFileSharedAcrossProcesses(t *testing.T) {
	phys := mem.New(64)
	a := newMM(t, phys, 1)
	b := newMM(t, phys, 2)
	f := NewFile(phys, "libc.so", 0x10000)
	va := &VMA{Start: 0x10000, End: 0x20000, Prot: ProtRead | ProtExec, Flags: VMAPrivate, File: f, Name: "code"}
	vb := &VMA{Start: 0x10000, End: 0x20000, Prot: ProtRead | ProtExec, Flags: VMAPrivate, File: f, Name: "code"}
	_ = a.Insert(va)
	_ = b.Insert(vb)
	pa := resolveAndSet(t, a, va, 0x11000, arch.AccessFetch)
	pb := resolveAndSet(t, b, vb, 0x11000, arch.AccessFetch)
	if pa.Frame != pb.Frame {
		t.Error("both processes must map the same page-cache frame: identical translations")
	}
}

func TestResolveFirstTouchWrite(t *testing.T) {
	phys := mem.New(64)
	mm := newMM(t, phys, 1)
	f := NewFile(phys, "lib.so", 0x10000)
	v := &VMA{Start: 0x10000, End: 0x20000, Prot: ProtRead | ProtWrite, Flags: VMAPrivate, File: f, Name: "data"}
	_ = mm.Insert(v)
	pte := resolveAndSet(t, mm, v, 0x10000, arch.AccessWrite)
	if !pte.Writable() || pte.Soft&arch.SoftDirty == 0 {
		t.Errorf("first-touch write pte = %+v", pte)
	}
	if mm.Counters.COWBreaks != 1 || mm.Counters.FileFaults != 1 {
		t.Errorf("counters = %+v", mm.Counters)
	}
}

func TestResolveSharedFileWrite(t *testing.T) {
	phys := mem.New(64)
	mm := newMM(t, phys, 1)
	f := NewFile(phys, "shm", 0x10000)
	v := &VMA{Start: 0x10000, End: 0x20000, Prot: ProtRead | ProtWrite, Flags: VMAShared, File: f, Name: "shm"}
	_ = mm.Insert(v)
	pte := resolveAndSet(t, mm, v, 0x10000, arch.AccessWrite)
	if !pte.Writable() {
		t.Error("shared mapping write should map writable")
	}
	fr, _ := f.PageFrame(0)
	if pte.Frame != fr {
		t.Error("shared mapping must map the page-cache frame itself")
	}
}

func TestResolveSegv(t *testing.T) {
	phys := mem.New(64)
	mm := newMM(t, phys, 1)
	v := mkVMA(0x10000, 0x20000, ProtRead, "ro")
	_ = mm.Insert(v)
	if _, err := mm.ResolvePTE(nil, 0x50000, arch.AccessRead, pagetable.PTE{}); err == nil {
		t.Error("fault outside any region must fail")
	}
	if _, err := mm.ResolvePTE(v, 0x10000, arch.AccessWrite, pagetable.PTE{}); err == nil {
		t.Error("write to read-only region must fail")
	}
	if _, err := mm.ResolvePTE(v, 0x10000, arch.AccessFetch, pagetable.PTE{}); err == nil {
		t.Error("fetch from non-exec region must fail")
	}
}

func TestStockForkDecision(t *testing.T) {
	phys := mem.New(64)
	f := NewFile(phys, "lib.so", 0x10000)
	anon := mkVMA(0x10000, 0x20000, ProtRead|ProtWrite, "heap")
	file := &VMA{Start: 0x30000, End: 0x40000, Prot: ProtRead | ProtExec, Flags: VMAPrivate, File: f, Name: "code"}
	if StockForkDecision(anon) != ForkCopyCOW {
		t.Error("anonymous regions must be copied")
	}
	if StockForkDecision(file) != ForkSkip {
		t.Error("file-backed regions must be skipped")
	}
}

func TestCopyPTERange(t *testing.T) {
	phys := mem.New(128)
	parent := newMM(t, phys, 1)
	child := newMM(t, phys, 2)
	v := mkVMA(0x10000, 0x20000, ProtRead|ProtWrite, "heap")
	_ = parent.Insert(v)
	resolveAndSet(t, parent, v, 0x10000, arch.AccessWrite)
	resolveAndSet(t, parent, v, 0x12000, arch.AccessWrite)

	copied, err := CopyPTERange(parent, child, v, v.Start, v.End, CopyStock, armv7.DomainUser)
	if err != nil {
		t.Fatal(err)
	}
	if copied != 2 {
		t.Errorf("copied = %d, want 2", copied)
	}
	// Both sides are now write-protected COW.
	pp := parent.PT.PTEAt(0x10000)
	cp := child.PT.PTEAt(0x10000)
	if pp.Writable() || cp.Writable() {
		t.Error("both sides must be write-protected after fork copy")
	}
	if pp.Soft&arch.SoftCOW == 0 || cp.Soft&arch.SoftCOW == 0 {
		t.Error("both sides must be marked COW")
	}
	if pp.Frame != cp.Frame {
		t.Error("COW pages share the frame until written")
	}
}

func TestCopyPTERangeCopiesDirtyFilePages(t *testing.T) {
	phys := mem.New(128)
	parent := newMM(t, phys, 1)
	child := newMM(t, phys, 2)
	f := NewFile(phys, "lib.so", 0x10000)
	v := &VMA{Start: 0x10000, End: 0x20000, Prot: ProtRead | ProtWrite, Flags: VMAPrivate, File: f, Name: "data"}
	_ = parent.Insert(v)
	resolveAndSet(t, parent, v, 0x10000, arch.AccessRead)  // clean file page
	resolveAndSet(t, parent, v, 0x12000, arch.AccessWrite) // dirty private copy

	copied, err := CopyPTERange(parent, child, v, v.Start, v.End, CopyStock, armv7.DomainUser)
	if err != nil {
		t.Fatal(err)
	}
	if copied != 1 {
		t.Errorf("copied = %d, want 1 (only the dirty page; clean file pages re-fault)", copied)
	}
	if p := child.PT.PTEAt(0x12000); p == nil || !p.Valid() {
		t.Error("dirty page must be in the child")
	}
	if p := child.PT.PTEAt(0x10000); p != nil && p.Valid() {
		t.Error("clean file page must not be copied")
	}
}

func TestSmapsDump(t *testing.T) {
	phys := mem.New(64)
	mm := newMM(t, phys, 1)
	v := mkVMA(0x10000, 0x14000, ProtRead|ProtWrite, "heap")
	v.Category = CatOther
	_ = mm.Insert(v)
	resolveAndSet(t, mm, v, 0x10000, arch.AccessWrite)
	dump := mm.SmapsDump()
	if len(dump) != 1 {
		t.Fatalf("dump has %d entries", len(dump))
	}
	if dump[0].Resident != 1 {
		t.Errorf("Resident = %d, want 1", dump[0].Resident)
	}
	if dump[0].Name != "heap" || dump[0].Prot != (ProtRead|ProtWrite) {
		t.Errorf("dump[0] = %+v", dump[0])
	}
}

func TestResolveSharedWriteRestoresPermission(t *testing.T) {
	// A MAP_SHARED page whose PTE was write-protected by PTP sharing:
	// the write fault restores permission on the same frame, no copy.
	phys := mem.New(64)
	mm := newMM(t, phys, 1)
	f := NewFile(phys, "shm", 0x10000)
	v := &VMA{Start: 0x10000, End: 0x20000, Prot: ProtRead | ProtWrite, Flags: VMAShared, File: f, Name: "shm"}
	_ = mm.Insert(v)
	pte := resolveAndSet(t, mm, v, 0x10000, arch.AccessRead)
	// Simulate fork-time write protection of the shared PTP.
	p := mm.PT.PTEAt(0x10000)
	p.Flags &^= arch.PTEWrite

	restored, err := mm.ResolvePTE(v, 0x10000, arch.AccessWrite, *p)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Frame != pte.Frame {
		t.Error("shared write must keep the page-cache frame")
	}
	if !restored.Writable() || restored.Soft&arch.SoftDirty == 0 {
		t.Errorf("restored = %+v, want writable dirty", restored)
	}
	if mm.Counters.COWBreaks != 0 {
		t.Error("no COW break for a shared mapping")
	}
}

// geoARM is the geometry the legacy vm tests run under.
var geoARM = armv7.MMU().Geometry()
