// Aliasing-hazard tests for the page-cache overlay scheme across
// fork-of-fork chains. Each File clone freezes the source's overlay into
// an immutable base shared by reference (clone.go); the hazards are a
// node dirtying its overlay AFTER a clone was taken (the late pages must
// not alias into the clone) and an interior node of a chain being
// written through once it has descendants. The tests inspect the
// pages/frozen split directly, which is why they live in package vm.

package vm

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/mem"
)

// pagesOf snapshots a file's resident pages as index→frame.
func pagesOf(f *File) map[int]arch.FrameNum {
	m := make(map[int]arch.FrameNum)
	f.ForEachPage(func(idx int, fr arch.FrameNum) { m[idx] = fr })
	return m
}

func mustRead(t *testing.T, f *File, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if _, err := f.PageFrame(i); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFileCloneParentDirtyAfterChildFork(t *testing.T) {
	phys := mem.New(4096)
	f := NewFile(phys, "libbase.so", 64*arch.PageSize)
	mustRead(t, f, 0, 8)

	child := NewCloneCtx(phys.Fork()).File(f)
	want := pagesOf(child)

	// The parent keeps running after the fork: its new reads must land in
	// a fresh private overlay, never in the frozen base the child shares.
	mustRead(t, f, 16, 24)

	if got := pagesOf(child); !reflect.DeepEqual(got, want) {
		t.Errorf("parent reads after the fork changed the child: %v, want %v", got, want)
	}
	if n := child.ResidentPages(); n != 8 {
		t.Errorf("child resident pages = %d, want the 8 present at fork time", n)
	}
	if _, ok := child.frameAt(16); ok {
		t.Error("parent's post-fork page aliased into the child")
	}
	// The pre-fork pages really are shared storage, not copies: one
	// frozen array backs both nodes.
	if len(child.pages) != 0 {
		t.Errorf("unwritten child has a private overlay of %d pages", len(child.pages))
	}
	if &f.frozen[0] != &child.frozen[0] {
		t.Error("child does not share the parent's frozen base")
	}
}

func TestFileCloneChainInteriorDirtyAfterLeafFork(t *testing.T) {
	phys := mem.New(4096)
	root := NewFile(phys, "libchain.so", 64*arch.PageSize)
	mustRead(t, root, 0, 4)

	// Fork-of-fork chain root → mid → leaf, with mid accreting its own
	// overlay between the two forks.
	mid := NewCloneCtx(phys.Fork()).File(root)
	mustRead(t, mid, 8, 12)
	leaf := NewCloneCtx(mid.phys.Fork()).File(mid)

	wantLeaf := pagesOf(leaf)
	wantMid := pagesOf(mid)

	// The interior node dirties after the leaf fork, then the root does.
	mustRead(t, mid, 16, 20)
	mustRead(t, root, 24, 28)

	if got := pagesOf(leaf); !reflect.DeepEqual(got, wantLeaf) {
		t.Errorf("interior/root reads after the fork changed the leaf: %v, want %v", got, wantLeaf)
	}
	if n := leaf.ResidentPages(); n != 8 {
		t.Errorf("leaf resident pages = %d, want the 8 present at fork time", n)
	}
	if _, ok := leaf.frameAt(16); ok {
		t.Error("interior node's post-fork page aliased into the leaf")
	}
	if _, ok := mid.frameAt(24); ok {
		t.Error("root's post-fork page aliased into the interior clone")
	}
	for idx := range wantMid {
		if _, ok := mid.frameAt(idx); !ok {
			t.Errorf("interior node lost page %d when the leaf forked", idx)
		}
	}
	// The leaf fork froze mid's overlay into one merged base that both
	// nodes now share; mid's later reads went to a fresh overlay.
	if &mid.frozen[0] != &leaf.frozen[0] {
		t.Error("leaf does not share the interior node's frozen base")
	}
}
