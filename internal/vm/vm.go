// Package vm implements the machine-independent Linux-like virtual memory
// substrate that the shared-address-translation kernel (package core) is
// built on: address spaces (MM), memory regions (VMA, mirroring Linux's
// vm_area_struct), a page cache for file-backed mappings, and the demand
// paging and copy-on-write logic that computes page-table entries for
// faulting pages.
//
// The substrate deliberately stops below kernel policy: deciding whether a
// page-table page may be shared, when to unshare it, and how to install
// the computed PTE (privately or into a shared PTP) is the core package's
// job, exactly as the paper's patch layers over stock Linux mechanisms.
//
// Data frames (anonymous memory and page-cache pages) are allocate-only in
// the simulation: the metrics the paper reports — page faults, PTPs
// allocated, PTEs copied, TLB and cache behavior — never require data
// frames to be reclaimed, so the substrate trades reclamation for
// simplicity. Page-table pages, by contrast, are fully reference-counted
// through their frame mapcount, because PTP lifetime is the object of
// study.
package vm

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

// Prot is a region's access protection.
type Prot uint8

// Protection bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

// String renders the protection in ls -l style ("r-x").
func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Category classifies a region for the instruction-footprint analyses of
// Section 2.3 (Figures 2 and 3 of the paper).
type Category uint8

// Region categories.
const (
	// CatOther covers data, heap, stack and anonymous regions.
	CatOther Category = iota
	// CatPrivateCode is application private code.
	CatPrivateCode
	// CatZygoteDynLib is a zygote-preloaded dynamic shared library
	// (.so) code segment, including the dynamic loader.
	CatZygoteDynLib
	// CatZygoteJavaLib is zygote-preloaded Java shared library code,
	// AOT-compiled to native code by ART at installation time.
	CatZygoteJavaLib
	// CatZygoteBinary is the zygote's C++ main program, app_process.
	CatZygoteBinary
	// CatOtherDynLib is an application-specific or platform-specific
	// dynamic shared library not preloaded by the zygote.
	CatOtherDynLib
)

// String names the category as in the paper's figure legends.
func (c Category) String() string {
	switch c {
	case CatPrivateCode:
		return "private code"
	case CatZygoteDynLib:
		return "zygote-preloaded dynamic shared lib"
	case CatZygoteJavaLib:
		return "zygote-preloaded Java shared lib"
	case CatZygoteBinary:
		return "zygote program binary"
	case CatOtherDynLib:
		return "dynamic shared lib not preloaded by zygote"
	default:
		return "other"
	}
}

// IsSharedCode reports whether the category counts as "shared code" in the
// paper's terminology.
func (c Category) IsSharedCode() bool {
	switch c {
	case CatZygoteDynLib, CatZygoteJavaLib, CatZygoteBinary, CatOtherDynLib:
		return true
	default:
		return false
	}
}

// IsZygotePreloaded reports whether the category is zygote-preloaded
// shared code.
func (c Category) IsZygotePreloaded() bool {
	switch c {
	case CatZygoteDynLib, CatZygoteJavaLib, CatZygoteBinary:
		return true
	default:
		return false
	}
}

// File is a simulated file with its resident page cache. All processes
// mapping the same file page share one physical frame, which is what makes
// the virtual-to-physical translations of zygote-preloaded shared code
// identical across all application processes.
type File struct {
	// Name is the file's path-like identifier.
	Name string
	// Size is the file length in bytes.
	Size int

	phys *mem.PhysMem
	// pages is this file's private page-cache overlay; frozen is an
	// immutable base shared structurally with checkpoint clones of the
	// file. Both are sorted by page index and disjoint: a read-in page
	// lands in pages only when neither array holds it, and frozen is
	// never written after freezing. Flat sorted arrays beat maps here:
	// lookups are a short binary search with no hashing, iteration is a
	// merge in index order with no sort, and a checkpoint clone shares
	// one contiguous block instead of a bucket graph.
	pages  []FilePage
	frozen []FilePage
}

// FilePage is one resident page-cache entry. It is exported for the
// persistent image store (internal/imagestore), which serializes page
// caches as flat sorted arrays of this struct.
type FilePage struct {
	Idx   int32
	Frame arch.FrameNum
}

// findPage binary-searches a sorted filePage array.
func findPage(s []FilePage, idx int32) (arch.FrameNum, bool) {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].Idx < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo].Idx == idx {
		return s[lo].Frame, true
	}
	return 0, false
}

// NewFile creates a file of the given size with an empty page cache.
func NewFile(phys *mem.PhysMem, name string, size int) *File {
	return &File{Name: name, Size: size, phys: phys}
}

// frameAt returns the cached frame for page idx from the overlay or the
// frozen base.
func (f *File) frameAt(idx int) (arch.FrameNum, bool) {
	if fr, ok := findPage(f.pages, int32(idx)); ok {
		return fr, true
	}
	return findPage(f.frozen, int32(idx))
}

// PageFrame returns the page-cache frame for page index idx, reading it in
// (allocating a frame) on first touch.
func (f *File) PageFrame(idx int) (arch.FrameNum, error) {
	if idx < 0 || idx*arch.PageSize >= f.Size {
		return 0, fmt.Errorf("vm: page %d beyond EOF of %q (%d bytes)", idx, f.Name, f.Size)
	}
	if fr, ok := f.frameAt(idx); ok {
		return fr, nil
	}
	fr, err := f.phys.Alloc(mem.FramePageCache)
	if err != nil {
		return 0, fmt.Errorf("vm: page cache for %q: %w", f.Name, err)
	}
	f.insertRun(int32(idx), fr, 1)
	return fr, nil
}

// insertRun splices n pages with consecutive indices starting at base and
// consecutive frames starting at fr into the sorted overlay. The caller
// has checked none of them is resident, so the run occupies one gap.
// Checkpoint clones start with a nil overlay; the first write allocates
// it, so an unwritten file costs nothing per fork.
func (f *File) insertRun(base int32, fr arch.FrameNum, n int) {
	i := sort.Search(len(f.pages), func(i int) bool { return f.pages[i].Idx >= base })
	f.pages = append(f.pages, make([]FilePage, n)...)
	copy(f.pages[i+n:], f.pages[i:])
	for k := 0; k < n; k++ {
		f.pages[i+k] = FilePage{Idx: base + int32(k), Frame: fr + arch.FrameNum(k)}
	}
}

// ResidentPages returns the number of pages currently in the page cache.
func (f *File) ResidentPages() int { return len(f.pages) + len(f.frozen) }

// ForEachPage calls fn for every resident page-cache page in ascending
// page order, for state fingerprinting. Both layers are already sorted,
// so this is a plain two-way merge.
func (f *File) ForEachPage(fn func(idx int, frame arch.FrameNum)) {
	a, b := f.frozen, f.pages
	for len(a) > 0 || len(b) > 0 {
		switch {
		case len(b) == 0 || (len(a) > 0 && a[0].Idx < b[0].Idx):
			fn(int(a[0].Idx), a[0].Frame)
			a = a[1:]
		default:
			fn(int(b[0].Idx), b[0].Frame)
			b = b[1:]
		}
	}
}

// LargeFrame returns the base frame of the aligned page-cache block
// backing large-page chunk index chunk, reading the whole chunk in
// (pagesPerChunk contiguous, aligned frames) on first touch. The chunk
// size is the architecture's large-page span — 16 pages (64KB) on
// ARMv7, 512 pages (2MB) on Sv39. A chunk partially cached with 4KB
// frames cannot be promoted and is an error: large mappings must be
// established before demand paging touches the range.
func (f *File) LargeFrame(chunk, pagesPerChunk int) (arch.FrameNum, error) {
	base := chunk * pagesPerChunk
	if base < 0 || base*arch.PageSize >= f.Size {
		return 0, fmt.Errorf("vm: large chunk %d beyond EOF of %q (%d bytes)", chunk, f.Name, f.Size)
	}
	if fr, ok := f.frameAt(base); ok {
		if int(fr)%pagesPerChunk != 0 {
			return 0, fmt.Errorf("vm: chunk %d of %q already cached with 4KB frames", chunk, f.Name)
		}
		return fr, nil
	}
	for i := 0; i < pagesPerChunk; i++ {
		if _, ok := f.frameAt(base + i); ok {
			return 0, fmt.Errorf("vm: chunk %d of %q partially cached; cannot map large", chunk, f.Name)
		}
	}
	fr, err := f.phys.AllocRange(pagesPerChunk, pagesPerChunk, mem.FramePageCache)
	if err != nil {
		return 0, fmt.Errorf("vm: large page cache for %q: %w", f.Name, err)
	}
	f.insertRun(int32(base), fr, pagesPerChunk)
	return fr, nil
}

// VMAFlags carries region attributes beyond the protection.
type VMAFlags uint8

// Region flags.
const (
	// VMAPrivate gives copy-on-write semantics: stores are not visible
	// through the file or to other mappers.
	VMAPrivate VMAFlags = 1 << iota
	// VMAShared makes stores visible to all mappers of the file.
	VMAShared
	// VMAGlobal marks zygote-preloaded shared code mapped by the
	// zygote: the kernel sets the PTE global bit for its pages so that
	// TLB entries are shared among all zygote-like processes.
	VMAGlobal
	// VMAStack marks the stack region, which is modified immediately
	// after every fork and is therefore never worth sharing.
	VMAStack
)

// VMA is one memory region of an address space (vm_area_struct).
type VMA struct {
	// Start and End delimit the region: [Start, End), page aligned.
	Start, End arch.VirtAddr
	// Prot is the region protection.
	Prot Prot
	// Flags are the region attributes.
	Flags VMAFlags
	// File backs the region; nil for anonymous regions.
	File *File
	// FileOff is the byte offset of Start within File (page aligned).
	FileOff int
	// Name labels the region for smaps-style dumps.
	Name string
	// Category classifies the region for footprint analyses.
	Category Category
}

// Len returns the region length in bytes.
func (v *VMA) Len() int { return int(v.End - v.Start) }

// Pages returns the region length in pages.
func (v *VMA) Pages() int { return v.Len() / arch.PageSize }

// Contains reports whether va falls inside the region.
func (v *VMA) Contains(va arch.VirtAddr) bool { return va >= v.Start && va < v.End }

// Anonymous reports whether the region has no backing file.
func (v *VMA) Anonymous() bool { return v.File == nil }

// filePage returns the file page index backing va.
func (v *VMA) filePage(va arch.VirtAddr) int {
	return (v.FileOff + int(va-v.Start)) / arch.PageSize
}

// Counters are the software counters the paper adds to the kernel, kept
// per address space.
type Counters struct {
	// PageFaults counts all soft page faults taken.
	PageFaults uint64
	// FileFaults counts page faults for file-based mappings, the
	// central steady-state metric of Figures 9 and 10.
	FileFaults uint64
	// AnonFaults counts faults on anonymous regions.
	AnonFaults uint64
	// COWBreaks counts copy-on-write page copies.
	COWBreaks uint64
}

// MM is one process's address space.
type MM struct {
	// PT is the process page table.
	PT *pagetable.PageTable
	// ASID is the address space identifier assigned to the process.
	ASID arch.ASID
	// Counters accumulates fault statistics.
	Counters Counters

	phys *mem.PhysMem
	vmas []*VMA // sorted by Start, non-overlapping
}

// NewMM creates an empty address space with a fresh page table laid
// out for the given MMU geometry.
func NewMM(phys *mem.PhysMem, asid arch.ASID, geo arch.Geometry) (*MM, error) {
	pt, err := pagetable.New(phys, geo)
	if err != nil {
		return nil, err
	}
	return &MM{PT: pt, ASID: asid, phys: phys}, nil
}

// Phys returns the physical memory the address space allocates from.
func (mm *MM) Phys() *mem.PhysMem { return mm.phys }

// VMAs returns the regions in address order. The slice is shared; callers
// must not mutate it.
func (mm *MM) VMAs() []*VMA { return mm.vmas }

// FindVMA returns the region containing va, or nil.
func (mm *MM) FindVMA(va arch.VirtAddr) *VMA {
	i := sort.Search(len(mm.vmas), func(i int) bool { return mm.vmas[i].End > va })
	if i < len(mm.vmas) && mm.vmas[i].Contains(va) {
		return mm.vmas[i]
	}
	return nil
}

// VMAsInRange returns the regions overlapping [start, end).
func (mm *MM) VMAsInRange(start, end arch.VirtAddr) []*VMA {
	var out []*VMA
	for _, v := range mm.vmas {
		if v.Start < end && v.End > start {
			out = append(out, v)
		}
	}
	return out
}

// Insert adds a region, rejecting misaligned bounds and overlaps.
func (mm *MM) Insert(v *VMA) error {
	if v.Start >= v.End {
		return fmt.Errorf("vm: empty region %#x-%#x (%s)", v.Start, v.End, v.Name)
	}
	if v.Start&arch.PageMask != 0 || v.End&arch.PageMask != 0 {
		return fmt.Errorf("vm: misaligned region %#x-%#x (%s)", v.Start, v.End, v.Name)
	}
	if got := mm.VMAsInRange(v.Start, v.End); len(got) != 0 {
		return fmt.Errorf("vm: region %#x-%#x (%s) overlaps %q", v.Start, v.End, v.Name, got[0].Name)
	}
	i := sort.Search(len(mm.vmas), func(i int) bool { return mm.vmas[i].Start >= v.Start })
	mm.vmas = append(mm.vmas, nil)
	copy(mm.vmas[i+1:], mm.vmas[i:])
	mm.vmas[i] = v
	return nil
}

// RemoveRange deletes [start, end) from the region list, splitting
// regions that straddle a boundary, and returns the removed pieces. Page
// table updates are the caller's responsibility (the kernel must first
// unshare any shared PTPs in the range).
func (mm *MM) RemoveRange(start, end arch.VirtAddr) []*VMA {
	var removed []*VMA
	var kept []*VMA
	for _, v := range mm.vmas {
		switch {
		case v.End <= start || v.Start >= end:
			kept = append(kept, v)
		case v.Start >= start && v.End <= end:
			removed = append(removed, v)
		default:
			// Partial overlap: split.
			if v.Start < start {
				left := *v
				left.End = start
				kept = append(kept, &left)
			}
			if v.End > end {
				right := *v
				right.Start = end
				if right.File != nil {
					right.FileOff = v.FileOff + int(end-v.Start)
				}
				kept = append(kept, &right)
			}
			mid := *v
			if mid.Start < start {
				if mid.File != nil {
					mid.FileOff += int(start - mid.Start)
				}
				mid.Start = start
			}
			if mid.End > end {
				mid.End = end
			}
			removed = append(removed, &mid)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Start < kept[j].Start })
	mm.vmas = kept
	return removed
}

// ProtFlags converts a region protection into the hardware PTE bits for a
// present user page.
func ProtFlags(p Prot) arch.PTEFlags {
	f := arch.PTEValid | arch.PTEUser
	if p&ProtWrite != 0 {
		f |= arch.PTEWrite
	}
	if p&ProtExec != 0 {
		f |= arch.PTEExec
	}
	return f
}

// ResolvePTE computes the page-table entry that resolves a fault of the
// given kind at va inside vma, allocating page-cache or anonymous frames
// as required. existing is the current PTE at va (zero PTE when absent).
// The returned entry is what the stock kernel would install; installing it
// — privately or through a shared PTP, possibly after unsharing — is the
// caller's decision. Counters are updated here.
func (mm *MM) ResolvePTE(vma *VMA, va arch.VirtAddr, kind arch.AccessKind, existing pagetable.PTE) (pagetable.PTE, error) {
	if vma == nil || !vma.Contains(va) {
		return pagetable.PTE{}, fmt.Errorf("vm: fault at %#x outside any region (SIGSEGV)", va)
	}
	if !protPermits(vma.Prot, kind) {
		return pagetable.PTE{}, fmt.Errorf("vm: %s at %#x violates %s protection of %q (SIGSEGV)",
			kind, va, vma.Prot, vma.Name)
	}
	mm.Counters.PageFaults++

	if existing.Valid() {
		if kind != arch.AccessWrite {
			return pagetable.PTE{}, fmt.Errorf("vm: unexpected %s permission fault at %#x in %q", kind, va, vma.Name)
		}
		if vma.Flags&VMAShared != 0 {
			// A shared mapping's PTE was write-protected (by PTP sharing
			// at fork): writes go to the shared frame, so only the write
			// permission needs restoring — no copy.
			restored := existing
			restored.Flags |= arch.PTEWrite
			restored.Soft |= arch.SoftDirty | arch.SoftAccessed
			restored.Soft &^= arch.SoftCOW
			return restored, nil
		}
		// Permission fault on a present private page: copy-on-write break.
		if existing.Soft&arch.SoftCOW == 0 {
			return pagetable.PTE{}, fmt.Errorf("vm: unexpected %s permission fault at %#x in %q", kind, va, vma.Name)
		}
		mm.Counters.COWBreaks++
		fr, err := mm.phys.Alloc(mem.FrameAnon)
		if err != nil {
			return pagetable.PTE{}, err
		}
		return pagetable.PTE{
			Frame: fr,
			Flags: ProtFlags(vma.Prot),
			Soft:  arch.SoftDirty | arch.SoftAccessed,
		}, nil
	}

	if vma.Anonymous() {
		mm.Counters.AnonFaults++
		fr, err := mm.phys.Alloc(mem.FrameAnon)
		if err != nil {
			return pagetable.PTE{}, err
		}
		soft := arch.SoftAccessed
		if kind == arch.AccessWrite {
			soft |= arch.SoftDirty
		}
		return pagetable.PTE{Frame: fr, Flags: ProtFlags(vma.Prot), Soft: soft}, nil
	}

	// File-backed region.
	mm.Counters.FileFaults++
	if vma.Flags&VMAPrivate != 0 && kind == arch.AccessWrite {
		// First touch is a store: allocate a private copy directly.
		mm.Counters.COWBreaks++
		fr, err := mm.phys.Alloc(mem.FrameAnon)
		if err != nil {
			return pagetable.PTE{}, err
		}
		return pagetable.PTE{
			Frame: fr,
			Flags: ProtFlags(vma.Prot),
			Soft:  arch.SoftDirty | arch.SoftAccessed,
		}, nil
	}
	fr, err := vma.File.PageFrame(vma.filePage(va))
	if err != nil {
		return pagetable.PTE{}, err
	}
	flags := ProtFlags(vma.Prot)
	soft := arch.SoftAccessed | arch.SoftFile
	if vma.Flags&VMAPrivate != 0 {
		// Map the page-cache frame read-only; a later store breaks COW.
		if vma.Prot&ProtWrite != 0 {
			flags &^= arch.PTEWrite
			soft |= arch.SoftCOW
		}
	} else if kind == arch.AccessWrite {
		soft |= arch.SoftDirty
	}
	return pagetable.PTE{Frame: fr, Flags: flags, Soft: soft}, nil
}

func protPermits(p Prot, kind arch.AccessKind) bool {
	switch kind {
	case arch.AccessFetch:
		return p&ProtExec != 0
	case arch.AccessWrite:
		return p&ProtWrite != 0
	default:
		return p&ProtRead != 0
	}
}

// ForkCopyDecision describes what the stock kernel does with a region's
// PTEs at fork time.
type ForkCopyDecision uint8

const (
	// ForkSkip leaves the child's PTEs empty: soft page faults fill
	// them in on demand (file-backed mappings).
	ForkSkip ForkCopyDecision = iota
	// ForkCopyCOW copies the PTEs, write-protecting both parent and
	// child (anonymous memory and other mappings that page faults
	// cannot reconstruct).
	ForkCopyCOW
)

// StockForkDecision returns the stock Linux policy for a region: copy the
// PTEs of anonymous memory (page faults cannot recreate their contents),
// skip the PTEs of file-based mappings (faults can refill them from the
// page cache).
func StockForkDecision(v *VMA) ForkCopyDecision {
	if v.Anonymous() {
		return ForkCopyCOW
	}
	// Private file-backed pages that were written have become anonymous
	// (dirty) copies; those individual PTEs are detected during the copy
	// walk via their dirty bit. The region-level decision is skip.
	return ForkSkip
}

// CopyMode selects which of a region's PTEs a fork-time copy takes.
type CopyMode uint8

const (
	// CopyStock copies only the PTEs that page faults cannot
	// reconstruct: anonymous memory and dirty (COW-broken) private
	// file-backed pages. Clean file-backed PTEs are skipped, to be
	// refilled by soft faults — the stock Linux fork policy.
	CopyStock CopyMode = iota
	// CopyAll copies every valid PTE, clean file-backed ones included.
	// This is the "Copied PTEs" comparison kernel of Table 4, which
	// copies the PTEs of the zygote-preloaded shared code at fork time.
	CopyAll
)

// CopyPTERange implements the fork-time PTE copy for the part of a region
// clipped to [lo, hi): each selected valid parent PTE is copied into the
// child, write-protecting writable entries on both sides (COW). It returns
// the number of PTEs copied. The child's covering leaf tables are
// allocated on demand.
func CopyPTERange(parent, child *MM, vma *VMA, lo, hi arch.VirtAddr, mode CopyMode, domain uint8) (int, error) {
	if lo < vma.Start {
		lo = vma.Start
	}
	if hi > vma.End {
		hi = vma.End
	}
	copied := 0
	for va := lo; va < hi; va += arch.PageSize {
		src := parent.PT.PTEAt(va)
		if src == nil || !src.Valid() {
			continue
		}
		reconstructible := src.Soft&arch.SoftFile != 0 && src.Soft&arch.SoftDirty == 0 && !vma.Anonymous()
		if mode == CopyStock && reconstructible {
			continue
		}
		if src.Writable() {
			// Write protection mutates the parent's table in place, so
			// take a privatized pointer: after a checkpoint fork the
			// parent's PTE array may still be shared with the image.
			src = parent.PT.PTEForWrite(va)
			src.Flags &^= arch.PTEWrite
			src.Soft |= arch.SoftCOW
		}
		if _, err := child.PT.EnsureLeafForVA(va, domain); err != nil {
			return copied, err
		}
		child.PT.Set(va, *src)
		copied++
	}
	return copied, nil
}

// Smaps describes one region in a /proc/pid/smaps-like dump, including
// how many of its pages are resident (have valid PTEs).
type Smaps struct {
	Start, End arch.VirtAddr
	Prot       Prot
	Name       string
	Category   Category
	Resident   int
}

// SmapsDump walks the region list and page table, mirroring the
// /proc/pid/smaps interface the paper's methodology reads.
func (mm *MM) SmapsDump() []Smaps {
	out := make([]Smaps, 0, len(mm.vmas))
	for _, v := range mm.vmas {
		s := Smaps{Start: v.Start, End: v.End, Prot: v.Prot, Name: v.Name, Category: v.Category}
		for va := v.Start; va < v.End; va += arch.PageSize {
			if p := mm.PT.PTEAt(va); p != nil && p.Valid() {
				s.Resident++
			}
		}
		out = append(out, s)
	}
	return out
}
