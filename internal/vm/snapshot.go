// Persistent-image support: serializable snapshots of files and address
// spaces (internal/imagestore). Restores mirror the checkpoint clones in
// clone.go — frozen page-cache arrays and PTE arrays alias the decoded
// buffer and are copied on first write — so a restored machine behaves
// exactly like the survivor of a CloneShared.

package vm

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

// VMASnapshot is the serializable form of one region; the backing file
// is named by its index in the machine-wide file list (-1 = anonymous),
// so two regions mapping one file keep sharing it after a round trip.
type VMASnapshot struct {
	Start, End arch.VirtAddr
	Prot       Prot
	Flags      VMAFlags
	File       int32
	FileOff    int
	Name       string
	Category   Category
}

// MMSnapshot is the serializable state of one address space. Leaf-table
// PTE contents live in the machine-wide table list, referenced by index
// from PT.
type MMSnapshot struct {
	ASID     arch.ASID
	Counters Counters
	VMAs     []VMASnapshot
	PT       pagetable.Snapshot
}

// SnapshotState flattens the address space. fileIndex and tableIndex
// resolve machine-wide identities, registering objects on first sight;
// the encoder passes one pair of closures for the whole machine.
func (mm *MM) SnapshotState(fileIndex func(*File) int32, tableIndex func(*pagetable.LeafTable) int32) MMSnapshot {
	s := MMSnapshot{
		ASID:     mm.ASID,
		Counters: mm.Counters,
		VMAs:     make([]VMASnapshot, len(mm.vmas)),
		PT:       mm.PT.SnapshotState(tableIndex),
	}
	for i, v := range mm.vmas {
		vs := VMASnapshot{
			Start: v.Start, End: v.End, Prot: v.Prot, Flags: v.Flags,
			File: -1, FileOff: v.FileOff, Name: v.Name, Category: v.Category,
		}
		if v.File != nil {
			vs.File = fileIndex(v.File)
		}
		s.VMAs[i] = vs
	}
	return s
}

// RestoreMM rebuilds an address space against the restored physical
// memory, page table and machine-wide file list.
func RestoreMM(phys *mem.PhysMem, pt *pagetable.PageTable, s MMSnapshot, files []*File) (*MM, error) {
	mm := &MM{
		PT:       pt,
		ASID:     s.ASID,
		Counters: s.Counters,
		phys:     phys,
		vmas:     make([]*VMA, len(s.VMAs)),
	}
	arr := make([]VMA, len(s.VMAs))
	for i, vs := range s.VMAs {
		arr[i] = VMA{
			Start: vs.Start, End: vs.End, Prot: vs.Prot, Flags: vs.Flags,
			FileOff: vs.FileOff, Name: vs.Name, Category: vs.Category,
		}
		if vs.File >= 0 {
			if int(vs.File) >= len(files) {
				return nil, fmt.Errorf("vm: region %q names file %d of %d", vs.Name, vs.File, len(files))
			}
			arr[i].File = files[vs.File]
		}
		mm.vmas[i] = &arr[i]
	}
	return mm, nil
}

// SnapshotPages returns the file's resident page cache as one sorted
// array — the frozen base merged with the private overlay. When the
// overlay is empty (always true for a checkpoint image, whose files were
// normalized by cloneShared at capture) the frozen array itself is
// returned; treat it as read-only.
func (f *File) SnapshotPages() []FilePage {
	if len(f.pages) == 0 {
		return f.frozen
	}
	merged := make([]FilePage, 0, len(f.frozen)+len(f.pages))
	a, b := f.frozen, f.pages
	for len(a) > 0 && len(b) > 0 {
		if a[0].Idx < b[0].Idx {
			merged = append(merged, a[0])
			a = a[1:]
		} else {
			merged = append(merged, b[0])
			b = b[1:]
		}
	}
	merged = append(merged, a...)
	merged = append(merged, b...)
	return merged
}

// RestoreFile rebuilds a file whose frozen page-cache base aliases
// pages without copying — safe over a memory-mapped image, because the
// frozen layer is immutable: reads bypass it into the overlay only via
// insertRun, and a checkpoint clone shares it as-is.
func RestoreFile(phys *mem.PhysMem, name string, size int, pages []FilePage) *File {
	if pages == nil {
		pages = []FilePage{}
	}
	return &File{Name: name, Size: size, phys: phys, frozen: pages}
}
