// Checkpoint-fork support: structure-sharing clones of address spaces.
//
// A checkpoint fork duplicates a whole machine (internal/checkpoint); the
// vm layer contributes clones of files and address spaces that share the
// bulky state — page-cache contents and PTE arrays — with the image and
// copy it only when written. CloneCtx carries the identity maps that keep
// the sharing graph intact: two VMAs mapping one File must map one cloned
// File, and two address spaces sharing one PTP must share its clone.
package vm

import (
	"repro/internal/mem"
	"repro/internal/pagetable"
)

// CloneCtx is the shared state of one machine clone operation.
type CloneCtx struct {
	// Phys is the clone's physical memory (a Fork of the source's).
	Phys *mem.PhysMem
	// Tables identity-maps source leaf tables to their clones, preserving
	// simulated-kernel PTP sharing across the machine clone. Pass it to
	// PageTable.CloneShared for every address space in the machine.
	Tables map[*pagetable.LeafTable]*pagetable.LeafTable
	// Nodes batches the machine clone's LeafTable clone nodes; everything
	// it allocates belongs to the cloned machine.
	Nodes pagetable.CloneArena

	files map[*File]*File
}

// NewCloneCtx starts a machine clone targeting the given forked physical
// memory.
func NewCloneCtx(phys *mem.PhysMem) *CloneCtx {
	return &CloneCtx{
		Phys:   phys,
		Tables: make(map[*pagetable.LeafTable]*pagetable.LeafTable),
		files:  make(map[*File]*File),
	}
}

// File returns the clone of f within this machine clone, creating it on
// first request. Every caller holding the same source file receives the
// same clone, so page-cache sharing survives the fork. A nil file clones
// to nil (anonymous regions).
func (cc *CloneCtx) File(f *File) *File {
	if f == nil {
		return nil
	}
	if c, ok := cc.files[f]; ok {
		return c
	}
	c := f.cloneShared(cc.Phys)
	cc.files[f] = c
	return c
}

// cloneShared clones the file, sharing its resident page cache with the
// source: the source's private overlay is first merged into its frozen
// base (the base is immutable from then on, so sharing it is safe), and
// the clone starts with that base plus an empty overlay of its own.
// Both layers are sorted and disjoint, so the merge is a linear two-way
// merge into one fresh array, which source and clone then share.
func (f *File) cloneShared(phys *mem.PhysMem) *File {
	if len(f.pages) > 0 || f.frozen == nil {
		merged := make([]FilePage, 0, len(f.frozen)+len(f.pages))
		a, b := f.frozen, f.pages
		for len(a) > 0 && len(b) > 0 {
			if a[0].Idx < b[0].Idx {
				merged = append(merged, a[0])
				a = a[1:]
			} else {
				merged = append(merged, b[0])
				b = b[1:]
			}
		}
		merged = append(merged, a...)
		merged = append(merged, b...)
		f.frozen = merged
		f.pages = nil // reallocated lazily on the next write
	}
	return &File{
		Name:   f.Name,
		Size:   f.Size,
		phys:   phys,
		frozen: f.frozen,
	}
}

// CloneShared duplicates the address space for a checkpoint fork: the
// region list is copied with files remapped through cc, the page table is
// cloned with every PTE array shared copy-on-write, and the counters are
// carried over so the clone is indistinguishable from the source to the
// simulated kernel.
func (mm *MM) CloneShared(cc *CloneCtx) *MM {
	c := &MM{
		PT:       mm.PT.CloneShared(cc.Phys, cc.Tables, &cc.Nodes),
		ASID:     mm.ASID,
		Counters: mm.Counters,
		phys:     cc.Phys,
		vmas:     make([]*VMA, len(mm.vmas)),
	}
	// One backing array for all cloned regions: the fork cost stays a
	// handful of allocations, not one per VMA.
	arr := make([]VMA, len(mm.vmas))
	for i, v := range mm.vmas {
		arr[i] = *v
		arr[i].File = cc.File(v.File)
		c.vmas[i] = &arr[i]
	}
	return c
}
