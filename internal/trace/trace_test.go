package trace

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

func TestFaultTraceCollects(t *testing.T) {
	k, err := core.New(2048, core.WithConfig(core.Stock()))
	if err != nil {
		t.Fatal(err)
	}
	tr := &FaultTrace{}
	tr.Attach(k)
	p, err := k.NewProcess("p")
	if err != nil {
		t.Fatal(err)
	}
	f := vm.NewFile(k.Phys, "bin", 0x10000)
	if err := k.Mmap(p, &vm.VMA{Start: 0x10000, End: 0x20000,
		Prot: vm.ProtRead | vm.ProtExec, Flags: vm.VMAPrivate, File: f, Name: "bin"}); err != nil {
		t.Fatal(err)
	}
	if err := k.Mmap(p, &vm.VMA{Start: 0x30000, End: 0x40000,
		Prot: vm.ProtRead | vm.ProtWrite, Flags: vm.VMAPrivate, Name: "heap"}); err != nil {
		t.Fatal(err)
	}
	err = k.Run(p, func() error {
		if err := k.CPU.Fetch(0x10000); err != nil {
			return err
		}
		if err := k.CPU.Fetch(0x11000); err != nil {
			return err
		}
		if err := k.CPU.Fetch(0x11004); err != nil { // same page: no fault
			return err
		}
		return k.CPU.Write(0x30000)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 3 {
		t.Fatalf("recorded %d events, want 3", len(tr.Events))
	}
	pages := tr.ExecPages(p.PID)
	if len(pages) != 2 || pages[0] != 0x10000 || pages[1] != 0x11000 {
		t.Errorf("ExecPages = %v", pages)
	}
	tr.Detach(k)
	if err := k.Run(p, func() error { return k.CPU.Fetch(0x12000) }); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 3 {
		t.Error("detached trace must not record")
	}
}

func TestPCSampler(t *testing.T) {
	s := NewPCSampler()
	s.Sample(0x1004, false)
	s.Sample(0x1008, false)
	s.Sample(0x2000, false)
	s.Sample(0xC0000000, true)
	if s.UserSamples != 3 || s.KernelSamples != 1 {
		t.Errorf("samples = %d user, %d kernel", s.UserSamples, s.KernelSamples)
	}
	if got := s.UserPct(); got != 75 {
		t.Errorf("UserPct = %v, want 75", got)
	}
	if s.ByPage[0x1000] != 2 || s.ByPage[0x2000] != 1 {
		t.Errorf("ByPage = %v", s.ByPage)
	}
}

func TestUserPctEmpty(t *testing.T) {
	if NewPCSampler().UserPct() != 0 {
		t.Error("empty sampler UserPct should be 0")
	}
}

func testSmaps() []vm.Smaps {
	return []vm.Smaps{
		{Start: 0x10000, End: 0x20000, Category: vm.CatZygoteDynLib},
		{Start: 0x20000, End: 0x30000, Category: vm.CatZygoteJavaLib},
		{Start: 0x40000, End: 0x50000, Category: vm.CatOtherDynLib},
		{Start: 0x60000, End: 0x70000, Category: vm.CatPrivateCode},
	}
}

func TestFootprintBreakdown(t *testing.T) {
	pages := []arch.VirtAddr{0x10000, 0x11000, 0x20000, 0x40000, 0x60000, 0x90000}
	got := FootprintBreakdown(testSmaps(), pages)
	want := map[vm.Category]int{
		vm.CatZygoteDynLib:  2,
		vm.CatZygoteJavaLib: 1,
		vm.CatOtherDynLib:   1,
		vm.CatPrivateCode:   1,
		vm.CatOther:         1,
	}
	for c, n := range want {
		if got[c] != n {
			t.Errorf("category %v = %d, want %d", c, got[c], n)
		}
	}
}

func TestFetchBreakdown(t *testing.T) {
	s := NewPCSampler()
	s.Sample(0x10000, false)
	s.Sample(0x10004, false)
	s.Sample(0x40000, false)
	got := FetchBreakdown(testSmaps(), s)
	if got[vm.CatZygoteDynLib] != 2 || got[vm.CatOtherDynLib] != 1 {
		t.Errorf("FetchBreakdown = %v", got)
	}
}

func TestSharedCodePages(t *testing.T) {
	pages := []arch.VirtAddr{0x10000, 0x20000, 0x40000, 0x60000}
	all := SharedCodePages(testSmaps(), pages, false)
	if len(all) != 3 { // dynlib + javalib + other dynlib
		t.Errorf("all shared = %v", all)
	}
	zyg := SharedCodePages(testSmaps(), pages, true)
	if len(zyg) != 2 { // dynlib + javalib only
		t.Errorf("zygote shared = %v", zyg)
	}
}

func TestIntersectionPct(t *testing.T) {
	a := []uint64{1, 2, 3}
	b := []uint64{2, 3, 4}
	if got := IntersectionPct(a, b, 4); got != 50 {
		t.Errorf("IntersectionPct = %v, want 50 (2 of footprint 4)", got)
	}
	if got := IntersectionPct(a, nil, 4); got != 0 {
		t.Errorf("empty b = %v", got)
	}
	if got := IntersectionPct(a, b, 0); got != 0 {
		t.Errorf("zero footprint = %v", got)
	}
}

func TestSharedCodeKeysIgnoreVA(t *testing.T) {
	// The same library page mapped at different addresses in two
	// processes yields the same key; an unrelated file at the same
	// address yields a different one.
	smapsA := []vm.Smaps{{Start: 0x10000, End: 0x20000, Name: "libc.so code", Category: vm.CatZygoteDynLib}}
	smapsB := []vm.Smaps{{Start: 0x50000, End: 0x60000, Name: "libc.so code", Category: vm.CatZygoteDynLib}}
	smapsC := []vm.Smaps{{Start: 0x10000, End: 0x20000, Name: "otherapp/launch0", Category: vm.CatOtherDynLib}}
	ka := SharedCodeKeys(smapsA, []arch.VirtAddr{0x11000}, true)
	kb := SharedCodeKeys(smapsB, []arch.VirtAddr{0x51000}, true)
	kc := SharedCodeKeys(smapsC, []arch.VirtAddr{0x11000}, false)
	if len(ka) != 1 || len(kb) != 1 || len(kc) != 1 {
		t.Fatalf("key counts: %d %d %d", len(ka), len(kb), len(kc))
	}
	if ka[0] != kb[0] {
		t.Error("same file page at different VAs must produce the same key")
	}
	if ka[0] == kc[0] {
		t.Error("different files at the same VA must produce different keys")
	}
	// zygoteOnly filters out the non-preloaded region.
	if got := SharedCodeKeys(smapsC, []arch.VirtAddr{0x11000}, true); len(got) != 0 {
		t.Errorf("zygoteOnly should exclude other dynlibs, got %v", got)
	}
}

func TestSparsity(t *testing.T) {
	// Two chunks: one with 1 page touched (15 untouched), one with 16
	// pages touched (0 untouched).
	var pages []arch.VirtAddr
	pages = append(pages, 0x00000)
	for i := 0; i < 16; i++ {
		pages = append(pages, arch.VirtAddr(0x10000+i*arch.PageSize))
	}
	r := Sparsity(pages)
	if r.Pages4KB != 17 || r.Chunks64KB != 2 {
		t.Errorf("result = %+v", r)
	}
	if got := r.CDF.Tail(15); got != 0.5 {
		t.Errorf("P(untouched >= 15) = %v, want 0.5", got)
	}
	if r.Memory4KB() != 17*4096 {
		t.Errorf("Memory4KB = %d", r.Memory4KB())
	}
	if r.Memory64KB() != 2*65536 {
		t.Errorf("Memory64KB = %d", r.Memory64KB())
	}
	want := float64(2*65536) / float64(17*4096)
	if got := r.WasteFactor(); got != want {
		t.Errorf("WasteFactor = %v, want %v", got, want)
	}
}

func TestSparsityEmpty(t *testing.T) {
	r := Sparsity(nil)
	if r.WasteFactor() != 0 {
		t.Error("empty footprint waste factor should be 0")
	}
}

func TestUnionPages(t *testing.T) {
	u := UnionPages(
		[]arch.VirtAddr{0x1000, 0x2000},
		[]arch.VirtAddr{0x2000, 0x3000},
	)
	if len(u) != 3 || u[0] != 0x1000 || u[2] != 0x3000 {
		t.Errorf("UnionPages = %v", u)
	}
}
