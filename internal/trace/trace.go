// Package trace reproduces the measurement methodology of Section 4.1.1:
// page fault traces for the user address space interpreted with the
// mapping information from /proc/pid/smaps, and perf-style rate-based
// program-counter sampling. On top of the raw collectors it provides the
// analyses behind the motivation section — the instruction-footprint
// breakdown of Figure 2, the fetch breakdown of Figure 3, the user/kernel
// split of Table 1, the cross-application commonality of Table 2, and the
// 64KB-page sparsity study of Figure 4.
package trace

import (
	"hash/fnv"
	"sort"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/vm"
)

// FaultEvent is one recorded page fault.
type FaultEvent struct {
	// PID is the faulting process.
	PID int
	// VA is the faulting address.
	VA arch.VirtAddr
	// Kind is the access that faulted.
	Kind arch.AccessKind
}

// FaultTrace collects the kernel's page-fault stream. Attach subscribes
// it to the kernel's event bus; it keeps recording until detached.
type FaultTrace struct {
	Events []FaultEvent

	cancel func()
}

// Attach subscribes the trace to k's page-fault events. Other observers
// are unaffected; a second Attach (to the same or another kernel) first
// detaches.
func (t *FaultTrace) Attach(k *core.Kernel) {
	t.Detach(k)
	t.cancel = k.Subscribe(obs.ObserverFunc(func(ev obs.Event) {
		t.Events = append(t.Events, FaultEvent{
			PID:  ev.PID,
			VA:   arch.VirtAddr(ev.Addr),
			Kind: arch.AccessKind(ev.Access),
		})
	}), obs.EvPageFault)
}

// Detach stops recording. The kernel argument is kept for compatibility
// and may be nil; the subscription itself knows which bus it is on.
func (t *FaultTrace) Detach(*core.Kernel) {
	if t.cancel != nil {
		t.cancel()
		t.cancel = nil
	}
}

// ExecPages returns the distinct pages that took fetch faults in process
// pid, the raw material of the paper's instruction footprint analysis.
func (t *FaultTrace) ExecPages(pid int) []arch.VirtAddr {
	seen := make(map[arch.VirtAddr]bool)
	var out []arch.VirtAddr
	for _, e := range t.Events {
		if e.PID != pid || e.Kind != arch.AccessFetch {
			continue
		}
		pg := arch.PageBase(e.VA)
		if !seen[pg] {
			seen[pg] = true
			out = append(out, pg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PCSampler is the perf record stand-in: it buckets rate-based PC samples
// by user/kernel and by page.
type PCSampler struct {
	// UserSamples and KernelSamples count samples by space (Table 1).
	UserSamples   uint64
	KernelSamples uint64
	// ByPage counts user samples per page.
	ByPage map[arch.VirtAddr]uint64
}

// NewPCSampler creates an empty sampler.
func NewPCSampler() *PCSampler {
	return &PCSampler{ByPage: make(map[arch.VirtAddr]uint64)}
}

// Sample implements cpu.Sampler.
func (s *PCSampler) Sample(va arch.VirtAddr, kernel bool) {
	if kernel {
		s.KernelSamples++
		return
	}
	s.UserSamples++
	s.ByPage[arch.PageBase(va)]++
}

// UserPct returns the percentage of samples taken in user space.
func (s *PCSampler) UserPct() float64 {
	total := s.UserSamples + s.KernelSamples
	if total == 0 {
		return 0
	}
	return 100 * float64(s.UserSamples) / float64(total)
}

// FootprintBreakdown classifies a set of executed pages by region
// category using the process's smaps, exactly as Figure 2 is derived from
// page fault traces plus /proc/pid/smaps.
func FootprintBreakdown(smaps []vm.Smaps, pages []arch.VirtAddr) map[vm.Category]int {
	out := make(map[vm.Category]int)
	for _, pg := range pages {
		out[categoryOf(smaps, pg)]++
	}
	return out
}

// FetchBreakdown classifies dynamic fetch samples by category, weighted
// by sample count (Figure 3).
func FetchBreakdown(smaps []vm.Smaps, s *PCSampler) map[vm.Category]uint64 {
	out := make(map[vm.Category]uint64)
	for pg, n := range s.ByPage {
		out[categoryOf(smaps, pg)] += n
	}
	return out
}

func categoryOf(smaps []vm.Smaps, va arch.VirtAddr) vm.Category {
	i := sort.Search(len(smaps), func(i int) bool { return smaps[i].End > va })
	if i < len(smaps) && va >= smaps[i].Start {
		return smaps[i].Category
	}
	return vm.CatOther
}

// SharedCodePages filters an executed-page set down to shared code, with
// zygoteOnly selecting only zygote-preloaded shared code (the two
// variants reported in Table 2).
func SharedCodePages(smaps []vm.Smaps, pages []arch.VirtAddr, zygoteOnly bool) []arch.VirtAddr {
	var out []arch.VirtAddr
	for _, pg := range pages {
		c := categoryOf(smaps, pg)
		if zygoteOnly && c.IsZygotePreloaded() || !zygoteOnly && c.IsSharedCode() {
			out = append(out, pg)
		}
	}
	return out
}

// IntersectionPct computes one cell of Table 2: the share of app A's
// total instruction footprint covered by the intersection of A's and B's
// shared-code pages (identified by file-keyed page identities).
func IntersectionPct(aShared, bShared []uint64, aFootprint int) float64 {
	if aFootprint == 0 {
		return 0
	}
	bset := make(map[uint64]bool, len(bShared))
	for _, pg := range bShared {
		bset[pg] = true
	}
	n := 0
	for _, pg := range aShared {
		if bset[pg] {
			n++
		}
	}
	return 100 * float64(n) / float64(aFootprint)
}

// SharedCodeKeys is SharedCodePages with pages identified by their
// backing object and offset instead of their virtual address: two
// processes executing the same page of the same library produce the same
// key even if one of them mapped an unrelated file at the same address.
// This is the identity Table 2's cross-application intersections need.
func SharedCodeKeys(smaps []vm.Smaps, pages []arch.VirtAddr, zygoteOnly bool) []uint64 {
	var out []uint64
	for _, pg := range pages {
		i := sort.Search(len(smaps), func(i int) bool { return smaps[i].End > pg })
		if i >= len(smaps) || pg < smaps[i].Start {
			continue
		}
		c := smaps[i].Category
		if zygoteOnly && !c.IsZygotePreloaded() || !zygoteOnly && !c.IsSharedCode() {
			continue
		}
		h := fnv.New64a()
		h.Write([]byte(smaps[i].Name))
		key := h.Sum64() ^ uint64((pg-smaps[i].Start)>>arch.PageShift)
		out = append(out, key)
	}
	return out
}

// SparsityResult is the Figure 4 analysis of one accessed-page set.
type SparsityResult struct {
	// CDF is the distribution of untouched 4KB pages within each
	// touched 64KB chunk (0..15).
	CDF *stats.CDF
	// Pages4KB is the footprint in 4KB pages (what 4KB mappings cost).
	Pages4KB int
	// Chunks64KB is the number of 64KB chunks touched (what 64KB
	// mappings would cost, in 16-page units).
	Chunks64KB int
}

// The sparsity study measures in 64KB chunks — the ARMv7 large-page
// size the paper's Figure 4 uses. This is a property of the measurement,
// not of the simulated MMU, so it stays fixed regardless of architecture.
const (
	chunkShift = 16
	chunkSize  = 1 << chunkShift
)

// Sparsity maps each accessed page to its 64KB-aligned chunk and counts
// the untouched 4KB pages within each touched chunk.
func Sparsity(pages []arch.VirtAddr) SparsityResult {
	touched := make(map[arch.VirtAddr]int)
	for _, pg := range pages {
		touched[pg>>chunkShift]++
	}
	cdf := stats.NewCDF()
	for _, n := range touched {
		cdf.Add(16 - n)
	}
	return SparsityResult{CDF: cdf, Pages4KB: len(pages), Chunks64KB: len(touched)}
}

// Memory4KB returns the physical memory in bytes consumed by mapping the
// footprint with 4KB pages.
func (r SparsityResult) Memory4KB() int { return r.Pages4KB * arch.PageSize }

// Memory64KB returns the physical memory consumed with 64KB pages.
func (r SparsityResult) Memory64KB() int { return r.Chunks64KB * chunkSize }

// WasteFactor returns how much more physical memory 64KB pages consume
// than 4KB pages for this footprint (the paper reports 2.6x on average).
func (r SparsityResult) WasteFactor() float64 {
	if r.Pages4KB == 0 {
		return 0
	}
	return float64(r.Memory64KB()) / float64(r.Memory4KB())
}

// UnionPages merges several accessed-page sets (the "Union" series of
// Figure 4).
func UnionPages(sets ...[]arch.VirtAddr) []arch.VirtAddr {
	seen := make(map[arch.VirtAddr]bool)
	var out []arch.VirtAddr
	for _, set := range sets {
		for _, pg := range set {
			if !seen[pg] {
				seen[pg] = true
				out = append(out, pg)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
