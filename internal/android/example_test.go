package android_test

import (
	"fmt"
	"log"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/workload"
)

// Example boots an Android system under the Shared PTP & TLB kernel,
// launches an application twice, and shows the warm-start effect: the
// second instance inherits the PTEs the first one populated in the
// zygote's shared page-table pages.
func Example() {
	universe := workload.DefaultUniverse()
	sys, err := android.Boot(core.SharedPTPTLB(), android.LayoutOriginal, universe)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := workload.SpecByName("Email")
	if err != nil {
		log.Fatal(err)
	}
	prof := workload.BuildProfile(universe, spec)

	var faults [2]uint64
	for run := 0; run < 2; run++ {
		app, _, err := sys.LaunchApp(prof, int64(run))
		if err != nil {
			log.Fatal(err)
		}
		rs, err := app.Run()
		if err != nil {
			log.Fatal(err)
		}
		faults[run] = rs.FileFaults
		sys.Kernel.Exit(app.Proc)
	}
	fmt.Printf("warm start eliminates faults: %v\n", faults[1] < faults[0])
	// Output:
	// warm start eliminates faults: true
}

// ExampleSystem_RunBinder runs the Figure 13 microbenchmark briefly and
// shows that TLB-entry sharing reduces the client's instruction main-TLB
// stalls versus the stock kernel.
func ExampleSystem_RunBinder() {
	universe := workload.DefaultUniverse()
	stalls := map[string]uint64{}
	for _, cfg := range []core.Config{core.Stock(), core.SharedPTPTLB()} {
		sys, err := android.Boot(cfg, android.LayoutOriginal, universe)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.RunBinder(2000, true)
		if err != nil {
			log.Fatal(err)
		}
		stalls[cfg.Name()] = res.Client.ITLBStalls
	}
	fmt.Printf("TLB sharing reduces client stalls: %v\n",
		stalls["Shared PTP & TLB"] < stalls["Stock Android"])
	// Output:
	// TLB sharing reduces client stalls: true
}
