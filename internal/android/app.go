// Application launch and steady-state execution.

package android

import (
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Launch-window parameters, calibrated against Section 4.2.2: the window
// begins when the zygote-child first starts executing and ends right
// before it loads its application-specific Java classes; the procedure is
// identical across applications (the HelloWorld benchmark).
const (
	// launchCommonPages is the preloaded-code footprint of the common
	// launch path, drawn from the hottest zygote-populated pages; with
	// the stock kernel each of these costs a soft fault (~1,900 file
	// faults), with shared PTPs almost none do (~110).
	launchCommonPages = 1790
	// launchMapVMAs and launchMapPages describe the app-specific files
	// mapped during launch (dex, oat, resources).
	launchMapVMAs  = 18
	launchMapPages = 16
	// launchPrivateTouches is how many pages of those new mappings the
	// launch touches; these fault under every kernel.
	launchPrivateTouches = 108
	// Launch writes: framework initialization dirties part of the heap,
	// a few library data segments, boot-image data, and the stack.
	launchHeapWrites    = 40
	launchDataWriteLibs = 6
	launchDataWritePgs  = 2
	launchJavaDataPgs   = 10
	launchStackWrites   = 4
	// The compute portion: a hot loop over the most frequently executed
	// pages, with the demand faults of the common launch path
	// interleaved between iterations, as they are in a real launch. The
	// hot set fits the 32KB L1 I-cache, so the kernel fault path's
	// instruction footprint measurably evicts it under the stock
	// kernel; launchBulk abstract compute cycles per visit size the
	// launch so that fault handling is roughly a tenth of stock
	// execution time, as in Figure 7.
	launchHotPages  = 160
	launchHotIters  = 60
	launchVisitLen  = 64
	launchBulkInstr = 6400
)

// App is one launched application instance.
type App struct {
	// Sys is the hosting system.
	Sys *System
	// Proc is the application process.
	Proc *core.Process
	// Profile is the application's access pattern.
	Profile *workload.Profile

	rng       *rand.Rand
	mapCursor arch.VirtAddr

	otherLibPages []arch.VirtAddr
	privatePages  []arch.VirtAddr
	appFilePages  []arch.VirtAddr
	launchPages   []arch.VirtAddr
}

// LaunchStats are the launch-window measurements of Figures 7-9.
type LaunchStats struct {
	// Cycles is the execution time of the launch window.
	Cycles uint64
	// ICacheStalls is the L1 instruction cache stall cycles (Figure 8).
	ICacheStalls uint64
	// ITLBStalls is the instruction main-TLB stall cycles.
	ITLBStalls uint64
	// Instructions and KernelInstructions split the executed
	// instructions between user and kernel space.
	Instructions       uint64
	KernelInstructions uint64
	// FileFaults is the page faults for file-based mappings (Figure 9).
	FileFaults uint64
	// PageFaults is all soft page faults.
	PageFaults uint64
	// PTPsAllocated is the PTPs allocated during the window (Figure 9).
	PTPsAllocated uint64
}

// LaunchApp forks an application from the zygote and executes the common
// launch procedure, measuring the launch window. runSeed perturbs the
// run-to-run variation (the box-plot spread of Figures 7 and 8).
func (sys *System) LaunchApp(profile *workload.Profile, runSeed int64) (*App, LaunchStats, error) {
	proc, err := sys.ZygoteFork(profile.Spec.Name)
	if err != nil {
		return nil, LaunchStats{}, err
	}
	app := &App{
		Sys:       sys,
		Proc:      proc,
		Profile:   profile,
		rng:       rand.New(rand.NewSource(profile.Spec.Seed*1000 + runSeed)),
		mapCursor: appMapBase,
	}

	// Window start: snapshot the child's counters.
	k := sys.Kernel
	c0 := proc.Ctx.Stats
	m0 := proc.MM.Counters
	pt0 := proc.MM.PT.Stats().PTPsAllocated

	err = k.Run(proc, func() error {
		u := sys.Universe
		hot := u.ZygoteSet() // hotness-ordered

		// The common launch path: app_process plus the hottest preloaded
		// code. A small jitter in coverage produces run-to-run variation.
		n := launchCommonPages + app.rng.Intn(41) - 20
		if n > len(hot) {
			n = len(hot)
		}
		app.launchPages = app.launchPages[:0]
		for _, pg := range hot[:n] {
			app.launchPages = append(app.launchPages, sys.CodePageVA(pg))
		}

		// Map and touch the application-specific launch files. Each
		// mapping's touches are one strided fetch run, issued before the
		// next file is mapped, exactly as the per-reference loop did.
		pageStride := arch.VirtAddr(arch.PageSize)
		touched := 0
		for i := 0; i < launchMapVMAs; i++ {
			vma, err := app.mapFile(fmt.Sprintf("%s/launch%d", profile.Spec.Name, i),
				launchMapPages, vm.ProtRead|vm.ProtExec, vm.CatOtherDynLib)
			if err != nil {
				return err
			}
			cnt := (launchMapPages + 2) / 3
			if rest := launchPrivateTouches - touched; cnt > rest {
				cnt = rest
			}
			touch := [1]arch.RefRun{{VA: vma.Start, Stride: 3 * pageStride, Count: cnt, Kind: arch.AccessFetch, Block: 16}}
			if err := k.CPU.AccessBatch(touch[:]); err != nil {
				return err
			}
			touched += cnt
		}

		// Framework initialization writes: heap, library data segments,
		// boot-image data, and the stack (top-down), as one stream.
		var rs arch.RefStream
		rs.AddRun(arch.RefRun{VA: heapBase, Stride: pageStride, Count: launchHeapWrites, Kind: arch.AccessWrite})
		libs := profile.UsedLibs
		for i := 0; i < launchDataWriteLibs && i < len(libs); i++ {
			n := launchDataWritePgs
			if d := sys.Universe.Libs[libs[i]].DataPages; n > d {
				n = d
			}
			rs.AddRun(arch.RefRun{VA: sys.LibDataVA(libs[i], 0), Stride: pageStride, Count: n, Kind: arch.AccessWrite})
		}
		rs.AddRun(arch.RefRun{VA: sys.javaData, Stride: pageStride, Count: launchJavaDataPgs, Kind: arch.AccessWrite})
		rs.AddRun(arch.RefRun{VA: sys.StackTouchVA(0), Stride: -pageStride, Count: launchStackWrites, Kind: arch.AccessWrite})
		if err := k.CPU.AccessBatch(rs.Runs()); err != nil {
			return err
		}

		// The compute-dominated remainder of the launch: a hot loop over
		// the most executed pages, interleaved with first-touch coverage
		// of the rest of the common launch path (whose soft faults, under
		// the stock kernel, run the kernel fault path and evict hot lines
		// from the L1 I-cache between iterations).
		iters := launchHotIters + app.rng.Intn(7) - 3
		hotN := launchHotPages
		if hotN > len(app.launchPages) {
			hotN = len(app.launchPages)
		}
		cover := app.launchPages[hotN:]
		covered := 0
		totalVisits := iters * hotN
		for it := 0; it < iters; it++ {
			for v, va := range app.launchPages[:hotN] {
				if err := k.CPU.FetchBlock(va, launchVisitLen); err != nil {
					return err
				}
				k.CPU.ChargeUser(launchBulkInstr)
				// First-touch the next slice of the launch path, spread
				// evenly through the loop so each stock-kernel fault's
				// kernel-text execution competes with the hot code for
				// the L1 I-cache.
				want := len(cover) * (it*hotN + v + 1) / totalVisits
				for covered < want {
					if err := k.CPU.FetchBlock(cover[covered], 16); err != nil {
						return err
					}
					covered++
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, LaunchStats{}, fmt.Errorf("android: launching %s: %w", profile.Spec.Name, err)
	}

	c1 := proc.Ctx.Stats
	m1 := proc.MM.Counters
	ls := LaunchStats{
		Cycles:             c1.Cycles - c0.Cycles,
		ICacheStalls:       c1.ICacheStallCycles - c0.ICacheStallCycles,
		ITLBStalls:         c1.ITLBStallCycles - c0.ITLBStallCycles,
		Instructions:       c1.Instructions - c0.Instructions,
		KernelInstructions: c1.KernelInstructions - c0.KernelInstructions,
		FileFaults:         m1.FileFaults - m0.FileFaults,
		PageFaults:         m1.PageFaults - m0.PageFaults,
		PTPsAllocated:      proc.MM.PT.Stats().PTPsAllocated - pt0,
	}
	return app, ls, nil
}

// OtherLibPages returns the virtual addresses of the app-specific
// dynamic-library pages the run mapped, page by page. A process forked
// from this application (as Chrome forks its sandbox) inherits these
// mappings and, under shared PTPs, their populated translations.
func (a *App) OtherLibPages() []arch.VirtAddr {
	return append([]arch.VirtAddr(nil), a.otherLibPages...)
}

// mapFile creates an app-specific file-backed region in the process's
// private mapping area. As with the real mmap area, consecutive mappings
// land scattered rather than densely packed: each region starts on a
// fresh PTP-span boundary (1MB on ARMv7, 2MB on Sv39 — a fresh PTP),
// which is what makes application-specific mappings contribute their
// own PTPs during launch (Figure 9).
func (a *App) mapFile(name string, pages int, prot vm.Prot, cat vm.Category) (*vm.VMA, error) {
	f := vm.NewFile(a.Sys.Kernel.Phys, name, pages*arch.PageSize)
	span := a.Sys.Kernel.Geometry().SlotSpan()
	start := (a.mapCursor + span - 1) &^ (span - 1)
	v := &vm.VMA{
		Start: start, End: start + arch.VirtAddr(pages*arch.PageSize),
		Prot: prot, Flags: vm.VMAPrivate, File: f, Name: name, Category: cat,
	}
	a.mapCursor = v.End
	if err := a.Sys.Kernel.Mmap(a.Proc, v); err != nil {
		return nil, err
	}
	return v, nil
}

// RunStats are the steady-state measurements of one full application
// execution (Figures 10-12, Tables 1-2, Figures 2-3).
type RunStats struct {
	// Cycles is the total execution time including launch.
	Cycles uint64
	// FileFaults / PageFaults / COWBreaks are the process's fault
	// counters over its whole life.
	FileFaults uint64
	PageFaults uint64
	COWBreaks  uint64
	// PTPsAllocated is every PTP allocated on behalf of the process,
	// including its fork-time copies and unshare copies.
	PTPsAllocated uint64
	// PTPsShared is the number of level-1 slots still attached to
	// shared PTPs at the end of the run.
	PTPsShared int
	// PTPsLive is the number of live level-1 slots at the end.
	PTPsLive int
	// PTEsCopied counts fork-time plus unshare PTE copies.
	PTEsCopied uint64
	// UserInstructions and KernelInstructions split Table 1's ratio.
	UserInstructions   uint64
	KernelInstructions uint64
	// ITLBStalls / ICacheStalls for completeness.
	ITLBStalls   uint64
	ICacheStalls uint64
	// PagesByCategory is the distinct instruction pages executed per
	// region category (Figure 2).
	PagesByCategory map[vm.Category]int
	// FetchesByCategory is the dynamic fetch distribution (Figure 3).
	FetchesByCategory map[vm.Category]uint64
}

// Steady-state execution parameters.
const (
	runVisitLen   = 48
	runBulkInstr  = 900
	runSteadyIter = 30000
)

// Run executes the application's steady state: it maps the app-specific
// libraries and files, covers the profile's entire footprint, performs the
// data writes, then runs a fetch loop distributed per the profile's
// category shares, and finally balances kernel time to the Table 1 ratio.
func (a *App) Run() (RunStats, error) {
	sys, k, p := a.Sys, a.Sys.Kernel, a.Profile
	if err := a.setupAppMappings(); err != nil {
		return RunStats{}, err
	}

	pages := map[vm.Category]int{}
	fetches := map[vm.Category]uint64{}

	preloaded := make([]arch.VirtAddr, 0, len(p.ZygotePreloaded))
	preloadedCat := make([]vm.Category, 0, len(p.ZygotePreloaded))
	var dynPages, javaPages, binPages []arch.VirtAddr
	for _, pg := range p.ZygotePreloaded {
		va := sys.CodePageVA(pg)
		preloaded = append(preloaded, va)
		switch sys.Universe.PageSegment(pg).Kind {
		case "app_process":
			preloadedCat = append(preloadedCat, vm.CatZygoteBinary)
			binPages = append(binPages, va)
		case "dynlib":
			preloadedCat = append(preloadedCat, vm.CatZygoteDynLib)
			dynPages = append(dynPages, va)
		default:
			preloadedCat = append(preloadedCat, vm.CatZygoteJavaLib)
			javaPages = append(javaPages, va)
		}
	}

	err := k.Run(a.Proc, func() error {
		// Coverage pass: execute every instruction page of the footprint.
		// The page visits are one reference stream — the library and
		// private-code regions coalesce into long page-stride runs — and
		// the per-category bookkeeping, which touches no simulated state,
		// follows it.
		var rs arch.RefStream
		for _, va := range preloaded {
			rs.Add(va, arch.AccessFetch, runVisitLen)
		}
		for _, va := range a.otherLibPages {
			rs.Add(va, arch.AccessFetch, runVisitLen)
		}
		for _, va := range a.privatePages {
			rs.Add(va, arch.AccessFetch, runVisitLen)
		}
		if err := k.CPU.AccessBatch(rs.Runs()); err != nil {
			return err
		}
		for _, cat := range preloadedCat {
			pages[cat]++
			fetches[cat]++
		}
		pages[vm.CatOtherDynLib] += len(a.otherLibPages)
		fetches[vm.CatOtherDynLib] += uint64(len(a.otherLibPages))
		pages[vm.CatPrivateCode] += len(a.privatePages)
		fetches[vm.CatPrivateCode] += uint64(len(a.privatePages))
		// Data working set: app files read, anon memory written (heap
		// sweeps that wrap the 16MB region), library globals updated.
		rs.Reset()
		pageStride := arch.VirtAddr(arch.PageSize)
		for _, va := range a.appFilePages {
			rs.Add(va, arch.AccessRead, 0)
		}
		for anon := a.Profile.Spec.AnonPages; anon > 0; {
			cnt := anon
			if cnt > heapPages {
				cnt = heapPages
			}
			rs.AddRun(arch.RefRun{VA: heapBase, Stride: pageStride, Count: cnt, Kind: arch.AccessWrite})
			anon -= cnt
		}
		for _, li := range p.DataWriteLibs {
			n := sys.Universe.Libs[li].DataPages
			if n > 3 {
				n = 3
			}
			rs.AddRun(arch.RefRun{VA: sys.LibDataVA(li, 0), Stride: pageStride, Count: n, Kind: arch.AccessWrite})
		}
		if err := k.CPU.AccessBatch(rs.Runs()); err != nil {
			return err
		}

		// Steady-state fetch loop: pick the category per Figure 3's
		// shares, then a hot-biased page within the category.
		shares := p.Spec.FetchShares
		hotPick := func(pages []arch.VirtAddr) arch.VirtAddr {
			i := int(float64(len(pages)) * a.rng.Float64() * a.rng.Float64())
			return pages[i]
		}
		pick := func() (arch.VirtAddr, vm.Category) {
			r := a.rng.Float64()
			switch {
			case r < shares[workload.FetchPrivate] && len(a.privatePages) > 0:
				return a.privatePages[a.rng.Intn(len(a.privatePages))], vm.CatPrivateCode
			case r < shares[workload.FetchPrivate]+shares[workload.FetchOtherDyn] && len(a.otherLibPages) > 0:
				return a.otherLibPages[a.rng.Intn(len(a.otherLibPages))], vm.CatOtherDynLib
			case r < shares[workload.FetchPrivate]+shares[workload.FetchOtherDyn]+shares[workload.FetchAppProcess] && len(binPages) > 0:
				return binPages[a.rng.Intn(len(binPages))], vm.CatZygoteBinary
			case r < shares[workload.FetchPrivate]+shares[workload.FetchOtherDyn]+shares[workload.FetchAppProcess]+shares[workload.FetchZygoteJava] && len(javaPages) > 0:
				return hotPick(javaPages), vm.CatZygoteJavaLib
			default:
				return hotPick(dynPages), vm.CatZygoteDynLib
			}
		}
		for it := 0; it < runSteadyIter; it++ {
			va, cat := pick()
			if err := k.CPU.FetchBlock(va, runVisitLen); err != nil {
				return err
			}
			k.CPU.ChargeUser(runBulkInstr)
			fetches[cat]++
		}

		// Kernel time: I/O-heavy applications spend most instructions in
		// the kernel (Table 1); balance the ratio with kernel execution.
		st := a.Proc.Ctx.Stats
		wantKernel := uint64(float64(st.Instructions) * (100 - p.Spec.UserPct) / p.Spec.UserPct)
		switch {
		case st.KernelInstructions < wantKernel:
			missing := wantKernel - st.KernelInstructions
			// Model the cache footprint of a slice of the kernel work,
			// then account the bulk without per-line simulation.
			polluted := uint64(64 * 1024 / 4)
			if polluted > missing {
				polluted = missing
			}
			k.CPU.KernelExec(int(polluted) * 4)
			if rest := missing - polluted; rest > 0 {
				k.CPU.ChargeKernel(int(rest))
			}
		default:
			// Fault-heavy runs have already overshot the kernel share:
			// the remaining user compute brings the split back to the
			// application's profile. It is spread over the app's fetch
			// distribution so PC samples attribute it faithfully.
			wantUser := uint64(float64(st.KernelInstructions) * p.Spec.UserPct / (100 - p.Spec.UserPct))
			for st.Instructions < wantUser {
				missing := wantUser - a.Proc.Ctx.Stats.Instructions
				chunk := runBulkInstr * 16
				if uint64(chunk) > missing {
					chunk = int(missing)
				}
				va, cat := pick()
				if err := k.CPU.FetchBlock(va, 16); err != nil {
					return err
				}
				k.CPU.ChargeUser(chunk)
				fetches[cat]++
				st = a.Proc.Ctx.Stats
			}
		}
		return nil
	})
	if err != nil {
		return RunStats{}, fmt.Errorf("android: running %s: %w", p.Spec.Name, err)
	}

	st := a.Proc.Ctx.Stats
	mc := a.Proc.MM.Counters
	return RunStats{
		Cycles:             st.Cycles,
		FileFaults:         mc.FileFaults,
		PageFaults:         mc.PageFaults,
		COWBreaks:          mc.COWBreaks,
		PTPsAllocated:      a.Proc.MM.PT.Stats().PTPsAllocated,
		PTPsShared:         a.Proc.MM.PT.SharedPTPs(),
		PTPsLive:           a.Proc.MM.PT.LivePTPs(),
		PTEsCopied:         a.Proc.PTEsCopied,
		UserInstructions:   st.Instructions,
		KernelInstructions: st.KernelInstructions,
		ITLBStalls:         st.ITLBStallCycles,
		ICacheStalls:       st.ICacheStallCycles,
		PagesByCategory:    pages,
		FetchesByCategory:  fetches,
	}, nil
}

// setupAppMappings maps the application-specific dynamic libraries,
// private code and data files described by the profile.
func (a *App) setupAppMappings() error {
	spec := a.Profile.Spec
	// Non-preloaded dynamic libraries, ~64 pages each. Roughly a third
	// are platform-specific libraries (graphics drivers and the like)
	// whose files are common across applications — the part of "all
	// shared code" that lifts Table 2's intersections above the
	// zygote-preloaded ones — and the rest are application-private.
	remaining := spec.OtherLibPages
	platform := remaining / 3
	li := 0
	for remaining > 0 {
		n := 64
		if n > remaining {
			n = remaining
		}
		name := fmt.Sprintf("%s/lib-other%d.so", spec.Name, li)
		if platform > 0 {
			name = fmt.Sprintf("platform/libplat%02d.so", li)
			platform -= n
		}
		vma, err := a.mapFile(name, n, vm.ProtRead|vm.ProtExec, vm.CatOtherDynLib)
		if err != nil {
			return err
		}
		for pg := 0; pg < n; pg++ {
			a.otherLibPages = append(a.otherLibPages, vma.Start+arch.VirtAddr(pg*arch.PageSize))
		}
		remaining -= n
		li++
	}
	// Private code.
	if spec.PrivateCodePages > 0 {
		vma, err := a.mapFile(spec.Name+"/private-code", spec.PrivateCodePages,
			vm.ProtRead|vm.ProtExec, vm.CatPrivateCode)
		if err != nil {
			return err
		}
		for pg := 0; pg < spec.PrivateCodePages; pg++ {
			a.privatePages = append(a.privatePages, vma.Start+arch.VirtAddr(pg*arch.PageSize))
		}
	}
	// App data files (assets, media, databases).
	remaining = spec.AppFilePages
	fi := 0
	for remaining > 0 {
		n := 1024
		if n > remaining {
			n = remaining
		}
		vma, err := a.mapFile(fmt.Sprintf("%s/data%d", spec.Name, fi), n,
			vm.ProtRead, vm.CatOther)
		if err != nil {
			return err
		}
		for pg := 0; pg < n; pg++ {
			a.appFilePages = append(a.appFilePages, vma.Start+arch.VirtAddr(pg*arch.PageSize))
		}
		remaining -= n
		fi++
	}
	return nil
}
