package android

import (
	"testing"

	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/workload"
)

// One shared universe for the whole test file; building it is cheap but
// not free.
var testUniverse = workload.DefaultUniverse()

func bootSys(t *testing.T, cfg core.Config, layout Layout) *System {
	t.Helper()
	sys, err := Boot(cfg, layout, testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBootPopulatesZygote(t *testing.T) {
	sys := bootSys(t, core.Stock(), LayoutOriginal)
	z := sys.Zygote
	if !z.IsZygote {
		t.Fatal("zygote flag not set")
	}
	// The zygote populated its boot-time footprint: the instruction PTEs
	// of the preload set plus its dirtied data.
	populated := z.MM.PT.PopulatedPTEs()
	if populated < workload.ZygoteTouchedPTEs {
		t.Errorf("zygote populated %d PTEs, want >= %d", populated, workload.ZygoteTouchedPTEs)
	}
	// The dirty (fork-copied) portion should be near the paper's 3,900.
	dirty := 0
	for _, s := range z.MM.SmapsDump() {
		_ = s
	}
	k := bootStockForkPTEs(t, sys)
	if k < 3000 || k > 5000 {
		t.Errorf("stock fork would copy %d PTEs, want ~3,900 (Table 4)", k)
	}
	dirtyCheck := k
	_ = dirty
	t.Logf("zygote: %d populated PTEs, %d fork-copied (paper: 9,800 total incl. code / 3,900 copied)", populated, dirtyCheck)
}

// bootStockForkPTEs forks under the current kernel and reports the copies.
func bootStockForkPTEs(t *testing.T, sys *System) int {
	t.Helper()
	child, err := sys.ZygoteFork("probe")
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Kernel.Exit(child)
	return child.ForkStats.PTEsCopied
}

func TestZygoteForkTable4Shape(t *testing.T) {
	// Table 4: shared PTPs fork is >= 1.8x faster than stock, and copied
	// PTEs is ~1.5-1.7x slower than stock; PTP counts follow suit.
	type result struct {
		cycles             uint64
		ptps, shared, ptes int
	}
	results := map[string]result{}
	for _, cfg := range []core.Config{core.Stock(), core.CopiedPTEs(), core.SharedPTP()} {
		sys := bootSys(t, cfg, LayoutOriginal)
		child, err := sys.ZygoteFork("app")
		if err != nil {
			t.Fatal(err)
		}
		fs := child.ForkStats
		results[cfg.Name()] = result{fs.Cycles, fs.PTPsAllocated, fs.PTPsShared, fs.PTEsCopied}
	}
	st, cp, sh := results["Stock Android"], results["Copied PTEs"], results["Shared PTP"]
	t.Logf("stock:  %.2fM cycles, %d PTPs, %d PTEs copied", float64(st.cycles)/1e6, st.ptps, st.ptes)
	t.Logf("copied: %.2fM cycles, %d PTPs, %d PTEs copied", float64(cp.cycles)/1e6, cp.ptps, cp.ptes)
	t.Logf("shared: %.2fM cycles, %d PTPs, %d shared, %d PTEs copied", float64(sh.cycles)/1e6, sh.ptps, sh.shared, sh.ptes)

	if float64(st.cycles)/float64(sh.cycles) < 1.7 {
		t.Errorf("shared fork speedup = %.2fx, want ~2.1x (Table 4)", float64(st.cycles)/float64(sh.cycles))
	}
	if float64(cp.cycles)/float64(st.cycles) < 1.3 {
		t.Errorf("copied PTEs slowdown = %.2fx, want ~1.59x", float64(cp.cycles)/float64(st.cycles))
	}
	if sh.ptps != 1 {
		t.Errorf("shared fork allocated %d PTPs, want 1 (the stack)", sh.ptps)
	}
	if sh.shared < 60 {
		t.Errorf("shared fork shared %d PTPs, want ~81", sh.shared)
	}
	if cp.ptes <= st.ptes {
		t.Error("copied PTEs must copy more than stock")
	}
	if sh.ptes >= 20 {
		t.Errorf("shared fork copied %d PTEs, want only the stack's handful", sh.ptes)
	}
}

func TestLaunchFaultElimination(t *testing.T) {
	// Figure 9's launch metrics: shared PTPs eliminate ~94% of the
	// file-backed-mapping faults and most PTP allocations.
	prof := workload.BuildProfile(testUniverse, mustSpec(t, "Email"))

	stock := bootSys(t, core.Stock(), LayoutOriginal)
	_, lsStock, err := stock.LaunchApp(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharedSys := bootSys(t, core.SharedPTPTLB(), LayoutOriginal)
	_, lsShared, err := sharedSys.LaunchApp(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stock:  %d file faults, %d PTPs, %.1fM cycles, %.2fM icache stalls",
		lsStock.FileFaults, lsStock.PTPsAllocated, float64(lsStock.Cycles)/1e6, float64(lsStock.ICacheStalls)/1e6)
	t.Logf("shared: %d file faults, %d PTPs, %.1fM cycles, %.2fM icache stalls",
		lsShared.FileFaults, lsShared.PTPsAllocated, float64(lsShared.Cycles)/1e6, float64(lsShared.ICacheStalls)/1e6)

	if lsStock.FileFaults < 1500 || lsStock.FileFaults > 2400 {
		t.Errorf("stock launch file faults = %d, want ~1,900", lsStock.FileFaults)
	}
	if lsShared.FileFaults > lsStock.FileFaults/5 {
		t.Errorf("shared launch file faults = %d, want ~94%% below stock's %d",
			lsShared.FileFaults, lsStock.FileFaults)
	}
	if lsShared.PTPsAllocated >= lsStock.PTPsAllocated {
		t.Error("shared launch must allocate fewer PTPs")
	}
	if lsShared.Cycles >= lsStock.Cycles {
		t.Error("shared launch must be faster")
	}
	if lsShared.ICacheStalls >= lsStock.ICacheStalls {
		t.Error("shared launch must stall the I-cache less (fewer kernel fault paths)")
	}
}

func mustSpec(t *testing.T, name string) workload.AppSpec {
	t.Helper()
	s, err := workload.SpecByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFullRunProducesFootprint(t *testing.T) {
	sys := bootSys(t, core.SharedPTP(), LayoutOriginal)
	prof := workload.BuildProfile(testUniverse, mustSpec(t, "Email"))
	app, _, err := sys.LaunchApp(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Footprint categories match the profile.
	preloadedPages := rs.PagesByCategory[vm.CatZygoteDynLib] +
		rs.PagesByCategory[vm.CatZygoteJavaLib] + rs.PagesByCategory[vm.CatZygoteBinary]
	if preloadedPages != prof.Spec.WarmPTEs {
		t.Errorf("preloaded pages executed = %d, want %d", preloadedPages, prof.Spec.WarmPTEs)
	}
	if rs.PagesByCategory[vm.CatOtherDynLib] != prof.Spec.OtherLibPages {
		t.Errorf("other lib pages = %d, want %d",
			rs.PagesByCategory[vm.CatOtherDynLib], prof.Spec.OtherLibPages)
	}
	if rs.PagesByCategory[vm.CatPrivateCode] != prof.Spec.PrivateCodePages {
		t.Errorf("private pages = %d, want %d",
			rs.PagesByCategory[vm.CatPrivateCode], prof.Spec.PrivateCodePages)
	}
	// Table 1 ratio: user share within a few points of the spec.
	tot := float64(rs.UserInstructions + rs.KernelInstructions)
	userPct := 100 * float64(rs.UserInstructions) / tot
	if diff := userPct - prof.Spec.UserPct; diff < -6 || diff > 6 {
		t.Errorf("user instruction share = %.1f%%, want ~%.1f%%", userPct, prof.Spec.UserPct)
	}
	if rs.PTPsShared == 0 {
		t.Error("a shared-PTP run should end with shared PTPs")
	}
	sys.Kernel.Exit(app.Proc)
}

func TestWarmStartFaultsDrop(t *testing.T) {
	// Table 3 / Figure 10 mechanism: the second execution of an app under
	// shared PTPs inherits the PTEs its first execution populated, so its
	// file faults collapse; under stock they do not.
	for _, cfg := range []core.Config{core.Stock(), core.SharedPTP()} {
		sys := bootSys(t, cfg, LayoutOriginal)
		prof := workload.BuildProfile(testUniverse, mustSpec(t, "Email"))
		var faults [2]uint64
		for r := 0; r < 2; r++ {
			app, _, err := sys.LaunchApp(prof, int64(r))
			if err != nil {
				t.Fatal(err)
			}
			rs, err := app.Run()
			if err != nil {
				t.Fatal(err)
			}
			faults[r] = rs.FileFaults
			sys.Kernel.Exit(app.Proc)
		}
		t.Logf("%s: run1=%d run2=%d file faults", cfg.Name(), faults[0], faults[1])
		if cfg.SharePTP {
			if faults[1] > faults[0]*8/10 {
				t.Errorf("%s: warm run faults = %d, want well below cold %d",
					cfg.Name(), faults[1], faults[0])
			}
		} else {
			if faults[1] < faults[0]*8/10 {
				t.Errorf("%s: warm run faults = %d, expected near cold %d (no sharing)",
					cfg.Name(), faults[1], faults[0])
			}
		}
	}
}

func Test2MBLayoutSharesMore(t *testing.T) {
	// Figure 12: with the 2MB layout, data-segment writes no longer
	// unshare code PTPs, so a larger share of PTPs stays shared.
	shared := map[Layout]int{}
	for _, layout := range []Layout{LayoutOriginal, Layout2MB} {
		sys := bootSys(t, core.SharedPTP(), layout)
		prof := workload.BuildProfile(testUniverse, mustSpec(t, "Adobe Reader"))
		app, _, err := sys.LaunchApp(prof, 1)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := app.Run()
		if err != nil {
			t.Fatal(err)
		}
		pct := 100 * rs.PTPsShared / rs.PTPsLive
		shared[layout] = pct
		t.Logf("%s layout: %d/%d PTPs shared (%d%%), %d PTEs copied",
			layout, rs.PTPsShared, rs.PTPsLive, pct, rs.PTEsCopied)
		sys.Kernel.Exit(app.Proc)
	}
	if shared[Layout2MB] <= shared[LayoutOriginal] {
		t.Errorf("2MB layout should keep more PTPs shared: %d%% vs %d%%",
			shared[Layout2MB], shared[LayoutOriginal])
	}
}

func TestBinderTLBSharing(t *testing.T) {
	// Figure 13 shape: TLB sharing reduces instruction main-TLB stalls
	// for both sides, with and without ASIDs.
	const iters = 3000
	run := func(cfg core.Config, useASID bool) BinderResult {
		sys := bootSys(t, cfg, LayoutOriginal)
		res, err := sys.RunBinder(iters, useASID)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, useASID := range []bool{false, true} {
		stock := run(core.Stock(), useASID)
		sharedTLB := run(core.SharedPTPTLB(), useASID)
		t.Logf("ASID=%v stock:  client %d server %d ITLB stalls",
			useASID, stock.Client.ITLBStalls, stock.Server.ITLBStalls)
		t.Logf("ASID=%v shared: client %d server %d ITLB stalls",
			useASID, sharedTLB.Client.ITLBStalls, sharedTLB.Server.ITLBStalls)
		if sharedTLB.Client.ITLBStalls >= stock.Client.ITLBStalls {
			t.Errorf("ASID=%v: TLB sharing should reduce client ITLB stalls", useASID)
		}
		if sharedTLB.Server.ITLBStalls >= stock.Server.ITLBStalls {
			t.Errorf("ASID=%v: TLB sharing should reduce server ITLB stalls", useASID)
		}
	}
	// ASIDs alone also help versus flushing.
	stockFlush := run(core.Stock(), false)
	stockASID := run(core.Stock(), true)
	if stockASID.Client.ITLBStalls >= stockFlush.Client.ITLBStalls {
		t.Error("ASIDs should reduce client ITLB stalls versus full flushes")
	}
}

func TestLayoutString(t *testing.T) {
	if LayoutOriginal.String() != "original" || Layout2MB.String() != "2MB" {
		t.Error("layout names")
	}
}

func TestCodePageVACovers(t *testing.T) {
	sys := bootSys(t, core.Stock(), LayoutOriginal)
	seen := map[uint32]bool{}
	for idx := 0; idx < testUniverse.TotalCodePages(); idx += 97 {
		va := sys.CodePageVA(idx)
		if seen[uint32(va)] {
			t.Fatalf("duplicate VA %#x for page %d", va, idx)
		}
		seen[uint32(va)] = true
		if sys.Zygote.MM.FindVMA(va) == nil {
			t.Fatalf("page %d VA %#x not mapped in zygote", idx, va)
		}
	}
}
