// The Binder IPC microbenchmark of Section 4.2.4: a parent process acting
// as a service and a child process acting as a client that binds to it
// and invokes its API in a tight loop, both pinned to one core. Both
// sides execute the zygote-preloaded libbinder.so intensively, so with
// TLB sharing their instruction translations occupy one set of global TLB
// entries instead of two ASID-tagged copies.

package android

import (
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

// Binder working-set geometry. The two sides share the libbinder pages
// and add private pages each; the union exceeds the 128-entry main TLB
// without sharing, which is the capacity pressure Figure 13 measures.
const (
	binderLibPages     = 80 // libbinder.so code executed by both sides
	binderClientPrivPg = 40 // client private code
	binderServerPrivPg = 96 // server private code (it also implements the service)
	binderVisitsPerTx  = 12 // page visits per call per side
	binderVisitLen     = 24
	binderKernelBytes  = 512 // binder driver work per transaction leg
)

// BinderSide is one endpoint's measurement.
type BinderSide struct {
	// Process is the endpoint process.
	Process *core.Process
	// ITLBStalls is the instruction main-TLB stall cycles accumulated
	// during the call loop (the metric of Figure 13).
	ITLBStalls uint64
	// ITLBMisses is the instruction-side main TLB miss count.
	ITLBMisses uint64
	// Cycles is the endpoint's total loop cycles.
	Cycles uint64
}

// BinderResult is one run of the microbenchmark.
type BinderResult struct {
	Client BinderSide
	Server BinderSide
}

// RunBinder executes the Binder microbenchmark: the client binds to the
// parent's service and invokes its API iterations times. useASID selects
// whether the main TLB keeps ASID-tagged entries across context switches
// or is flushed on every switch (the "Disabled ASID" bars of Figure 13).
func (sys *System) RunBinder(iterations int, useASID bool) (BinderResult, error) {
	k := sys.Kernel
	k.CPU.UseASID = useASID

	server, err := sys.ZygoteFork("binder-server")
	if err != nil {
		return BinderResult{}, err
	}
	client, err := sys.ZygoteFork("binder-client")
	if err != nil {
		return BinderResult{}, err
	}

	// libbinder.so: the largest preloaded library's leading pages stand
	// in for the binder runtime both sides execute.
	libbinder := sys.largestLib()
	shared := make([]arch.VirtAddr, binderLibPages)
	for i := range shared {
		shared[i] = sys.libCodeBase[libbinder] + arch.VirtAddr(i*arch.PageSize)
	}

	serverPriv, err := sys.binderPrivate(server, "service-code", binderServerPrivPg)
	if err != nil {
		return BinderResult{}, err
	}
	clientPriv, err := sys.binderPrivate(client, "client-code", binderClientPrivPg)
	if err != nil {
		return BinderResult{}, err
	}

	// Warm-up: both sides bind and touch their working sets so the
	// measured loop sees steady-state TLB behavior, not cold faults.
	warm := func(p *core.Process, priv []arch.VirtAddr) error {
		return k.Run(p, func() error {
			// Both regions are contiguous page runs; the whole warm-up is
			// a two-run reference stream.
			return k.CPU.AccessBatch([]arch.RefRun{
				{VA: shared[0], Stride: arch.VirtAddr(arch.PageSize), Count: len(shared), Kind: arch.AccessFetch, Block: binderVisitLen},
				{VA: priv[0], Stride: arch.VirtAddr(arch.PageSize), Count: len(priv), Kind: arch.AccessFetch, Block: binderVisitLen},
			})
		})
	}
	if err := warm(server, serverPriv); err != nil {
		return BinderResult{}, err
	}
	if err := warm(client, clientPriv); err != nil {
		return BinderResult{}, err
	}

	cs0 := client.Ctx.Stats
	ss0 := server.Ctx.Stats

	rng := rand.New(rand.NewSource(7))
	leg := func(p *core.Process, priv []arch.VirtAddr) error {
		k.CPU.ContextSwitch(p.Ctx)
		for v := 0; v < binderVisitsPerTx; v++ {
			var va arch.VirtAddr
			if v%3 == 2 { // one third private code, two thirds libbinder
				va = priv[rng.Intn(len(priv))]
			} else {
				va = shared[rng.Intn(len(shared))]
			}
			if err := k.CPU.FetchBlock(va, binderVisitLen); err != nil {
				return err
			}
		}
		k.CPU.KernelExec(binderKernelBytes) // binder driver transaction work
		return nil
	}

	for it := 0; it < iterations; it++ {
		if err := leg(client, clientPriv); err != nil {
			return BinderResult{}, fmt.Errorf("android: binder client: %w", err)
		}
		if err := leg(server, serverPriv); err != nil {
			return BinderResult{}, fmt.Errorf("android: binder server: %w", err)
		}
	}

	cs1 := client.Ctx.Stats
	ss1 := server.Ctx.Stats
	res := BinderResult{
		Client: BinderSide{
			Process:    client,
			ITLBStalls: cs1.ITLBStallCycles - cs0.ITLBStallCycles,
			ITLBMisses: cs1.ITLBMainMisses - cs0.ITLBMainMisses,
			Cycles:     cs1.Cycles - cs0.Cycles,
		},
		Server: BinderSide{
			Process:    server,
			ITLBStalls: ss1.ITLBStallCycles - ss0.ITLBStallCycles,
			ITLBMisses: ss1.ITLBMainMisses - ss0.ITLBMainMisses,
			Cycles:     ss1.Cycles - ss0.Cycles,
		},
	}
	return res, nil
}

// largestLib returns the index of the biggest preloaded library, the
// stand-in for libbinder's hot code.
func (sys *System) largestLib() int {
	best, size := 0, 0
	for i, l := range sys.Universe.Libs {
		if l.CodePages > size {
			best, size = i, l.CodePages
		}
	}
	return best
}

// binderPrivate maps a private code region for one endpoint and returns
// its page addresses.
func (sys *System) binderPrivate(p *core.Process, name string, pages int) ([]arch.VirtAddr, error) {
	f := vm.NewFile(sys.Kernel.Phys, name, pages*arch.PageSize)
	start := appMapBase
	v := &vm.VMA{
		Start: start, End: start + arch.VirtAddr(pages*arch.PageSize),
		Prot: vm.ProtRead | vm.ProtExec, Flags: vm.VMAPrivate, File: f,
		Name: name, Category: vm.CatPrivateCode,
	}
	if err := sys.Kernel.Mmap(p, v); err != nil {
		return nil, err
	}
	out := make([]arch.VirtAddr, pages)
	for i := range out {
		out[i] = start + arch.VirtAddr(i*arch.PageSize)
	}
	return out, nil
}
