// Persistent-image support: serializable snapshots of a booted System
// (internal/imagestore). The system layer owns the machine-wide identity
// lists: every page-cache file and leaf page-table page is registered
// once, in a deterministic order (boot files first, then discovery order
// of the PID-sorted process walk), and referenced by index everywhere
// else, so the sharing structure of the machine survives serialization.

package android

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/vm"
	"repro/internal/workload"
)

// FileMeta is the serializable identity of one page-cache file; its
// resident pages are serialized separately by the image encoder.
type FileMeta struct {
	Name string
	Size int
}

// SystemSnapshot is the serializable state of a booted System. File
// references are indices into Files; the boot's role fields (libraries,
// boot image, app binary) are recorded so the restored System can answer
// Files() and the address-plan queries exactly like the original.
type SystemSnapshot struct {
	Kernel      core.KernelSnapshot
	Layout      Layout
	Opts        Options
	ZygotePID   int
	LibCodeBase []arch.VirtAddr
	LibDataBase []arch.VirtAddr
	JavaCode    arch.VirtAddr
	JavaData    arch.VirtAddr
	LibFiles    []int32
	JavaFile    int32
	AppFile     int32
	Files       []FileMeta
}

// SnapshotState captures the system. The returned file and table lists
// are the machine-wide identity lists the snapshot's indices refer to;
// the caller serializes their bulky contents (page arrays, PTE arrays)
// alongside the snapshot.
func (sys *System) SnapshotState() (SystemSnapshot, []*vm.File, []*pagetable.LeafTable) {
	var files []*vm.File
	fileIdx := make(map[*vm.File]int32)
	fileIndex := func(f *vm.File) int32 {
		if i, ok := fileIdx[f]; ok {
			return i
		}
		i := int32(len(files))
		fileIdx[f] = i
		files = append(files, f)
		return i
	}
	var tables []*pagetable.LeafTable
	tableIdx := make(map[*pagetable.LeafTable]int32)
	tableIndex := func(t *pagetable.LeafTable) int32 {
		if i, ok := tableIdx[t]; ok {
			return i
		}
		i := int32(len(tables))
		tableIdx[t] = i
		tables = append(tables, t)
		return i
	}

	// Register the boot's files first so their indices are independent of
	// which VMA the process walk meets first; files created after boot
	// (app binaries of live processes) follow in discovery order.
	for _, f := range sys.Files() {
		fileIndex(f)
	}

	s := SystemSnapshot{
		Kernel:      sys.Kernel.SnapshotState(fileIndex, tableIndex),
		Layout:      sys.Layout,
		Opts:        sys.Opts,
		ZygotePID:   sys.Zygote.PID,
		LibCodeBase: sys.libCodeBase,
		LibDataBase: sys.libDataBase,
		JavaCode:    sys.javaCode,
		JavaData:    sys.javaData,
		LibFiles:    make([]int32, len(sys.libFiles)),
		JavaFile:    fileIndex(sys.javaFile),
		AppFile:     fileIndex(sys.appFile),
	}
	for i, f := range sys.libFiles {
		s.LibFiles[i] = fileIndex(f)
	}
	s.Files = make([]FileMeta, len(files))
	for i, f := range files {
		s.Files[i] = FileMeta{Name: f.Name, Size: f.Size}
	}
	return s, files, tables
}

// RestoreSystem rebuilds a booted System. phys is the restored physical
// memory (nil to build it here); files and tables are the restored
// machine-wide lists (built by the image decoder from the snapshot's
// Files metadata and the stored page/PTE sections); u is the workload
// universe the image was booted from, which the caller has verified by
// key.
func RestoreSystem(s SystemSnapshot, u *workload.Universe, phys *mem.PhysMem, files []*vm.File, tables []*pagetable.LeafTable) (*System, error) {
	if len(files) != len(s.Files) {
		return nil, fmt.Errorf("android: snapshot names %d files, decoder built %d", len(s.Files), len(files))
	}
	if len(s.LibFiles) != len(s.LibCodeBase) || len(s.LibFiles) != len(s.LibDataBase) {
		return nil, fmt.Errorf("android: snapshot library lists disagree: %d files, %d code bases, %d data bases",
			len(s.LibFiles), len(s.LibCodeBase), len(s.LibDataBase))
	}
	fileAt := func(i int32, role string) (*vm.File, error) {
		if i < 0 || int(i) >= len(files) {
			return nil, fmt.Errorf("android: snapshot names %s file %d of %d", role, i, len(files))
		}
		return files[i], nil
	}
	k, err := core.RestoreKernel(s.Kernel, phys, files, tables)
	if err != nil {
		return nil, err
	}
	zyg := k.ProcessByPID(s.ZygotePID)
	if zyg == nil {
		return nil, fmt.Errorf("android: snapshot has no zygote process %d", s.ZygotePID)
	}
	sys := &System{
		Kernel:      k,
		Universe:    u,
		Layout:      s.Layout,
		Zygote:      zyg,
		libCodeBase: s.LibCodeBase,
		libDataBase: s.LibDataBase,
		javaCode:    s.JavaCode,
		javaData:    s.JavaData,
		libFiles:    make([]*vm.File, len(s.LibFiles)),
		Opts:        s.Opts,
	}
	for i, fi := range s.LibFiles {
		if sys.libFiles[i], err = fileAt(fi, "library"); err != nil {
			return nil, err
		}
	}
	if sys.javaFile, err = fileAt(s.JavaFile, "boot-image"); err != nil {
		return nil, err
	}
	if sys.appFile, err = fileAt(s.AppFile, "app-binary"); err != nil {
		return nil, err
	}
	return sys, nil
}
