// Package android models the Android userland of the paper's evaluation
// platform: the zygote process that preloads the shared libraries and the
// ART boot image at system start, the fork-without-exec application
// start path, the dynamic loader with the original or the 2MB-aligned
// code/data layout, application launch, steady-state execution, and the
// Binder IPC microbenchmark.
package android

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Layout selects how the dynamic loader places library segments.
type Layout uint8

const (
	// LayoutOriginal is the stock layout: a library's data segment is
	// placed right next to its code segment, so both commonly fall in
	// the same level-2 PTP and a store to a global variable costs the
	// code segment its shared PTP.
	LayoutOriginal Layout = iota
	// Layout2MB maps each library at a 2MB-aligned address with the
	// code and data segments separated by 2MB of address space (as the
	// x86-64 ABI already does), so they always live in different PTPs.
	Layout2MB
)

// String names the layout as in the paper's figure labels.
func (l Layout) String() string {
	if l == Layout2MB {
		return "2MB"
	}
	return "original"
}

// Virtual address plan of the zygote-inherited address space.
const (
	appProcessBase = arch.VirtAddr(0x00010000)
	heapBase       = arch.VirtAddr(0x20000000)
	heapPages      = 4096 // 16MB region
	arenaBase      = arch.VirtAddr(0x22000000)
	arenaPages     = 2048 // 8MB region
	javaBase       = arch.VirtAddr(0x30000000)
	libsBase       = arch.VirtAddr(0x40000000)
	appMapBase     = arch.VirtAddr(0x90000000)
	stackBase      = arch.VirtAddr(0xBEF00000)
	stackPages     = 256 // 1MB region
)

// Boot-time population of the zygote's writable state. Together with the
// stack these counts put the zygote's dirty (fork-copied) PTE total near
// the paper's 3,900.
const (
	zygoteHeapTouched  = 2000
	zygoteArenaTouched = 800
	zygoteJavaData     = 600
	zygoteStackTouched = 7
	libDataInitFrac    = 0.30 // leading fraction of each data segment written at preload
)

// System is a booted Android: the kernel plus the zygote with its
// preloaded address space.
type System struct {
	// Kernel is the simulated kernel.
	Kernel *core.Kernel
	// Universe is the preloaded-code landscape.
	Universe *workload.Universe
	// Layout is the library layout in use.
	Layout Layout
	// Zygote is the zygote process.
	Zygote *core.Process

	libCodeBase []arch.VirtAddr
	libDataBase []arch.VirtAddr
	javaCode    arch.VirtAddr
	javaData    arch.VirtAddr

	libFiles []*vm.File
	javaFile *vm.File
	appFile  *vm.File

	// Opts are the boot options in effect.
	Opts Options
}

// BootFrames is the default physical memory size in frames (1GB).
const BootFrames = 1 << 18

// Options tune the boot beyond kernel config and library layout.
type Options struct {
	// JavaLargePages maps the ART boot image's code with large pages
	// (64KB on ARMv7, 2MB on Sv39) instead of demand-paged 4KB pages —
	// the large-page study of Section 2.3.3. The whole image becomes
	// resident eagerly.
	JavaLargePages bool
	// CPUs is the number of simulated cores (0 means one). The Nexus 7
	// has four; translation changes then cost TLB shootdowns.
	CPUs int
	// Arch names the MMU architecture to boot ("armv7", "sv39"; empty
	// means armv7). Resolved through the arch registry.
	Arch string
}

// Boot brings up a kernel with the given configuration and starts the
// zygote: maps app_process, preloads the 88 dynamic shared libraries and
// the Java boot image under the chosen layout, and runs the zygote's
// initialization, which populates its boot-time footprint (the 5,900
// instruction PTEs of Table 4 plus the writable state fork must copy).
func Boot(cfg core.Config, layout Layout, u *workload.Universe) (*System, error) {
	return BootOpts(cfg, layout, u, Options{})
}

// BootOpts is Boot with explicit Options.
func BootOpts(cfg core.Config, layout Layout, u *workload.Universe, opts Options) (*System, error) {
	ncpus := opts.CPUs
	if ncpus < 1 {
		ncpus = 1
	}
	archName := opts.Arch
	if archName == "" {
		archName = "armv7"
	}
	m, ok := arch.Lookup(archName)
	if !ok {
		return nil, fmt.Errorf("android: unknown architecture %q; registered: %s",
			archName, strings.Join(arch.Names(), ", "))
	}
	k, err := core.New(BootFrames, core.WithConfig(cfg), core.WithCPUs(ncpus), core.WithArch(m))
	if err != nil {
		return nil, err
	}
	sys := &System{Kernel: k, Universe: u, Layout: layout, Opts: opts}
	zyg, err := k.NewProcess("zygote")
	if err != nil {
		return nil, err
	}
	k.SetZygote(zyg)
	sys.Zygote = zyg

	if err := sys.mapZygoteSpace(); err != nil {
		return nil, fmt.Errorf("android: mapping zygote space: %w", err)
	}
	if err := sys.runZygoteInit(); err != nil {
		return nil, fmt.Errorf("android: zygote init: %w", err)
	}
	return sys, nil
}

// mapZygoteSpace builds the zygote's address space: binary, libraries,
// boot image, heap, arenas and stack.
func (sys *System) mapZygoteSpace() error {
	k, z, u := sys.Kernel, sys.Zygote, sys.Universe
	phys := k.Phys

	// app_process: the zygote's C++ main program.
	sys.appFile = vm.NewFile(phys, "app_process", (u.AppProcessPages+4)*arch.PageSize)
	if err := k.Mmap(z, &vm.VMA{
		Start: appProcessBase, End: appProcessBase + arch.VirtAddr(u.AppProcessPages*arch.PageSize),
		Prot: vm.ProtRead | vm.ProtExec, Flags: vm.VMAPrivate, File: sys.appFile,
		Name: "app_process", Category: vm.CatZygoteBinary,
	}); err != nil {
		return err
	}
	if err := k.Mmap(z, &vm.VMA{
		Start: appProcessBase + arch.VirtAddr(u.AppProcessPages*arch.PageSize),
		End:   appProcessBase + arch.VirtAddr((u.AppProcessPages+4)*arch.PageSize),
		Prot:  vm.ProtRead | vm.ProtWrite, Flags: vm.VMAPrivate, File: sys.appFile,
		FileOff: u.AppProcessPages * arch.PageSize, Name: "app_process data",
	}); err != nil {
		return err
	}

	// The Java boot image: AOT-compiled code plus its data. Optionally
	// the code is mapped with large pages (rounded up to a whole number
	// of large-page chunks, as a large-page loader must).
	javaCodePages := u.JavaCodePages
	if sys.Opts.JavaLargePages {
		ppl := k.Geometry().PagesPerLarge()
		javaCodePages = (javaCodePages + ppl - 1) &^ (ppl - 1)
	}
	sys.javaFile = vm.NewFile(phys, "boot.oat", (javaCodePages+u.JavaDataPages)*arch.PageSize)
	sys.javaCode = javaBase
	javaVMA := &vm.VMA{
		Start: javaBase, End: javaBase + arch.VirtAddr(javaCodePages*arch.PageSize),
		Prot: vm.ProtRead | vm.ProtExec, Flags: vm.VMAPrivate, File: sys.javaFile,
		Name: "boot.oat code", Category: vm.CatZygoteJavaLib,
	}
	if sys.Opts.JavaLargePages {
		if err := k.MapLargePages(z, javaVMA); err != nil {
			return err
		}
	} else if err := k.Mmap(z, javaVMA); err != nil {
		return err
	}
	sys.javaData = javaBase + arch.VirtAddr(javaCodePages*arch.PageSize)
	if err := k.Mmap(z, &vm.VMA{
		Start: sys.javaData, End: sys.javaData + arch.VirtAddr(u.JavaDataPages*arch.PageSize),
		Prot: vm.ProtRead | vm.ProtWrite, Flags: vm.VMAPrivate, File: sys.javaFile,
		FileOff: javaCodePages * arch.PageSize, Name: "boot.art data",
	}); err != nil {
		return err
	}

	// The 88 preloaded dynamic shared libraries, placed by the loader.
	sys.libCodeBase = make([]arch.VirtAddr, len(u.Libs))
	sys.libDataBase = make([]arch.VirtAddr, len(u.Libs))
	sys.libFiles = make([]*vm.File, len(u.Libs))
	cursor := libsBase
	for i, lib := range u.Libs {
		f := vm.NewFile(phys, lib.Name, (lib.CodePages+lib.DataPages)*arch.PageSize)
		sys.libFiles[i] = f
		var codeVA, dataVA arch.VirtAddr
		switch sys.Layout {
		case Layout2MB:
			// Code at the next 2MB boundary, data 2MB later: different
			// PTPs by construction, at the cost of virtual address space.
			const twoMB = 2 << 20
			cursor = (cursor + twoMB - 1) &^ (twoMB - 1)
			codeVA = cursor
			dataVA = codeVA + arch.VirtAddr(((lib.CodePages*arch.PageSize)+twoMB-1)&^(twoMB-1))
			if dataVA < codeVA+twoMB {
				dataVA = codeVA + twoMB
			}
			cursor = dataVA + arch.VirtAddr(lib.DataPages*arch.PageSize)
		default:
			// Original layout: data placed right next to code.
			codeVA = cursor
			dataVA = codeVA + arch.VirtAddr(lib.CodePages*arch.PageSize)
			cursor = dataVA + arch.VirtAddr(lib.DataPages*arch.PageSize)
		}
		sys.libCodeBase[i] = codeVA
		sys.libDataBase[i] = dataVA
		if err := k.Mmap(z, &vm.VMA{
			Start: codeVA, End: codeVA + arch.VirtAddr(lib.CodePages*arch.PageSize),
			Prot: vm.ProtRead | vm.ProtExec, Flags: vm.VMAPrivate, File: f,
			Name: lib.Name + " code", Category: vm.CatZygoteDynLib,
		}); err != nil {
			return err
		}
		if err := k.Mmap(z, &vm.VMA{
			Start: dataVA, End: dataVA + arch.VirtAddr(lib.DataPages*arch.PageSize),
			Prot: vm.ProtRead | vm.ProtWrite, Flags: vm.VMAPrivate, File: f,
			FileOff: lib.CodePages * arch.PageSize, Name: lib.Name + " data",
		}); err != nil {
			return err
		}
	}

	// Heap, ART arenas and stack.
	anon := []*vm.VMA{
		{Start: heapBase, End: heapBase + heapPages*arch.PageSize,
			Prot: vm.ProtRead | vm.ProtWrite, Flags: vm.VMAPrivate, Name: "heap"},
		{Start: arenaBase, End: arenaBase + arenaPages*arch.PageSize,
			Prot: vm.ProtRead | vm.ProtWrite, Flags: vm.VMAPrivate, Name: "art arenas"},
		{Start: stackBase, End: stackBase + stackPages*arch.PageSize,
			Prot: vm.ProtRead | vm.ProtWrite, Flags: vm.VMAPrivate | vm.VMAStack, Name: "stack"},
	}
	for _, v := range anon {
		if err := k.Mmap(z, v); err != nil {
			return err
		}
	}
	return nil
}

// CodePageVA maps a universe code-page index to its virtual address under
// the system's layout.
func (sys *System) CodePageVA(idx int) arch.VirtAddr {
	seg := sys.Universe.PageSegment(idx)
	switch seg.Kind {
	case "app_process":
		return appProcessBase + arch.VirtAddr(seg.Offset*arch.PageSize)
	case "dynlib":
		return sys.libCodeBase[seg.LibIndex] + arch.VirtAddr(seg.Offset*arch.PageSize)
	default: // java
		return sys.javaCode + arch.VirtAddr(seg.Offset*arch.PageSize)
	}
}

// LibDataVA returns the virtual address of data page pg of library li.
func (sys *System) LibDataVA(li, pg int) arch.VirtAddr {
	return sys.libDataBase[li] + arch.VirtAddr(pg*arch.PageSize)
}

// StackTouchVA returns the address of the i-th boot-touched stack page.
func (sys *System) StackTouchVA(i int) arch.VirtAddr {
	return stackBase + arch.VirtAddr((stackPages-1-i)*arch.PageSize)
}

// runZygoteInit executes the zygote's initialization: preloading classes
// and resources touches the hot code pages (the 5,900 instruction PTEs of
// Section 4.2.1), runs library initializers that dirty part of each data
// segment, and populates the heap, arenas and stack.
func (sys *System) runZygoteInit() error {
	k, z, u := sys.Kernel, sys.Zygote, sys.Universe
	return k.Run(z, func() error {
		// The whole initialization is one reference stream: the boot-time
		// hot code page visits, then the constant-stride write sweeps.
		var rs arch.RefStream
		for _, pg := range u.ZygoteSet() {
			rs.Add(sys.CodePageVA(pg), arch.AccessFetch, 16)
		}
		// Library initializers write the leading part of each data
		// segment (GOT relocation, static constructors).
		pageStride := arch.VirtAddr(arch.PageSize)
		for li, lib := range u.Libs {
			n := int(float64(lib.DataPages)*libDataInitFrac + 0.5)
			if n < 1 {
				n = 1
			}
			rs.AddRun(arch.RefRun{VA: sys.LibDataVA(li, 0), Stride: pageStride, Count: n, Kind: arch.AccessWrite})
		}
		// Boot-image data (class tables, dex caches), heap, arenas, and
		// the stack (touched top-down, a descending run).
		rs.AddRun(arch.RefRun{VA: sys.javaData, Stride: pageStride, Count: zygoteJavaData, Kind: arch.AccessWrite})
		rs.AddRun(arch.RefRun{VA: heapBase, Stride: pageStride, Count: zygoteHeapTouched, Kind: arch.AccessWrite})
		rs.AddRun(arch.RefRun{VA: arenaBase, Stride: pageStride, Count: zygoteArenaTouched, Kind: arch.AccessWrite})
		rs.AddRun(arch.RefRun{VA: sys.StackTouchVA(0), Stride: -pageStride, Count: zygoteStackTouched, Kind: arch.AccessWrite})
		return k.CPU.AccessBatch(rs.Runs())
	})
}

// JavaImageResidentPages returns how many pages of the ART boot image are
// resident in the page cache — the physical cost of mapping it with 64KB
// pages versus demand-paged 4KB pages.
func (sys *System) JavaImageResidentPages() int {
	return sys.javaFile.ResidentPages()
}

// ZygoteFork forks an application process from the zygote without a
// subsequent exec, exactly as Android starts applications.
func (sys *System) ZygoteFork(name string) (*core.Process, error) {
	return sys.Kernel.Fork(sys.Zygote, name)
}
