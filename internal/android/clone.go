package android

import "repro/internal/vm"

// Clone duplicates the booted system for a checkpoint fork: the kernel
// machine is cloned copy-on-write (core.Kernel.Clone) and the system's
// direct references — zygote process and page-cache files — are remapped
// into the clone. Address-plan fields (library bases, image addresses)
// are immutable after boot and shared as-is.
func (sys *System) Clone() *System {
	k2, cc := sys.Kernel.Clone()
	c := &System{
		Kernel:      k2,
		Universe:    sys.Universe,
		Layout:      sys.Layout,
		Zygote:      k2.ProcessByPID(sys.Zygote.PID),
		libCodeBase: sys.libCodeBase,
		libDataBase: sys.libDataBase,
		javaCode:    sys.javaCode,
		javaData:    sys.javaData,
		javaFile:    cc.File(sys.javaFile),
		appFile:     cc.File(sys.appFile),
		Opts:        sys.Opts,
	}
	c.libFiles = make([]*vm.File, len(sys.libFiles))
	for i, f := range sys.libFiles {
		c.libFiles[i] = cc.File(f)
	}
	return c
}

// Files returns every page-cache file the boot created — the per-library
// code files, the ART boot image, and the app file — in a stable order,
// for state fingerprinting.
func (sys *System) Files() []*vm.File {
	out := make([]*vm.File, 0, len(sys.libFiles)+2)
	out = append(out, sys.libFiles...)
	out = append(out, sys.javaFile, sys.appFile)
	return out
}
