package alloc

import "testing"

// TestPointerStability pins the arena contract: a pointer handed out
// stays valid and keeps its value across later growth.
func TestPointerStability(t *testing.T) {
	var a Arena[int]
	const n = 3 * maxChunk
	ptrs := make([]*int, n)
	for i := 0; i < n; i++ {
		p := a.New()
		*p = i
		ptrs[i] = p
	}
	for i, p := range ptrs {
		if *p != i {
			t.Fatalf("*ptrs[%d] = %d after growth, want %d", i, *p, i)
		}
	}
}

// TestZeroed pins that New returns zero values even when a chunk slot
// is reused... it never is: chunks are abandoned, not recycled, so every
// slot is handed out exactly once and is zero.
func TestZeroed(t *testing.T) {
	var a Arena[[4]uint64]
	for i := 0; i < 2*firstChunk; i++ {
		if *a.New() != ([4]uint64{}) {
			t.Fatalf("New() returned non-zero value at allocation %d", i)
		}
	}
}

// TestAllocationAmortized pins the point of the arena: far fewer
// allocator calls than objects.
func TestAllocationAmortized(t *testing.T) {
	var a Arena[[2]uint64]
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < 1024; i++ {
			a.New()
		}
	})
	// 1024 objects cost at most a handful of chunk allocations.
	if allocs > 8 {
		t.Fatalf("1024 arena objects cost %v allocations, want <= 8", allocs)
	}
}
