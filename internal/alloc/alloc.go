// Package alloc provides a tiny chunked arena for the simulator's
// clone-heavy paths. A checkpoint fork (internal/checkpoint) mints
// hundreds of small objects per machine clone — L2Table clone nodes,
// TLB and cache headers — whose lifetimes are identical: they live and
// die with the cloned machine. An arena batches them into a few
// contiguous chunks, so cloning costs a handful of allocator calls
// instead of one per object and the objects of one clone sit together
// in memory.
//
// Lifetime rule: an arena belongs to exactly one clone operation, and
// everything it hands out is owned by the resulting machine. The arena
// itself may be dropped once the clone completes — returned pointers
// keep their chunks alive — but it must never be reused for a second
// machine, or the two machines' lifetimes become entangled.
package alloc

// Arena allocates values of T from geometrically growing chunks. The
// zero value is ready to use. Not safe for concurrent use; a clone
// operation is single-threaded.
type Arena[T any] struct {
	chunk []T
}

// chunk growth bounds: start small so one-off arenas cost little, cap
// the chunk so a huge clone does not double into pathological blocks.
const (
	firstChunk = 64
	maxChunk   = 4096
)

// New returns a pointer to a fresh zero T with arena lifetime.
func (a *Arena[T]) New() *T {
	if len(a.chunk) == cap(a.chunk) {
		n := 2 * cap(a.chunk)
		if n == 0 {
			n = firstChunk
		}
		if n > maxChunk {
			n = maxChunk
		}
		// The previous chunk is deliberately abandoned: pointers already
		// handed out keep it alive for exactly as long as needed.
		a.chunk = make([]T, 0, n)
	}
	a.chunk = a.chunk[:len(a.chunk)+1]
	return &a.chunk[len(a.chunk)-1]
}
