// Package checkpoint provides deterministic snapshot/fork of a complete
// simulated machine: capture a booted android.System once as an
// immutable image, then fork runnable copies in O(dirtied-state).
//
// The mechanism is the paper's own NEED_COPY trick applied to the
// simulator itself. An image holds a private clone of the machine whose
// bulky state — PTE arrays (internal/pagetable), frame metadata chunks
// (internal/mem), and page-cache contents (internal/vm) — is shared by
// reference with every fork and copied only on first write, while the
// small hot state (TLB entries, cache line arrays, CPU contexts,
// counters) is copied eagerly so forks resume from exactly the captured
// cycle. Because the image is never run, its shared state is written by
// nobody; a fork that redlines its own copy never changes the image, so
// any number of forks behave exactly like fresh boots. That determinism
// invariant is pinned by the fork-vs-fresh differential tests.
//
// Cache memoizes images by a canonical key of the boot parameters
// (Key), so sweeps that boot the same prefix many times — every
// campaign in internal/experiments — simulate it once and fork it
// everywhere.
package checkpoint

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/android"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Image is an immutable snapshot of a booted machine. Create with
// Capture; mint runnable machines with Fork. The image's own machine is
// never exposed to callers, so nothing can mutate it.
//
//satlint:frozen captured boot state is shared copy-on-write by every fork
type Image struct {
	proto *android.System
}

// Capture snapshots sys into an immutable image. The snapshot is one
// machine clone: sys itself stays usable and is not referenced by the
// image afterwards, so later mutations of sys do not leak in.
func Capture(sys *android.System) *Image {
	return &Image{proto: sys.Clone()}
}

// Fork mints a runnable machine from the image. The fork shares PTE
// arrays, frame-metadata chunks and page-cache maps with the image
// copy-on-write and copies only the small hot state, so an unmodified
// fork allocates nothing per page-table page.
func (img *Image) Fork() *android.System {
	return img.proto.Clone()
}

// Adopt wraps an already-private machine as an image without the
// defensive clone Capture performs. The caller transfers ownership: sys
// must never be run or mutated afterwards. This is the admission path
// for deserialized machines (internal/imagestore), which are fresh by
// construction — cloning them would only copy state nobody else holds.
func Adopt(sys *android.System) *Image {
	return &Image{proto: sys}
}

// Proto exposes the image's captured machine for serialization. It must
// be treated as strictly read-only: the immutability of this machine is
// what makes every Fork byte-identical to a fresh boot.
func (img *Image) Proto() *android.System {
	return img.proto
}

// Boot is the prefix simulation a Cache memoizes: it boots a fresh
// machine for the given parameters.
type Boot func() (*android.System, error)

// Warm advances a freshly forked machine to an intermediate state worth
// caching — a post-boot warmup phase shared by several scenarios. It must
// be deterministic in the machine it receives: the tree invariant is that
// forking a warmed image is byte-identical to re-running the warmup on a
// fresh fork, which holds exactly when the warmup's effect is a pure
// function of the machine state.
type Warm func(*android.System) error

// centry is one cache slot; once makes concurrent sweep workers asking
// for the same prefix boot it exactly once.
type centry struct {
	once sync.Once
	img  *Image
	err  error
}

// ImageStore is a persistent second level under the in-memory cache: a
// Load hit skips the boot entirely, a miss falls back to booting and the
// result is written back with Save. Implementations must only return
// verified images — a Load hit is admitted to the cache without further
// checks, so corrupt or stale entries must come back as a miss (see
// internal/imagestore, which gates admission on the stored fingerprint).
// Both methods may be called concurrently.
type ImageStore interface {
	// Load returns the verified image stored under key, or false.
	Load(key string) (*Image, bool)
	// Save persists the image under key, best-effort: a store that
	// cannot write simply leaves the next process to boot cold.
	Save(key string, img *Image)
}

// Cache memoizes checkpoint images by prefix key. The zero value is not
// usable; construct with NewCache. Safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	m     map[string]*centry
	store ImageStore
}

// NewCache returns an empty image cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]*centry)}
}

// SetStore attaches a persistent image store consulted between the
// in-memory cache and the boot function: miss → store load → cold boot
// plus write-back. Call before the first Image request; a nil store
// (the default) keeps the cache purely in-memory.
func (c *Cache) SetStore(s ImageStore) {
	c.mu.Lock()
	c.store = s
	c.mu.Unlock()
}

// Image returns the memoized image for key, booting and capturing it on
// first request. Every concurrent caller with the same key shares one
// boot. A boot error is memoized too: retrying a deterministic boot
// cannot succeed. With an attached ImageStore the boot is first short-
// circuited by a verified store load, and a cold boot is written back.
func (c *Cache) Image(key string, boot Boot) (*Image, error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &centry{}
		c.m[key] = e
	}
	store := c.store
	c.mu.Unlock()
	e.once.Do(func() {
		if store != nil {
			if img, ok := store.Load(key); ok {
				e.img = img
				return
			}
		}
		sys, err := boot()
		if err != nil {
			e.err = err
			return
		}
		e.img = Capture(sys)
		if store != nil {
			store.Save(key, e.img)
		}
	})
	return e.img, e.err
}

// DerivedKey names the tree node reached by running the warmup phase
// warmKey on top of the machine state named by parentKey. Chaining
// DerivedKey builds fork-of-fork lineages: each segment appends one
// warmup, so equal keys mean equal simulated histories.
func DerivedKey(parentKey, warmKey string) string {
	return parentKey + " warm=" + warmKey
}

// Derived returns the memoized image for parent-state-plus-warmup,
// building it on first request by forking the parent image, running warm
// on the fork, and capturing the result. The parent image itself is never
// run — interior tree nodes stay as immutable as leaves — and parent() is
// only invoked when the derived image is not already cached.
//
// parent is a thunk (typically a closure over Cache.Image or another
// Derived call) so trees of any depth memoize every interior node: each
// level's once-guard fires at most one build, and recursion across
// distinct keys cannot deadlock because each key has its own entry.
func (c *Cache) Derived(parentKey, warmKey string, parent func() (*Image, error), warm Warm) (*Image, error) {
	return c.Image(DerivedKey(parentKey, warmKey), func() (*android.System, error) {
		img, err := parent()
		if err != nil {
			return nil, err
		}
		sys := img.Fork()
		if err := warm(sys); err != nil {
			return nil, err
		}
		return sys, nil
	})
}

// Len returns the number of distinct prefixes cached so far.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Key canonicalizes the boot parameters of android.BootOpts into a
// memoization key: any two boots with equal keys produce identical
// machines (boot is deterministic in these parameters), so they may
// share one image. The universe is keyed by its content hash and the
// architecture name is normalized (empty means armv7, matching
// android.BootOpts), so the key is stable across processes — it doubles
// as the persistent image-store key (internal/imagestore), where a
// pointer identity or an arch alias would either never hit or collide
// ARMv7 and Sv39 images.
func Key(cfg core.Config, layout android.Layout, u *workload.Universe, opts android.Options) string {
	if opts.Arch == "" {
		opts.Arch = "armv7"
	}
	return fmt.Sprintf("cfg=%+v layout=%d universe=%s opts=%+v", cfg, layout, u.ContentHash(), opts)
}

// Fingerprint renders the image's complete observable state as a string:
// kernel and allocator counters, sharing stats, every process's regions,
// page tables and context, every page-cache file, and every core's TLB,
// cache and cycle state. Two fingerprints are equal iff the machines are
// observably identical; the aliasing-hazard tests take one before and
// after mutating a fork to prove the image never changes.
func (img *Image) Fingerprint() string {
	sys := img.proto
	k := sys.Kernel
	var b strings.Builder

	fmt.Fprintf(&b, "counters=%+v\n", k.Counters)
	ps := k.Phys.Stats()
	fmt.Fprintf(&b, "phys alloc=%d freed=%d inuse=%d kinds=", ps.Allocated, ps.Freed, ps.InUse)
	kinds := make([]int, 0, len(ps.ByKind))
	for kind := range ps.ByKind {
		kinds = append(kinds, int(kind))
	}
	sort.Ints(kinds)
	for _, kind := range kinds {
		fmt.Fprintf(&b, "%d:%d,", kind, ps.ByKind[mem.FrameKind(kind)])
	}
	fmt.Fprintf(&b, "\nsharing=%+v\n", k.SharingStats())

	for _, p := range k.Processes() {
		fmt.Fprintf(&b, "proc %d %q zygote=%v child=%v alive=%v forkstats=%+v ptescopied=%d\n",
			p.PID, p.Name, p.IsZygote, p.IsZygoteChild, p.Alive(), p.ForkStats, p.PTEsCopied)
		fmt.Fprintf(&b, "  ctx asid=%d dacr=%#x stats=%+v\n", p.Ctx.ASID, p.Ctx.DACR, p.Ctx.Stats)
		fmt.Fprintf(&b, "  mm counters=%+v ptstats=%+v\n", p.MM.Counters, p.MM.PT.Stats())
		for _, v := range p.MM.VMAs() {
			name := ""
			if v.File != nil {
				name = v.File.Name
			}
			fmt.Fprintf(&b, "  vma %#x-%#x prot=%v flags=%d file=%q off=%d name=%q cat=%d\n",
				v.Start, v.End, v.Prot, v.Flags, name, v.FileOff, v.Name, v.Category)
		}
		for idx := 0; idx < p.MM.PT.NumSlots(); idx++ {
			e := p.MM.PT.Slot(idx)
			if !e.Valid() {
				continue
			}
			fmt.Fprintf(&b, "  l1[%d] frame=%d domain=%d needcopy=%v pop=%d:",
				idx, e.Table.Frame, e.Domain, e.NeedCopy, e.Table.Populated())
			for i := 0; i < e.Table.Len(); i++ {
				if pte := e.Table.PTE(i); pte.Valid() {
					fmt.Fprintf(&b, " %d=%d/%d/%d", i, pte.Frame, pte.Flags, pte.Soft)
				}
			}
			b.WriteByte('\n')
		}
	}

	for _, f := range sys.Files() {
		if f == nil {
			continue
		}
		fmt.Fprintf(&b, "file %q size=%d resident=%d:", f.Name, f.Size, f.ResidentPages())
		f.ForEachPage(func(idx int, frame arch.FrameNum) {
			fmt.Fprintf(&b, " %d=%d", idx, frame)
		})
		b.WriteByte('\n')
	}

	for i := 0; i < k.NumCPUs(); i++ {
		c := k.CPUAt(i)
		iv, ig := c.MicroI.Occupancy()
		dv, dg := c.MicroD.Occupancy()
		mv, mg := c.Main.Occupancy()
		fmt.Fprintf(&b, "cpu%d now=%d micro-i=%d/%d micro-d=%d/%d main=%d/%d l1i=%d l1d=%d\n",
			i, c.Now(), iv, ig, dv, dg, mv, mg,
			c.Caches.L1I.Occupancy(), c.Caches.L1D.Occupancy())
	}
	fmt.Fprintf(&b, "l2=%d\n", k.CPUAt(0).Caches.L2.Occupancy())

	reg := obs.NewRegistry()
	reg.MustRegister(k.Sources()...)
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := snap[name]
		keys := make([]string, 0, len(m))
		for key := range m {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "src %s:", name)
		for _, key := range keys {
			fmt.Fprintf(&b, " %s=%d", key, m[key])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
