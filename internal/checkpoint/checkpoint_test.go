// Tests for the checkpoint determinism invariant, in three layers:
// a fork is observably identical to a fresh boot; mutating a fork —
// fork/exec, munmap, mprotect, SMP TLB shootdowns — leaves the image
// bit-for-bit unchanged; and an unmodified fork copies no PTE arrays and
// stays allocation-bounded.

package checkpoint

import (
	"testing"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/workload"
)

func bootSys(t *testing.T, opts android.Options) *android.System {
	t.Helper()
	sys, err := android.BootOpts(core.SharedPTP(), android.LayoutOriginal, workload.DefaultUniverse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// fingerprintOf snapshots any live system through a throwaway capture.
func fingerprintOf(sys *android.System) string {
	return Capture(sys).Fingerprint()
}

func TestForkMatchesFreshBoot(t *testing.T) {
	img := Capture(bootSys(t, android.Options{}))
	fresh := fingerprintOf(bootSys(t, android.Options{}))
	forkA := fingerprintOf(img.Fork())
	forkB := fingerprintOf(img.Fork())
	if forkA != fresh {
		t.Error("fork fingerprint differs from a fresh boot")
	}
	if forkA != forkB {
		t.Error("two forks of one image differ")
	}
}

// exercise runs the heaviest mutation mix we have against sys: a full
// app launch/run/exit, plus munmap and mprotect on a zygote child
// (translation changes; with several CPUs these cost TLB shootdowns).
func exercise(t *testing.T, sys *android.System) {
	t.Helper()
	spec := workload.Suite()[0]
	prof := workload.BuildProfile(sys.Universe, spec)
	app, _, err := sys.LaunchApp(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	sys.Kernel.Exit(app.Proc)

	child, err := sys.ZygoteFork("mutator")
	if err != nil {
		t.Fatal(err)
	}
	var anon, file *vm.VMA
	for _, v := range child.MM.VMAs() {
		if v.File == nil && anon == nil {
			anon = v
		}
		if v.File != nil && file == nil {
			file = v
		}
	}
	if anon == nil || file == nil {
		t.Fatal("fixture child has no anonymous or file-backed VMA to mutate")
	}
	if err := sys.Kernel.Mprotect(child, file.Start, file.End, vm.ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := sys.Kernel.Munmap(child, anon.Start, anon.End); err != nil {
		t.Fatal(err)
	}
	sys.Kernel.Exit(child)
}

func TestMutatedForkLeavesImageUnchanged(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts android.Options
	}{
		{"uniprocessor", android.Options{}},
		{"smp-shootdown", android.Options{CPUs: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			img := Capture(bootSys(t, tc.opts))
			before := img.Fingerprint()
			exercise(t, img.Fork())
			if after := img.Fingerprint(); after != before {
				t.Error("image fingerprint changed after mutating a fork")
			}
			// And the image still mints pristine forks afterwards.
			if fingerprintOf(img.Fork()) != before {
				t.Error("fork minted after mutations differs from the captured state")
			}
		})
	}
}

func TestCaptureDetachesFromSource(t *testing.T) {
	sys := bootSys(t, android.Options{})
	img := Capture(sys)
	before := img.Fingerprint()
	exercise(t, sys) // mutate the ORIGINAL after capturing
	if after := img.Fingerprint(); after != before {
		t.Error("mutating the captured system leaked into the image")
	}
}

func TestCacheMemoizesBoots(t *testing.T) {
	c := NewCache()
	boots := 0
	boot := func() (*android.System, error) {
		boots++
		return android.Boot(core.SharedPTP(), android.LayoutOriginal, workload.DefaultUniverse())
	}
	a, err := c.Image("k1", boot)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Image("k1", boot)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same key returned distinct images")
	}
	if boots != 1 {
		t.Errorf("boot ran %d times for one key, want 1", boots)
	}
	if _, err := c.Image("k2", boot); err != nil {
		t.Fatal(err)
	}
	if boots != 2 {
		t.Errorf("boot ran %d times for two keys, want 2", boots)
	}
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
}

func TestKeySeparatesParameters(t *testing.T) {
	u := workload.DefaultUniverse()
	otherU := &workload.Universe{AppProcessPages: 1, Libs: u.Libs,
		JavaCodePages: u.JavaCodePages, JavaDataPages: u.JavaDataPages}
	base := Key(core.SharedPTP(), android.LayoutOriginal, u, android.Options{})
	for name, other := range map[string]string{
		"config":   Key(core.Stock(), android.LayoutOriginal, u, android.Options{}),
		"layout":   Key(core.SharedPTP(), android.Layout2MB, u, android.Options{}),
		"universe": Key(core.SharedPTP(), android.LayoutOriginal, otherU, android.Options{}),
		"options":  Key(core.SharedPTP(), android.LayoutOriginal, u, android.Options{CPUs: 4}),
		"arch":     Key(core.SharedPTP(), android.LayoutOriginal, u, android.Options{Arch: "sv39"}),
	} {
		if other == base {
			t.Errorf("key ignores the %s parameter", name)
		}
	}
	if again := Key(core.SharedPTP(), android.LayoutOriginal, u, android.Options{}); again != base {
		t.Error("equal parameters produce unequal keys")
	}
	// The key must be stable across processes: a second universe with the
	// same content and the normalized default architecture name the same
	// image. Both properties are what lets a persistent store built in
	// one process warm-start another.
	if k2 := Key(core.SharedPTP(), android.LayoutOriginal, workload.DefaultUniverse(), android.Options{}); k2 != base {
		t.Error("identical-content universes produce unequal keys")
	}
	if k2 := Key(core.SharedPTP(), android.LayoutOriginal, u, android.Options{Arch: "armv7"}); k2 != base {
		t.Error("explicit armv7 and default arch produce unequal keys")
	}
}

func TestForkSharesAllPTPStorage(t *testing.T) {
	img := Capture(bootSys(t, android.Options{}))
	fork := img.Fork()
	ptps, shared := 0, 0
	for _, p := range img.proto.Kernel.Processes() {
		fp := fork.Kernel.ProcessByPID(p.PID)
		if fp == nil {
			t.Fatalf("fork lost process %d", p.PID)
		}
		for i := 0; i < p.MM.PT.NumSlots(); i++ {
			a, b := p.MM.PT.Slot(i), fp.MM.PT.Slot(i)
			if a.Table == nil {
				continue
			}
			ptps++
			if a.Table.SharesStorage(b.Table) {
				shared++
			}
		}
	}
	if ptps == 0 {
		t.Fatal("fixture has no PTPs")
	}
	if shared != ptps {
		t.Errorf("unmodified fork copied %d of %d PTE arrays; want none", ptps-shared, ptps)
	}
	sc, total := fork.Kernel.Phys.SharedChunks()
	if sc != total {
		t.Errorf("unmodified fork privatized %d of %d frame-metadata chunks; want none", total-sc, total)
	}
}

func TestForkAllocationBounded(t *testing.T) {
	img := Capture(bootSys(t, android.Options{}))
	var sink *android.System
	allocs := testing.AllocsPerRun(10, func() {
		sink = img.Fork()
	})
	_ = sink
	// A fork's allocations are the eagerly copied hot state (TLB entry
	// slices, flat cache line arrays, process/context/File structs) — a
	// machine-shape cost of ~250, independent of how much memory the
	// machine maps. Copying page-cache contents or frame-metadata chunks
	// would add thousands of allocations (one per resident page / chunk),
	// so the bound fails loudly if O(memory-size) copying creeps in;
	// per-PTP copying is pinned directly by TestForkSharesAllPTPStorage.
	resident := 0
	for _, f := range img.proto.Files() {
		if f != nil {
			resident += f.ResidentPages()
		}
	}
	if resident < 1000 {
		t.Fatalf("fixture too small to be meaningful: %d resident pages", resident)
	}
	if max := 400.0; allocs > max {
		t.Errorf("Fork() = %.0f allocs, want <= %.0f (machine has %d resident file pages)", allocs, max, resident)
	}
}
