// Tests for checkpoint fork trees: Derived images memoize warmup phases
// on top of parent images, and the tree invariants are (1) forking a
// derived image is byte-identical to re-running the warmups sequentially
// on a fresh boot, and (2) interior nodes stay immutable — mutating a
// leaf fork, or deriving a child from an interior node, never changes
// any image up the chain.

package checkpoint

import (
	"testing"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/workload"
)

// warmFork is a deterministic warmup phase: fork one named zygote child
// and leave it running, so the warmed state differs visibly from the
// boot state (extra process, dirtied PTPs, fork counters).
func warmFork(name string) Warm {
	return func(sys *android.System) error {
		_, err := sys.ZygoteFork(name)
		return err
	}
}

// warmApp runs one full app launch/run/exit — the heaviest deterministic
// warmup we have, touching the TLBs, caches, page cache and counters.
func warmApp(sys *android.System) error {
	spec := workload.Suite()[0]
	prof := workload.BuildProfile(sys.Universe, spec)
	app, _, err := sys.LaunchApp(prof, 1)
	if err != nil {
		return err
	}
	if _, err := app.Run(); err != nil {
		return err
	}
	sys.Kernel.Exit(app.Proc)
	return nil
}

func freshBoot() (*android.System, error) {
	return android.Boot(core.SharedPTP(), android.LayoutOriginal, workload.DefaultUniverse())
}

func TestDerivedForkMatchesSequentialWarm(t *testing.T) {
	c := NewCache()
	base := func() (*Image, error) { return c.Image("base", freshBoot) }
	mid := func() (*Image, error) { return c.Derived("base", "A", base, warmFork("warmA")) }
	leaf, err := c.Derived(DerivedKey("base", "A"), "B", mid, warmApp)
	if err != nil {
		t.Fatal(err)
	}

	// The linear history: one fresh machine, both warmups run in order.
	sys, err := freshBoot()
	if err != nil {
		t.Fatal(err)
	}
	if err := warmFork("warmA")(sys); err != nil {
		t.Fatal(err)
	}
	if err := warmApp(sys); err != nil {
		t.Fatal(err)
	}

	if fingerprintOf(leaf.Fork()) != fingerprintOf(sys) {
		t.Error("fork of the derived leaf differs from running the warmups sequentially")
	}
}

func TestDerivedMemoizesWarmups(t *testing.T) {
	c := NewCache()
	boots, warms := 0, 0
	boot := func() (*android.System, error) {
		boots++
		return freshBoot()
	}
	parent := func() (*Image, error) { return c.Image("base", boot) }
	warm := func(sys *android.System) error {
		warms++
		return warmFork("w")(sys)
	}

	a, err := c.Derived("base", "w", parent, warm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Derived("base", "w", parent, warm)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same derived key returned distinct images")
	}
	// A sibling warmup reuses the memoized parent boot.
	if _, err := c.Derived("base", "w2", parent, warmFork("w2")); err != nil {
		t.Fatal(err)
	}
	if boots != 1 {
		t.Errorf("parent booted %d times for one tree, want 1", boots)
	}
	if warms != 1 {
		t.Errorf("warmup ran %d times for one derived key, want 1", warms)
	}
	if c.Len() != 3 {
		t.Errorf("Len() = %d, want 3 (base + two derived nodes)", c.Len())
	}
}

func TestInteriorNodesImmutable(t *testing.T) {
	c := NewCache()
	baseImg, err := c.Image("base", freshBoot)
	if err != nil {
		t.Fatal(err)
	}
	base := func() (*Image, error) { return c.Image("base", freshBoot) }
	midImg, err := c.Derived("base", "A", base, warmFork("warmA"))
	if err != nil {
		t.Fatal(err)
	}
	baseFP := baseImg.Fingerprint()
	midFP := midImg.Fingerprint()

	// Deriving a leaf from the interior node forks it; the interior image
	// itself must not change.
	mid := func() (*Image, error) { return midImg, nil }
	leafImg, err := c.Derived(DerivedKey("base", "A"), "B", mid, warmApp)
	if err != nil {
		t.Fatal(err)
	}
	if midImg.Fingerprint() != midFP {
		t.Error("deriving a leaf mutated the interior image")
	}

	// Redlining a leaf fork must not reach any node up the chain.
	leafFP := leafImg.Fingerprint()
	exercise(t, leafImg.Fork())
	if leafImg.Fingerprint() != leafFP {
		t.Error("mutating a fork changed the leaf image")
	}
	if midImg.Fingerprint() != midFP {
		t.Error("mutating a leaf fork changed the interior image")
	}
	if baseImg.Fingerprint() != baseFP {
		t.Error("mutating a leaf fork changed the root image")
	}
	// And the interior node still mints pristine forks.
	if fingerprintOf(midImg.Fork()) != midFP {
		t.Error("interior fork minted after leaf mutations differs from its capture")
	}
}

func TestDerivedKeySeparatesLineages(t *testing.T) {
	// Tree keying must distinguish "boot then warm A" from "boot then
	// warm B", and a chain A-then-B from B-then-A.
	ab := DerivedKey(DerivedKey("base", "A"), "B")
	ba := DerivedKey(DerivedKey("base", "B"), "A")
	if ab == ba {
		t.Error("key ignores warmup order")
	}
	if DerivedKey("base", "A") == DerivedKey("base", "B") {
		t.Error("key ignores the warmup phase")
	}
	if DerivedKey("base", "A") == "base" {
		t.Error("derived key collides with its parent")
	}
}
