package mem

import (
	"fmt"

	"repro/internal/arch"
)

// Snapshot is the complete serializable state of a PhysMem: the flat
// frame-metadata array plus the allocator bookkeeping. It exists for the
// persistent image store (internal/imagestore); the frame array is by
// far the largest section of an image, so both directions share slices
// instead of copying.
type Snapshot struct {
	// NFrames is the physical memory size in frames.
	NFrames int
	// Frames is the frame metadata, flattened chunk by chunk; it has
	// exactly NFrames entries.
	Frames []Frame
	// FreeList is the allocator free list; order is significant (the
	// allocator pops from the back, LIFO).
	FreeList []arch.FrameNum
	// Next is the bump pointer.
	Next arch.FrameNum
	// Stats is the cumulative allocator statistics.
	Stats Stats
}

// SnapshotState flattens the allocator state. The returned slices alias no
// live chunk (the frame array is freshly assembled), except that a
// caller must still treat the snapshot as read-only while encoding.
func (m *PhysMem) SnapshotState() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	flat := make([]Frame, m.nframes)
	for i, c := range m.chunks {
		copy(flat[i*chunkFrames:], c)
	}
	s := Snapshot{
		NFrames:  m.nframes,
		Frames:   flat,
		FreeList: append([]arch.FrameNum(nil), m.freeList...),
		Next:     m.next,
		Stats:    m.stats,
	}
	s.Stats.ByKind = make(map[FrameKind]int, len(m.stats.ByKind))
	for k, v := range m.stats.ByKind {
		s.Stats.ByKind[k] = v
	}
	return s
}

// Restore rebuilds a PhysMem from a snapshot. The chunk slices alias
// s.Frames without copying and the PhysMem starts with no chunk
// ownership, exactly like the survivor of a Fork: the first write to any
// chunk copies it out of the snapshot buffer. That makes Restore safe
// over memory-mapped image files — the mapping is never written.
func Restore(s Snapshot) (*PhysMem, error) {
	if s.NFrames <= 0 || len(s.Frames) != s.NFrames {
		return nil, fmt.Errorf("mem: snapshot has %d frame entries for %d frames", len(s.Frames), s.NFrames)
	}
	if int(s.Next) > s.NFrames {
		return nil, fmt.Errorf("mem: snapshot bump pointer %d beyond %d frames", s.Next, s.NFrames)
	}
	nChunks := (s.NFrames + chunkFrames - 1) / chunkFrames
	m := &PhysMem{
		nframes:  s.NFrames,
		chunks:   make([][]Frame, nChunks),
		owned:    make([]bool, nChunks),
		freeList: append([]arch.FrameNum(nil), s.FreeList...),
		next:     s.Next,
		stats:    s.Stats,
	}
	for i := range m.chunks {
		lo := i * chunkFrames
		hi := lo + chunkFrames
		if hi > s.NFrames {
			hi = s.NFrames
		}
		m.chunks[i] = s.Frames[lo:hi:hi]
	}
	m.stats.ByKind = make(map[FrameKind]int, len(s.Stats.ByKind))
	for k, v := range s.Stats.ByKind {
		m.stats.ByKind[k] = v
	}
	for _, fn := range m.freeList {
		if int(fn) >= s.NFrames {
			return nil, fmt.Errorf("mem: snapshot free list entry %d beyond %d frames", fn, s.NFrames)
		}
	}
	return m, nil
}
