package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestAllocFree(t *testing.T) {
	m := New(8)
	n, err := m.Alloc(FrameAnon)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	f := m.Frame(n)
	if f.Kind != FrameAnon {
		t.Errorf("Kind = %v, want anon", f.Kind)
	}
	if f.MapCount != 0 {
		t.Errorf("fresh frame MapCount = %d, want 0", f.MapCount)
	}
	m.Free(n)
	if m.Frame(n).Kind != FrameFree {
		t.Errorf("freed frame kind = %v, want free", m.Frame(n).Kind)
	}
}

func TestExhaustion(t *testing.T) {
	m := New(2)
	if _, err := m.Alloc(FrameAnon); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(FrameAnon); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(FrameAnon); err == nil {
		t.Fatal("third Alloc from a 2-frame memory should fail")
	}
}

func TestFreeListReuse(t *testing.T) {
	m := New(2)
	a, _ := m.Alloc(FramePageTable)
	b, _ := m.Alloc(FrameAnon)
	m.Free(a)
	c, err := m.Alloc(FramePageCache)
	if err != nil {
		t.Fatalf("Alloc after Free: %v", err)
	}
	if c != a {
		t.Errorf("expected freed frame %d to be reused, got %d", a, c)
	}
	if m.Frame(c).Kind != FramePageCache {
		t.Errorf("reused frame kind = %v, want pagecache", m.Frame(c).Kind)
	}
	_ = b
}

func TestAllocFreeKindRejected(t *testing.T) {
	m := New(1)
	if _, err := m.Alloc(FrameFree); err == nil {
		t.Fatal("Alloc(FrameFree) should fail")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m := New(1)
	n, _ := m.Alloc(FrameAnon)
	m.Free(n)
	defer func() {
		if recover() == nil {
			t.Error("double free should panic")
		}
	}()
	m.Free(n)
}

func TestFreeMappedPanics(t *testing.T) {
	m := New(1)
	n, _ := m.Alloc(FrameAnon)
	m.Get(n)
	defer func() {
		if recover() == nil {
			t.Error("freeing a mapped frame should panic")
		}
	}()
	m.Free(n)
}

func TestGetPut(t *testing.T) {
	m := New(1)
	n, _ := m.Alloc(FramePageTable)
	if got := m.Get(n); got != 1 {
		t.Errorf("Get = %d, want 1", got)
	}
	if got := m.Get(n); got != 2 {
		t.Errorf("Get = %d, want 2", got)
	}
	if got := m.Put(n); got != 1 {
		t.Errorf("Put = %d, want 1", got)
	}
	if got := m.MapCount(n); got != 1 {
		t.Errorf("MapCount = %d, want 1", got)
	}
	if got := m.Put(n); got != 0 {
		t.Errorf("Put = %d, want 0", got)
	}
}

func TestPutUnderflowPanics(t *testing.T) {
	m := New(1)
	n, _ := m.Alloc(FramePageTable)
	defer func() {
		if recover() == nil {
			t.Error("Put below zero should panic")
		}
	}()
	m.Put(n)
}

func TestStats(t *testing.T) {
	m := New(4)
	a, _ := m.Alloc(FramePageTable)
	_, _ = m.Alloc(FrameAnon)
	_, _ = m.Alloc(FrameAnon)
	m.Free(a)
	s := m.Stats()
	if s.Allocated != 3 {
		t.Errorf("Allocated = %d, want 3", s.Allocated)
	}
	if s.Freed != 1 {
		t.Errorf("Freed = %d, want 1", s.Freed)
	}
	if s.InUse != 2 {
		t.Errorf("InUse = %d, want 2", s.InUse)
	}
	if s.ByKind[FrameAnon] != 2 {
		t.Errorf("ByKind[anon] = %d, want 2", s.ByKind[FrameAnon])
	}
	if s.ByKind[FramePageTable] != 0 {
		t.Errorf("ByKind[pagetable] = %d, want 0", s.ByKind[FramePageTable])
	}
	if got := m.InUseByKind(FrameAnon); got != 2 {
		t.Errorf("InUseByKind(anon) = %d, want 2", got)
	}
}

func TestStatsSnapshotIsolated(t *testing.T) {
	m := New(2)
	_, _ = m.Alloc(FrameAnon)
	s := m.Stats()
	s.ByKind[FrameAnon] = 99
	if m.Stats().ByKind[FrameAnon] != 1 {
		t.Error("mutating a stats snapshot must not affect the allocator")
	}
}

// TestAllocUniqueProperty checks that a random interleaving of allocs and
// frees never hands out the same frame twice while it is live.
func TestAllocUniqueProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		m := New(64)
		live := make(map[arch.FrameNum]bool)
		var order []arch.FrameNum
		for _, alloc := range ops {
			if alloc || len(order) == 0 {
				n, err := m.Alloc(FrameAnon)
				if err != nil {
					continue // exhausted; acceptable
				}
				if live[n] {
					return false // double allocation of a live frame
				}
				live[n] = true
				order = append(order, n)
			} else {
				n := order[len(order)-1]
				order = order[:len(order)-1]
				delete(live, n)
				m.Free(n)
			}
		}
		return m.Stats().InUse == len(live)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFrameKindString(t *testing.T) {
	for k := FrameFree; k <= FrameKernel+1; k++ {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
}

func TestAllocRangeContiguousAligned(t *testing.T) {
	m := New(128)
	// Disturb the bump pointer so alignment skipping is exercised.
	a, _ := m.Alloc(FrameAnon)
	_ = a
	base, err := m.AllocRange(16, 16, FramePageCache)
	if err != nil {
		t.Fatal(err)
	}
	if base%16 != 0 {
		t.Errorf("base %d not 16-frame aligned", base)
	}
	for i := 0; i < 16; i++ {
		f := m.Frame(base + arch.FrameNum(i))
		if f.Kind != FramePageCache {
			t.Fatalf("frame %d kind = %v", base+arch.FrameNum(i), f.Kind)
		}
	}
	// Frames skipped for alignment are recycled by ordinary Alloc.
	n, err := m.Alloc(FrameAnon)
	if err != nil {
		t.Fatal(err)
	}
	if n >= base {
		t.Errorf("skipped frame should be reused, got %d (range base %d)", n, base)
	}
}

func TestAllocRangeExhaustion(t *testing.T) {
	m := New(20)
	if _, err := m.AllocRange(32, 16, FramePageCache); err == nil {
		t.Error("range beyond memory should fail")
	}
	if _, err := m.AllocRange(0, 16, FramePageCache); err == nil {
		t.Error("zero-length range should fail")
	}
	if _, err := m.AllocRange(16, 16, FrameFree); err == nil {
		t.Error("free-kind range should fail")
	}
}
