// Package mem implements the simulated physical memory substrate: a page
// frame allocator and per-frame metadata. Frame metadata mirrors the parts
// of the Linux struct page that the shared-address-translation design
// relies on — in particular the mapcount field, which the paper reuses to
// maintain the number of processes sharing a page-table page.
//
// Frame metadata is stored in fixed-size chunks that a Fork shares
// copy-on-write between the parent and the child PhysMem: a chunk is
// copied the first time either side writes any frame in it, so a forked
// machine that never touches a region of physical memory never pays for
// its metadata (the checkpoint/fork facility in internal/checkpoint is
// built on this).
package mem

import (
	"fmt"
	"sync"

	"repro/internal/arch"
)

// FrameKind records what a physical frame is currently used for, for
// accounting and debugging.
type FrameKind uint8

const (
	// FrameFree marks an unallocated frame.
	FrameFree FrameKind = iota
	// FrameAnon holds anonymous user memory.
	FrameAnon
	// FramePageCache holds a file-backed page shared via the page cache.
	FramePageCache
	// FramePageTable holds a level-2 page-table page (PTP): the pair of
	// hardware and Linux-shadow 256-entry tables occupying one 4KB page.
	FramePageTable
	// FrameKernel holds kernel text or data.
	FrameKernel
)

// String names the frame kind.
func (k FrameKind) String() string {
	switch k {
	case FrameFree:
		return "free"
	case FrameAnon:
		return "anon"
	case FramePageCache:
		return "pagecache"
	case FramePageTable:
		return "pagetable"
	case FrameKernel:
		return "kernel"
	default:
		return "unknown"
	}
}

// Frame is the metadata kept for one 4KB physical page frame.
type Frame struct {
	// Num is the frame number.
	Num arch.FrameNum
	// Kind is the current use of the frame.
	Kind FrameKind
	// MapCount counts users of the frame. For anonymous and page-cache
	// frames it is the number of PTEs mapping the frame; for page-table
	// pages it is the number of processes sharing the PTP, exactly as
	// the paper reuses the existing mapcount field of the PTP's page
	// structure.
	MapCount int
}

// Stats reports cumulative allocator activity.
type Stats struct {
	// Allocated counts every successful Alloc call.
	Allocated uint64
	// Freed counts every Free call.
	Freed uint64
	// InUse is the number of frames currently allocated.
	InUse int
	// ByKind is the number of frames currently allocated per kind.
	ByKind map[FrameKind]int
}

// chunkFrames is the number of frames whose metadata shares one
// copy-on-write chunk. 4096 frames of metadata is ~100KB: small enough
// that a single dirtied frame does not drag much dead weight along,
// large enough that a full copy of physical memory is a few dozen chunk
// headers.
const chunkFrames = 4096

// PhysMem is the physical memory allocator. The zero value is not usable;
// construct with New.
type PhysMem struct {
	mu      sync.Mutex
	nframes int
	// chunks[i] holds the metadata for frames [i*chunkFrames,
	// (i+1)*chunkFrames). owned[i] records whether this PhysMem may
	// write chunk i in place; after a Fork both sides drop ownership of
	// every chunk and re-earn it by copying on first write.
	chunks   [][]Frame
	owned    []bool
	freeList []arch.FrameNum
	next     arch.FrameNum
	stats    Stats
}

// New creates a physical memory of the given number of 4KB frames.
func New(frames int) *PhysMem {
	if frames <= 0 {
		panic(fmt.Sprintf("mem: non-positive frame count %d", frames))
	}
	nChunks := (frames + chunkFrames - 1) / chunkFrames
	m := &PhysMem{
		nframes: frames,
		chunks:  make([][]Frame, nChunks),
		owned:   make([]bool, nChunks),
		stats:   Stats{ByKind: make(map[FrameKind]int)},
	}
	for i := range m.chunks {
		n := frames - i*chunkFrames
		if n > chunkFrames {
			n = chunkFrames
		}
		m.chunks[i] = make([]Frame, n)
		m.owned[i] = true
	}
	return m
}

// Fork returns a copy-on-write duplicate of this physical memory: frame
// metadata chunks are shared by reference and both sides lose write
// ownership, so the first mutation of a chunk — on either side — copies
// it. Allocator bookkeeping (free list, bump pointer, stats) is copied
// eagerly; it is tiny compared to the frame array.
func (m *PhysMem) Fork() *PhysMem {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.owned {
		m.owned[i] = false
	}
	f := &PhysMem{
		nframes:  m.nframes,
		chunks:   append([][]Frame(nil), m.chunks...),
		owned:    make([]bool, len(m.owned)),
		freeList: append([]arch.FrameNum(nil), m.freeList...),
		next:     m.next,
		stats:    m.stats,
	}
	f.stats.ByKind = make(map[FrameKind]int, len(m.stats.ByKind))
	for k, v := range m.stats.ByKind {
		f.stats.ByKind[k] = v
	}
	return f
}

// NumFrames returns the total number of frames in this physical memory.
func (m *PhysMem) NumFrames() int { return m.nframes }

// writableLocked returns the metadata for frame n from a chunk this
// PhysMem owns, copying the chunk first if it is still shared with a
// fork ancestor or descendant.
func (m *PhysMem) writableLocked(n arch.FrameNum) *Frame {
	if int(n) >= m.nframes {
		panic(fmt.Sprintf("mem: frame %d out of range (%d frames)", n, m.nframes))
	}
	ci := int(n) / chunkFrames
	if !m.owned[ci] {
		c := make([]Frame, len(m.chunks[ci]))
		copy(c, m.chunks[ci])
		m.chunks[ci] = c
		m.owned[ci] = true
	}
	return &m.chunks[ci][int(n)%chunkFrames]
}

// frameLocked returns the metadata for frame n for reading only; the
// chunk may still be shared with another PhysMem.
func (m *PhysMem) frameLocked(n arch.FrameNum) *Frame {
	if int(n) >= m.nframes {
		panic(fmt.Sprintf("mem: frame %d out of range (%d frames)", n, m.nframes))
	}
	return &m.chunks[int(n)/chunkFrames][int(n)%chunkFrames]
}

// Alloc allocates one frame for the given use. It returns an error when
// physical memory is exhausted.
func (m *PhysMem) Alloc(kind FrameKind) (arch.FrameNum, error) {
	if kind == FrameFree {
		return 0, fmt.Errorf("mem: cannot allocate a frame as %v", kind)
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	var n arch.FrameNum
	switch {
	case len(m.freeList) > 0:
		n = m.freeList[len(m.freeList)-1]
		m.freeList = m.freeList[:len(m.freeList)-1]
	case int(m.next) < m.nframes:
		n = m.next
		m.next++
	default:
		return 0, fmt.Errorf("mem: out of physical memory (%d frames)", m.nframes)
	}
	f := m.writableLocked(n)
	f.Num = n
	f.Kind = kind
	f.MapCount = 0
	m.stats.Allocated++
	m.stats.InUse++
	m.stats.ByKind[kind]++
	return n, nil
}

// AllocRange allocates n physically contiguous frames whose base is
// aligned to align frames, as required for ARM 64KB large-page mappings
// (16 contiguous, aligned frames). Contiguity comes from the bump region;
// frames skipped for alignment go to the free list.
func (m *PhysMem) AllocRange(n, align int, kind FrameKind) (arch.FrameNum, error) {
	if kind == FrameFree {
		return 0, fmt.Errorf("mem: cannot allocate a range as %v", kind)
	}
	if n <= 0 || align <= 0 {
		return 0, fmt.Errorf("mem: invalid range request n=%d align=%d", n, align)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	base := m.next
	if rem := int(base) % align; rem != 0 {
		base += arch.FrameNum(align - rem)
	}
	if int(base)+n > m.nframes {
		return 0, fmt.Errorf("mem: out of contiguous physical memory (%d frames)", m.nframes)
	}
	for f := m.next; f < base; f++ {
		m.freeList = append(m.freeList, f)
	}
	m.next = base + arch.FrameNum(n)
	for i := 0; i < n; i++ {
		fr := m.writableLocked(base + arch.FrameNum(i))
		fr.Num = base + arch.FrameNum(i)
		fr.Kind = kind
		fr.MapCount = 0
		m.stats.Allocated++
		m.stats.InUse++
		m.stats.ByKind[kind]++
	}
	return base, nil
}

// Free releases a frame back to the allocator. Freeing a frame that is
// already free or still mapped is a programming error and panics, since a
// simulated kernel double-free means the simulation itself is wrong.
func (m *PhysMem) Free(n arch.FrameNum) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.frameLocked(n)
	if f.Kind == FrameFree {
		panic(fmt.Sprintf("mem: double free of frame %d", n))
	}
	if f.MapCount != 0 {
		panic(fmt.Sprintf("mem: freeing frame %d with mapcount %d", n, f.MapCount))
	}
	f = m.writableLocked(n)
	m.stats.ByKind[f.Kind]--
	f.Kind = FrameFree
	m.stats.Freed++
	m.stats.InUse--
	m.freeList = append(m.freeList, n)
}

// Frame returns the metadata for frame n. Callers may mutate MapCount
// through the returned pointer, so the frame's chunk is privatized
// first; the pointer stays valid until the next Fork of this PhysMem.
func (m *PhysMem) Frame(n arch.FrameNum) *Frame {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writableLocked(n)
}

// Get is like MapCount bookkeeping in Linux: it increments the frame's
// user count and returns the new count.
func (m *PhysMem) Get(n arch.FrameNum) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.frameLocked(n)
	if f.Kind == FrameFree {
		panic(fmt.Sprintf("mem: get on free frame %d", n))
	}
	f = m.writableLocked(n)
	f.MapCount++
	return f.MapCount
}

// Put decrements the frame's user count and returns the new count. It does
// not free the frame; the caller decides whether a zero count means the
// frame should be reclaimed (a page-cache frame, for example, survives at
// count zero until its file is truncated).
func (m *PhysMem) Put(n arch.FrameNum) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.frameLocked(n)
	if f.Kind == FrameFree {
		panic(fmt.Sprintf("mem: put on free frame %d", n))
	}
	if f.MapCount <= 0 {
		panic(fmt.Sprintf("mem: put on frame %d with mapcount %d", n, f.MapCount))
	}
	f = m.writableLocked(n)
	f.MapCount--
	return f.MapCount
}

// MapCount returns the frame's current user count.
func (m *PhysMem) MapCount(n arch.FrameNum) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frameLocked(n).MapCount
}

// Stats returns a snapshot of allocator statistics.
func (m *PhysMem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.ByKind = make(map[FrameKind]int, len(m.stats.ByKind))
	for k, v := range m.stats.ByKind {
		s.ByKind[k] = v
	}
	return s
}

// InUseByKind returns the number of frames currently allocated for kind.
func (m *PhysMem) InUseByKind(kind FrameKind) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats.ByKind[kind]
}

// SharedChunks reports how many metadata chunks this PhysMem does not
// own (i.e. still shares with a fork relative). Test helper for the
// zero-copy fork guarantees.
func (m *PhysMem) SharedChunks() (shared, total int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, own := range m.owned {
		if !own {
			shared++
		}
	}
	return shared, len(m.owned)
}
