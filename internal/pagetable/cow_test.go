// Tests for the simulator-level copy-on-write sharing of PTE arrays
// between a page table and its checkpoint clones: a clone shares storage
// until either side writes, the first write privatizes exactly the
// written table, and the other side's view never changes.

package pagetable

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/mem"
)

// buildPT makes a page table with two populated L2 tables.
func buildPT(t *testing.T) (*PageTable, *mem.PhysMem) {
	t.Helper()
	phys := mem.New(4096)
	pt, err := New(phys, geoARM)
	if err != nil {
		t.Fatal(err)
	}
	for _, va := range []arch.VirtAddr{0x1000, 0x2000, 0x400000} {
		if _, err := pt.EnsureLeafForVA(va, 1); err != nil {
			t.Fatal(err)
		}
		f, err := phys.Alloc(mem.FrameAnon)
		if err != nil {
			t.Fatal(err)
		}
		pt.Set(va, PTE{Frame: f, Flags: arch.PTEValid | arch.PTEWrite})
	}
	return pt, phys
}

func TestCloneSharesStorageUntilWrite(t *testing.T) {
	pt, phys := buildPT(t)
	tables := make(map[*LeafTable]*LeafTable)
	clone := pt.CloneShared(phys, tables, nil)

	for i := 0; i < geoARM.NumSlots(); i++ {
		a, b := pt.Slot(i), clone.Slot(i)
		if (a.Table == nil) != (b.Table == nil) {
			t.Fatalf("l1[%d]: clone shape differs", i)
		}
		if a.Table == nil {
			continue
		}
		if !a.Table.SharesStorage(b.Table) {
			t.Errorf("l1[%d]: clone does not share PTE storage before any write", i)
		}
		if a.Table.Populated() != b.Table.Populated() {
			t.Errorf("l1[%d]: populated %d != %d", i, a.Table.Populated(), b.Table.Populated())
		}
	}

	// Writing the clone privatizes only the covering table and leaves
	// the original's entry untouched.
	const va = arch.VirtAddr(0x1000)
	orig := pt.PTEAt(va)
	before := *orig
	clone.Set(va, PTE{Frame: 99, Flags: arch.PTEValid})
	if pt.Slot(geoARM.Slot(va)).Table.SharesStorage(clone.Slot(geoARM.Slot(va)).Table) {
		t.Error("written table still shares storage with the original")
	}
	if *orig != before {
		t.Errorf("original PTE changed by clone write: %+v -> %+v", before, *orig)
	}
	if got := clone.PTEAt(va); got.Frame != 99 {
		t.Errorf("clone PTE frame = %d, want 99", got.Frame)
	}
	other := geoARM.Slot(arch.VirtAddr(0x400000))
	if !pt.Slot(other).Table.SharesStorage(clone.Slot(other).Table) {
		t.Error("unwritten table lost its shared storage")
	}
}

func TestOriginalWritePrivatizesToo(t *testing.T) {
	pt, phys := buildPT(t)
	clone := pt.CloneShared(phys, make(map[*LeafTable]*LeafTable), nil)

	// COW is symmetric: the original writing must not leak into the
	// clone either (the image is cloned from a live system at capture).
	const va = arch.VirtAddr(0x2000)
	cloneBefore := *clone.PTEAt(va)
	pt.Set(va, PTE{Frame: 77, Flags: arch.PTEValid})
	if got := *clone.PTEAt(va); got != cloneBefore {
		t.Errorf("clone PTE changed by original write: %+v -> %+v", cloneBefore, got)
	}
}

func TestPTEForWritePrivatizes(t *testing.T) {
	pt, phys := buildPT(t)
	clone := pt.CloneShared(phys, make(map[*LeafTable]*LeafTable), nil)

	const va = arch.VirtAddr(0x1000)
	origBefore := *pt.PTEAt(va)
	p := clone.PTEForWrite(va)
	p.Flags &^= arch.PTEWrite
	if got := *pt.PTEAt(va); got != origBefore {
		t.Errorf("original PTE changed through clone's PTEForWrite: %+v -> %+v", origBefore, got)
	}
	if clone.PTEAt(va).Writable() {
		t.Error("clone PTE still writable after flag edit")
	}
}

func TestWriteProtectTablePrivatizes(t *testing.T) {
	pt, phys := buildPT(t)
	clone := pt.CloneShared(phys, make(map[*LeafTable]*LeafTable), nil)

	const va = arch.VirtAddr(0x1000)
	idx := geoARM.Slot(va)
	if !pt.PTEAt(va).Writable() {
		t.Fatal("fixture PTE should start writable")
	}
	clone.WriteProtectTable(idx)
	if !pt.PTEAt(va).Writable() {
		t.Error("WriteProtectTable on the clone write-protected the original")
	}
	if clone.PTEAt(va).Writable() {
		t.Error("WriteProtectTable left the clone writable")
	}
}

func TestSharedPTPClonesOnce(t *testing.T) {
	// An L2Table attached to two address spaces (a simulated-kernel
	// shared PTP) must resolve to ONE clone via the identity map, so the
	// intra-machine sharing structure survives the fork.
	pt, phys := buildPT(t)
	pt2, err := New(phys, geoARM)
	if err != nil {
		t.Fatal(err)
	}
	const va = arch.VirtAddr(0x1000)
	idx := geoARM.Slot(va)
	pt2.AttachShared(idx, pt.Slot(idx).Table, 1)

	tables := make(map[*LeafTable]*LeafTable)
	c1 := pt.CloneShared(phys, tables, nil)
	c2 := pt2.CloneShared(phys, tables, nil)
	if c1.Slot(idx).Table != c2.Slot(idx).Table {
		t.Error("shared PTP cloned into two distinct tables; sharing structure lost")
	}
}
