package pagetable

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/mem"
)

// SlotSnapshot is the serializable form of one SlotEntry: the leaf table
// is named by its index in the machine-wide table list (-1 when the slot
// is invalid), so simulated-kernel PTP sharing — two slots of two
// address spaces naming the same table — survives a round trip exactly
// like CloneShared's identity map preserves it across a fork.
//
//satlint:frozen stored slot arrays are cast in place over the mapped image file
type SlotSnapshot struct {
	Table    int32
	Domain   uint8
	NeedCopy bool
}

// Snapshot is the serializable state of one PageTable. PTE contents are
// not here: they live in the machine-wide leaf-table list, stored as one
// flat fixed-stride section (see internal/imagestore).
type Snapshot struct {
	Slots      []SlotSnapshot
	RootFrames []arch.FrameNum
	MidFrames  []arch.FrameNum
	Stats      Stats
}

// SnapshotState flattens the table. index resolves a leaf table to its
// machine-wide identity index, registering it on first sight; the
// encoder passes one index closure for the whole machine so shared
// tables serialize once.
func (pt *PageTable) SnapshotState(index func(*LeafTable) int32) Snapshot {
	s := Snapshot{
		Slots:      make([]SlotSnapshot, len(pt.slots)),
		RootFrames: pt.rootFrames,
		MidFrames:  pt.midFrames,
		Stats:      pt.stats,
	}
	for i, e := range pt.slots {
		ss := SlotSnapshot{Table: -1, Domain: e.Domain, NeedCopy: e.NeedCopy}
		if e.Table != nil {
			ss.Table = index(e.Table)
		}
		s.Slots[i] = ss
	}
	return s
}

// SnapshotPTEs exposes the table's PTE array for serialization. The
// returned slice is the live array: strictly read-only.
func (t *LeafTable) SnapshotPTEs() []PTE { return t.ptes }

// RestoreLeafTable rebuilds a leaf table whose PTE array aliases ptes
// copy-on-write — the restored table behaves exactly like the survivor
// of a CloneShared: the first mutation copies the array, so ptes may
// point straight into a memory-mapped image file. The populated count is
// recomputed from the entries.
func RestoreLeafTable(frame arch.FrameNum, ptes []PTE, entryBytes int) *LeafTable {
	t := &LeafTable{Frame: frame, ptes: ptes, cow: true, entryBytes: entryBytes}
	for i := range ptes {
		if ptes[i].Valid() {
			t.populated++
		}
	}
	return t
}

// Restore rebuilds a page table from its snapshot against the restored
// physical memory and the machine-wide leaf-table list.
func Restore(phys *mem.PhysMem, geo arch.Geometry, s Snapshot, tables []*LeafTable) (*PageTable, error) {
	if len(s.Slots) != geo.NumSlots() {
		return nil, fmt.Errorf("pagetable: snapshot has %d slots, geometry wants %d", len(s.Slots), geo.NumSlots())
	}
	pt := &PageTable{
		phys:       phys,
		geo:        geo,
		slots:      make([]SlotEntry, len(s.Slots)),
		rootFrames: s.RootFrames,
		midFrames:  s.MidFrames,
		stats:      s.Stats,
	}
	for i, ss := range s.Slots {
		e := SlotEntry{Domain: ss.Domain, NeedCopy: ss.NeedCopy}
		if ss.Table >= 0 {
			if int(ss.Table) >= len(tables) {
				return nil, fmt.Errorf("pagetable: slot %d names table %d of %d", i, ss.Table, len(tables))
			}
			e.Table = tables[ss.Table]
		}
		pt.slots[i] = e
	}
	return pt, nil
}
