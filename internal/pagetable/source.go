package pagetable

import (
	"repro/internal/obs"
)

// Compile-time check: every PageTable is an obs.Source.
var _ obs.Source = (*PageTable)(nil)

// Name implements obs.Source. Per-process tables are usually wrapped in
// obs.Prefix with a process identity when registered.
func (pt *PageTable) Name() string { return "pagetable" }

// Snapshot implements obs.Source.
func (pt *PageTable) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"ptps_allocated": pt.stats.PTPsAllocated,
		"ptps_freed":     pt.stats.PTPsFreed,
		"ptes_set":       pt.stats.PTEsSet,
		"ptes_cleared":   pt.stats.PTEsCleared,
	}
}

// ResetStats zeroes the counters without touching any mappings.
func (pt *PageTable) ResetStats() { pt.stats = Stats{} }

// Reset implements obs.Source.
func (pt *PageTable) Reset() { pt.ResetStats() }
