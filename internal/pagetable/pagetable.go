// Package pagetable implements the simulated Linux hierarchical page
// table over an architecture-neutral geometry (arch.Geometry).
//
// The unit of management and sharing is the "slot": the span of virtual
// space translated by one leaf page-table page (PTP) — 1MB under ARMv7's
// two-level format, 2MB under Sv39's three-level format. A PageTable
// holds one SlotEntry per slot; each valid entry points at a LeafTable
// whose PTEs map 4KB pages. For two-level formats the slot array is the
// root table itself; for three-level formats the root and mid levels
// above the slots carry no software state, so the simulator materializes
// them only as physical frames (allocated up front — a 4GB space needs
// at most a handful of mid tables) whose entry addresses the modeled
// hardware walker touches.
//
// On ARMv7 virtually all bits of a hardware level-2 entry are reserved
// for the MMU — the architecture provides neither a referenced nor a
// dirty bit — so the Linux VM system maintains a parallel software entry
// for each hardware entry, and a pair of hardware plus a pair of
// software tables occupy one 4KB PTP. The simulator folds the hardware
// and shadow entries into one PTE struct but preserves the physical
// layout for cache modeling: each PTP occupies one physical frame, and
// the hardware words of its entries have stable physical addresses
// inside that frame (entry width per the geometry).
//
// Sharing a PTP between address spaces is expressed by pointing two slot
// entries at the same LeafTable. The sharer count lives in the mapcount
// of the PTP's physical frame, exactly as the paper reuses the existing
// mapcount field of the PTP's page structure. The spare NEED_COPY
// software bit in the slot entry marks the PTP as shared and managed
// copy-on-write.
//
// Orthogonally to that simulated NEED_COPY protocol, the simulator itself
// shares PTE arrays copy-on-write between a checkpointed machine image
// and its forks (internal/checkpoint): CloneShared duplicates a page
// table in O(slots), leaving every PTE array shared with a cow mark that
// the mutating operations clear by copying the array on first write. The
// simulated kernel never observes this second level of sharing — reads
// and counter bookkeeping are unaffected.
package pagetable

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/arch"
	"repro/internal/mem"
)

// PTE is one leaf entry: the hardware translation word plus the parallel
// Linux software word.
type PTE struct {
	// Frame is the physical frame mapped by this entry.
	Frame arch.FrameNum
	// Flags holds the hardware permission and attribute bits.
	Flags arch.PTEFlags
	// Soft holds the Linux-maintained software bits.
	Soft arch.SoftFlags
}

// Valid reports whether the entry holds a live translation.
func (p PTE) Valid() bool { return p.Flags&arch.PTEValid != 0 }

// Writable reports whether the hardware entry currently permits user writes.
func (p PTE) Writable() bool { return p.Flags&arch.PTEWrite != 0 }

// Global reports whether the hardware global bit is set.
func (p PTE) Global() bool { return p.Flags&arch.PTEGlobal != 0 }

// LeafTable is a leaf-level table: one page-table page.
type LeafTable struct {
	// Frame is the physical frame holding this PTP. TLB-miss page walks
	// load hardware PTEs from this frame into the cache hierarchy, so a
	// PTP shared by many processes occupies one set of cache lines
	// where private page tables would occupy one set per process.
	Frame arch.FrameNum

	// ptes holds the entries (Geometry.LeafEntries of them). A
	// checkpoint fork shares the backing array between the image's
	// table and the fork's (cow set on both); mutators privatize with
	// ensurePrivate before writing. Within one machine the simulated
	// kernel's own PTP sharing still works by pointing two slot entries
	// at the same *LeafTable, so privatizing in place keeps the write
	// visible to every simulated sharer.
	ptes []PTE
	cow  bool

	// entryBytes is the width of one hardware entry, for PTEPhysAddr.
	entryBytes int

	populated int
}

// newLeafTable returns an empty private table backed by frame f.
func newLeafTable(f arch.FrameNum, entries, entryBytes int) *LeafTable {
	return &LeafTable{Frame: f, ptes: make([]PTE, entries), entryBytes: entryBytes}
}

// ensurePrivate gives the table its own PTE array, copying the shared
// one on first write after a checkpoint fork.
func (t *LeafTable) ensurePrivate() {
	if t.cow {
		arr := make([]PTE, len(t.ptes))
		copy(arr, t.ptes)
		t.ptes = arr
		t.cow = false
	}
}

// CloneArena batches the LeafTable clone nodes of one machine clone: they
// are the most numerous small objects a checkpoint fork allocates (one
// per referenced PTP per address space), and they all share the clone's
// lifetime. See the alloc package for the lifetime rules.
type CloneArena = alloc.Arena[LeafTable]

// cloneShared returns a struct copy of t whose PTE array is shared
// copy-on-write with t; both sides are marked cow. The node comes from
// the arena when one is supplied.
func (t *LeafTable) cloneShared(nodes *CloneArena) *LeafTable {
	t.cow = true
	var c *LeafTable
	if nodes != nil {
		c = nodes.New()
	} else {
		c = new(LeafTable)
	}
	*c = *t
	return c
}

// Populated returns the number of valid entries in the table.
func (t *LeafTable) Populated() int { return t.populated }

// Len returns the number of entries in the table.
func (t *LeafTable) Len() int { return len(t.ptes) }

// PTE returns entry i by value.
func (t *LeafTable) PTE(i int) PTE { return t.ptes[i] }

// SharesStorage reports whether t and o currently share one PTE array.
// Test helper for the checkpoint fork's zero-copy guarantee.
func (t *LeafTable) SharesStorage(o *LeafTable) bool {
	return &t.ptes[0] == &o.ptes[0]
}

// PTEPhysAddr returns the physical address of the hardware word of entry
// idx inside this PTP, used to model the cache footprint of page walks.
func (t *LeafTable) PTEPhysAddr(idx int) arch.PhysAddr {
	return arch.FrameAddr(t.Frame) + arch.PhysAddr(idx*t.entryBytes)
}

// SlotEntry is the table entry addressing one slot's leaf table, paired
// with its software state. Under a two-level format it is a first-level
// entry; under a three-level format it is the mid-level entry (the
// levels above carry no software state).
type SlotEntry struct {
	// Table points to the leaf table, nil when the entry is invalid.
	// Two address spaces sharing a PTP hold pointers to the same
	// LeafTable.
	Table *LeafTable
	// Domain is the protection-domain field recorded in the entry and
	// inherited by its leaf entries when they are loaded into the TLB.
	// Always zero on architectures without domains.
	Domain uint8
	// NeedCopy is the spare software bit marking the leaf PTP as
	// shared: any modification must first unshare (copy) the PTP.
	NeedCopy bool
}

// Valid reports whether the entry points at a leaf table.
func (e SlotEntry) Valid() bool { return e.Table != nil }

// Stats counts page-table activity for one address space.
type Stats struct {
	// PTPsAllocated counts leaf tables allocated on behalf of this
	// address space (including tables allocated during unsharing).
	PTPsAllocated uint64
	// PTPsFreed counts leaf tables released by this address space.
	PTPsFreed uint64
	// PTEsSet counts entries written (populated).
	PTEsSet uint64
	// PTEsCleared counts entries invalidated.
	PTEsCleared uint64
}

// WalkPath lists the physical addresses of the table entries a hardware
// walk of one virtual address touches, outermost level first: the root
// entry, the mid entry for three-level formats, and the leaf PTE when
// the slot has a leaf table. The cpu model replays these through the
// cache hierarchy on every TLB miss.
type WalkPath struct {
	Addrs [3]arch.PhysAddr
	N     int
}

// PageTable is one process's translation table.
type PageTable struct {
	phys  *mem.PhysMem
	geo   arch.Geometry
	slots []SlotEntry
	// rootFrames holds the physical frames of the root table (four for
	// ARMv7's 16KB table, one for Sv39).
	rootFrames []arch.FrameNum
	// midFrames holds the physical frames of the mid-level tables,
	// indexed by root-entry index; empty for two-level formats. They
	// are allocated up front — the modeled 4GB space needs at most a
	// few — so attach/ensure paths have no mid-level error cases.
	midFrames []arch.FrameNum
	stats     Stats
}

// New allocates an empty page table for the given geometry, including
// the physical frames of the root table and (for three-level formats)
// the mid-level tables.
func New(phys *mem.PhysMem, geo arch.Geometry) (*PageTable, error) {
	pt := &PageTable{
		phys:  phys,
		geo:   geo,
		slots: make([]SlotEntry, geo.NumSlots()),
	}
	nmid := 0
	if geo.MidEntries != 0 {
		nmid = (geo.NumSlots() + geo.MidEntries - 1) / geo.MidEntries
	}
	frames := make([]arch.FrameNum, 0, geo.RootFrames+nmid)
	for i := 0; i < geo.RootFrames+nmid; i++ {
		f, err := phys.Alloc(mem.FramePageTable)
		if err != nil {
			for _, g := range frames {
				phys.Free(g)
			}
			return nil, fmt.Errorf("pagetable: allocating table frame: %w", err)
		}
		frames = append(frames, f)
	}
	pt.rootFrames = frames[:geo.RootFrames]
	pt.midFrames = frames[geo.RootFrames:]
	return pt, nil
}

// CloneShared duplicates this page table for a checkpoint fork in
// O(slots): every referenced LeafTable is cloned as a struct sharing its
// PTE array copy-on-write with the original. tables is the clone's
// identity map — a LeafTable referenced from several address spaces (a
// simulated-kernel shared PTP) must map to one clone so the sharing
// structure survives the fork; pass the same map for every page table
// cloned into one machine, and the same arena (nil means plain
// allocation) — nodes minted from it belong to the cloned machine.
// phys is the fork's physical memory.
func (pt *PageTable) CloneShared(phys *mem.PhysMem, tables map[*LeafTable]*LeafTable, nodes *CloneArena) *PageTable {
	c := &PageTable{
		phys:       phys,
		geo:        pt.geo,
		slots:      make([]SlotEntry, len(pt.slots)),
		rootFrames: pt.rootFrames,
		midFrames:  pt.midFrames,
		stats:      pt.stats,
	}
	for i := range pt.slots {
		e := pt.slots[i]
		if e.Table != nil {
			ct, ok := tables[e.Table]
			if !ok {
				ct = e.Table.cloneShared(nodes)
				tables[e.Table] = ct
			}
			e.Table = ct
		}
		c.slots[i] = e
	}
	return c
}

// Stats returns a snapshot of this table's counters.
func (pt *PageTable) Stats() Stats { return pt.stats }

// Geometry returns the table's architecture geometry.
func (pt *PageTable) Geometry() arch.Geometry { return pt.geo }

// NumSlots returns the number of leaf-table slots.
func (pt *PageTable) NumSlots() int { return len(pt.slots) }

// SlotIndex returns the slot index covering va.
func (pt *PageTable) SlotIndex(va arch.VirtAddr) int { return pt.geo.Slot(va) }

// RootEntryPhysAddr returns the physical address of the hardware word of
// the root-table entry above slot idx, used to model the first page-walk
// access.
func (pt *PageTable) RootEntryPhysAddr(idx int) arch.PhysAddr {
	ridx := pt.geo.RootIndex(idx)
	epf := pt.geo.RootEntriesPerFrame()
	frame := pt.rootFrames[ridx/epf]
	return arch.FrameAddr(frame) + arch.PhysAddr((ridx%epf)*pt.geo.EntryBytes)
}

// midEntryPhysAddr returns the physical address of the mid-level entry
// addressing slot idx. Three-level formats only.
func (pt *PageTable) midEntryPhysAddr(idx int) arch.PhysAddr {
	frame := pt.midFrames[pt.geo.RootIndex(idx)]
	return arch.FrameAddr(frame) + arch.PhysAddr(pt.geo.MidIndex(idx)*pt.geo.EntryBytes)
}

// Slot returns a pointer to the entry of slot idx.
func (pt *PageTable) Slot(idx int) *SlotEntry {
	return &pt.slots[idx]
}

// SlotForVA returns a pointer to the slot entry covering va.
func (pt *PageTable) SlotForVA(va arch.VirtAddr) *SlotEntry {
	return &pt.slots[pt.geo.Slot(va)]
}

// EnsureLeaf returns the leaf table covering slot idx, allocating a
// fresh, empty PTP when the slot is invalid. The new PTP's sharer count
// is set to one. The domain is recorded in the slot entry.
func (pt *PageTable) EnsureLeaf(idx int, domain uint8) (*LeafTable, error) {
	e := &pt.slots[idx]
	if e.Table != nil {
		return e.Table, nil
	}
	f, err := pt.phys.Alloc(mem.FramePageTable)
	if err != nil {
		return nil, fmt.Errorf("pagetable: allocating PTP for slot %d: %w", idx, err)
	}
	t := newLeafTable(f, pt.geo.LeafEntries, pt.geo.EntryBytes)
	pt.phys.Get(f) // sharer count 1: this address space
	e.Table = t
	e.Domain = domain
	e.NeedCopy = false
	pt.stats.PTPsAllocated++
	return t, nil
}

// EnsureLeafForVA is EnsureLeaf for the slot covering va.
func (pt *PageTable) EnsureLeafForVA(va arch.VirtAddr, domain uint8) (*LeafTable, error) {
	return pt.EnsureLeaf(pt.geo.Slot(va), domain)
}

// AttachShared points slot idx at an existing PTP owned by another
// address space, marking it NEED_COPY and incrementing the PTP's sharer
// count. The caller is responsible for having write-protected the
// table's writable entries first.
func (pt *PageTable) AttachShared(idx int, t *LeafTable, domain uint8) {
	e := &pt.slots[idx]
	if e.Table != nil {
		panic(fmt.Sprintf("pagetable: AttachShared over live slot %d", idx))
	}
	pt.phys.Get(t.Frame)
	e.Table = t
	e.Domain = domain
	e.NeedCopy = true
}

// SharerCount returns the number of address spaces referencing the PTP in
// slot idx, or zero when the slot is invalid.
func (pt *PageTable) SharerCount(idx int) int {
	e := &pt.slots[idx]
	if e.Table == nil {
		return 0
	}
	return pt.phys.MapCount(e.Table.Frame)
}

// DetachLeaf disconnects slot idx from its PTP, decrementing the sharer
// count. When this address space was the last sharer the PTP's frame is
// freed. It returns the number of remaining sharers.
func (pt *PageTable) DetachLeaf(idx int) int {
	e := &pt.slots[idx]
	if e.Table == nil {
		panic(fmt.Sprintf("pagetable: DetachLeaf on invalid slot %d", idx))
	}
	t := e.Table
	e.Table = nil
	e.NeedCopy = false
	remaining := pt.phys.Put(t.Frame)
	if remaining == 0 {
		pt.phys.Free(t.Frame)
		pt.stats.PTPsFreed++
	}
	return remaining
}

// Lookup walks the table for va and returns the leaf PTE together with
// the slot entry. A missing slot or leaf translation reports a
// translation fault; permission checking against the access kind is the
// MMU's job (see the tlb and cpu packages), not the walker's.
func (pt *PageTable) Lookup(va arch.VirtAddr) (PTE, SlotEntry, arch.FaultStatus) {
	e := pt.slots[pt.geo.Slot(va)]
	if e.Table == nil {
		return PTE{}, e, arch.FaultTranslation
	}
	pte := e.Table.ptes[pt.geo.LeafIndex(va)]
	if !pte.Valid() {
		return pte, e, arch.FaultTranslation
	}
	return pte, e, arch.FaultNone
}

// Walk is Lookup plus the physical path the hardware walker takes: the
// root entry is always read; for three-level formats the mid entry is
// read next (mid tables exist from birth, so the walk always reaches
// it); the leaf PTE is read only when the slot has a leaf table.
func (pt *PageTable) Walk(va arch.VirtAddr) (PTE, SlotEntry, arch.FaultStatus, WalkPath) {
	idx := pt.geo.Slot(va)
	var path WalkPath
	path.Addrs[0] = pt.RootEntryPhysAddr(idx)
	path.N = 1
	if pt.geo.MidEntries != 0 {
		path.Addrs[path.N] = pt.midEntryPhysAddr(idx)
		path.N++
	}
	e := pt.slots[idx]
	if e.Table == nil {
		return PTE{}, e, arch.FaultTranslation, path
	}
	path.Addrs[path.N] = e.Table.PTEPhysAddr(pt.geo.LeafIndex(va))
	path.N++
	pte := e.Table.ptes[pt.geo.LeafIndex(va)]
	if !pte.Valid() {
		return pte, e, arch.FaultTranslation, path
	}
	return pte, e, arch.FaultNone, path
}

// PTEAt returns a pointer to the leaf PTE for va, or nil when no leaf
// table covers va, for reading. Mutating through the pointer bypasses
// the populated-count bookkeeping and — after a checkpoint fork — would
// write through a PTE array still shared with the immutable image;
// mutators use Set, Clear, or PTEForWrite.
func (pt *PageTable) PTEAt(va arch.VirtAddr) *PTE {
	e := pt.slots[pt.geo.Slot(va)]
	if e.Table == nil {
		return nil
	}
	return &e.Table.ptes[pt.geo.LeafIndex(va)]
}

// PTEForWrite returns a pointer to the leaf PTE for va after privatizing
// the covering table's PTE array, so in-place flag edits (write
// protection, permission changes) never leak into a checkpoint image
// sharing the array. The caller must not flip the entry's Valid bit
// through the pointer — that would corrupt the populated count; use Set
// and Clear for that.
func (pt *PageTable) PTEForWrite(va arch.VirtAddr) *PTE {
	e := pt.slots[pt.geo.Slot(va)]
	if e.Table == nil {
		return nil
	}
	e.Table.ensurePrivate()
	return &e.Table.ptes[pt.geo.LeafIndex(va)]
}

// Set writes the leaf PTE for va. The covering leaf table must exist
// (callers allocate it with EnsureLeaf), and shared tables must have
// been unshared first; writing through a NEED_COPY entry is a bug in the
// simulated kernel and panics.
func (pt *PageTable) Set(va arch.VirtAddr, pte PTE) {
	e := &pt.slots[pt.geo.Slot(va)]
	if e.Table == nil {
		panic(fmt.Sprintf("pagetable: Set at %#x without leaf table", va))
	}
	if e.NeedCopy {
		panic(fmt.Sprintf("pagetable: Set at %#x through NEED_COPY entry", va))
	}
	e.Table.ensurePrivate()
	slot := &e.Table.ptes[pt.geo.LeafIndex(va)]
	wasValid := slot.Valid()
	*slot = pte
	if pte.Valid() && !wasValid {
		e.Table.populated++
		pt.stats.PTEsSet++
	} else if !pte.Valid() && wasValid {
		e.Table.populated--
		pt.stats.PTEsCleared++
	} else if pte.Valid() {
		pt.stats.PTEsSet++
	}
}

// SetShared writes the leaf PTE for va through a shared (NEED_COPY)
// table. This is the one legal mutation of a shared PTP: populating a
// previously invalid entry on a read fault, which makes the new
// translation immediately visible to all sharers and thereby eliminates
// their soft faults. Overwriting a valid entry through a shared table
// panics.
func (pt *PageTable) SetShared(va arch.VirtAddr, pte PTE) {
	e := &pt.slots[pt.geo.Slot(va)]
	if e.Table == nil {
		panic(fmt.Sprintf("pagetable: SetShared at %#x without leaf table", va))
	}
	slot := &e.Table.ptes[pt.geo.LeafIndex(va)]
	if slot.Valid() {
		panic(fmt.Sprintf("pagetable: SetShared over valid entry at %#x", va))
	}
	if !pte.Valid() {
		panic(fmt.Sprintf("pagetable: SetShared with invalid PTE at %#x", va))
	}
	if pte.Writable() {
		panic(fmt.Sprintf("pagetable: SetShared with writable PTE at %#x", va))
	}
	e.Table.ensurePrivate()
	slot = &e.Table.ptes[pt.geo.LeafIndex(va)]
	*slot = pte
	e.Table.populated++
	pt.stats.PTEsSet++
}

// SetLarge establishes a large-page mapping at va, which must be
// large-page aligned: Geometry.PagesPerLarge consecutive, aligned leaf
// entries are written, each a replica carrying the base frame of the
// large physical block and the PTELarge attribute — sixteen 64KB-page
// replicas on ARMv7, a leaf table's worth of megapage replicas on Sv39.
func (pt *PageTable) SetLarge(va arch.VirtAddr, baseFrame arch.FrameNum, flags arch.PTEFlags, soft arch.SoftFlags) {
	if va&(pt.geo.LargePageSize()-1) != 0 {
		panic(fmt.Sprintf("pagetable: SetLarge at unaligned %#x", va))
	}
	if int(baseFrame)%pt.geo.PagesPerLarge() != 0 {
		panic(fmt.Sprintf("pagetable: SetLarge with unaligned base frame %d", baseFrame))
	}
	pte := PTE{Frame: baseFrame, Flags: flags | arch.PTELarge, Soft: soft}
	for i := 0; i < pt.geo.PagesPerLarge(); i++ {
		pt.Set(va+arch.VirtAddr(i*arch.PageSize), pte)
	}
}

// Clear invalidates the leaf PTE for va and returns the previous entry.
// Clearing through a shared table panics: the kernel must unshare first.
func (pt *PageTable) Clear(va arch.VirtAddr) PTE {
	e := &pt.slots[pt.geo.Slot(va)]
	if e.Table == nil {
		return PTE{}
	}
	if e.NeedCopy {
		panic(fmt.Sprintf("pagetable: Clear at %#x through NEED_COPY entry", va))
	}
	old := e.Table.ptes[pt.geo.LeafIndex(va)]
	if old.Valid() {
		e.Table.ensurePrivate()
		e.Table.ptes[pt.geo.LeafIndex(va)] = PTE{}
		e.Table.populated--
		pt.stats.PTEsCleared++
	}
	return old
}

// UnsharePTP performs the unsharing procedure of Figure 6 on slot idx
// and returns the number of PTEs copied. When the sharer count is one,
// the current address space is the only user: the NEED_COPY bit is
// simply cleared and no copy happens. Otherwise a new, empty PTP is
// allocated, all valid PTEs are copied from the shared PTP into it, the
// slot entry is repointed, and the shared PTP's sharer count is
// decremented. The caller is responsible for the accompanying TLB flush.
func (pt *PageTable) UnsharePTP(idx int) (ptesCopied int, err error) {
	return pt.UnsharePTPFunc(idx, nil)
}

// UnsharePTPFunc is UnsharePTP with a copy filter: when keep is non-nil,
// only valid PTEs for which keep returns true are copied into the private
// PTP. This implements the design alternative of Section 3.1.3 — reducing
// the cost of unsharing by copying only the PTEs that have their reference
// bit set or that stock fork would have copied. PTEs filtered out simply
// soft-fault again later.
func (pt *PageTable) UnsharePTPFunc(idx int, keep func(PTE) bool) (ptesCopied int, err error) {
	e := &pt.slots[idx]
	if e.Table == nil || !e.NeedCopy {
		return 0, nil
	}
	if pt.phys.MapCount(e.Table.Frame) == 1 {
		e.NeedCopy = false
		return 0, nil
	}
	shared := e.Table
	f, err := pt.phys.Alloc(mem.FramePageTable)
	if err != nil {
		return 0, fmt.Errorf("pagetable: unshare slot %d: %w", idx, err)
	}
	fresh := newLeafTable(f, len(shared.ptes), shared.entryBytes)
	for i := range shared.ptes {
		if shared.ptes[i].Valid() && (keep == nil || keep(shared.ptes[i])) {
			fresh.ptes[i] = shared.ptes[i]
			fresh.populated++
			ptesCopied++
		}
	}
	pt.phys.Get(f)
	pt.phys.Put(shared.Frame)
	e.Table = fresh
	e.NeedCopy = false
	pt.stats.PTPsAllocated++
	pt.stats.PTEsSet += uint64(ptesCopied)
	return ptesCopied, nil
}

// WriteProtectTable clears the hardware write bit on every writable entry
// of the PTP in slot idx, recording SoftCOW on each, and returns how many
// entries were protected. This prepares a not-yet-shared PTP for sharing.
func (pt *PageTable) WriteProtectTable(idx int) int {
	e := &pt.slots[idx]
	if e.Table == nil {
		return 0
	}
	n := 0
	for i := range e.Table.ptes {
		if p := e.Table.ptes[i]; p.Valid() && p.Writable() {
			e.Table.ensurePrivate()
			p := &e.Table.ptes[i]
			p.Flags &^= arch.PTEWrite
			p.Soft |= arch.SoftCOW
			n++
		}
	}
	return n
}

// ReleaseAll detaches every live slot, freeing exclusively owned PTPs
// and decrementing sharer counts on shared ones, and finally frees the
// mid-level and root table frames. Used at process exit.
func (pt *PageTable) ReleaseAll() {
	for i := range pt.slots {
		if pt.slots[i].Table != nil {
			pt.DetachLeaf(i)
		}
	}
	for _, f := range pt.midFrames {
		pt.phys.Free(f)
	}
	for _, f := range pt.rootFrames {
		pt.phys.Free(f)
	}
}

// LivePTPs returns the number of slots currently pointing at a leaf
// table.
func (pt *PageTable) LivePTPs() int {
	n := 0
	for i := range pt.slots {
		if pt.slots[i].Table != nil {
			n++
		}
	}
	return n
}

// SharedPTPs returns the number of slots whose PTP is marked NEED_COPY
// (shared copy-on-write with at least this address space).
func (pt *PageTable) SharedPTPs() int {
	n := 0
	for i := range pt.slots {
		if pt.slots[i].Table != nil && pt.slots[i].NeedCopy {
			n++
		}
	}
	return n
}

// PopulatedPTEs returns the total number of valid leaf entries.
func (pt *PageTable) PopulatedPTEs() int {
	n := 0
	for i := range pt.slots {
		if t := pt.slots[i].Table; t != nil {
			n += t.populated
		}
	}
	return n
}
