// Package pagetable implements the simulated Linux/ARM two-level
// hierarchical page table.
//
// The first (root) level has 4096 entries, each covering 1MB of virtual
// address space; the second (leaf) level has 256 entries, each mapping a
// 4KB page. Because virtually all bits of a hardware level-2 entry are
// reserved for the MMU — ARM provides neither a referenced nor a dirty
// bit — the Linux VM system maintains a parallel software entry for each
// hardware entry. First-level entries and second-level tables are managed
// in pairs, so that a pair of hardware and a pair of software level-2
// tables occupy one 4KB physical page, the page-table page (PTP). The
// simulator folds the hardware and shadow entries into one PTE struct but
// preserves the physical layout for cache modeling: each PTP occupies one
// physical frame, and the hardware words of its entries have stable
// physical addresses inside that frame.
//
// Sharing a PTP between address spaces is expressed by pointing two
// level-1 entries at the same L2Table. The sharer count lives in the
// mapcount of the PTP's physical frame, exactly as the paper reuses the
// existing mapcount field of the PTP's page structure. The spare NEED_COPY
// software bit in the level-1 entry marks the PTP as shared and managed
// copy-on-write.
//
// Orthogonally to that simulated NEED_COPY protocol, the simulator itself
// shares PTE arrays copy-on-write between a checkpointed machine image
// and its forks (internal/checkpoint): CloneShared duplicates a page
// table in O(level-1 entries), leaving every 1KB PTE array shared with a
// cow mark that the mutating operations clear by copying the array on
// first write. The simulated kernel never observes this second level of
// sharing — reads and counter bookkeeping are unaffected.
package pagetable

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/arch"
	"repro/internal/mem"
)

// PTE is one second-level entry: the hardware translation word plus the
// parallel Linux software word.
type PTE struct {
	// Frame is the physical frame mapped by this entry.
	Frame arch.FrameNum
	// Flags holds the hardware permission and attribute bits.
	Flags arch.PTEFlags
	// Soft holds the Linux-maintained software bits.
	Soft arch.SoftFlags
}

// Valid reports whether the entry holds a live translation.
func (p PTE) Valid() bool { return p.Flags&arch.PTEValid != 0 }

// Writable reports whether the hardware entry currently permits user writes.
func (p PTE) Writable() bool { return p.Flags&arch.PTEWrite != 0 }

// Global reports whether the hardware global bit is set.
func (p PTE) Global() bool { return p.Flags&arch.PTEGlobal != 0 }

// L2Table is a second-level table: one page-table page.
type L2Table struct {
	// Frame is the physical frame holding this PTP. TLB-miss page walks
	// load hardware PTEs from this frame into the cache hierarchy, so a
	// PTP shared by many processes occupies one set of cache lines
	// where private page tables would occupy one set per process.
	Frame arch.FrameNum

	// ptes points at the 256 entries. A checkpoint fork shares the
	// array between the image's table and the fork's (cow set on both);
	// mutators privatize with ensurePrivate before writing. Within one
	// machine the simulated kernel's own PTP sharing still works by
	// pointing two L1 entries at the same *L2Table, so privatizing in
	// place keeps the write visible to every simulated sharer.
	ptes *[arch.L2Entries]PTE
	cow  bool

	populated int
}

// newL2Table returns an empty private table backed by frame f.
func newL2Table(f arch.FrameNum) *L2Table {
	return &L2Table{Frame: f, ptes: new([arch.L2Entries]PTE)}
}

// ensurePrivate gives the table its own PTE array, copying the shared
// one on first write after a checkpoint fork.
func (t *L2Table) ensurePrivate() {
	if t.cow {
		arr := *t.ptes
		t.ptes = &arr
		t.cow = false
	}
}

// CloneArena batches the L2Table clone nodes of one machine clone: they
// are the most numerous small objects a checkpoint fork allocates (one
// per referenced PTP per address space), and they all share the clone's
// lifetime. See the alloc package for the lifetime rules.
type CloneArena = alloc.Arena[L2Table]

// cloneShared returns a struct copy of t whose PTE array is shared
// copy-on-write with t; both sides are marked cow. The node comes from
// the arena when one is supplied.
func (t *L2Table) cloneShared(nodes *CloneArena) *L2Table {
	t.cow = true
	var c *L2Table
	if nodes != nil {
		c = nodes.New()
	} else {
		c = new(L2Table)
	}
	*c = *t
	return c
}

// Populated returns the number of valid entries in the table.
func (t *L2Table) Populated() int { return t.populated }

// PTE returns entry i by value.
func (t *L2Table) PTE(i int) PTE { return t.ptes[i] }

// SharesStorage reports whether t and o currently share one PTE array.
// Test helper for the checkpoint fork's zero-copy guarantee.
func (t *L2Table) SharesStorage(o *L2Table) bool { return t.ptes == o.ptes }

// PTEPhysAddr returns the physical address of the hardware word of entry
// l2idx inside this PTP, used to model the cache footprint of page walks.
func (t *L2Table) PTEPhysAddr(l2idx int) arch.PhysAddr {
	return arch.FrameAddr(t.Frame) + arch.PhysAddr(l2idx)*4
}

// L1Entry is one first-level entry paired with its software state.
type L1Entry struct {
	// Table points to the second-level table, nil when the entry is
	// invalid. Two address spaces sharing a PTP hold pointers to the
	// same L2Table.
	Table *L2Table
	// Domain is the ARM domain field recorded in the level-1 entry and
	// inherited by its level-2 entries when they are loaded into the TLB.
	Domain uint8
	// NeedCopy is the spare software bit marking the level-2 PTP as
	// shared: any modification must first unshare (copy) the PTP.
	NeedCopy bool
}

// Valid reports whether the entry points at a second-level table.
func (e L1Entry) Valid() bool { return e.Table != nil }

// Stats counts page-table activity for one address space.
type Stats struct {
	// PTPsAllocated counts level-2 tables allocated on behalf of this
	// address space (including tables allocated during unsharing).
	PTPsAllocated uint64
	// PTPsFreed counts level-2 tables released by this address space.
	PTPsFreed uint64
	// PTEsSet counts entries written (populated).
	PTEsSet uint64
	// PTEsCleared counts entries invalidated.
	PTEsCleared uint64
}

// PageTable is one process's two-level translation table.
type PageTable struct {
	phys     *mem.PhysMem
	l1       [arch.L1Entries]L1Entry
	l1Frames [4]arch.FrameNum // the 16KB root table occupies four frames
	stats    Stats
}

// New allocates an empty page table, including the four physical frames of
// the 16KB first-level table.
func New(phys *mem.PhysMem) (*PageTable, error) {
	pt := &PageTable{phys: phys}
	for i := range pt.l1Frames {
		f, err := phys.Alloc(mem.FramePageTable)
		if err != nil {
			for j := 0; j < i; j++ {
				phys.Free(pt.l1Frames[j])
			}
			return nil, fmt.Errorf("pagetable: allocating L1 frame: %w", err)
		}
		pt.l1Frames[i] = f
	}
	return pt, nil
}

// CloneShared duplicates this page table for a checkpoint fork in
// O(level-1 entries): every referenced L2Table is cloned as a struct
// sharing its PTE array copy-on-write with the original. tables is the
// clone's identity map — an L2Table referenced from several address
// spaces (a simulated-kernel shared PTP) must map to one clone so the
// sharing structure survives the fork; pass the same map for every page
// table cloned into one machine, and the same arena (nil means plain
// allocation) — nodes minted from it belong to the cloned machine.
// phys is the fork's physical memory.
func (pt *PageTable) CloneShared(phys *mem.PhysMem, tables map[*L2Table]*L2Table, nodes *CloneArena) *PageTable {
	c := &PageTable{phys: phys, l1Frames: pt.l1Frames, stats: pt.stats}
	for i := range pt.l1 {
		e := pt.l1[i]
		if e.Table != nil {
			ct, ok := tables[e.Table]
			if !ok {
				ct = e.Table.cloneShared(nodes)
				tables[e.Table] = ct
			}
			e.Table = ct
		}
		c.l1[i] = e
	}
	return c
}

// Stats returns a snapshot of this table's counters.
func (pt *PageTable) Stats() Stats { return pt.stats }

// L1EntryPhysAddr returns the physical address of the hardware word of
// first-level entry l1idx, used to model the first page-walk access.
func (pt *PageTable) L1EntryPhysAddr(l1idx int) arch.PhysAddr {
	const entriesPerFrame = arch.PageSize / 4 // 1024 four-byte entries
	frame := pt.l1Frames[l1idx/entriesPerFrame]
	return arch.FrameAddr(frame) + arch.PhysAddr(l1idx%entriesPerFrame)*4
}

// L1 returns a pointer to first-level entry l1idx.
func (pt *PageTable) L1(l1idx int) *L1Entry {
	return &pt.l1[l1idx]
}

// L1ForVA returns a pointer to the first-level entry covering va.
func (pt *PageTable) L1ForVA(va arch.VirtAddr) *L1Entry {
	return &pt.l1[arch.L1Index(va)]
}

// EnsureL2 returns the second-level table covering first-level slot l1idx,
// allocating a fresh, empty PTP when the slot is invalid. The new PTP's
// sharer count is set to one. The domain is recorded in the level-1 entry.
func (pt *PageTable) EnsureL2(l1idx int, domain uint8) (*L2Table, error) {
	e := &pt.l1[l1idx]
	if e.Table != nil {
		return e.Table, nil
	}
	f, err := pt.phys.Alloc(mem.FramePageTable)
	if err != nil {
		return nil, fmt.Errorf("pagetable: allocating PTP for slot %d: %w", l1idx, err)
	}
	t := newL2Table(f)
	pt.phys.Get(f) // sharer count 1: this address space
	e.Table = t
	e.Domain = domain
	e.NeedCopy = false
	pt.stats.PTPsAllocated++
	return t, nil
}

// AttachShared points first-level slot l1idx at an existing PTP owned by
// another address space, marking it NEED_COPY and incrementing the PTP's
// sharer count. The caller is responsible for having write-protected the
// table's writable entries first.
func (pt *PageTable) AttachShared(l1idx int, t *L2Table, domain uint8) {
	e := &pt.l1[l1idx]
	if e.Table != nil {
		panic(fmt.Sprintf("pagetable: AttachShared over live slot %d", l1idx))
	}
	pt.phys.Get(t.Frame)
	e.Table = t
	e.Domain = domain
	e.NeedCopy = true
}

// SharerCount returns the number of address spaces referencing the PTP in
// slot l1idx, or zero when the slot is invalid.
func (pt *PageTable) SharerCount(l1idx int) int {
	e := &pt.l1[l1idx]
	if e.Table == nil {
		return 0
	}
	return pt.phys.MapCount(e.Table.Frame)
}

// DetachL2 disconnects first-level slot l1idx from its PTP, decrementing
// the sharer count. When this address space was the last sharer the PTP's
// frame is freed. It returns the number of remaining sharers.
func (pt *PageTable) DetachL2(l1idx int) int {
	e := &pt.l1[l1idx]
	if e.Table == nil {
		panic(fmt.Sprintf("pagetable: DetachL2 on invalid slot %d", l1idx))
	}
	t := e.Table
	e.Table = nil
	e.NeedCopy = false
	remaining := pt.phys.Put(t.Frame)
	if remaining == 0 {
		pt.phys.Free(t.Frame)
		pt.stats.PTPsFreed++
	}
	return remaining
}

// Lookup walks the table for va and returns the leaf PTE together with
// the level-1 entry. A missing level-1 or level-2 translation reports a
// translation fault; permission checking against the access kind is the
// MMU's job (see the tlb and cpu packages), not the walker's.
func (pt *PageTable) Lookup(va arch.VirtAddr) (PTE, L1Entry, arch.FaultStatus) {
	e := pt.l1[arch.L1Index(va)]
	if e.Table == nil {
		return PTE{}, e, arch.FaultTranslation
	}
	pte := e.Table.ptes[arch.L2Index(va)]
	if !pte.Valid() {
		return pte, e, arch.FaultTranslation
	}
	return pte, e, arch.FaultNone
}

// PTEAt returns a pointer to the leaf PTE for va, or nil when no
// second-level table covers va, for reading. Mutating through the
// pointer bypasses the populated-count bookkeeping and — after a
// checkpoint fork — would write through a PTE array still shared with
// the immutable image; mutators use Set, Clear, or PTEForWrite.
func (pt *PageTable) PTEAt(va arch.VirtAddr) *PTE {
	e := pt.l1[arch.L1Index(va)]
	if e.Table == nil {
		return nil
	}
	return &e.Table.ptes[arch.L2Index(va)]
}

// PTEForWrite returns a pointer to the leaf PTE for va after privatizing
// the covering table's PTE array, so in-place flag edits (write
// protection, permission changes) never leak into a checkpoint image
// sharing the array. The caller must not flip the entry's Valid bit
// through the pointer — that would corrupt the populated count; use Set
// and Clear for that.
func (pt *PageTable) PTEForWrite(va arch.VirtAddr) *PTE {
	e := pt.l1[arch.L1Index(va)]
	if e.Table == nil {
		return nil
	}
	e.Table.ensurePrivate()
	return &e.Table.ptes[arch.L2Index(va)]
}

// Set writes the leaf PTE for va. The covering second-level table must
// exist (callers allocate it with EnsureL2), and shared tables must have
// been unshared first; writing through a NEED_COPY entry is a bug in the
// simulated kernel and panics.
func (pt *PageTable) Set(va arch.VirtAddr, pte PTE) {
	e := &pt.l1[arch.L1Index(va)]
	if e.Table == nil {
		panic(fmt.Sprintf("pagetable: Set at %#x without L2 table", va))
	}
	if e.NeedCopy {
		panic(fmt.Sprintf("pagetable: Set at %#x through NEED_COPY entry", va))
	}
	e.Table.ensurePrivate()
	slot := &e.Table.ptes[arch.L2Index(va)]
	wasValid := slot.Valid()
	*slot = pte
	if pte.Valid() && !wasValid {
		e.Table.populated++
		pt.stats.PTEsSet++
	} else if !pte.Valid() && wasValid {
		e.Table.populated--
		pt.stats.PTEsCleared++
	} else if pte.Valid() {
		pt.stats.PTEsSet++
	}
}

// SetShared writes the leaf PTE for va through a shared (NEED_COPY) table.
// This is the one legal mutation of a shared PTP: populating a previously
// invalid entry on a read fault, which makes the new translation
// immediately visible to all sharers and thereby eliminates their soft
// faults. Overwriting a valid entry through a shared table panics.
func (pt *PageTable) SetShared(va arch.VirtAddr, pte PTE) {
	e := &pt.l1[arch.L1Index(va)]
	if e.Table == nil {
		panic(fmt.Sprintf("pagetable: SetShared at %#x without L2 table", va))
	}
	slot := &e.Table.ptes[arch.L2Index(va)]
	if slot.Valid() {
		panic(fmt.Sprintf("pagetable: SetShared over valid entry at %#x", va))
	}
	if !pte.Valid() {
		panic(fmt.Sprintf("pagetable: SetShared with invalid PTE at %#x", va))
	}
	if pte.Writable() {
		panic(fmt.Sprintf("pagetable: SetShared with writable PTE at %#x", va))
	}
	e.Table.ensurePrivate()
	slot = &e.Table.ptes[arch.L2Index(va)]
	*slot = pte
	e.Table.populated++
	pt.stats.PTEsSet++
}

// SetLarge establishes a 64KB large-page mapping at va, which must be
// 64KB aligned: sixteen consecutive, aligned level-2 entries are written,
// each a replica carrying the base frame of the 64KB physical block and
// the PTELarge attribute, exactly as the ARM architecture requires.
func (pt *PageTable) SetLarge(va arch.VirtAddr, baseFrame arch.FrameNum, flags arch.PTEFlags, soft arch.SoftFlags) {
	if va&(arch.LargePageSize-1) != 0 {
		panic(fmt.Sprintf("pagetable: SetLarge at unaligned %#x", va))
	}
	if baseFrame%arch.PagesPerLargePage != 0 {
		panic(fmt.Sprintf("pagetable: SetLarge with unaligned base frame %d", baseFrame))
	}
	pte := PTE{Frame: baseFrame, Flags: flags | arch.PTELarge, Soft: soft}
	for i := 0; i < arch.PagesPerLargePage; i++ {
		pt.Set(va+arch.VirtAddr(i*arch.PageSize), pte)
	}
}

// Clear invalidates the leaf PTE for va and returns the previous entry.
// Clearing through a shared table panics: the kernel must unshare first.
func (pt *PageTable) Clear(va arch.VirtAddr) PTE {
	e := &pt.l1[arch.L1Index(va)]
	if e.Table == nil {
		return PTE{}
	}
	if e.NeedCopy {
		panic(fmt.Sprintf("pagetable: Clear at %#x through NEED_COPY entry", va))
	}
	old := e.Table.ptes[arch.L2Index(va)]
	if old.Valid() {
		e.Table.ensurePrivate()
		e.Table.ptes[arch.L2Index(va)] = PTE{}
		e.Table.populated--
		pt.stats.PTEsCleared++
	}
	return old
}

// UnsharePTP performs the unsharing procedure of Figure 6 on first-level
// slot l1idx and returns the number of PTEs copied. When the sharer count
// is one, the current address space is the only user: the NEED_COPY bit is
// simply cleared and no copy happens. Otherwise a new, empty PTP is
// allocated, all valid PTEs are copied from the shared PTP into it, the
// level-1 entry is repointed, and the shared PTP's sharer count is
// decremented. The caller is responsible for the accompanying TLB flush.
func (pt *PageTable) UnsharePTP(l1idx int) (ptesCopied int, err error) {
	return pt.UnsharePTPFunc(l1idx, nil)
}

// UnsharePTPFunc is UnsharePTP with a copy filter: when keep is non-nil,
// only valid PTEs for which keep returns true are copied into the private
// PTP. This implements the design alternative of Section 3.1.3 — reducing
// the cost of unsharing by copying only the PTEs that have their reference
// bit set or that stock fork would have copied. PTEs filtered out simply
// soft-fault again later.
func (pt *PageTable) UnsharePTPFunc(l1idx int, keep func(PTE) bool) (ptesCopied int, err error) {
	e := &pt.l1[l1idx]
	if e.Table == nil || !e.NeedCopy {
		return 0, nil
	}
	if pt.phys.MapCount(e.Table.Frame) == 1 {
		e.NeedCopy = false
		return 0, nil
	}
	shared := e.Table
	f, err := pt.phys.Alloc(mem.FramePageTable)
	if err != nil {
		return 0, fmt.Errorf("pagetable: unshare slot %d: %w", l1idx, err)
	}
	fresh := newL2Table(f)
	for i := range shared.ptes {
		if shared.ptes[i].Valid() && (keep == nil || keep(shared.ptes[i])) {
			fresh.ptes[i] = shared.ptes[i]
			fresh.populated++
			ptesCopied++
		}
	}
	pt.phys.Get(f)
	pt.phys.Put(shared.Frame)
	e.Table = fresh
	e.NeedCopy = false
	pt.stats.PTPsAllocated++
	pt.stats.PTEsSet += uint64(ptesCopied)
	return ptesCopied, nil
}

// WriteProtectTable clears the hardware write bit on every writable entry
// of the PTP in slot l1idx, recording SoftCOW on each, and returns how many
// entries were protected. This prepares a not-yet-shared PTP for sharing.
func (pt *PageTable) WriteProtectTable(l1idx int) int {
	e := &pt.l1[l1idx]
	if e.Table == nil {
		return 0
	}
	n := 0
	for i := range e.Table.ptes {
		if p := e.Table.ptes[i]; p.Valid() && p.Writable() {
			e.Table.ensurePrivate()
			p := &e.Table.ptes[i]
			p.Flags &^= arch.PTEWrite
			p.Soft |= arch.SoftCOW
			n++
		}
	}
	return n
}

// ReleaseAll detaches every live first-level slot, freeing exclusively
// owned PTPs and decrementing sharer counts on shared ones, and finally
// frees the root table's frames. Used at process exit.
func (pt *PageTable) ReleaseAll() {
	for i := range pt.l1 {
		if pt.l1[i].Table != nil {
			pt.DetachL2(i)
		}
	}
	for _, f := range pt.l1Frames {
		pt.phys.Free(f)
	}
}

// LivePTPs returns the number of first-level slots currently pointing at a
// second-level table.
func (pt *PageTable) LivePTPs() int {
	n := 0
	for i := range pt.l1 {
		if pt.l1[i].Table != nil {
			n++
		}
	}
	return n
}

// SharedPTPs returns the number of first-level slots whose PTP is marked
// NEED_COPY (shared copy-on-write with at least this address space).
func (pt *PageTable) SharedPTPs() int {
	n := 0
	for i := range pt.l1 {
		if pt.l1[i].Table != nil && pt.l1[i].NeedCopy {
			n++
		}
	}
	return n
}

// PopulatedPTEs returns the total number of valid leaf entries.
func (pt *PageTable) PopulatedPTEs() int {
	n := 0
	for i := range pt.l1 {
		if t := pt.l1[i].Table; t != nil {
			n += t.populated
		}
	}
	return n
}
