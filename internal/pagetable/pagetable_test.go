package pagetable

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/arch/armv7"
	"repro/internal/arch/sv39"
	"repro/internal/mem"
)

var (
	geoARM  = armv7.MMU().Geometry()
	geoSv39 = sv39.MMU().Geometry()
)

func newPT(t *testing.T, phys *mem.PhysMem) *PageTable {
	t.Helper()
	pt, err := New(phys, geoARM)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return pt
}

func validPTE(frame arch.FrameNum, extra arch.PTEFlags) PTE {
	return PTE{Frame: frame, Flags: arch.PTEValid | arch.PTEUser | extra}
}

func TestNewAllocatesRootFrames(t *testing.T) {
	phys := mem.New(16)
	_ = newPT(t, phys)
	if got := phys.InUseByKind(mem.FramePageTable); got != 4 {
		t.Errorf("ARMv7 root table should occupy 4 frames, got %d", got)
	}
}

func TestNewAllocatesMidFrames(t *testing.T) {
	phys := mem.New(16)
	if _, err := New(phys, geoSv39); err != nil {
		t.Fatal(err)
	}
	// One root frame plus four mid-level tables covering the 4GB window.
	if got := phys.InUseByKind(mem.FramePageTable); got != 5 {
		t.Errorf("Sv39 table skeleton should occupy 5 frames, got %d", got)
	}
}

func TestNewFailsCleanlyWhenExhausted(t *testing.T) {
	phys := mem.New(2) // not enough for the 4-frame root table
	if _, err := New(phys, geoARM); err == nil {
		t.Fatal("New should fail with 2 frames")
	}
	if got := phys.Stats().InUse; got != 0 {
		t.Errorf("failed New leaked %d frames", got)
	}
}

func TestSetLookupClear(t *testing.T) {
	for _, tc := range []struct {
		name string
		geo  arch.Geometry
	}{{"armv7", geoARM}, {"sv39", geoSv39}} {
		t.Run(tc.name, func(t *testing.T) {
			phys := mem.New(64)
			pt, err := New(phys, tc.geo)
			if err != nil {
				t.Fatal(err)
			}
			va := arch.VirtAddr(0x40001000)
			if _, _, f := pt.Lookup(va); f != arch.FaultTranslation {
				t.Fatalf("empty table lookup fault = %v, want translation", f)
			}
			if _, err := pt.EnsureLeaf(tc.geo.Slot(va), 1); err != nil {
				t.Fatal(err)
			}
			if _, _, f := pt.Lookup(va); f != arch.FaultTranslation {
				t.Fatalf("invalid PTE lookup fault = %v, want translation", f)
			}
			pt.Set(va, validPTE(7, arch.PTEWrite))
			pte, se, f := pt.Lookup(va)
			if f != arch.FaultNone {
				t.Fatalf("lookup fault = %v, want none", f)
			}
			if pte.Frame != 7 || !pte.Writable() {
				t.Errorf("pte = %+v, want frame 7 writable", pte)
			}
			if se.Domain != 1 {
				t.Errorf("domain = %d, want 1", se.Domain)
			}
			old := pt.Clear(va)
			if old.Frame != 7 {
				t.Errorf("Clear returned %+v, want frame 7", old)
			}
			if _, _, f := pt.Lookup(va); f != arch.FaultTranslation {
				t.Errorf("post-clear fault = %v, want translation", f)
			}
		})
	}
}

func TestWalkPathDepth(t *testing.T) {
	for _, tc := range []struct {
		name                string
		geo                 arch.Geometry
		missDepth, hitDepth int
	}{
		// ARMv7: root entry always read; leaf PTE only when the slot is
		// live. Sv39: mid tables exist from birth, so a miss still
		// touches root and mid.
		{"armv7", geoARM, 1, 2},
		{"sv39", geoSv39, 2, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			phys := mem.New(64)
			pt, err := New(phys, tc.geo)
			if err != nil {
				t.Fatal(err)
			}
			va := arch.VirtAddr(0x40001000)
			_, _, f, path := pt.Walk(va)
			if f != arch.FaultTranslation || path.N != tc.missDepth {
				t.Errorf("empty walk = fault %v depth %d, want translation depth %d",
					f, path.N, tc.missDepth)
			}
			if _, err := pt.EnsureLeaf(tc.geo.Slot(va), 0); err != nil {
				t.Fatal(err)
			}
			pt.Set(va, validPTE(7, 0))
			pte, _, f, path := pt.Walk(va)
			if f != arch.FaultNone || path.N != tc.hitDepth || pte.Frame != 7 {
				t.Errorf("live walk = %+v fault %v depth %d, want frame 7 depth %d",
					pte, f, path.N, tc.hitDepth)
			}
			// The leaf address is the PTE word inside the PTP frame.
			leaf := path.Addrs[path.N-1]
			want := pt.Slot(tc.geo.Slot(va)).Table.PTEPhysAddr(tc.geo.LeafIndex(va))
			if leaf != want {
				t.Errorf("leaf walk address = %#x, want %#x", leaf, want)
			}
			// All path addresses are distinct.
			seen := map[arch.PhysAddr]bool{}
			for i := 0; i < path.N; i++ {
				if seen[path.Addrs[i]] {
					t.Errorf("duplicate walk address %#x", path.Addrs[i])
				}
				seen[path.Addrs[i]] = true
			}
		})
	}
}

func TestEnsureLeafIdempotent(t *testing.T) {
	phys := mem.New(64)
	pt := newPT(t, phys)
	a, _ := pt.EnsureLeaf(5, armv7.DomainUser)
	b, _ := pt.EnsureLeaf(5, armv7.DomainUser)
	if a != b {
		t.Error("EnsureLeaf must return the same table for the same slot")
	}
	if pt.Stats().PTPsAllocated != 1 {
		t.Errorf("PTPsAllocated = %d, want 1", pt.Stats().PTPsAllocated)
	}
}

func TestPopulatedCount(t *testing.T) {
	phys := mem.New(64)
	pt := newPT(t, phys)
	tab, _ := pt.EnsureLeaf(0, armv7.DomainUser)
	pt.Set(0x0000, validPTE(1, 0))
	pt.Set(0x1000, validPTE(2, 0))
	pt.Set(0x1000, validPTE(3, 0)) // overwrite: count unchanged
	if tab.Populated() != 2 {
		t.Errorf("Populated = %d, want 2", tab.Populated())
	}
	pt.Clear(0x0000)
	if tab.Populated() != 1 {
		t.Errorf("Populated = %d, want 1", tab.Populated())
	}
	if pt.PopulatedPTEs() != 1 {
		t.Errorf("PopulatedPTEs = %d, want 1", pt.PopulatedPTEs())
	}
}

func TestAttachSharedAndSharerCount(t *testing.T) {
	phys := mem.New(64)
	parent := newPT(t, phys)
	child := newPT(t, phys)
	tab, _ := parent.EnsureLeaf(3, armv7.DomainUser)
	parent.Set(0x00300000, validPTE(9, 0))

	child.AttachShared(3, tab, armv7.DomainUser)
	if got := parent.SharerCount(3); got != 2 {
		t.Errorf("parent SharerCount = %d, want 2", got)
	}
	if got := child.SharerCount(3); got != 2 {
		t.Errorf("child SharerCount = %d, want 2", got)
	}
	if !child.Slot(3).NeedCopy {
		t.Error("attached entry must carry NEED_COPY")
	}
	// PTE populated by the parent is visible through the child.
	pte, _, f := child.Lookup(0x00300000)
	if f != arch.FaultNone || pte.Frame != 9 {
		t.Errorf("child lookup = %+v fault %v, want frame 9", pte, f)
	}
}

func TestSharedPTEVisibleToAllSharers(t *testing.T) {
	phys := mem.New(64)
	parent := newPT(t, phys)
	child := newPT(t, phys)
	tab, _ := parent.EnsureLeaf(3, armv7.DomainUser)
	child.AttachShared(3, tab, armv7.DomainUser)

	// Child populates an entry on a read fault; parent sees it at once.
	child.SetShared(0x00342000, validPTE(11, 0))
	pte, _, f := parent.Lookup(0x00342000)
	if f != arch.FaultNone || pte.Frame != 11 {
		t.Errorf("parent lookup after child SetShared = %+v fault %v", pte, f)
	}
}

func TestSetSharedRejectsWritable(t *testing.T) {
	phys := mem.New(64)
	parent := newPT(t, phys)
	child := newPT(t, phys)
	tab, _ := parent.EnsureLeaf(3, armv7.DomainUser)
	child.AttachShared(3, tab, armv7.DomainUser)
	defer func() {
		if recover() == nil {
			t.Error("SetShared with a writable PTE should panic")
		}
	}()
	child.SetShared(0x00342000, validPTE(11, arch.PTEWrite))
}

func TestSetThroughNeedCopyPanics(t *testing.T) {
	phys := mem.New(64)
	parent := newPT(t, phys)
	child := newPT(t, phys)
	tab, _ := parent.EnsureLeaf(3, armv7.DomainUser)
	child.AttachShared(3, tab, armv7.DomainUser)
	defer func() {
		if recover() == nil {
			t.Error("Set through a NEED_COPY entry should panic")
		}
	}()
	child.Set(0x00300000, validPTE(1, 0))
}

func TestWriteProtectTable(t *testing.T) {
	phys := mem.New(64)
	pt := newPT(t, phys)
	_, _ = pt.EnsureLeaf(0, armv7.DomainUser)
	pt.Set(0x0000, validPTE(1, arch.PTEWrite))
	pt.Set(0x1000, validPTE(2, 0))
	pt.Set(0x2000, validPTE(3, arch.PTEWrite))
	if got := pt.WriteProtectTable(0); got != 2 {
		t.Errorf("WriteProtectTable = %d, want 2", got)
	}
	pte, _, _ := pt.Lookup(0x0000)
	if pte.Writable() {
		t.Error("entry should have been write-protected")
	}
	if pte.Soft&arch.SoftCOW == 0 {
		t.Error("write-protected entry should be marked SoftCOW")
	}
	// Idempotent: nothing left to protect.
	if got := pt.WriteProtectTable(0); got != 0 {
		t.Errorf("second WriteProtectTable = %d, want 0", got)
	}
}

func TestUnshareLastSharerJustClearsNeedCopy(t *testing.T) {
	phys := mem.New(64)
	parent := newPT(t, phys)
	child := newPT(t, phys)
	tab, _ := parent.EnsureLeaf(3, armv7.DomainUser)
	parent.Set(0x00300000, validPTE(9, 0))
	child.AttachShared(3, tab, armv7.DomainUser)

	// Parent exits: child becomes the sole sharer.
	parent.DetachLeaf(3)
	copied, err := child.UnsharePTP(3)
	if err != nil {
		t.Fatal(err)
	}
	if copied != 0 {
		t.Errorf("sole sharer unshare copied %d PTEs, want 0", copied)
	}
	if child.Slot(3).NeedCopy {
		t.Error("NEED_COPY should be cleared")
	}
	if child.Slot(3).Table != tab {
		t.Error("sole sharer keeps the original PTP")
	}
}

func TestUnshareCopies(t *testing.T) {
	phys := mem.New(64)
	parent := newPT(t, phys)
	child := newPT(t, phys)
	tab, _ := parent.EnsureLeaf(3, armv7.DomainUser)
	parent.Set(0x00300000, validPTE(9, 0))
	parent.Set(0x00310000, validPTE(10, 0))
	child.AttachShared(3, tab, armv7.DomainUser)

	copied, err := child.UnsharePTP(3)
	if err != nil {
		t.Fatal(err)
	}
	if copied != 2 {
		t.Errorf("copied = %d, want 2", copied)
	}
	if child.Slot(3).Table == tab {
		t.Error("child must have a fresh private PTP")
	}
	if child.Slot(3).NeedCopy {
		t.Error("fresh PTP must not be NEED_COPY")
	}
	if got := parent.SharerCount(3); got != 1 {
		t.Errorf("parent sharer count = %d, want 1", got)
	}
	// The copies are real: child sees both translations privately.
	pte, _, f := child.Lookup(0x00310000)
	if f != arch.FaultNone || pte.Frame != 10 {
		t.Errorf("child post-unshare lookup = %+v fault %v", pte, f)
	}
	// Mutating child no longer affects parent.
	child.Clear(0x00300000)
	if pte, _, f := parent.Lookup(0x00300000); f != arch.FaultNone || pte.Frame != 9 {
		t.Errorf("parent entry disturbed by child clear: %+v fault %v", pte, f)
	}
}

func TestUnshareNotSharedIsNoop(t *testing.T) {
	phys := mem.New(64)
	pt := newPT(t, phys)
	_, _ = pt.EnsureLeaf(3, armv7.DomainUser)
	copied, err := pt.UnsharePTP(3)
	if err != nil || copied != 0 {
		t.Errorf("unshare of private PTP = (%d, %v), want (0, nil)", copied, err)
	}
	if copied, err := pt.UnsharePTP(4); err != nil || copied != 0 {
		t.Errorf("unshare of invalid slot = (%d, %v), want (0, nil)", copied, err)
	}
}

func TestDetachFreesWhenLast(t *testing.T) {
	phys := mem.New(64)
	parent := newPT(t, phys)
	child := newPT(t, phys)
	tab, _ := parent.EnsureLeaf(3, armv7.DomainUser)
	child.AttachShared(3, tab, armv7.DomainUser)

	before := phys.Stats().InUse
	if remaining := child.DetachLeaf(3); remaining != 1 {
		t.Errorf("remaining = %d, want 1", remaining)
	}
	if phys.Stats().InUse != before {
		t.Error("detach with remaining sharers must not free the frame")
	}
	if remaining := parent.DetachLeaf(3); remaining != 0 {
		t.Errorf("remaining = %d, want 0", remaining)
	}
	if phys.Stats().InUse != before-1 {
		t.Error("last detach must free the PTP frame")
	}
}

func TestReleaseAll(t *testing.T) {
	for _, tc := range []struct {
		name string
		geo  arch.Geometry
	}{{"armv7", geoARM}, {"sv39", geoSv39}} {
		t.Run(tc.name, func(t *testing.T) {
			phys := mem.New(64)
			pt, err := New(phys, tc.geo)
			if err != nil {
				t.Fatal(err)
			}
			_, _ = pt.EnsureLeaf(1, 0)
			_, _ = pt.EnsureLeaf(2, 0)
			pt.ReleaseAll()
			if got := phys.Stats().InUse; got != 0 {
				t.Errorf("ReleaseAll left %d frames in use", got)
			}
		})
	}
}

func TestLiveAndSharedCounts(t *testing.T) {
	phys := mem.New(64)
	parent := newPT(t, phys)
	child := newPT(t, phys)
	taba, _ := parent.EnsureLeaf(1, armv7.DomainUser)
	_, _ = parent.EnsureLeaf(2, armv7.DomainUser)
	child.AttachShared(1, taba, armv7.DomainUser)
	_, _ = child.EnsureLeaf(9, armv7.DomainUser)

	if got := parent.LivePTPs(); got != 2 {
		t.Errorf("parent LivePTPs = %d, want 2", got)
	}
	if got := child.LivePTPs(); got != 2 {
		t.Errorf("child LivePTPs = %d, want 2", got)
	}
	if got := child.SharedPTPs(); got != 1 {
		t.Errorf("child SharedPTPs = %d, want 1", got)
	}
	if got := parent.SharedPTPs(); got != 0 {
		t.Errorf("parent SharedPTPs = %d, want 0 (owner's entry is not NEED_COPY here)", got)
	}
}

func TestPTEPhysAddrStableAcrossSharers(t *testing.T) {
	phys := mem.New(64)
	parent := newPT(t, phys)
	child := newPT(t, phys)
	tab, _ := parent.EnsureLeaf(3, armv7.DomainUser)
	child.AttachShared(3, tab, armv7.DomainUser)
	// Both address spaces walk to the same physical PTE word: this is the
	// cache-deduplication property the paper measures.
	pa1 := parent.Slot(3).Table.PTEPhysAddr(0x42)
	pa2 := child.Slot(3).Table.PTEPhysAddr(0x42)
	if pa1 != pa2 {
		t.Errorf("shared PTP PTE addresses differ: %#x vs %#x", pa1, pa2)
	}
}

func TestRootEntryPhysAddrsDistinct(t *testing.T) {
	phys := mem.New(64)
	pt := newPT(t, phys)
	seen := make(map[arch.PhysAddr]bool)
	for _, idx := range []int{0, 1, 1023, 1024, 2048, 4095} {
		pa := pt.RootEntryPhysAddr(idx)
		if seen[pa] {
			t.Errorf("duplicate root entry physical address %#x for index %d", pa, idx)
		}
		seen[pa] = true
	}
}

func TestSv39SlotsShareRootEntry(t *testing.T) {
	// Two slots under the same mid table share their root entry address
	// but have distinct mid-level entry addresses.
	phys := mem.New(64)
	pt, err := New(phys, geoSv39)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := pt.RootEntryPhysAddr(0), pt.RootEntryPhysAddr(1); a != b {
		t.Errorf("slots 0 and 1 should share a root entry: %#x vs %#x", a, b)
	}
	if a, b := pt.RootEntryPhysAddr(0), pt.RootEntryPhysAddr(512); a == b {
		t.Errorf("slots 0 and 512 are under different root entries: both %#x", a)
	}
	if a, b := pt.midEntryPhysAddr(0), pt.midEntryPhysAddr(1); a == b {
		t.Errorf("slots 0 and 1 must have distinct mid entries: both %#x", a)
	}
}

func TestPTEAt(t *testing.T) {
	phys := mem.New(64)
	pt := newPT(t, phys)
	if pt.PTEAt(0x00300000) != nil {
		t.Error("PTEAt on empty slot should be nil")
	}
	_, _ = pt.EnsureLeaf(3, armv7.DomainUser)
	pt.Set(0x00300000, validPTE(9, 0))
	p := pt.PTEAt(0x00300000)
	if p == nil || p.Frame != 9 {
		t.Errorf("PTEAt = %+v, want frame 9", p)
	}
}

// TestSetClearInvariant property: after any sequence of Set/Clear on
// random pages within one slot, Populated equals the number of distinct
// live pages.
func TestSetClearInvariant(t *testing.T) {
	prop := func(ops []uint8) bool {
		phys := mem.New(256)
		pt, err := New(phys, geoARM)
		if err != nil {
			return false
		}
		if _, err := pt.EnsureLeaf(0, armv7.DomainUser); err != nil {
			return false
		}
		live := make(map[int]bool)
		for i, op := range ops {
			idx := int(op)
			va := arch.VirtAddr(idx) << arch.PageShift
			if i%2 == 0 {
				pt.Set(va, validPTE(arch.FrameNum(idx+1), 0))
				live[idx] = true
			} else {
				pt.Clear(va)
				delete(live, idx)
			}
		}
		return pt.PopulatedPTEs() == len(live)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestShareUnshareInvariant property: for any set of populated entries,
// share + unshare gives the child an identical view while leaving the
// parent untouched, and copies exactly the populated count.
func TestShareUnshareInvariant(t *testing.T) {
	prop := func(pages []uint8) bool {
		phys := mem.New(256)
		parent, _ := New(phys, geoARM)
		child, _ := New(phys, geoARM)
		tab, _ := parent.EnsureLeaf(0, armv7.DomainUser)
		uniq := make(map[uint8]bool)
		for _, p := range pages {
			uniq[p] = true
			parent.Set(arch.VirtAddr(p)<<arch.PageShift, validPTE(arch.FrameNum(p)+1, 0))
		}
		child.AttachShared(0, tab, armv7.DomainUser)
		copied, err := child.UnsharePTP(0)
		if err != nil || copied != len(uniq) {
			return false
		}
		for p := range uniq {
			va := arch.VirtAddr(p) << arch.PageShift
			cp, _, cf := child.Lookup(va)
			pp, _, pf := parent.Lookup(va)
			if cf != arch.FaultNone || pf != arch.FaultNone || cp != pp {
				return false
			}
		}
		return parent.SharerCount(0) == 1 && child.SharerCount(0) == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestUnshareFilterProperty: for any population and any filter, the
// filtered unshare copies exactly the kept entries, and dropped entries
// read as invalid in the fresh table while the shared original is intact.
func TestUnshareFilterProperty(t *testing.T) {
	prop := func(pages []uint8, keepMask uint8) bool {
		phys := mem.New(256)
		parent, _ := New(phys, geoARM)
		child, _ := New(phys, geoARM)
		tab, _ := parent.EnsureLeaf(0, armv7.DomainUser)
		uniq := map[uint8]bool{}
		for _, p := range pages {
			uniq[p] = true
			pte := validPTE(arch.FrameNum(p)+1, 0)
			if p&keepMask == 0 {
				pte.Soft |= arch.SoftFile
			}
			parent.Set(arch.VirtAddr(p)<<arch.PageShift, pte)
		}
		child.AttachShared(0, tab, armv7.DomainUser)
		keep := func(pte PTE) bool { return pte.Soft&arch.SoftFile == 0 }
		copied, err := child.UnsharePTPFunc(0, keep)
		if err != nil {
			return false
		}
		wantCopied := 0
		for p := range uniq {
			va := arch.VirtAddr(p) << arch.PageShift
			cp := child.PTEAt(va)
			pp, _, _ := parent.Lookup(va)
			if p&keepMask != 0 { // kept: anon-like
				if !cp.Valid() || cp.Frame != pp.Frame {
					return false
				}
				wantCopied++
			} else if cp.Valid() { // dropped: must be absent in the copy
				return false
			}
			if !pp.Valid() { // the shared original is never disturbed
				return false
			}
		}
		return copied == wantCopied
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestLargeMappingProperty: SetLarge populates exactly PagesPerLarge
// replicas, all carrying the base frame and the PTELarge attribute —
// sixteen 64KB replicas on ARMv7, a full 512-entry leaf table on Sv39.
func TestLargeMappingProperty(t *testing.T) {
	for _, tc := range []struct {
		name string
		geo  arch.Geometry
	}{{"armv7", geoARM}, {"sv39", geoSv39}} {
		ppl := tc.geo.PagesPerLarge()
		chunks := int(tc.geo.SlotSpan() / tc.geo.LargePageSize())
		prop := func(slot uint8, chunk uint8) bool {
			phys := mem.New(1024)
			pt, _ := New(phys, tc.geo)
			idx := int(slot) % tc.geo.NumSlots()
			c := int(chunk) % chunks
			va := tc.geo.SlotBase(idx) + arch.VirtAddr(c)*tc.geo.LargePageSize()
			if _, err := pt.EnsureLeaf(idx, 0); err != nil {
				return false
			}
			base, err := phys.AllocRange(ppl, ppl, mem.FramePageCache)
			if err != nil {
				return false
			}
			pt.SetLarge(va, base, arch.PTEValid|arch.PTEUser|arch.PTEExec, arch.SoftFile)
			if pt.PopulatedPTEs() != ppl {
				return false
			}
			for i := 0; i < ppl; i++ {
				pte, _, f := pt.Lookup(va + arch.VirtAddr(i*arch.PageSize))
				if f != arch.FaultNone || pte.Frame != base || pte.Flags&arch.PTELarge == 0 {
					return false
				}
			}
			return true
		}
		t.Run(tc.name, func(t *testing.T) {
			if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestSetLargeValidation(t *testing.T) {
	phys := mem.New(256)
	pt, _ := New(phys, geoARM)
	_, _ = pt.EnsureLeaf(0, armv7.DomainUser)
	base, _ := phys.AllocRange(16, 16, mem.FramePageCache)
	for _, c := range []struct {
		name string
		fn   func()
	}{
		{"unaligned va", func() { pt.SetLarge(0x1000, base, arch.PTEValid, 0) }},
		{"unaligned frame", func() { pt.SetLarge(0x10000, base+1, arch.PTEValid, 0) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}
