package arch

import (
	"reflect"
	"testing"
)

func TestRefRunEnd(t *testing.T) {
	page := VirtAddr(PageSize)
	cases := []struct {
		r    RefRun
		want VirtAddr
	}{
		{RefRun{VA: 0x8000, Stride: 4, Count: 4}, 0x8010},
		{RefRun{VA: 0x8000, Stride: 0, Count: 100}, 0x8000},
		// Stride larger than a page.
		{RefRun{VA: 0x8000, Stride: 3 * page, Count: 2}, 0x8000 + 6*page},
		// Descending runs wrap two's-complement.
		{RefRun{VA: 0x8000, Stride: -page, Count: 8}, 0x8000 - 8*page},
		// Wrap through zero: End is still VA + Count*Stride mod 2^32.
		{RefRun{VA: 0x1000, Stride: -page, Count: 2}, 0x1000 - 2*page},
	}
	for _, c := range cases {
		if got := c.r.End(); got != c.want {
			t.Errorf("%+v.End() = %#x, want %#x", c.r, got, c.want)
		}
	}
}

func TestRefStreamCoalesces(t *testing.T) {
	var s RefStream
	// Three sequential fetches: one run, stride fixed by the second.
	s.Add(0x8000, AccessFetch, 0)
	s.Add(0x8004, AccessFetch, 0)
	s.Add(0x8008, AccessFetch, 0)
	// A kind change breaks the run even at a continuing address.
	s.Add(0x800C, AccessRead, 0)
	// Page-stride writes coalesce too.
	s.Add(0x10000, AccessWrite, 0)
	s.Add(0x10000+VirtAddr(PageSize), AccessWrite, 0)
	s.Add(0x10000+2*VirtAddr(PageSize), AccessWrite, 0)
	want := []RefRun{
		{VA: 0x8000, Stride: 4, Count: 3, Kind: AccessFetch, Block: 1},
		{VA: 0x800C, Stride: 0, Count: 1, Kind: AccessRead, Block: 1},
		{VA: 0x10000, Stride: VirtAddr(PageSize), Count: 3, Kind: AccessWrite, Block: 1},
	}
	if !reflect.DeepEqual(s.Runs(), want) {
		t.Errorf("runs = %+v\nwant   %+v", s.Runs(), want)
	}
	if s.Len() != 7 {
		t.Errorf("Len = %d, want 7", s.Len())
	}
}

func TestRefStreamStrideMismatchStartsNewRun(t *testing.T) {
	var s RefStream
	s.Add(0x8000, AccessFetch, 0)
	s.Add(0x8004, AccessFetch, 0) // stride now 4
	s.Add(0x8010, AccessFetch, 0) // breaks the pattern
	if n := len(s.Runs()); n != 2 {
		t.Fatalf("got %d runs, want 2: %+v", n, s.Runs())
	}
	if r := s.Runs()[1]; r.VA != 0x8010 || r.Count != 1 {
		t.Errorf("second run = %+v, want singleton at 0x8010", r)
	}
}

func TestRefStreamDescendingAndLargeStride(t *testing.T) {
	var s RefStream
	page := VirtAddr(PageSize)
	// Descending stack touches.
	s.Add(0x9000, AccessWrite, 0)
	s.Add(0x9000-page, AccessWrite, 0)
	s.Add(0x9000-2*page, AccessWrite, 0)
	// Stride larger than a page.
	s.Add(0x100000, AccessRead, 0)
	s.Add(0x100000+3*page, AccessRead, 0)
	s.Add(0x100000+6*page, AccessRead, 0)
	want := []RefRun{
		{VA: 0x9000, Stride: -page, Count: 3, Kind: AccessWrite, Block: 1},
		{VA: 0x100000, Stride: 3 * page, Count: 3, Kind: AccessRead, Block: 1},
	}
	if !reflect.DeepEqual(s.Runs(), want) {
		t.Errorf("runs = %+v\nwant   %+v", s.Runs(), want)
	}
}

func TestRefStreamBlockNormalization(t *testing.T) {
	var s RefStream
	s.Add(0x8000, AccessFetch, -3) // block < 1 normalizes to 1
	s.Add(0x9000, AccessRead, 16)  // block ignored for non-fetches
	s.Add(0xA000, AccessFetch, 16) // kept for fetches
	s.Add(0xB000, AccessFetch, 64) // block change breaks the run
	for i, wantBlock := range []int{1, 1, 16, 64} {
		if got := s.Runs()[i].Block; got != wantBlock {
			t.Errorf("run %d Block = %d, want %d", i, got, wantBlock)
		}
	}
	if n := len(s.Runs()); n != 4 {
		t.Errorf("got %d runs, want 4", n)
	}
}

func TestRefStreamAddRun(t *testing.T) {
	var s RefStream
	page := VirtAddr(PageSize)
	s.AddRun(RefRun{VA: 0x8000, Stride: page, Count: 0, Kind: AccessRead})  // empty: dropped
	s.AddRun(RefRun{VA: 0x8000, Stride: page, Count: -5, Kind: AccessRead}) // negative: dropped
	if len(s.Runs()) != 0 {
		t.Fatalf("non-positive runs were kept: %+v", s.Runs())
	}
	s.AddRun(RefRun{VA: 0x8000, Stride: page, Count: 4, Kind: AccessRead, Block: 7})
	if s.Runs()[0].Block != 1 {
		t.Errorf("Block not normalized for a read run: %+v", s.Runs()[0])
	}
	// A run continuing the previous pattern merges.
	s.AddRun(RefRun{VA: 0x8000 + 4*page, Stride: page, Count: 3, Kind: AccessRead})
	if !reflect.DeepEqual(s.Runs(), []RefRun{
		{VA: 0x8000, Stride: page, Count: 7, Kind: AccessRead, Block: 1},
	}) {
		t.Errorf("continuing run did not merge: %+v", s.Runs())
	}
	// A gap starts a new run.
	s.AddRun(RefRun{VA: 0x8000 + 9*page, Stride: page, Count: 2, Kind: AccessRead})
	if n := len(s.Runs()); n != 2 {
		t.Errorf("got %d runs, want 2: %+v", n, s.Runs())
	}
}

func TestRefStreamReset(t *testing.T) {
	var s RefStream
	s.Add(0x8000, AccessFetch, 0)
	s.Add(0x8004, AccessFetch, 0)
	s.Reset()
	if s.Len() != 0 || len(s.Runs()) != 0 {
		t.Fatalf("Reset left %d refs", s.Len())
	}
	// The stream is reusable, and a post-Reset reference must not extend
	// the pre-Reset run.
	s.Add(0x8008, AccessRead, 0)
	if !reflect.DeepEqual(s.Runs(), []RefRun{{VA: 0x8008, Stride: 0, Count: 1, Kind: AccessRead, Block: 1}}) {
		t.Errorf("post-Reset runs = %+v", s.Runs())
	}
}
