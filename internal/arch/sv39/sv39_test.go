package sv39

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestGeometryConstants(t *testing.T) {
	if MegaPageSize != 2<<20 {
		t.Errorf("MegaPageSize = %d, want 2MB", MegaPageSize)
	}
	if PagesPerMegaPage != 512 {
		t.Errorf("PagesPerMegaPage = %d, want 512", PagesPerMegaPage)
	}
	if GigaPageSize != 1<<30 {
		t.Errorf("GigaPageSize = %d, want 1GB", GigaPageSize)
	}
	if EntriesPerLevel*arch.PageSize != MegaPageSize {
		t.Errorf("one leaf table must cover one megapage: %d != %d",
			EntriesPerLevel*arch.PageSize, MegaPageSize)
	}
	if EntriesPerLevel*EntryBytes != arch.PageSize {
		t.Errorf("a table level must fill exactly one frame: %d != %d",
			EntriesPerLevel*EntryBytes, arch.PageSize)
	}
}

func TestIndexing(t *testing.T) {
	cases := []struct {
		va               arch.VirtAddr
		vpn2, vpn1, vpn0 int
	}{
		{0x00000000, 0, 0, 0},
		{0x00001000, 0, 0, 1},
		{0x001FF000, 0, 0, 511},
		{0x00200000, 0, 1, 0},
		{0x3FFFF000, 0, 511, 511},
		{0x40000000, 1, 0, 0},
		{0xFFFFFFFF, 3, 511, 511},
	}
	for _, c := range cases {
		if got := VPN2(c.va); got != c.vpn2 {
			t.Errorf("VPN2(%#x) = %d, want %d", c.va, got, c.vpn2)
		}
		if got := VPN1(c.va); got != c.vpn1 {
			t.Errorf("VPN1(%#x) = %d, want %d", c.va, got, c.vpn1)
		}
		if got := VPN0(c.va); got != c.vpn0 {
			t.Errorf("VPN0(%#x) = %d, want %d", c.va, got, c.vpn0)
		}
	}
}

// TestDecomposeRoundTrip is the randomized VA ↔ (VPN2, VPN1, VPN0,
// offset) round-trip property: decomposing any address and recomposing
// it is the identity, and each field stays within its architectural
// range.
func TestDecomposeRoundTrip(t *testing.T) {
	prop := func(raw uint32) bool {
		va := arch.VirtAddr(raw)
		l2, l1, l0 := VPN2(va), VPN1(va), VPN0(va)
		if l2 < 0 || l2 > 3 { // modeled 4GB window: 2 bits of VPN[2]
			return false
		}
		if l1 < 0 || l1 >= EntriesPerLevel || l0 < 0 || l0 >= EntriesPerLevel {
			return false
		}
		return Compose(l2, l1, l0, va&arch.PageMask) == va
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestComposeRoundTrip drives the round trip in the other direction:
// composing in-range fields and decomposing recovers exactly the fields.
func TestComposeRoundTrip(t *testing.T) {
	prop := func(l2, l1, l0 uint16, off uint16) bool {
		vpn2 := int(l2) % 4
		vpn1 := int(l1) % EntriesPerLevel
		vpn0 := int(l0) % EntriesPerLevel
		offset := arch.VirtAddr(off) & arch.PageMask
		va := Compose(vpn2, vpn1, vpn0, offset)
		return VPN2(va) == vpn2 && VPN1(va) == vpn1 && VPN0(va) == vpn0 &&
			va&arch.PageMask == offset
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestMegaPageAlignment checks the large-page alignment properties the
// page-table code relies on: a megapage base has VPN0 == 0, every
// address in the megapage shares its VPN2/VPN1, and the geometry's
// large-page parameters agree with the constants here.
func TestMegaPageAlignment(t *testing.T) {
	prop := func(raw uint32) bool {
		va := arch.VirtAddr(raw)
		b := MegaPageBase(va)
		if b > va || MegaPageBase(b) != b || VPN0(b) != 0 || b&arch.PageMask != 0 {
			return false
		}
		return VPN2(b) == VPN2(va) && VPN1(b) == VPN1(va)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	g := MMU().Geometry()
	if g.LargePageSize() != MegaPageSize || g.PagesPerLarge() != PagesPerMegaPage {
		t.Errorf("geometry large-page parameters disagree: %+v", g)
	}
	if g.PagesPerLarge() != g.LeafEntries {
		t.Errorf("an Sv39 megapage must span a whole leaf table: %+v", g)
	}
}

// TestSlotIndexingAgreesWithVPNs pins the slot-addressing scheme the
// shared page-table code uses to the architectural VPN split: slot =
// VPN2·512 + VPN1, root index = VPN2, mid index = VPN1.
func TestSlotIndexingAgreesWithVPNs(t *testing.T) {
	g := MMU().Geometry()
	prop := func(raw uint32) bool {
		va := arch.VirtAddr(raw)
		slot := g.Slot(va)
		if slot != VPN2(va)*EntriesPerLevel+VPN1(va) {
			return false
		}
		if g.RootIndex(slot) != VPN2(va) || g.MidIndex(slot) != VPN1(va) {
			return false
		}
		if g.LeafIndex(va) != VPN0(va) {
			return false
		}
		return g.SlotBase(slot) == MegaPageBase(va)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	if g.NumSlots() != 4*EntriesPerLevel {
		t.Errorf("NumSlots = %d, want %d", g.NumSlots(), 4*EntriesPerLevel)
	}
}

func TestDescriptors(t *testing.T) {
	m := MMU()
	if m.Name() != "sv39" {
		t.Errorf("Name = %q", m.Name())
	}
	g := m.Geometry()
	if g.Levels != 3 || g.RootFrames != 1 || g.EntryBytes != 8 || g.MidEntries != EntriesPerLevel {
		t.Errorf("geometry mismatch: %+v", g)
	}
	if g.RootEntriesPerFrame() != EntriesPerLevel {
		t.Errorf("root frame must hold %d entries, got %d", EntriesPerLevel, g.RootEntriesPerFrame())
	}
	if bits := m.Tagging().ASIDBits; bits != 16 {
		t.Errorf("ASIDBits = %d, want 16", bits)
	}
	if max := m.Tagging().MaxASID(); max != 65535 {
		t.Errorf("MaxASID = %d, want 65535", max)
	}
	p := m.Protection()
	if p.HasDomains {
		t.Error("Sv39 has no domain registers")
	}
	if p.KernelDomain != 0 || p.UserDomain != 0 || p.SharedDomain != 0 {
		t.Errorf("all Sv39 domains must collapse to 0: %+v", p)
	}
	if p.StockDACR != p.ZygoteDACR {
		t.Error("without domains the stock and zygote DACRs must be identical")
	}
	if p.StockDACR.Access(0) != arch.DomainClient {
		t.Error("domain 0 must have client access")
	}
}

func TestRegistered(t *testing.T) {
	m, ok := arch.Lookup("sv39")
	if !ok {
		t.Fatal("sv39 must self-register")
	}
	if m.Name() != "sv39" {
		t.Errorf("registry returned %q", m.Name())
	}
}
