// Package sv39 models the RISC-V Sv39 MMU from the privileged
// architecture specification: a three-level hierarchical page table with
// 512 64-bit entries per level, 4KB/2MB/1GB page sizes, and 16-bit ASIDs
// tagging TLB entries. There are no domain registers — beyond the
// per-PTE U bit (plus sstatus.SUM for supervisor accesses to user pages)
// the architecture offers no way to revoke access to a group of mappings
// without editing PTEs — so arch.Protection.HasDomains is false and the
// TLB-sharing design must flush global entries when switching to a
// process outside the sharing set (the software cost that replaces the
// ARM domain trick; see DESIGN.md).
//
// The simulator models the low 4GB of the 39-bit virtual space so that
// workloads are byte-identical across backends: VPN[2] contributes only
// its low two bits, and the root table stays a single 4KB frame exactly
// as in hardware. One 2MB megapage occupies a whole leaf table's span,
// so the simulator represents it with 512 replicated leaf entries, the
// same mechanism ARMv7 uses for its 16-entry 64KB large pages.
//
// A modeling note on the leaf-table footprint: 512 eight-byte PTEs fill
// the 4KB page-table page completely, leaving no room for the in-frame
// software shadow table ARMv7 enjoys (Figure 5 of the paper). RISC-V has
// hardware A/D bits, so Linux does not need the shadow; the simulator
// keeps its uniform out-of-band soft-bits array either way.
package sv39

import "repro/internal/arch"

// Sv39 table geometry over the modeled low-4GB window.
const (
	// EntriesPerLevel is the number of 64-bit entries at every level.
	EntriesPerLevel = 512
	// EntryBytes is the size of one PTE.
	EntryBytes = 8

	// MegaPageShift is log2 of the level-1 (2MB) megapage size.
	MegaPageShift = 21
	// MegaPageSize is the 2MB megapage size.
	MegaPageSize = 1 << MegaPageShift
	// PagesPerMegaPage is the number of 4KB pages one megapage spans —
	// a full leaf table.
	PagesPerMegaPage = MegaPageSize / arch.PageSize

	// GigaPageShift is log2 of the level-2 (1GB) gigapage size.
	GigaPageShift = 30
	// GigaPageSize is the 1GB gigapage size.
	GigaPageSize = 1 << GigaPageShift
)

// VPN2 returns VPN[2], the root-table index of va (bits 38:30; only bits
// 31:30 are non-zero inside the modeled 4GB window).
func VPN2(va arch.VirtAddr) int { return int(va >> GigaPageShift) }

// VPN1 returns VPN[1], the mid-table index of va (bits 29:21).
func VPN1(va arch.VirtAddr) int {
	return int((va >> MegaPageShift) & (EntriesPerLevel - 1))
}

// VPN0 returns VPN[0], the leaf-table index of va (bits 20:12).
func VPN0(va arch.VirtAddr) int {
	return int((va >> arch.PageShift) & (EntriesPerLevel - 1))
}

// Compose reassembles a virtual address from its three VPN fields and
// page offset. It is the inverse of (VPN2, VPN1, VPN0, va&PageMask).
func Compose(vpn2, vpn1, vpn0 int, offset arch.VirtAddr) arch.VirtAddr {
	return arch.VirtAddr(vpn2)<<GigaPageShift |
		arch.VirtAddr(vpn1)<<MegaPageShift |
		arch.VirtAddr(vpn0)<<arch.PageShift |
		offset&arch.PageMask
}

// MegaPageBase returns va rounded down to a 2MB megapage boundary (the
// span of one leaf table).
func MegaPageBase(va arch.VirtAddr) arch.VirtAddr {
	return va &^ arch.VirtAddr(MegaPageSize-1)
}

// mmu implements arch.MMU.
type mmu struct{}

var singleton = mmu{}

// MMU returns the RISC-V Sv39 backend.
func MMU() arch.MMU { return singleton }

func init() { arch.Register(singleton) }

func (mmu) Name() string { return "sv39" }

func (mmu) Geometry() arch.Geometry {
	return arch.Geometry{
		Levels:         3,
		VABits:         32, // low-4GB window of the 39-bit space
		TableShift:     MegaPageShift,
		LeafEntries:    EntriesPerLevel,
		RootEntries:    EntriesPerLevel,
		MidEntries:     EntriesPerLevel,
		RootFrames:     1,
		EntryBytes:     EntryBytes,
		LargePageShift: MegaPageShift,
	}
}

func (mmu) Tagging() arch.Tagging {
	return arch.Tagging{ASIDBits: 16}
}

func (mmu) Protection() arch.Protection {
	// No domains: everything lives in the trivial domain 0, to which
	// every process has client access. The DACR machinery downstream
	// becomes a structural no-op.
	var dacr arch.DACR
	dacr = dacr.WithAccess(0, arch.DomainClient)
	return arch.Protection{
		HasDomains:   false,
		NumDomains:   1,
		KernelDomain: 0,
		UserDomain:   0,
		SharedDomain: 0,
		StockDACR:    dacr,
		ZygoteDACR:   dacr,
	}
}
