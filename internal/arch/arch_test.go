package arch

import (
	"testing"
	"testing/quick"
)

func TestIndexing(t *testing.T) {
	cases := []struct {
		va     VirtAddr
		l1, l2 int
	}{
		{0x00000000, 0, 0},
		{0x00001000, 0, 1},
		{0x000FF000, 0, 255},
		{0x00100000, 1, 0},
		{0x7FF42345, 0x7FF, 0x42},
		{0xFFFFFFFF, 4095, 255},
	}
	for _, c := range cases {
		if got := L1Index(c.va); got != c.l1 {
			t.Errorf("L1Index(%#x) = %d, want %d", c.va, got, c.l1)
		}
		if got := L2Index(c.va); got != c.l2 {
			t.Errorf("L2Index(%#x) = %d, want %d", c.va, got, c.l2)
		}
	}
}

func TestGeometry(t *testing.T) {
	if PageSize != 4096 {
		t.Errorf("PageSize = %d, want 4096", PageSize)
	}
	if LargePageSize != 64*1024 {
		t.Errorf("LargePageSize = %d, want 64KB", LargePageSize)
	}
	if PagesPerLargePage != 16 {
		t.Errorf("PagesPerLargePage = %d, want 16", PagesPerLargePage)
	}
	if SectionSize != 1<<20 {
		t.Errorf("SectionSize = %d, want 1MB", SectionSize)
	}
	if int64(L1Entries)*SectionSize != 1<<32 {
		t.Errorf("L1 coverage should be exactly 4GB")
	}
	if L2Entries*PageSize != SectionSize {
		t.Errorf("one L2 table must cover one section: %d != %d", L2Entries*PageSize, SectionSize)
	}
}

func TestAlignment(t *testing.T) {
	if got := PageBase(0x1234); got != 0x1000 {
		t.Errorf("PageBase(0x1234) = %#x, want 0x1000", got)
	}
	if got := PageAlignUp(0x1234); got != 0x2000 {
		t.Errorf("PageAlignUp(0x1234) = %#x, want 0x2000", got)
	}
	if got := PageAlignUp(0x2000); got != 0x2000 {
		t.Errorf("PageAlignUp(0x2000) = %#x, want 0x2000 (already aligned)", got)
	}
	if got := SectionBase(0x12345678); got != 0x12300000 {
		t.Errorf("SectionBase = %#x, want 0x12300000", got)
	}
}

func TestAlignmentProperties(t *testing.T) {
	// PageBase is idempotent and never exceeds its argument; the L1/L2
	// indices of a page base match those of any address inside the page.
	prop := func(raw uint32) bool {
		va := VirtAddr(raw)
		b := PageBase(va)
		if b > va || PageBase(b) != b {
			return false
		}
		return L1Index(b) == L1Index(va) && L2Index(b) == L2Index(va)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	// Reconstructing an address from its indices recovers the page base.
	prop := func(raw uint32) bool {
		va := VirtAddr(raw)
		rebuilt := VirtAddr(L1Index(va))<<SectionShift | VirtAddr(L2Index(va))<<PageShift
		return rebuilt == PageBase(va)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDACR(t *testing.T) {
	var r DACR
	if r.Access(DomainZygote) != DomainNoAccess {
		t.Fatalf("zero DACR must deny all domains")
	}
	r = r.WithAccess(DomainZygote, DomainClient)
	if r.Access(DomainZygote) != DomainClient {
		t.Errorf("Access(zygote) = %v, want client", r.Access(DomainZygote))
	}
	if r.Access(DomainKernel) != DomainNoAccess {
		t.Errorf("setting one domain must not disturb others")
	}
	r = r.WithAccess(DomainZygote, DomainManager)
	if r.Access(DomainZygote) != DomainManager {
		t.Errorf("Access(zygote) = %v, want manager", r.Access(DomainZygote))
	}
	r = r.WithAccess(DomainZygote, DomainNoAccess)
	if r.Access(DomainZygote) != DomainNoAccess {
		t.Errorf("revoking access failed")
	}
}

func TestDACRProperties(t *testing.T) {
	// WithAccess sets exactly the requested domain and preserves the rest.
	prop := func(raw uint32, d uint8, a uint8) bool {
		d %= NumDomains
		acc := DomainAccess(a % 4)
		if acc == 2 { // reserved encoding, unused
			acc = DomainClient
		}
		r := DACR(raw).WithAccess(d, acc)
		if r.Access(d) != acc {
			return false
		}
		for i := uint8(0); i < NumDomains; i++ {
			if i != d && r.Access(i) != DACR(raw).Access(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStockAndZygoteDACR(t *testing.T) {
	s := StockDACR()
	if s.Access(DomainKernel) != DomainClient || s.Access(DomainUser) != DomainClient {
		t.Errorf("stock DACR must grant client access to kernel and user domains")
	}
	if s.Access(DomainZygote) != DomainNoAccess {
		t.Errorf("stock DACR must deny the zygote domain")
	}
	z := ZygoteDACR()
	if z.Access(DomainZygote) != DomainClient {
		t.Errorf("zygote DACR must grant client access to the zygote domain")
	}
	if z.Access(DomainUser) != DomainClient {
		t.Errorf("zygote DACR must keep user-domain access")
	}
}

func TestStringers(t *testing.T) {
	if FaultDomain.String() != "domain fault" {
		t.Errorf("FaultDomain.String() = %q", FaultDomain.String())
	}
	if AccessFetch.String() != "fetch" {
		t.Errorf("AccessFetch.String() = %q", AccessFetch.String())
	}
	for f := FaultNone; f <= FaultDomain+1; f++ {
		if f.String() == "" {
			t.Errorf("empty string for fault %d", f)
		}
	}
	for k := AccessFetch; k <= AccessWrite+1; k++ {
		if k.String() == "" {
			t.Errorf("empty string for access kind %d", k)
		}
	}
}

func TestFrameAddr(t *testing.T) {
	if got := FrameAddr(3); got != 3*PageSize {
		t.Errorf("FrameAddr(3) = %#x, want %#x", got, 3*PageSize)
	}
}

func TestVPN(t *testing.T) {
	if got := VPN(0x12345678); got != 0x12345 {
		t.Errorf("VPN = %#x, want 0x12345", got)
	}
}
