package arch

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	if PageSize != 4096 {
		t.Errorf("PageSize = %d, want 4096", PageSize)
	}
}

func TestAlignment(t *testing.T) {
	if got := PageBase(0x1234); got != 0x1000 {
		t.Errorf("PageBase(0x1234) = %#x, want 0x1000", got)
	}
	if got := PageAlignUp(0x1234); got != 0x2000 {
		t.Errorf("PageAlignUp(0x1234) = %#x, want 0x2000", got)
	}
	if got := PageAlignUp(0x2000); got != 0x2000 {
		t.Errorf("PageAlignUp(0x2000) = %#x, want 0x2000 (already aligned)", got)
	}
}

func TestAlignmentProperties(t *testing.T) {
	// PageBase is idempotent, never exceeds its argument, and preserves
	// the virtual page number.
	prop := func(raw uint32) bool {
		va := VirtAddr(raw)
		b := PageBase(va)
		if b > va || PageBase(b) != b {
			return false
		}
		return VPN(b) == VPN(va)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDACR(t *testing.T) {
	const d = 2
	var r DACR
	if r.Access(d) != DomainNoAccess {
		t.Fatalf("zero DACR must deny all domains")
	}
	r = r.WithAccess(d, DomainClient)
	if r.Access(d) != DomainClient {
		t.Errorf("Access(%d) = %v, want client", d, r.Access(d))
	}
	if r.Access(0) != DomainNoAccess {
		t.Errorf("setting one domain must not disturb others")
	}
	r = r.WithAccess(d, DomainManager)
	if r.Access(d) != DomainManager {
		t.Errorf("Access(%d) = %v, want manager", d, r.Access(d))
	}
	r = r.WithAccess(d, DomainNoAccess)
	if r.Access(d) != DomainNoAccess {
		t.Errorf("revoking access failed")
	}
}

func TestDACRProperties(t *testing.T) {
	// WithAccess sets exactly the requested domain and preserves the rest.
	const numDomains = 16
	prop := func(raw uint32, d uint8, a uint8) bool {
		d %= numDomains
		acc := DomainAccess(a % 4)
		if acc == 2 { // reserved encoding, unused
			acc = DomainClient
		}
		r := DACR(raw).WithAccess(d, acc)
		if r.Access(d) != acc {
			return false
		}
		for i := uint8(0); i < numDomains; i++ {
			if i != d && r.Access(i) != DACR(raw).Access(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if FaultDomain.String() != "domain fault" {
		t.Errorf("FaultDomain.String() = %q", FaultDomain.String())
	}
	if AccessFetch.String() != "fetch" {
		t.Errorf("AccessFetch.String() = %q", AccessFetch.String())
	}
	for f := FaultNone; f <= FaultDomain+1; f++ {
		if f.String() == "" {
			t.Errorf("empty string for fault %d", f)
		}
	}
	for k := AccessFetch; k <= AccessWrite+1; k++ {
		if k.String() == "" {
			t.Errorf("empty string for access kind %d", k)
		}
	}
}

func TestFrameAddr(t *testing.T) {
	if got := FrameAddr(3); got != 3*PageSize {
		t.Errorf("FrameAddr(3) = %#x, want %#x", got, 3*PageSize)
	}
}

func TestVPN(t *testing.T) {
	if got := VPN(0x12345678); got != 0x12345 {
		t.Errorf("VPN = %#x, want 0x12345", got)
	}
}

func TestRegistryMechanics(t *testing.T) {
	if _, ok := Lookup("no-such-arch"); ok {
		t.Error("Lookup of unregistered name must fail")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}
