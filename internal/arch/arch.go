// Package arch defines the 32-bit ARMv7-A architectural constants and
// entry encodings used by the simulated memory-management unit: page and
// table geometry, page-table entry permission bits, the PTE global bit,
// the 16-entry domain protection model with its DACR encoding, and the
// fault-status codes reported on memory aborts.
//
// The values follow the ARM Architecture Reference Manual (ARMv7-A/R) as
// summarized in Section 3.1 of "Shared Address Translation Revisited"
// (EuroSys 2016): a two-level hierarchical page table with 4096 32-bit
// first-level entries and 256 second-level entries, where 4KB and 64KB
// page mappings use one and sixteen consecutive aligned level-2 entries
// respectively, and 1MB/16MB mappings use level-1 entries only.
package arch

// VirtAddr is a 32-bit virtual address.
type VirtAddr uint32

// PhysAddr is a 32-bit physical address.
type PhysAddr uint32

// FrameNum identifies a 4KB physical page frame. Frame n covers physical
// addresses [n<<PageShift, (n+1)<<PageShift).
type FrameNum uint32

// Page and table geometry.
const (
	// PageShift is log2 of the base (small) page size.
	PageShift = 12
	// PageSize is the base page size: 4KB.
	PageSize = 1 << PageShift
	// PageMask masks the offset within a base page.
	PageMask = PageSize - 1

	// LargePageShift is log2 of the ARM "large page" size.
	LargePageShift = 16
	// LargePageSize is the ARM large-page size: 64KB.
	LargePageSize = 1 << LargePageShift
	// PagesPerLargePage is the number of consecutive, aligned level-2
	// entries that establish one 64KB mapping.
	PagesPerLargePage = LargePageSize / PageSize

	// SectionShift is log2 of the ARM section size (level-1 mapping).
	SectionShift = 20
	// SectionSize is the ARM section size: 1MB.
	SectionSize = 1 << SectionShift
	// SupersectionSize is the ARM supersection size: 16MB.
	SupersectionSize = 16 * SectionSize

	// L1Entries is the number of 32-bit entries in the first-level
	// (root) translation table. Each entry maps 1MB of virtual space.
	L1Entries = 4096
	// L2Entries is the number of entries in a second-level (leaf)
	// table. Each entry maps one 4KB page.
	L2Entries = 256
)

// L1Index returns the first-level table index for va (bits 31:20).
func L1Index(va VirtAddr) int { return int(va >> SectionShift) }

// L2Index returns the second-level table index for va (bits 19:12).
func L2Index(va VirtAddr) int { return int((va >> PageShift) & (L2Entries - 1)) }

// PageBase returns va rounded down to a 4KB page boundary.
func PageBase(va VirtAddr) VirtAddr { return va &^ VirtAddr(PageMask) }

// PageAlignUp rounds va up to the next 4KB page boundary.
func PageAlignUp(va VirtAddr) VirtAddr {
	return (va + PageMask) &^ VirtAddr(PageMask)
}

// SectionBase returns va rounded down to a 1MB section boundary (the span
// of one level-1 entry, and therefore of one level-2 page-table page).
func SectionBase(va VirtAddr) VirtAddr { return va &^ VirtAddr(SectionSize-1) }

// VPN returns the virtual page number of va.
func VPN(va VirtAddr) uint32 { return uint32(va) >> PageShift }

// FrameAddr returns the physical base address of frame f.
func FrameAddr(f FrameNum) PhysAddr { return PhysAddr(f) << PageShift }

// PTEFlags is the set of hardware permission and attribute bits carried
// by a level-2 page-table entry, as loaded into the TLB.
type PTEFlags uint16

const (
	// PTEValid marks the entry as a valid translation. A fetch or data
	// access through an invalid entry raises a translation fault.
	PTEValid PTEFlags = 1 << iota
	// PTEWrite grants user write access.
	PTEWrite
	// PTEExec grants instruction fetch. ARM expresses this as the
	// absence of XN (execute-never); the simulator uses positive logic.
	PTEExec
	// PTEUser grants unprivileged (user-mode) access.
	PTEUser
	// PTEGlobal asserts that the mapping is identical in all address
	// spaces: the TLB ignores the ASID when matching this entry.
	PTEGlobal
	// PTELarge marks the first of sixteen consecutive entries forming
	// a 64KB large-page mapping.
	PTELarge
)

// SoftFlags is the set of software-only bits kept in the parallel Linux
// PTE table. Virtually all bits of the hardware level-2 entry are reserved
// for the MMU, and ARM provides neither a hardware "referenced" nor
// "dirty" bit, so the VM system maintains these in a shadow entry paired
// with the hardware table (Figure 5 of the paper).
type SoftFlags uint16

const (
	// SoftDirty records that the page has been written.
	SoftDirty SoftFlags = 1 << iota
	// SoftAccessed records that the page has been referenced.
	SoftAccessed
	// SoftFile marks the mapping as file-backed (reconstructible by a
	// soft fault from the page cache, so fork may skip copying it).
	SoftFile
	// SoftCOW marks a private mapping whose next write must copy the
	// underlying page.
	SoftCOW
)

// Domain identifiers. The 32-bit ARM architecture supports 16 domains for
// 4KB and 64KB pages; 1MB and 16MB pages are always in domain 0. The
// stock Android kernel uses only a kernel and a user domain; the shared
// address translation design adds a zygote domain for the virtual pages
// of zygote-preloaded shared code.
const (
	// DomainKernel is the domain of kernel mappings.
	DomainKernel uint8 = 0
	// DomainUser is the domain of ordinary user mappings.
	DomainUser uint8 = 1
	// DomainZygote is the new domain holding zygote-preloaded shared
	// code; only zygote-like processes receive client access to it.
	DomainZygote uint8 = 2

	// NumDomains is the number of architecturally defined domains.
	NumDomains = 16
)

// DomainAccess is a two-bit access right held in the DACR for one domain.
type DomainAccess uint8

const (
	// DomainNoAccess causes any access to the domain to generate a
	// domain fault.
	DomainNoAccess DomainAccess = 0
	// DomainClient checks accesses against the permission bits in the
	// TLB entry / PTE.
	DomainClient DomainAccess = 1
	// DomainManager overrides the permission bits: all accesses are
	// permitted. (Reserved encoding 2 is not modeled.)
	DomainManager DomainAccess = 3
)

// DACR is the domain access control register: two bits of DomainAccess
// per domain, 16 domains. It is loaded from the task control block on
// every context switch.
type DACR uint32

// Access returns the access right the register grants to domain d.
func (r DACR) Access(d uint8) DomainAccess {
	return DomainAccess((r >> (2 * uint(d))) & 3)
}

// WithAccess returns a copy of the register with domain d's right set to a.
func (r DACR) WithAccess(d uint8, a DomainAccess) DACR {
	shift := 2 * uint(d)
	return (r &^ (3 << shift)) | DACR(a&3)<<shift
}

// StockDACR is the register value used by the stock Android kernel:
// client access to the kernel and user domains only.
func StockDACR() DACR {
	var r DACR
	r = r.WithAccess(DomainKernel, DomainClient)
	r = r.WithAccess(DomainUser, DomainClient)
	return r
}

// ZygoteDACR is the register value granted to zygote-like processes:
// StockDACR plus client access to the zygote domain.
func ZygoteDACR() DACR {
	return StockDACR().WithAccess(DomainZygote, DomainClient)
}

// FaultStatus is the memory-abort cause recorded in the fault status
// register (FSR). The exception handler reads it, together with the fault
// address register (FAR), to identify domain faults.
type FaultStatus uint8

const (
	// FaultNone reports no fault.
	FaultNone FaultStatus = iota
	// FaultTranslation reports a missing (invalid) translation.
	FaultTranslation
	// FaultPermission reports an access denied by PTE permission bits.
	FaultPermission
	// FaultDomain reports an access to a domain for which the DACR
	// grants no access.
	FaultDomain
)

// String returns the architectural name of the fault status.
func (f FaultStatus) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultTranslation:
		return "translation fault"
	case FaultPermission:
		return "permission fault"
	case FaultDomain:
		return "domain fault"
	default:
		return "unknown fault"
	}
}

// AccessKind distinguishes the three ways the core touches memory.
type AccessKind uint8

const (
	// AccessFetch is an instruction fetch. A faulting fetch generates
	// a prefetch abort exception.
	AccessFetch AccessKind = iota
	// AccessRead is a data load. A faulting load generates a data
	// abort exception.
	AccessRead
	// AccessWrite is a data store.
	AccessWrite
)

// String returns a short name for the access kind.
func (k AccessKind) String() string {
	switch k {
	case AccessFetch:
		return "fetch"
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	default:
		return "unknown"
	}
}

// ASID is an address space identifier as tagged in TLB entries. ARMv7
// ASIDs are 8 bits wide.
type ASID uint8
