// Package arch defines the architecture-neutral address types, page-table
// entry encodings and fault model shared by every simulated MMU, plus the
// MMU interface (see mmu.go) through which a concrete architecture
// describes its page-table geometry, TLB tagging scheme and protection
// model. Concrete backends live in subpackages: internal/arch/armv7
// models the 32-bit ARMv7-A short-descriptor format studied in "Shared
// Address Translation Revisited" (EuroSys 2016), and internal/arch/sv39
// models the RISC-V Sv39 three-level format.
//
// Only what is common to every backend lives here: 32-bit virtual and
// physical addresses over 4KB base pages, the simulator's positive-logic
// PTE permission bits, the software-maintained dirty/accessed shadow
// bits, the domain-access-register mechanics (a no-op on architectures
// without domains), and the fault-status codes reported on memory aborts.
package arch

// VirtAddr is a 32-bit virtual address.
//
// Architectures with wider virtual spaces (Sv39's 39 bits, for instance)
// are modeled over the low 4GB of their address space so that workloads
// are identical across backends; see Geometry.VABits.
type VirtAddr uint32

// PhysAddr is a 32-bit physical address.
type PhysAddr uint32

// FrameNum identifies a 4KB physical page frame. Frame n covers physical
// addresses [n<<PageShift, (n+1)<<PageShift).
type FrameNum uint32

// Base-page geometry, common to all modeled architectures.
const (
	// PageShift is log2 of the base (small) page size.
	PageShift = 12
	// PageSize is the base page size: 4KB.
	PageSize = 1 << PageShift
	// PageMask masks the offset within a base page.
	PageMask = PageSize - 1
)

// PageBase returns va rounded down to a 4KB page boundary.
func PageBase(va VirtAddr) VirtAddr { return va &^ VirtAddr(PageMask) }

// PageAlignUp rounds va up to the next 4KB page boundary.
func PageAlignUp(va VirtAddr) VirtAddr {
	return (va + PageMask) &^ VirtAddr(PageMask)
}

// VPN returns the virtual page number of va.
func VPN(va VirtAddr) uint32 { return uint32(va) >> PageShift }

// FrameAddr returns the physical base address of frame f.
func FrameAddr(f FrameNum) PhysAddr { return PhysAddr(f) << PageShift }

// PTEFlags is the set of hardware permission and attribute bits carried
// by a leaf page-table entry, as loaded into the TLB. The encoding is the
// simulator's own positive-logic form; each backend documents how it maps
// onto the real entry format.
type PTEFlags uint16

const (
	// PTEValid marks the entry as a valid translation. A fetch or data
	// access through an invalid entry raises a translation fault.
	PTEValid PTEFlags = 1 << iota
	// PTEWrite grants user write access.
	PTEWrite
	// PTEExec grants instruction fetch. ARM expresses this as the
	// absence of XN (execute-never); the simulator uses positive logic.
	PTEExec
	// PTEUser grants unprivileged (user-mode) access.
	PTEUser
	// PTEGlobal asserts that the mapping is identical in all address
	// spaces: the TLB ignores the ASID when matching this entry.
	PTEGlobal
	// PTELarge marks the first of Geometry.PagesPerLarge consecutive
	// entries forming one large-page mapping (64KB on ARMv7, 2MB on
	// Sv39).
	PTELarge
)

// SoftFlags is the set of software-only bits kept in the parallel Linux
// PTE table. On ARMv7 virtually all bits of the hardware level-2 entry
// are reserved for the MMU, and the architecture provides neither a
// hardware "referenced" nor "dirty" bit, so the VM system maintains these
// in a shadow entry paired with the hardware table (Figure 5 of the
// paper). RISC-V has hardware A/D bits, but Linux keeps the same software
// state machine; the simulator models the shadow bits uniformly.
type SoftFlags uint16

const (
	// SoftDirty records that the page has been written.
	SoftDirty SoftFlags = 1 << iota
	// SoftAccessed records that the page has been referenced.
	SoftAccessed
	// SoftFile marks the mapping as file-backed (reconstructible by a
	// soft fault from the page cache, so fork may skip copying it).
	SoftFile
	// SoftCOW marks a private mapping whose next write must copy the
	// underlying page.
	SoftCOW
)

// DomainAccess is a two-bit access right held in the DACR for one domain.
// Architectures without domain registers (Protection.HasDomains false)
// keep every mapping in domain 0 with client access, which makes the
// domain check a structural no-op.
type DomainAccess uint8

const (
	// DomainNoAccess causes any access to the domain to generate a
	// domain fault.
	DomainNoAccess DomainAccess = 0
	// DomainClient checks accesses against the permission bits in the
	// TLB entry / PTE.
	DomainClient DomainAccess = 1
	// DomainManager overrides the permission bits: all accesses are
	// permitted. (Reserved encoding 2 is not modeled.)
	DomainManager DomainAccess = 3
)

// DACR is the domain access control register: two bits of DomainAccess
// per domain, up to 16 domains. It is loaded from the task control block
// on every context switch.
type DACR uint32

// Access returns the access right the register grants to domain d.
func (r DACR) Access(d uint8) DomainAccess {
	return DomainAccess((r >> (2 * uint(d))) & 3)
}

// WithAccess returns a copy of the register with domain d's right set to a.
func (r DACR) WithAccess(d uint8, a DomainAccess) DACR {
	shift := 2 * uint(d)
	return (r &^ (3 << shift)) | DACR(a&3)<<shift
}

// FaultStatus is the memory-abort cause recorded in the fault status
// register (FSR). The exception handler reads it, together with the fault
// address register (FAR), to identify domain faults.
type FaultStatus uint8

const (
	// FaultNone reports no fault.
	FaultNone FaultStatus = iota
	// FaultTranslation reports a missing (invalid) translation.
	FaultTranslation
	// FaultPermission reports an access denied by PTE permission bits.
	FaultPermission
	// FaultDomain reports an access to a domain for which the DACR
	// grants no access.
	FaultDomain
)

// String returns the architectural name of the fault status.
func (f FaultStatus) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultTranslation:
		return "translation fault"
	case FaultPermission:
		return "permission fault"
	case FaultDomain:
		return "domain fault"
	default:
		return "unknown fault"
	}
}

// AccessKind distinguishes the three ways the core touches memory.
type AccessKind uint8

const (
	// AccessFetch is an instruction fetch. A faulting fetch generates
	// a prefetch abort exception.
	AccessFetch AccessKind = iota
	// AccessRead is a data load. A faulting load generates a data
	// abort exception.
	AccessRead
	// AccessWrite is a data store.
	AccessWrite
)

// String returns a short name for the access kind.
func (k AccessKind) String() string {
	switch k {
	case AccessFetch:
		return "fetch"
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	default:
		return "unknown"
	}
}

// ASID is an address space identifier as tagged in TLB entries. The type
// is wide enough for every modeled architecture; Tagging.ASIDBits says
// how many of the low bits a given MMU implements (8 on ARMv7, 16 on
// Sv39), and the kernel's allocator wraps at that width.
type ASID uint16
