// Run-length-encoded reference streams. The workload drivers walk large
// address ranges with constant strides (sequential file pages, heap
// sweeps, descending stack touches); instead of one CPU call per
// reference they emit RefRuns — "Count references of Kind starting at VA,
// Stride bytes apart" — and hand whole streams to cpu.AccessBatch, whose
// fused fast path resolves entire TLB-hit spans per probe. The encoding
// changes nothing about which references happen or in what order; it only
// states the pattern explicitly instead of leaving it implicit in a loop.

package arch

// RefRun is one run of a reference stream: Count references of Kind at
// VA, VA+Stride, VA+2*Stride, ... Stride is a two's-complement byte
// delta (descending runs wrap VirtAddr), and may exceed a page. A
// non-positive Count is an empty run.
//
// Block extends the encoding to the workload's page-visit primitive:
// when Kind is AccessFetch and Block > 1, each reference is a
// CPU.FetchBlock of Block sequential instructions instead of a single
// fetch. Block <= 1 is a plain single reference; Block is ignored for
// reads and writes.
type RefRun struct {
	VA     VirtAddr
	Stride VirtAddr
	Count  int
	Kind   AccessKind
	Block  int
}

// End returns the address one stride past the run's last reference — the
// VA a following reference would need for the run to absorb it.
func (r RefRun) End() VirtAddr {
	return r.VA + VirtAddr(r.Count)*r.Stride
}

// RefStream accumulates references in issue order and run-length-encodes
// them on the fly: a reference continuing the previous run's (stride,
// kind, block) pattern extends it, anything else starts a new run. A
// stream is reusable via Reset, so steady-state loops can emit batches
// without reallocating.
type RefStream struct {
	runs []RefRun
}

// Add appends one reference of kind at va. A second reference of a run
// fixes its stride; later references must continue it exactly.
func (s *RefStream) Add(va VirtAddr, kind AccessKind, block int) {
	if block < 1 {
		block = 1
	}
	if kind != AccessFetch {
		block = 1
	}
	if n := len(s.runs); n > 0 {
		r := &s.runs[n-1]
		if r.Kind == kind && r.Block == block {
			if r.Count == 1 {
				r.Stride = va - r.VA
				r.Count = 2
				return
			}
			if r.End() == va {
				r.Count++
				return
			}
		}
	}
	s.runs = append(s.runs, RefRun{VA: va, Stride: 0, Count: 1, Kind: kind, Block: block})
}

// AddRun appends an explicit run, merging it with the previous run when
// it continues the same pattern.
func (s *RefStream) AddRun(r RefRun) {
	if r.Count <= 0 {
		return
	}
	if r.Block < 1 || r.Kind != AccessFetch {
		r.Block = 1
	}
	if n := len(s.runs); n > 0 {
		p := &s.runs[n-1]
		if p.Kind == r.Kind && p.Block == r.Block && p.Stride == r.Stride && p.Count > 1 && p.End() == r.VA {
			p.Count += r.Count
			return
		}
	}
	s.runs = append(s.runs, r)
}

// Runs returns the encoded runs in issue order. The slice aliases the
// stream's storage; it is valid until the next Add or Reset.
func (s *RefStream) Runs() []RefRun { return s.runs }

// Len returns the total number of references in the stream.
func (s *RefStream) Len() int {
	n := 0
	for i := range s.runs {
		n += s.runs[i].Count
	}
	return n
}

// Reset empties the stream, keeping its storage for reuse.
func (s *RefStream) Reset() { s.runs = s.runs[:0] }
