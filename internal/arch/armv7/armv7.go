// Package armv7 models the 32-bit ARMv7-A short-descriptor MMU studied
// in "Shared Address Translation Revisited" (EuroSys 2016), Section 3.1:
// a two-level hierarchical page table with 4096 32-bit first-level
// entries and 256 second-level entries, where 4KB and 64KB page mappings
// use one and sixteen consecutive aligned level-2 entries respectively,
// 8-bit ASIDs tag TLB entries, and the 16-entry domain protection model
// with its DACR encoding provides the per-domain access toggle the
// paper's TLB-sharing design exploits.
//
// The values follow the ARM Architecture Reference Manual (ARMv7-A/R).
package armv7

import "repro/internal/arch"

// ARM-specific page and table geometry.
const (
	// LargePageShift is log2 of the ARM "large page" size.
	LargePageShift = 16
	// LargePageSize is the ARM large-page size: 64KB.
	LargePageSize = 1 << LargePageShift
	// PagesPerLargePage is the number of consecutive, aligned level-2
	// entries that establish one 64KB mapping.
	PagesPerLargePage = LargePageSize / arch.PageSize

	// SectionShift is log2 of the ARM section size (level-1 mapping).
	SectionShift = 20
	// SectionSize is the ARM section size: 1MB.
	SectionSize = 1 << SectionShift
	// SupersectionSize is the ARM supersection size: 16MB.
	SupersectionSize = 16 * SectionSize

	// L1Entries is the number of 32-bit entries in the first-level
	// (root) translation table. Each entry maps 1MB of virtual space.
	L1Entries = 4096
	// L2Entries is the number of entries in a second-level (leaf)
	// table. Each entry maps one 4KB page.
	L2Entries = 256
)

// L1Index returns the first-level table index for va (bits 31:20).
func L1Index(va arch.VirtAddr) int { return int(va >> SectionShift) }

// L2Index returns the second-level table index for va (bits 19:12).
func L2Index(va arch.VirtAddr) int {
	return int((va >> arch.PageShift) & (L2Entries - 1))
}

// SectionBase returns va rounded down to a 1MB section boundary (the span
// of one level-1 entry, and therefore of one level-2 page-table page).
func SectionBase(va arch.VirtAddr) arch.VirtAddr {
	return va &^ arch.VirtAddr(SectionSize-1)
}

// Domain identifiers. The 32-bit ARM architecture supports 16 domains for
// 4KB and 64KB pages; 1MB and 16MB pages are always in domain 0. The
// stock Android kernel uses only a kernel and a user domain; the shared
// address translation design adds a zygote domain for the virtual pages
// of zygote-preloaded shared code.
const (
	// DomainKernel is the domain of kernel mappings.
	DomainKernel uint8 = 0
	// DomainUser is the domain of ordinary user mappings.
	DomainUser uint8 = 1
	// DomainZygote is the new domain holding zygote-preloaded shared
	// code; only zygote-like processes receive client access to it.
	DomainZygote uint8 = 2

	// NumDomains is the number of architecturally defined domains.
	NumDomains = 16
)

// StockDACR is the register value used by the stock Android kernel:
// client access to the kernel and user domains only.
func StockDACR() arch.DACR {
	var r arch.DACR
	r = r.WithAccess(DomainKernel, arch.DomainClient)
	r = r.WithAccess(DomainUser, arch.DomainClient)
	return r
}

// ZygoteDACR is the register value granted to zygote-like processes:
// StockDACR plus client access to the zygote domain.
func ZygoteDACR() arch.DACR {
	return StockDACR().WithAccess(DomainZygote, arch.DomainClient)
}

// mmu implements arch.MMU. The package exposes a singleton: descriptor
// structs are plain values, so there is no state to instantiate.
type mmu struct{}

var singleton = mmu{}

// MMU returns the ARMv7-A backend.
func MMU() arch.MMU { return singleton }

func init() { arch.Register(singleton) }

func (mmu) Name() string { return "armv7" }

func (mmu) Geometry() arch.Geometry {
	return arch.Geometry{
		Levels:         2,
		VABits:         32,
		TableShift:     SectionShift,
		LeafEntries:    L2Entries,
		RootEntries:    L1Entries,
		MidEntries:     0,
		RootFrames:     L1Entries * 4 / arch.PageSize, // 16KB TTBR table
		EntryBytes:     4,
		LargePageShift: LargePageShift,
	}
}

func (mmu) Tagging() arch.Tagging {
	return arch.Tagging{ASIDBits: 8}
}

func (mmu) Protection() arch.Protection {
	return arch.Protection{
		HasDomains:   true,
		NumDomains:   NumDomains,
		KernelDomain: DomainKernel,
		UserDomain:   DomainUser,
		SharedDomain: DomainZygote,
		StockDACR:    StockDACR(),
		ZygoteDACR:   ZygoteDACR(),
	}
}
