package armv7

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestIndexing(t *testing.T) {
	cases := []struct {
		va     arch.VirtAddr
		l1, l2 int
	}{
		{0x00000000, 0, 0},
		{0x00001000, 0, 1},
		{0x000FF000, 0, 255},
		{0x00100000, 1, 0},
		{0x7FF42345, 0x7FF, 0x42},
		{0xFFFFFFFF, 4095, 255},
	}
	for _, c := range cases {
		if got := L1Index(c.va); got != c.l1 {
			t.Errorf("L1Index(%#x) = %d, want %d", c.va, got, c.l1)
		}
		if got := L2Index(c.va); got != c.l2 {
			t.Errorf("L2Index(%#x) = %d, want %d", c.va, got, c.l2)
		}
	}
}

func TestGeometryConstants(t *testing.T) {
	if LargePageSize != 64*1024 {
		t.Errorf("LargePageSize = %d, want 64KB", LargePageSize)
	}
	if PagesPerLargePage != 16 {
		t.Errorf("PagesPerLargePage = %d, want 16", PagesPerLargePage)
	}
	if SectionSize != 1<<20 {
		t.Errorf("SectionSize = %d, want 1MB", SectionSize)
	}
	if int64(L1Entries)*SectionSize != 1<<32 {
		t.Errorf("L1 coverage should be exactly 4GB")
	}
	if L2Entries*arch.PageSize != SectionSize {
		t.Errorf("one L2 table must cover one section: %d != %d", L2Entries*arch.PageSize, SectionSize)
	}
}

func TestSectionBase(t *testing.T) {
	if got := SectionBase(0x12345678); got != 0x12300000 {
		t.Errorf("SectionBase = %#x, want 0x12300000", got)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	// Reconstructing an address from its indices recovers the page base.
	prop := func(raw uint32) bool {
		va := arch.VirtAddr(raw)
		rebuilt := arch.VirtAddr(L1Index(va))<<SectionShift | arch.VirtAddr(L2Index(va))<<arch.PageShift
		return rebuilt == arch.PageBase(va)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStockAndZygoteDACR(t *testing.T) {
	s := StockDACR()
	if s.Access(DomainKernel) != arch.DomainClient || s.Access(DomainUser) != arch.DomainClient {
		t.Errorf("stock DACR must grant client access to kernel and user domains")
	}
	if s.Access(DomainZygote) != arch.DomainNoAccess {
		t.Errorf("stock DACR must deny the zygote domain")
	}
	z := ZygoteDACR()
	if z.Access(DomainZygote) != arch.DomainClient {
		t.Errorf("zygote DACR must grant client access to the zygote domain")
	}
	if z.Access(DomainUser) != arch.DomainClient {
		t.Errorf("zygote DACR must keep user-domain access")
	}
}

func TestDescriptors(t *testing.T) {
	m := MMU()
	if m.Name() != "armv7" {
		t.Errorf("Name = %q", m.Name())
	}
	g := m.Geometry()
	if g.Levels != 2 || g.NumSlots() != L1Entries || g.SlotSpan() != SectionSize {
		t.Errorf("geometry mismatch: %+v", g)
	}
	if g.RootFrames != 4 || g.EntryBytes != 4 || g.RootEntriesPerFrame() != 1024 {
		t.Errorf("root table must be four frames of 1024 4-byte entries: %+v", g)
	}
	if g.PagesPerLarge() != PagesPerLargePage || g.LargePageSize() != LargePageSize {
		t.Errorf("large-page geometry mismatch: %+v", g)
	}
	for _, va := range []arch.VirtAddr{0, 0x1000, 0x7FF42345, 0xFFFFFFFF} {
		if g.Slot(va) != L1Index(va) || g.LeafIndex(va) != L2Index(va) {
			t.Errorf("Slot/LeafIndex disagree with L1Index/L2Index at %#x", va)
		}
		if g.RootIndex(g.Slot(va)) != g.Slot(va) || g.MidIndex(g.Slot(va)) != 0 {
			t.Errorf("two-level root/mid indexing wrong at %#x", va)
		}
	}
	if bits := m.Tagging().ASIDBits; bits != 8 {
		t.Errorf("ASIDBits = %d, want 8", bits)
	}
	if max := m.Tagging().MaxASID(); max != 255 {
		t.Errorf("MaxASID = %d, want 255", max)
	}
	p := m.Protection()
	if !p.HasDomains || p.NumDomains != 16 || p.SharedDomain != DomainZygote {
		t.Errorf("protection mismatch: %+v", p)
	}
	if p.StockDACR != StockDACR() || p.ZygoteDACR != ZygoteDACR() {
		t.Errorf("DACR values mismatch: %+v", p)
	}
}

func TestRegistered(t *testing.T) {
	m, ok := arch.Lookup("armv7")
	if !ok {
		t.Fatal("armv7 must self-register")
	}
	if m.Name() != "armv7" {
		t.Errorf("registry returned %q", m.Name())
	}
}
