package arch

import (
	"fmt"
	"sort"
	"sync"
)

// The MMU registry. Backends register a singleton from an init function
// (the database/sql driver idiom), so importing a backend package — even
// blank — makes it resolvable by name here. Commands and tests share this
// registry for -arch flag validation.
var (
	regMu    sync.Mutex
	registry = make(map[string]MMU)
)

// Register makes m resolvable by Lookup under m.Name(). It panics on a
// duplicate name, which would indicate two backends colliding.
func Register(m MMU) {
	regMu.Lock()
	defer regMu.Unlock()
	name := m.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("arch: Register called twice for %q", name))
	}
	registry[name] = m
}

// Lookup returns the registered MMU with the given name.
func Lookup(name string) (MMU, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	m, ok := registry[name]
	return m, ok
}

// Names returns the registered architecture names in sorted order, for
// flag validation messages.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
