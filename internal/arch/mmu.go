package arch

// MMU describes one concrete memory-management-unit architecture. The
// interface is deliberately split into three orthogonal descriptor
// structs, fetched once at kernel construction and cached by value in
// every consumer — translation hot paths never dispatch through the
// interface:
//
//   - Geometry: page-table shape — levels, index extraction, entry
//     widths, large-page size. Consumed by pagetable, cpu and vm.
//   - Tagging: how TLB entries are tagged — ASID width. Consumed by the
//     kernel's ASID allocator and the TLB model.
//   - Protection: the permission model beyond per-PTE bits — ARM's
//     16-domain DACR, or its absence. Consumed by core's fork/sharing
//     policy and cpu's domain check.
//
// Backends register themselves with Register from an init function so
// that commands and tests can resolve them by name (see registry.go).
type MMU interface {
	// Name is the registry key and -arch flag value, e.g. "armv7".
	Name() string
	// Geometry returns the page-table shape.
	Geometry() Geometry
	// Tagging returns the TLB tagging scheme.
	Tagging() Tagging
	// Protection returns the protection model.
	Protection() Protection
}

// Geometry describes an architecture's page-table shape over 4KB base
// pages. The simulator's unit of sharing is the "slot": the span of
// virtual space translated by one leaf page-table page (1MB on ARMv7,
// 2MB on Sv39). Two- and three-level formats are supported; for
// three-level formats the root and mid levels are folded into the slot
// addressing (RootIndex/MidIndex) and only leaf tables are shared.
type Geometry struct {
	// Levels is the number of translation levels (2 or 3).
	Levels int
	// VABits is the width of the modeled virtual address space. All
	// backends model 32 bits: architectures with wider spaces (Sv39)
	// are simulated over their low 4GB so workloads are identical.
	VABits uint
	// TableShift is log2 of the span of one leaf table — the slot size
	// (20 on ARMv7, 21 on Sv39).
	TableShift uint
	// LeafEntries is the number of PTEs in one leaf table (256 on
	// ARMv7, 512 on Sv39).
	LeafEntries int
	// RootEntries is the number of entries in the root table across
	// all of its frames (4096 on ARMv7, 512 on Sv39).
	RootEntries int
	// MidEntries is the number of entries in a mid-level table, or 0
	// for two-level formats (0 on ARMv7, 512 on Sv39).
	MidEntries int
	// RootFrames is the number of 4KB frames occupied by the root
	// table (4 on ARMv7 — the 16KB TTBR table — and 1 on Sv39).
	RootFrames int
	// EntryBytes is the size of one table entry in bytes (4 on ARMv7,
	// 8 on Sv39). It determines the physical addresses the hardware
	// walker touches, and therefore what the walk caches see.
	EntryBytes int
	// LargePageShift is log2 of the large-page size that maps within a
	// leaf table (16 → 64KB on ARMv7; 21 → 2MB on Sv39, where one
	// megapage spans the whole leaf table).
	LargePageShift uint
}

// NumSlots returns how many leaf-table slots cover the virtual space.
func (g Geometry) NumSlots() int { return 1 << (g.VABits - g.TableShift) }

// Slot returns the leaf-table slot index covering va.
func (g Geometry) Slot(va VirtAddr) int { return int(va >> g.TableShift) }

// SlotBase returns the first virtual address of slot idx.
func (g Geometry) SlotBase(idx int) VirtAddr {
	return VirtAddr(idx) << g.TableShift
}

// SlotSpan returns the bytes of virtual space one leaf table translates.
func (g Geometry) SlotSpan() VirtAddr { return 1 << g.TableShift }

// LeafIndex returns the index of va's PTE within its leaf table.
func (g Geometry) LeafIndex(va VirtAddr) int {
	return int((va >> PageShift) & VirtAddr(g.LeafEntries-1))
}

// LargePageSize returns the large-page size in bytes.
func (g Geometry) LargePageSize() VirtAddr { return 1 << g.LargePageShift }

// PagesPerLarge returns the number of consecutive, aligned leaf entries
// that establish one large-page mapping (16 on ARMv7, 512 on Sv39).
func (g Geometry) PagesPerLarge() int {
	return 1 << (g.LargePageShift - PageShift)
}

// RootIndex returns the root-table entry index for slot idx: the slot
// itself for two-level formats, the enclosing mid-table's root entry for
// three-level formats.
func (g Geometry) RootIndex(idx int) int {
	if g.MidEntries == 0 {
		return idx
	}
	return idx / g.MidEntries
}

// MidIndex returns the mid-table entry index for slot idx, or 0 for
// two-level formats.
func (g Geometry) MidIndex(idx int) int {
	if g.MidEntries == 0 {
		return 0
	}
	return idx % g.MidEntries
}

// RootEntriesPerFrame returns how many root entries fit in one 4KB frame.
func (g Geometry) RootEntriesPerFrame() int { return PageSize / g.EntryBytes }

// Tagging describes how the TLB distinguishes address spaces.
type Tagging struct {
	// ASIDBits is the implemented width of the address-space identifier
	// (8 on ARMv7, 16 on Sv39). The kernel's allocator wraps — and
	// flushes all TLBs — after handing out 1<<ASIDBits-1 identifiers.
	ASIDBits uint
}

// MaxASID returns the largest assignable identifier (0 is reserved).
func (t Tagging) MaxASID() ASID { return ASID(1<<t.ASIDBits - 1) }

// Protection describes the architecture's protection model beyond the
// per-PTE permission bits. ARMv7 tags every mapping with one of 16
// domains and revokes access per-domain through the DACR on context
// switch — the mechanism the paper's TLB-sharing design exploits.
// Architectures without domains (Sv39's U/S bits plus SUM cover only a
// user/supervisor split) set HasDomains false and collapse every domain
// field to zero, which makes the kernel's domain bookkeeping a
// behavioral no-op; the TLB-sharing design must then fall back to
// flushing global entries on switches to non-sharing processes.
type Protection struct {
	// HasDomains reports whether the architecture has a domain register
	// that can revoke access to tagged mappings without touching PTEs.
	HasDomains bool
	// NumDomains is the number of architecturally defined domains (16
	// on ARMv7, 1 — the trivial domain 0 — otherwise).
	NumDomains int
	// KernelDomain tags kernel mappings.
	KernelDomain uint8
	// UserDomain tags ordinary user mappings.
	UserDomain uint8
	// SharedDomain tags zygote-preloaded shared code, the domain whose
	// access the DACR toggles per-process. Equal to UserDomain when
	// HasDomains is false.
	SharedDomain uint8
	// StockDACR is the register value used by the stock kernel.
	StockDACR DACR
	// ZygoteDACR is the register value granted to zygote-like
	// processes: StockDACR plus client access to SharedDomain.
	ZygoteDACR DACR
}
