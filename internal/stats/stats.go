// Package stats provides the small statistical toolkit the evaluation
// uses: five-number summaries for the box-and-whisker plots of Figures 7
// and 8, cumulative distribution functions for Figure 4, normalization
// helpers, and plain-text table rendering for regenerating the paper's
// tables and figures as text.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// FiveNum is a five-number summary: the box-and-whisker statistics used
// in Figures 7 and 8.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// Summarize computes the five-number summary of xs. An empty sample
// yields the zero FiveNum; callers that require data should check the
// input length themselves.
func Summarize(xs []float64) FiveNum {
	if len(xs) == 0 {
		return FiveNum{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return FiveNum{
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) of sorted, using linear
// interpolation between order statistics (type-7, the R default). An empty
// sample yields 0; an out-of-range q still panics, as that is a caller
// bug rather than a data condition.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range", q))
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly.
func (f FiveNum) String() string {
	return fmt.Sprintf("min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g",
		f.Min, f.Q1, f.Median, f.Q3, f.Max)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the smallest element of xs, or 0 for an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// CDF is an empirical cumulative distribution over integer-valued
// observations, as in Figure 4 (number of untouched 4KB pages within a
// 64KB page).
type CDF struct {
	counts map[int]int
	total  int
}

// NewCDF creates an empty distribution.
func NewCDF() *CDF { return &CDF{counts: make(map[int]int)} }

// Add records one observation.
func (c *CDF) Add(v int) {
	c.counts[v]++
	c.total++
}

// Total returns the number of observations.
func (c *CDF) Total() int { return c.total }

// At returns P(X <= v).
func (c *CDF) At(v int) float64 {
	if c.total == 0 {
		return 0
	}
	n := 0
	for k, cnt := range c.counts {
		if k <= v {
			n += cnt
		}
	}
	return float64(n) / float64(c.total)
}

// Tail returns P(X >= v).
func (c *CDF) Tail(v int) float64 {
	if c.total == 0 {
		return 0
	}
	return 1 - c.At(v-1)
}

// Values returns the observed values in ascending order.
func (c *CDF) Values() []int {
	vs := make([]int, 0, len(c.counts))
	for k := range c.counts {
		vs = append(vs, k)
	}
	sort.Ints(vs)
	return vs
}

// PctChange returns the percent change from base to x: negative means a
// reduction.
func PctChange(base, x float64) float64 {
	if base == 0 {
		panic("stats: PctChange with zero base")
	}
	return 100 * (x - base) / base
}

// Normalize returns x/base as a percentage.
func Normalize(base, x float64) float64 {
	if base == 0 {
		panic("stats: Normalize with zero base")
	}
	return 100 * x / base
}

// Table renders aligned plain-text tables for the experiment drivers.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float with sensible precision for table cells.
func F(x float64) string {
	switch {
	case math.Abs(x) >= 1000:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 10:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.2f", x)
	}
}

// Pct formats a percentage cell.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", x) }
