package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	f := Summarize([]float64{1, 2, 3, 4, 5})
	if f.Min != 1 || f.Max != 5 || f.Median != 3 || f.Q1 != 2 || f.Q3 != 4 {
		t.Errorf("FiveNum = %+v", f)
	}
}

func TestSummarizeSingle(t *testing.T) {
	f := Summarize([]float64{7})
	if f.Min != 7 || f.Q1 != 7 || f.Median != 7 || f.Q3 != 7 || f.Max != 7 {
		t.Errorf("FiveNum = %+v", f)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestEmptyInputsReturnZeroValues(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"Quantile(nil, 0.5)", Quantile(nil, 0.5), 0},
		{"Quantile(empty, 0)", Quantile([]float64{}, 0), 0},
		{"Quantile(empty, 1)", Quantile([]float64{}, 1), 0},
		{"Mean(nil)", Mean(nil), 0},
		{"Mean(empty)", Mean([]float64{}), 0},
		{"Min(nil)", Min(nil), 0},
		{"Min(empty)", Min([]float64{}), 0},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	for _, xs := range [][]float64{nil, {}} {
		if f := Summarize(xs); f != (FiveNum{}) {
			t.Errorf("Summarize(%v) = %+v, want zero FiveNum", xs, f)
		}
	}
}

func TestQuantileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Quantile with q out of [0,1] should panic")
		}
	}()
	Quantile([]float64{1, 2}, 1.5)
}

func TestQuantileInterpolation(t *testing.T) {
	s := []float64{0, 10}
	if got := Quantile(s, 0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %v, want 5", got)
	}
	if got := Quantile(s, 0.25); got != 2.5 {
		t.Errorf("Quantile(0.25) = %v, want 2.5", got)
	}
}

func TestFiveNumOrderingProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		f := Summarize(xs)
		return f.Min <= f.Q1 && f.Q1 <= f.Median && f.Median <= f.Q3 && f.Q3 <= f.Max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMin(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Min([]float64{3, 1, 2}); got != 1 {
		t.Errorf("Min = %v", got)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF()
	for _, v := range []int{0, 1, 1, 2, 15} {
		c.Add(v)
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.At(1); got != 0.6 {
		t.Errorf("At(1) = %v, want 0.6", got)
	}
	if got := c.At(15); got != 1 {
		t.Errorf("At(15) = %v, want 1", got)
	}
	if got := c.Tail(2); got != 0.4 {
		t.Errorf("Tail(2) = %v, want 0.4", got)
	}
	if got := c.Values(); len(got) != 4 || !sort.IntsAreSorted(got) {
		t.Errorf("Values = %v", got)
	}
}

func TestCDFEmptySafe(t *testing.T) {
	c := NewCDF()
	if c.At(3) != 0 || c.Tail(3) != 0 {
		t.Error("empty CDF should report 0 everywhere")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	prop := func(vals []uint8) bool {
		c := NewCDF()
		for _, v := range vals {
			c.Add(int(v) % 16)
		}
		prev := 0.0
		for v := 0; v <= 16; v++ {
			p := c.At(v)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return len(vals) == 0 || prev == 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPctChangeAndNormalize(t *testing.T) {
	if got := PctChange(100, 54); got != -46 {
		t.Errorf("PctChange = %v, want -46", got)
	}
	if got := Normalize(200, 100); got != 50 {
		t.Errorf("Normalize = %v, want 50", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "Bench", "Value")
	tb.AddRow("fork", "1.4")
	tb.AddRow("launch-with-long-name", "10")
	out := tb.String()
	if !strings.Contains(out, "Table X") || !strings.Contains(out, "Bench") {
		t.Errorf("missing title/header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns are aligned: every data line has the value column at the
	// same offset.
	idx := strings.Index(lines[1], "Value")
	if !strings.HasPrefix(lines[3][idx:], "1.4") || !strings.HasPrefix(lines[4][idx:], "10") {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(12345) != "12345" {
		t.Errorf("F(12345) = %q", F(12345))
	}
	if F(12.34) != "12.3" {
		t.Errorf("F(12.34) = %q", F(12.34))
	}
	if F(1.234) != "1.23" {
		t.Errorf("F(1.234) = %q", F(1.234))
	}
	if Pct(45.67) != "45.7%" {
		t.Errorf("Pct = %q", Pct(45.67))
	}
}
