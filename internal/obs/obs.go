// Package obs is the simulator's observability plane: a deterministic
// typed event bus, a bounded ring-buffer event capture, and a metrics
// registry through which every component exposes its counters behind one
// uniform Source interface.
//
// The paper's claims are all counts — soft faults eliminated, PTPs
// shared, PTE cache lines deduplicated, TLB entries reused across ASIDs —
// so the whole simulator routes its instrumentation through this package:
// components publish typed events (page faults, fork/unshare operations,
// TLB insert/evict/flush/shootdown, cache fill/evict, PTP share/copy) and
// expose snapshot-able counter sets, and the experiment campaigns consume
// both instead of poking component-private fields.
//
// Determinism rules (the same contract as internal/sweep):
//
//   - Publish dispatches to subscribers synchronously, in subscription
//     order. There are no goroutines, channels, or timestamps anywhere in
//     the package: replaying the same simulation produces the same event
//     sequence to every observer, byte for byte.
//   - Snapshot returns a freshly allocated map on every call; mutating a
//     returned snapshot never affects the component or later snapshots.
//   - A bus, ring, or registry is private to one simulated system. The
//     parallel sweep engine boots one system per scenario, so no
//     observability state is ever shared between sweep workers.
package obs

// Kind is the type tag of an Event.
type Kind uint8

// The event taxonomy. Every kind documents which Event fields it fills
// beyond Kind and Source.
const (
	// EvPageFault is one soft page fault handled by the kernel.
	// PID is the faulting process, Addr the faulting virtual address,
	// Access the arch.AccessKind of the faulting access.
	EvPageFault Kind = iota
	// EvFork is one completed fork. PID is the child; Value is the
	// modeled cycle cost of the fork.
	EvFork
	// EvUnshare is one unshare operation (Figure 6). PID is the process
	// unsharing, Addr the base address of the affected 1MB slot, Value
	// the number of PTEs copied into the private replacement PTP.
	EvUnshare
	// EvPTPShare is one PTP attached copy-on-write to a child at fork.
	// PID is the child, Addr the base address of the shared 1MB slot.
	EvPTPShare
	// EvPTPCopy is one PTP physically copied during an unshare (the
	// detach-without-copy path of process exit publishes no copy). PID
	// is the copying process, Addr the slot base, Value the PTEs copied.
	EvPTPCopy
	// EvTLBInsert is one translation loaded into a TLB. Addr is the
	// virtual address, Value the ASID.
	EvTLBInsert
	// EvTLBEvict is one valid TLB entry evicted by LRU replacement.
	// Addr is the evicted entry's page base, Value its ASID.
	EvTLBEvict
	// EvTLBFlush is one flush operation on a TLB (any granularity).
	// Value is the number of entries invalidated.
	EvTLBFlush
	// EvTLBShootdown is one remote-core TLB invalidation IPI issued by
	// the kernel. Value is the target core index.
	EvTLBShootdown
	// EvCacheFill is one line filled into a cache after a miss. Addr is
	// the physical line address.
	EvCacheFill
	// EvCacheEvict is one valid cache line evicted to make room for a
	// fill. Addr is the physical address that caused the eviction.
	EvCacheEvict

	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case EvPageFault:
		return "page-fault"
	case EvFork:
		return "fork"
	case EvUnshare:
		return "unshare"
	case EvPTPShare:
		return "ptp-share"
	case EvPTPCopy:
		return "ptp-copy"
	case EvTLBInsert:
		return "tlb-insert"
	case EvTLBEvict:
		return "tlb-evict"
	case EvTLBFlush:
		return "tlb-flush"
	case EvTLBShootdown:
		return "tlb-shootdown"
	case EvCacheFill:
		return "cache-fill"
	case EvCacheEvict:
		return "cache-evict"
	default:
		return "unknown"
	}
}

// Kinds returns every defined event kind, in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Event is one typed observation. The meaning of PID, Addr, Access and
// Value is kind-specific; see the Kind constants. The package deliberately
// avoids importing component packages, so addresses are plain uint64.
type Event struct {
	// Kind selects the event type.
	Kind Kind
	// Source names the component that published the event (for example
	// "kernel", "mainTLB", "L2").
	Source string
	// PID is the process the event concerns, 0 when not applicable.
	PID int
	// Addr is the virtual or physical address the event concerns.
	Addr uint64
	// Access is the access kind for page-fault events (arch.AccessKind).
	Access uint8
	// Value is the kind-specific payload.
	Value uint64
}

// Observer receives published events.
type Observer interface {
	HandleEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// HandleEvent implements Observer.
func (f ObserverFunc) HandleEvent(ev Event) { f(ev) }

// subEntry is one subscription on one kind's dispatch list.
type subEntry struct {
	id  uint64
	obs Observer
}

// Bus is a deterministic multi-subscriber event bus. The zero value is
// NOT ready to use; create one with NewBus. All methods are nil-safe on
// the receiver, so components may hold an optional *Bus and publish
// unconditionally.
type Bus struct {
	byKind [numKinds][]subEntry
	nextID uint64
}

// NewBus creates an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers o for the given kinds (all kinds when none are
// given) and returns a cancel function that removes the subscription.
// Dispatch order is subscription order, independent of kinds: an observer
// subscribed earlier always sees an event before one subscribed later.
func (b *Bus) Subscribe(o Observer, kinds ...Kind) (cancel func()) {
	b.nextID++
	id := b.nextID
	if len(kinds) == 0 {
		kinds = Kinds()
	}
	for _, k := range kinds {
		b.byKind[k] = append(b.byKind[k], subEntry{id: id, obs: o})
	}
	return func() {
		for k := range b.byKind {
			list := b.byKind[k]
			for i := range list {
				if list[i].id == id {
					b.byKind[k] = append(list[:i:i], list[i+1:]...)
					break
				}
			}
		}
	}
}

// Wants reports whether any observer is subscribed to kind k. Publishers
// on hot paths check Wants before building an Event, so an unobserved
// simulation pays only this test.
func (b *Bus) Wants(k Kind) bool { return b != nil && len(b.byKind[k]) > 0 }

// Publish dispatches ev synchronously to every subscriber of ev.Kind, in
// subscription order.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	for _, e := range b.byKind[ev.Kind] {
		e.obs.HandleEvent(ev)
	}
}

// Subscribers returns the number of observers subscribed to kind k.
func (b *Bus) Subscribers(k Kind) int {
	if b == nil {
		return 0
	}
	return len(b.byKind[k])
}
