package obs

import "testing"

// BenchmarkPublishUnobserved measures the cost an uninstrumented
// simulation pays per would-be event: one Wants check, no Event built.
func BenchmarkPublishUnobserved(b *testing.B) {
	bus := NewBus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bus.Wants(EvTLBInsert) {
			bus.Publish(Event{Kind: EvTLBInsert, Addr: uint64(i)})
		}
	}
}

// BenchmarkPublishNilBus measures the detached-component path: every
// publisher holds an optional *Bus and the nil receiver must be free.
func BenchmarkPublishNilBus(b *testing.B) {
	var bus *Bus
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bus.Wants(EvTLBInsert) {
			bus.Publish(Event{Kind: EvTLBInsert, Addr: uint64(i)})
		}
	}
}

// BenchmarkPublishToRing measures the observed fast path: one subscriber,
// a full ring overwriting in place. This path must be allocation-free so
// that attaching a capture does not perturb the simulation's memory
// behavior.
func BenchmarkPublishToRing(b *testing.B) {
	bus := NewBus()
	ring := NewRing(1024)
	bus.Subscribe(ring, EvTLBInsert)
	for i := 0; i < 1024; i++ { // fill to capacity: steady state overwrites
		bus.Publish(Event{Kind: EvTLBInsert, Addr: uint64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(Event{Kind: EvTLBInsert, Addr: uint64(i)})
	}
}
