package obs

import (
	"reflect"
	"testing"
)

// TestDispatchOrderDeterminism pins the bus's core contract: observers
// see events in subscription order, regardless of which kinds they
// subscribed to, and repeated publishes preserve that order.
func TestDispatchOrderDeterminism(t *testing.T) {
	b := NewBus()
	var got []string
	sub := func(tag string, kinds ...Kind) {
		b.Subscribe(ObserverFunc(func(ev Event) {
			got = append(got, tag+":"+ev.Kind.String())
		}), kinds...)
	}
	sub("all")
	sub("faults", EvPageFault)
	sub("tlb", EvTLBInsert, EvTLBFlush)

	for i := 0; i < 2; i++ {
		b.Publish(Event{Kind: EvPageFault})
		b.Publish(Event{Kind: EvTLBInsert})
		b.Publish(Event{Kind: EvFork})
	}
	want := []string{
		"all:page-fault", "faults:page-fault", "all:tlb-insert", "tlb:tlb-insert", "all:fork",
		"all:page-fault", "faults:page-fault", "all:tlb-insert", "tlb:tlb-insert", "all:fork",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dispatch order:\n got %v\nwant %v", got, want)
	}
}

// TestSubscribeCancel checks that the cancel func removes a subscription
// from every kind it was registered on, and that other subscriptions are
// untouched.
func TestSubscribeCancel(t *testing.T) {
	b := NewBus()
	var a, c int
	cancelA := b.Subscribe(ObserverFunc(func(Event) { a++ }))
	b.Subscribe(ObserverFunc(func(Event) { c++ }), EvFork)

	b.Publish(Event{Kind: EvFork})
	cancelA()
	cancelA() // idempotent
	b.Publish(Event{Kind: EvFork})
	b.Publish(Event{Kind: EvPageFault})

	if a != 1 {
		t.Errorf("cancelled observer saw %d events, want 1", a)
	}
	if c != 2 {
		t.Errorf("remaining observer saw %d events, want 2", c)
	}
	if b.Subscribers(EvPageFault) != 0 {
		t.Errorf("Subscribers(EvPageFault) = %d after cancel, want 0", b.Subscribers(EvPageFault))
	}
}

// TestNilBusSafe: components hold an optional *Bus and must be able to
// publish and test unconditionally.
func TestNilBusSafe(t *testing.T) {
	var b *Bus
	if b.Wants(EvPageFault) {
		t.Error("nil bus Wants = true")
	}
	b.Publish(Event{Kind: EvPageFault}) // must not panic
	if b.Subscribers(EvFork) != 0 {
		t.Error("nil bus has subscribers")
	}
}

// TestWants checks the hot-path guard tracks subscriptions per kind.
func TestWants(t *testing.T) {
	b := NewBus()
	if b.Wants(EvTLBInsert) {
		t.Error("empty bus Wants(EvTLBInsert) = true")
	}
	cancel := b.Subscribe(ObserverFunc(func(Event) {}), EvTLBInsert)
	if !b.Wants(EvTLBInsert) {
		t.Error("Wants(EvTLBInsert) = false after subscribe")
	}
	if b.Wants(EvCacheFill) {
		t.Error("Wants(EvCacheFill) = true without subscribers")
	}
	cancel()
	if b.Wants(EvTLBInsert) {
		t.Error("Wants(EvTLBInsert) = true after cancel")
	}
}

// TestRingOverflow checks the overwrite-oldest policy and the seen /
// dropped accounting.
func TestRingOverflow(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.HandleEvent(Event{Kind: EvTLBInsert, Value: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("Len = %d, want 3", len(evs))
	}
	for i, want := range []uint64{3, 4, 5} {
		if evs[i].Value != want {
			t.Errorf("event %d Value = %d, want %d (oldest-first order)", i, evs[i].Value, want)
		}
	}
	if r.Seen() != 5 {
		t.Errorf("Seen = %d, want 5", r.Seen())
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}

	r.Reset()
	if r.Len() != 0 || r.Seen() != 0 || r.Dropped() != 0 {
		t.Errorf("after Reset: Len=%d Seen=%d Dropped=%d, want all zero", r.Len(), r.Seen(), r.Dropped())
	}
	r.HandleEvent(Event{Kind: EvFork})
	if r.Len() != 1 {
		t.Errorf("ring unusable after Reset: Len = %d, want 1", r.Len())
	}
}

// TestRingFilter checks that filtered-out events are ignored entirely.
func TestRingFilter(t *testing.T) {
	r := NewRing(8)
	r.SetFilter(func(ev Event) bool { return ev.Kind == EvPageFault })
	r.HandleEvent(Event{Kind: EvPageFault, Addr: 0x1000})
	r.HandleEvent(Event{Kind: EvTLBInsert})
	r.HandleEvent(Event{Kind: EvPageFault, Addr: 0x2000})
	if r.Len() != 2 || r.Seen() != 2 {
		t.Fatalf("Len=%d Seen=%d, want 2 and 2 (filtered events not counted)", r.Len(), r.Seen())
	}
	for _, ev := range r.Events() {
		if ev.Kind != EvPageFault {
			t.Errorf("retained event of kind %v despite filter", ev.Kind)
		}
	}
}

// TestRingOnBus exercises the intended composition: a ring subscribed to
// a bus captures exactly the kinds it subscribed to.
func TestRingOnBus(t *testing.T) {
	b := NewBus()
	r := NewRing(4)
	b.Subscribe(r, EvUnshare, EvPTPCopy)
	b.Publish(Event{Kind: EvUnshare, PID: 7})
	b.Publish(Event{Kind: EvFork, PID: 8})
	b.Publish(Event{Kind: EvPTPCopy, PID: 7})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != EvUnshare || evs[1].Kind != EvPTPCopy {
		t.Fatalf("captured %v, want [unshare ptp-copy]", evs)
	}
}

// fakeSource is a minimal Source for registry tests.
type fakeSource struct {
	name string
	vals map[string]uint64
}

func (f *fakeSource) Name() string { return f.name }
func (f *fakeSource) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(f.vals))
	for k, v := range f.vals {
		out[k] = v
	}
	return out
}
func (f *fakeSource) Reset() {
	for k := range f.vals {
		f.vals[k] = 0
	}
}

// TestRegistry covers registration, duplicate rejection, lookup, sorted
// names, and ResetAll.
func TestRegistry(t *testing.T) {
	r := NewRegistry()
	a := &fakeSource{name: "b-src", vals: map[string]uint64{"x": 1}}
	b := &fakeSource{name: "a-src", vals: map[string]uint64{"y": 2}}
	if err := r.Register(a, b); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register(&fakeSource{name: "a-src"}); err == nil {
		t.Fatal("Register accepted a duplicate name")
	}
	if got, want := r.Names(), []string{"a-src", "b-src"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v, want %v", got, want)
	}
	if r.Lookup("a-src") != Source(b) {
		t.Error("Lookup returned the wrong source")
	}
	if r.Lookup("missing") != nil {
		t.Error("Lookup of a missing name is non-nil")
	}
	snap := r.Snapshot()
	if snap["b-src"]["x"] != 1 || snap["a-src"]["y"] != 2 {
		t.Errorf("Snapshot = %v", snap)
	}
	r.ResetAll()
	if a.vals["x"] != 0 || b.vals["y"] != 0 {
		t.Error("ResetAll did not reset all sources")
	}
}

// TestPrefix checks the wrapper renames without altering data flow.
func TestPrefix(t *testing.T) {
	s := &fakeSource{name: "mainTLB", vals: map[string]uint64{"hits": 9}}
	p := Prefix("cpu1.", s)
	if p.Name() != "cpu1.mainTLB" {
		t.Errorf("Name = %q, want cpu1.mainTLB", p.Name())
	}
	if p.Snapshot()["hits"] != 9 {
		t.Error("Snapshot does not delegate")
	}
	p.Reset()
	if s.vals["hits"] != 0 {
		t.Error("Reset does not delegate")
	}
}

// TestSnapshotImmutability pins the Source contract: mutating a returned
// snapshot must not leak into the source or later snapshots.
func TestSnapshotImmutability(t *testing.T) {
	s := &fakeSource{name: "s", vals: map[string]uint64{"n": 5}}
	snap := s.Snapshot()
	snap["n"] = 999
	snap["injected"] = 1
	again := s.Snapshot()
	if again["n"] != 5 {
		t.Errorf("snapshot mutation leaked: n = %d, want 5", again["n"])
	}
	if _, ok := again["injected"]; ok {
		t.Error("snapshot mutation injected a key into the source")
	}
}

// TestKindStrings keeps every kind named (the JSON schema and DESIGN.md
// taxonomy rely on stable, non-"unknown" names).
func TestKindStrings(t *testing.T) {
	seen := make(map[string]bool)
	for _, k := range Kinds() {
		s := k.String()
		if s == "unknown" || s == "" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}
