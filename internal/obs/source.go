package obs

import (
	"fmt"
	"sort"
)

// Source is the uniform metrics surface every instrumented component
// implements: the kernel, each TLB, each cache, the CPU contexts, the
// page tables, and the per-process VM layer all expose their counters
// through this one interface, so campaigns and command-line tools can
// collect, render, and reset metrics without knowing component types.
type Source interface {
	// Name identifies the source. Within one Registry, names are unique.
	Name() string
	// Snapshot returns the current counter values keyed by metric name.
	// The map is freshly allocated on every call: callers may mutate or
	// retain it without affecting the source or later snapshots.
	Snapshot() map[string]uint64
	// Reset zeroes all counters.
	Reset()
}

// prefixed decorates a Source with a name prefix so several instances of
// the same component type (for example one mainTLB per CPU) can coexist
// in one Registry.
type prefixed struct {
	prefix string
	src    Source
}

// Prefix wraps s so that its name becomes prefix + s.Name(). Snapshot
// and Reset delegate unchanged.
func Prefix(prefix string, s Source) Source { return prefixed{prefix, s} }

func (p prefixed) Name() string                { return p.prefix + p.src.Name() }
func (p prefixed) Snapshot() map[string]uint64 { return p.src.Snapshot() }
func (p prefixed) Reset()                      { p.src.Reset() }

// Registry is an ordered collection of Sources with unique names. It is
// the collection point for a whole simulated system's metrics: register
// every component once, then Snapshot the lot for rendering or JSON
// output.
type Registry struct {
	order []Source
	index map[string]int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// Register adds sources to the registry, rejecting duplicate names: a
// duplicate almost always means two components were wired with the same
// identity and their metrics would silently shadow each other.
func (r *Registry) Register(sources ...Source) error {
	for _, s := range sources {
		name := s.Name()
		if _, dup := r.index[name]; dup {
			return fmt.Errorf("obs: duplicate source name %q", name)
		}
		r.index[name] = len(r.order)
		r.order = append(r.order, s)
	}
	return nil
}

// MustRegister is Register that panics on duplicate names, for wiring
// done at construction time where a duplicate is a programming error.
func (r *Registry) MustRegister(sources ...Source) {
	if err := r.Register(sources...); err != nil {
		panic(err)
	}
}

// Names returns the registered source names in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.order))
	for _, s := range r.order {
		out = append(out, s.Name())
	}
	sort.Strings(out)
	return out
}

// Lookup returns the source registered under name, or nil.
func (r *Registry) Lookup(name string) Source {
	i, ok := r.index[name]
	if !ok {
		return nil
	}
	return r.order[i]
}

// Snapshot collects every source's snapshot, keyed by source name. The
// outer and inner maps are freshly allocated.
func (r *Registry) Snapshot() map[string]map[string]uint64 {
	out := make(map[string]map[string]uint64, len(r.order))
	for _, s := range r.order {
		out[s.Name()] = s.Snapshot()
	}
	return out
}

// ResetAll resets every registered source, in registration order.
func (r *Registry) ResetAll() {
	for _, s := range r.order {
		s.Reset()
	}
}
