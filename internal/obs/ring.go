package obs

// Ring is a bounded event capture: an Observer that keeps the most recent
// events published to it, overwriting the oldest once full. An optional
// filter restricts which events are retained. The zero value is unusable;
// create one with NewRing.
//
// Like the rest of the package, Ring is single-threaded and deterministic:
// it records events in dispatch order with no timestamps.
type Ring struct {
	buf    []Event
	start  int // index of the oldest retained event
	n      int // number of retained events, <= cap(buf)
	filter func(Event) bool

	seen    uint64 // events offered (after filtering)
	dropped uint64 // retained events overwritten by later ones
}

// NewRing creates a capture holding at most capacity events. capacity
// must be positive; NewRing panics otherwise, because a zero-capacity
// ring silently recording nothing is always a caller bug.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("obs: NewRing capacity must be positive")
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// SetFilter installs a retention predicate: events for which keep returns
// false are ignored entirely (not counted as seen). A nil keep removes
// the filter.
func (r *Ring) SetFilter(keep func(Event) bool) { r.filter = keep }

// HandleEvent implements Observer: it retains ev, overwriting the oldest
// retained event if the ring is full.
func (r *Ring) HandleEvent(ev Event) {
	if r.filter != nil && !r.filter(ev) {
		return
	}
	r.seen++
	if r.n < cap(r.buf) {
		r.buf = append(r.buf, ev)
		r.n++
		return
	}
	r.buf[r.start] = ev
	r.start = (r.start + 1) % r.n
	r.dropped++
}

// Events returns the retained events, oldest first, as a fresh slice.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%r.n])
	}
	return out
}

// Len returns the number of retained events.
func (r *Ring) Len() int { return r.n }

// Seen returns the number of events that passed the filter, including
// ones since overwritten.
func (r *Ring) Seen() uint64 { return r.seen }

// Dropped returns the number of retained events that were overwritten
// because the ring was full.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Reset discards all retained events and zeroes the counters. The filter
// is kept.
func (r *Ring) Reset() {
	r.buf = r.buf[:0]
	r.start, r.n = 0, 0
	r.seen, r.dropped = 0, 0
}
