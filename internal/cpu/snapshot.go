// Persistent-image support: serializable snapshots (internal/imagestore).
// A core is its three TLBs, its two private cache levels (the shared L2
// is machine-wide state), its cost model and mode bits, and its clock.
// The sampling fields are not stored: checkpoints are captured before
// any sampling subscriber attaches, so they are zero by construction.

package cpu

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/tlb"
)

// Snapshot is the serializable state of one core. The running context is
// recorded by its machine-wide context index (-1 before the first
// switch); the kernel layer resolves it back to a pointer at restore.
type Snapshot struct {
	MicroI, MicroD, Main tlb.Snapshot
	L1I, L1D             cache.Snapshot
	Costs                Costs
	UseASID              bool
	KeepGlobalOnFlush    bool
	Now                  uint64
	LastFetchVA          arch.VirtAddr
	Context              int32
}

// SnapshotState captures the core. ctxIndex resolves the running context
// to its machine-wide index, registering it on first sight.
func (c *CPU) SnapshotState(ctxIndex func(*Context) int32) Snapshot {
	s := Snapshot{
		MicroI:            c.MicroI.SnapshotState(),
		MicroD:            c.MicroD.SnapshotState(),
		Main:              c.Main.SnapshotState(),
		L1I:               c.Caches.L1I.SnapshotState(),
		L1D:               c.Caches.L1D.SnapshotState(),
		Costs:             c.Costs,
		UseASID:           c.UseASID,
		KeepGlobalOnFlush: c.KeepGlobalOnFlush,
		Now:               c.now,
		LastFetchVA:       c.lastFetchVA,
		Context:           -1,
	}
	if c.cur != nil {
		s.Context = ctxIndex(c.cur)
	}
	return s
}

// Restore rebuilds a core over an already-restored shared L2. cur is the
// resolved running context (nil before the first switch); the caller
// translates the snapshot's context index. The restored core has no
// sampler attached, matching the captured state.
func Restore(s Snapshot, handler FaultHandler, l2 *cache.Cache, geo arch.Geometry, cur *Context) (*CPU, error) {
	microI, err := tlb.Restore(s.MicroI, geo.PagesPerLarge())
	if err != nil {
		return nil, err
	}
	microD, err := tlb.Restore(s.MicroD, geo.PagesPerLarge())
	if err != nil {
		return nil, err
	}
	main, err := tlb.Restore(s.Main, geo.PagesPerLarge())
	if err != nil {
		return nil, err
	}
	l1i, err := cache.Restore(s.L1I, l2)
	if err != nil {
		return nil, err
	}
	l1d, err := cache.Restore(s.L1D, l2)
	if err != nil {
		return nil, err
	}
	return &CPU{
		MicroI:            microI,
		MicroD:            microD,
		Main:              main,
		Caches:            &cache.Hierarchy{L1I: l1i, L1D: l1d, L2: l2},
		Costs:             s.Costs,
		UseASID:           s.UseASID,
		KeepGlobalOnFlush: s.KeepGlobalOnFlush,
		Handler:           handler,
		geo:               geo,
		largeOffMask:      geo.LargePageSize() - 1,
		cur:               cur,
		now:               s.Now,
		lastFetchVA:       s.LastFetchVA,
	}, nil
}
