package cpu

import (
	"repro/internal/obs"
)

// ContextSource adapts one Context's performance counters to the
// obs.Source interface. It is a wrapper rather than methods on Context
// because Context already has a Name field (the process name), which
// would collide with Source's Name method.
type ContextSource struct {
	Ctx *Context
}

// Compile-time check: the cpu package exposes an obs.Source.
var _ obs.Source = ContextSource{}

// Name implements obs.Source. Per-context sources are usually wrapped in
// obs.Prefix with a process identity when registered.
func (s ContextSource) Name() string { return "cpu" }

// Snapshot implements obs.Source.
func (s ContextSource) Snapshot() map[string]uint64 {
	st := s.Ctx.Stats
	return map[string]uint64{
		"cycles":              st.Cycles,
		"instructions":        st.Instructions,
		"kernel_instructions": st.KernelInstructions,
		"icache_stall_cycles": st.ICacheStallCycles,
		"dcache_stall_cycles": st.DCacheStallCycles,
		"itlb_stall_cycles":   st.ITLBStallCycles,
		"dtlb_stall_cycles":   st.DTLBStallCycles,
		"itlb_main_misses":    st.ITLBMainMisses,
		"dtlb_main_misses":    st.DTLBMainMisses,
		"soft_faults":         st.SoftFaults,
		"domain_faults":       st.DomainFaults,
		"context_switches_in": st.ContextSwitchesIn,
	}
}

// Reset implements obs.Source.
func (s ContextSource) Reset() { s.Ctx.Stats = Stats{} }

// AttachBus attaches the core's TLBs and cache hierarchy to b, so their
// insert/evict/flush and fill/evict events reach the bus's subscribers,
// and lets the core itself consult subscriber interest: the batched
// execution path (AccessBatch) reverts to the scalar loop whenever a
// subscriber wants the event kinds batching could reorder.
func (c *CPU) AttachBus(b *obs.Bus) {
	c.bus = b
	c.MicroI.AttachBus(b)
	c.MicroD.AttachBus(b)
	c.Main.AttachBus(b)
	c.Caches.AttachBus(b)
}

// Sources returns the core's metric sources — the three TLBs and the
// private L1 caches — in a stable order. The shared L2 is excluded
// because several cores may share it; register it once at the system
// level instead.
func (c *CPU) Sources() []obs.Source {
	return []obs.Source{c.MicroI, c.MicroD, c.Main, c.Caches.L1I, c.Caches.L1D}
}
